#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "graph/dataset.h"

namespace ppgnn::sim {
namespace {

PpPipelineConfig base_pp_config(PpModelKind kind = PpModelKind::kSign) {
  PpPipelineConfig cfg;
  cfg.model.kind = kind;
  cfg.model.hops = 3;
  cfg.model.feat_dim = 100;
  cfg.model.hidden = 512;
  cfg.model.classes = 47;
  cfg.train_rows = 196000;  // ogbn-products train split at paper scale
  cfg.batch_size = 8000;
  cfg.chunk_size = 8000;
  return cfg;
}

TEST(PpPipeline, OptimizationLadderIsMonotone) {
  // Figure 9: baseline > fused assembly > +double buffer > +chunks.
  auto cfg = base_pp_config();
  cfg.placement = DataPlacement::kHost;
  cfg.loader = LoaderKind::kBaseline;
  const double t0 = simulate_pp_epoch(cfg).epoch_seconds;
  cfg.loader = LoaderKind::kFusedAssembly;
  const double t1 = simulate_pp_epoch(cfg).epoch_seconds;
  cfg.loader = LoaderKind::kDoubleBuffer;
  const double t2 = simulate_pp_epoch(cfg).epoch_seconds;
  cfg.loader = LoaderKind::kChunkPipeline;
  const double t3 = simulate_pp_epoch(cfg).epoch_seconds;
  EXPECT_GT(t0, t1);
  EXPECT_GE(t1, t2 * 0.999);
  EXPECT_GT(t2, t3);
  // Total improvement is an order of magnitude or more for SIGN
  // (the paper reports 15x averaged across models).
  EXPECT_GT(t0 / t3, 5.0);
}

TEST(PpPipeline, BaselineIsLoadingDominated) {
  // Figure 5: data loading (assembly + transfer) dominates the vanilla
  // epoch — 88.8% for SIGN, 91.5% for SGC on ogbn-products.
  for (const auto kind : {PpModelKind::kSign, PpModelKind::kSgc}) {
    auto cfg = base_pp_config(kind);
    cfg.loader = LoaderKind::kBaseline;
    const auto sim = simulate_pp_epoch(cfg);
    const double frac =
        sim.loading_seconds() / (sim.loading_seconds() + sim.compute_seconds());
    EXPECT_GT(frac, 0.75) << to_string(kind);
    EXPECT_LT(frac, 0.995);
  }
}

TEST(PpPipeline, HogaLessLoadingDominatedThanSgc) {
  auto sgc = base_pp_config(PpModelKind::kSgc);
  sgc.loader = LoaderKind::kBaseline;
  auto hoga = base_pp_config(PpModelKind::kHoga);
  hoga.model.hidden = 256;
  hoga.loader = LoaderKind::kBaseline;
  const auto s = simulate_pp_epoch(sgc);
  const auto h = simulate_pp_epoch(hoga);
  const auto frac = [](const EpochSim& e) {
    return e.loading_seconds() / (e.loading_seconds() + e.compute_seconds());
  };
  EXPECT_GT(frac(s), frac(h));
}

TEST(PpPipeline, DoubleBufferHidesLoadingWhenComputeBound) {
  // HOGA is compute-heavy: with prefetching the epoch approaches pure
  // compute time.
  auto cfg = base_pp_config(PpModelKind::kHoga);
  cfg.model.hidden = 1024;
  cfg.loader = LoaderKind::kDoubleBuffer;
  const auto sim = simulate_pp_epoch(cfg);
  EXPECT_LT(sim.epoch_seconds, 1.15 * sim.compute_seconds());
}

TEST(PpPipeline, GpuPlacementFastest) {
  auto cfg = base_pp_config();
  cfg.loader = LoaderKind::kDoubleBuffer;
  cfg.placement = DataPlacement::kGpu;
  const double gpu = simulate_pp_epoch(cfg).epoch_seconds;
  cfg.placement = DataPlacement::kHost;
  const double host = simulate_pp_epoch(cfg).epoch_seconds;
  EXPECT_LE(gpu, host);
}

TEST(PpPipeline, StorageChunkedComparableToHostRR) {
  // Appendix H: direct storage loading with chunks is ~on par with host
  // memory + SGD-RR (2% faster on average in the paper).
  auto cfg = base_pp_config();
  cfg.placement = DataPlacement::kStorage;
  cfg.loader = LoaderKind::kChunkPipeline;
  const double ssd_cr = simulate_pp_epoch(cfg).epoch_seconds;
  cfg.placement = DataPlacement::kHost;
  cfg.loader = LoaderKind::kDoubleBuffer;
  const double host_rr = simulate_pp_epoch(cfg).epoch_seconds;
  EXPECT_LT(ssd_cr, 3.0 * host_rr);
  EXPECT_LT(host_rr, 3.0 * ssd_cr);
}

TEST(PpPipeline, StorageRandomReadsArePunishing) {
  auto cfg = base_pp_config();
  cfg.placement = DataPlacement::kStorage;
  cfg.loader = LoaderKind::kChunkPipeline;
  const auto chunked = simulate_pp_epoch(cfg);
  cfg.loader = LoaderKind::kDoubleBuffer;  // row-granular random reads
  const auto random = simulate_pp_epoch(cfg);
  // The storage traffic itself is several times slower row-granular; with
  // a wide-feature model (igb-large rows are 16 KB) it dominates end to
  // end, which is why only chunk reshuffling is supported on storage.
  EXPECT_GT(random.transfer_seconds, 3.0 * chunked.transfer_seconds);
  auto wide = base_pp_config();
  wide.model.feat_dim = 1024;
  wide.placement = DataPlacement::kStorage;
  wide.loader = LoaderKind::kChunkPipeline;
  const double wide_chunked = simulate_pp_epoch(wide).epoch_seconds;
  wide.loader = LoaderKind::kDoubleBuffer;
  const double wide_random = simulate_pp_epoch(wide).epoch_seconds;
  EXPECT_GT(wide_random, 1.5 * wide_chunked);
}

TEST(PpPipeline, ChunkReshufflingScalesPoorlyAcrossGpus) {
  // Section 6.4 (igb-medium): CR multi-GPU is bottlenecked by host-to-GPU
  // bandwidth — ~1.27x average speedup at 4 GPUs; RR scales better when
  // loading is not the bottleneck.
  auto cfg = base_pp_config(PpModelKind::kSign);
  cfg.model.feat_dim = 1024;  // igb-medium-like width
  cfg.train_rows = 6000000;
  cfg.placement = DataPlacement::kHost;
  cfg.loader = LoaderKind::kChunkPipeline;
  cfg.num_gpus = 1;
  const double cr1 = simulate_pp_epoch(cfg).epoch_seconds;
  cfg.num_gpus = 4;
  const double cr4 = simulate_pp_epoch(cfg).epoch_seconds;
  const double cr_scaling = cr1 / cr4;
  EXPECT_LT(cr_scaling, 1.8);
  EXPECT_GE(cr_scaling, 0.8);
}

TEST(PpPipeline, GpuResidentScalesAcrossGpus) {
  auto cfg = base_pp_config(PpModelKind::kHoga);
  cfg.model.hidden = 1024;
  cfg.placement = DataPlacement::kGpu;
  cfg.loader = LoaderKind::kDoubleBuffer;
  cfg.train_rows = 1500000;
  cfg.num_gpus = 1;
  const double t1 = simulate_pp_epoch(cfg).epoch_seconds;
  cfg.num_gpus = 4;
  const double t4 = simulate_pp_epoch(cfg).epoch_seconds;
  EXPECT_GT(t1 / t4, 2.0);  // decent scaling
}

TEST(PpPipeline, SubLinearInHops) {
  auto cfg = base_pp_config(PpModelKind::kSign);
  cfg.placement = DataPlacement::kGpu;
  cfg.loader = LoaderKind::kDoubleBuffer;
  cfg.model.hops = 2;
  const double t2 = simulate_pp_epoch(cfg).epoch_seconds;
  cfg.model.hops = 6;
  const double t6 = simulate_pp_epoch(cfg).epoch_seconds;
  EXPECT_LT(t6 / t2, 3.0);  // 3x hops, < 3x time
}

TEST(PpPipeline, BytesMovedMatchesExpansion) {
  auto cfg = base_pp_config();
  cfg.loader = LoaderKind::kDoubleBuffer;
  const auto sim = simulate_pp_epoch(cfg);
  // One epoch moves ~train_rows * (R+1) * F * 4 bytes.
  const double expect = static_cast<double>(cfg.train_rows) * 4 * 100 * 4;
  EXPECT_NEAR(static_cast<double>(sim.bytes_moved), expect, expect * 0.05);
}

TEST(PpPipeline, RejectsEmptyWorkload) {
  PpPipelineConfig cfg;
  EXPECT_THROW(simulate_pp_epoch(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------

MpPipelineConfig base_mp_config() {
  MpPipelineConfig cfg;
  cfg.model.feat_dim = 100;
  cfg.model.hidden = 256;
  cfg.model.classes = 47;
  cfg.model.layers = 3;
  cfg.batch_shape = expected_labor_batch({15, 10, 5}, 8000, 2449029);
  cfg.train_rows = 196000;
  return cfg;
}

TEST(MpPipeline, OptimizationOrderMatchesFigure4) {
  // SAGE-Vanilla > SAGE-UVA > SAGE-Preload in epoch time.
  auto cfg = base_mp_config();
  cfg.system = MpSystem::kDglCpuSampling;
  const double vanilla = simulate_mp_epoch(cfg).epoch_seconds;
  cfg.system = MpSystem::kDglUva;
  const double uva = simulate_mp_epoch(cfg).epoch_seconds;
  cfg.system = MpSystem::kDglPreload;
  const double preload = simulate_mp_epoch(cfg).epoch_seconds;
  EXPECT_GT(vanilla, uva);
  EXPECT_GT(uva, preload);
}

TEST(MpPipeline, OptimizedPpBeatsOptimizedMp) {
  // The headline: optimized PP-GNNs out-throughput even DGL-preload
  // MP-GNNs (Figure 4 after optimization; Table 3).
  auto mp = base_mp_config();
  mp.system = MpSystem::kDglPreload;
  const double mp_time = simulate_mp_epoch(mp).epoch_seconds;

  auto pp = base_pp_config(PpModelKind::kSign);
  pp.placement = DataPlacement::kGpu;
  pp.loader = LoaderKind::kDoubleBuffer;
  const double pp_time = simulate_pp_epoch(pp).epoch_seconds;
  EXPECT_GT(mp_time / pp_time, 2.0);
}

TEST(MpPipeline, SamplingDominatesVanilla) {
  auto cfg = base_mp_config();
  cfg.system = MpSystem::kDglCpuSampling;
  const auto sim = simulate_mp_epoch(cfg);
  EXPECT_GT(sim.sampling_seconds + sim.loading_seconds(),
            sim.compute_seconds());
}

TEST(MpPipeline, GnnLabCacheHelps) {
  auto cfg = base_mp_config();
  cfg.system = MpSystem::kGnnLab;
  cfg.cache_hit = 0.9;
  const double hot = simulate_mp_epoch(cfg).epoch_seconds;
  cfg.cache_hit = 0.1;
  const double cold = simulate_mp_epoch(cfg).epoch_seconds;
  EXPECT_LT(hot, cold);
}

TEST(MpPipeline, GinexSlowestOnStorage) {
  auto cfg = base_mp_config();
  cfg.system = MpSystem::kGinex;
  cfg.cache_hit = 0.6;
  const double ginex = simulate_mp_epoch(cfg).epoch_seconds;
  cfg.system = MpSystem::kDglUva;
  const double uva = simulate_mp_epoch(cfg).epoch_seconds;
  EXPECT_GT(ginex, uva);
}

TEST(MpPipeline, MoreLayersExplodeCost) {
  auto cfg = base_mp_config();
  cfg.system = MpSystem::kDglUva;
  const double t3 = simulate_mp_epoch(cfg).epoch_seconds;
  cfg.model.layers = 4;
  cfg.batch_shape = expected_labor_batch({15, 10, 5, 3}, 8000, 2449029);
  const double t4 = simulate_mp_epoch(cfg).epoch_seconds;
  EXPECT_GT(t4, 1.5 * t3);
}

TEST(ToString, CoversEnums) {
  EXPECT_STREQ(to_string(DataPlacement::kGpu), "GPU");
  EXPECT_STREQ(to_string(LoaderKind::kChunkPipeline), "chunk-pipeline");
  EXPECT_STREQ(to_string(MpSystem::kGnnLab), "GNNLab");
}

}  // namespace
}  // namespace ppgnn::sim
