// End-to-end integration tests: the full characterization pipeline at
// miniature scale — generate data, preprocess, train PP and MP models,
// verify the paper's qualitative findings hold, and check the automated
// configurator's decisions drive runnable training.
#include <gtest/gtest.h>

#include "core/autoconfig.h"
#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "mpgnn/mp_trainer.h"
#include "sampling/labor.h"

namespace ppgnn {
namespace {

struct Env {
  graph::Dataset ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.12);
  core::Preprocessed pre;
  Env() {
    core::PrecomputeConfig pc;
    pc.hops = 3;
    pre = core::precompute(ds.graph, ds.features, pc);
  }
};

const Env& env() {
  static Env e;
  return e;
}

core::PpTrainResult train_sign(std::uint64_t seed, std::size_t epochs = 15,
                               core::LoadingMode mode =
                                   core::LoadingMode::kPrefetch) {
  const auto& e = env();
  Rng rng(seed);
  core::SignConfig sc;
  sc.feat_dim = e.ds.feature_dim();
  sc.hops = 3;
  sc.hidden = 32;
  sc.classes = e.ds.num_classes;
  sc.dropout = 0.2f;
  core::Sign model(sc, rng);
  core::PpTrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 128;
  tc.eval_every = 3;
  tc.mode = mode;
  tc.seed = seed;
  return core::train_pp(model, e.pre, e.ds, tc);
}

TEST(Integration, PpAccuracyComparableToMp) {
  // The paper's central accuracy claim at miniature scale: SIGN within a
  // few points of SAGE+LABOR on the same analogue.
  const auto& e = env();
  const auto pp = train_sign(1, 15);

  Rng rng(2);
  mpgnn::SageConfig cfg;
  cfg.in_dim = e.ds.feature_dim();
  cfg.hidden_dim = 32;
  cfg.out_dim = e.ds.num_classes;
  cfg.num_layers = 3;
  cfg.dropout = 0.2f;
  mpgnn::GraphSage sage(cfg, rng);
  const sampling::LaborSampler sampler({15, 10, 5});
  mpgnn::MpTrainConfig mc;
  mc.epochs = 10;
  mc.batch_size = 128;
  mc.eval_every = 2;
  const auto mp = mpgnn::train_mp(sage, e.ds, sampler, mc);

  const double pp_acc = pp.history.test_at_best_val();
  const double mp_acc = mp.history.test_at_best_val();
  EXPECT_GT(pp_acc, 0.6);
  EXPECT_GT(mp_acc, 0.55);
  EXPECT_NEAR(pp_acc, mp_acc, 0.08);
}

TEST(Integration, DeterministicAcrossRuns) {
  const auto a = train_sign(7, 5);
  const auto b = train_sign(7, 5);
  ASSERT_EQ(a.history.epochs.size(), b.history.epochs.size());
  for (std::size_t e = 0; e < a.history.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.history.epochs[e].train_loss,
                     b.history.epochs[e].train_loss);
    EXPECT_DOUBLE_EQ(a.history.epochs[e].val_acc, b.history.epochs[e].val_acc);
  }
}

TEST(Integration, MoreHopsDoNotHurtOnHomophilousGraph) {
  // Weak monotonicity of the Figure-2 trend at mini scale: 3 hops should
  // beat 0-hop (features only) clearly.
  const auto& e = env();
  core::PrecomputeConfig pc0;
  pc0.hops = 0;
  const auto pre0 = core::precompute(e.ds.graph, e.ds.features, pc0);
  Rng rng(3);
  core::SignConfig sc;
  sc.feat_dim = e.ds.feature_dim();
  sc.hops = 0;
  sc.hidden = 32;
  sc.classes = e.ds.num_classes;
  sc.dropout = 0.2f;
  core::Sign mlp_like(sc, rng);
  core::PpTrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 128;
  tc.eval_every = 3;
  const auto no_hops = core::train_pp(mlp_like, pre0, e.ds, tc);
  const auto with_hops = train_sign(3, 15);
  EXPECT_GT(with_hops.history.test_at_best_val(),
            no_hops.history.test_at_best_val() + 0.03);
}

TEST(Integration, AutoconfigDecisionsAreRunnable) {
  // Drive the mapping from a TrainingPlan's loader decision to a real
  // LoadingMode and train with it.
  const core::AutoConfigurator ac(sim::MachineSpec::paper_server(), 1);
  sim::PpModelShape shape;
  shape.kind = sim::PpModelKind::kSign;
  shape.hops = 3;
  shape.feat_dim = 1024;
  shape.hidden = 512;
  shape.classes = 19;
  const auto plan =
      ac.plan(shape, graph::paper_scale(graph::DatasetName::kIgbMediumSim));
  const auto mode = plan.placement.chunk_reshuffle
                        ? core::LoadingMode::kChunkPrefetch
                        : core::LoadingMode::kPrefetch;
  const auto r = train_sign(4, 5, mode);
  EXPECT_EQ(r.history.epochs.size(), 5u);
  EXPECT_GT(r.history.epochs.back().val_acc, 0.5);
}

TEST(Integration, SgcCheapestPerEpochAndBothModelsLearn) {
  // The efficiency half of Figure 7's ladder: SGC (one linear layer on the
  // final hop) trains measurably faster per epoch than SIGN on the same
  // preprocessed input, and both clear chance comfortably.
  //
  // Note on the *accuracy* half: on these Gaussian-SBM analogues the Bayes
  // classifier of the smoothed features is close to linear, so SGC does
  // not show the accuracy deficit the paper measures on the real datasets;
  // EXPERIMENTS.md records this as a known analogue limitation.
  const auto& e = env();
  core::PpTrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 128;
  tc.eval_every = 2;
  Rng r1(5);
  core::Sgc sgc(e.ds.feature_dim(), 3, e.ds.num_classes, r1);
  const auto sgc_r = core::train_pp(sgc, e.pre, e.ds, tc);
  Rng r2(5);
  core::SignConfig sc;
  sc.feat_dim = e.ds.feature_dim();
  sc.hops = 3;
  sc.hidden = 64;
  sc.classes = e.ds.num_classes;
  sc.dropout = 0.2f;
  core::Sign sign(sc, r2);
  const auto sign_r = core::train_pp(sign, e.pre, e.ds, tc);
  EXPECT_LT(sgc_r.history.mean_epoch_seconds(),
            sign_r.history.mean_epoch_seconds());
  EXPECT_GT(sgc_r.history.peak_val_acc(), 0.6);
  EXPECT_GT(sign_r.history.peak_val_acc(), 0.6);
}

TEST(Integration, PreprocessingAmortizesOverRuns) {
  // Table 7's claim: preprocessing is comparable to (or less than) a
  // single full training run.
  const auto& e = env();
  const auto r = train_sign(6, 10);
  const double one_run = r.history.total_train_seconds();
  // At mini scale preprocessing is a handful of SpMMs.
  EXPECT_LT(e.pre.preprocess_seconds, one_run * 5.0);
}

TEST(Integration, SamplerVolumeExceedsPpVolume) {
  // Appendix I at mini scale: MP-GNN feature-row traffic > PP traffic.
  const auto& e = env();
  Rng rng(8);
  const sampling::LaborSampler sampler({15, 10, 5});
  sampling::SamplerStats stats;
  for (std::size_t pos = 0; pos < e.ds.split.train.size(); pos += 128) {
    const std::size_t end = std::min(pos + 128, e.ds.split.train.size());
    std::vector<graph::NodeId> seeds;
    for (std::size_t i = pos; i < end; ++i) {
      seeds.push_back(static_cast<graph::NodeId>(e.ds.split.train[i]));
    }
    stats.observe(sampler.sample(e.ds.graph, seeds, rng));
  }
  const std::size_t mp_rows = stats.input_rows;
  const std::size_t pp_rows = e.ds.split.train.size() * (3 + 1);
  EXPECT_GT(mp_rows, pp_rows);
}

}  // namespace
}  // namespace ppgnn
