// Multi-kernel preprocessing (Eq. 2 with K operators) and its interaction
// with the PP-GNN models and the input-expansion accounting.
#include <gtest/gtest.h>

#include "core/precompute.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "tensor/ops.h"

namespace ppgnn::core {
namespace {

std::vector<PrecomputeConfig> three_kernels(std::size_t hops) {
  PrecomputeConfig adj;
  adj.op = OperatorKind::kSymNorm;
  adj.hops = hops;
  PrecomputeConfig ppr;
  ppr.op = OperatorKind::kPpr;
  ppr.hops = hops;
  PrecomputeConfig heat;
  heat.op = OperatorKind::kHeat;
  heat.hops = hops;
  return {adj, ppr, heat};
}

TEST(MultiOperator, MatrixCountIsSharedXPlusKR) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  const auto pre = precompute_multi(ds.graph, ds.features, three_kernels(2));
  // 1 shared X + 3 kernels * 2 hops.
  EXPECT_EQ(pre.hop_features.size(), 1u + 3 * 2);
  EXPECT_EQ(pre.row_bytes(), 7 * ds.feature_dim() * sizeof(float));
}

TEST(MultiOperator, FirstKernelMatchesSingleOperatorRun) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  const auto multi = precompute_multi(ds.graph, ds.features, three_kernels(2));
  PrecomputeConfig adj;
  adj.hops = 2;
  const auto single = precompute(ds.graph, ds.features, adj);
  EXPECT_TRUE(allclose(multi.hop_features[0], single.hop_features[0]));
  EXPECT_TRUE(allclose(multi.hop_features[1], single.hop_features[1]));
  EXPECT_TRUE(allclose(multi.hop_features[2], single.hop_features[2]));
}

TEST(MultiOperator, KernelsProduceDistinctFeatures) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  const auto pre = precompute_multi(ds.graph, ds.features, three_kernels(1));
  // [X, adj, ppr, heat]: the three propagated variants must all differ.
  EXPECT_FALSE(allclose(pre.hop_features[1], pre.hop_features[2]));
  EXPECT_FALSE(allclose(pre.hop_features[1], pre.hop_features[3]));
  EXPECT_FALSE(allclose(pre.hop_features[2], pre.hop_features[3]));
}

TEST(MultiOperator, SignTrainsOnMultiKernelInput) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.08);
  const auto pre = precompute_multi(ds.graph, ds.features, three_kernels(2));
  Rng rng(1);
  SignConfig sc;
  sc.feat_dim = ds.feature_dim();
  sc.hops = pre.hop_features.size() - 1;  // branches = total matrices
  sc.hidden = 32;
  sc.classes = ds.num_classes;
  sc.dropout = 0.2f;
  Sign model(sc, rng);
  PpTrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 128;
  tc.eval_every = 2;
  const auto r = train_pp(model, pre, ds, tc);
  EXPECT_GT(r.history.peak_val_acc(), 0.6);
}

TEST(MultiOperator, RejectsEmptyConfig) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  EXPECT_THROW(precompute_multi(ds.graph, ds.features, {}),
               std::invalid_argument);
}

TEST(MultiOperator, PreprocessTimeAccumulates) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  const auto one = precompute(ds.graph, ds.features, {});
  const auto multi = precompute_multi(ds.graph, ds.features, three_kernels(3));
  EXPECT_GT(multi.preprocess_seconds, one.preprocess_seconds);
}

TEST(MultiOperator, ExpansionMatchesPaperFormula) {
  // PaperScale::preprocessed_bytes models K(R+1); the in-memory multi-op
  // result stores 1 + K*R matrices (shared X); both grow linearly in K.
  const auto scale = graph::paper_scale(graph::DatasetName::kProductsSim);
  EXPECT_EQ(scale.preprocessed_bytes(3, 2), 2 * scale.preprocessed_bytes(3, 1));
}

}  // namespace
}  // namespace ppgnn::core
