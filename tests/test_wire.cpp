// ppgnn-wire codec (src/rpc/wire.h): frame headers, handshake bodies,
// Request/Response envelope encoding, deadline translation, and FrameReader
// stream reassembly.
//
// Three kinds of tests keep the codec honest:
//  * round-trips — encode, decode, field-for-field equality across every
//    status, both result modes, and the deadline edge cases;
//  * the DOCUMENTED BYTE LAYOUTS — the reference envelope from
//    docs/wire-protocol.md is encoded here and asserted byte-by-byte
//    against the documented offsets, at BOTH protocol versions, so the
//    spec and the code cannot drift apart silently.  If one of these
//    assertions fails, either the codec or the doc changed: fix whichever
//    is wrong, in the same PR;
//  * version negotiation — a v1 offer must still decode (old clients keep
//    working), a future offer must decode too (the server clamps it with
//    min(), it must not slam the door), and the tenant id must be exactly
//    the field that appears at v2 and disappears at v1.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "rpc/frame.h"
#include "rpc/wire.h"

namespace ppgnn::rpc {
namespace {

using serve::Priority;
using serve::ResultMode;
using serve::ServeStatus;

// --- Frame header ----------------------------------------------------------

TEST(WireFrame, HeaderRoundTrip) {
  FrameHeader h;
  h.body_len = 12345;
  h.type = MsgType::kResponse;
  std::uint8_t buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);

  FrameHeader out;
  std::string err;
  ASSERT_TRUE(decode_frame_header(buf, &out, &err)) << err;
  EXPECT_EQ(out.body_len, 12345u);
  EXPECT_EQ(out.type, MsgType::kResponse);
  EXPECT_EQ(out.version, kWireVersion);
}

TEST(WireFrame, HeaderRejectsBadVersionTypeAndSize) {
  FrameHeader h;
  h.body_len = 8;
  h.type = MsgType::kHello;
  std::uint8_t buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);

  FrameHeader out;
  std::string err;

  std::uint8_t bad[kFrameHeaderBytes];
  std::memcpy(bad, buf, kFrameHeaderBytes);
  bad[5] = kWireVersion + 1;  // version byte
  EXPECT_FALSE(decode_frame_header(bad, &out, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;

  std::memcpy(bad, buf, kFrameHeaderBytes);
  bad[4] = 0x7F;  // type byte
  EXPECT_FALSE(decode_frame_header(bad, &out, &err));
  EXPECT_NE(err.find("message type"), std::string::npos) << err;

  FrameHeader big;
  big.body_len = static_cast<std::uint32_t>(kMaxFrameBody) + 1;
  big.type = MsgType::kRequest;
  encode_frame_header(big, bad);
  EXPECT_FALSE(decode_frame_header(bad, &out, &err));
  EXPECT_NE(err.find("size cap"), std::string::npos) << err;
}

// --- Handshake -------------------------------------------------------------

TEST(WireHandshake, HelloRoundTrip) {
  const WireHello h;
  const auto body = encode_hello(h);
  ASSERT_EQ(body.size(), 8u);
  // magic "PPG1" little-endian.
  EXPECT_EQ(body[0], 'P');
  EXPECT_EQ(body[1], 'P');
  EXPECT_EQ(body[2], 'G');
  EXPECT_EQ(body[3], '1');

  WireHello out;
  std::string err;
  ASSERT_TRUE(decode_hello(body.data(), body.size(), &out, &err)) << err;
  EXPECT_EQ(out.magic, kWireMagic);
  EXPECT_EQ(out.protocol, static_cast<std::uint32_t>(kWireVersion));
}

TEST(WireHandshake, HelloRejectsBadMagicProtocolLength) {
  WireHello h;
  auto body = encode_hello(h);
  WireHello out;
  std::string err;

  auto bad = body;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_hello(bad.data(), bad.size(), &out, &err));
  EXPECT_NE(err.find("magic"), std::string::npos) << err;

  // An offer BELOW the floor is a peer we can never talk to.
  bad = body;
  bad[4] = kMinWireVersion - 1;
  EXPECT_FALSE(decode_hello(bad.data(), bad.size(), &out, &err));
  EXPECT_NE(err.find("protocol"), std::string::npos) << err;

  EXPECT_FALSE(decode_hello(body.data(), body.size() - 1, &out, &err));
  EXPECT_FALSE(decode_hello(body.data(), 0, &out, &err));
  bad = body;
  bad.push_back(0);
  EXPECT_FALSE(decode_hello(bad.data(), bad.size(), &out, &err));
}

TEST(WireHandshake, HelloAcceptsFutureOffer) {
  // The Hello carries the client's highest SUPPORTED version, not a
  // demand: a v3 client offering 3 must decode fine so the server can ack
  // min(3, kWireVersion) and keep talking.  Rejecting high offers would
  // make every future version a breaking change.
  WireHello h;
  h.protocol = kWireVersion + 1;
  const auto body = encode_hello(h);
  WireHello out;
  std::string err;
  ASSERT_TRUE(decode_hello(body.data(), body.size(), &out, &err)) << err;
  EXPECT_EQ(out.protocol, static_cast<std::uint32_t>(kWireVersion) + 1);
}

TEST(WireHandshake, HelloAckRejectsUnspeakableProtocol) {
  // The ACK is different from the offer: it names the version BOTH sides
  // will actually frame at, so an ack outside [kMinWireVersion,
  // kWireVersion] means the server negotiated something this client
  // cannot speak — a broken server, and the connection must die.
  WireHelloAck a;
  a.num_nodes = 7;
  a.classes = 3;
  WireHelloAck out;
  std::string err;

  a.protocol = kWireVersion + 1;
  auto body = encode_hello_ack(a);
  EXPECT_FALSE(decode_hello_ack(body.data(), body.size(), &out, &err));
  EXPECT_NE(err.find("protocol"), std::string::npos) << err;

  a.protocol = kMinWireVersion - 1;
  body = encode_hello_ack(a);
  EXPECT_FALSE(decode_hello_ack(body.data(), body.size(), &out, &err));

  // Every version in the speakable window is fine — in particular v1,
  // which is what a v2 server acks to a v1 client.
  for (std::uint32_t p = kMinWireVersion; p <= kWireVersion; ++p) {
    a.protocol = p;
    body = encode_hello_ack(a);
    ASSERT_TRUE(decode_hello_ack(body.data(), body.size(), &out, &err))
        << "rejected ack protocol " << p << ": " << err;
    EXPECT_EQ(out.protocol, p);
  }
}

TEST(WireHandshake, HelloAckRoundTrip) {
  WireHelloAck a;
  a.num_nodes = 1u << 20;
  a.classes = 16;
  a.precision = 1;  // serve::Precision::kInt8
  const auto body = encode_hello_ack(a);
  ASSERT_EQ(body.size(), 24u);

  WireHelloAck out;
  std::string err;
  ASSERT_TRUE(decode_hello_ack(body.data(), body.size(), &out, &err)) << err;
  EXPECT_EQ(out.num_nodes, a.num_nodes);
  EXPECT_EQ(out.classes, a.classes);
  EXPECT_EQ(out.precision, a.precision);
}

TEST(WireHandshake, HelloAckRejectsTruncation) {
  WireHelloAck a;
  a.num_nodes = 7;
  a.classes = 3;
  const auto body = encode_hello_ack(a);
  WireHelloAck out;
  std::string err;
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(decode_hello_ack(body.data(), len, &out, &err))
        << "accepted truncated HelloAck of " << len << " bytes";
  }
}

// --- Request ---------------------------------------------------------------

WireRequest reference_request() {
  // THE reference envelope of docs/wire-protocol.md — keep in sync with the
  // worked example there.
  WireRequest r;
  r.id = 0x0123456789ABCDEFull;
  r.priority = Priority::kLow;
  r.mode = ResultMode::kTopK;
  r.topk = 3;
  r.deadline_rel_us = 2500;
  r.tenant = 42;
  r.nodes = {7, 1000};
  return r;
}

TEST(WireRequest_, DocumentedByteLayoutV2) {
  const auto body = encode_request(reference_request());
  ASSERT_EQ(body.size(), 44u);

  const std::uint8_t expect[44] = {
      // [0..7]  id 0x0123456789ABCDEF, little-endian
      0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01,
      // [8]    priority = kLow(1)   [9] mode = kTopK(1)
      0x01, 0x01,
      // [10..11] topk = 3
      0x03, 0x00,
      // [12..19] deadline_rel_us = 2500 (0x9C4)
      0xC4, 0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // [20..23] tenant = 42 (v2's one addition)
      0x2A, 0x00, 0x00, 0x00,
      // [24..27] node count = 2
      0x02, 0x00, 0x00, 0x00,
      // [28..35] node 7
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // [36..43] node 1000 (0x3E8)
      0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(body[i], expect[i]) << "body byte " << i;
  }

  // The frame header for this body, as documented: body_len 0x2C, type
  // kRequest (0x10), version 2, reserved zero.
  std::vector<std::uint8_t> frame;
  append_frame(frame, MsgType::kRequest, body.data(), body.size());
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + body.size());
  const std::uint8_t hdr[kFrameHeaderBytes] = {0x2C, 0x00, 0x00, 0x00,
                                               0x10, 0x02, 0x00, 0x00};
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    EXPECT_EQ(frame[i], hdr[i]) << "header byte " << i;
  }
}

TEST(WireRequest_, DocumentedByteLayoutV1) {
  // The same envelope on a connection negotiated down to v1: the tenant
  // field vanishes (a v1 peer must receive EXACTLY the v1 layout — 40
  // bytes, node count at [20..23]) and the frame header says version 1.
  // This is the regression that keeps old replicas decodable forever.
  const auto body = encode_request(reference_request(), /*protocol=*/1);
  ASSERT_EQ(body.size(), 40u);

  const std::uint8_t expect[40] = {
      // [0..7]  id 0x0123456789ABCDEF, little-endian
      0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01,
      // [8]    priority = kLow(1)   [9] mode = kTopK(1)
      0x01, 0x01,
      // [10..11] topk = 3
      0x03, 0x00,
      // [12..19] deadline_rel_us = 2500 (0x9C4)
      0xC4, 0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // [20..23] node count = 2 (no tenant field at v1)
      0x02, 0x00, 0x00, 0x00,
      // [24..31] node 7
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // [32..39] node 1000 (0x3E8)
      0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(body[i], expect[i]) << "body byte " << i;
  }

  std::vector<std::uint8_t> frame;
  append_frame(frame, MsgType::kRequest, body.data(), body.size(),
               /*version=*/1);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + body.size());
  const std::uint8_t hdr[kFrameHeaderBytes] = {0x28, 0x00, 0x00, 0x00,
                                               0x10, 0x01, 0x00, 0x00};
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    EXPECT_EQ(frame[i], hdr[i]) << "header byte " << i;
  }

  // Decoded per the v1 frame version, the envelope comes back whole with
  // tenant 0 — exactly what the fleet front sees from a v1 client.
  WireRequest out;
  std::string err;
  ASSERT_TRUE(
      decode_request(body.data(), body.size(), &out, &err, /*version=*/1))
      << err;
  EXPECT_EQ(out.id, 0x0123456789ABCDEFull);
  EXPECT_EQ(out.tenant, 0u);
  EXPECT_EQ(out.nodes, (std::vector<std::int64_t>{7, 1000}));
}

TEST(WireRequest_, RoundTrip) {
  for (const std::int64_t deadline : {std::int64_t{-1}, std::int64_t{0},
                                      std::int64_t{2500}, kMaxDeadlineUs}) {
    WireRequest r;
    r.id = 42;
    r.priority = Priority::kHigh;
    r.mode = ResultMode::kFullLogits;
    r.deadline_rel_us = deadline;
    r.tenant = 0xDEADBEEFu;  // full u32 range must survive the trip
    r.nodes = {0, -3, (std::int64_t{1} << 40), 999999};
    const auto body = encode_request(r);

    WireRequest out;
    std::string err;
    ASSERT_TRUE(decode_request(body.data(), body.size(), &out, &err)) << err;
    EXPECT_EQ(out.id, r.id);
    EXPECT_EQ(out.priority, r.priority);
    EXPECT_EQ(out.mode, r.mode);
    EXPECT_EQ(out.deadline_rel_us, deadline);
    EXPECT_EQ(out.tenant, 0xDEADBEEFu);
    EXPECT_EQ(out.nodes, r.nodes);
  }

  const auto body = encode_request(reference_request());
  WireRequest out;
  std::string err;
  ASSERT_TRUE(decode_request(body.data(), body.size(), &out, &err)) << err;
  EXPECT_EQ(out.priority, Priority::kLow);
  EXPECT_EQ(out.mode, ResultMode::kTopK);
  EXPECT_EQ(out.topk, 3);
  EXPECT_EQ(out.tenant, 42u);
}

TEST(WireRequest_, VersionMismatchIsCaughtByLengthCheck) {
  // The negotiation guarantees encoder and decoder agree on the version,
  // but a corrupt frame header could lie.  The length check catches it:
  // a v2 body read as v1 (or vice versa) is off by the 4 tenant bytes and
  // must be rejected, never silently misparsed with nodes shifted by one
  // field.
  const auto v2 = encode_request(reference_request());
  const auto v1 = encode_request(reference_request(), /*protocol=*/1);
  WireRequest out;
  std::string err;
  EXPECT_FALSE(decode_request(v2.data(), v2.size(), &out, &err,
                              /*version=*/1));
  EXPECT_FALSE(decode_request(v1.data(), v1.size(), &out, &err,
                              /*version=*/2));
}

TEST(WireRequest_, RejectsEveryTruncation) {
  const auto body = encode_request(reference_request());
  WireRequest out;
  std::string err;
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(decode_request(body.data(), len, &out, &err))
        << "accepted truncated Request of " << len << " bytes";
  }
}

TEST(WireRequest_, RejectsCorruptFields) {
  const auto body = encode_request(reference_request());
  WireRequest out;
  std::string err;

  auto bad = body;
  bad[8] = 2;  // priority past kLow
  EXPECT_FALSE(decode_request(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: bad priority");

  bad = body;
  bad[9] = 2;  // mode past kTopK
  EXPECT_FALSE(decode_request(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: bad result mode");

  bad = body;
  for (std::size_t i = 12; i < 20; ++i) bad[i] = 0xFF;  // deadline = -1 ...
  bad[12] = 0xFE;                                       // ... minus 1 = -2
  EXPECT_FALSE(decode_request(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: bad deadline budget");

  WireRequest empty = reference_request();
  empty.nodes.clear();
  const auto ebody = encode_request(empty);
  EXPECT_FALSE(decode_request(ebody.data(), ebody.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: empty envelope");

  bad = body;
  bad[24] = 3;  // claims 3 nodes, payload holds 2 (count is at 24 in v2)
  EXPECT_FALSE(decode_request(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: node count disagrees with body length");

  bad = body;
  bad.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode_request(bad.data(), bad.size(), &out, &err));
}

// --- Deadline translation --------------------------------------------------

TEST(WireDeadline, TranslationEdges) {
  using clock = std::chrono::steady_clock;
  const clock::time_point now = clock::now();

  EXPECT_EQ(deadline_to_budget_us(clock::time_point::max(), now), -1);
  EXPECT_EQ(deadline_to_budget_us(now, now), 0);
  EXPECT_EQ(deadline_to_budget_us(now - std::chrono::seconds(5), now), 0);
  EXPECT_EQ(deadline_to_budget_us(now + std::chrono::microseconds(2500), now),
            2500);
  // A deadline past the clamp (but far from time_point::max(), which must
  // not overflow inside the subtraction) pins to kMaxDeadlineUs.
  EXPECT_EQ(deadline_to_budget_us(now + std::chrono::hours(24 * 400), now),
            kMaxDeadlineUs);

  EXPECT_EQ(budget_us_to_deadline(-1, now), clock::time_point::max());
  EXPECT_EQ(budget_us_to_deadline(-7, now), clock::time_point::max());
  EXPECT_EQ(budget_us_to_deadline(0, now), now);
  EXPECT_EQ(budget_us_to_deadline(2500, now),
            now + std::chrono::microseconds(2500));
  EXPECT_EQ(budget_us_to_deadline(kMaxDeadlineUs + 100, now),
            now + std::chrono::microseconds(kMaxDeadlineUs));
}

TEST(WireDeadline, RoundTripPreservesBudget) {
  using clock = std::chrono::steady_clock;
  const clock::time_point now = clock::now();
  const auto deadline = now + std::chrono::milliseconds(30);
  const std::int64_t budget = deadline_to_budget_us(deadline, now);
  EXPECT_EQ(budget, 30000);
  EXPECT_EQ(budget_us_to_deadline(budget, now), deadline);
  // No-deadline survives the trip too.
  EXPECT_EQ(budget_us_to_deadline(
                deadline_to_budget_us(clock::time_point::max(), now), now),
            clock::time_point::max());
}

// --- Response --------------------------------------------------------------

WireResponse reference_response() {
  // The response worked example of docs/wire-protocol.md.
  WireResponse r;
  r.id = 5;
  r.status = ServeStatus::kOk;
  r.mode = ResultMode::kFullLogits;
  r.timings.admission_wait_us = 1.5;
  r.timings.dispatch_delay_us = 0.0;
  r.timings.compute_us = 2.5;
  WirePart p;
  p.status = ServeStatus::kOk;
  p.logits = {1.0f};
  r.parts.push_back(p);
  return r;
}

TEST(WireResponse_, DocumentedByteLayout) {
  const auto body = encode_response(reference_response());
  ASSERT_EQ(body.size(), 53u);

  const std::uint8_t expect[53] = {
      // [0..7]  id = 5
      0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // [8]    status kOk   [9] mode kFullLogits   [10..11] reserved
      0x00, 0x00, 0x00, 0x00,
      // [12..15] part count = 1
      0x01, 0x00, 0x00, 0x00,
      // [16..23] admission_wait_us = 1.5 (IEEE-754 f64, LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,
      // [24..31] dispatch_delay_us = 0.0
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // [32..39] compute_us = 2.5
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40,
      // [40..43] error length = 0
      0x00, 0x00, 0x00, 0x00,
      // part 0: [44] status kOk, [45..48] value count = 1,
      // [49..52] logit 1.0f (IEEE-754 f32, LE)
      0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80, 0x3F};
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(body[i], expect[i]) << "body byte " << i;
  }
}

TEST(WireResponse_, RoundTripFullLogitsAllStatuses) {
  WireResponse r;
  r.id = 0xDEADBEEF;
  r.mode = ResultMode::kFullLogits;
  r.error = "backend: simulated failure";
  r.timings.admission_wait_us = 12.25;
  r.timings.dispatch_delay_us = 3.5;
  r.timings.compute_us = 100.0;
  for (const ServeStatus s :
       {ServeStatus::kOk, ServeStatus::kDraining, ServeStatus::kShed,
        ServeStatus::kDeadlineExceeded, ServeStatus::kError,
        ServeStatus::kQuotaExceeded}) {
    WirePart p;
    p.status = s;
    if (s == ServeStatus::kOk) p.logits = {0.5f, -1.25f, 3.0f};
    if (s == ServeStatus::kDeadlineExceeded) p.logits = {9.0f};  // late answer
    r.parts.push_back(p);
    r.status = serve::worse_status(r.status, s);
  }

  const auto body = encode_response(r);
  WireResponse out;
  std::string err;
  ASSERT_TRUE(decode_response(body.data(), body.size(), &out, &err)) << err;
  EXPECT_EQ(out.id, r.id);
  EXPECT_EQ(out.status, r.status);
  EXPECT_EQ(out.mode, r.mode);
  EXPECT_EQ(out.error, r.error);
  EXPECT_DOUBLE_EQ(out.timings.admission_wait_us, 12.25);
  EXPECT_DOUBLE_EQ(out.timings.dispatch_delay_us, 3.5);
  EXPECT_DOUBLE_EQ(out.timings.compute_us, 100.0);
  ASSERT_EQ(out.parts.size(), r.parts.size());
  for (std::size_t i = 0; i < r.parts.size(); ++i) {
    EXPECT_EQ(out.parts[i].status, r.parts[i].status) << "part " << i;
    EXPECT_EQ(out.parts[i].logits, r.parts[i].logits) << "part " << i;
  }
}

TEST(WireResponse_, RoundTripTopK) {
  WireResponse r;
  r.id = 77;
  r.mode = ResultMode::kTopK;
  WirePart p;
  p.status = ServeStatus::kOk;
  p.topk = {{2, 0.9f}, {0, 0.05f}, {11, 0.01f}};
  r.parts.push_back(p);
  r.parts.push_back(WirePart{ServeStatus::kShed, {}, {}});  // empty part

  const auto body = encode_response(r);
  WireResponse out;
  std::string err;
  ASSERT_TRUE(decode_response(body.data(), body.size(), &out, &err)) << err;
  ASSERT_EQ(out.parts.size(), 2u);
  ASSERT_EQ(out.parts[0].topk.size(), 3u);
  EXPECT_EQ(out.parts[0].topk[0].cls, 2);
  EXPECT_FLOAT_EQ(out.parts[0].topk[0].score, 0.9f);
  EXPECT_EQ(out.parts[0].topk[2].cls, 11);
  EXPECT_EQ(out.parts[1].status, ServeStatus::kShed);
  EXPECT_TRUE(out.parts[1].topk.empty());
}

TEST(WireResponse_, RejectsEveryTruncation) {
  const auto body = encode_response(reference_response());
  WireResponse out;
  std::string err;
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(decode_response(body.data(), len, &out, &err))
        << "accepted truncated Response of " << len << " bytes";
  }
}

TEST(WireResponse_, RejectsCorruptFields) {
  const auto body = encode_response(reference_response());
  WireResponse out;
  std::string err;

  auto bad = body;
  bad[8] = 6;  // envelope status past kQuotaExceeded
  EXPECT_FALSE(decode_response(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: bad status");

  bad = body;
  bad[9] = 2;  // mode past kTopK
  EXPECT_FALSE(decode_response(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: bad result mode");

  bad = body;
  bad[40] = 0xFF;  // error_len far past the frame end
  EXPECT_FALSE(decode_response(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: error text past end of frame");

  bad = body;
  bad[44] = 6;  // part status past kQuotaExceeded
  EXPECT_FALSE(decode_response(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: bad part status");

  bad = body;
  bad[45] = 9;  // part claims 9 logits, payload holds 1
  EXPECT_FALSE(decode_response(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: part values past end of frame");

  bad = body;
  bad.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode_response(bad.data(), bad.size(), &out, &err));
  EXPECT_EQ(err, "ppgnn-wire: Response length mismatch");
}

// --- FrameReader -----------------------------------------------------------

TEST(FrameReaderTest, ReassemblesByteAtATime) {
  const auto body = encode_request(reference_request());
  std::vector<std::uint8_t> stream;
  append_frame(stream, MsgType::kRequest, body.data(), body.size());

  FrameReader reader;
  MsgType type;
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    reader.feed(&stream[i], 1);
    EXPECT_FALSE(reader.next(&type, &got)) << "frame popped early at " << i;
  }
  reader.feed(&stream.back(), 1);
  ASSERT_TRUE(reader.next(&type, &got));
  EXPECT_EQ(type, MsgType::kRequest);
  EXPECT_EQ(got, body);
  EXPECT_FALSE(reader.next(&type, &got));
  EXPECT_EQ(reader.buffered(), 0u);
  EXPECT_FALSE(reader.failed());
}

TEST(FrameReaderTest, PopsMultipleFramesFromOneFeed) {
  const auto hello = encode_hello(WireHello{});
  const auto req = encode_request(reference_request());
  const auto resp = encode_response(reference_response());
  std::vector<std::uint8_t> stream;
  append_frame(stream, MsgType::kHello, hello.data(), hello.size());
  append_frame(stream, MsgType::kRequest, req.data(), req.size());
  append_frame(stream, MsgType::kResponse, resp.data(), resp.size());

  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  MsgType type;
  std::vector<std::uint8_t> body;
  ASSERT_TRUE(reader.next(&type, &body));
  EXPECT_EQ(type, MsgType::kHello);
  EXPECT_EQ(body, hello);
  ASSERT_TRUE(reader.next(&type, &body));
  EXPECT_EQ(type, MsgType::kRequest);
  EXPECT_EQ(body, req);
  ASSERT_TRUE(reader.next(&type, &body));
  EXPECT_EQ(type, MsgType::kResponse);
  EXPECT_EQ(body, resp);
  EXPECT_FALSE(reader.next(&type, &body));
}

TEST(FrameReaderTest, ProtocolViolationLatches) {
  const auto body = encode_hello(WireHello{});
  std::vector<std::uint8_t> stream;
  append_frame(stream, MsgType::kHello, body.data(), body.size());
  stream[5] = kWireVersion + 1;  // corrupt the version byte

  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  MsgType type;
  std::vector<std::uint8_t> got;
  EXPECT_FALSE(reader.next(&type, &got));
  EXPECT_TRUE(reader.failed());
  EXPECT_FALSE(reader.error().empty());

  // A valid frame fed after the violation stays unread: the connection is
  // dead, there is no resynchronizing a corrupt byte stream.
  std::vector<std::uint8_t> fine;
  append_frame(fine, MsgType::kHello, body.data(), body.size());
  reader.feed(fine.data(), fine.size());
  EXPECT_FALSE(reader.next(&type, &got));
  EXPECT_TRUE(reader.failed());
}

}  // namespace
}  // namespace ppgnn::rpc
