// RPC transport fast path (rpc/buffer.h): pooled zero-copy framing and
// writev frame coalescing.
//
// The contract under test is BYTE IDENTITY: the fast path may change how
// frames reach the socket (recycled buffers, vectored writes) but never
// what bytes arrive — docs/wire-protocol.md stays normative.  So the tests
// here are (a) a seeded fuzz that round-trips random envelopes through
// encode -> decode -> re-encode and demands identical bytes, plus
// rejection of every truncated prefix; (b) a stream-equivalence check that
// drain_writev over pooled frames emits exactly the bytes the per-frame
// path would; (c) the pool's steady-state guarantee — zero allocations per
// frame once the buffers in rotation fit the workload; and (d) the
// client's deadline-driven sweep still failing a timed-out call against a
// server that acks the handshake and then never answers.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "rpc/buffer.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/inplace_function.h"
#include "rpc/wire.h"

namespace ppgnn::rpc {
namespace {

using Bytes = std::vector<std::uint8_t>;

// --- Seeded envelope fuzz --------------------------------------------------

WireRequest random_request(std::mt19937_64& rng) {
  WireRequest r;
  r.id = rng();
  r.priority = (rng() & 1) ? serve::Priority::kLow : serve::Priority::kHigh;
  r.mode = (rng() & 1) ? serve::ResultMode::kTopK
                       : serve::ResultMode::kFullLogits;
  r.topk = static_cast<std::uint16_t>(1 + rng() % 16);
  r.deadline_rel_us = (rng() & 1)
                          ? -1
                          : static_cast<std::int64_t>(rng() % 50'000'000);
  const std::size_t n = 1 + rng() % 64;
  r.nodes.resize(n);
  for (auto& node : r.nodes) {
    node = static_cast<std::int64_t>(rng() % 1'000'000);
  }
  return r;
}

WireResponse random_response(std::mt19937_64& rng) {
  WireResponse w;
  w.id = rng();
  w.status = static_cast<serve::ServeStatus>(rng() % 5);
  w.mode = (rng() & 1) ? serve::ResultMode::kTopK
                       : serve::ResultMode::kFullLogits;
  w.timings.admission_wait_us = static_cast<double>(rng() % 10'000);
  w.timings.dispatch_delay_us = static_cast<double>(rng() % 10'000);
  w.timings.compute_us = static_cast<double>(rng() % 10'000);
  if (w.status == serve::ServeStatus::kError) {
    w.error = "backend exploded #" + std::to_string(rng() % 100);
  }
  std::uniform_real_distribution<float> val(-8.f, 8.f);
  w.parts.resize(rng() % 8);
  for (auto& p : w.parts) {
    p.status = static_cast<serve::ServeStatus>(rng() % 5);
    const std::size_t k = rng() % 12;  // 0 = part carried no result
    if (w.mode == serve::ResultMode::kTopK) {
      p.topk.resize(k);
      for (auto& e : p.topk) {
        e.cls = static_cast<std::int32_t>(rng() % 1000);
        e.score = val(rng);
      }
    } else {
      p.logits.resize(k);
      for (auto& f : p.logits) f = val(rng);
    }
  }
  return w;
}

TEST(WireFuzz, RequestRoundTripIsByteIdentical) {
  std::mt19937_64 rng(0x5eed0001);
  for (int i = 0; i < 200; ++i) {
    const WireRequest r = random_request(rng);
    const Bytes body = encode_request(r);

    // The append-style frame encoder must produce byte-for-byte what
    // append_frame over the vector-returning encoder does — including when
    // appending after existing bytes.
    Bytes reference{0xAB, 0xCD};
    append_frame(reference, MsgType::kRequest, body.data(), body.size());
    Bytes framed{0xAB, 0xCD};
    encode_request_into(r, framed);
    ASSERT_EQ(reference, framed);

    WireRequest back;
    std::string err;
    ASSERT_TRUE(decode_request(body.data(), body.size(), &back, &err)) << err;
    EXPECT_EQ(encode_request(back), body);  // decode -> re-encode identity
  }
}

TEST(WireFuzz, ResponseRoundTripIsByteIdentical) {
  std::mt19937_64 rng(0x5eed0002);
  for (int i = 0; i < 200; ++i) {
    const WireResponse w = random_response(rng);
    const Bytes body = encode_response(w);

    Bytes reference;
    append_frame(reference, MsgType::kResponse, body.data(), body.size());
    Bytes framed;
    encode_response_into(w, framed);
    ASSERT_EQ(reference, framed);

    WireResponse back;
    std::string err;
    ASSERT_TRUE(decode_response(body.data(), body.size(), &back, &err))
        << err;
    EXPECT_EQ(encode_response(back), body);
  }
}

TEST(WireFuzz, HandshakeFramesAreByteIdentical) {
  const WireHello h;
  Bytes ref_h;
  {
    const Bytes body = encode_hello(h);
    // Handshake frames pin frame version 1 (pre-negotiation).
    append_frame(ref_h, MsgType::kHello, body.data(), body.size(),
                 /*version=*/1);
  }
  Bytes into_h;
  encode_hello_into(h, into_h);
  EXPECT_EQ(ref_h, into_h);

  WireHelloAck a;
  a.num_nodes = 123456;
  a.classes = 16;
  a.precision = 1;
  Bytes ref_a;
  {
    const Bytes body = encode_hello_ack(a);
    append_frame(ref_a, MsgType::kHelloAck, body.data(), body.size(),
                 /*version=*/1);
  }
  Bytes into_a;
  encode_hello_ack_into(a, into_a);
  EXPECT_EQ(ref_a, into_a);
}

TEST(WireFuzz, TruncatedBodiesRejectedAtEveryLength) {
  std::mt19937_64 rng(0x5eed0003);
  std::string err;
  for (int i = 0; i < 8; ++i) {
    const Bytes req = encode_request(random_request(rng));
    for (std::size_t len = 0; len < req.size(); ++len) {
      WireRequest out;
      EXPECT_FALSE(decode_request(req.data(), len, &out, &err))
          << "request prefix of " << len << "/" << req.size() << " decoded";
    }
    const Bytes resp = encode_response(random_response(rng));
    for (std::size_t len = 0; len < resp.size(); ++len) {
      WireResponse out;
      EXPECT_FALSE(decode_response(resp.data(), len, &out, &err))
          << "response prefix of " << len << "/" << resp.size() << " decoded";
    }
  }
}

TEST(WireFuzz, FrameReaderNeverYieldsFromAPartialFrame) {
  std::mt19937_64 rng(0x5eed0004);
  Bytes frame;
  encode_request_into(random_request(rng), frame);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameReader reader;
    reader.feed(frame.data(), len);
    MsgType type;
    const std::uint8_t* body = nullptr;
    std::size_t body_len = 0;
    EXPECT_FALSE(reader.next_view(&type, &body, &body_len));
    EXPECT_FALSE(reader.failed());
  }
  // The whole frame pops, and the view aliases the reader's buffer.
  FrameReader reader;
  reader.feed(frame.data(), frame.size());
  MsgType type;
  const std::uint8_t* body = nullptr;
  std::size_t body_len = 0;
  ASSERT_TRUE(reader.next_view(&type, &body, &body_len));
  EXPECT_EQ(type, MsgType::kRequest);
  EXPECT_EQ(body_len, frame.size() - kFrameHeaderBytes);
  EXPECT_EQ(0, std::memcmp(body, frame.data() + kFrameHeaderBytes, body_len));
}

// --- Stream equivalence: drain_writev == per-frame bytes -------------------

TEST(FastPath, CoalescedWritevEmitsPerFramePathBytes) {
  std::mt19937_64 rng(0x5eed0005);

  // The reference stream: every frame appended flat, as the pre-pool
  // transport wrote them one send() at a time.
  Bytes reference;
  FramePool pool(8);
  RpcStats stats;
  FrameQueue q;
  for (int i = 0; i < 150; ++i) {
    if (rng() & 1) {
      const WireRequest r = random_request(rng);
      encode_request_into(r, reference);
      q.push_back(encode_pooled(pool, stats, [&r](Bytes& out) {
        encode_request_into(r, out);
      }));
    } else {
      const WireResponse w = random_response(rng);
      encode_response_into(w, reference);
      q.push_back(encode_pooled(pool, stats, [&w](Bytes& out) {
        encode_response_into(w, out);
      }));
    }
  }
  const std::size_t total_frames = q.size();

  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  ASSERT_TRUE(set_nonblocking(fds[0]));

  // Alternate draining and reading on one thread: EAGAIN from the full
  // socket buffer exercises the short-write/partial-frame path too.
  Bytes received;
  std::uint8_t buf[16384];
  while (!q.empty()) {
    ASSERT_TRUE(drain_writev(fds[0], q, pool, stats));
    ssize_t r;
    while ((r = ::recv(fds[1], buf, sizeof(buf), MSG_DONTWAIT)) > 0) {
      received.insert(received.end(), buf, buf + r);
    }
  }
  ::close(fds[0]);
  ssize_t r;
  while ((r = ::recv(fds[1], buf, sizeof(buf), 0)) > 0) {
    received.insert(received.end(), buf, buf + r);
  }
  ::close(fds[1]);

  ASSERT_EQ(reference.size(), received.size());
  EXPECT_EQ(reference, received);  // coalescing below framing: same bytes
  EXPECT_EQ(stats.frames_sent, total_frames);
  EXPECT_EQ(stats.bytes_sent, reference.size());
  EXPECT_GE(stats.writev_calls, 1u);
  // The whole point: strictly fewer syscalls than frames.
  EXPECT_LT(stats.writev_calls, total_frames);
  EXPECT_GT(stats.frames_per_writev(), 1.0);
}

// --- Pool steady state: zero allocations per frame -------------------------

TEST(FastPath, PoolReachesZeroAllocsPerFrameAtSteadyState) {
  FramePool pool(8);
  RpcStats stats;
  WireRequest r;
  r.id = 7;
  r.nodes.assign(32, 42);

  // Warm-up: first acquire allocates, and the encode may grow the fresh
  // buffer once.
  {
    auto f = encode_pooled(pool, stats, [&r](Bytes& out) {
      encode_request_into(r, out);
    });
    pool.release(std::move(f));
  }
  const std::uint64_t allocs_after_warmup = stats.buffer_allocs;

  for (int i = 0; i < 500; ++i) {
    auto f = encode_pooled(pool, stats, [&r](Bytes& out) {
      encode_request_into(r, out);
    });
    pool.release(std::move(f));
  }
  EXPECT_EQ(stats.buffer_allocs, allocs_after_warmup)
      << "steady-state encodes must not touch the heap";
  EXPECT_EQ(stats.pool_misses, 1u);
  EXPECT_EQ(stats.pool_hits, 500u);
  EXPECT_EQ(stats.frames_enqueued, 501u);
  EXPECT_LT(stats.allocs_per_frame(), 0.01);
  EXPECT_GT(stats.pool_hit_rate(), 0.99);
}

TEST(FastPath, PoolWatermarkAdaptsToDeepPipelines) {
  // A closed-loop client keeping hundreds of frames in flight must still
  // converge to zero allocs per frame: the free list follows the peak
  // outstanding count instead of dropping buffers at a fixed cap.
  constexpr std::size_t kDepth = 300;  // far beyond the 64-buffer floor
  FramePool pool;
  RpcStats stats;
  WireRequest r;
  r.id = 1;
  r.nodes.assign(4, 9);

  std::vector<std::unique_ptr<FrameBuffer>> in_flight;
  // One deep burst allocates the working set and raises the watermark...
  for (std::size_t i = 0; i < kDepth; ++i) {
    in_flight.push_back(encode_pooled(pool, stats, [&r](Bytes& out) {
      encode_request_into(r, out);
    }));
  }
  EXPECT_EQ(pool.peak_outstanding(), kDepth);
  for (auto& f : in_flight) pool.release(std::move(f));
  in_flight.clear();
  EXPECT_EQ(pool.free_count(), kDepth)
      << "the whole burst's buffers must be retained, not capped at the floor";
  const std::uint64_t allocs_after_burst = stats.buffer_allocs;

  // ...so every later burst up to that depth is allocation-free.
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < kDepth; ++i) {
      in_flight.push_back(encode_pooled(pool, stats, [&r](Bytes& out) {
        encode_request_into(r, out);
      }));
    }
    for (auto& f : in_flight) pool.release(std::move(f));
    in_flight.clear();
  }
  EXPECT_EQ(stats.buffer_allocs, allocs_after_burst)
      << "repeat bursts at the watermark depth must not touch the heap";
  EXPECT_EQ(stats.pool_hits, 5u * kDepth);
}

// --- InplaceFunction: the zero-alloc closure carrying every completion -----

TEST(FastPath, InplaceFunctionMoveAndDestroy) {
  // Every Done/FailHandler closure rides in an InplaceFunction; its capture
  // must move with the wrapper (never copy, never leak) and die exactly once.
  auto tracker = std::make_shared<int>(0);
  EXPECT_EQ(tracker.use_count(), 1);

  InplaceFunction<void(int), 64> f = [tracker](int delta) {
    *tracker += delta;
  };
  EXPECT_EQ(tracker.use_count(), 2);  // one copy captured, no hidden extras
  EXPECT_TRUE(static_cast<bool>(f));

  // Move transfers the capture: the source goes empty, the refcount holds.
  InplaceFunction<void(int), 64> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(tracker.use_count(), 2);

  g(5);
  g(2);
  EXPECT_EQ(*tracker, 7);

  // Assigning nullptr destroys the capture in place.
  g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_EQ(tracker.use_count(), 1);

  // Scope-exit destruction also releases the capture exactly once.
  {
    InplaceFunction<void(int), 64> h = [tracker](int) {};
    EXPECT_EQ(tracker.use_count(), 2);
    // Move-assignment over an engaged wrapper destroys the old capture.
    auto extra = std::make_shared<int>(0);
    h = [extra](int) {};
    EXPECT_EQ(tracker.use_count(), 1);
    EXPECT_EQ(extra.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

// --- Deadline-driven sweep still fails a silent server ---------------------

// Acks the ppgnn-wire handshake, then swallows every request: the only way
// a call completes is the client's own timeout sweep.  With the fixed-tick
// sweep replaced by deadline-driven wakeups, this is the regression test
// that a pending deadline still wakes the I/O thread with no traffic and
// no further sweeps scheduled.
class MuteServer {
 public:
  explicit MuteServer(const std::string& address) {
    std::string err;
    listen_fd_ = listen_on(address, &err);
    EXPECT_GE(listen_fd_, 0) << err;
    thread_ = std::thread([this] { serve(); });
  }
  ~MuteServer() {
    stop_.store(true);
    thread_.join();
    ::close(listen_fd_);
  }

 private:
  void serve() {
    int cfd = -1;
    FrameReader reader;
    std::uint8_t buf[4096];
    while (!stop_.load()) {
      pollfd p{cfd < 0 ? listen_fd_ : cfd, POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      if (cfd < 0) {
        cfd = ::accept(listen_fd_, nullptr, nullptr);
        continue;
      }
      const ssize_t r = ::recv(cfd, buf, sizeof(buf), 0);
      if (r <= 0) break;
      reader.feed(buf, static_cast<std::size_t>(r));
      MsgType type;
      const std::uint8_t* body = nullptr;
      std::size_t body_len = 0;
      while (reader.next_view(&type, &body, &body_len)) {
        if (type != MsgType::kHello) continue;  // requests: dropped on purpose
        WireHelloAck ack;
        ack.num_nodes = 1;
        ack.classes = 1;
        Bytes frame;
        encode_hello_ack_into(ack, frame);
        [[maybe_unused]] const ssize_t w =
            ::send(cfd, frame.data(), frame.size(), MSG_NOSIGNAL);
      }
    }
    if (cfd >= 0) ::close(cfd);
  }

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(FastPath, DeadlineSweepTimesOutAgainstMuteServer) {
  const std::string addr =
      "unix:/tmp/ppgnn-fastpath-mute-" + std::to_string(::getpid()) + ".sock";
  MuteServer server(addr);

  RpcClientConfig cfg;
  cfg.address = addr;
  RpcClient client(cfg);
  WireHelloAck ack;
  std::string err;
  ASSERT_TRUE(client.handshake(&ack, &err)) << err;

  WireRequest req;
  req.nodes = {0};
  std::promise<RpcClient::Result> done;
  client.call(req, std::chrono::milliseconds(100),
              [&done](RpcClient::Result& r) {
                done.set_value(std::move(r));
              });
  auto fut = done.get_future();
  // Generous bound: the sweep must fire at ~100ms; 10s means "never".
  ASSERT_EQ(std::future_status::ready,
            fut.wait_for(std::chrono::seconds(10)))
      << "timeout sweep never fired — the deadline-driven wakeup is broken";
  const RpcClient::Result res = fut.get();
  EXPECT_FALSE(res.transport_ok);
  EXPECT_NE(res.transport_error.find("timeout"), std::string::npos)
      << res.transport_error;
  client.shutdown();
}

}  // namespace
}  // namespace ppgnn::rpc
