// Shared numerical-gradient checking for module tests.
//
// Defines loss(x) = sum(W ∘ forward(x)) with a fixed random weighting W,
// backpropagates dL/d(output) = W through the module, and compares both the
// returned input gradient and every parameter gradient against central
// finite differences.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace ppgnn::testing {

struct GradCheckOptions {
  float eps = 1e-3f;
  float tol = 2e-2f;        // relative tolerance on each gradient entry
  float abs_floor = 1e-4f;  // entries smaller than this are compared absolutely
  bool check_input_grad = true;
  std::size_t max_entries = 64;  // probe at most this many entries per tensor
};

// forward must be re-runnable (same dropout state etc. — use p=0 dropout in
// modules under test).
inline void check_gradients(nn::Module& module, const Tensor& input,
                            const GradCheckOptions& opt = {}) {
  Rng rng(1234);
  Tensor x = input;

  const Tensor out0 = module.forward(x, /*train=*/true);
  Tensor w = Tensor::normal(out0.shape(), rng);
  auto loss_of = [&](const Tensor& xx) -> double {
    // const_cast-free re-entry: forward again with possibly-updated params.
    Tensor out = module.forward(const_cast<Tensor&>(xx), true);
    double l = 0;
    for (std::size_t i = 0; i < out.size(); ++i) l += out[i] * w[i];
    return l;
  };

  module.zero_grad();
  (void)module.forward(x, true);
  const Tensor dx = module.backward(w);

  std::vector<nn::ParamSlot> slots;
  module.collect_params(slots);

  auto compare = [&](float analytic, double numeric, const std::string& what) {
    const double denom = std::max<double>(std::abs(numeric), opt.abs_floor);
    EXPECT_NEAR(analytic, numeric, opt.tol * denom)
        << what << " analytic=" << analytic << " numeric=" << numeric;
  };

  // Parameter gradients.
  for (auto& s : slots) {
    const std::size_t n = s.value->size();
    const std::size_t stride = std::max<std::size_t>(1, n / opt.max_entries);
    for (std::size_t i = 0; i < n; i += stride) {
      float& p = (*s.value)[i];
      const float orig = p;
      p = orig + opt.eps;
      const double lp = loss_of(x);
      p = orig - opt.eps;
      const double lm = loss_of(x);
      p = orig;
      compare((*s.grad)[i], (lp - lm) / (2.0 * opt.eps),
              s.name + "[" + std::to_string(i) + "]");
    }
  }

  // Input gradient.
  if (opt.check_input_grad) {
    const std::size_t n = x.size();
    const std::size_t stride = std::max<std::size_t>(1, n / opt.max_entries);
    for (std::size_t i = 0; i < n; i += stride) {
      const float orig = x[i];
      x[i] = orig + opt.eps;
      const double lp = loss_of(x);
      x[i] = orig - opt.eps;
      const double lm = loss_of(x);
      x[i] = orig;
      compare(dx[i], (lp - lm) / (2.0 * opt.eps),
              "input[" + std::to_string(i) + "]");
    }
  }
}

}  // namespace ppgnn::testing
