// Multi-tenant serving (src/tenancy/): token-bucket admission, DWRR
// fair-share scheduling, the epoch-snapshot contract registry, and the
// fleet-front integration that turns a tenant id into an enforced SLO.
//
// Determinism is the load-bearing property: every bucket decision is a
// pure function of caller-supplied timestamps (no hidden clock reads), and
// every DWRR pick is integer-valued double arithmetic — so the threaded
// serving path and the single-threaded fleetsim replay produce the SAME
// admit/refuse and batch-composition sequences.  These tests drive the
// components with synthetic time exactly the way fleetsim does.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/precompute.h"
#include "core/sign.h"
#include "graph/dataset.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/replica_set.h"
#include "serve/serve_api.h"
#include "tenancy/admission.h"
#include "tenancy/fair_share.h"
#include "tenancy/tenant.h"

namespace ppgnn::tenancy {
namespace {

using serve::Priority;
using serve::ServeStatus;

// --- TokenBucket: pure refill/burst arithmetic -----------------------------

TEST(TokenBucket_, RefillBurstAndClampAreExact) {
  TokenBucket b;
  b.level = 5.0;  // full burst
  const double rate = 10.0, burst = 5.0;

  // Spend the burst down to zero at a frozen clock: no refill happens.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(b.try_take(0.0, rate, burst, 1.0)) << "take " << i;
  }
  EXPECT_FALSE(b.try_take(0.0, rate, burst, 1.0));

  // 0.2s at 10/s refills exactly 2 tokens — enough for cost 2, not 3.
  EXPECT_TRUE(b.try_take(0.2, rate, burst, 2.0));
  EXPECT_FALSE(b.try_take(0.2, rate, burst, 1.0));

  // A long idle period clamps at burst, never banks beyond it.
  EXPECT_TRUE(b.try_take(100.0, rate, burst, 5.0));
  EXPECT_FALSE(b.try_take(100.0, rate, burst, 1.0));
}

TEST(TokenBucket_, StaleTimestampNeverDrainsAndZeroRateIsUnmetered) {
  TokenBucket b;
  b.level = 1.0;
  b.last_refill_s = 10.0;
  // A timestamp BEHIND the last refill must refill nothing (and must not
  // drain): out-of-order arrivals across threads can present stale nows.
  EXPECT_TRUE(b.try_take(9.0, 10.0, 5.0, 1.0));
  EXPECT_FALSE(b.try_take(9.0, 10.0, 5.0, 1.0));
  EXPECT_DOUBLE_EQ(b.last_refill_s, 10.0);

  // rate == 0 is the unmetered contract: always admitted, never charged.
  TokenBucket u;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(u.try_take(0.0, 0.0, 0.0, 1e9));
  }
}

// --- TenantAdmission: explicit-now determinism -----------------------------

TEST(TenantAdmission_, SameArrivalSequenceSameDecisionsBitForBit) {
  // The contract fleetsim relies on: two gates over the same registry fed
  // the same (tenant, parts, now) sequence make identical decisions.
  TenantRegistry reg;
  TenantContract c;
  c.rate_per_s = 50.0;
  c.burst = 10.0;
  reg.set_contract(1, c);
  c.rate_per_s = 5.0;
  c.burst = 2.0;
  reg.set_contract(2, c);

  TenantAdmission a(reg, nullptr), b(reg, nullptr);
  std::vector<bool> da, db;
  double now = 0.0;
  for (int i = 0; i < 500; ++i) {
    const TenantId t = 1 + (i % 2);
    const std::size_t parts = 1 + (i % 3);
    da.push_back(a.try_admit(t, parts, now));
    db.push_back(b.try_admit(t, parts, now));
    now += 0.0137;  // any fixed origin, only deltas matter
  }
  EXPECT_EQ(da, db);
  EXPECT_EQ(a.refused_total(), b.refused_total());
  EXPECT_GT(a.refused_total(), 0u);  // the sequence actually refused some
  EXPECT_DOUBLE_EQ(a.level(1, now), b.level(1, now));
  EXPECT_DOUBLE_EQ(a.level(2, now), b.level(2, now));
}

TEST(TenantAdmission_, FirstArrivalAfterContractInstallIsNeverRefused) {
  TenantRegistry reg;
  TenantContract c;
  c.rate_per_s = 1.0;  // effective burst 1
  reg.set_contract(7, c);
  TenantAdmission gate(reg, nullptr);
  // New buckets start at full burst: the first in-burst request lands.
  EXPECT_TRUE(gate.try_admit(7, 1, 0.0));
  EXPECT_FALSE(gate.try_admit(7, 1, 0.0));  // burst spent, no refill yet
  // An unconfigured tenant falls back to the unmetered default contract.
  EXPECT_TRUE(gate.try_admit(99, 1000, 0.0));
  EXPECT_EQ(gate.refused_total(), 1u);
}

// --- DWRR: weighted ratios, exact ------------------------------------------

// Drives the scheduler over simulated per-tenant backlogs and returns how
// many parts each tenant emitted in `pops` picks.
std::map<TenantId, std::size_t> drain(
    DwrrScheduler& s, std::map<TenantId, std::size_t> backlog,
    const std::map<TenantId, std::uint32_t>& weights, std::size_t pops) {
  for (const auto& [t, n] : backlog) {
    if (n > 0) s.arm(t);
  }
  const auto weight_of = [&](TenantId t) {
    const auto it = weights.find(t);
    return it == weights.end() ? 1u : it->second;
  };
  std::map<TenantId, std::size_t> emitted;
  for (std::size_t i = 0; i < pops && !s.empty(); ++i) {
    const TenantId t = s.next(weight_of);
    EXPECT_GT(backlog[t], 0u) << "scheduler picked a drained tenant";
    if (backlog[t] == 0) break;
    backlog[t] -= 1;
    emitted[t] += 1;
    s.note_popped(t, backlog[t] == 0);
  }
  return emitted;
}

TEST(Dwrr, TwoToOneWeightGivesExactlyTwoToOneThroughput) {
  DwrrScheduler s;
  const std::map<TenantId, std::uint32_t> w{{1, 2}, {2, 1}};
  // Both backlogged throughout: 300 picks must split exactly 200/100.
  const auto emitted = drain(s, {{1, 500}, {2, 500}}, w, 300);
  EXPECT_EQ(emitted.at(1), 200u);
  EXPECT_EQ(emitted.at(2), 100u);
}

TEST(Dwrr, SingleTenantDegeneratesToFifoAndDrainsClean) {
  DwrrScheduler s;
  const auto emitted = drain(s, {{3, 10}}, {}, 10);
  EXPECT_EQ(emitted.at(3), 10u);
  EXPECT_TRUE(s.empty());  // note_popped(now_empty) disarmed it
}

TEST(Dwrr, IdleTenantBanksNoCredit) {
  // Tenant 1 drains and goes idle; when it returns, it re-enters with a
  // zero deficit — no stored quantum from the idle period.  Equal weights
  // from reactivation on must therefore alternate 1:1, not let tenant 1
  // burst ahead.
  DwrrScheduler s;
  std::map<TenantId, std::size_t> backlog{{1, 2}, {2, 1000}};
  s.arm(1);
  s.arm(2);
  const auto weight_of = [](TenantId) { return 1u; };
  std::map<TenantId, std::size_t> emitted;
  const auto pop = [&] {
    const TenantId t = s.next(weight_of);
    backlog[t] -= 1;
    emitted[t] += 1;
    s.note_popped(t, backlog[t] == 0);
  };
  for (int i = 0; i < 4; ++i) pop();  // tenant 1's 2 parts drain here
  EXPECT_EQ(emitted[1], 2u);
  EXPECT_EQ(s.active_tenants(), 1u);

  backlog[1] = 100;  // back after the idle gap
  s.arm(1);
  emitted.clear();
  for (int i = 0; i < 100; ++i) pop();
  EXPECT_EQ(emitted[1], 50u);  // exactly fair share, no banked burst
  EXPECT_EQ(emitted[2], 50u);
}

// --- TenantRegistry: epoch snapshots under fire ----------------------------

TEST(TenantRegistryTest, ParseTenantMixAndDescribe) {
  std::vector<std::uint32_t> w;
  std::string err;
  ASSERT_TRUE(parse_tenant_mix("2,1,1", &w, &err)) << err;
  EXPECT_EQ(w, (std::vector<std::uint32_t>{2, 1, 1}));
  ASSERT_TRUE(parse_tenant_mix("", &w, &err));
  EXPECT_TRUE(w.empty());
  ASSERT_TRUE(parse_tenant_mix("0", &w, &err));  // clamped to >= 1
  EXPECT_EQ(w, (std::vector<std::uint32_t>{1}));
  EXPECT_FALSE(parse_tenant_mix("2,x", &w, &err));
  EXPECT_FALSE(err.empty());

  TenantContract c;
  c.rate_per_s = 100;
  c.weight = 2;
  EXPECT_FALSE(describe(c).empty());
}

TEST(TenantRegistryTest, SnapshotFlipMidStormHammerSeesOnlyWholeContracts) {
  // Readers spin on snapshot()/of() while a writer flips the contract
  // between two internally-consistent states.  A reader must only ever
  // observe one of the two whole contracts — never a torn mix — and a
  // held snapshot must stay frozen while the registry moves on.
  TenantRegistry reg;
  TenantContract fast;  // state A: rate 100 pairs with weight 2
  fast.rate_per_s = 100.0;
  fast.weight = 2;
  TenantContract slow;  // state B: rate 200 pairs with weight 4
  slow.rate_per_s = 200.0;
  slow.weight = 4;
  reg.set_contract(1, fast);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = reg.snapshot();
        if (snap->epoch < last_epoch) torn.fetch_add(1);  // epoch monotone
        last_epoch = snap->epoch;
        const TenantContract& c = snap->of(1);
        const bool whole = (c.rate_per_s == 100.0 && c.weight == 2) ||
                           (c.rate_per_s == 200.0 && c.weight == 4);
        if (!whole) torn.fetch_add(1);
      }
    });
  }
  const auto held = reg.snapshot();
  const std::uint64_t held_epoch = held->epoch;
  for (int i = 0; i < 1000; ++i) {
    reg.set_contract(1, (i % 2) ? fast : slow);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(held->epoch, held_epoch);  // the held generation never mutated
  EXPECT_EQ(reg.epoch(), held_epoch + 1000);
}

// --- Fleet integration -----------------------------------------------------

struct Fixture {
  graph::Dataset ds;
  core::Preprocessed pre;

  Fixture() : ds(graph::make_dataset(graph::DatasetName::kPokecSim, 0.02)) {
    core::PrecomputeConfig pc;
    pc.hops = 2;
    pre = core::precompute(ds.graph, ds.features, pc);
  }

  std::unique_ptr<core::PpModel> make_model(std::uint64_t seed = 7) const {
    Rng rng(seed);
    core::SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = pre.num_hops();
    cfg.hidden = 16;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  }

  serve::FleetBuilder builder(const std::string& ckpt) const {
    return serve::FleetBuilder(
        ckpt, [this](std::size_t i) { return make_model(100 + i); },
        [this](std::size_t) {
          return std::make_unique<serve::MemorySource>(pre);
        });
  }

  std::string deploy(const char* name) const {
    const std::string ckpt = ::testing::TempDir() + "/" + name;
    auto trained = make_model(21);
    serve::save_deployed_model(*trained, ckpt);
    return ckpt;
  }
};

TEST(TenancyFleet, QuotaRefusalIsQuotaExceededAndNeverRetriedAsDraining) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("tenancy_quota.ckpt");
  TenantRegistry reg;
  TenantContract c;
  c.rate_per_s = 1e-6;  // refill is negligible over the test's lifetime
  c.burst = 1.0;
  reg.set_contract(1, c);

  serve::FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  fc.tenants = &reg;
  serve::FleetManager fleet(fx.builder(ckpt), 1, fc);

  const auto ask = [&](std::uint32_t tenant) {
    serve::ServeRequest r;
    r.nodes = {0};
    r.tenant = tenant;
    return fleet.infer_request(std::move(r));
  };

  // Tenant 1's burst of 1 admits the first envelope and refuses the
  // second — with kQuotaExceeded, the contract answer, not kShed (which
  // would tell the autoscaler to scale) and not kDraining (which the
  // front would transparently re-route; a quota refusal must be final).
  EXPECT_EQ(ask(1).status, ServeStatus::kOk);
  const serve::ServeResponse refused = ask(1);
  EXPECT_EQ(refused.status, ServeStatus::kQuotaExceeded);
  for (const auto& row : refused.logits) EXPECT_TRUE(row.empty());
  // The default tenant is unmetered and unaffected.
  EXPECT_EQ(ask(0).status, ServeStatus::kOk);

  EXPECT_EQ(fleet.quota_refused_total(), 1u);
  // Quota refusals are invisible to the overload/autoscale signals: the
  // fleet shed nothing.
  EXPECT_EQ(fleet.aggregate_admission().rejected, 0u);

  bool saw_t1 = false;
  for (const auto& row : fleet.aggregate_tenants()) {
    if (row.tenant == 1) {
      saw_t1 = true;
      EXPECT_EQ(row.admitted, 1u);
      EXPECT_EQ(row.quota_refused, 1u);
    }
    if (row.tenant == 0) EXPECT_EQ(row.quota_refused, 0u);
  }
  EXPECT_TRUE(saw_t1);
  fleet.stop();
}

TEST(TenancyFleet, AggressorBlastingQuotaCannotCauseVictimRefusals) {
  // The test-scale isolation proof (bench_serving_latency section 9 is the
  // measured one): tenant 1 submits 10x its burst, tenant 2 stays inside
  // its identical contract.  The victim must see zero quota refusals and
  // full admission — the aggressor's storm lands on the aggressor alone.
  const Fixture fx;
  const std::string ckpt = fx.deploy("tenancy_iso.ckpt");
  TenantRegistry reg;
  TenantContract c;
  c.rate_per_s = 1e-6;  // ~no refill: the burst is the whole budget
  c.burst = 5.0;
  reg.set_contract(1, c);
  reg.set_contract(2, c);

  serve::FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  fc.tenants = &reg;
  serve::FleetManager fleet(fx.builder(ckpt), 1, fc);

  serve::CompletionQueue cq;
  std::size_t sent = 0;
  for (int i = 0; i < 50; ++i) {  // 10x the aggressor's burst of 5
    serve::ServeRequest r;
    r.id = sent++;
    r.nodes = {i % 8};
    r.tenant = 1;
    fleet.submit(std::move(r), cq);
    if (i % 10 == 0) {  // victim traffic interleaved mid-storm
      serve::ServeRequest v;
      v.id = sent++;
      v.nodes = {i % 8};
      v.tenant = 2;
      fleet.submit(std::move(v), cq);
    }
  }
  serve::ServeResponse resp;
  for (std::size_t i = 0; i < sent; ++i) {
    ASSERT_TRUE(cq.wait_for(&resp, std::chrono::milliseconds(5000)))
        << "lost response " << i << " of " << sent;
  }

  std::size_t aggressor_refused = 0, victim_refused = 0, victim_admitted = 0;
  for (const auto& row : fleet.aggregate_tenants()) {
    if (row.tenant == 1) aggressor_refused = row.quota_refused;
    if (row.tenant == 2) {
      victim_refused = row.quota_refused;
      victim_admitted = row.admitted;
    }
  }
  EXPECT_EQ(aggressor_refused, 45u);  // 50 sent, burst of 5 admitted
  EXPECT_EQ(victim_refused, 0u);
  EXPECT_EQ(victim_admitted, 5u);  // every victim envelope landed
  fleet.stop();
}

TEST(TenancyFleet, ContractFlipMidStormLosesNoEnvelope) {
  // The registry's epoch-snapshot guarantee, end to end: contracts flip
  // while submitter threads storm the fleet, and every envelope still
  // gets exactly one response with a legal status.
  const Fixture fx;
  const std::string ckpt = fx.deploy("tenancy_flip.ckpt");
  TenantRegistry reg;
  TenantContract metered;
  metered.rate_per_s = 200.0;
  metered.burst = 20.0;
  TenantContract open;  // unmetered
  reg.set_contract(1, metered);
  reg.set_contract(2, metered);

  serve::FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  fc.tenants = &reg;
  serve::FleetManager fleet(fx.builder(ckpt), 1, fc);

  constexpr int kThreads = 2, kPer = 150;
  serve::CompletionQueue cq;
  std::atomic<std::uint64_t> next_id{0};
  std::vector<std::thread> storm;
  for (int t = 0; t < kThreads; ++t) {
    storm.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        serve::ServeRequest r;
        r.id = next_id.fetch_add(1);
        r.nodes = {(t * kPer + i) % 16};
        r.tenant = 1 + static_cast<std::uint32_t>(i % 2);
        fleet.submit(std::move(r), cq);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {  // flips race the storm
    reg.set_contract(1, (i % 2) ? open : metered);
    reg.set_contract(2, (i % 2) ? metered : open);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& th : storm) th.join();

  serve::ServeResponse resp;
  for (int i = 0; i < kThreads * kPer; ++i) {
    ASSERT_TRUE(cq.wait_for(&resp, std::chrono::milliseconds(5000)))
        << "lost response " << i;
    EXPECT_TRUE(resp.status == ServeStatus::kOk ||
                resp.status == ServeStatus::kShed ||
                resp.status == ServeStatus::kQuotaExceeded)
        << "status " << static_cast<int>(resp.status);
  }
  EXPECT_FALSE(cq.poll(&resp));  // exactly one response per envelope
  fleet.stop();
}

// --- MicroBatcher: eviction is globally least-slack across tenants ---------

class SlowSource : public serve::FeatureSource {
 public:
  SlowSource(std::unique_ptr<serve::FeatureSource> inner,
             std::chrono::milliseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}
  std::size_t num_rows() const override { return inner_->num_rows(); }
  std::size_t row_dim() const override { return inner_->row_dim(); }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override {
    std::this_thread::sleep_for(delay_);
    inner_->gather(rows, out);
  }
  const char* kind() const override { return "slow"; }

 private:
  std::unique_ptr<serve::FeatureSource> inner_;
  std::chrono::milliseconds delay_;
};

TEST(TenancyBatcher, EvictionPicksGlobalLeastSlackAcrossTenantSubQueues) {
  // Regression for the sub-queue split: the eviction victim must be the
  // least-slack kLow part across EVERY tenant's sub-queue, not the head
  // of the first (lowest-id) tenant's queue.  Tenant 1's part here has
  // hours of slack; tenant 5's has seconds — evicting by sub-queue order
  // would kill the servable part and keep the urgent one waiting.
  const Fixture fx;
  auto session = std::make_unique<serve::InferenceSession>(
      fx.make_model(),
      std::make_unique<SlowSource>(std::make_unique<serve::MemorySource>(fx.pre),
                                   std::chrono::milliseconds(60)));
  serve::MicroBatchConfig cfg;
  cfg.max_batch_size = 1;  // first part dispatches alone, rest queue
  cfg.max_delay = std::chrono::microseconds(100);
  cfg.queue_capacity = 3;
  cfg.shed_budget = std::chrono::hours(1);  // never binds on its own
  serve::MicroBatcher batcher(*session, cfg);
  serve::CompletionQueue cq;

  const auto envelope = [&](std::uint64_t id, std::int64_t node, Priority pri,
                            std::uint32_t tenant,
                            std::chrono::steady_clock::time_point deadline) {
    serve::ServeRequest r;
    r.id = id;
    r.nodes = {node};
    r.priority = pri;
    r.tenant = tenant;
    r.deadline = deadline;
    return std::make_shared<serve::RequestState>(std::move(r), &cq);
  };
  const auto none = std::chrono::steady_clock::time_point::max();
  const std::uint32_t slot0 = 0;

  auto serving = envelope(0, 0, Priority::kHigh, 0, none);
  ASSERT_EQ(batcher.try_submit_parts(serving, &slot0, 1),
            serve::RejectReason::kNone);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // in service

  // Queue (capacity 3): one kHigh filler plus two kLow parts from
  // different tenants.  Tenant 1 enqueues FIRST and has the far deadline;
  // tenant 5's later part is the globally least-slack one.
  auto filler = envelope(1, 1, Priority::kHigh, 0, none);
  ASSERT_EQ(batcher.try_submit_parts(filler, &slot0, 1),
            serve::RejectReason::kNone);
  auto far = envelope(2, 2, Priority::kLow, 1,
                      serve::deadline_in(std::chrono::hours(2)));
  ASSERT_EQ(batcher.try_submit_parts(far, &slot0, 1),
            serve::RejectReason::kNone);
  auto near = envelope(3, 3, Priority::kLow, 5,
                       serve::deadline_in(std::chrono::seconds(30)));
  ASSERT_EQ(batcher.try_submit_parts(near, &slot0, 1),
            serve::RejectReason::kNone);

  // A kHigh arrival at full capacity must evict tenant 5's near-deadline
  // part (least slack), not tenant 1's far-deadline one.
  auto high = envelope(4, 4, Priority::kHigh, 0, none);
  ASSERT_EQ(batcher.try_submit_parts(high, &slot0, 1),
            serve::RejectReason::kNone);

  std::map<std::uint64_t, ServeStatus> status;
  serve::ServeResponse r;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cq.wait_for(&r, std::chrono::milliseconds(5000)));
    status[r.id] = r.status;
  }
  EXPECT_EQ(status.at(3), ServeStatus::kShed);  // the true least-slack
  EXPECT_EQ(status.at(2), ServeStatus::kOk);    // far-deadline kLow served
  EXPECT_EQ(status.at(0), ServeStatus::kOk);
  EXPECT_EQ(status.at(1), ServeStatus::kOk);
  EXPECT_EQ(status.at(4), ServeStatus::kOk);
  batcher.stop();
}

}  // namespace
}  // namespace ppgnn::tenancy
