#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.h"
#include "graph/normalize.h"
#include "graph/spmm.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace ppgnn::graph {
namespace {

CsrGraph triangle_plus_leaf() {
  // 0-1, 1-2, 2-0, 2-3 (undirected).
  return build_csr(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
}

TEST(Csr, BuildSymmetrizesAndSorts) {
  const CsrGraph g = triangle_plus_leaf();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 8u);  // 4 undirected edges
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.degree(3), 1);
  const auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Csr, DeduplicatesEdges) {
  const CsrGraph g = build_csr(3, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Csr, DirectedBuild) {
  const CsrGraph g = build_csr(3, {{0, 1}, {1, 2}}, /*symmetrize=*/false);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Csr, RejectsOutOfRange) {
  EXPECT_THROW(build_csr(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(build_csr(2, {{-1, 0}}), std::invalid_argument);
}

TEST(Csr, SelfLoopsAddedOnce) {
  CsrGraph g = build_csr(3, {{0, 1}, {1, 1}});  // node 1 already has a loop
  const CsrGraph s = with_self_loops(g);
  EXPECT_EQ(s.degree(0), 2);  // loop + edge to 1
  EXPECT_EQ(s.degree(1), 2);  // existing loop kept once + edge to 0
  EXPECT_TRUE(s.has_edge(2, 2));
  for (NodeId v = 0; v < 3; ++v) EXPECT_TRUE(s.has_edge(v, v));
  const auto nbrs = s.neighbors(1);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Csr, TransposeReversesEdges) {
  const CsrGraph g = build_csr(3, {{0, 1}, {0, 2}}, false);
  const CsrGraph t = transpose(g);
  EXPECT_TRUE(t.has_edge(1, 0));
  EXPECT_TRUE(t.has_edge(2, 0));
  EXPECT_EQ(t.num_edges(), 2u);
  EXPECT_EQ(t.degree(0), 0);
}

TEST(Csr, TransposeCarriesWeights) {
  CsrGraph g = build_csr(2, {{0, 1}}, false);
  g.mutable_values() = {2.5f};
  const CsrGraph t = transpose(g);
  EXPECT_FLOAT_EQ(t.edge_values(1)[0], 2.5f);
}

TEST(Csr, MaxDegreeAndTopologyBytes) {
  const CsrGraph g = triangle_plus_leaf();
  EXPECT_EQ(g.max_degree(), 3);
  EXPECT_GT(g.topology_bytes(), 0u);
}

TEST(Normalize, SymNormRowsMatchFormula) {
  const CsrGraph g = triangle_plus_leaf();
  const CsrGraph b = sym_normalized(g);
  // With self loops: degrees become 3,3,4,2.
  // Edge (0,1): 1/sqrt(3*3).
  const auto nbrs = b.neighbors(0);
  const auto vals = b.edge_values(0);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == 1) EXPECT_NEAR(vals[i], 1.f / 3.f, 1e-6f);
    if (nbrs[i] == 0) EXPECT_NEAR(vals[i], 1.f / 3.f, 1e-6f);
    if (nbrs[i] == 2) EXPECT_NEAR(vals[i], 1.f / std::sqrt(12.f), 1e-6f);
  }
}

TEST(Normalize, SymNormIsSymmetricOperator) {
  const CsrGraph g = triangle_plus_leaf();
  const CsrGraph b = sym_normalized(g);
  // w(v,u) == w(u,v) for all edges.
  for (std::size_t v = 0; v < b.num_nodes(); ++v) {
    const auto nbrs = b.neighbors(static_cast<NodeId>(v));
    const auto vals = b.edge_values(static_cast<NodeId>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto u = nbrs[i];
      const auto back_nbrs = b.neighbors(u);
      const auto back_vals = b.edge_values(u);
      for (std::size_t j = 0; j < back_nbrs.size(); ++j) {
        if (back_nbrs[j] == static_cast<NodeId>(v)) {
          EXPECT_NEAR(vals[i], back_vals[j], 1e-6f);
        }
      }
    }
  }
}

TEST(Normalize, RowNormRowsSumToOne) {
  const CsrGraph g = triangle_plus_leaf();
  const CsrGraph b = row_normalized(g);
  for (std::size_t v = 0; v < b.num_nodes(); ++v) {
    float s = 0;
    for (const float w : b.edge_values(static_cast<NodeId>(v))) s += w;
    EXPECT_NEAR(s, 1.f, 1e-5f);
  }
}

TEST(Normalize, RowNormPreservesConstantVector) {
  // Row-stochastic operator: B * 1 = 1.
  const CsrGraph g = triangle_plus_leaf();
  const CsrGraph b = row_normalized(g);
  const Tensor ones = Tensor::full({4, 1}, 1.f);
  const Tensor y = spmm(b, ones);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], 1.f, 1e-5f);
}

TEST(Homophily, PerfectAndMixed) {
  const CsrGraph g = build_csr(4, {{0, 1}, {2, 3}});
  EXPECT_DOUBLE_EQ(edge_homophily(g, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(edge_homophily(g, {0, 1, 0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(edge_homophily(g, {0, 0, 0, 1}), 0.5);
  // Unlabeled endpoints are skipped.
  EXPECT_DOUBLE_EQ(edge_homophily(g, {0, 0, -1, 1}), 1.0);
}

TEST(Spmm, MatchesDenseMultiply) {
  Rng rng(1);
  const CsrGraph g = triangle_plus_leaf();
  const CsrGraph b = sym_normalized(g);
  Tensor x = Tensor::normal({4, 3}, rng);
  const Tensor y = spmm(b, x);
  // Dense reference.
  Tensor dense({4, 4});
  for (std::size_t v = 0; v < 4; ++v) {
    const auto nbrs = b.neighbors(static_cast<NodeId>(v));
    const auto vals = b.edge_values(static_cast<NodeId>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      dense.at(v, nbrs[i]) = vals[i];
    }
  }
  EXPECT_TRUE(allclose(y, matmul(dense, x), 1e-4f, 1e-5f));
}

TEST(Spmm, UnweightedSumsNeighbors) {
  const CsrGraph g = build_csr(3, {{0, 1}, {0, 2}});
  Tensor x = Tensor::from_vector({3, 1}, {1, 10, 100});
  const Tensor y = spmm(g, x);
  EXPECT_FLOAT_EQ(y[0], 110.f);
  EXPECT_FLOAT_EQ(y[1], 1.f);
  EXPECT_FLOAT_EQ(y[2], 1.f);
}

TEST(Spmm, RowsSubsetAndMean) {
  const CsrGraph g = build_csr(3, {{0, 1}, {0, 2}});
  Tensor x = Tensor::from_vector({3, 1}, {1, 10, 100});
  Tensor y({1, 1});
  spmm_rows(g, {0}, x, y);
  EXPECT_FLOAT_EQ(y[0], 110.f);
  spmm_mean_rows(g, {0}, x, y);
  EXPECT_FLOAT_EQ(y[0], 55.f);
}

TEST(Spmm, ShapeValidation) {
  const CsrGraph g = triangle_plus_leaf();
  Tensor x({3, 2});  // wrong rows
  Tensor y({4, 2});
  EXPECT_THROW(spmm(g, x, y), std::invalid_argument);
}

}  // namespace
}  // namespace ppgnn::graph
