#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "loader/host_loader.h"
#include "loader/placement.h"
#include "loader/prefetch.h"
#include "loader/shuffler.h"
#include "loader/storage.h"
#include "tensor/ops.h"

namespace ppgnn::loader {
namespace {

TEST(Shuffler, RandomReshuffleIsPermutation) {
  Rng rng(1);
  const RandomReshuffler rr;
  const auto order = rr.epoch_order(1000, rng);
  std::vector<bool> seen(1000, false);
  for (const auto i : order) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, 1000);
    EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = true;
  }
  // Actually shuffled (astronomically unlikely to be identity).
  bool identity = true;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != static_cast<std::int64_t>(i)) identity = false;
  }
  EXPECT_FALSE(identity);
}

TEST(Shuffler, DifferentEpochsDiffer) {
  Rng rng(2);
  const RandomReshuffler rr;
  EXPECT_NE(rr.epoch_order(100, rng), rr.epoch_order(100, rng));
}

TEST(Shuffler, ChunkReshuffleKeepsRunsContiguous) {
  Rng rng(3);
  const ChunkReshuffler cr(10);
  const auto order = cr.epoch_order(100, rng);
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < 100; i += 10) {
    EXPECT_EQ(order[i] % 10, 0);  // runs start at chunk boundaries
    for (std::size_t j = 1; j < 10; ++j) {
      EXPECT_EQ(order[i + j], order[i] + static_cast<std::int64_t>(j));
    }
  }
}

TEST(Shuffler, ChunkReshuffleHandlesTail) {
  Rng rng(4);
  const ChunkReshuffler cr(8);
  const auto order = cr.epoch_order(21, rng);  // chunks of 8, 8, 5
  ASSERT_EQ(order.size(), 21u);
  std::unordered_set<std::int64_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 21u);
}

TEST(Shuffler, ChunkSizeOneEqualsRR) {
  // Same rng seed: chunk-1 reshuffling is exactly SGD-RR.
  Rng r1(5), r2(5);
  const ChunkReshuffler cr(1);
  const RandomReshuffler rr;
  EXPECT_EQ(cr.epoch_order(64, r1), rr.epoch_order(64, r2));
}

TEST(Shuffler, FactoryPicksImplementation) {
  EXPECT_EQ(make_shuffler(1)->name(), "SGD-RR");
  EXPECT_EQ(make_shuffler(8000)->name(), "SGD-CR(8000)");
  EXPECT_THROW(ChunkReshuffler(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------

class BatchSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(6);
    feats_ = Tensor::normal({103, 7}, rng);
    labels_.resize(103);
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      labels_[i] = static_cast<std::int32_t>(i % 5);
    }
  }
  Tensor feats_;
  std::vector<std::int32_t> labels_;
};

TEST_F(BatchSourceTest, BaselineAndFusedProduceIdenticalBatches) {
  BatchSource src(&feats_, labels_.data(), 16);
  Rng rng(7);
  src.set_epoch_order(RandomReshuffler().epoch_order(103, rng));
  ASSERT_EQ(src.num_batches(), 7u);  // ceil(103/16)
  for (std::size_t k = 0; k < src.num_batches(); ++k) {
    const MiniBatch a = src.assemble_baseline(k);
    const MiniBatch b = src.assemble_fused(k);
    EXPECT_TRUE(allclose(a.features, b.features));
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.indices, b.indices);
  }
}

TEST_F(BatchSourceTest, LastBatchIsShort) {
  BatchSource src(&feats_, labels_.data(), 16);
  const MiniBatch last = src.assemble_fused(6);
  EXPECT_EQ(last.features.rows(), 103u - 6 * 16);
}

TEST_F(BatchSourceTest, BatchContentMatchesOrder) {
  BatchSource src(&feats_, labels_.data(), 10);
  std::vector<std::int64_t> order(103);
  std::iota(order.rbegin(), order.rend(), 0);  // reversed
  src.set_epoch_order(order);
  const MiniBatch mb = src.assemble_fused(0);
  EXPECT_EQ(mb.indices[0], 102);
  EXPECT_TRUE(allclose(gather_rows(feats_, {102, 101}),
                       gather_rows(mb.features, {0, 1})));
  EXPECT_EQ(mb.labels[0], labels_[102]);
}

TEST_F(BatchSourceTest, Validation) {
  EXPECT_THROW(BatchSource(nullptr, labels_.data(), 4), std::invalid_argument);
  EXPECT_THROW(BatchSource(&feats_, labels_.data(), 0), std::invalid_argument);
  BatchSource src(&feats_, labels_.data(), 16);
  EXPECT_THROW(src.set_epoch_order({1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(src.assemble_fused(99), std::out_of_range);
}

// ---------------------------------------------------------------------------

TEST(Prefetcher, DeliversAllBatchesInOrder) {
  Rng rng(8);
  Tensor feats = Tensor::normal({64, 4}, rng);
  std::vector<std::int32_t> labels(64, 1);
  BatchSource src(&feats, labels.data(), 8);
  PrefetchingLoader loader(
      [&](std::size_t k) { return src.assemble_fused(k); },
      src.num_batches());
  MiniBatch mb;
  std::size_t count = 0;
  std::int64_t expect_first = 0;
  while (loader.next(mb)) {
    EXPECT_EQ(mb.indices[0], expect_first);  // identity order
    expect_first += 8;
    ++count;
  }
  EXPECT_EQ(count, 8u);
  EXPECT_FALSE(loader.next(mb));  // exhausted stays exhausted
}

TEST(Prefetcher, ProducerRunsAheadAtMostTwo) {
  std::atomic<int> produced{0};
  PrefetchingLoader loader(
      [&](std::size_t) {
        ++produced;
        MiniBatch mb;
        mb.features = Tensor({1, 1});
        return mb;
      },
      10);
  // Give the producer time: it may fill the two buffers plus one in-flight.
  MiniBatch mb;
  ASSERT_TRUE(loader.next(mb));
  for (int spin = 0; spin < 1000 && produced.load() < 3; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_LE(produced.load(), 4);  // 1 consumed + 2 buffered + 1 in flight
}

TEST(Prefetcher, ProducerExceptionReachesConsumer) {
  // A storage error on the loader thread must surface as an exception from
  // next() on the consumer thread — never std::terminate.
  PrefetchingLoader loader(
      [](std::size_t k) -> MiniBatch {
        if (k == 2) throw std::runtime_error("injected read failure");
        MiniBatch mb;
        mb.features = Tensor({1, 1});
        mb.labels = {0};
        mb.indices = {static_cast<std::int64_t>(k)};
        return mb;
      },
      /*num_batches=*/8);
  MiniBatch mb;
  std::size_t delivered = 0;
  try {
    while (loader.next(mb)) ++delivered;
    FAIL() << "expected the injected failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected read failure");
  }
  EXPECT_LE(delivered, 2u);
}

TEST(Prefetcher, DestructionWithUnconsumedBatchesIsClean) {
  auto loader = std::make_unique<PrefetchingLoader>(
      [](std::size_t) {
        MiniBatch mb;
        mb.features = Tensor({2, 2});
        return mb;
      },
      100);
  MiniBatch mb;
  ASSERT_TRUE(loader->next(mb));
  loader.reset();  // must join without deadlock
  SUCCEED();
}

// ---------------------------------------------------------------------------

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(9);
    for (int h = 0; h < 3; ++h) {
      hops_.push_back(Tensor::normal({50, 6}, rng));
    }
    dir_ = ::testing::TempDir() + "/ppgnn_store_test";
  }
  std::vector<Tensor> hops_;
  std::string dir_;
};

TEST_F(StorageTest, ChunkReadRoundTrips) {
  const auto store = FeatureFileStore::create(dir_, hops_);
  EXPECT_EQ(store.num_rows(), 50u);
  EXPECT_EQ(store.row_bytes(), 3u * 6 * 4);
  Tensor out({10, 18});
  store.read_chunk(20, 10, out);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t h = 0; h < 3; ++h) {
      for (std::size_t j = 0; j < 6; ++j) {
        EXPECT_FLOAT_EQ(out.at(i, h * 6 + j), hops_[h].at(20 + i, j));
      }
    }
  }
}

TEST_F(StorageTest, RandomRowReadMatchesChunkRead) {
  const auto store = FeatureFileStore::create(dir_, hops_);
  Tensor rows({3, 18});
  store.read_rows({5, 49, 0}, rows);
  Tensor chunk({1, 18});
  store.read_chunk(49, 1, chunk);
  for (std::size_t j = 0; j < 18; ++j) {
    EXPECT_FLOAT_EQ(rows.at(1, j), chunk.at(0, j));
  }
}

TEST_F(StorageTest, ReopenSeesSameData) {
  { const auto store = FeatureFileStore::create(dir_, hops_); }
  const auto reopened = FeatureFileStore::open(dir_, 50, 3, 6);
  Tensor out({50, 18});
  reopened.read_chunk(0, 50, out);
  EXPECT_FLOAT_EQ(out.at(7, 0), hops_[0].at(7, 0));
  EXPECT_FLOAT_EQ(out.at(7, 12), hops_[2].at(7, 0));
}

TEST_F(StorageTest, BoundsChecked) {
  const auto store = FeatureFileStore::create(dir_, hops_);
  Tensor out({10, 18});
  EXPECT_THROW(store.read_chunk(45, 10, out), std::out_of_range);
  Tensor bad({10, 7});
  EXPECT_THROW(store.read_chunk(0, 10, bad), std::invalid_argument);
  Tensor rows({1, 18});
  EXPECT_THROW(store.read_rows({50}, rows), std::out_of_range);
  EXPECT_THROW(store.read_rows({-1}, rows), std::out_of_range);
}

TEST_F(StorageTest, CreateValidatesShapes) {
  hops_.push_back(Tensor({50, 7}));  // wrong dim
  EXPECT_THROW(FeatureFileStore::create(dir_, hops_), std::invalid_argument);
  EXPECT_THROW(FeatureFileStore::create(dir_, {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------

TEST(Placement, SmallInputGoesToGpu) {
  const auto m = sim::MachineSpec::paper_server();
  PlacementRequest req;
  req.input_bytes = std::size_t{3} << 30;   // 3 GiB (papers100M-like)
  req.model_peak_bytes = std::size_t{2} << 30;
  const auto d = decide_placement(req, m);
  EXPECT_EQ(d.placement, sim::DataPlacement::kGpu);
  EXPECT_FALSE(d.chunk_reshuffle);
}

TEST(Placement, MediumInputGoesToHostWithChunks) {
  const auto m = sim::MachineSpec::paper_server();
  PlacementRequest req;
  req.input_bytes = std::size_t{160} << 30;  // 160 GiB (igb-medium R=3)
  req.model_peak_bytes = std::size_t{4} << 30;
  const auto d = decide_placement(req, m);
  EXPECT_EQ(d.placement, sim::DataPlacement::kHost);
  EXPECT_TRUE(d.chunk_reshuffle);
  EXPECT_EQ(d.loader, sim::LoaderKind::kChunkPipeline);
}

TEST(Placement, PinningBudgetFallsBackToRR) {
  const auto m = sim::MachineSpec::paper_server();
  PlacementRequest req;
  req.input_bytes = std::size_t{300} << 30;  // fits 380 GB but > 50% pinnable
  req.model_peak_bytes = std::size_t{4} << 30;
  const auto d = decide_placement(req, m);
  EXPECT_EQ(d.placement, sim::DataPlacement::kHost);
  EXPECT_FALSE(d.chunk_reshuffle);
}

TEST(Placement, UserForcesRR) {
  const auto m = sim::MachineSpec::paper_server();
  PlacementRequest req;
  req.input_bytes = std::size_t{100} << 30;
  req.model_peak_bytes = std::size_t{4} << 30;
  req.force_sgd_rr = true;
  const auto d = decide_placement(req, m);
  EXPECT_FALSE(d.chunk_reshuffle);
}

TEST(Placement, HugeInputGoesToStorage) {
  const auto m = sim::MachineSpec::paper_server();
  PlacementRequest req;
  req.input_bytes = std::size_t{1600} << 30;  // igb-large after expansion
  req.model_peak_bytes = std::size_t{8} << 30;
  const auto d = decide_placement(req, m);
  EXPECT_EQ(d.placement, sim::DataPlacement::kStorage);
  EXPECT_TRUE(d.chunk_reshuffle);
}

TEST(Placement, MultiGpuExpandsGpuBudget) {
  const auto m = sim::MachineSpec::paper_server();
  PlacementRequest req;
  req.input_bytes = std::size_t{100} << 30;  // > 1 GPU (48G), < 4 GPUs
  req.model_peak_bytes = std::size_t{2} << 30;
  req.num_gpus = 4;
  const auto d4 = decide_placement(req, m);
  EXPECT_EQ(d4.placement, sim::DataPlacement::kGpu);
  req.num_gpus = 1;
  const auto d1 = decide_placement(req, m);
  EXPECT_EQ(d1.placement, sim::DataPlacement::kHost);
}

}  // namespace
}  // namespace ppgnn::loader
