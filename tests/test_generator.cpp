#include "graph/generator.h"

#include <gtest/gtest.h>

#include "graph/dataset.h"
#include "graph/normalize.h"

namespace ppgnn::graph {
namespace {

TEST(AliasTable, MatchesWeightsEmpirically) {
  const std::vector<double> w{1.0, 3.0, 6.0};
  const AliasTable table(w);
  Rng rng(1);
  std::vector<std::size_t> counts(3, 0);
  const std::size_t draws = 100000;
  for (std::size_t i = 0; i < draws; ++i) ++counts[table.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / draws, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / draws, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / draws, 0.6, 0.01);
}

TEST(AliasTable, RejectsBadWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
}

TEST(AliasTable, SingleElement) {
  const AliasTable table(std::vector<double>{5.0});
  Rng rng(2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(Sbm, Deterministic) {
  SbmConfig cfg;
  cfg.num_nodes = 500;
  cfg.seed = 7;
  const SbmGraph a = generate_sbm(cfg);
  const SbmGraph b = generate_sbm(cfg);
  EXPECT_EQ(a.graph.indices(), b.graph.indices());
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Sbm, AverageDegreeNearTarget) {
  SbmConfig cfg;
  cfg.num_nodes = 4000;
  cfg.avg_degree = 16.0;
  cfg.seed = 8;
  const SbmGraph g = generate_sbm(cfg);
  // Dedup removes a few duplicate edges; allow 15% slack.
  EXPECT_NEAR(g.graph.avg_degree(), 16.0, 2.5);
}

TEST(Sbm, HomophilyControlsEdgeHomophily) {
  SbmConfig lo, hi;
  lo.num_nodes = hi.num_nodes = 4000;
  lo.num_classes = hi.num_classes = 4;
  lo.seed = hi.seed = 9;
  lo.homophily = 0.2;
  hi.homophily = 0.9;
  const SbmGraph gl = generate_sbm(lo);
  const SbmGraph gh = generate_sbm(hi);
  const double hl = edge_homophily(gl.graph, gl.labels);
  const double hh = edge_homophily(gh.graph, gh.labels);
  EXPECT_LT(hl, 0.5);
  EXPECT_GT(hh, 0.8);
  EXPECT_GT(hh, hl + 0.3);
}

TEST(Sbm, PowerLawProducesHeavyTail) {
  SbmConfig cfg;
  cfg.num_nodes = 5000;
  cfg.avg_degree = 10;
  cfg.seed = 10;
  const SbmGraph g = generate_sbm(cfg);
  EXPECT_GT(g.graph.max_degree(), 4 * 10);  // hub nodes exist
}

TEST(Sbm, ClassesUncorrelatedWithNodeId) {
  // Chunk reshuffling relies on contiguous id ranges being class-balanced.
  SbmConfig cfg;
  cfg.num_nodes = 8000;
  cfg.num_classes = 4;
  cfg.seed = 11;
  const SbmGraph g = generate_sbm(cfg);
  // Compare class histograms of the first and second half.
  std::vector<int> first(4, 0), second(4, 0);
  for (std::size_t v = 0; v < 4000; ++v) ++first[g.labels[v]];
  for (std::size_t v = 4000; v < 8000; ++v) ++second[g.labels[v]];
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(first[c], second[c], 200);
  }
}

TEST(Sbm, RejectsBadConfig) {
  SbmConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(generate_sbm(cfg), std::invalid_argument);
  cfg.num_nodes = 10;
  cfg.homophily = 1.5;
  EXPECT_THROW(generate_sbm(cfg), std::invalid_argument);
}

TEST(Features, ClassMeansSeparate) {
  const std::vector<std::int32_t> labels{0, 0, 0, 1, 1, 1};
  FeatureConfig fc;
  fc.dim = 64;
  fc.signal = 5.0;  // strong signal for a crisp test
  fc.noise_dims_fraction = 0.0;
  const Tensor x = generate_features(labels, 2, fc);
  // Within-class distance << between-class distance.
  auto dist = [&](std::size_t a, std::size_t b) {
    double d = 0;
    for (std::size_t j = 0; j < 64; ++j) {
      const double diff = x.at(a, j) - x.at(b, j);
      d += diff * diff;
    }
    return d;
  };
  EXPECT_LT(dist(0, 1), dist(0, 3));
  EXPECT_LT(dist(3, 4), dist(2, 5));
}

TEST(Features, NoiseDimsCarryNoSignal) {
  std::vector<std::int32_t> labels(2000);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2;
  FeatureConfig fc;
  fc.dim = 8;
  fc.signal = 10.0;
  fc.noise_dims_fraction = 0.5;  // last 4 dims are noise
  const Tensor x = generate_features(labels, 2, fc);
  for (std::size_t j = 4; j < 8; ++j) {
    double m0 = 0, m1 = 0;
    for (std::size_t i = 0; i < 2000; ++i) {
      (labels[i] == 0 ? m0 : m1) += x.at(i, j);
    }
    EXPECT_NEAR(m0 / 1000 - m1 / 1000, 0.0, 0.2);
  }
}

TEST(Split, FractionsRespected) {
  SplitConfig sc;
  sc.train = 0.6;
  sc.valid = 0.2;
  sc.test = 0.2;
  const Split s = make_split(1000, sc);
  EXPECT_EQ(s.train.size(), 600u);
  EXPECT_EQ(s.valid.size(), 200u);
  EXPECT_EQ(s.test.size(), 200u);
}

TEST(Split, PartialLabeling) {
  SplitConfig sc;
  sc.labeled_fraction = 0.1;
  const Split s = make_split(10000, sc);
  EXPECT_NEAR(s.train.size() + s.valid.size() + s.test.size(), 1000, 5);
}

TEST(Split, DisjointIndices) {
  const Split s = make_split(500, {});
  std::vector<bool> seen(500, false);
  for (const auto v :
       {std::cref(s.train), std::cref(s.valid), std::cref(s.test)}) {
    for (const auto i : v.get()) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
      seen[static_cast<std::size_t>(i)] = true;
    }
  }
}

TEST(Split, RejectsOverfullFractions) {
  SplitConfig sc;
  sc.train = 0.8;
  sc.valid = 0.3;
  EXPECT_THROW(make_split(100, sc), std::invalid_argument);
}

TEST(Dataset, AllAnaloguesGenerate) {
  for (const auto name : all_datasets()) {
    const Dataset ds = make_dataset(name, /*scale=*/0.05);
    EXPECT_GT(ds.num_nodes(), 0u) << to_string(name);
    EXPECT_GT(ds.graph.num_edges(), 0u);
    EXPECT_EQ(ds.features.rows(), ds.num_nodes());
    EXPECT_EQ(ds.labels.size(), ds.num_nodes());
    EXPECT_FALSE(ds.split.train.empty());
    EXPECT_GT(ds.paper.nodes, 1000000u);  // Table 2 scale retained
  }
}

TEST(Dataset, PapersAnalogueMostlyUnlabeled) {
  const Dataset ds = make_dataset(DatasetName::kPapers100MSim, 0.2);
  std::size_t labeled = 0;
  for (const auto y : ds.labels) {
    if (y >= 0) ++labeled;
  }
  // The analogue keeps a small labeled fraction (10%) so the sparse-label
  // code path (propagate over all nodes, train on few) is exercised; the
  // paper-scale statistic stays at the true 1.4%.
  EXPECT_LT(static_cast<double>(labeled) / ds.num_nodes(), 0.15);
  EXPECT_NEAR(ds.paper.labeled_fraction, 0.014, 1e-9);
}

TEST(Dataset, PaperScaleExpansion) {
  // Table 2 / Section 3.4: igb-large features 400 GB, 1.6 TB after R=3.
  const PaperScale igb = paper_scale(DatasetName::kIgbLargeSim);
  const double feat_gb = static_cast<double>(igb.feature_bytes()) / 1e9;
  EXPECT_NEAR(feat_gb, 400.0, 15.0);
  const double pre_tb =
      static_cast<double>(igb.preprocessed_bytes(3)) / 1e12;
  EXPECT_NEAR(pre_tb, 1.6, 0.1);
}

TEST(Dataset, WikiLessHomophilousThanProducts) {
  // Raw edge homophily is not comparable across class counts (random
  // baseline is 1/K); compare the lift over random instead.
  const Dataset wiki = make_dataset(DatasetName::kWikiSim, 0.25);
  const Dataset prod = make_dataset(DatasetName::kProductsSim, 0.25);
  const double wiki_lift = wiki.homophily - 1.0 / wiki.num_classes;
  const double prod_lift = prod.homophily - 1.0 / prod.num_classes;
  EXPECT_LT(wiki_lift, prod_lift - 0.10);
}

TEST(Dataset, LabelsAtGathersSplitLabels) {
  const Dataset ds = make_dataset(DatasetName::kPokecSim, 0.1);
  const auto y = ds.labels_at(ds.split.valid);
  ASSERT_EQ(y.size(), ds.split.valid.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y[i], ds.labels[static_cast<std::size_t>(ds.split.valid[i])]);
  }
}

TEST(Dataset, RejectsBadScale) {
  EXPECT_THROW(make_dataset(DatasetName::kPokecSim, 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_dataset(DatasetName::kPokecSim, 1.5),
               std::invalid_argument);
}


TEST(Features, LocalDimsCarryStrongClassSignal) {
  // Tail dims get means scaled by local_signal; verify the class-mean
  // separation on those dims is much larger than on the weak-signal dims.
  std::vector<std::int32_t> labels(4000);
  Rng lr(3);
  for (auto& y : labels) y = static_cast<std::int32_t>(lr.uniform_int(4));
  FeatureConfig fc;
  fc.dim = 40;
  fc.signal = 0.05;
  fc.local_dims_fraction = 0.25;  // last 10 dims
  fc.local_signal = 1.0;
  fc.seed = 4;
  const Tensor x = generate_features(labels, 4, fc);

  const auto class_mean = [&](std::size_t c, std::size_t d) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t v = 0; v < labels.size(); ++v) {
      if (static_cast<std::size_t>(labels[v]) == c) {
        sum += x.at(v, d);
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  // Mean absolute between-class gap, averaged over a few dims.
  const auto gap_at = [&](std::size_t d0) {
    double gap = 0;
    for (std::size_t d = d0; d < d0 + 5; ++d) {
      gap += std::abs(class_mean(0, d) - class_mean(1, d));
    }
    return gap / 5.0;
  };
  EXPECT_GT(gap_at(35), gap_at(0) * 2.0);  // local dims >> weak dims
}

TEST(Features, LocalFractionValidation) {
  std::vector<std::int32_t> labels{0, 1, 0, 1};
  FeatureConfig fc;
  fc.dim = 8;
  fc.local_dims_fraction = 1.5;
  EXPECT_THROW(generate_features(labels, 2, fc), std::invalid_argument);
}

TEST(Dataset, WikiGroupsClassesIntoBlocks) {
  // wiki uses classes_per_block = 2: label homophily is far below the SBM
  // block homophily (0.60) because within-block neighbors split across the
  // two grouped classes — the analogue's non-homophily mechanism.
  const Dataset wiki = make_dataset(DatasetName::kWikiSim, 0.25);
  // True-label homophily ~0.49 = block homophily (0.60) deflated by the
  // 50/50 within-block class split; products measures ~0.72.
  EXPECT_LT(wiki.homophily, 0.55);
  EXPECT_GT(wiki.homophily, 0.20);  // still informative, not random
  // All 5 classes present.
  std::vector<std::size_t> counts(wiki.num_classes, 0);
  for (const auto y : wiki.labels) {
    if (y >= 0) ++counts[static_cast<std::size_t>(y)];
  }
  for (const auto c : counts) EXPECT_GT(c, wiki.num_nodes() / 50);
}

}  // namespace
}  // namespace ppgnn::graph
