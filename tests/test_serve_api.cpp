// Serving API v2 (src/serve/serve_api.h): the ServeRequest/ServeResponse
// envelope, CompletionQueue delivery, multi-node split/merge, and the
// deadline-aware admission layer behind them.
//
// Determinism strategy mirrors test_autoscale: the shed/eviction POLICY is
// pure and clock-injected (effective_deadline / least_slack_index), so its
// tests replay staged synthetic-clock traces and assert exact victims; the
// runtime tests stage queues with a SlowSource and generous sleep margins
// (sanitizer slowdown must not flip outcomes) or assert completion counts
// and bit-identity rather than timings.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/precompute.h"
#include "core/sign.h"
#include "graph/dataset.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/serve_api.h"
#include "serve/server_stats.h"

namespace ppgnn::serve {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// Decorator that makes every gather take `delay` of wall time, so a
// dispatched batch occupies the replica long enough for the test to build
// queue state behind it.
class SlowSource : public FeatureSource {
 public:
  SlowSource(std::unique_ptr<FeatureSource> inner,
             std::chrono::milliseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}
  std::size_t num_rows() const override { return inner_->num_rows(); }
  std::size_t row_dim() const override { return inner_->row_dim(); }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override {
    std::this_thread::sleep_for(delay_);
    inner_->gather(rows, out);
  }
  const char* kind() const override { return "slow"; }

 private:
  std::unique_ptr<FeatureSource> inner_;
  std::chrono::milliseconds delay_;
};

struct Fixture {
  graph::Dataset ds;
  core::Preprocessed pre;

  explicit Fixture(double scale = 0.02, std::size_t hops = 2)
      : ds(graph::make_dataset(graph::DatasetName::kPokecSim, scale)) {
    core::PrecomputeConfig pc;
    pc.hops = hops;
    pre = core::precompute(ds.graph, ds.features, pc);
  }

  std::unique_ptr<core::PpModel> make_model(std::uint64_t seed = 7) const {
    Rng rng(seed);
    core::SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = pre.num_hops();
    cfg.hidden = 16;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  }

  FleetBuilder builder(const std::string& ckpt) const {
    return FleetBuilder(
        ckpt, [this](std::size_t i) { return make_model(100 + i); },
        [this](std::size_t) { return std::make_unique<MemorySource>(pre); });
  }

  std::string deploy(const char* name) const {
    const std::string ckpt = tmp_path(name);
    auto trained = make_model(21);
    save_deployed_model(*trained, ckpt);
    return ckpt;
  }

  std::unique_ptr<InferenceSession> make_slow_session(
      std::chrono::milliseconds delay) const {
    return std::make_unique<InferenceSession>(
        make_model(), std::make_unique<SlowSource>(
                          std::make_unique<MemorySource>(pre), delay));
  }
};

// --- Pure pieces ----------------------------------------------------------

TEST(ServeApi, TopKOrderedByScoreTiesToLowerClass) {
  const float row[] = {0.5f, 2.0f, -1.0f, 2.0f, 1.0f};
  const auto top = topk_of_row(row, 5, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].cls, 1);  // 2.0, lower id wins the tie with class 3
  EXPECT_EQ(top[1].cls, 3);  // 2.0
  EXPECT_EQ(top[2].cls, 4);  // 1.0
  EXPECT_FLOAT_EQ(top[0].score, 2.0f);
  // k > n clamps.
  EXPECT_EQ(topk_of_row(row, 5, 99).size(), 5u);
}

TEST(ServeApi, WorseStatusTakesTheWorstPart) {
  EXPECT_EQ(worse_status(ServeStatus::kOk, ServeStatus::kShed),
            ServeStatus::kShed);
  EXPECT_EQ(worse_status(ServeStatus::kDeadlineExceeded, ServeStatus::kShed),
            ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(worse_status(ServeStatus::kOk, ServeStatus::kOk),
            ServeStatus::kOk);
  EXPECT_EQ(worse_status(ServeStatus::kDraining, ServeStatus::kError),
            ServeStatus::kError);
}

// The shed policy is a pure function of (entries, now, budget): replay a
// staged synthetic-clock trace and assert the exact victim order — the
// determinism the deadline-shed machinery inherits.
TEST(SlackPolicy, StagedSyntheticClockTraceOrdersBySlackNotFifo) {
  using tp = std::chrono::steady_clock::time_point;
  using ms = std::chrono::milliseconds;
  const tp t0{};  // synthetic epoch
  const auto budget = ms(10);
  // Staged queue, enqueue order e0..e3 (FIFO order), deadlines out of
  // order:
  //   e0: enqueued 0ms, no explicit deadline  -> effective 10ms
  //   e1: enqueued 2ms, deadline 6ms          -> effective  6ms
  //   e2: enqueued 4ms, deadline 30ms         -> effective 14ms
  //   e3: enqueued 5ms, no explicit deadline  -> effective 15ms
  std::vector<SlackView> q{{t0, tp::max()},
                           {t0 + ms(2), t0 + ms(6)},
                           {t0 + ms(4), t0 + ms(30)},
                           {t0 + ms(5), tp::max()}};
  EXPECT_EQ(effective_deadline(q[0], budget), t0 + ms(10));
  EXPECT_EQ(effective_deadline(q[1], budget), t0 + ms(6));
  EXPECT_EQ(effective_deadline(q[2], budget), t0 + ms(14));
  EXPECT_EQ(effective_deadline(q[3], budget), t0 + ms(15));
  // Eviction order: e1 (6ms) first — FIFO would have killed e0, which
  // still has 10ms of life.  Then e0, e2, e3.
  EXPECT_EQ(least_slack_index(q, budget), 1u);
  q.erase(q.begin() + 1);
  EXPECT_EQ(least_slack_index(q, budget), 0u);  // e0
  q.erase(q.begin());
  EXPECT_EQ(least_slack_index(q, budget), 0u);  // e2 (14 < 15)
  q.erase(q.begin());
  EXPECT_EQ(least_slack_index(q, budget), 0u);  // e3 last
  // Zero budget: only explicit deadlines bind.
  std::vector<SlackView> open{{t0, tp::max()}, {t0 + ms(1), t0 + ms(4)}};
  EXPECT_EQ(effective_deadline(open[0], ms(0)), tp::max());
  EXPECT_EQ(least_slack_index(open, ms(0)), 1u);
  // No explicit deadlines at all: slack order degenerates to drop-head
  // FIFO (oldest entry has the nearest aged deadline; ties keep index 0).
  std::vector<SlackView> fifo{{t0, tp::max()},
                              {t0 + ms(1), tp::max()},
                              {t0 + ms(2), tp::max()}};
  EXPECT_EQ(least_slack_index(fifo, budget), 0u);
  EXPECT_EQ(least_slack_index({}, budget), SIZE_MAX);
}

TEST(ServeApi, SplitByRingGroupsSlotsByHome) {
  const HashRing ring({10, 11, 12});
  std::vector<std::int64_t> nodes{0, 1, 2, 3, 4, 5, 0, 1};
  std::vector<std::uint32_t> slots(nodes.size());
  for (std::uint32_t i = 0; i < slots.size(); ++i) slots[i] = i;
  const auto groups = split_by_ring(nodes, slots, ring);
  std::size_t total = 0;
  for (const auto& g : groups) {
    ASSERT_LT(g.member, 3u);
    for (const auto slot : g.slots) {
      // Every slot lands on its node's ring home — the cache_affinity
      // invariant the envelope split must preserve.
      EXPECT_EQ(g.member, ring.lookup(nodes[slot])) << "slot " << slot;
      ++total;
    }
  }
  EXPECT_EQ(total, nodes.size());
  // Pure function of (nodes, slots, ring): identical call, identical split.
  const auto again = split_by_ring(nodes, slots, ring);
  ASSERT_EQ(again.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ(again[g].member, groups[g].member);
    EXPECT_EQ(again[g].slots, groups[g].slots);
  }
}

TEST(CompletionQueue, PollWaitAndCallbackModes) {
  CompletionQueue polled;
  ServeResponse r;
  EXPECT_FALSE(polled.poll(&r));
  {
    ServeResponse in;
    in.id = 42;
    polled.deliver(std::move(in));
  }
  EXPECT_EQ(polled.ready(), 1u);
  ASSERT_TRUE(polled.poll(&r));
  EXPECT_EQ(r.id, 42u);
  EXPECT_EQ(polled.delivered(), 1u);
  EXPECT_FALSE(polled.wait_for(&r, std::chrono::milliseconds(1)));

  std::atomic<std::uint64_t> seen{0};
  CompletionQueue cb([&seen](ServeResponse&& resp) { seen = resp.id; });
  ServeResponse in;
  in.id = 7;
  cb.deliver(std::move(in));
  EXPECT_EQ(seen.load(), 7u);
  EXPECT_EQ(cb.delivered(), 1u);
  EXPECT_EQ(cb.ready(), 0u);  // callback mode never queues
}

// --- ServerStats: per-stage gauges + the shed-wait honesty fix ------------

TEST(ServerStats, StageGaugesRecordShedWaitAndSurviveMergeOnce) {
  ServerStats a;
  a.record_stages(100.0, 10.0, 50.0);
  a.record_stages(300.0, 30.0, 150.0);
  // The bugfix under test: a request shed before dispatch still records
  // the admission wait its client paid — the shed-latency column must not
  // read zero.
  a.record_shed_wait(2000.0);
  a.record_deadline_miss();

  ServerStats pooled;
  EXPECT_TRUE(pooled.merge_once(a, 3));
  EXPECT_FALSE(pooled.merge_once(a, 3));  // idempotent per generation
  const StageGauges s = pooled.stages();
  EXPECT_EQ(s.dispatched, 2u);
  EXPECT_DOUBLE_EQ(s.mean_admission_us(), 200.0);
  EXPECT_DOUBLE_EQ(s.mean_dispatch_us(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean_compute_us(), 100.0);
  EXPECT_EQ(s.shed_waits, 1u);
  EXPECT_DOUBLE_EQ(s.mean_shed_wait_us(), 2000.0);
  EXPECT_EQ(pooled.deadline_missed(), 1u);
  const auto json = s.to_json();
  EXPECT_NE(json.find("\"shed_wait_us\":2000.0"), std::string::npos) << json;
}

// --- Envelope answers: split/merge bit-identity ---------------------------

TEST(ServeApi, MultiNodeEnvelopeBitIdenticalToInferNodesPerPolicy) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("api_envelope.ckpt");
  auto ref_model = fx.make_model(99);
  load_deployed_model(*ref_model, ckpt);
  InferenceSession reference(std::move(ref_model),
                             std::make_unique<MemorySource>(fx.pre));

  for (const auto policy : {RoutingPolicy::kRoundRobin,
                            RoutingPolicy::kLeastLoaded,
                            RoutingPolicy::kCacheAffinity}) {
    FleetConfig fc;
    fc.policy = policy;
    fc.batch.max_delay = std::chrono::microseconds(100);
    FleetManager fleet(fx.builder(ckpt), 3, fc);
    for (std::uint64_t id = 0; id < 12; ++id) {
      // Envelopes span shards and repeat nodes — the split must merge
      // every slot back into request order.
      ServeRequest req;
      req.id = id;
      const auto base = static_cast<std::int64_t>(id * 3);
      req.nodes = {base, base + 7, base + 1, base};
      const Tensor want = reference.infer_nodes(req.nodes);
      const ServeResponse r = fleet.infer_request(std::move(req));
      EXPECT_EQ(r.id, id);
      ASSERT_EQ(r.status, ServeStatus::kOk) << serve_status_name(r.status);
      ASSERT_EQ(r.logits.size(), 4u);
      for (std::size_t i = 0; i < r.logits.size(); ++i) {
        ASSERT_EQ(r.logits[i].size(), want.cols());
        for (std::size_t j = 0; j < want.cols(); ++j) {
          EXPECT_EQ(r.logits[i][j], want.at(i, j))
              << policy_name(policy) << " envelope " << id << " slot " << i
              << " logit " << j;
        }
      }
      // Answered requests report a real stage profile.
      EXPECT_GT(r.timings.compute_us, 0.0);
      EXPECT_GE(r.timings.admission_wait_us, 0.0);
    }
    fleet.stop();
  }
}

TEST(ServeApi, TopKModeMatchesArgmaxOfFullLogits) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("api_topk.ckpt");
  auto ref_model = fx.make_model(99);
  load_deployed_model(*ref_model, ckpt);
  InferenceSession reference(std::move(ref_model),
                             std::make_unique<MemorySource>(fx.pre));

  FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  FleetManager fleet(fx.builder(ckpt), 2, fc);
  ServeRequest req;
  req.nodes = {3, 11, 5};
  req.mode = ResultMode::kTopK;
  req.topk = 2;
  const ServeResponse r = fleet.infer_request(std::move(req));
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_TRUE(r.logits.empty());  // top-k mode ships no full rows
  ASSERT_EQ(r.topk.size(), 3u);
  const std::vector<std::int64_t> nodes{3, 11, 5};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto full = reference.infer_one(nodes[i]);
    const auto want = topk_of_row(full.data(), full.size(), 2);
    ASSERT_EQ(r.topk[i].size(), want.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(r.topk[i][k].cls, want[k].cls) << "slot " << i;
      EXPECT_EQ(r.topk[i][k].score, want[k].score) << "slot " << i;
    }
  }
  fleet.stop();
}

// --- Deadlines ------------------------------------------------------------

TEST(ServeApi, PreBlownDeadlineRefusedWithoutCompute) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("api_blown.ckpt");
  FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  FleetManager fleet(fx.builder(ckpt), 1, fc);
  ServeRequest req;
  req.nodes = {0, 1};
  req.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const ServeResponse r = fleet.infer_request(std::move(req));
  EXPECT_EQ(r.status, ServeStatus::kDeadlineExceeded);
  for (const auto& row : r.logits) EXPECT_TRUE(row.empty());
  EXPECT_EQ(fleet.aggregate_deadline_missed(), 2u);  // both parts
  // The fleet still answers in-budget work afterwards.
  ServeRequest ok;
  ok.nodes = {0};
  EXPECT_EQ(fleet.infer_request(std::move(ok)).status, ServeStatus::kOk);
  fleet.stop();
}

TEST(ServeApi, BlownDeadlineShedAtDispatchRecordsWaitNotCompute) {
  const Fixture fx;
  auto session = fx.make_slow_session(std::chrono::milliseconds(60));
  MicroBatchConfig cfg;
  cfg.max_batch_size = 1;  // A dispatches alone; B waits behind it
  cfg.max_delay = std::chrono::microseconds(100);
  ServerStats stats;
  MicroBatcher batcher(*session, cfg, &stats);

  CompletionQueue cq;
  // A: no deadline, holds the replica in service for ~60ms.
  auto a = std::make_shared<RequestState>(
      [] {
        ServeRequest r;
        r.nodes = {0};
        return r;
      }(),
      &cq);
  const std::uint32_t slot0 = 0;
  ASSERT_EQ(batcher.try_submit_parts(a, &slot0, 1), RejectReason::kNone);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // A in service
  // B: live at admission (20ms of slack) but blown by the time A's 60ms
  // batch releases the dispatcher, so B's batch slot must be shed BEFORE
  // compute.
  auto b = std::make_shared<RequestState>(
      [] {
        ServeRequest r;
        r.id = 1;
        r.nodes = {1};
        r.deadline = deadline_in(std::chrono::milliseconds(20));
        return r;
      }(),
      &cq);
  ASSERT_EQ(batcher.try_submit_parts(b, &slot0, 1), RejectReason::kNone);

  ServeResponse first, second;
  ASSERT_TRUE(cq.wait_for(&first, std::chrono::milliseconds(5000)));
  ASSERT_TRUE(cq.wait_for(&second, std::chrono::milliseconds(5000)));
  const ServeResponse& rb = first.id == 1 ? first : second;
  const ServeResponse& ra = first.id == 1 ? second : first;
  EXPECT_EQ(ra.status, ServeStatus::kOk);
  EXPECT_EQ(rb.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(rb.logits[0].empty());  // shed pre-compute: no results
  // The honest shed column: B's admission wait (>= its 10ms deadline) is
  // recorded, not zero — both in its own response and in the gauges.
  EXPECT_GT(rb.timings.admission_wait_us, 0.0);
  EXPECT_DOUBLE_EQ(rb.timings.compute_us, 0.0);
  const StageGauges gauges = stats.stages();
  EXPECT_EQ(gauges.shed_waits, 1u);
  EXPECT_GT(gauges.mean_shed_wait_us(), 0.0);
  EXPECT_EQ(stats.deadline_missed(), 1u);
  EXPECT_EQ(batcher.counters().admission.shed, 1u);
  batcher.stop();
}

TEST(ServeApi, OversizedSubBatchRefusedNotThrownOrBlocked) {
  const Fixture fx;
  auto model = fx.make_model();
  InferenceSession session(std::move(model),
                           std::make_unique<MemorySource>(fx.pre));
  for (const long budget_us : {0L, 5000L}) {  // backpressure and shedding
    MicroBatchConfig cfg;
    cfg.max_delay = std::chrono::microseconds(100);
    cfg.queue_capacity = 4;
    cfg.shed_budget = std::chrono::microseconds(budget_us);
    MicroBatcher batcher(session, cfg);
    CompletionQueue cq;
    ServeRequest req;
    for (std::int64_t i = 0; i < 6; ++i) req.nodes.push_back(i);
    auto state = std::make_shared<RequestState>(std::move(req), &cq);
    std::vector<std::uint32_t> slots{0, 1, 2, 3, 4, 5};
    // 6 parts can never fit a 4-slot queue: a permanent overload refusal
    // in either mode — it must neither block the backpressure wait
    // forever nor throw out of the exactly-one-response contract.
    EXPECT_EQ(batcher.try_submit_parts(state, slots.data(), slots.size()),
              RejectReason::kOverload);
    ServeResponse r;
    ASSERT_TRUE(cq.wait_for(&r, std::chrono::milliseconds(1000)));
    EXPECT_EQ(r.status, ServeStatus::kShed);
    EXPECT_EQ(batcher.counters().admission.rejected, 6u);
    batcher.stop();
  }
}

TEST(ServeApi, HighSubBatchDoesNotEvictLowItCannotBeAdmittedOver) {
  const Fixture fx;
  auto session = fx.make_slow_session(std::chrono::milliseconds(60));
  MicroBatchConfig cfg;
  cfg.max_batch_size = 1;  // first part dispatches alone, rest queue
  cfg.max_delay = std::chrono::microseconds(100);
  cfg.queue_capacity = 4;
  cfg.shed_budget = std::chrono::seconds(10);  // never binds
  MicroBatcher batcher(*session, cfg);
  CompletionQueue cq;
  const auto envelope = [&](std::initializer_list<std::int64_t> nodes,
                            Priority pri) {
    ServeRequest r;
    r.nodes = nodes;
    r.priority = pri;
    return std::make_shared<RequestState>(std::move(r), &cq);
  };
  // One kHigh in service, then 3 kHigh + 1 kLow queued: the queue is
  // full with only one sheddable slot.
  auto serving = envelope({0}, Priority::kHigh);
  const std::uint32_t slot0 = 0;
  ASSERT_EQ(batcher.try_submit_parts(serving, &slot0, 1),
            RejectReason::kNone);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto high3 = envelope({1, 2, 3}, Priority::kHigh);
  const std::uint32_t s3[] = {0, 1, 2};
  ASSERT_EQ(batcher.try_submit_parts(high3, s3, 3), RejectReason::kNone);
  auto low1 = envelope({4}, Priority::kLow);
  ASSERT_EQ(batcher.try_submit_parts(low1, &slot0, 1), RejectReason::kNone);
  // A 2-part kHigh arrival needs 2 slots but only 1 kLow is evictable:
  // the admission cannot succeed, so the servable kLow must NOT be
  // killed for it — refuse the kHigh and keep the kLow.
  auto high2 = envelope({5, 6}, Priority::kHigh);
  const std::uint32_t s2[] = {0, 1};
  EXPECT_EQ(batcher.try_submit_parts(high2, s2, 2),
            RejectReason::kOverload);
  EXPECT_EQ(batcher.counters().admission.shed, 0u);  // kLow survived
  // A 1-part kHigh still evicts the kLow, exactly as PR 2 did.
  auto high1 = envelope({7}, Priority::kHigh);
  EXPECT_EQ(batcher.try_submit_parts(high1, &slot0, 1),
            RejectReason::kNone);
  EXPECT_EQ(batcher.counters().admission.shed, 1u);
  batcher.stop();
  // Drain every response: 5 envelopes in total — serving, high3 and
  // high1 answer kOk; high2 (refused) and low1 (evicted) come back shed.
  std::size_t ok = 0, shed = 0;
  ServeResponse r;
  while (cq.delivered() < 5 || cq.ready() > 0) {
    if (!cq.wait_for(&r, std::chrono::milliseconds(1000))) break;
    (r.status == ServeStatus::kOk ? ok : shed)++;
  }
  EXPECT_EQ(ok, 3u);
  EXPECT_EQ(shed, 2u);
}

TEST(ServeApi, StoppedFleetAnswersDrainingInsteadOfThrowing) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("api_stopped.ckpt");
  FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  FleetManager fleet(fx.builder(ckpt), 1, fc);
  fleet.stop();
  CompletionQueue cq;
  ServeRequest req;
  req.nodes = {0, 1, 2};
  fleet.submit(std::move(req), cq);
  ServeResponse r;
  ASSERT_TRUE(cq.wait_for(&r, std::chrono::milliseconds(1000)));
  EXPECT_EQ(r.status, ServeStatus::kDraining);
}

// --- Legacy shim ----------------------------------------------------------

TEST(ServeApi, LegacyFutureShimBitIdenticalToEnvelopePath) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("api_shim.ckpt");
  FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  FleetManager fleet(fx.builder(ckpt), 2, fc);
  for (std::int64_t node = 0; node < 20; ++node) {
    const auto legacy = fleet.infer_blocking(node);
    ServeRequest req;
    req.nodes = {node};
    const ServeResponse r = fleet.infer_request(std::move(req));
    ASSERT_EQ(r.status, ServeStatus::kOk);
    ASSERT_EQ(r.logits[0].size(), legacy.size());
    for (std::size_t j = 0; j < legacy.size(); ++j) {
      EXPECT_EQ(r.logits[0][j], legacy[j]) << "node " << node;
    }
  }
  fleet.stop();
}

// --- No completion lost across resizes ------------------------------------

TEST(ServeApi, EightThreadHammerLosesNoCompletionsAcrossResizes) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("api_hammer.ckpt");
  FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  FleetManager fleet(fx.builder(ckpt), 2, fc);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;
  std::atomic<std::size_t> ok{0}, not_ok{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      CompletionQueue cq;  // caller-owned; outlives its requests
      while (!go.load()) std::this_thread::yield();
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Multi-node envelopes in backpressure mode: every part must be
        // admitted somewhere and merged back — a resize mid-flight may
        // bounce a sub-batch off a draining replica, but the re-route
        // must land it.
        ServeRequest req;
        req.id = t * kPerThread + i;
        const auto base = static_cast<std::int64_t>((t * 37 + i) % 90);
        req.nodes = {base, base + 5, base + 9};
        fleet.submit(std::move(req), cq);
        ServeResponse r;
        while (cq.poll(&r)) {
          (r.status == ServeStatus::kOk ? ok : not_ok).fetch_add(1);
        }
      }
      // Drain the tail: exactly kPerThread responses in total.
      ServeResponse r;
      while (cq.delivered() < kPerThread) {
        if (cq.wait_for(&r, std::chrono::milliseconds(100))) {
          (r.status == ServeStatus::kOk ? ok : not_ok).fetch_add(1);
        }
      }
      while (cq.poll(&r)) {
        (r.status == ServeStatus::kOk ? ok : not_ok).fetch_add(1);
      }
    });
  }
  go.store(true);
  // Resize storm concurrent with the hammer: grow to 4, shrink to 1,
  // repeatedly — every transition publishes a new epoch.
  for (int cycle = 0; cycle < 3; ++cycle) {
    fleet.scale_up();
    fleet.scale_up();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fleet.scale_down();
    fleet.scale_down();
    fleet.scale_down();  // down to 1
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fleet.scale_up();  // back to 2 for the next cycle
  }
  for (auto& c : clients) c.join();

  // Zero completions lost through the CompletionQueue, and in
  // backpressure mode every one of them answered.
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(not_ok.load(), 0u);
  // Admissions across all generations account for every PART exactly
  // once: draining bounces are re-routes, not losses or double counts.
  EXPECT_EQ(fleet.aggregate_admission().admitted, kThreads * kPerThread * 3);
  EXPECT_EQ(fleet.aggregate_latency().count, kThreads * kPerThread * 3);
  fleet.stop();
}

}  // namespace
}  // namespace ppgnn::serve
