// The INT8 GEMM kernel ladder (tensor/cpu_features.h, tensor/quant.h):
// every arm this host can run must be BIT-IDENTICAL to the scalar oracle
// — memcmp on the output floats, no error bound — across odd inner
// dimensions, sub-vector-width output tails, zero rows, asymmetric
// activation offsets, and an 8-thread pool (the pool size is forced
// before main() so every parallel gemm in this binary runs blocked).
// Plus the dispatch contract: PPGNN_ISA / set_isa_override force any
// arm, forcing an unsupported arm degrades and never crashes, and a
// matrix carries exactly one kernel layout (the scratch-halving point).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "tensor/cpu_features.h"
#include "tensor/parallel.h"
#include "tensor/quant.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace ppgnn {
namespace {

// Pin the pool to 8 workers before anything touches global_pool(): the
// ladder must be exercised with real cross-thread blocking, not a
// one-core CI runner's serial fallback.  setenv with overwrite=0 keeps
// an explicit outer PPGNN_NUM_THREADS in charge.
const bool g_pool_pinned = [] {
  ::setenv("PPGNN_NUM_THREADS", "8", 0);
  return true;
}();

struct Shape {
  std::size_t m, k, n;
};

// Odd k (pair/quad padding), n below / at / just past every vector width
// (scalar tails inside the SIMD arms), and the serving testbed's first
// Linear (255 x 96 -> 32, the acceptance shape).
const Shape kShapes[] = {
    {1, 1, 1},    {3, 7, 5},     {5, 5, 63},   {17, 33, 65}, {2, 64, 48},
    {9, 31, 17},  {4, 16, 1},    {7, 1, 3},    {8, 96, 32},  {255, 96, 32},
    {6, 13, 16},  {11, 2, 33},
};

std::vector<Isa> runnable_arms() {
  std::vector<Isa> arms;
  for (std::size_t i = 0; i < kNumIsa; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (isa_supported(isa)) arms.push_back(isa);
  }
  return arms;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want,
                          const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        want.rows() * want.cols() * sizeof(float)),
            0)
      << what;
}

// Runs the activation-encoded gemm with the weights packed for `arm`
// against the scalar-packed oracle, on identical inputs.
void check_arm_vs_scalar(const Tensor& x, const Tensor& w, const Tensor* bias,
                         Isa arm) {
  const QuantizedActs xq = quantize_acts_per_row(x);
  const QuantizedMatrix wq_arm = quantize_per_row(w, arm);
  const QuantizedMatrix wq_ref = quantize_per_row(w, Isa::kScalar);
  Tensor got, want;
  gemm_s8_nt(xq, wq_arm, got, bias);
  gemm_s8_nt(xq, wq_ref, want, bias);
  expect_bitwise_equal(got, want, isa_name(arm));
}

// --- Probe / parse / resolve ----------------------------------------------

TEST(KernelLadder, IsaNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumIsa; ++i) {
    const Isa isa = static_cast<Isa>(i);
    Isa back = Isa::kScalar;
    ASSERT_TRUE(parse_isa(isa_name(isa), &back)) << isa_name(isa);
    EXPECT_EQ(back, isa);
  }
  Isa out = Isa::kSse2;
  EXPECT_FALSE(parse_isa("avx9000", &out));
  EXPECT_EQ(out, Isa::kSse2);  // untouched on failure
  EXPECT_FALSE(parse_isa("", &out));
}

TEST(KernelLadder, ScalarAlwaysRunsAndSupportImpliesCompiled) {
  EXPECT_TRUE(isa_compiled(Isa::kScalar));
  EXPECT_TRUE(isa_supported(Isa::kScalar));
  for (std::size_t i = 0; i < kNumIsa; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (isa_supported(isa)) EXPECT_TRUE(isa_compiled(isa)) << isa_name(isa);
  }
}

TEST(KernelLadder, ResolveDegradesDownTheLadderNeverUp) {
  const Isa best = best_supported_isa();
  EXPECT_TRUE(isa_supported(best));
  EXPECT_EQ(resolve_isa(best), best);
  EXPECT_EQ(resolve_isa(Isa::kScalar), Isa::kScalar);
  for (std::size_t i = 0; i < kNumIsa; ++i) {
    const Isa req = static_cast<Isa>(i);
    const Isa got = resolve_isa(req);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(req)) << isa_name(req);
    EXPECT_TRUE(isa_supported(got)) << isa_name(req);
    // Nothing supported strictly between got and req was skipped over.
    for (int j = static_cast<int>(got) + 1; j <= static_cast<int>(req); ++j) {
      EXPECT_FALSE(isa_supported(static_cast<Isa>(j))) << isa_name(req);
    }
  }
}

TEST(KernelLadder, OverrideForcesArmAndClearRestoresEnvDefault) {
  for (const Isa arm : runnable_arms()) {
    set_isa_override(arm);
    EXPECT_EQ(active_isa(), arm);
  }
  // Forcing an arm the host lacks resolves downward instead of sticking.
  set_isa_override(Isa::kAvx512Vnni);
  EXPECT_EQ(active_isa(), resolve_isa(Isa::kAvx512Vnni));
  clear_isa_override();
  // With no PPGNN_ISA in scope the default is the widest supported arm.
  if (::getenv("PPGNN_ISA") == nullptr) {
    EXPECT_EQ(active_isa(), best_supported_isa());
  }
}

TEST(KernelLadder, EnvVariableForcesArm) {
  char* prior = ::getenv("PPGNN_ISA");
  const std::string saved = prior ? prior : "";
  ::setenv("PPGNN_ISA", "scalar", 1);
  clear_isa_override();  // re-derive from the environment
  EXPECT_EQ(active_isa(), Isa::kScalar);
  ::setenv("PPGNN_ISA", "avx512vnni", 1);
  clear_isa_override();
  EXPECT_EQ(active_isa(), resolve_isa(Isa::kAvx512Vnni));
  if (prior) {
    ::setenv("PPGNN_ISA", saved.c_str(), 1);
  } else {
    ::unsetenv("PPGNN_ISA");
  }
  clear_isa_override();
}

// --- Layout construction ---------------------------------------------------

TEST(KernelLadder, ExactlyOneLayoutPerMatrix) {
  Rng rng(11);
  const Tensor w = Tensor::normal({32, 96}, rng, 0.f, 1.f);

  const QuantizedMatrix scalar = quantize_per_row(w, Isa::kScalar);
  EXPECT_TRUE(scalar.packed.empty());
  EXPECT_TRUE(scalar.packed_quad.empty());
  EXPECT_EQ(scalar.scratch_bytes(), 0u);

  const QuantizedMatrix pair = quantize_per_row(w, Isa::kAvx2);
  EXPECT_EQ(pair.packed_for, Isa::kAvx2);
  EXPECT_FALSE(pair.packed.empty());
  EXPECT_TRUE(pair.packed_quad.empty());
  // Pair-pack: two int16 bytes per element -> 2x the int8 payload.
  EXPECT_EQ(pair.scratch_bytes(), 2 * 32 * 96u);

  const QuantizedMatrix quad = quantize_per_row(w, Isa::kAvx512Vnni);
  EXPECT_EQ(quad.packed_for, Isa::kAvx512Vnni);
  EXPECT_TRUE(quad.packed.empty());
  EXPECT_FALSE(quad.packed_quad.empty());
  // Quad-pack: one byte per element — half the pair layout's residency.
  EXPECT_EQ(quad.scratch_bytes(), 32 * 96u);
  EXPECT_EQ(quad.scratch_bytes() * 2, pair.scratch_bytes());

  // The payload + scales footprint (the checkpoint-facing number) is
  // identical no matter which arm the scratch was packed for.
  EXPECT_EQ(scalar.bytes(), pair.bytes());
  EXPECT_EQ(scalar.bytes(), quad.bytes());
}

TEST(KernelLadder, DefaultQuantizePacksForActiveIsa) {
  Rng rng(12);
  const Tensor w = Tensor::normal({16, 24}, rng, 0.f, 1.f);
  for (const Isa arm : runnable_arms()) {
    set_isa_override(arm);
    const QuantizedMatrix q = quantize_per_row(w);
    EXPECT_EQ(q.packed_for, arm);
    EXPECT_EQ(gemm_dispatch_arm(q), arm);
  }
  clear_isa_override();
}

// --- Bit identity ----------------------------------------------------------

TEST(KernelLadder, AllArmsBitIdenticalToScalarAcrossShapes) {
  Rng rng(21);
  for (const Isa arm : runnable_arms()) {
    if (arm == Isa::kScalar) continue;
    for (const Shape& s : kShapes) {
      SCOPED_TRACE(std::string(isa_name(arm)) + " m=" + std::to_string(s.m) +
                   " k=" + std::to_string(s.k) + " n=" + std::to_string(s.n));
      const Tensor x = Tensor::normal({s.m, s.k}, rng, 0.3f, 1.5f);
      const Tensor w = Tensor::normal({s.n, s.k}, rng, 0.f, 0.8f);
      const Tensor bias = Tensor::normal({s.n}, rng, 0.f, 0.5f);
      check_arm_vs_scalar(x, w, &bias, arm);
      check_arm_vs_scalar(x, w, nullptr, arm);
    }
  }
}

TEST(KernelLadder, SymmetricGemmVariantBitIdentical) {
  Rng rng(22);
  for (const Isa arm : runnable_arms()) {
    if (arm == Isa::kScalar) continue;
    const Tensor x = Tensor::normal({19, 45}, rng, 0.f, 1.f);
    const Tensor w = Tensor::normal({37, 45}, rng, 0.f, 1.f);
    const QuantizedMatrix xq = quantize_per_row(x, Isa::kScalar);
    Tensor got, want;
    gemm_s8_nt(xq, quantize_per_row(w, arm), got);
    gemm_s8_nt(xq, quantize_per_row(w, Isa::kScalar), want);
    expect_bitwise_equal(got, want, isa_name(arm));
  }
}

TEST(KernelLadder, ZeroRowsAndConstantRowsBitIdentical) {
  Rng rng(23);
  for (const Isa arm : runnable_arms()) {
    if (arm == Isa::kScalar) continue;
    Tensor x = Tensor::normal({9, 33}, rng, 0.f, 1.f);
    Tensor w = Tensor::normal({21, 33}, rng, 0.f, 1.f);
    // All-zero rows (scale 0) on both sides, plus a constant activation
    // row — min == max, the asymmetric coder's degenerate case.
    for (std::size_t j = 0; j < 33; ++j) {
      x.at(2, j) = 0.f;
      x.at(5, j) = 4.25f;
      w.at(7, j) = 0.f;
    }
    check_arm_vs_scalar(x, w, nullptr, arm);
  }
}

TEST(KernelLadder, ShiftedActivationsExerciseOffsetPath) {
  Rng rng(24);
  for (const Isa arm : runnable_arms()) {
    if (arm == Isa::kScalar) continue;
    // ReLU-like all-positive activations: large per-row offsets, which is
    // exactly what the VNNI unsigned-bias correction must not disturb.
    Tensor x = Tensor::uniform({31, 96}, rng, 0.f, 9.f);
    const Tensor w = Tensor::normal({32, 96}, rng, 0.f, 1.2f);
    const Tensor bias = Tensor::normal({32}, rng, 0.f, 1.f);
    check_arm_vs_scalar(x, w, &bias, arm);
  }
}

TEST(KernelLadder, EightThreadPoolStaysBitIdentical) {
  // The pool pin above makes every gemm in this binary run on 8 workers
  // unless the environment already chose otherwise; either way the
  // blocked grid must not perturb results on the big acceptance shape.
  ASSERT_TRUE(g_pool_pinned);
  if (::getenv("PPGNN_NUM_THREADS") == std::string("8")) {
    EXPECT_EQ(global_pool().size(), 8u);
  }
  Rng rng(25);
  const Tensor x = Tensor::normal({255, 96}, rng, 0.1f, 1.f);
  const Tensor w = Tensor::normal({32, 96}, rng, 0.f, 1.f);
  const Tensor bias = Tensor::normal({32}, rng, 0.f, 1.f);
  for (const Isa arm : runnable_arms()) {
    check_arm_vs_scalar(x, w, &bias, arm);
  }
}

// --- Dispatch degrades, never crashes --------------------------------------

TEST(KernelLadder, MissingLayoutFallsBackToScalarBitIdentically) {
  Rng rng(26);
  const Tensor x = Tensor::normal({13, 40}, rng, 0.f, 1.f);
  const Tensor w = Tensor::normal({24, 40}, rng, 0.f, 1.f);
  const QuantizedActs xq = quantize_acts_per_row(x);
  Tensor want;
  gemm_s8_nt(xq, quantize_per_row(w, Isa::kScalar), want);

  // A matrix labeled for a wide arm but missing its layout — e.g. one
  // built on another host and shipped over — must answer via the scalar
  // path, not fault.
  for (const Isa arm : {Isa::kSse2, Isa::kAvx2, Isa::kAvx512Vnni}) {
    QuantizedMatrix q = quantize_per_row(w, arm);
    q.packed.clear();
    q.packed_quad.clear();
    EXPECT_EQ(gemm_dispatch_arm(q), Isa::kScalar) << isa_name(arm);
    Tensor got;
    gemm_s8_nt(xq, q, got);
    expect_bitwise_equal(got, want, isa_name(arm));
  }
}

TEST(KernelLadder, QuantizingForUnrunnableArmStillAnswers) {
  // Packing for an arm is always allowed (isa-explicit overload takes the
  // arm as given); the gemm degrades at dispatch if the host cannot run
  // it.  On hosts with the arm this exercises the normal path; on hosts
  // without, the degrade path — either way it must match scalar.
  Rng rng(27);
  const Tensor x = Tensor::normal({6, 50}, rng, 0.f, 1.f);
  const Tensor w = Tensor::normal({18, 50}, rng, 0.f, 1.f);
  const QuantizedActs xq = quantize_acts_per_row(x);
  Tensor want;
  gemm_s8_nt(xq, quantize_per_row(w, Isa::kScalar), want);
  for (std::size_t i = 1; i < kNumIsa; ++i) {
    const Isa arm = static_cast<Isa>(i);
    Tensor got;
    gemm_s8_nt(xq, quantize_per_row(w, arm), got);
    expect_bitwise_equal(got, want, isa_name(arm));
  }
}

}  // namespace
}  // namespace ppgnn
