#include <gtest/gtest.h>

#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/dataset.h"

namespace ppgnn::core {
namespace {

struct Fixture {
  graph::Dataset ds;
  Preprocessed pre;
  Fixture()
      : ds(graph::make_dataset(graph::DatasetName::kPokecSim, 0.08)) {
    PrecomputeConfig pc;
    pc.hops = 2;
    pre = precompute(ds.graph, ds.features, pc);
  }
  std::unique_ptr<Sign> make_model(Rng& rng) const {
    SignConfig sc;
    sc.feat_dim = ds.feature_dim();
    sc.hops = 2;
    sc.hidden = 32;
    sc.classes = ds.num_classes;
    sc.dropout = 0.2f;
    return std::make_unique<Sign>(sc, rng);
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

PpTrainConfig base_config() {
  PpTrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 128;
  tc.eval_every = 2;
  return tc;
}

TEST(PpTrainer, LearnsAboveChance) {
  const auto& f = fixture();
  Rng rng(1);
  auto model = f.make_model(rng);
  auto tc = base_config();
  tc.epochs = 12;
  const auto r = train_pp(*model, f.pre, f.ds, tc);
  EXPECT_GT(r.history.peak_val_acc(), 0.6);  // binary task, ceiling ~0.83
  EXPECT_EQ(r.history.epochs.size(), 12u);
  EXPECT_EQ(r.train_rows, f.ds.split.train.size());
  EXPECT_EQ(r.row_bytes, f.pre.row_bytes());
}

TEST(PpTrainer, BaselineAndFusedGiveIdenticalTrajectories) {
  // The two synchronous assembly paths must be numerically identical —
  // same batches, same model updates, same accuracy.
  const auto& f = fixture();
  Rng r1(2), r2(2);
  auto m1 = f.make_model(r1);
  auto m2 = f.make_model(r2);
  auto tc = base_config();
  tc.mode = LoadingMode::kBaselinePerRow;
  const auto a = train_pp(*m1, f.pre, f.ds, tc);
  tc.mode = LoadingMode::kFusedAssembly;
  const auto b = train_pp(*m2, f.pre, f.ds, tc);
  ASSERT_EQ(a.history.epochs.size(), b.history.epochs.size());
  for (std::size_t e = 0; e < a.history.epochs.size(); ++e) {
    EXPECT_NEAR(a.history.epochs[e].train_loss, b.history.epochs[e].train_loss,
                1e-5);
    EXPECT_DOUBLE_EQ(a.history.epochs[e].val_acc, b.history.epochs[e].val_acc);
  }
}

TEST(PpTrainer, PrefetchMatchesSynchronousTrajectory) {
  // Double-buffered prefetching changes *when* batches are assembled, not
  // what they contain.
  const auto& f = fixture();
  Rng r1(3), r2(3);
  auto m1 = f.make_model(r1);
  auto m2 = f.make_model(r2);
  auto tc = base_config();
  tc.mode = LoadingMode::kFusedAssembly;
  const auto a = train_pp(*m1, f.pre, f.ds, tc);
  tc.mode = LoadingMode::kPrefetch;
  const auto b = train_pp(*m2, f.pre, f.ds, tc);
  for (std::size_t e = 0; e < a.history.epochs.size(); ++e) {
    EXPECT_NEAR(a.history.epochs[e].train_loss, b.history.epochs[e].train_loss,
                1e-5);
  }
}

TEST(PpTrainer, ChunkReshufflingReachesComparableAccuracy) {
  // Section 6.2: chunk reshuffling costs < ~1% accuracy.
  const auto& f = fixture();
  Rng r1(4), r2(4);
  auto m1 = f.make_model(r1);
  auto m2 = f.make_model(r2);
  auto tc = base_config();
  tc.epochs = 12;
  tc.mode = LoadingMode::kPrefetch;
  const auto rr = train_pp(*m1, f.pre, f.ds, tc);
  tc.mode = LoadingMode::kChunkPrefetch;
  tc.chunk_size = tc.batch_size;
  const auto cr = train_pp(*m2, f.pre, f.ds, tc);
  EXPECT_NEAR(cr.history.test_at_best_val(), rr.history.test_at_best_val(),
              0.04);
}

TEST(PpTrainer, StorageModeMatchesChunkAccuracy) {
  const auto& f = fixture();
  Rng r1(5), r2(5);
  auto m1 = f.make_model(r1);
  auto m2 = f.make_model(r2);
  auto tc = base_config();
  tc.mode = LoadingMode::kChunkPrefetch;
  tc.chunk_size = tc.batch_size;
  const auto cr = train_pp(*m1, f.pre, f.ds, tc);
  tc.mode = LoadingMode::kStorageChunk;
  tc.storage_dir = ::testing::TempDir() + "/pp_trainer_store";
  const auto st = train_pp(*m2, f.pre, f.ds, tc);
  // Same shuffler seed and semantics -> identical batches, identical runs.
  for (std::size_t e = 0; e < cr.history.epochs.size(); ++e) {
    EXPECT_NEAR(cr.history.epochs[e].train_loss,
                st.history.epochs[e].train_loss, 1e-5);
  }
}

TEST(PpTrainer, PhaseTimingsPopulated) {
  const auto& f = fixture();
  Rng rng(6);
  auto model = f.make_model(rng);
  auto tc = base_config();
  tc.epochs = 2;
  tc.mode = LoadingMode::kBaselinePerRow;
  const auto r = train_pp(*model, f.pre, f.ds, tc);
  const auto& e = r.history.epochs.front();
  EXPECT_GT(e.epoch_seconds, 0.0);
  EXPECT_GT(e.forward_seconds, 0.0);
  EXPECT_GT(e.backward_seconds, 0.0);
  EXPECT_GT(e.optimizer_seconds, 0.0);
  EXPECT_GT(e.data_loading_seconds, 0.0);
}

TEST(PpTrainer, ConvergenceEpochIsSensible) {
  const auto& f = fixture();
  Rng rng(7);
  auto model = f.make_model(rng);
  auto tc = base_config();
  tc.epochs = 10;
  tc.eval_every = 1;
  const auto r = train_pp(*model, f.pre, f.ds, tc);
  const auto conv = r.history.convergence_epoch();
  EXPECT_GE(conv, 1u);
  EXPECT_LE(conv, 10u);
  // Convergence epoch reaches 99% of peak by definition.
  EXPECT_GE(r.history.epochs[conv - 1].val_acc,
            0.99 * r.history.peak_val_acc() - 1e-9);
}

TEST(PpTrainer, SgcTrainsToo) {
  const auto& f = fixture();
  Rng rng(8);
  Sgc model(f.ds.feature_dim(), 2, f.ds.num_classes, rng);
  auto tc = base_config();
  tc.epochs = 10;
  const auto r = train_pp(model, f.pre, f.ds, tc);
  EXPECT_GT(r.history.peak_val_acc(), 0.55);
}

TEST(PpTrainer, BytesLoadedAccounting) {
  const auto& f = fixture();
  Rng rng(9);
  auto model = f.make_model(rng);
  auto tc = base_config();
  tc.epochs = 1;
  const auto r = train_pp(*model, f.pre, f.ds, tc);
  EXPECT_EQ(r.bytes_loaded_per_epoch, r.train_rows * r.row_bytes);
}

TEST(EvaluatePp, MatchesManualAccuracy) {
  const auto& f = fixture();
  Rng rng(10);
  auto model = f.make_model(rng);
  const double acc = evaluate_pp(*model, f.pre, f.ds, f.ds.split.valid, 64);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Metrics, TrainHistoryHelpers) {
  TrainHistory h;
  for (std::size_t e = 1; e <= 5; ++e) {
    EpochRecord r;
    r.epoch = e;
    r.val_acc = 0.1 * static_cast<double>(e);
    r.test_acc = 0.1 * static_cast<double>(e) - 0.01;
    r.epoch_seconds = 2.0;
    h.epochs.push_back(r);
  }
  EXPECT_DOUBLE_EQ(h.peak_val_acc(), 0.5);
  EXPECT_DOUBLE_EQ(h.test_at_best_val(), 0.49);
  EXPECT_EQ(h.convergence_epoch(), 5u);
  EXPECT_EQ(h.convergence_epoch(0.5), 3u);
  EXPECT_DOUBLE_EQ(h.mean_epoch_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(h.total_train_seconds(), 10.0);
}

}  // namespace
}  // namespace ppgnn::core
