#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace ppgnn {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.f);
}

TEST(Tensor, FullFillsValue) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t[i], 3.5f);
}

TEST(Tensor, At2D) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.f;
  EXPECT_FLOAT_EQ(t[5], 7.f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 7.f);
}

TEST(Tensor, At3D) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 9.f);
  EXPECT_EQ(t.row_size(), 12u);
}

TEST(Tensor, RowPointerMatchesIndexing) {
  Tensor t({4, 5});
  t.at(2, 3) = 1.25f;
  EXPECT_FLOAT_EQ(t.row(2)[3], 1.25f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t = Tensor::from_vector({2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  const Tensor r = t.reshaped({4, 3});
  EXPECT_EQ(r.rows(), 4u);
  EXPECT_FLOAT_EQ(r.at(3, 2), 11.f);
}

TEST(Tensor, ReshapedRejectsWrongCount) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({5, 1}), std::invalid_argument);
}

TEST(Tensor, FromVectorRejectsWrongCount) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1.f, 2.f, 3.f}),
               std::invalid_argument);
}

TEST(Tensor, RejectsBadRank) {
  EXPECT_THROW(Tensor(std::vector<std::size_t>{}), std::invalid_argument);
  EXPECT_THROW(Tensor({1, 2, 3, 4}), std::invalid_argument);
}

TEST(Tensor, CheckSameShapeThrows) {
  Tensor a({2, 3}), b({3, 2});
  EXPECT_THROW(a.check_same_shape(b, "test"), std::invalid_argument);
}

TEST(Tensor, UniformWithinBounds) {
  Rng rng(1);
  Tensor t = Tensor::uniform({100, 10}, rng, -2.f, 3.f);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -2.f);
    EXPECT_LT(t[i], 3.f);
  }
}

TEST(Tensor, NormalHasApproxMoments) {
  Rng rng(2);
  Tensor t = Tensor::normal({200, 50}, rng, 1.f, 2.f);
  double mean = 0;
  for (std::size_t i = 0; i < t.size(); ++i) mean += t[i];
  mean /= t.size();
  double var = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    var += (t[i] - mean) * (t[i] - mean);
  }
  var /= t.size();
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Tensor, BytesMatchesSize) {
  Tensor t({7, 3});
  EXPECT_EQ(t.bytes(), 21 * sizeof(float));
}

}  // namespace
}  // namespace ppgnn
