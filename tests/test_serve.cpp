#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "graph/dataset.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/server_stats.h"
#include "serve/workload.h"
#include "tensor/ops.h"

namespace ppgnn::serve {
namespace {

std::string tmp_dir(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

struct Fixture {
  graph::Dataset ds;
  core::Preprocessed pre;

  explicit Fixture(double scale = 0.02, std::size_t hops = 2)
      : ds(graph::make_dataset(graph::DatasetName::kPokecSim, scale)) {
    core::PrecomputeConfig pc;
    pc.hops = hops;
    pre = core::precompute(ds.graph, ds.features, pc);
  }

  std::unique_ptr<core::PpModel> make_model(std::uint64_t seed = 7) const {
    Rng rng(seed);
    core::SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = pre.num_hops();
    cfg.hidden = 16;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  }

  std::unique_ptr<InferenceSession> make_session(
      std::uint64_t seed = 7) const {
    return std::make_unique<InferenceSession>(
        make_model(seed), std::make_unique<MemorySource>(pre));
  }
};

TEST(FeatureSource, FileStoreMatchesMemory) {
  const Fixture fx;
  MemorySource mem(fx.pre);
  FileStoreSource file(
      loader::FeatureFileStore::create(tmp_dir("serve_fs"), fx.pre.hop_features));
  ASSERT_EQ(mem.num_rows(), file.num_rows());
  ASSERT_EQ(mem.row_dim(), file.row_dim());
  const std::vector<std::int64_t> rows{0, 5, 3, 5,
                                       static_cast<std::int64_t>(mem.num_rows()) - 1};
  Tensor a, b;
  mem.gather(rows, a);
  file.gather(rows, b);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FeatureSource, CachedGatherIsTransparentAndCounts) {
  const Fixture fx;
  auto backing = std::make_unique<FileStoreSource>(
      loader::FeatureFileStore::create(tmp_dir("serve_cached"),
                                       fx.pre.hop_features));
  // Byte-denominated capacity: budget for exactly 4 stored rows.
  const std::size_t row_bytes = backing->store().row_bytes();
  CachedSource cached(std::move(backing),
                      std::make_unique<loader::LruCache>(4 * row_bytes,
                                                         row_bytes));
  MemorySource mem(fx.pre);
  const std::vector<std::int64_t> rows{1, 2, 1, 3, 1, 2, 9, 1};
  Tensor got, want;
  cached.gather(rows, got);
  mem.gather(rows, want);
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
  const auto st = cached.stats();
  EXPECT_EQ(st.accesses, rows.size());
  // Unique rows {1,2,3,9} are fetched once each; repeats hit the payload.
  EXPECT_EQ(st.rows_read, 4u);
  EXPECT_EQ(st.hits, rows.size() - 4);
  // A second pass over resident rows is all hits.
  cached.gather({1, 2, 3, 9}, got);
  EXPECT_EQ(cached.stats().rows_read, 4u);
}

TEST(FeatureSource, StaticPolicyCachesOnlyPinnedRows) {
  const Fixture fx;
  auto backing = std::make_unique<MemorySource>(fx.pre);
  CachedSource cached(
      std::move(backing),
      std::make_unique<loader::StaticCache>(std::vector<std::int64_t>{2, 4}));
  cached.warm({2, 4});
  Tensor out;
  cached.gather({2, 3, 4, 3}, out);
  const auto st = cached.stats();
  EXPECT_EQ(st.hits, 3u);       // pinned rows 2 and 4, plus the repeat of 3
  EXPECT_EQ(st.rows_read, 1u);  // row 3 fetched once (deduped), never cached
  // Row 3 was declined by the static policy: a later gather re-reads it.
  cached.gather({3}, out);
  EXPECT_EQ(cached.stats().rows_read, 2u);
}

TEST(InferenceSession, FileStoreAndMemoryProduceIdenticalLogits) {
  const Fixture fx;
  auto mem_session = fx.make_session(11);

  auto store_source = std::make_unique<FileStoreSource>(
      loader::FeatureFileStore::create(tmp_dir("serve_eq"),
                                       fx.pre.hop_features));
  const std::size_t row_bytes = store_source->store().row_bytes();
  auto file_source = std::make_unique<CachedSource>(
      std::move(store_source),
      std::make_unique<loader::LruCache>(8 * row_bytes, row_bytes));
  InferenceSession file_session(fx.make_model(11), std::move(file_source));

  const std::vector<std::int64_t> nodes{0, 7, 7, 21, 3};
  const Tensor a = mem_session->infer_nodes(nodes);
  const Tensor b = file_session.infer_nodes(nodes);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // Re-ask through the now-warm cache: still identical (cache-hit path).
  const Tensor c = file_session.infer_nodes(nodes);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], c[i]);
}

TEST(InferenceSession, BatchedInferenceBitIdenticalToSingleRequests) {
  const Fixture fx;
  auto session = fx.make_session();
  const std::vector<std::int64_t> nodes{4, 0, 19, 4, 33};
  const Tensor batched = session->infer_nodes(nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto single = session->infer_one(nodes[i]);
    ASSERT_EQ(single.size(), batched.cols());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(single[j], batched.at(i, j))
          << "node " << nodes[i] << " logit " << j;
    }
  }
}

TEST(InferenceSession, DeployedCheckpointRoundTrips) {
  const Fixture fx;
  auto trained = fx.make_model(21);
  const std::string path = tmp_dir("deploy.ckpt");
  save_deployed_model(*trained, path);

  auto fresh = fx.make_model(99);  // different init
  load_deployed_model(*fresh, path);
  InferenceSession a(std::move(trained), std::make_unique<MemorySource>(fx.pre));
  InferenceSession b(std::move(fresh), std::make_unique<MemorySource>(fx.pre));
  const std::vector<std::int64_t> nodes{1, 2, 3};
  const Tensor la = a.infer_nodes(nodes);
  const Tensor lb = b.infer_nodes(nodes);
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST(MicroBatcher, CoalescesUpToMaxBatchSize) {
  const Fixture fx;
  auto session = fx.make_session();
  MicroBatchConfig cfg;
  cfg.max_batch_size = 8;
  // Generous window so all submissions land in one batch deterministically.
  cfg.max_delay = std::chrono::microseconds(200'000);
  ServerStats stats;
  std::vector<std::future<std::vector<float>>> futs;
  {
    MicroBatcher batcher(*session, cfg, &stats);
    for (int i = 0; i < 8; ++i) futs.push_back(batcher.submit(i));
    for (auto& f : futs) f.wait();
    const auto c = batcher.counters();
    EXPECT_EQ(c.requests, 8u);
    EXPECT_EQ(c.batches, 1u);  // size cutoff fired, not the delay
    EXPECT_EQ(c.max_batch_observed, 8u);
  }
  EXPECT_EQ(stats.batches(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size(), 8.0);
}

TEST(MicroBatcher, MaxDelayDispatchesPartialBatch) {
  const Fixture fx;
  auto session = fx.make_session();
  MicroBatchConfig cfg;
  cfg.max_batch_size = 1024;  // never fills
  cfg.max_delay = std::chrono::microseconds(2000);
  MicroBatcher batcher(*session, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  auto fut = batcher.submit(5);
  fut.wait();
  const auto waited = std::chrono::steady_clock::now() - t0;
  // The lone request must complete once the delay window closes — well
  // before any size cutoff could fire (bounded generously for CI jitter).
  EXPECT_LT(waited, std::chrono::seconds(2));
  EXPECT_EQ(batcher.counters().batches, 1u);
  EXPECT_EQ(batcher.counters().max_batch_observed, 1u);
}

TEST(MicroBatcher, SplitsBeyondMaxBatchSize) {
  const Fixture fx;
  auto session = fx.make_session();
  MicroBatchConfig cfg;
  cfg.max_batch_size = 4;
  cfg.max_delay = std::chrono::microseconds(50'000);
  MicroBatcher batcher(*session, cfg);
  std::vector<std::future<std::vector<float>>> futs;
  for (int i = 0; i < 10; ++i) futs.push_back(batcher.submit(i % 5));
  for (auto& f : futs) f.wait();
  const auto c = batcher.counters();
  EXPECT_EQ(c.requests, 10u);
  EXPECT_GE(c.batches, 3u);  // ceil(10/4) at best, more if windows split
  EXPECT_LE(c.max_batch_observed, 4u);
}

TEST(MicroBatcher, BadNodeFailsRequestNotServer) {
  const Fixture fx;
  auto session = fx.make_session();
  MicroBatchConfig cfg;
  cfg.max_delay = std::chrono::microseconds(1000);
  MicroBatcher batcher(*session, cfg);
  auto bad = batcher.submit(static_cast<std::int64_t>(session->num_nodes()));
  EXPECT_THROW(bad.get(), std::out_of_range);
  // The server still answers afterwards.
  auto good = batcher.submit(0);
  EXPECT_EQ(good.get().size(), fx.ds.num_classes);
}

TEST(MicroBatcher, DeterministicUnderEightConcurrentClients) {
  const Fixture fx;
  auto session = fx.make_session();
  // Reference answers, computed single-request before any concurrency.
  const std::size_t n = session->num_nodes();
  std::vector<std::vector<float>> expect(n);
  for (std::size_t v = 0; v < n; ++v) {
    expect[v] = session->infer_one(static_cast<std::int64_t>(v));
  }

  MicroBatchConfig cfg;
  cfg.max_batch_size = 16;
  cfg.max_delay = std::chrono::microseconds(100);
  MicroBatcher batcher(*session, cfg);
  constexpr int kClients = 8;
  constexpr int kPerClient = 100;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ZipfWorkloadConfig wc;
      wc.num_nodes = n;
      wc.num_requests = kPerClient;
      wc.seed = 100 + static_cast<std::uint64_t>(c);
      for (const auto node : zipf_stream(wc)) {
        const auto got = batcher.infer_blocking(node);
        const auto& want = expect[static_cast<std::size_t>(node)];
        if (got != want) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "micro-batch composition changed some answer";
  EXPECT_EQ(batcher.counters().requests,
            static_cast<std::size_t>(kClients * kPerClient));
}

TEST(ServerStats, PercentilesAndThroughput) {
  ServerStats stats;
  for (int i = 1; i <= 100; ++i) stats.record(static_cast<double>(i));
  const auto s = stats.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);
  EXPECT_GT(s.throughput_rps, 0.0);
  const auto json = s.to_json();
  EXPECT_NE(json.find("\"p99_us\":99.0"), std::string::npos) << json;
}

TEST(Workload, ZipfStreamIsHeavyTailedAndSeeded) {
  ZipfWorkloadConfig cfg;
  cfg.num_nodes = 1000;
  cfg.num_requests = 20000;
  cfg.skew = 1.0;
  cfg.seed = 5;
  const auto a = zipf_stream(cfg);
  const auto b = zipf_stream(cfg);
  EXPECT_EQ(a, b);  // deterministic
  // The configured hot set should cover far more traffic than its share of
  // the id space (1%); Zipf(1.0) puts ~30% of mass on the top 1%.
  const auto hot = zipf_hot_set(cfg, 10);
  std::size_t hot_hits = 0;
  for (const auto r : a) {
    for (const auto h : hot) {
      if (r == h) {
        ++hot_hits;
        break;
      }
    }
  }
  EXPECT_GT(hot_hits, a.size() / 10);  // >10% of requests on 1% of nodes
  for (const auto r : a) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 1000);
  }
}

TEST(Workload, DegreeStreamPrefersHubs) {
  const Fixture fx;
  const auto stream = degree_stream(fx.ds.graph, 20000, 3);
  // Mean degree of requested nodes should exceed the graph's mean degree.
  double req_deg = 0;
  for (const auto v : stream) {
    req_deg += static_cast<double>(
        fx.ds.graph.degree(static_cast<graph::NodeId>(v)));
  }
  req_deg /= static_cast<double>(stream.size());
  EXPECT_GT(req_deg, fx.ds.graph.avg_degree());
}

}  // namespace
}  // namespace ppgnn::serve
