#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/run_config.h"

namespace ppgnn::core {
namespace {

// ----------------------------------------------------------- JSON parser ----

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const auto v = parse_json(R"({
    "model": {"name": "HOGA", "hops": 4},
    "lrs": [0.01, 0.001],
    "tuned": true
  })");
  EXPECT_EQ(v.get("model").get("name").as_string(), "HOGA");
  EXPECT_DOUBLE_EQ(v.get("model").get("hops").as_number(), 4.0);
  ASSERT_EQ(v.get("lrs").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(v.get("lrs").as_array()[1].as_number(), 0.001);
  EXPECT_TRUE(v.get("tuned").as_bool());
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(parse_json(R"("a\nb\t\"c\"")").as_string(), "a\nb\t\"c\"");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, ParsesEmptyContainers) {
  EXPECT_TRUE(parse_json("[]").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
  EXPECT_TRUE(parse_json("  [ ]  ").as_array().empty());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse_json("tru"), std::runtime_error);
  EXPECT_THROW(parse_json("1 2"), std::runtime_error);      // trailing garbage
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("1.2.3"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":1, \"a\":2}"), std::runtime_error);  // dup key
}

TEST(Json, TypeMismatchesThrow) {
  const auto v = parse_json("{\"a\": 1}");
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.get("a").as_string(), std::runtime_error);
  EXPECT_THROW(v.get("missing"), std::runtime_error);
  EXPECT_DOUBLE_EQ(v.get_or("missing", 7.0), 7.0);
  EXPECT_EQ(v.get_or("missing", std::string("x")), "x");
}

// ------------------------------------------------------------ RunConfig ----

TEST(RunConfig, DefaultsAreValid) {
  const auto cfg = run_config_from_string("{}");
  EXPECT_EQ(cfg.method, "HOGA");
  EXPECT_EQ(cfg.dataset_name(), graph::DatasetName::kProductsSim);
  EXPECT_EQ(cfg.loading_mode(), LoadingMode::kPrefetch);
  EXPECT_EQ(cfg.operator_kind(), OperatorKind::kSymNorm);
}

TEST(RunConfig, ParsesFullConfig) {
  const auto cfg = run_config_from_string(R"({
    "dataset": "pokec", "scale": 0.1, "method": "SIGN",
    "hops": 5, "hidden": 128, "op": "ppr", "epochs": 12,
    "batch_size": 256, "lr": 0.001, "dropout": 0.5,
    "loading": "chunk", "chunk_size": 1024, "seed": 99
  })");
  EXPECT_EQ(cfg.dataset_name(), graph::DatasetName::kPokecSim);
  EXPECT_EQ(cfg.method, "SIGN");
  EXPECT_EQ(cfg.hops, 5u);
  EXPECT_EQ(cfg.operator_kind(), OperatorKind::kPpr);
  EXPECT_EQ(cfg.loading_mode(), LoadingMode::kChunkPrefetch);
  EXPECT_EQ(cfg.train_config().chunk_size, 1024u);
  EXPECT_EQ(cfg.train_config().seed, 99u);
  EXPECT_EQ(cfg.precompute_config().hops, 5u);
  EXPECT_NE(cfg.summary().find("SIGN on pokec"), std::string::npos);
}

TEST(RunConfig, RejectsUnknownKeysAndValues) {
  EXPECT_THROW(run_config_from_string("{\"methd\": \"SGC\"}"),
               std::runtime_error);  // typo'd key
  EXPECT_THROW(run_config_from_string("{\"method\": \"GCN\"}"),
               std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"dataset\": \"reddit\"}"),
               std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"op\": \"cheb\"}"),
               std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"loading\": \"mmap\"}"),
               std::runtime_error);
}

TEST(RunConfig, RejectsOutOfRangeNumbers) {
  EXPECT_THROW(run_config_from_string("{\"scale\": 0}"), std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"scale\": 1.5}"), std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"hops\": 0}"), std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"hops\": 2.5}"), std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"lr\": -0.1}"), std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"dropout\": 1.0}"),
               std::runtime_error);
  EXPECT_THROW(run_config_from_string("{\"epochs\": 0}"), std::runtime_error);
}

TEST(RunConfig, BuildsEveryModelKind) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  for (const std::string method : {"SGC", "SSGC", "SIGN", "HOGA", "GAMLP"}) {
    auto cfg = run_config_from_string("{\"method\": \"" + method + "\"}");
    Rng rng(1);
    auto model = cfg.make_model(ds, rng);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), method);
    EXPECT_EQ(model->hops(), cfg.hops);
  }
}

TEST(RunConfig, LoadsFromFile) {
  const std::string path = ::testing::TempDir() + "/ppgnn_cfg.json";
  {
    std::ofstream out(path);
    out << "{\"method\": \"SGC\", \"hops\": 2}";
  }
  const auto cfg = run_config_from_file(path);
  EXPECT_EQ(cfg.method, "SGC");
  EXPECT_EQ(cfg.hops, 2u);
  std::remove(path.c_str());
  EXPECT_THROW(run_config_from_file("/nonexistent/cfg.json"),
               std::runtime_error);
}

TEST(RunConfig, CheckpointKeysFlowThrough) {
  const auto cfg = run_config_from_string(R"({
    "checkpoint": "/tmp/ppgnn_cli_ckpt.bin", "checkpoint_every": 3
  })");
  EXPECT_EQ(cfg.train_config().checkpoint_path, "/tmp/ppgnn_cli_ckpt.bin");
  EXPECT_EQ(cfg.train_config().checkpoint_every, 3u);
  // Default: disabled.
  EXPECT_TRUE(run_config_from_string("{}").train_config()
                  .checkpoint_path.empty());
}

TEST(RunConfig, EndToEndTinyTrainingRun) {
  // The full CLI path: config -> dataset -> precompute -> train.
  const auto cfg = run_config_from_string(R"({
    "dataset": "pokec", "scale": 0.05, "method": "SSGC",
    "hops": 2, "epochs": 6, "batch_size": 128, "loading": "chunk",
    "chunk_size": 128
  })");
  const auto ds = graph::make_dataset(cfg.dataset_name(), cfg.scale);
  const auto pre = precompute(ds.graph, ds.features, cfg.precompute_config());
  Rng rng(cfg.seed);
  auto model = cfg.make_model(ds, rng);
  const auto r = train_pp(*model, pre, ds, cfg.train_config());
  EXPECT_GT(r.history.peak_val_acc(), 0.5);  // binary task, above chance
}

}  // namespace
}  // namespace ppgnn::core
