// Property sweeps over the pipeline simulator: the qualitative laws the
// paper's Sections 4-6 rest on must hold for EVERY model shape, dataset
// size and placement — not just the configurations the benches print.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/dataset.h"
#include "sim/pipeline.h"

namespace ppgnn::sim {
namespace {

using Param = std::tuple<PpModelKind, graph::DatasetName>;

class PipelineLaws : public ::testing::TestWithParam<Param> {
 protected:
  PpPipelineConfig config(LoaderKind loader, DataPlacement placement) const {
    const auto [kind, name] = GetParam();
    const auto scale = graph::paper_scale(name);
    PpPipelineConfig cfg;
    cfg.model.kind = kind;
    cfg.model.hops = 3;
    cfg.model.feat_dim = scale.feature_dim;
    cfg.model.hidden = kind == PpModelKind::kSgc ? 0 : 512;
    cfg.model.classes = scale.classes;
    cfg.train_rows = scale.train_nodes();
    cfg.loader = loader;
    cfg.placement = placement;
    return cfg;
  }
};

TEST_P(PipelineLaws, OptimizationLadderNeverSlowsDown) {
  // baseline >= fused >= double-buffer >= chunk pipeline, in host memory
  // (the Figure 9 ladder) — allow 1% slack for modeling noise.
  double prev = 1e30;
  for (const auto loader :
       {LoaderKind::kBaseline, LoaderKind::kFusedAssembly,
        LoaderKind::kDoubleBuffer, LoaderKind::kChunkPipeline}) {
    const auto sim =
        simulate_pp_epoch(config(loader, DataPlacement::kHost));
    EXPECT_LE(sim.epoch_seconds, prev * 1.01)
        << "loader " << to_string(loader);
    prev = sim.epoch_seconds;
  }
}

TEST_P(PipelineLaws, PlacementLadderGpuFastestStorageSlowest) {
  const auto gpu =
      simulate_pp_epoch(config(LoaderKind::kChunkPipeline,
                               DataPlacement::kGpu));
  const auto host =
      simulate_pp_epoch(config(LoaderKind::kChunkPipeline,
                               DataPlacement::kHost));
  const auto ssd =
      simulate_pp_epoch(config(LoaderKind::kChunkPipeline,
                               DataPlacement::kStorage));
  EXPECT_LE(gpu.epoch_seconds, host.epoch_seconds * 1.01);
  EXPECT_LE(host.epoch_seconds, ssd.epoch_seconds * 1.01);
}

TEST_P(PipelineLaws, DoubleBufferOverlapsLoadingWithCompute) {
  // Pipelined epoch time ~ max(load, compute) (+ small pipeline fill);
  // never the sum.
  const auto cfg = config(LoaderKind::kDoubleBuffer, DataPlacement::kHost);
  const auto sim = simulate_pp_epoch(cfg);
  // Assembly, transfer and compute run on three different resources that
  // the double buffer overlaps pairwise: the epoch is bounded below by the
  // busiest single resource and above by fully-serial execution.
  const double serial = sim.assembly_seconds + sim.transfer_seconds +
                        sim.compute_seconds();
  const double busiest = std::max(
      {sim.assembly_seconds, sim.transfer_seconds, sim.compute_seconds()});
  EXPECT_LE(sim.epoch_seconds, serial * 1.01);
  EXPECT_GE(sim.epoch_seconds, busiest * 0.99);
  // Real overlap is only observable when phases are comparable; when one
  // resource dominates, busiest == serial and nothing can be hidden.
  if (serial > busiest * 1.2) {
    EXPECT_LT(sim.epoch_seconds, serial * 0.99) << "no overlap happened";
  }
}

TEST_P(PipelineLaws, BytesMovedMatchInputExpansion) {
  // One epoch moves the expanded training set once; chunked DMA may round
  // the tail up to whole chunks but never re-reads data (no caching, no
  // locality — Section 4.1's observation).
  const auto cfg = config(LoaderKind::kChunkPipeline, DataPlacement::kHost);
  const auto sim = simulate_pp_epoch(cfg);
  const std::size_t exact = cfg.train_rows * cfg.model.row_bytes();
  EXPECT_GE(sim.bytes_moved, exact);
  EXPECT_LE(sim.bytes_moved, exact * 105 / 100);  // <= one chunk of padding per batch
}

TEST_P(PipelineLaws, MoreHopsNeverCheaper) {
  double prev = 0;
  for (const std::size_t hops : {2ul, 3ul, 4ul, 6ul}) {
    auto cfg = config(LoaderKind::kDoubleBuffer, DataPlacement::kHost);
    cfg.model.hops = hops;
    const auto sim = simulate_pp_epoch(cfg);
    EXPECT_GE(sim.epoch_seconds, prev * 0.999) << hops << " hops";
    prev = sim.epoch_seconds;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelDatasetCombos, PipelineLaws,
    ::testing::Combine(
        ::testing::Values(PpModelKind::kSgc, PpModelKind::kSign,
                          PpModelKind::kHoga),
        ::testing::Values(graph::DatasetName::kProductsSim,
                          graph::DatasetName::kWikiSim,
                          graph::DatasetName::kIgbMediumSim,
                          graph::DatasetName::kIgbLargeSim)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" +
                         std::string(graph::to_string(std::get<1>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ppgnn::sim
