#include "tensor/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace ppgnn {
namespace {

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t lo, std::size_t hi) {
    total += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::size_t total = 0;
  pool.parallel_for(100, [&](std::size_t lo, std::size_t hi) {
    total += hi - lo;
  });
  EXPECT_EQ(total, 100u);
}

TEST(ThreadPool, RepeatedInvocations) {
  ThreadPool pool(3);
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<std::size_t> total{0};
    pool.parallel_for(257, [&](std::size_t lo, std::size_t hi) {
      total += hi - lo;
    });
    ASSERT_EQ(total.load(), 257u);
  }
}

TEST(ThreadPool, NestedParallelForRunsSeriallyWithoutDeadlock) {
  // A task that itself calls parallel_for must not deadlock (it runs the
  // inner loop serially).  Regression test for the prefetcher deadlock.
  std::atomic<std::size_t> inner_total{0};
  global_pool().parallel_for(8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      parallel_for(100, [&](std::size_t a, std::size_t b) {
        inner_total += b - a;
      }, /*grain=*/1);
    }
  });
  EXPECT_EQ(inner_total.load(), 800u);
}

TEST(ThreadPool, ConcurrentCallersFromTwoThreads) {
  // Two threads using the global pool simultaneously (the trainer +
  // prefetcher pattern): both must complete.
  std::atomic<std::size_t> t1{0}, t2{0};
  std::thread other([&] {
    for (int rep = 0; rep < 20; ++rep) {
      parallel_for(5000, [&](std::size_t lo, std::size_t hi) {
        t2 += hi - lo;
      }, 1);
    }
  });
  for (int rep = 0; rep < 20; ++rep) {
    parallel_for(5000, [&](std::size_t lo, std::size_t hi) {
      t1 += hi - lo;
    }, 1);
  }
  other.join();
  EXPECT_EQ(t1.load(), 20u * 5000u);
  EXPECT_EQ(t2.load(), 20u * 5000u);
}

TEST(ParallelForHelper, SmallNRunsSerial) {
  // Below the grain the helper must not touch the pool (observable as the
  // callback receiving the whole range at once).
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  parallel_for(10, [&](std::size_t lo, std::size_t hi) {
    calls.emplace_back(lo, hi);
  }, /*grain=*/100);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], std::make_pair(std::size_t{0}, std::size_t{10}));
}

TEST(GlobalPool, IsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

}  // namespace
}  // namespace ppgnn
