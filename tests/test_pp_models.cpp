#include <gtest/gtest.h>

#include "core/hoga.h"
#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ppgnn::core {
namespace {

// Expanded batch: [b, (R+1)*F].
Tensor expanded_batch(std::size_t b, std::size_t hops, std::size_t f,
                      Rng& rng) {
  return Tensor::normal({b, (hops + 1) * f}, rng);
}

TEST(SliceHop, ExtractsCorrectColumns) {
  Tensor batch = Tensor::from_vector({2, 6}, {0, 1, 2, 3, 4, 5,
                                              10, 11, 12, 13, 14, 15});
  const Tensor h1 = slice_hop(batch, 1, 2);
  EXPECT_FLOAT_EQ(h1.at(0, 0), 2.f);
  EXPECT_FLOAT_EQ(h1.at(0, 1), 3.f);
  EXPECT_FLOAT_EQ(h1.at(1, 0), 12.f);
}

TEST(SgcModel, UsesOnlyFinalHop) {
  Rng rng(1);
  Sgc model(4, 2, 3, rng);
  Tensor batch = expanded_batch(5, 2, 4, rng);
  const Tensor out1 = model.forward(batch, false);
  // Perturb hops 0 and 1: output must not change.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 8; ++j) batch.at(i, j) += 100.f;
  }
  const Tensor out2 = model.forward(batch, false);
  EXPECT_TRUE(allclose(out1, out2));
  // Perturb the final hop: output must change.
  batch.at(0, 8) += 1.f;
  const Tensor out3 = model.forward(batch, false);
  EXPECT_FALSE(allclose(out1, out3));
}

TEST(SgcModel, ShapeAndParamCount) {
  Rng rng(2);
  Sgc model(10, 3, 7, rng);
  EXPECT_EQ(model.num_params(), 10u * 7 + 7);
  EXPECT_EQ(model.hops(), 3u);
  const Tensor out = model.forward(expanded_batch(4, 3, 10, rng), false);
  EXPECT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.cols(), 7u);
  EXPECT_THROW(model.forward(Tensor({4, 11}), false), std::invalid_argument);
}

TEST(SignModel, UsesAllHops) {
  Rng rng(3);
  SignConfig cfg;
  cfg.feat_dim = 4;
  cfg.hops = 2;
  cfg.hidden = 8;
  cfg.classes = 3;
  cfg.dropout = 0.f;
  Sign model(cfg, rng);
  Tensor batch = expanded_batch(5, 2, 4, rng);
  const Tensor out1 = model.forward(batch, false);
  batch.at(0, 0) += 1.f;  // hop 0 perturbation
  const Tensor out2 = model.forward(batch, false);
  EXPECT_FALSE(allclose(out1, out2));
}

TEST(SignModel, TrainingStepReducesLoss) {
  Rng rng(4);
  SignConfig cfg;
  cfg.feat_dim = 6;
  cfg.hops = 2;
  cfg.hidden = 16;
  cfg.classes = 2;
  cfg.dropout = 0.f;
  Sign model(cfg, rng);
  // Learnable toy task: class = sign of first feature of hop 0.
  Tensor batch = expanded_batch(64, 2, 6, rng);
  std::vector<std::int32_t> labels(64);
  for (std::size_t i = 0; i < 64; ++i) labels[i] = batch.at(i, 0) > 0 ? 1 : 0;
  std::vector<nn::ParamSlot> params;
  model.collect_params(params);
  nn::Adam opt(params, 0.01f);
  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 60; ++step) {
    Tensor logits = model.forward(batch, true);
    Tensor grad(logits.shape());
    const float loss = cross_entropy(logits, labels, grad);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    opt.zero_grad();
    model.backward(grad);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.5f * first_loss);
}

TEST(HogaModel, ForwardShapes) {
  Rng rng(5);
  HogaConfig cfg;
  cfg.feat_dim = 6;
  cfg.hops = 3;
  cfg.hidden = 8;
  cfg.heads = 2;
  cfg.classes = 4;
  cfg.dropout = 0.f;
  Hoga model(cfg, rng);
  const Tensor out = model.forward(expanded_batch(7, 3, 6, rng), false);
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), 4u);
  EXPECT_EQ(model.name(), "HOGA");
}

TEST(HogaModel, TrainingStepReducesLoss) {
  Rng rng(6);
  HogaConfig cfg;
  cfg.feat_dim = 5;
  cfg.hops = 2;
  cfg.hidden = 8;
  cfg.heads = 2;
  cfg.classes = 2;
  cfg.dropout = 0.f;
  Hoga model(cfg, rng);
  Tensor batch = expanded_batch(48, 2, 5, rng);
  std::vector<std::int32_t> labels(48);
  for (std::size_t i = 0; i < 48; ++i) {
    labels[i] = batch.at(i, 2) + batch.at(i, 7) > 0 ? 1 : 0;
  }
  std::vector<nn::ParamSlot> params;
  model.collect_params(params);
  nn::Adam opt(params, 0.01f);
  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 80; ++step) {
    Tensor logits = model.forward(batch, true);
    Tensor grad(logits.shape());
    const float loss = cross_entropy(logits, labels, grad);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    opt.zero_grad();
    model.backward(grad);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.6f * first_loss);
}

TEST(HogaModel, GradientsFlowToAllParams) {
  Rng rng(7);
  HogaConfig cfg;
  cfg.feat_dim = 4;
  cfg.hops = 1;
  cfg.hidden = 4;
  cfg.heads = 1;
  cfg.classes = 3;
  cfg.dropout = 0.f;
  Hoga model(cfg, rng);
  const Tensor batch = expanded_batch(6, 1, 4, rng);
  Tensor logits = model.forward(batch, true);
  Tensor grad = Tensor::full(logits.shape(), 0.3f);
  std::vector<nn::ParamSlot> params;
  model.collect_params(params);
  for (auto& p : params) p.grad->zero();
  model.backward(grad);
  std::size_t live = 0;
  for (const auto& p : params) {
    float mag = 0;
    for (std::size_t i = 0; i < p.grad->size(); ++i) {
      mag += std::abs((*p.grad)[i]);
    }
    if (mag > 0) ++live;
  }
  // Every parameter tensor except possibly biases initialized at a
  // saturation point should receive gradient; require the vast majority.
  EXPECT_GE(live, params.size() - 2);
}

TEST(PpModels, AgreeOnBatchWidthValidation) {
  Rng rng(8);
  SignConfig sc;
  sc.feat_dim = 4;
  sc.hops = 2;
  sc.hidden = 8;
  sc.classes = 2;
  Sign sign(sc, rng);
  HogaConfig hc;
  hc.feat_dim = 4;
  hc.hops = 2;
  hc.hidden = 8;
  hc.heads = 1;
  hc.classes = 2;
  Hoga hoga(hc, rng);
  Tensor bad({3, 4 * 2});  // (hops+1) should be 3
  EXPECT_THROW(sign.forward(bad, false), std::invalid_argument);
  EXPECT_THROW(hoga.forward(bad, false), std::invalid_argument);
}

TEST(PpModels, ParameterOrdering) {
  // SGC < SIGN < HOGA in parameter count for matched dims — mirrors the
  // expressivity ladder of Section 6.
  Rng rng(9);
  Sgc sgc(64, 3, 10, rng);
  SignConfig sc;
  sc.feat_dim = 64;
  sc.hops = 3;
  sc.hidden = 64;
  sc.classes = 10;
  Sign sign(sc, rng);
  HogaConfig hc;
  hc.feat_dim = 64;
  hc.hops = 3;
  hc.hidden = 64;
  hc.heads = 2;
  hc.classes = 10;
  Hoga hoga(hc, rng);
  EXPECT_LT(sgc.num_params(), sign.num_params());
  EXPECT_LT(sgc.num_params(), hoga.num_params());
}

}  // namespace
}  // namespace ppgnn::core
