#include <gtest/gtest.h>

#include "graph/dataset.h"
#include "mpgnn/gat.h"
#include "mpgnn/mp_trainer.h"
#include "mpgnn/sage.h"
#include "sampling/labor.h"
#include "sampling/neighbor.h"
#include "sampling/saint.h"
#include "tensor/ops.h"

namespace ppgnn::mpgnn {
namespace {

using sampling::Block;

Block tiny_block() {
  // dst {0,1}; src {0,1,2}; edges: 0->{1,2}, 1->{2}.
  Block b;
  b.dst_nodes = {10, 11};
  b.src_nodes = {10, 11, 12};
  b.offsets = {0, 2, 3};
  b.indices = {1, 2, 2};
  return b;
}

TEST(SageLayer, ForwardMatchesManualComputation) {
  Rng rng(1);
  SageLayer layer(2, 2, rng);
  const Block b = tiny_block();
  const Tensor h = Tensor::from_vector({3, 2}, {1, 0, 0, 1, 2, 2});
  const Tensor y = layer.forward(b, h, false);
  ASSERT_EQ(y.rows(), 2u);
  // Manual: agg(0) = mean(h1, h2) = (1, 1.5); agg(1) = h2 = (2,2).
  std::vector<nn::ParamSlot> slots;
  layer.collect_params(slots);
  const Tensor& ws = *slots[0].value;
  const Tensor& wn = *slots[1].value;
  auto dot = [&](const float* v, const Tensor& w, std::size_t col) {
    return v[0] * w.at(0, col) + v[1] * w.at(1, col);
  };
  const float agg0[2] = {1.f, 1.5f};
  const float self0[2] = {1.f, 0.f};
  EXPECT_NEAR(y.at(0, 0), dot(self0, ws, 0) + dot(agg0, wn, 0), 1e-5f);
  EXPECT_NEAR(y.at(0, 1), dot(self0, ws, 1) + dot(agg0, wn, 1), 1e-5f);
}

TEST(SageLayer, GradCheckAgainstNumerical) {
  Rng rng(2);
  SageLayer layer(3, 2, rng);
  const Block blk = tiny_block();
  Tensor h = Tensor::normal({3, 3}, rng);
  Tensor w_loss = Tensor::normal({2, 2}, rng);

  auto loss = [&]() {
    const Tensor y = layer.forward(blk, h, true);
    double l = 0;
    for (std::size_t i = 0; i < y.size(); ++i) l += y[i] * w_loss[i];
    return l;
  };
  std::vector<nn::ParamSlot> slots;
  layer.collect_params(slots);
  for (auto& s : slots) s.grad->zero();
  (void)layer.forward(blk, h, true);
  const Tensor dh = layer.backward(w_loss);

  const float eps = 1e-2f;
  // Input gradient.
  for (std::size_t i = 0; i < h.size(); ++i) {
    const float orig = h[i];
    h[i] = orig + eps;
    const double lp = loss();
    h[i] = orig - eps;
    const double lm = loss();
    h[i] = orig;
    EXPECT_NEAR(dh[i], (lp - lm) / (2 * eps), 5e-3) << "input " << i;
  }
  // Parameter gradients (spot check first weight tensor).
  for (std::size_t i = 0; i < slots[0].value->size(); ++i) {
    float& p = (*slots[0].value)[i];
    const float orig = p;
    p = orig + eps;
    const double lp = loss();
    p = orig - eps;
    const double lm = loss();
    p = orig;
    EXPECT_NEAR((*slots[0].grad)[i], (lp - lm) / (2 * eps), 5e-3);
  }
}

TEST(SageLayer, WeightedBlockUsesValues) {
  Rng rng(3);
  SageLayer layer(1, 1, rng);
  Block b = tiny_block();
  b.values = {0.5f, 0.5f, 2.0f};  // weighted sum instead of mean
  const Tensor h = Tensor::from_vector({3, 1}, {1, 2, 3});
  const Tensor y = layer.forward(b, h, false);
  std::vector<nn::ParamSlot> slots;
  layer.collect_params(slots);
  const float ws = (*slots[0].value)[0];
  const float wn = (*slots[1].value)[0];
  // agg(0) = 0.5*2 + 0.5*3 = 2.5 ; agg(1) = 2*3 = 6.
  EXPECT_NEAR(y.at(0, 0), 1 * ws + 2.5f * wn, 1e-5f);
  EXPECT_NEAR(y.at(1, 0), 2 * ws + 6.f * wn, 1e-5f);
}

TEST(GraphSage, FullForwardShapes) {
  const auto ds = graph::make_dataset(graph::DatasetName::kProductsSim, 0.05);
  Rng rng(4);
  SageConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 16;
  cfg.out_dim = ds.num_classes;
  cfg.num_layers = 2;
  GraphSage model(cfg, rng);
  const Tensor logits = model.full_forward(ds.graph, ds.features);
  EXPECT_EQ(logits.rows(), ds.num_nodes());
  EXPECT_EQ(logits.cols(), ds.num_classes);
}

TEST(GraphSage, MiniBatchForwardMatchesBlockChain) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  Rng rng(5);
  SageConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 8;
  cfg.out_dim = ds.num_classes;
  cfg.num_layers = 2;
  cfg.dropout = 0.f;
  GraphSage model(cfg, rng);
  const sampling::NeighborSampler sampler({-1, -1});  // full neighborhoods
  Rng srng(6);
  std::vector<graph::NodeId> seeds{0, 1, 2, 3};
  const auto batch = sampler.sample(ds.graph, seeds, srng);
  std::vector<std::int64_t> ids(batch.input_nodes().begin(),
                                batch.input_nodes().end());
  const Tensor feats = gather_rows(ds.features, ids);
  const Tensor mini = model.forward(batch, feats, false);
  // With full (unsampled) neighborhoods, mini-batch logits == full-graph
  // logits on the seeds.
  const Tensor full = model.full_forward(ds.graph, ds.features);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t c = 0; c < ds.num_classes; ++c) {
      EXPECT_NEAR(mini.at(i, c),
                  full.at(static_cast<std::size_t>(seeds[i]), c), 1e-3f);
    }
  }
}

TEST(GatLayer, AttentionWeightsFormDistribution) {
  Rng rng(7);
  GatLayer layer(3, 4, 2, /*concat=*/true, rng);
  const Block b = tiny_block();
  const Tensor h = Tensor::normal({3, 3}, rng);
  const Tensor y = layer.forward(b, h, false);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 8u);  // heads * head_dim
}

TEST(GatLayer, GradCheckAgainstNumerical) {
  Rng rng(8);
  GatLayer layer(2, 3, 2, true, rng);
  const Block blk = tiny_block();
  Tensor h = Tensor::normal({3, 2}, rng);
  Tensor w_loss = Tensor::normal({2, 6}, rng);

  auto loss = [&]() {
    const Tensor y = layer.forward(blk, h, true);
    double l = 0;
    for (std::size_t i = 0; i < y.size(); ++i) l += y[i] * w_loss[i];
    return l;
  };
  std::vector<nn::ParamSlot> slots;
  layer.collect_params(slots);
  for (auto& s : slots) s.grad->zero();
  (void)layer.forward(blk, h, true);
  const Tensor dh = layer.backward(w_loss);

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const float orig = h[i];
    h[i] = orig + eps;
    const double lp = loss();
    h[i] = orig - eps;
    const double lm = loss();
    h[i] = orig;
    EXPECT_NEAR(dh[i], (lp - lm) / (2 * eps), 2e-2) << "input " << i;
  }
  for (auto& slot : slots) {
    const std::size_t stride =
        std::max<std::size_t>(1, slot.value->size() / 16);
    for (std::size_t i = 0; i < slot.value->size(); i += stride) {
      float& p = (*slot.value)[i];
      const float orig = p;
      p = orig + eps;
      const double lp = loss();
      p = orig - eps;
      const double lm = loss();
      p = orig;
      EXPECT_NEAR((*slot.grad)[i], (lp - lm) / (2 * eps), 2e-2)
          << slot.name << " " << i;
    }
  }
}

TEST(Gat, HeadAveragingOnOutputLayer) {
  Rng rng(9);
  GatConfig cfg;
  cfg.in_dim = 6;
  cfg.head_dim = 4;
  cfg.heads = 2;
  cfg.out_dim = 3;
  cfg.num_layers = 2;
  cfg.dropout = 0.f;
  Gat model(cfg, rng);
  const auto g = graph::build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  Rng frng(10);
  const Tensor x = Tensor::normal({5, 6}, frng);
  const Tensor logits = model.full_forward(g, x);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 3u);  // averaged heads -> classes
}

TEST(MpTrainer, SageLearnsOnEasyData) {
  auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.1);
  Rng rng(11);
  SageConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 32;
  cfg.out_dim = ds.num_classes;
  cfg.num_layers = 2;
  cfg.dropout = 0.2f;
  GraphSage model(cfg, rng);
  const sampling::LaborSampler sampler({10, 10});
  MpTrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 256;
  const auto result = train_mp(model, ds, sampler, tc);
  ASSERT_EQ(result.history.epochs.size(), 12u);
  // Better than chance (0.5) by a clear margin on the binary task
  // (the analogue's label-noise ceiling is ~0.83).
  EXPECT_GT(result.history.peak_val_acc(), 0.60);
  // Loss decreased.
  EXPECT_LT(result.history.epochs.back().train_loss,
            result.history.epochs.front().train_loss);
  EXPECT_GT(result.sampler_stats.input_rows, 0u);
}

TEST(MpTrainer, RecordsPhaseTimings) {
  auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  Rng rng(12);
  SageConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 8;
  cfg.out_dim = ds.num_classes;
  cfg.num_layers = 2;
  GraphSage model(cfg, rng);
  const sampling::NeighborSampler sampler({5, 5});
  MpTrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 128;
  const auto result = train_mp(model, ds, sampler, tc);
  const auto& e = result.history.epochs.front();
  EXPECT_GT(e.epoch_seconds, 0.0);
  EXPECT_GT(e.data_loading_seconds, 0.0);
  EXPECT_GT(e.forward_seconds, 0.0);
  EXPECT_GT(e.backward_seconds, 0.0);
}

TEST(MpTrainer, SaintTrainsWithoutError) {
  auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  Rng rng(13);
  SageConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 16;
  cfg.out_dim = ds.num_classes;
  cfg.num_layers = 3;
  GraphSage model(cfg, rng);
  const sampling::SaintNodeSampler sampler(3, 256);
  MpTrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 256;
  const auto result = train_mp(model, ds, sampler, tc);
  EXPECT_EQ(result.history.epochs.size(), 3u);
  EXPECT_GT(result.history.peak_val_acc(), 0.4);
}

}  // namespace
}  // namespace ppgnn::mpgnn
