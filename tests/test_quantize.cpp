// The INT8 serving path, layer by layer: quantization round-trip error
// bounds (tensor/quant.h), the int8 GEMM against the fp32 reference,
// quantized Linear inference, the quantized checkpoint section
// (nn/serialize), the FeatureFileStore int8 row codec + batched
// coalescing read_rows (loader/storage), byte-denominated RowCache
// capacity (loader/cache), and cross-replica weight sharing
// (core::quantize_int8 / share_quantized_weights).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/precompute.h"
#include "core/sign.h"
#include "graph/dataset.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/rng.h"

namespace ppgnn {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

long file_bytes(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<long>(st.st_size) : -1;
}

// --- Quantization round trips ----------------------------------------------

TEST(Quantize, PerRowRoundTripWithinHalfScale) {
  Rng rng(3);
  const Tensor m = Tensor::normal({17, 43}, rng, 0.5f, 2.f);  // odd shape
  const QuantizedMatrix q = quantize_per_row(m);
  const Tensor back = dequantize(q);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    // Per-row symmetric: error bounded by half the row's own scale.
    const float bound = q.scales[i] * 0.5f + 1e-7f;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      EXPECT_LE(std::fabs(m.at(i, j) - back.at(i, j)), bound)
          << "row " << i << " col " << j;
    }
    // The scale is exactly amax/127, so some element must hit code ±127.
    std::int8_t amax_code = 0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      amax_code = std::max<std::int8_t>(
          amax_code, static_cast<std::int8_t>(std::abs(q.row(i)[j])));
    }
    EXPECT_EQ(amax_code, 127);
  }
}

TEST(Quantize, ZeroRowGetsZeroScaleAndExactRoundTrip) {
  Tensor m({2, 8});
  m.fill(0.f);
  m.at(1, 3) = 5.f;
  const QuantizedMatrix q = quantize_per_row(m);
  EXPECT_EQ(q.scales[0], 0.f);
  const Tensor back = dequantize(q);
  for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(back.at(0, j), 0.f);
  EXPECT_FLOAT_EQ(back.at(1, 3), 5.f);
}

TEST(Quantize, ActsRoundTripTighterOnNonNegativeRows) {
  Rng rng(5);
  Tensor m = Tensor::normal({9, 31}, rng);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = std::fabs(m[i]);  // ReLU'd
  const QuantizedActs q = quantize_acts_per_row(m);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float bound = q.scales[i] * 0.5f + 1e-7f;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const float back =
          q.offsets[i] + static_cast<float>(q.row(i)[j]) * q.scales[i];
      EXPECT_LE(std::fabs(m.at(i, j) - back), bound);
    }
    // Asymmetric coding of a one-sided row: scale is half of what the
    // symmetric coder would need (max/254 vs max/127).
    float amax = 0.f;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      amax = std::max(amax, std::fabs(m.at(i, j)));
    }
    EXPECT_LE(q.scales[i], amax / 254.f * 1.01f + 1e-7f);
  }
}

// --- INT8 GEMM vs the fp32 reference ---------------------------------------

TEST(Int8Gemm, MatchesFp32OverDequantizedOperandsAlmostExactly) {
  // The integer dot is exact; only the fp32 epilogue rounds.  Odd k and
  // non-multiple-of-4 n exercise the SIMD pair padding and tail outputs.
  Rng rng(11);
  const Tensor x = Tensor::normal({13, 37}, rng);
  const Tensor wt = Tensor::normal({6, 37}, rng);  // [n, k]
  const QuantizedMatrix xq = quantize_per_row(x);
  const QuantizedMatrix wq = quantize_per_row(wt);
  Tensor got;
  gemm_s8_nt(xq, wq, got);
  const Tensor ref = matmul_nt(dequantize(xq), dequantize(wq));
  ASSERT_EQ(got.rows(), ref.rows());
  ASSERT_EQ(got.cols(), ref.cols());
  EXPECT_LE(max_abs_diff(got, ref), 1e-4f);
}

TEST(Int8Gemm, ActsVariantMatchesFp32WithinQuantizationBound) {
  Rng rng(13);
  const Tensor x = Tensor::normal({21, 48}, rng);
  const Tensor wt = Tensor::normal({10, 48}, rng);
  Tensor bias({10});
  for (std::size_t j = 0; j < 10; ++j) bias[j] = 0.1f * static_cast<float>(j);
  const QuantizedMatrix wq = quantize_per_row(wt);
  Tensor got;
  gemm_s8_nt(quantize_acts_per_row(x), wq, got, &bias);
  Tensor ref = matmul_nt(x, wt);
  add_row_vector(ref, bias);
  // Worst-case error per output ~ k * (|x| err * |w| + |w| err * |x|);
  // with unit-normal operands and k = 48 a loose 0.2 bound is orders of
  // magnitude above what a broken kernel produces.
  EXPECT_LE(max_abs_diff(got, ref), 0.2f);
  // And it must be far from zero-signal: outputs are O(sqrt(k)).
  EXPECT_GT(max_abs_diff(got, Tensor({21, 10})), 1.f);
}

TEST(Int8Gemm, BatchedRowsAreBitIdenticalToSingleRows) {
  // Fixed per-lane accumulation order: a row's logits do not depend on
  // which batch it rode in — the invariant micro-batching relies on.
  Rng rng(17);
  const Tensor x = Tensor::normal({8, 24}, rng);
  const Tensor wt = Tensor::normal({5, 24}, rng);
  const QuantizedMatrix wq = quantize_per_row(wt);
  Tensor full;
  gemm_s8_nt(quantize_acts_per_row(x), wq, full);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    Tensor one_in({1, x.cols()});
    std::copy(x.row(i), x.row(i) + x.cols(), one_in.row(0));
    Tensor one_out;
    gemm_s8_nt(quantize_acts_per_row(one_in), wq, one_out);
    for (std::size_t j = 0; j < wq.rows; ++j) {
      EXPECT_EQ(full.at(i, j), one_out.at(0, j)) << "row " << i;
    }
  }
}

// --- Quantized Linear -------------------------------------------------------

TEST(QuantizedLinear, EvalUsesInt8PathAndTrainStaysFp32) {
  Rng rng(7);
  nn::Linear fp(19, 7, rng);
  Rng rng2(7);
  nn::Linear q8(19, 7, rng2);  // same init
  EXPECT_FALSE(q8.is_quantized());
  q8.quantize_int8();
  ASSERT_TRUE(q8.is_quantized());
  ASSERT_NE(q8.quantized_weight(), nullptr);
  EXPECT_EQ(q8.quantized_weight()->rows, 7u);   // [out, in]
  EXPECT_EQ(q8.quantized_weight()->cols, 19u);

  Rng drng(21);
  const Tensor x = Tensor::normal({5, 19}, drng);
  const Tensor ref = fp.forward(x, false);
  const Tensor got = q8.forward(x, false);
  EXPECT_GT(max_abs_diff(got, ref), 0.f);   // int8 path actually engaged
  EXPECT_LE(max_abs_diff(got, ref), 0.1f);  // ...and bounded
  // Training forward ignores the quantized block entirely.
  const Tensor train_ref = fp.forward(x, true);
  const Tensor train_got = q8.forward(x, true);
  EXPECT_EQ(max_abs_diff(train_got, train_ref), 0.f);
}

TEST(QuantizedLinear, ShareQuantizedAliasesTheSameImmutableBlock) {
  Rng rng(7);
  nn::Linear a(12, 6, rng);
  Rng rng2(7);
  nn::Linear b(12, 6, rng2);
  a.quantize_int8();
  b.share_quantized(a);
  EXPECT_EQ(a.quantized_weight().get(), b.quantized_weight().get());
  Rng rng3(1);
  nn::Linear wrong(12, 5, rng3);
  EXPECT_THROW(wrong.share_quantized(a), std::invalid_argument);
  Rng rng4(1);
  nn::Linear unquantized(12, 6, rng4);
  EXPECT_THROW(b.share_quantized(unquantized), std::invalid_argument);
}

// --- Quantized checkpoint section ------------------------------------------

TEST(QuantizedCheckpoint, RoundTripsWithinBoundAndShrinksFourfold) {
  Rng rng(7);
  core::SignConfig cfg;
  cfg.feat_dim = 32;
  cfg.hops = 2;
  cfg.hidden = 32;
  cfg.classes = 16;
  cfg.mlp_layers = 2;
  cfg.dropout = 0.f;
  core::Sign model(cfg, rng);

  const std::string fp32_path = tmp_path("ckpt_fp32.bin");
  const std::string q_path = tmp_path("ckpt_int8.bin");
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::save_parameters(slots, fp32_path);
  nn::save_parameters_quantized(slots, q_path);

  // ~4x less weight data on the wire (scales + shape headers cost a bit).
  EXPECT_LT(file_bytes(q_path) * 3, file_bytes(fp32_path));

  // load_parameters auto-detects the quantized magic and dequantizes into
  // an identically-shaped model; per-output-channel coding bounds each
  // weight's error by half its channel scale.
  Rng rng2(99);
  core::Sign loaded(cfg, rng2);
  std::vector<nn::ParamSlot> loaded_slots;
  loaded.collect_params(loaded_slots);
  nn::load_parameters(loaded_slots, q_path);
  ASSERT_EQ(slots.size(), loaded_slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const Tensor& orig = *slots[s].value;
    const Tensor& back = *loaded_slots[s].value;
    if (orig.ndim() != 2) {  // biases travel fp32: exact
      EXPECT_EQ(max_abs_diff(orig, back), 0.f) << slots[s].name;
      continue;
    }
    for (std::size_t j = 0; j < orig.cols(); ++j) {
      float amax = 0.f;
      for (std::size_t i = 0; i < orig.rows(); ++i) {
        amax = std::max(amax, std::fabs(orig.at(i, j)));
      }
      const float bound = amax / 254.f + 1e-6f;
      for (std::size_t i = 0; i < orig.rows(); ++i) {
        EXPECT_LE(std::fabs(orig.at(i, j) - back.at(i, j)), bound)
            << slots[s].name << " (" << i << "," << j << ")";
      }
    }
  }
}

// --- FeatureFileStore int8 row codec + batched reads ------------------------

struct StoreFixture {
  std::vector<Tensor> hops;
  std::size_t rows = 50, dim = 6;

  StoreFixture() {
    Rng rng(13);
    for (int h = 0; h < 3; ++h) {
      hops.push_back(Tensor::normal({rows, dim}, rng, 0.f, 2.f));
    }
  }
};

TEST(Int8RowCodec, RoundTripWithinPerRowBoundAndFourfoldSmaller) {
  const StoreFixture fx;
  const auto store = loader::FeatureFileStore::create(
      tmp_path("int8_store"), fx.hops, loader::RowCodec::kInt8);
  EXPECT_EQ(store.codec(), loader::RowCodec::kInt8);
  EXPECT_EQ(store.hop_row_bytes(), sizeof(float) + fx.dim);
  // fp32 row: 3 hops * 6 floats = 72B; int8 row: 3 * (4 + 6) = 30B.
  EXPECT_EQ(store.row_bytes(), 3 * (sizeof(float) + fx.dim));
  EXPECT_LT(store.row_bytes() * 2, 3 * fx.dim * sizeof(float));

  Tensor out({fx.rows, 3 * fx.dim});
  store.read_chunk(0, fx.rows, out);
  for (std::size_t h = 0; h < 3; ++h) {
    for (std::size_t i = 0; i < fx.rows; ++i) {
      float amax = 0.f;
      for (std::size_t j = 0; j < fx.dim; ++j) {
        amax = std::max(amax, std::fabs(fx.hops[h].at(i, j)));
      }
      const float bound = amax / 254.f + 1e-6f;
      for (std::size_t j = 0; j < fx.dim; ++j) {
        EXPECT_LE(std::fabs(out.at(i, h * fx.dim + j) - fx.hops[h].at(i, j)),
                  bound);
      }
    }
  }
}

TEST(Int8RowCodec, OpenRejectsCodecMismatch) {
  const StoreFixture fx;
  const std::string dir = tmp_path("codec_mismatch");
  { loader::FeatureFileStore::create(dir, fx.hops, loader::RowCodec::kInt8); }
  // Record sizes differ per codec, so the file length exposes a
  // mismatched open instead of letting it decode garbage.
  EXPECT_THROW(loader::FeatureFileStore::open(dir, fx.rows, 3, fx.dim,
                                              loader::RowCodec::kFp32),
               std::invalid_argument);
  EXPECT_NO_THROW(loader::FeatureFileStore::open(dir, fx.rows, 3, fx.dim,
                                                 loader::RowCodec::kInt8));
}

TEST(Int8RowCodec, ReadRowsMatchesReadChunkBitForBit) {
  const StoreFixture fx;
  const auto store = loader::FeatureFileStore::create(
      tmp_path("int8_store_rr"), fx.hops, loader::RowCodec::kInt8);
  Tensor chunk({fx.rows, 3 * fx.dim});
  store.read_chunk(0, fx.rows, chunk);
  const std::vector<std::int64_t> ids{49, 0, 7, 7, 8, 9, 23};
  Tensor rows({ids.size(), 3 * fx.dim});
  store.read_rows(ids, rows);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = 0; j < 3 * fx.dim; ++j) {
      EXPECT_EQ(rows.at(i, j), chunk.at(static_cast<std::size_t>(ids[i]), j));
    }
  }
}

TEST(BatchedReadRows, CoalescesRunsAndStaysBitIdentical) {
  const StoreFixture fx;
  const auto store = loader::FeatureFileStore::create(
      tmp_path("coalesce_store"), fx.hops);  // fp32: bit-exact comparisons
  // 10 requested rows, but only three disk runs: {3,4,5,5,6}, {20}, {30..32}.
  const std::vector<std::int64_t> ids{5, 3, 30, 4, 20, 5, 31, 6, 32, 30};
  const std::uint64_t before = store.preads();
  Tensor batched({ids.size(), 3 * fx.dim});
  store.read_rows(ids, batched);
  const std::uint64_t batched_preads = store.preads() - before;
  EXPECT_EQ(batched_preads, 3u * 3u);  // 3 runs x 3 hop files
  EXPECT_LT(batched_preads, ids.size() * 3);  // vs one per row per hop

  // Coalescing is invisible in the data: per-row reads agree bit for bit.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Tensor one({1, 3 * fx.dim});
    store.read_rows({ids[i]}, one);
    for (std::size_t j = 0; j < 3 * fx.dim; ++j) {
      EXPECT_EQ(batched.at(i, j), one.at(0, j)) << "row " << ids[i];
    }
  }
}

// --- Byte-denominated cache capacity ----------------------------------------

TEST(ByteCapacity, SameBudgetHoldsFourfoldMoreInt8Rows) {
  const std::size_t fp32_row = 384, int8_row = 108, budget = 10 * fp32_row;
  loader::LruCache fp32_cache(budget, fp32_row);
  loader::LruCache int8_cache(budget, int8_row);
  EXPECT_EQ(fp32_cache.capacity(), 10u);
  EXPECT_EQ(int8_cache.capacity(), 35u);  // 3840 / 108
  EXPECT_EQ(fp32_cache.capacity_bytes(), budget);
  EXPECT_GE(int8_cache.capacity() * 2, fp32_cache.capacity() * 7);  // >3.5x
  // Eviction respects the row budget, not the byte count alone.
  for (std::int64_t r = 0; r < 10; ++r) fp32_cache.access(r);
  EXPECT_TRUE(fp32_cache.resident(0));
  fp32_cache.access(10);
  EXPECT_FALSE(fp32_cache.resident(0));  // LRU row displaced at 10 rows
  EXPECT_EQ(fp32_cache.size(), 10u);
}

TEST(ByteCapacity, StaticCacheReportsPinnedBytes) {
  loader::StaticCache c({1, 2, 3}, 108);
  EXPECT_EQ(c.capacity(), 3u);
  EXPECT_EQ(c.capacity_bytes(), 3u * 108u);
  EXPECT_EQ(c.row_bytes(), 108u);
}

// --- Cached int8 rows stay int8 while resident ------------------------------

TEST(CachedSource, KeepsEncodedPayloadAndDecodesIdenticallyOnHit) {
  const StoreFixture fx;
  auto backing = std::make_unique<serve::FileStoreSource>(
      loader::FeatureFileStore::create(tmp_path("enc_cache_store"), fx.hops,
                                       loader::RowCodec::kInt8));
  const std::size_t enc_row = backing->encoded_row_bytes();
  EXPECT_EQ(enc_row, 3 * (sizeof(float) + fx.dim));
  serve::CachedSource cached(
      std::move(backing),
      std::make_unique<loader::LruCache>(8 * enc_row, enc_row));
  Tensor miss_pass, hit_pass;
  const std::vector<std::int64_t> ids{1, 2, 3};
  cached.gather(ids, miss_pass);
  cached.gather(ids, hit_pass);
  // A hit decodes the same encoded bytes a miss decoded: caching can
  // never change an answer.
  for (std::size_t i = 0; i < miss_pass.size(); ++i) {
    EXPECT_EQ(miss_pass[i], hit_pass[i]);
  }
  const auto st = cached.stats();
  EXPECT_EQ(st.rows_read, 3u);
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.resident_rows, 3u);
  // Resident bytes are the ENCODED size — the 4x claim in memory, not
  // just on disk.
  EXPECT_EQ(st.resident_bytes, 3u * enc_row);
}

// --- Model-level quantization + replica weight sharing ----------------------

struct ModelFixture {
  graph::Dataset ds;
  core::Preprocessed pre;

  ModelFixture() : ds(graph::make_dataset(graph::DatasetName::kPokecSim,
                                          0.02)) {
    core::PrecomputeConfig pc;
    pc.hops = 2;
    pre = core::precompute(ds.graph, ds.features, pc);
  }

  std::unique_ptr<core::PpModel> make_model(std::uint64_t seed = 7) const {
    Rng rng(seed);
    core::SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = pre.num_hops();
    cfg.hidden = 16;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  }
};

TEST(ModelQuantize, SharedWeightsAnswerBitIdenticallyAcrossModels) {
  const ModelFixture fx;
  auto a = fx.make_model(21);
  auto b = fx.make_model(99);  // different init
  // Align fp32 weights first (the deployment round trip does this via the
  // checkpoint); then quantize one and share into the other.
  {
    std::vector<nn::ParamSlot> sa, sb;
    a->collect_params(sa);
    b->collect_params(sb);
    for (std::size_t i = 0; i < sa.size(); ++i) *sb[i].value = *sa[i].value;
  }
  EXPECT_EQ(core::quantize_int8(*a), 6u);  // 3 branches + 3 head layers
  core::share_quantized_weights(*b, *a);
  std::vector<nn::Linear*> la, lb;
  a->collect_linears(la);
  b->collect_linears(lb);
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i]->quantized_weight().get(), lb[i]->quantized_weight().get());
  }
  const std::vector<std::int64_t> nodes{0, 5, 17, 3};
  const Tensor batch = fx.pre.expanded_rows(nodes);
  const Tensor ya = a->infer(batch);
  const Tensor yb = b->infer(batch);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(ModelQuantize, FleetBuilderInt8FleetIsSelfConsistentAndClose) {
  const ModelFixture fx;
  const std::string ckpt = tmp_path("int8_fleet.ckpt");
  {
    auto trained = fx.make_model(21);
    serve::save_deployed_model(*trained, ckpt, serve::Precision::kInt8);
  }
  serve::FleetBuilder builder(
      ckpt, [&](std::size_t i) { return fx.make_model(100 + i); },
      [&](std::size_t) { return std::make_unique<serve::MemorySource>(fx.pre); },
      serve::Precision::kInt8);
  auto sessions = builder.build_n(3);
  ASSERT_EQ(sessions.size(), 3u);
  for (const auto& s : sessions) {
    EXPECT_EQ(s->precision(), serve::Precision::kInt8);
  }
  // fp32 reference from the same quantized checkpoint.
  auto ref_model = fx.make_model(77);
  serve::load_deployed_model(*ref_model, ckpt);
  serve::InferenceSession ref(std::move(ref_model),
                              std::make_unique<serve::MemorySource>(fx.pre));
  for (std::int64_t node = 0; node < 20; ++node) {
    const auto want = sessions[0]->infer_one(node);
    const auto fp32 = ref.infer_one(node);
    for (std::size_t r = 1; r < 3; ++r) {
      const auto got = sessions[r]->infer_one(node);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t j = 0; j < want.size(); ++j) {
        // Replicas share one quantized weight block: bit-identical.
        EXPECT_EQ(got[j], want[j]) << "replica " << r << " node " << node;
      }
    }
    for (std::size_t j = 0; j < want.size(); ++j) {
      // And the int8 fleet stays within a quantization-error bound of the
      // fp32 model it was quantized from.
      EXPECT_NEAR(want[j], fp32[j], 0.1) << "node " << node;
    }
  }
}

TEST(ModelQuantize, SessionRejectsPrecisionLabelContradictingModelState) {
  const ModelFixture fx;
  // int8 label on an unquantized model: would silently serve fp32.
  EXPECT_THROW(serve::InferenceSession(
                   fx.make_model(), std::make_unique<serve::MemorySource>(fx.pre),
                   serve::Precision::kInt8),
               std::invalid_argument);
  // fp32 label on a quantized model: would silently serve the int8 path.
  auto quantized = fx.make_model();
  core::quantize_int8(*quantized);
  EXPECT_THROW(serve::InferenceSession(
                   std::move(quantized),
                   std::make_unique<serve::MemorySource>(fx.pre)),
               std::invalid_argument);
}

TEST(ModelQuantize, RejectsModelsWithoutQuantizableLayers) {
  struct NoLinears : core::PpModel {
    Tensor forward(const Tensor& batch, bool) override { return batch; }
    void backward(const Tensor&) override {}
    void collect_params(std::vector<nn::ParamSlot>&) override {}
    std::string name() const override { return "stub"; }
    std::size_t hops() const override { return 0; }
  };
  NoLinears m;
  EXPECT_THROW(core::quantize_int8(m), std::invalid_argument);
}

}  // namespace
}  // namespace ppgnn
