// Full-batch GCN: gradient correctness, training behaviour, and the
// paper-scale memory argument.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/dataset.h"
#include "graph/normalize.h"
#include "mpgnn/gcn.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ppgnn::mpgnn {
namespace {

struct Fixture {
  graph::Dataset ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  graph::CsrGraph op = graph::sym_normalized(ds.graph);
};

Fixture& fx() {
  static Fixture f;
  return f;
}

GcnConfig small_cfg(std::size_t layers = 2) {
  GcnConfig cfg;
  cfg.in_dim = fx().ds.feature_dim();
  cfg.hidden_dim = 8;
  cfg.out_dim = fx().ds.num_classes;
  cfg.num_layers = layers;
  cfg.dropout = 0.f;
  return cfg;
}

TEST(Gcn, ForwardShapesAndValidation) {
  Rng rng(1);
  Gcn model(small_cfg(), rng);
  const Tensor out = model.forward(fx().op, fx().ds.features, false);
  EXPECT_EQ(out.rows(), fx().ds.num_nodes());
  EXPECT_EQ(out.cols(), fx().ds.num_classes);
  Tensor wrong({3, 4});
  EXPECT_THROW(model.forward(fx().op, wrong, false), std::invalid_argument);
  GcnConfig bad = small_cfg();
  bad.in_dim = 0;
  EXPECT_THROW(Gcn(bad, rng), std::invalid_argument);
}

TEST(Gcn, WeightGradientsMatchFiniteDifferences) {
  Rng rng(2);
  Gcn model(small_cfg(2), rng);
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);

  const auto labels = fx().ds.labels_at(fx().ds.split.train);
  // Loss over the train rows only (like the real objective).
  const auto loss_of = [&]() {
    const Tensor logits = model.forward(fx().op, fx().ds.features, true);
    Tensor train_logits = gather_rows(logits, fx().ds.split.train);
    Tensor grad(train_logits.shape());
    return cross_entropy(train_logits, labels, grad);
  };

  // Analytic gradient.
  for (auto& s : slots) s.grad->zero();
  const Tensor logits = model.forward(fx().op, fx().ds.features, true);
  Tensor train_logits = gather_rows(logits, fx().ds.split.train);
  Tensor grad(train_logits.shape());
  (void)cross_entropy(train_logits, labels, grad);
  Tensor full_grad({logits.rows(), logits.cols()});
  full_grad.zero();
  scatter_add_rows(grad, fx().ds.split.train, full_grad);
  model.backward(fx().op, full_grad);

  // Probe a few entries of each layer's weight.
  const float eps = 1e-2f;
  for (const auto& s : slots) {
    for (const std::size_t idx : {0ul, 7ul, 31ul}) {
      if (idx >= s.value->size()) continue;
      const float saved = s.value->data()[idx];
      s.value->data()[idx] = saved + eps;
      const float lp = loss_of();
      s.value->data()[idx] = saved - eps;
      const float lm = loss_of();
      s.value->data()[idx] = saved;
      const float fd = (lp - lm) / (2 * eps);
      EXPECT_NEAR(s.grad->data()[idx], fd,
                  5e-2f * std::max(1.f, std::abs(fd)))
          << s.name << "[" << idx << "]";
    }
  }
}

TEST(Gcn, FullBatchTrainingBeatsChance) {
  Rng rng(3);
  GcnConfig cfg = small_cfg(2);
  cfg.hidden_dim = 16;
  Gcn model(cfg, rng);
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::Adam opt(slots, 0.01f);

  const auto& train = fx().ds.split.train;
  const auto y_train = fx().ds.labels_at(train);
  for (int step = 0; step < 30; ++step) {
    opt.zero_grad();
    const Tensor logits = model.forward(fx().op, fx().ds.features, true);
    Tensor tl = gather_rows(logits, train);
    Tensor grad(tl.shape());
    (void)cross_entropy(tl, y_train, grad);
    Tensor full({logits.rows(), logits.cols()});
    full.zero();
    scatter_add_rows(grad, train, full);
    model.backward(fx().op, full);
    opt.step();
  }
  const Tensor logits = model.forward(fx().op, fx().ds.features, false);
  const Tensor vl = gather_rows(logits, fx().ds.split.valid);
  const double acc = accuracy(vl, fx().ds.labels_at(fx().ds.split.valid));
  EXPECT_GT(acc, 0.6);  // binary task, chance 0.5
}

TEST(Gcn, DeeperModelsCacheAndBackpropCleanly) {
  Rng rng(4);
  Gcn model(small_cfg(3), rng);
  const Tensor logits = model.forward(fx().op, fx().ds.features, true);
  Tensor grad(logits.shape());
  grad.fill(1e-3f);
  model.backward(fx().op, grad);  // no throw
  EXPECT_THROW(model.backward(fx().op, grad), std::logic_error);  // no cache
}

TEST(Gcn, PaperScaleMemoryExceedsGpu) {
  // Section 2.3's motivation: full-batch training on papers100M cannot fit
  // a 48 GB A6000 — activations alone are hundreds of GB.
  const auto scale = graph::paper_scale(graph::DatasetName::kPapers100MSim);
  const std::size_t bytes =
      Gcn::training_bytes(scale.nodes, scale.feature_dim, 256, 3);
  EXPECT_GT(bytes, 48ull * (1ull << 30));
  // Whereas the pokec analogue fits trivially.
  EXPECT_LT(Gcn::training_bytes(fx().ds.num_nodes(),
                                fx().ds.feature_dim(), 16, 2),
            1ull << 30);
}

}  // namespace
}  // namespace ppgnn::mpgnn
