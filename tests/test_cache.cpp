// Cache policies and the locality argument of Section 4.1: MP-GNN access
// streams cache well, PP-GNN epoch orders cannot beat the capacity
// fraction no matter the policy.
#include <gtest/gtest.h>

#include "graph/dataset.h"
#include "graph/generator.h"
#include "loader/cache.h"
#include "loader/shuffler.h"
#include "sampling/labor.h"
#include "tensor/rng.h"

namespace ppgnn::loader {
namespace {

TEST(LruCache, BasicSemantics) {
  LruCache c(2, 1);
  EXPECT_FALSE(c.access(1));  // miss, insert
  EXPECT_FALSE(c.access(2));
  EXPECT_TRUE(c.access(1));   // hit, refresh
  EXPECT_FALSE(c.access(3));  // evicts 2 (LRU)
  EXPECT_TRUE(c.access(1));
  EXPECT_FALSE(c.access(2));  // was evicted
  EXPECT_EQ(c.size(), 2u);
  EXPECT_THROW(LruCache(0, 1), std::invalid_argument);
  EXPECT_THROW(LruCache(4, 0), std::invalid_argument);
  // Byte semantics: a 1024-byte budget over 128-byte rows holds 8 rows.
  EXPECT_EQ(LruCache(1024, 128).capacity(), 8u);
  EXPECT_EQ(LruCache(1024, 128).capacity_bytes(), 1024u);
}

TEST(StaticCache, OnlyPinnedRowsHit) {
  StaticCache c({10, 20, 30});
  EXPECT_TRUE(c.access(10));
  EXPECT_TRUE(c.access(30));
  EXPECT_FALSE(c.access(11));
  EXPECT_FALSE(c.access(11));  // static: misses never get cached
  EXPECT_EQ(c.capacity(), 3u);
}

TEST(HottestRows, PicksByFrequency) {
  const std::vector<std::int64_t> stream{5, 5, 5, 7, 7, 1, 2, 7, 5};
  const auto hot = hottest_rows(stream, 2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0], 5);
  EXPECT_EQ(hot[1], 7);
}

TEST(Replay, CountsHitsExactly) {
  LruCache c(1, 1);
  const auto r = replay(c, {1, 1, 1, 2, 2, 1});
  EXPECT_EQ(r.accesses, 6u);
  EXPECT_EQ(r.hits, 3u);  // 1,1 hits; 2 hit; switches miss
  EXPECT_NEAR(r.hit_rate(), 0.5, 1e-12);
}

// ------------------------------------------------ the locality argument ----

std::vector<std::int64_t> pp_epoch_stream(std::size_t rows,
                                          std::size_t epochs) {
  // PP-GNN training touches each row exactly once per epoch, random order.
  const auto shuffler = make_shuffler(1);
  Rng rng(3);
  std::vector<std::int64_t> stream;
  stream.reserve(rows * epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto order = shuffler->epoch_order(rows, rng);
    stream.insert(stream.end(), order.begin(), order.end());
  }
  return stream;
}

std::vector<std::int64_t> mp_sampler_stream(std::size_t epochs) {
  // MP-GNN feature fetches: every sampled batch pulls a multi-hop frontier
  // whose composition is biased toward hub nodes.  Real web/co-purchase
  // graphs have much heavier degree tails than the accuracy analogues, so
  // this stream uses a heavy-tailed SBM directly.
  graph::SbmConfig sc;
  sc.num_nodes = 5000;
  sc.num_classes = 8;
  sc.avg_degree = 15.0;
  sc.homophily = 0.6;
  sc.degree_power = 1.3;
  sc.max_propensity_ratio = 300.0;
  sc.seed = 9;
  const auto sbm = graph::generate_sbm(sc);
  sampling::LaborSampler sampler({10, 10});
  Rng rng(4);
  std::vector<std::int64_t> stream;
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t lo = 0; lo < 400; lo += 64) {
      std::vector<sampling::NodeId> seeds;
      for (std::size_t i = lo; i < std::min(lo + 64, std::size_t{400}); ++i) {
        seeds.push_back(static_cast<sampling::NodeId>(i * 7 % 5000));
      }
      const auto batch = sampler.sample(sbm.graph, seeds, rng);
      for (const auto v : batch.input_nodes()) {
        stream.push_back(static_cast<std::int64_t>(v));
      }
    }
  }
  return stream;
}

TEST(Locality, PpStreamsHitAtMostCapacityFraction) {
  // 10% capacity => ~10% hit rate for a once-per-epoch random stream, for
  // both policies — the Section 4.1 claim that caching cannot help
  // PP-GNN loaders.
  const std::size_t rows = 4000;
  const auto stream = pp_epoch_stream(rows, 5);
  const std::size_t cap = rows / 10;

  LruCache lru(cap, 1);
  const auto lru_rate = replay(lru, stream).hit_rate();
  EXPECT_LT(lru_rate, 0.13);

  StaticCache pinned(hottest_rows(stream, cap));
  const auto static_rate = replay(pinned, stream).hit_rate();
  EXPECT_NEAR(static_rate, 0.10, 0.02);  // exactly the capacity fraction
}

TEST(Locality, MpStreamsRewardStaticHubPinning) {
  // A statically pinned 10% cache absorbs a disproportionate share of
  // MP-GNN fetches because hub nodes recur in every batch — why
  // GNNLab-style degree/frequency pinning works (Section 2.4).
  const auto stream = mp_sampler_stream(3);
  const std::size_t cap = 500;  // 10% of the 5000-node graph

  StaticCache pinned(hottest_rows(stream, cap));
  const double static_rate = replay(pinned, stream).hit_rate();
  EXPECT_GT(static_rate, 0.22);        // >2x the capacity fraction
  EXPECT_GT(static_rate, 0.10 * 2.0);  // and >2x the PP-GNN ceiling

  // LRU drowns under the scan-like frontier traffic (each batch streams
  // hundreds of once-used rows through the cache) — the reason the GNN
  // systems pin statically instead of caching dynamically.
  LruCache lru(cap, 1);
  const double lru_rate = replay(lru, stream).hit_rate();
  EXPECT_LT(lru_rate, static_rate / 2);
}

}  // namespace
}  // namespace ppgnn::loader
