#include "core/precompute.h"

#include <gtest/gtest.h>

#include "graph/normalize.h"
#include "graph/spmm.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace ppgnn::core {
namespace {

graph::CsrGraph path_graph() {
  // 0-1-2-3 path.
  return graph::build_csr(4, {{0, 1}, {1, 2}, {2, 3}});
}

TEST(Precompute, HopZeroIsInput) {
  Rng rng(1);
  const auto g = path_graph();
  const Tensor x = Tensor::normal({4, 3}, rng);
  PrecomputeConfig cfg;
  cfg.hops = 2;
  const auto pre = precompute(g, x, cfg);
  ASSERT_EQ(pre.hop_features.size(), 3u);
  EXPECT_TRUE(allclose(pre.hop_features[0], x));
  EXPECT_EQ(pre.num_hops(), 2u);
  EXPECT_GE(pre.preprocess_seconds, 0.0);
}

TEST(Precompute, SymNormHopsArePowersOfOperator) {
  Rng rng(2);
  const auto g = path_graph();
  const Tensor x = Tensor::normal({4, 3}, rng);
  PrecomputeConfig cfg;
  cfg.hops = 3;
  const auto pre = precompute(g, x, cfg);
  const auto b = graph::sym_normalized(g);
  Tensor expect = x;
  for (std::size_t r = 1; r <= 3; ++r) {
    expect = graph::spmm(b, expect);
    EXPECT_TRUE(allclose(pre.hop_features[r], expect, 1e-4f, 1e-5f))
        << "hop " << r;
  }
}

TEST(Precompute, RowNormPreservesConstants) {
  const auto g = path_graph();
  const Tensor ones = Tensor::full({4, 2}, 1.f);
  PrecomputeConfig cfg;
  cfg.op = OperatorKind::kRowNorm;
  cfg.hops = 4;
  const auto pre = precompute(g, ones, cfg);
  for (const auto& hop : pre.hop_features) {
    for (std::size_t i = 0; i < hop.size(); ++i) {
      EXPECT_NEAR(hop[i], 1.f, 1e-5f);
    }
  }
}

TEST(Precompute, PprRecurrenceMatchesDefinition) {
  Rng rng(3);
  const auto g = path_graph();
  const Tensor x = Tensor::normal({4, 2}, rng);
  PrecomputeConfig cfg;
  cfg.op = OperatorKind::kPpr;
  cfg.hops = 2;
  cfg.ppr_alpha = 0.2;
  const auto pre = precompute(g, x, cfg);
  const auto b = graph::sym_normalized(g);
  // X_1 = 0.8 * B X + 0.2 * X.
  Tensor expect = graph::spmm(b, x);
  scale_inplace(expect, 0.8f);
  axpy(0.2f, x, expect);
  EXPECT_TRUE(allclose(pre.hop_features[1], expect, 1e-4f, 1e-5f));
}

TEST(Precompute, PprConvergesTowardStationaryBlend) {
  // With many hops the PPR recurrence approaches a fixed point; successive
  // hops should get closer to each other.
  Rng rng(4);
  const auto g = path_graph();
  const Tensor x = Tensor::normal({4, 2}, rng);
  PrecomputeConfig cfg;
  cfg.op = OperatorKind::kPpr;
  cfg.hops = 12;
  const auto pre = precompute(g, x, cfg);
  const float early = max_abs_diff(pre.hop_features[1], pre.hop_features[2]);
  const float late = max_abs_diff(pre.hop_features[11], pre.hop_features[12]);
  EXPECT_LT(late, early);
}

TEST(Precompute, HeatTermsShrinkForLargeR) {
  Rng rng(5);
  const auto g = path_graph();
  const Tensor x = Tensor::normal({4, 2}, rng);
  PrecomputeConfig cfg;
  cfg.op = OperatorKind::kHeat;
  cfg.heat_t = 1.0;
  cfg.hops = 6;
  const auto pre = precompute(g, x, cfg);
  // Taylor factor t^r/r! decays; hop-6 magnitude << hop-1 magnitude.
  auto norm = [](const Tensor& t) {
    double s = 0;
    for (std::size_t i = 0; i < t.size(); ++i) s += t[i] * t[i];
    return s;
  };
  EXPECT_LT(norm(pre.hop_features[6]), 0.1 * norm(pre.hop_features[1]));
}

TEST(Precompute, ExpandedRowsLayout) {
  Rng rng(6);
  const auto g = path_graph();
  const Tensor x = Tensor::normal({4, 3}, rng);
  PrecomputeConfig cfg;
  cfg.hops = 2;
  const auto pre = precompute(g, x, cfg);
  const Tensor rows = pre.expanded_rows({2, 0});
  ASSERT_EQ(rows.rows(), 2u);
  ASSERT_EQ(rows.cols(), 9u);  // 3 hops * 3 dims
  for (std::size_t h = 0; h < 3; ++h) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(rows.at(0, h * 3 + j), pre.hop_features[h].at(2, j));
      EXPECT_FLOAT_EQ(rows.at(1, h * 3 + j), pre.hop_features[h].at(0, j));
    }
  }
  EXPECT_EQ(pre.row_bytes(), 9 * sizeof(float));
  EXPECT_EQ(pre.total_bytes(), 4 * 9 * sizeof(float));
  EXPECT_THROW(pre.expanded_rows({4}), std::out_of_range);
}

TEST(Precompute, SmoothingPullsNeighborsTogether) {
  // The low-pass-filter property: after propagation, adjacent nodes'
  // features are closer than before (relative to their original distance).
  const auto ds_g = graph::build_csr(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  Rng rng(7);
  const Tensor x = Tensor::normal({6, 8}, rng);
  PrecomputeConfig cfg;
  cfg.hops = 3;
  const auto pre = precompute(ds_g, x, cfg);
  auto dist01 = [&](const Tensor& t) {
    double d = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      const double diff = t.at(0, j) - t.at(1, j);
      d += diff * diff;
    }
    return d;
  };
  EXPECT_LT(dist01(pre.hop_features[3]), dist01(pre.hop_features[0]));
}

TEST(Precompute, ValidatesShapes) {
  const auto g = path_graph();
  Tensor wrong({3, 2});
  EXPECT_THROW(precompute(g, wrong, {}), std::invalid_argument);
}

TEST(Precompute, OperatorNames) {
  EXPECT_STREQ(to_string(OperatorKind::kSymNorm), "sym-norm");
  EXPECT_STREQ(to_string(OperatorKind::kPpr), "ppr");
  EXPECT_STREQ(to_string(OperatorKind::kHeat), "heat");
  EXPECT_STREQ(to_string(OperatorKind::kRowNorm), "row-norm");
}

}  // namespace
}  // namespace ppgnn::core
