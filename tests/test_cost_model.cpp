#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace ppgnn::sim {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  MachineSpec machine = MachineSpec::paper_server();
  CostModel cm{machine};
};

TEST_F(CostModelTest, BaselineAssemblyDominatedByPerItemOverhead) {
  // 8000 rows: per-item overhead alone is 8000 * per_item; the fused path
  // pays one call.  This is the Section 4.1 gap.
  const double baseline = cm.host_assembly_baseline(8000, 1600);
  const double fused = cm.host_assembly_fused(8000, 1600);
  EXPECT_GT(baseline, 5.0 * fused);
  EXPECT_GT(baseline, 8000 * machine.host.per_item_overhead_s);
}

TEST_F(CostModelTest, FusedAssemblyIsBandwidthBound) {
  const std::size_t rows = 8000, rb = 1600;
  const double t = cm.host_assembly_fused(rows, rb);
  const double bytes_time = rows * rb / machine.host.gather_bandwidth;
  EXPECT_NEAR(t, bytes_time + machine.host.per_call_overhead_s, 1e-12);
}

TEST_F(CostModelTest, PinnedTransferFasterThanPageable) {
  EXPECT_LT(cm.h2d(100 << 20, true), cm.h2d(100 << 20, false));
}

TEST_F(CostModelTest, ChunkedTransfersPayPerChunkLatency) {
  const std::size_t total = 12800000;
  const double one = cm.h2d_chunks(1, total);
  const double many = cm.h2d_chunks(16, total / 16);
  EXPECT_GT(many, one);  // more DMA launches
  EXPECT_LT(many, 2.0 * one);  // but minor for large chunks (Section 4.2)
  // Tiny chunks do hurt: 100x more launches is no longer negligible.
  EXPECT_GT(cm.h2d_chunks(1000, total / 1000), 2.0 * one);
}

TEST_F(CostModelTest, UvaSlowerThanBulkDma) {
  EXPECT_GT(cm.uva_read(1 << 30), cm.h2d(1 << 30, true));
}

TEST_F(CostModelTest, GpuGatherMuchFasterThanHostGather) {
  const double gpu = cm.gpu_gather(8000, 1600);
  const double host = cm.host_assembly_fused(8000, 1600);
  EXPECT_LT(gpu, host / 5.0);
}

TEST_F(CostModelTest, GemmFlopBoundForLargeShapes) {
  const double t = cm.gpu_gemm(8192, 8192, 8192);
  const double flop_time =
      2.0 * 8192.0 * 8192.0 * 8192.0 / machine.gpu.fp32_flops;
  EXPECT_NEAR(t, flop_time + machine.gpu.kernel_launch_s, flop_time * 0.01);
}

TEST_F(CostModelTest, SmallGemmLaunchBound) {
  const double t = cm.gpu_gemm(8, 8, 8);
  EXPECT_LT(t, 2.0 * machine.gpu.kernel_launch_s);
}

TEST_F(CostModelTest, SsdSequentialBeatsRandomByOrders) {
  // Reading 8000 rows of 1.6 KB: chunked ~ bandwidth bound, random ~ IOPS.
  const std::size_t rows = 8000, rb = 1600;
  const double seq = cm.ssd_chunk_read(1, rows * rb);
  const double rnd = cm.ssd_random_read(rows, rb);
  EXPECT_GT(rnd, 3.0 * seq);
}

TEST_F(CostModelTest, AllreduceGrowsWithGpus) {
  const std::size_t bytes = 64 << 20;
  EXPECT_DOUBLE_EQ(cm.allreduce(bytes, 1), 0.0);
  EXPECT_GT(cm.allreduce(bytes, 4), cm.allreduce(bytes, 2));
}

TEST_F(CostModelTest, GpuSamplingMuchCheaperThanCpu) {
  EXPECT_LT(cm.gpu_sample(1000000), cm.cpu_sample(1000000));
}

// ---------------------------------------------------------------------------

TEST(PpModelShape, RowBytesReflectsInputExpansion) {
  PpModelShape sign;
  sign.kind = PpModelKind::kSign;
  sign.hops = 3;
  sign.feat_dim = 100;
  EXPECT_EQ(sign.row_bytes(), 4u * 100 * 4);  // (R+1) * F * 4

  PpModelShape sgc = sign;
  sgc.kind = PpModelKind::kSgc;
  EXPECT_EQ(sgc.row_bytes(), 100u * 4);  // final hop only
}

TEST(PpModelShape, HogaCostsMoreThanSignMoreThanSgc) {
  const MachineSpec m = MachineSpec::paper_server();
  const CostModel cm(m);
  PpModelShape shape;
  shape.hops = 3;
  shape.feat_dim = 100;
  shape.hidden = 256;
  shape.classes = 47;
  shape.kind = PpModelKind::kSgc;
  const double sgc = pp_compute_per_batch(cm, shape, 8000);
  shape.kind = PpModelKind::kSign;
  const double sign = pp_compute_per_batch(cm, shape, 8000);
  shape.kind = PpModelKind::kHoga;
  const double hoga = pp_compute_per_batch(cm, shape, 8000);
  EXPECT_LT(sgc, sign);
  EXPECT_LT(sign, hoga);
}

TEST(PpModelShape, TrainingCostSubLinearInHops) {
  // Section 6.1: "training time of PP-GNNs increases sub-linearly with
  // additional hops" — hop count only scales part of the model.
  const MachineSpec m = MachineSpec::paper_server();
  const CostModel cm(m);
  PpModelShape shape;
  shape.kind = PpModelKind::kHoga;
  shape.feat_dim = 100;
  shape.hidden = 256;
  shape.classes = 47;
  shape.hops = 2;
  const double t2 = pp_compute_per_batch(cm, shape, 8000);
  shape.hops = 6;
  const double t6 = pp_compute_per_batch(cm, shape, 8000);
  EXPECT_LT(t6 / t2, 3.0);  // 3x hops -> < 3x time
  EXPECT_GT(t6, t2);
}

TEST(MpBatchShape, NeighborExplosionGrowsGeometrically) {
  const auto b2 = expected_neighbor_batch({10, 10}, 1000, 100000000);
  const auto b3 = expected_neighbor_batch({10, 10, 10}, 1000, 100000000);
  EXPECT_GT(b3.input_rows, 5 * b2.input_rows);
  EXPECT_GT(b2.input_rows, 50u * 1000u);
}

TEST(MpBatchShape, CappedByGraphSize) {
  const auto b = expected_neighbor_batch({15, 10, 5}, 8000, 20000);
  EXPECT_LE(b.input_rows, 20000u);
}

TEST(MpBatchShape, LaborSamplesFewerThanNeighbor) {
  const auto nb = expected_neighbor_batch({15, 10, 5}, 8000, 100000000);
  const auto lb = expected_labor_batch({15, 10, 5}, 8000, 100000000);
  EXPECT_LT(lb.input_rows, nb.input_rows);
  EXPECT_GT(lb.input_rows, nb.input_rows / 10);
}

TEST(MpCompute, ScalesWithBatchShape) {
  const MachineSpec m = MachineSpec::paper_server();
  const CostModel cm(m);
  MpModelShape model;
  model.layers = 3;
  const auto small = expected_neighbor_batch({5, 5, 5}, 1000, 100000000);
  const auto large = expected_neighbor_batch({15, 10, 5}, 8000, 100000000);
  EXPECT_LT(mp_compute_per_batch(cm, model, small),
            mp_compute_per_batch(cm, model, large));
}

TEST(MpCompute, LayerMismatchThrows) {
  const MachineSpec m = MachineSpec::paper_server();
  const CostModel cm(m);
  MpModelShape model;
  model.layers = 3;
  const auto b = expected_neighbor_batch({5, 5}, 100, 10000);
  EXPECT_THROW(mp_compute_per_batch(cm, model, b), std::invalid_argument);
}

// --- CPU INT8 serving GEMM spec (the kernel-ladder table) -------------------

TEST(CpuGemmSpec, DefaultTableClimbsTheLadder) {
  // Each arm strictly faster than the rung below — the ordering the
  // bench's measured table must also exhibit for the acceptance gate.
  EXPECT_LT(CpuGemmSpec::default_ops(Isa::kScalar),
            CpuGemmSpec::default_ops(Isa::kSse2));
  EXPECT_LT(CpuGemmSpec::default_ops(Isa::kSse2),
            CpuGemmSpec::default_ops(Isa::kAvx2));
  EXPECT_LT(CpuGemmSpec::default_ops(Isa::kAvx2),
            CpuGemmSpec::default_ops(Isa::kAvx512Vnni));
}

TEST(CpuGemmSpec, MeasuredOverridesDefaultsAndGuardsZero) {
  const CpuGemmSpec m = CpuGemmSpec::measured(Isa::kAvx2, 72.5);
  EXPECT_EQ(m.isa, Isa::kAvx2);
  EXPECT_DOUBLE_EQ(m.int8_ops, 72.5e9);
  // A missing/zero measurement degrades to the arm's table default.
  const CpuGemmSpec z = CpuGemmSpec::measured(Isa::kSse2, 0);
  EXPECT_DOUBLE_EQ(z.int8_ops, CpuGemmSpec::default_ops(Isa::kSse2));
}

TEST(CpuGemmSpec, DispatchedTracksTheRuntimeProbe) {
  const CpuGemmSpec d = CpuGemmSpec::dispatched();
  EXPECT_EQ(d.isa, active_isa());
  EXPECT_TRUE(isa_supported(d.isa));
  EXPECT_DOUBLE_EQ(d.int8_ops, CpuGemmSpec::default_ops(d.isa));
}

TEST(CpuGemmSpec, PaperServerPinsVnniDeterministically) {
  // Xeon 6248R (Cascade Lake) — fixed table entry, never the local probe,
  // so the paper machine model is identical on every build host.
  const MachineSpec m = MachineSpec::paper_server();
  EXPECT_EQ(m.cpu_gemm.isa, Isa::kAvx512Vnni);
  EXPECT_DOUBLE_EQ(m.cpu_gemm.int8_ops,
                   CpuGemmSpec::default_ops(Isa::kAvx512Vnni));
}

TEST(CpuGemmSpec, FasterArmShrinksGemmAndServiceCost) {
  MachineSpec slow = MachineSpec::paper_server();
  slow.cpu_gemm = CpuGemmSpec::measured(Isa::kScalar, 6.0);
  MachineSpec fast = slow;
  fast.cpu_gemm = CpuGemmSpec::measured(Isa::kAvx512Vnni, 150.0);
  const CostModel cm_slow(slow), cm_fast(fast);
  // Big enough that the MACs dominate the per-call floor and bandwidth.
  EXPECT_GT(cm_slow.cpu_gemm_s8(4096, 96, 512),
            2.0 * cm_fast.cpu_gemm_s8(4096, 96, 512));
  EXPECT_GT(cm_slow.cpu_gemm_s8(256, 96, 32),
            cm_fast.cpu_gemm_s8(256, 96, 32));
}

}  // namespace
}  // namespace ppgnn::sim
