#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "tensor/rng.h"

namespace ppgnn {
namespace {

Tensor naive_matmul(const Tensor& a, bool ta, const Tensor& b, bool tb) {
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t k = ta ? a.rows() : a.cols();
  const std::size_t n = tb ? b.rows() : b.cols();
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0;
      for (std::size_t l = 0; l < k; ++l) {
        const float av = ta ? a.at(l, i) : a.at(i, l);
        const float bv = tb ? b.at(j, l) : b.at(l, j);
        acc += av * bv;
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

class GemmTranspose : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTranspose, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(42);
  // Logical op(A) is [5,7], op(B) is [7,4].
  Tensor a = ta ? Tensor::normal({7, 5}, rng) : Tensor::normal({5, 7}, rng);
  Tensor b = tb ? Tensor::normal({4, 7}, rng) : Tensor::normal({7, 4}, rng);
  Tensor c({5, 4});
  gemm(a, ta, b, tb, c);
  EXPECT_TRUE(allclose(c, naive_matmul(a, ta, b, tb), 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(AllCombos, GemmTranspose,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Gemm, AlphaBetaAccumulate) {
  Rng rng(3);
  Tensor a = Tensor::normal({3, 4}, rng);
  Tensor b = Tensor::normal({4, 2}, rng);
  Tensor c = Tensor::full({3, 2}, 1.f);
  gemm(a, false, b, false, c, 2.f, 0.5f);
  Tensor expect = naive_matmul(a, false, b, false);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(c[i], 2.f * expect[i] + 0.5f, 1e-4f);
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({3, 4}), b({5, 2}), c({3, 2});
  EXPECT_THROW(gemm(a, false, b, false, c), std::invalid_argument);
}

TEST(Gemm, LargeParallelMatchesNaive) {
  Rng rng(9);
  Tensor a = Tensor::normal({128, 64}, rng);
  Tensor b = Tensor::normal({64, 96}, rng);
  EXPECT_TRUE(allclose(matmul(a, b), naive_matmul(a, false, b, false), 1e-3f,
                       1e-4f));
}

TEST(Elementwise, AddSubMulAxpyScale) {
  Rng rng(4);
  Tensor a = Tensor::normal({4, 4}, rng);
  const Tensor a0 = a;
  Tensor b = Tensor::normal({4, 4}, rng);
  add_inplace(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], a0[i] + b[i]);
  sub_inplace(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], a0[i], 1e-6f);
  axpy(2.f, b, a);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], a0[i] + 2.f * b[i], 1e-5f);
  }
  scale_inplace(a, 0.f);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], 0.f);
  Tensor c = a0;
  mul_inplace(c, b);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_FLOAT_EQ(c[i], a0[i] * b[i]);
}

TEST(Elementwise, AddRowVectorAndSumRows) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::from_vector({3}, {10, 20, 30});
  add_row_vector(a, bias);
  EXPECT_FLOAT_EQ(a.at(0, 0), 11.f);
  EXPECT_FLOAT_EQ(a.at(1, 2), 36.f);
  Tensor s({3});
  sum_rows(a, s);
  EXPECT_FLOAT_EQ(s[0], 11.f + 14.f);
  EXPECT_FLOAT_EQ(s[2], 33.f + 36.f);
  EXPECT_FLOAT_EQ(sum_all(a), 11 + 22 + 33 + 14 + 25 + 36);
}

TEST(Activations, ReluForwardBackward) {
  Tensor x = Tensor::from_vector({1, 4}, {-1.f, 0.f, 2.f, -3.f});
  Tensor y({1, 4});
  relu(x, y);
  EXPECT_FLOAT_EQ(y[0], 0.f);
  EXPECT_FLOAT_EQ(y[2], 2.f);
  Tensor g = Tensor::full({1, 4}, 1.f);
  Tensor dx({1, 4});
  relu_backward(y, g, dx);
  EXPECT_FLOAT_EQ(dx[0], 0.f);
  EXPECT_FLOAT_EQ(dx[2], 1.f);
}

TEST(Activations, LeakyRelu) {
  Tensor x = Tensor::from_vector({1, 2}, {-2.f, 3.f});
  Tensor y({1, 2});
  leaky_relu(x, y, 0.1f);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 3.f);
  Tensor g = Tensor::full({1, 2}, 2.f);
  Tensor dx({1, 2});
  leaky_relu_backward(x, g, dx, 0.1f);
  EXPECT_FLOAT_EQ(dx[0], 0.2f);
  EXPECT_FLOAT_EQ(dx[1], 2.f);
}

TEST(Activations, GeluNumericalGradient) {
  const float eps = 1e-3f;
  for (float v : {-2.f, -0.5f, 0.f, 0.7f, 3.f}) {
    Tensor x = Tensor::from_vector({1, 1}, {v});
    Tensor xp = Tensor::from_vector({1, 1}, {v + eps});
    Tensor xm = Tensor::from_vector({1, 1}, {v - eps});
    Tensor yp({1, 1}), ym({1, 1});
    gelu(xp, yp);
    gelu(xm, ym);
    Tensor g = Tensor::full({1, 1}, 1.f);
    Tensor dx({1, 1});
    gelu_backward(x, g, dx);
    EXPECT_NEAR(dx[0], (yp[0] - ym[0]) / (2 * eps), 1e-3f) << "at " << v;
  }
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(5);
  Tensor x = Tensor::normal({6, 9}, rng, 0.f, 5.f);
  Tensor y({6, 9});
  softmax_rows(x, y);
  for (std::size_t i = 0; i < 6; ++i) {
    float s = 0;
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_GT(y.at(i, j), 0.f);
      s += y.at(i, j);
    }
    EXPECT_NEAR(s, 1.f, 1e-5f);
  }
}

TEST(Softmax, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(6);
  Tensor x = Tensor::normal({3, 5}, rng);
  Tensor sm({3, 5}), lsm({3, 5});
  softmax_rows(x, sm);
  log_softmax_rows(x, lsm);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(lsm[i], std::log(sm[i]), 1e-5f);
  }
}

TEST(CrossEntropy, LossAndGradMatchNumerical) {
  Rng rng(7);
  Tensor logits = Tensor::normal({4, 3}, rng);
  const std::vector<std::int32_t> labels{0, 2, 1, 2};
  Tensor grad(logits.shape());
  const float loss = cross_entropy(logits, labels, grad);
  EXPECT_GT(loss, 0.f);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    Tensor tmp(logits.shape());
    const float fp = cross_entropy(lp, labels, tmp);
    const float fm = cross_entropy(lm, labels, tmp);
    EXPECT_NEAR(grad[i], (fp - fm) / (2 * eps), 2e-3f);
  }
}

TEST(CrossEntropy, IgnoresMaskedLabels) {
  Rng rng(8);
  Tensor logits = Tensor::normal({3, 4}, rng);
  Tensor g1(logits.shape()), g2(logits.shape());
  const float l1 = cross_entropy(logits, {1, -1, 2}, g1);
  // Same rows with the masked row dropped -> same loss value.
  Tensor two({2, 4});
  std::memcpy(two.row(0), logits.row(0), 4 * sizeof(float));
  std::memcpy(two.row(1), logits.row(2), 4 * sizeof(float));
  Tensor gtwo(two.shape());
  const float l2 = cross_entropy(two, {1, 2}, gtwo);
  EXPECT_NEAR(l1, l2, 1e-5f);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(g1.at(1, j), 0.f);
}

TEST(CrossEntropy, AllMaskedGivesZero) {
  Tensor logits({2, 3});
  Tensor g(logits.shape());
  EXPECT_FLOAT_EQ(cross_entropy(logits, {-1, -1}, g), 0.f);
}

TEST(Accuracy, CountsCorrectRows) {
  Tensor logits = Tensor::from_vector({3, 2}, {1, 0, 0, 1, 5, 2});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 1, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {-1, 1, 1}), 0.5);
}

TEST(Dropout, ZeroProbabilityIsIdentity) {
  Rng rng(9);
  Tensor x = Tensor::normal({4, 4}, rng);
  Tensor y(x.shape());
  std::vector<std::uint8_t> mask;
  dropout(x, y, mask, 0.f, rng);
  EXPECT_TRUE(allclose(x, y));
}

TEST(Dropout, ScalesKeptEntries) {
  Rng rng(10);
  Tensor x = Tensor::full({100, 10}, 1.f);
  Tensor y(x.shape());
  std::vector<std::uint8_t> mask;
  dropout(x, y, mask, 0.5f, rng);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (mask[i]) {
      EXPECT_FLOAT_EQ(y[i], 2.f);
      ++kept;
    } else {
      EXPECT_FLOAT_EQ(y[i], 0.f);
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / y.size(), 0.5, 0.05);
  // Backward routes gradient only through kept entries with the same scale.
  Tensor g = Tensor::full(x.shape(), 3.f);
  Tensor dx(x.shape());
  dropout_backward(g, mask, dx, 0.5f);
  for (std::size_t i = 0; i < dx.size(); ++i) {
    EXPECT_FLOAT_EQ(dx[i], mask[i] ? 6.f : 0.f);
  }
}

TEST(GatherScatter, GatherRowsCopiesAndValidates) {
  Tensor src = Tensor::from_vector({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor out = gather_rows(src, {2, 0, 2});
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 2.f);
  EXPECT_FLOAT_EQ(out.at(2, 0), 5.f);
  EXPECT_THROW(gather_rows(src, {3}), std::out_of_range);
  EXPECT_THROW(gather_rows(src, {-1}), std::out_of_range);
}

TEST(GatherScatter, ScatterAddAccumulatesDuplicates) {
  Tensor src = Tensor::from_vector({3, 2}, {1, 1, 2, 2, 3, 3});
  Tensor dst({2, 2});
  scatter_add_rows(src, {0, 1, 0}, dst);
  EXPECT_FLOAT_EQ(dst.at(0, 0), 4.f);
  EXPECT_FLOAT_EQ(dst.at(1, 1), 2.f);
}

TEST(ConcatSplit, RoundTrips) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({2, 3}, {5, 6, 7, 8, 9, 10});
  const Tensor cat = concat_cols({&a, &b});
  EXPECT_EQ(cat.cols(), 5u);
  EXPECT_FLOAT_EQ(cat.at(1, 4), 10.f);
  Tensor a2({2, 2}), b2({2, 3});
  std::vector<Tensor*> parts{&a2, &b2};
  split_cols(cat, parts);
  EXPECT_TRUE(allclose(a, a2));
  EXPECT_TRUE(allclose(b, b2));
}

TEST(Allclose, DetectsDifference) {
  Tensor a = Tensor::full({2, 2}, 1.f);
  Tensor b = Tensor::full({2, 2}, 1.f);
  EXPECT_TRUE(allclose(a, b));
  b[3] = 1.1f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_NEAR(max_abs_diff(a, b), 0.1f, 1e-6f);
}

}  // namespace
}  // namespace ppgnn
