#include "sim/event_sim.h"

#include <gtest/gtest.h>

namespace ppgnn::sim {
namespace {

TEST(EventSim, SerialOpsAccumulate) {
  StreamProgram p;
  const auto s = p.add_stream("s");
  p.add_op(s, 1.0, "a");
  p.add_op(s, 2.0, "a");
  p.add_op(s, 3.0, "b");
  EXPECT_DOUBLE_EQ(p.run(), 6.0);
  EXPECT_DOUBLE_EQ(p.busy_time_by_tag("a"), 3.0);
  EXPECT_DOUBLE_EQ(p.busy_time_by_tag("b"), 3.0);
}

TEST(EventSim, IndependentStreamsOverlap) {
  StreamProgram p;
  const auto s1 = p.add_stream("s1");
  const auto s2 = p.add_stream("s2");
  p.add_op(s1, 5.0, "x");
  p.add_op(s2, 3.0, "y");
  EXPECT_DOUBLE_EQ(p.run(), 5.0);
}

TEST(EventSim, CrossStreamDependencySerializes) {
  StreamProgram p;
  const auto s1 = p.add_stream("s1");
  const auto s2 = p.add_stream("s2");
  const auto a = p.add_op(s1, 2.0, "load");
  const auto b = p.add_op(s2, 3.0, "compute", {a});
  p.run();
  EXPECT_DOUBLE_EQ(p.op_start(b), 2.0);
  EXPECT_DOUBLE_EQ(p.op_finish(b), 5.0);
}

TEST(EventSim, DoubleBufferPipelineReachesSteadyState) {
  // Classic producer/consumer with 2 buffers: load_k depends on compute_{k-2};
  // steady-state period = max(load, compute).
  StreamProgram p;
  const auto dma = p.add_stream("dma");
  const auto gpu = p.add_stream("gpu");
  const double load = 1.0, compute = 2.0;
  std::vector<OpId> computes;
  const int n = 50;
  for (int k = 0; k < n; ++k) {
    std::vector<OpId> ldeps;
    if (computes.size() >= 2) ldeps.push_back(computes[computes.size() - 2]);
    const auto l = p.add_op(dma, load, "load", ldeps);
    computes.push_back(p.add_op(gpu, compute, "compute", {l}));
  }
  const double makespan = p.run();
  // load hidden behind compute: T ~= load + n*compute.
  EXPECT_NEAR(makespan, load + n * compute, 1e-9);
}

TEST(EventSim, LoadingBoundPipeline) {
  StreamProgram p;
  const auto dma = p.add_stream("dma");
  const auto gpu = p.add_stream("gpu");
  const double load = 3.0, compute = 1.0;
  std::vector<OpId> computes;
  const int n = 40;
  for (int k = 0; k < n; ++k) {
    std::vector<OpId> ldeps;
    if (computes.size() >= 2) ldeps.push_back(computes[computes.size() - 2]);
    const auto l = p.add_op(dma, load, "load", ldeps);
    computes.push_back(p.add_op(gpu, compute, "compute", {l}));
  }
  EXPECT_NEAR(p.run(), n * load + compute, 1e-9);
}

TEST(EventSim, SpanByTagMergesOverlaps) {
  StreamProgram p;
  const auto s1 = p.add_stream("s1");
  const auto s2 = p.add_stream("s2");
  p.add_op(s1, 4.0, "t");           // [0,4)
  p.add_op(s2, 2.0, "other");       // [0,2)
  p.add_op(s2, 3.0, "t");           // [2,5)
  p.run();
  EXPECT_DOUBLE_EQ(p.span_by_tag("t"), 5.0);  // union of [0,4) and [2,5)
}

TEST(EventSim, StreamBusyTime) {
  StreamProgram p;
  const auto s = p.add_stream("s");
  p.add_op(s, 1.5, "a");
  p.add_op(s, 2.5, "b");
  p.run();
  EXPECT_DOUBLE_EQ(p.stream_busy_time(s), 4.0);
}

TEST(EventSim, RejectsBadOps) {
  StreamProgram p;
  const auto s = p.add_stream("s");
  EXPECT_THROW(p.add_op(7, 1.0, "x"), std::invalid_argument);
  EXPECT_THROW(p.add_op(s, -1.0, "x"), std::invalid_argument);
  EXPECT_THROW(p.add_op(s, 1.0, "x", {99}), std::invalid_argument);
}

TEST(EventSim, RunIsIdempotent) {
  StreamProgram p;
  const auto s = p.add_stream("s");
  p.add_op(s, 2.0, "a");
  EXPECT_DOUBLE_EQ(p.run(), 2.0);
  EXPECT_DOUBLE_EQ(p.run(), 2.0);
}

}  // namespace
}  // namespace ppgnn::sim
