// Failure-injection tests: every misuse or broken environment the library
// can see should fail loudly with a typed exception, never by corrupting
// results.  Covers the storage loader (missing / truncated / permission-
// denied files), out-of-range reads, and trainer misconfiguration.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/precompute.h"
#include "core/sgc.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "loader/storage.h"
#include "tensor/rng.h"

namespace ppgnn {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const char* tag) {
  const auto dir = fs::temp_directory_path() /
                   (std::string("ppgnn_failtest_") + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<Tensor> small_hops(std::size_t rows = 16, std::size_t hops = 2,
                               std::size_t dim = 4) {
  Rng rng(1);
  std::vector<Tensor> out;
  for (std::size_t h = 0; h <= hops; ++h) {
    out.push_back(Tensor::normal({rows, dim}, rng));
  }
  return out;
}

// ------------------------------------------------------------- storage ----

TEST(StorageFailures, OpenMissingDirectoryThrows) {
  EXPECT_THROW(
      loader::FeatureFileStore::open("/nonexistent/ppgnn", 16, 3, 4),
      std::runtime_error);
}

TEST(StorageFailures, OpenMissingHopFileThrows) {
  const auto dir = temp_dir("missing_hop");
  auto store = loader::FeatureFileStore::create(dir, small_hops());
  // Remove one hop file and reopen: must throw, not read garbage.
  fs::remove(fs::path(dir) / "hop_1.bin");
  EXPECT_THROW(loader::FeatureFileStore::open(dir, 16, 3, 4),
               std::runtime_error);
  fs::remove_all(dir);
}

TEST(StorageFailures, TruncationDetectedAtOpenAndAtRead) {
  const auto dir = temp_dir("truncated");
  // Truncated after open (the store keeps its fds): the pread hits EOF
  // mid-read and fails at use time.
  auto store = loader::FeatureFileStore::create(dir, small_hops());
  const auto path = (fs::path(dir) / "hop_0.bin").string();
  fs::resize_file(path, fs::file_size(path) / 2);
  Tensor out({8, 3 * 4});
  EXPECT_THROW(store.read_chunk(8, 8, out), std::runtime_error);
  // Truncated before open: the file-length check (which also pins down
  // the row codec) fails loudly up front instead of on first read.
  EXPECT_THROW(loader::FeatureFileStore::open(dir, 16, 3, 4),
               std::invalid_argument);
  fs::remove_all(dir);
}

TEST(StorageFailures, OutOfRangeChunkThrows) {
  const auto dir = temp_dir("oob_chunk");
  auto store = loader::FeatureFileStore::create(dir, small_hops());
  Tensor out({8, 3 * 4});
  EXPECT_THROW(store.read_chunk(12, 8, out), std::out_of_range);
  EXPECT_THROW(store.read_chunk(16, 1, out), std::out_of_range);
  fs::remove_all(dir);
}

TEST(StorageFailures, OutOfRangeRowThrows) {
  const auto dir = temp_dir("oob_row");
  auto store = loader::FeatureFileStore::create(dir, small_hops());
  Tensor out({2, 3 * 4});
  EXPECT_THROW(store.read_rows({0, 16}, out), std::out_of_range);
  EXPECT_THROW(store.read_rows({-1, 0}, out), std::out_of_range);
  fs::remove_all(dir);
}

TEST(StorageFailures, MismatchedOutputShapeThrows) {
  const auto dir = temp_dir("bad_shape");
  auto store = loader::FeatureFileStore::create(dir, small_hops());
  Tensor wrong({4, 5});  // wrong width
  EXPECT_THROW(store.read_chunk(0, 4, wrong), std::invalid_argument);
  EXPECT_THROW(store.read_rows({0, 1, 2, 3}, wrong), std::invalid_argument);
  fs::remove_all(dir);
}

TEST(StorageFailures, CreateRejectsInconsistentHopShapes) {
  const auto dir = temp_dir("inconsistent");
  Rng rng(2);
  std::vector<Tensor> hops;
  hops.push_back(Tensor::normal({16, 4}, rng));
  hops.push_back(Tensor::normal({16, 5}, rng));  // different dim
  EXPECT_THROW(loader::FeatureFileStore::create(dir, hops),
               std::invalid_argument);
  fs::remove_all(dir);
}

TEST(StorageFailures, RoundTripSurvivesReopen) {
  // Positive control for the failure cases above: an intact store read
  // through a fresh open() returns bit-identical data.
  const auto dir = temp_dir("roundtrip");
  const auto hops = small_hops();
  {
    auto store = loader::FeatureFileStore::create(dir, hops);
  }
  auto store = loader::FeatureFileStore::open(dir, 16, 3, 4);
  Tensor out({16, 3 * 4});
  store.read_chunk(0, 16, out);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t h = 0; h <= 2; ++h) {
      for (std::size_t d = 0; d < 4; ++d) {
        EXPECT_FLOAT_EQ(out.at(i, h * 4 + d), hops[h].at(i, d));
      }
    }
  }
  fs::remove_all(dir);
}

// ------------------------------------------------------------- trainer ----

TEST(TrainerFailures, RejectsZeroBatchOrEpochs) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  core::PrecomputeConfig pc;
  pc.hops = 2;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  Rng rng(1);
  core::Sgc model(ds.feature_dim(), 2, ds.num_classes, rng);

  core::PpTrainConfig tc;
  tc.epochs = 0;
  EXPECT_THROW(core::train_pp(model, pre, ds, tc), std::invalid_argument);
  tc.epochs = 1;
  tc.batch_size = 0;
  EXPECT_THROW(core::train_pp(model, pre, ds, tc), std::invalid_argument);
}

TEST(TrainerFailures, RejectsHopMismatchBetweenModelAndPreprocessing) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  core::PrecomputeConfig pc;
  pc.hops = 2;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  Rng rng(1);
  // Model wants 4 hops; preprocessing provides 2 — width mismatch must
  // surface as an exception from the first forward, not silent slicing.
  core::Sgc model(ds.feature_dim(), 4, ds.num_classes, rng);
  core::PpTrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 64;
  EXPECT_THROW(core::train_pp(model, pre, ds, tc), std::invalid_argument);
}

TEST(TrainerFailures, StorageModeWithUnwritableDirThrows) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  core::PrecomputeConfig pc;
  pc.hops = 2;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  Rng rng(1);
  core::Sgc model(ds.feature_dim(), 2, ds.num_classes, rng);
  core::PpTrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 64;
  tc.mode = core::LoadingMode::kStorageChunk;
  tc.storage_dir = "/proc/ppgnn_unwritable";  // cannot create files here
  EXPECT_THROW(core::train_pp(model, pre, ds, tc), std::runtime_error);
}

// ---------------------------------------------------------- precompute ----

TEST(PrecomputeFailures, RejectsFeatureRowMismatch) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  Rng rng(1);
  const Tensor wrong = Tensor::normal({ds.num_nodes() + 1, 8}, rng);
  core::PrecomputeConfig pc;
  pc.hops = 2;
  EXPECT_THROW(core::precompute(ds.graph, wrong, pc), std::invalid_argument);
}

TEST(PrecomputeFailures, MultiOperatorRejectsEmptyAndMismatchedHops) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  EXPECT_THROW(core::precompute_multi(ds.graph, ds.features, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppgnn
