#include "core/autoconfig.h"

#include <gtest/gtest.h>

#include "core/complexity.h"

namespace ppgnn::core {
namespace {

sim::PpModelShape hoga_shape(std::size_t feat, std::size_t classes,
                             std::size_t hops = 3) {
  sim::PpModelShape s;
  s.kind = sim::PpModelKind::kHoga;
  s.hops = hops;
  s.feat_dim = feat;
  s.hidden = 256;
  s.classes = classes;
  return s;
}

TEST(AutoConfig, Papers100MGoesToGpu) {
  // Section 6.4: papers100M's labeled part is 0.8 GB per hop after
  // preprocessing — fits comfortably in GPU memory.
  const AutoConfigurator ac(sim::MachineSpec::paper_server(), 1);
  const auto plan = ac.plan(hoga_shape(128, 172, 4),
                            graph::paper_scale(graph::DatasetName::kPapers100MSim));
  EXPECT_EQ(plan.placement.placement, sim::DataPlacement::kGpu);
  EXPECT_FALSE(plan.placement.chunk_reshuffle);
  EXPECT_LT(plan.input_bytes, std::size_t{8} << 30);
}

TEST(AutoConfig, IgbMediumGoesToHostWithChunks) {
  // igb-medium: 40 GB features -> 160 GB at R=3; exceeds GPU, fits host.
  const AutoConfigurator ac(sim::MachineSpec::paper_server(), 1);
  const auto plan = ac.plan(hoga_shape(1024, 19, 3),
                            graph::paper_scale(graph::DatasetName::kIgbMediumSim));
  EXPECT_EQ(plan.placement.placement, sim::DataPlacement::kHost);
  EXPECT_TRUE(plan.placement.chunk_reshuffle);
}

TEST(AutoConfig, IgbLargeGoesToStorage) {
  // igb-large: 1.6 TB expanded input exceeds 380 GB host memory.
  const AutoConfigurator ac(sim::MachineSpec::paper_server(), 1);
  const auto plan = ac.plan(hoga_shape(1024, 19, 3),
                            graph::paper_scale(graph::DatasetName::kIgbLargeSim));
  EXPECT_EQ(plan.placement.placement, sim::DataPlacement::kStorage);
  EXPECT_TRUE(plan.placement.chunk_reshuffle);
  EXPECT_GT(plan.input_bytes, std::size_t{1} << 40);
}

TEST(AutoConfig, MediumGraphsPreloadToGpu) {
  for (const auto name : graph::medium_datasets()) {
    const AutoConfigurator ac(sim::MachineSpec::paper_server(), 1);
    const auto scale = graph::paper_scale(name);
    const auto plan = ac.plan(
        hoga_shape(scale.feature_dim, scale.classes, 6), scale);
    EXPECT_EQ(plan.placement.placement, sim::DataPlacement::kGpu)
        << graph::to_string(name);
  }
}

TEST(AutoConfig, ForceRrRespected) {
  const AutoConfigurator ac(sim::MachineSpec::paper_server(), 1);
  const auto plan = ac.plan(hoga_shape(1024, 19, 3),
                            graph::paper_scale(graph::DatasetName::kIgbMediumSim),
                            /*force_sgd_rr=*/true);
  EXPECT_FALSE(plan.placement.chunk_reshuffle);
  EXPECT_EQ(plan.pipeline.loader, sim::LoaderKind::kDoubleBuffer);
}

TEST(AutoConfig, PredictionIsPositiveAndFinite) {
  const AutoConfigurator ac(sim::MachineSpec::paper_server(), 2);
  const auto plan = ac.plan(hoga_shape(128, 172, 3),
                            graph::paper_scale(graph::DatasetName::kPapers100MSim));
  EXPECT_GT(plan.predicted.epoch_seconds, 0.0);
  EXPECT_LT(plan.predicted.epoch_seconds, 3600.0);
  EXPECT_FALSE(plan.summary().empty());
}

TEST(AutoConfig, ProbePeakGrowsWithModel) {
  const AutoConfigurator ac(sim::MachineSpec::paper_server(), 1);
  auto sgc = hoga_shape(128, 47);
  sgc.kind = sim::PpModelKind::kSgc;
  auto hoga = hoga_shape(128, 47);
  EXPECT_LT(ac.probe_model_peak_bytes(sgc), ac.probe_model_peak_bytes(hoga));
}

// ---------------------------------------------------------------------------

TEST(Complexity, TableHasPaperModelsPlusExtensions) {
  // The paper's seven rows plus the three extension rows (SSGC, GAMLP,
  // full-batch GCN).
  const auto table = complexity_table({});
  ASSERT_EQ(table.size(), 10u);
  EXPECT_EQ(table[0].model, "GraphSAGE");
  EXPECT_EQ(table[4].model, "SGC");
  const char* expected[] = {"GraphSAGE", "LADIES", "GraphSAINT", "LABOR",
                            "SGC", "SIGN", "SSGC", "GAMLP", "GCN-full",
                            "HOGA"};
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table[i].model, expected[i]);
  }
}

TEST(Complexity, PpModelsHaveNoPropagationTerm) {
  for (const auto& e : complexity_table({})) {
    const bool is_pp = e.model == "SGC" || e.model == "SSGC" ||
                       e.model == "SIGN" || e.model == "GAMLP" ||
                       e.model == "HOGA";
    if (is_pp) {
      EXPECT_EQ(e.propagation, 0.0) << e.model;
    } else {
      EXPECT_GT(e.propagation, 0.0) << e.model;
    }
  }
}

TEST(Complexity, NodeWiseSamplersExplodeWithLayers) {
  ComplexityParams p3, p5;
  p5.L = 5;
  const auto t3 = complexity_table(p3);
  const auto t5 = complexity_table(p5);
  // GraphSAGE compute grows superlinearly in L (C^L term).
  EXPECT_GT(t5[0].compute / t3[0].compute, 10.0);
  // SIGN grows linearly.
  EXPECT_NEAR(t5[5].compute / t3[5].compute, 5.0 / 3.0, 0.01);
}

TEST(Complexity, SgcCheapestEverywhere) {
  const auto table = complexity_table({});
  const auto& sgc = table[4];
  for (const auto& e : table) {
    EXPECT_LE(sgc.memory, e.memory) << e.model;
    EXPECT_LE(sgc.compute, e.compute) << e.model;
  }
}

TEST(Complexity, ExpressionsPrinted) {
  for (const auto& e : complexity_table({})) {
    EXPECT_FALSE(e.memory_expr.empty());
    EXPECT_FALSE(e.compute_expr.empty());
  }
}

}  // namespace
}  // namespace ppgnn::core
