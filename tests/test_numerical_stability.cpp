// Numerical-stability properties of the math kernels, plus analytic
// invariants of the diffusion operators (PPR / heat) that preprocessing
// relies on.  These guard the regimes real training visits: large logits
// late in training, near-one-hot softmax inputs, high-degree hubs whose
// normalized rows must still sum correctly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/precompute.h"
#include "graph/dataset.h"
#include "graph/normalize.h"
#include "graph/spmm.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace ppgnn {
namespace {

// ------------------------------------------------------------ softmax ----

TEST(Stability, SoftmaxSurvivesHugeLogits) {
  Tensor x = Tensor::from_vector({2, 3}, {1e4f, 1e4f + 1.f, 1e4f - 2.f,
                                          -1e4f, -1e4f + 5.f, -1e4f});
  Tensor out({2, 3});
  softmax_rows(x, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
    EXPECT_GE(out.data()[i], 0.f);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    float row_sum = 0;
    for (std::size_t j = 0; j < 3; ++j) row_sum += out.at(i, j);
    EXPECT_NEAR(row_sum, 1.f, 1e-5f);
  }
  // Shift invariance: softmax(x) == softmax(x + c).
  Tensor shifted = x;
  for (std::size_t i = 0; i < shifted.size(); ++i) shifted.data()[i] += 123.f;
  Tensor out2({2, 3});
  softmax_rows(shifted, out2);
  EXPECT_TRUE(allclose(out, out2, 1e-5f));
}

TEST(Stability, CrossEntropySurvivesConfidentWrongPredictions) {
  // Logits strongly favoring the wrong class: loss must be large but
  // finite, and the gradient bounded by 1 in magnitude per entry.
  Tensor logits = Tensor::from_vector({1, 3}, {50.f, -50.f, 0.f});
  Tensor grad({1, 3});
  const float loss = cross_entropy(logits, {1}, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 50.f);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_TRUE(std::isfinite(grad.data()[i]));
    EXPECT_LE(std::abs(grad.data()[i]), 1.f + 1e-5f);
  }
}

TEST(Stability, CrossEntropyConfidentCorrectHasTinyLoss) {
  Tensor logits = Tensor::from_vector({1, 2}, {80.f, -80.f});
  Tensor grad({1, 2});
  const float loss = cross_entropy(logits, {0}, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, 1e-3f);
}

TEST(Stability, LogSoftmaxNeverMinusInfinityForFiniteInput) {
  Tensor x = Tensor::from_vector({1, 3}, {0.f, -200.f, 200.f});
  Tensor out({1, 3});
  log_softmax_rows(x, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i])) << i;
  }
}

// -------------------------------------------------- diffusion operators ----

struct DiffusionFixture {
  graph::Dataset ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
};

DiffusionFixture& fx() {
  static DiffusionFixture f;
  return f;
}

TEST(Diffusion, SymNormalizedSpectralRadiusAtMostOne) {
  // Power iteration on B = D~^-1/2 (A+I) D~^-1/2: the dominant eigenvalue
  // is 1 (and exactly 1 on each connected component).
  const auto op = graph::sym_normalized(fx().ds.graph);
  Rng rng(1);
  Tensor v = Tensor::normal({op.num_nodes(), 1}, rng);
  double lambda = 0;
  for (int it = 0; it < 50; ++it) {
    Tensor bv = graph::spmm(op, v);
    double norm = 0;
    for (std::size_t i = 0; i < bv.size(); ++i) {
      norm += static_cast<double>(bv.data()[i]) * bv.data()[i];
    }
    norm = std::sqrt(norm);
    ASSERT_GT(norm, 0);
    double vnorm = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      vnorm += static_cast<double>(v.data()[i]) * v.data()[i];
    }
    lambda = norm / std::sqrt(vnorm);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v.data()[i] = bv.data()[i] / static_cast<float>(norm);
    }
  }
  EXPECT_LE(lambda, 1.0 + 1e-4);
  EXPECT_GE(lambda, 0.95);  // dominant eigenvalue ~1 on the giant component
}

TEST(Diffusion, RowNormalizedPreservesConstantVector) {
  // D~^-1 (A+I) is row-stochastic: propagating all-ones returns all-ones,
  // at every hop — so hop features of a constant signal stay constant.
  const auto& ds = fx().ds;
  Tensor ones({ds.num_nodes(), 1});
  ones.fill(1.f);
  core::PrecomputeConfig pc;
  pc.op = core::OperatorKind::kRowNorm;
  pc.hops = 4;
  const auto pre = core::precompute(ds.graph, ones, pc);
  for (std::size_t h = 0; h <= 4; ++h) {
    for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
      ASSERT_NEAR(pre.hop_features[h].at(i, 0), 1.f, 1e-4f)
          << "hop " << h << " node " << i;
    }
  }
}

TEST(Diffusion, PprHopsConvergeGeometrically) {
  // X_r = (1-a) B X_{r-1} + a X_0 is a contraction toward the PPR fixed
  // point: successive hop differences shrink by at least (1 - a).
  const auto& ds = fx().ds;
  core::PrecomputeConfig pc;
  pc.op = core::OperatorKind::kPpr;
  pc.ppr_alpha = 0.15;
  pc.hops = 6;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  double prev_diff = 1e30;
  for (std::size_t h = 1; h <= 6; ++h) {
    const double diff =
        max_abs_diff(pre.hop_features[h], pre.hop_features[h - 1]);
    if (h >= 2) {
      EXPECT_LE(diff, prev_diff * (1.0 - pc.ppr_alpha) + 1e-4)
          << "hop " << h;
    }
    prev_diff = diff;
  }
}

TEST(Diffusion, HeatTaylorTermsDecay) {
  // X_r = (t/r) B X_{r-1}: once r > t the Taylor factor t/r < 1 and term
  // magnitudes must shrink (|B| <= 1 in the spectral norm).
  const auto& ds = fx().ds;
  core::PrecomputeConfig pc;
  pc.op = core::OperatorKind::kHeat;
  pc.heat_t = 2.0;
  pc.hops = 6;
  const auto pre = core::precompute(ds.graph, ds.features, pc);
  const auto magnitude = [](const Tensor& t) {
    double m = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      m += std::abs(static_cast<double>(t.data()[i]));
    }
    return m / static_cast<double>(t.size());
  };
  for (std::size_t h = 4; h <= 6; ++h) {  // t/r = 2/4, 2/5, 2/6 < 1
    EXPECT_LT(magnitude(pre.hop_features[h]),
              magnitude(pre.hop_features[h - 1]))
        << "hop " << h;
  }
}

TEST(Diffusion, SymmetricOperatorIsActuallySymmetric) {
  // B[u][v] == B[v][u] for the sym-normalized operator (backbone of the
  // full-batch GCN backward pass, which exploits B^T == B).
  const auto op = graph::sym_normalized(fx().ds.graph);
  std::size_t checked = 0;
  const auto limit = static_cast<graph::NodeId>(
      std::min<std::size_t>(200, op.num_nodes()));
  for (graph::NodeId u = 0; u < limit; ++u) {
    const auto nbrs = op.neighbors(u);
    const auto vals = op.edge_values(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const auto v = nbrs[k];
      const auto back_nbrs = op.neighbors(v);
      const auto back_vals = op.edge_values(v);
      for (std::size_t j = 0; j < back_nbrs.size(); ++j) {
        if (back_nbrs[j] == u) {
          EXPECT_NEAR(vals[k], back_vals[j], 1e-6f);
          ++checked;
          break;
        }
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace ppgnn
