#include <gtest/gtest.h>

#include "grad_check.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ppgnn {
namespace {

using testing::check_gradients;

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear lin(4, 3, rng);
  lin.bias()[1] = 5.f;
  Tensor x = Tensor::normal({2, 4}, rng);
  const Tensor y = lin.forward(x, false);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 3u);
  // y = xW + b exactly.
  Tensor expect = matmul(x, lin.weight());
  add_row_vector(expect, lin.bias());
  EXPECT_TRUE(allclose(y, expect));
}

TEST(Linear, GradCheck) {
  Rng rng(2);
  nn::Linear lin(5, 4, rng);
  check_gradients(lin, Tensor::normal({3, 5}, rng));
}

TEST(Linear, NoBiasVariant) {
  Rng rng(3);
  nn::Linear lin(3, 2, rng, /*use_bias=*/false);
  std::vector<nn::ParamSlot> slots;
  lin.collect_params(slots);
  EXPECT_EQ(slots.size(), 1u);
  check_gradients(lin, Tensor::normal({2, 3}, rng));
}

TEST(Linear, GradAccumulatesAcrossBackwardCalls) {
  Rng rng(4);
  nn::Linear lin(2, 2, rng);
  Tensor x = Tensor::normal({2, 2}, rng);
  Tensor g = Tensor::full({2, 2}, 1.f);
  lin.zero_grad();
  (void)lin.forward(x, true);
  (void)lin.backward(g);
  std::vector<nn::ParamSlot> slots;
  lin.collect_params(slots);
  const Tensor once = *slots[0].grad;
  (void)lin.forward(x, true);
  (void)lin.backward(g);
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR((*slots[0].grad)[i], 2.f * once[i], 1e-5f);
  }
}

TEST(ReLUModule, GradCheck) {
  Rng rng(5);
  nn::ReLU relu;
  // Keep inputs away from the kink at 0 so central differences are valid.
  Tensor x = Tensor::normal({4, 6}, rng);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) < 0.1f) x[i] = x[i] < 0 ? -0.1f : 0.1f;
  }
  check_gradients(relu, x);
}

TEST(GELUModule, GradCheck) {
  Rng rng(6);
  nn::GELU gelu;
  check_gradients(gelu, Tensor::normal({4, 6}, rng));
}

TEST(DropoutModule, EvalIsIdentityTrainMasks) {
  Rng rng(7);
  nn::Dropout drop(0.5f, rng);
  Tensor x = Tensor::full({10, 10}, 1.f);
  const Tensor eval_out = drop.forward(x, false);
  EXPECT_TRUE(allclose(eval_out, x));
  const Tensor train_out = drop.forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < train_out.size(); ++i) {
    if (train_out[i] == 0.f) ++zeros;
  }
  EXPECT_GT(zeros, 20u);
  EXPECT_LT(zeros, 80u);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(8);
  nn::LayerNorm ln(16);
  Tensor x = Tensor::normal({5, 16}, rng, 3.f, 2.f);
  const Tensor y = ln.forward(x, true);
  for (std::size_t i = 0; i < 5; ++i) {
    double mean = 0, var = 0;
    for (std::size_t j = 0; j < 16; ++j) mean += y.at(i, j);
    mean /= 16;
    for (std::size_t j = 0; j < 16; ++j) {
      var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GradCheck) {
  Rng rng(9);
  nn::LayerNorm ln(8);
  check_gradients(ln, Tensor::normal({4, 8}, rng));
}

TEST(LayerNorm, Works3D) {
  Rng rng(10);
  nn::LayerNorm ln(4);
  Tensor x = Tensor::normal({2, 3, 4}, rng);
  const Tensor y = ln.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Attention, OutputShapeMatches) {
  Rng rng(11);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::normal({3, 5, 8}, rng);
  const Tensor y = attn.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Attention, GradCheckSingleHead) {
  Rng rng(12);
  nn::MultiHeadSelfAttention attn(4, 1, rng);
  // fp32 forward noise dominates at small eps; widen the probe and
  // tolerance (softmax composition is smooth, so this stays a valid check).
  testing::GradCheckOptions opt;
  opt.eps = 2e-2f;
  opt.tol = 8e-2f;
  opt.abs_floor = 2e-3f;
  check_gradients(attn, Tensor::normal({2, 3, 4}, rng), opt);
}

TEST(Attention, GradCheckMultiHead) {
  Rng rng(13);
  nn::MultiHeadSelfAttention attn(8, 4, rng);
  testing::GradCheckOptions opt;
  opt.eps = 2e-2f;
  opt.tol = 8e-2f;
  opt.abs_floor = 2e-3f;
  check_gradients(attn, Tensor::normal({2, 4, 8}, rng), opt);
}

TEST(Attention, RejectsBadDims) {
  Rng rng(14);
  EXPECT_THROW(nn::MultiHeadSelfAttention(7, 2, rng), std::invalid_argument);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  Tensor bad = Tensor::normal({2, 3, 6}, rng);
  EXPECT_THROW(attn.forward(bad, false), std::invalid_argument);
}

TEST(Attention, PermutationEquivariantWithoutPositions) {
  // Self-attention without positional encodings is permutation-equivariant
  // over tokens; swapping two input tokens swaps the outputs.
  Rng rng(15);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::normal({1, 3, 8}, rng);
  Tensor xp = x;
  for (std::size_t j = 0; j < 8; ++j) std::swap(xp.at(0, 0, j), xp.at(0, 2, j));
  const Tensor y = attn.forward(x, false);
  const Tensor yp = attn.forward(xp, false);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(y.at(0, 0, j), yp.at(0, 2, j), 1e-5f);
    EXPECT_NEAR(y.at(0, 1, j), yp.at(0, 1, j), 1e-5f);
  }
}

TEST(Mlp, GradCheck) {
  Rng rng(16);
  nn::Mlp mlp({6, 8, 4}, /*dropout=*/0.f, rng);
  check_gradients(mlp, Tensor::normal({3, 6}, rng));
}

TEST(Mlp, SingleLayerIsLinear) {
  Rng rng(17);
  nn::Mlp mlp({4, 3}, 0.f, rng);
  EXPECT_EQ(mlp.num_layers(), 1u);
  Tensor x = Tensor::normal({2, 4}, rng);
  const Tensor y = mlp.forward(x, false);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(Mlp, RejectsTooFewDims) {
  Rng rng(18);
  EXPECT_THROW(nn::Mlp({4}, 0.f, rng), std::invalid_argument);
}

TEST(Sgd, DescendsQuadratic) {
  // One parameter, loss = 0.5 * w^2 -> grad = w; SGD converges to 0.
  Tensor w = Tensor::full({1}, 10.f);
  Tensor g({1});
  nn::Sgd opt({{&w, &g, "w"}}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    g[0] = w[0];
    opt.step();
  }
  EXPECT_LT(std::abs(w[0]), 1e-3f);
}

TEST(Sgd, MomentumAcceleratesAndWeightDecayShrinks) {
  Tensor w = Tensor::full({1}, 1.f);
  Tensor g({1});
  nn::Sgd opt({{&w, &g, "w"}}, 0.01f, 0.9f, 0.1f);
  for (int i = 0; i < 200; ++i) {
    g[0] = 0.f;  // pure weight decay
    opt.step();
  }
  EXPECT_LT(w[0], 0.9f);
}

TEST(Adam, DescendsQuadratic) {
  Tensor w = Tensor::full({2}, 5.f);
  Tensor g({2});
  nn::Adam opt({{&w, &g, "w"}}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    g[0] = w[0];
    g[1] = 2.f * w[1];
    opt.step();
  }
  EXPECT_LT(std::abs(w[0]), 1e-2f);
  EXPECT_LT(std::abs(w[1]), 1e-2f);
}

TEST(Optimizer, ZeroGradClears) {
  Tensor w({3});
  Tensor g = Tensor::full({3}, 2.f);
  nn::Adam opt({{&w, &g, "w"}}, 0.1f);
  opt.zero_grad();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(g[i], 0.f);
}

TEST(Module, NumParamsCounts) {
  Rng rng(19);
  nn::Linear lin(10, 5, rng);
  EXPECT_EQ(lin.num_params(), 10u * 5u + 5u);
}

}  // namespace
}  // namespace ppgnn
