// The elastic serving fleet (src/serve/replica_set.h FleetManager,
// router.h HashRing, autoscale.h AutoscalePolicy, and the peer cache
// warm-up path in feature_source.h).
//
// Everything here is deterministic by construction: the ring tests are
// pure hashing, the policy test injects a synthetic clock and replays a
// staged signal trace, the drain and hammer tests assert completion
// counts and bit-identity rather than timings — so the suite is stable
// under sanitizer slowdown (the TSan CI leg runs it on every PR).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/precompute.h"
#include "core/sign.h"
#include "graph/dataset.h"
#include "loader/cache.h"
#include "loader/storage.h"
#include "serve/autoscale.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/server_stats.h"
#include "serve/workload.h"

namespace ppgnn::serve {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

struct Fixture {
  graph::Dataset ds;
  core::Preprocessed pre;

  explicit Fixture(double scale = 0.02, std::size_t hops = 2)
      : ds(graph::make_dataset(graph::DatasetName::kPokecSim, scale)) {
    core::PrecomputeConfig pc;
    pc.hops = hops;
    pre = core::precompute(ds.graph, ds.features, pc);
  }

  std::unique_ptr<core::PpModel> make_model(std::uint64_t seed = 7) const {
    Rng rng(seed);
    core::SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = pre.num_hops();
    cfg.hidden = 16;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  }

  FleetBuilder builder(const std::string& ckpt,
                       Precision precision = Precision::kFp32) const {
    return FleetBuilder(
        ckpt, [this](std::size_t i) { return make_model(100 + i); },
        [this](std::size_t) { return std::make_unique<MemorySource>(pre); },
        precision);
  }

  std::string deploy(const char* name,
                     Precision precision = Precision::kFp32) const {
    const std::string ckpt = tmp_path(name);
    auto trained = make_model(21);
    save_deployed_model(*trained, ckpt, precision);
    return ckpt;
  }
};

// --- Consistent-hash ring -------------------------------------------------

TEST(HashRing, GrowRemapsAtMostOneAndAHalfOverNPlusOne) {
  constexpr std::size_t kKeys = 20000;
  for (const std::size_t n : {std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    std::vector<std::uint64_t> gens;
    for (std::size_t g = 0; g < n; ++g) gens.push_back(g);
    const HashRing before(gens);
    gens.push_back(n);  // the spawned replica's generation
    const HashRing after(gens);
    std::size_t remapped = 0;
    for (std::int64_t key = 0; key < static_cast<std::int64_t>(kKeys);
         ++key) {
      const std::size_t a = before.lookup(key);
      const std::size_t b = after.lookup(key);
      if (a != b) {
        ++remapped;
        // Keys only ever move TO the new member — surviving members'
        // virtual nodes are fixed, so no key can hop between survivors.
        EXPECT_EQ(b, n) << "key " << key << " moved between survivors";
      }
    }
    const double frac = static_cast<double>(remapped) / kKeys;
    // E[frac] = 1/(n+1); the bound leaves ~4 sigma of vnode placement
    // variance.  Contrast mod-N rehashing, which remaps ~n/(n+1).
    EXPECT_LE(frac, 1.5 / static_cast<double>(n + 1)) << "n=" << n;
    EXPECT_GT(frac, 0.0) << "n=" << n;  // the new member owns something
  }
}

TEST(HashRing, ShrinkRestoresPriorAssignments) {
  // Retiring the member that a grow added must return every key to its
  // pre-grow owner — the property that makes spawn/retire cycles cheap
  // for the per-replica caches.
  const HashRing before({3, 7, 11});
  const HashRing grown({3, 7, 11, 15});
  const HashRing shrunk({3, 7, 11});
  for (std::int64_t key = 0; key < 5000; ++key) {
    EXPECT_EQ(before.lookup(key), shrunk.lookup(key));
  }
}

// --- Autoscale policy (synthetic clock, staged trace) ---------------------

TEST(AutoscalePolicy, StagedOverloadTriggersExactlyOneUpThenOneDown) {
  AutoscaleConfig cfg;
  cfg.enabled = true;
  cfg.min_replicas = 1;
  cfg.max_replicas = 4;
  cfg.scale_up_shed = 0.10;
  cfg.sustain = std::chrono::milliseconds(400);
  cfg.scale_down_idle = 0.90;
  cfg.idle_window = std::chrono::milliseconds(1000);
  cfg.cooldown = std::chrono::milliseconds(1500);
  cfg.tick = std::chrono::milliseconds(50);
  AutoscalePolicy policy(cfg);

  const auto t0 = std::chrono::steady_clock::time_point{};
  std::size_t replicas = 1;
  std::vector<std::pair<long, ScaleAction>> actions;  // (ms, action)
  for (long ms = 0; ms <= 6000; ms += 50) {
    FleetSignals s;
    s.replicas = replicas;
    s.batch_capacity = replicas;  // idle iff queue_depth <= replicas here
    if (ms < 1000) {
      // Busy but healthy: a backlog beyond one dispatch round, nothing
      // shed — neither overloaded nor idle.
      s.shed_rate = 0.0;
      s.queue_depth = 5;
    } else if (ms < 2000) {
      // Staged overload: shedding half of offered traffic.
      s.shed_rate = 0.5;
      s.queue_depth = 200;
    } else {
      // Load gone: queues empty.
      s.shed_rate = 0.0;
      s.queue_depth = 0;
    }
    const ScaleAction a =
        policy.on_tick(s, t0 + std::chrono::milliseconds(ms));
    if (a != ScaleAction::kNone) {
      actions.emplace_back(ms, a);
      replicas += a == ScaleAction::kUp ? 1 : -1;
    }
  }
  // Exactly one spawn (overload sustained past `sustain`), then exactly
  // one retire (idle evidence spanning idle_window, after the cooldown):
  // hysteresis, not oscillation.
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].second, ScaleAction::kUp);
  // First crossing at 1000ms; sustain 400ms => the 1400ms tick.
  EXPECT_EQ(actions[0].first, 1400);
  EXPECT_EQ(actions[1].second, ScaleAction::kDown);
  // Cooldown gates until 2900; idle evidence (cleared at the spawn) spans
  // a full window well before that, so the retire lands at 2900.
  EXPECT_EQ(actions[1].first, 2900);
  EXPECT_EQ(replicas, 1u);
}

TEST(AutoscalePolicy, RespectsBoundsAndBurstsDoNotSpawn) {
  AutoscaleConfig cfg;
  cfg.min_replicas = 1;
  cfg.max_replicas = 2;
  cfg.scale_up_shed = 0.10;
  cfg.sustain = std::chrono::milliseconds(400);
  cfg.cooldown = std::chrono::milliseconds(200);
  cfg.tick = std::chrono::milliseconds(50);
  AutoscalePolicy policy(cfg);
  const auto t0 = std::chrono::steady_clock::time_point{};

  // A 100ms shed burst (under `sustain`) must not buy a replica.
  for (long ms = 0; ms <= 1000; ms += 50) {
    FleetSignals s;
    s.replicas = 1;
    s.shed_rate = (ms == 500 || ms == 550) ? 0.9 : 0.0;
    s.queue_depth = 3;
    EXPECT_EQ(policy.on_tick(s, t0 + std::chrono::milliseconds(ms)),
              ScaleAction::kNone)
        << "at " << ms;
  }
  // Sustained overload at max_replicas must not spawn past the bound.
  for (long ms = 1050; ms <= 3000; ms += 50) {
    FleetSignals s;
    s.replicas = 2;  // already at max
    s.shed_rate = 0.9;
    s.queue_depth = 500;
    EXPECT_EQ(policy.on_tick(s, t0 + std::chrono::milliseconds(ms)),
              ScaleAction::kNone)
        << "at " << ms;
  }
}

// --- Drain: a resize never drops admitted work ----------------------------

TEST(FleetManager, DrainCompletesAdmittedHighWorkBitIdentical) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("autoscale_drain.ckpt");
  // Reference: one session, same checkpoint.
  auto ref_model = fx.make_model(99);
  load_deployed_model(*ref_model, ckpt);
  InferenceSession reference(std::move(ref_model),
                             std::make_unique<MemorySource>(fx.pre));

  FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(200);
  FleetManager fleet(fx.builder(ckpt), 2, fc);
  ASSERT_EQ(fleet.num_replicas(), 2u);

  // Fill both replicas' queues with kHigh work, then retire one while the
  // work is in flight.  Every admitted future must resolve — with logits
  // bit-identical to the fixed-fleet answer.
  std::vector<std::pair<std::int64_t, std::future<std::vector<float>>>>
      inflight;
  for (std::int64_t node = 0; node < 60; ++node) {
    inflight.emplace_back(node, fleet.submit(node, Priority::kHigh));
  }
  const std::uint64_t retired = fleet.scale_down();
  EXPECT_EQ(fleet.num_replicas(), 1u);
  for (auto& [node, fut] : inflight) {
    std::vector<float> got;
    ASSERT_NO_THROW(got = fut.get()) << "node " << node;
    const auto want = reference.infer_one(node);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j], want[j]) << "node " << node << " logit " << j;
    }
  }
  // The fleet keeps serving after the resize, still bit-identical.
  for (std::int64_t node = 60; node < 70; ++node) {
    const auto got = fleet.infer_blocking(node);
    const auto want = reference.infer_one(node);
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j], want[j]) << "node " << node;
    }
  }
  // The retirement is in the event log, and the retiree's stats stayed in
  // the fleet aggregate (answered count covers all 70 requests).
  const auto events = fleet.events();
  ASSERT_FALSE(events.empty());
  EXPECT_FALSE(events.back().spawned);
  EXPECT_EQ(events.back().generation, retired);
  EXPECT_EQ(fleet.aggregate_latency().count, 70u);
  EXPECT_EQ(fleet.aggregate_admission().admitted, 70u);
}

TEST(FleetManager, ScaleUpAtInt8SharesBlocksAndStaysDeterministic) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("autoscale_int8.ckpt",
                                     Precision::kInt8);
  // Single int8 session: the determinism baseline.
  auto single =
      FleetBuilder(
          ckpt, [&](std::size_t) { return fx.make_model(55); },
          [&](std::size_t) { return std::make_unique<MemorySource>(fx.pre); },
          Precision::kInt8)
          .build_n(1);

  FleetConfig fc;
  fc.precision = Precision::kInt8;
  fc.batch.max_delay = std::chrono::microseconds(100);
  FleetManager fleet(fx.builder(ckpt, Precision::kInt8), 1, fc);
  const std::uint64_t spawned = fleet.scale_up();
  EXPECT_EQ(fleet.num_replicas(), 2u);
  EXPECT_GT(spawned, 0u);
  // Round-robin alternates replicas, so both the original and the spawned
  // replica answer — and every answer must be bit-identical to the single
  // int8 session (the spawned replica shares the same immutable quantized
  // block, not a re-quantization that could drift).
  for (std::int64_t node = 0; node < 40; ++node) {
    const auto got = fleet.infer_blocking(node);
    const auto want = single[0]->infer_one(node);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j], want[j]) << "node " << node << " logit " << j;
    }
  }
  EXPECT_EQ(fleet.replica_snapshot(0).routed + fleet.replica_snapshot(1).routed,
            40u);
  EXPECT_GT(fleet.replica_snapshot(1).routed, 0u);
}

// --- Peer cache warm-up ---------------------------------------------------

TEST(Warmup, WarmedSpawnFirstWindowHitRateAtLeastCold) {
  const Fixture fx;
  const std::string store_dir = tmp_path("warmup_store");
  loader::FeatureFileStore::create(store_dir, fx.pre.hop_features);
  const std::size_t nodes = fx.pre.num_nodes();
  const std::size_t row_bytes =
      (fx.pre.num_hops() + 1) * fx.pre.feat_dim() * sizeof(float);
  const std::size_t budget = (nodes / 10) * row_bytes;  // 10% of rows

  const auto make_cached = [&] {
    return std::make_unique<CachedSource>(
        std::make_unique<FileStoreSource>(loader::FeatureFileStore::open(
            store_dir, nodes, fx.pre.num_hops() + 1, fx.pre.feat_dim())),
        std::make_unique<loader::LruCache>(budget, row_bytes));
  };

  // A peer that has served the workload long enough for its LRU to
  // specialize on the hot set.
  auto peer = make_cached();
  ZipfWorkloadConfig wc;
  wc.num_nodes = nodes;
  wc.num_requests = 4000;
  wc.skew = 0.99;
  wc.seed = 5;
  const auto history = zipf_stream(wc);
  Tensor scratch;
  for (std::size_t i = 0; i < history.size(); i += 64) {
    const std::vector<std::int64_t> batch(
        history.begin() + i,
        history.begin() + std::min(history.size(), i + 64));
    peer->gather(batch, scratch);
  }

  // Two spawns: one seeded from the peer's hot rows, one cold.
  auto warm = make_cached();
  auto cold = make_cached();
  const auto exported = peer->export_hot_payloads(512);
  ASSERT_FALSE(exported.empty());
  const std::size_t admitted = warm->admit_payloads(exported);
  EXPECT_GT(admitted, 0u);
  EXPECT_EQ(admitted, exported.size());  // LRU admits everything offered

  // First window of live traffic after activation: same stream for both.
  wc.num_requests = 1500;
  wc.seed = 6;  // a fresh draw from the same popularity ranking
  const auto first_window = zipf_stream(wc);
  Tensor warm_out, cold_out;
  for (std::size_t i = 0; i < first_window.size(); i += 64) {
    const std::vector<std::int64_t> batch(
        first_window.begin() + i,
        first_window.begin() + std::min(first_window.size(), i + 64));
    warm->gather(batch, warm_out);
    cold->gather(batch, cold_out);
    // Caching must never change answers: warm and cold decode identical
    // bytes for identical requests.
    ASSERT_EQ(warm_out.rows(), cold_out.rows());
    for (std::size_t r = 0; r < warm_out.rows(); ++r) {
      for (std::size_t c = 0; c < warm_out.cols(); ++c) {
        ASSERT_EQ(warm_out.at(r, c), cold_out.at(r, c));
      }
    }
  }
  const double warm_rate = warm->stats().hit_rate();
  const double cold_rate = cold->stats().hit_rate();
  EXPECT_GE(warm_rate, cold_rate);
  EXPECT_GT(warm_rate, 0.0);
}

TEST(FleetManager, SpawnWarmsFromPeersUnderCacheAffinity) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("autoscale_warm.ckpt");
  const std::string store_dir = tmp_path("warm_fleet_store");
  loader::FeatureFileStore::create(store_dir, fx.pre.hop_features);
  const std::size_t nodes = fx.pre.num_nodes();
  const std::size_t row_bytes =
      (fx.pre.num_hops() + 1) * fx.pre.feat_dim() * sizeof(float);

  FleetBuilder builder(
      ckpt, [&](std::size_t i) { return fx.make_model(100 + i); },
      [&](std::size_t) -> std::unique_ptr<FeatureSource> {
        return std::make_unique<CachedSource>(
            std::make_unique<FileStoreSource>(loader::FeatureFileStore::open(
                store_dir, nodes, fx.pre.num_hops() + 1, fx.pre.feat_dim())),
            std::make_unique<loader::LruCache>((nodes / 5) * row_bytes,
                                               row_bytes));
      });
  FleetConfig fc;
  fc.policy = RoutingPolicy::kCacheAffinity;
  fc.warm_keys = 256;
  fc.batch.max_delay = std::chrono::microseconds(100);
  FleetManager fleet(std::move(builder), 2, fc);

  // Populate the peers' caches with real traffic, then spawn.
  ZipfWorkloadConfig wc;
  wc.num_nodes = nodes;
  wc.num_requests = 1200;
  wc.skew = 0.99;
  wc.seed = 9;
  for (const auto node : zipf_stream(wc)) fleet.infer_blocking(node);
  fleet.scale_up();
  ASSERT_EQ(fleet.num_replicas(), 3u);
  const auto events = fleet.events();
  ASSERT_FALSE(events.empty());
  const auto& spawn = events.back();
  EXPECT_TRUE(spawn.spawned);
  // The spawn pulled peer-hot rows for its ring shard into its cache
  // before going Active.
  EXPECT_GT(spawn.warmed_keys, 0u);
  // And routing still answers through the grown fleet.
  for (std::int64_t node = 0; node < 10; ++node) {
    EXPECT_EQ(fleet.infer_blocking(node).size(),
              static_cast<std::size_t>(fx.ds.num_classes));
  }
}

TEST(MicroBatcherDrain, DrainOutranksStopForStragglers) {
  // A retired replica's batcher is draining AND stopped.  A straggler
  // routed by a pre-resize snapshot may arrive after the drain completed;
  // it must get the re-routable kDraining bounce (the FleetManager then
  // retries a fresh snapshot), never the "stopped" exception reserved for
  // a fleet that actually shut down.
  const Fixture fx;
  auto model = fx.make_model();
  InferenceSession session(std::move(model),
                           std::make_unique<MemorySource>(fx.pre));
  for (const long budget_us : {0L, 5000L}) {  // backpressure and shedding
    MicroBatchConfig cfg;
    cfg.max_delay = std::chrono::microseconds(100);
    cfg.shed_budget = std::chrono::microseconds(budget_us);
    MicroBatcher batcher(session, cfg);
    batcher.begin_drain();
    batcher.stop();
    const Admission a = batcher.try_submit(0, Priority::kHigh);
    EXPECT_FALSE(a.accepted);
    EXPECT_EQ(a.reason, RejectReason::kDraining);
    EXPECT_FALSE(a.result.valid());
  }
}

// --- No submit lost across epoch swaps ------------------------------------

TEST(FleetManager, EightThreadHammerLosesNoSubmitAcrossResizes) {
  const Fixture fx;
  const std::string ckpt = fx.deploy("autoscale_hammer.ckpt");
  FleetConfig fc;
  fc.batch.max_delay = std::chrono::microseconds(100);
  FleetManager fleet(fx.builder(ckpt), 2, fc);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 300;
  std::atomic<std::size_t> answered{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Backpressure mode: every submit must be admitted somewhere and
        // answered — a resize mid-flight may bounce it off a draining
        // replica, but the re-route must land it.
        const auto node =
            static_cast<std::int64_t>((t * kPerThread + i) % 100);
        const auto logits = fleet.infer_blocking(node);
        if (!logits.empty()) answered.fetch_add(1);
      }
    });
  }
  go.store(true);
  // Resize storm concurrent with the hammer: grow to 4, shrink to 1,
  // repeatedly — every transition publishes a new epoch.
  for (int cycle = 0; cycle < 3; ++cycle) {
    fleet.scale_up();
    fleet.scale_up();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fleet.scale_down();
    fleet.scale_down();
    fleet.scale_down();  // down to 1
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fleet.scale_up();    // back to 2 for the next cycle
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  // Admissions across all generations (retired ones included) account for
  // every request exactly once: draining bounces are re-routes, not
  // losses, and not double counts.
  EXPECT_EQ(fleet.aggregate_admission().admitted, kThreads * kPerThread);
  EXPECT_EQ(fleet.aggregate_latency().count, kThreads * kPerThread);
  EXPECT_GT(fleet.epoch(), 0u);
  EXPECT_EQ(fleet.num_replicas(), 2u);
}

// --- ServerStats generation-keyed aggregation (regression) ----------------

TEST(ServerStats, MergeOnceFoldsEachGenerationExactlyOnce) {
  // The dynamic-membership hazard: replica gen 3 retires from slot 1 and
  // gen 9 spawns into the same slot.  Aggregation that walks both a
  // retired list and a membership list can meet gen 3 twice; keying by
  // generation makes the fold idempotent.
  ServerStats retired_gen3;
  for (int i = 1; i <= 50; ++i) retired_gen3.record(static_cast<double>(i));
  retired_gen3.record_admitted();
  retired_gen3.record_shed();
  ServerStats successor_gen9;
  for (int i = 51; i <= 100; ++i) {
    successor_gen9.record(static_cast<double>(i));
  }
  successor_gen9.record_admitted();

  ServerStats pooled;
  EXPECT_TRUE(pooled.merge_once(retired_gen3, 3));
  // The same generation arriving through a second bookkeeping path is a
  // no-op — this is the double-count regression.
  EXPECT_FALSE(pooled.merge_once(retired_gen3, 3));
  EXPECT_TRUE(pooled.merge_once(successor_gen9, 9));

  const auto s = pooled.summary();
  EXPECT_EQ(s.count, 100u);  // 150 with the double count
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  const auto adm = pooled.admission();
  EXPECT_EQ(adm.admitted, 2u);
  EXPECT_EQ(adm.shed, 1u);
}

TEST(ServerStats, WindowTracksRecentAdmissionAndQueueDelay) {
  ServerStats stats(std::chrono::milliseconds(200));
  stats.record_admitted();
  stats.record_rejected();
  stats.record_queue_delay(1000.0);
  stats.record_queue_delay(3000.0);
  stats.record(500.0);
  const auto w = stats.window();
  EXPECT_EQ(w.admission.admitted, 1u);
  EXPECT_EQ(w.admission.rejected, 1u);
  EXPECT_DOUBLE_EQ(w.shed_rate(), 0.5);
  EXPECT_EQ(w.queue_delay_samples, 2u);
  EXPECT_DOUBLE_EQ(w.mean_queue_delay_us, 2000.0);
  EXPECT_EQ(w.latency.count, 1u);
  // Cumulative counters are untouched by the window machinery.
  EXPECT_EQ(stats.admission().admitted, 1u);
  // Far in the future the window is empty while the lifetime counters
  // persist.
  const auto later =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  const auto w2 = stats.window(later);
  EXPECT_EQ(w2.admission.offered(), 0u);
  EXPECT_EQ(w2.latency.count, 0u);
  EXPECT_EQ(stats.admission().offered(), 2u);
}

}  // namespace
}  // namespace ppgnn::serve
