#include <gtest/gtest.h>

#include <cmath>

#include "core/gamlp.h"
#include "core/sgc.h"
#include "core/ssgc.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ppgnn::core {
namespace {

Tensor expanded_batch(std::size_t b, std::size_t hops, std::size_t f,
                      Rng& rng) {
  return Tensor::normal({b, (hops + 1) * f}, rng);
}

// ---------------------------------------------------------------- SSGC ----

TEST(SsgcModel, HopAverageMatchesManualComputation) {
  Rng rng(1);
  const std::size_t f = 3, hops = 2, classes = 2;
  Ssgc model(f, hops, classes, rng, /*alpha=*/0.25f);
  // Identity-like check: drive a batch whose hops are constant rows so the
  // average is analytic: h = alpha*x0 + (1-alpha)/R * (x1 + x2).
  Tensor batch({1, (hops + 1) * f});
  for (std::size_t d = 0; d < f; ++d) {
    batch.at(0, d) = 1.f;           // hop 0 = 1
    batch.at(0, f + d) = 2.f;       // hop 1 = 2
    batch.at(0, 2 * f + d) = 4.f;   // hop 2 = 4
  }
  // Expected input to the linear layer: 0.25*1 + 0.75/2*(2+4) = 2.5.
  // Verify via a second model sharing weights, fed the averaged feature.
  const Tensor out = model.forward(batch, false);
  Rng rng2(1);
  Ssgc twin(f, hops, classes, rng2, 0.25f);
  Tensor avg({1, (hops + 1) * f});
  avg.zero();
  for (std::size_t d = 0; d < f; ++d) {
    avg.at(0, 2 * f + d) = 2.5f;  // place in final hop...
  }
  // ...but twin averages too; instead compare against SGC with the same
  // linear weights fed the scalar 2.5 everywhere:
  Rng rng3(1);
  Sgc sgc(f, hops, classes, rng3);
  Tensor sgc_batch({1, (hops + 1) * f});
  sgc_batch.zero();
  for (std::size_t d = 0; d < f; ++d) sgc_batch.at(0, 2 * f + d) = 2.5f;
  const Tensor expect = sgc.forward(sgc_batch, false);
  EXPECT_TRUE(allclose(out, expect, 1e-5f));
}

TEST(SsgcModel, AlphaOneIgnoresPropagatedHops) {
  Rng rng(2);
  Ssgc model(4, 3, 2, rng, /*alpha=*/1.f);
  Tensor batch = expanded_batch(5, 3, 4, rng);
  const Tensor out1 = model.forward(batch, false);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 4; j < 16; ++j) batch.at(i, j) += 50.f;
  }
  const Tensor out2 = model.forward(batch, false);
  EXPECT_TRUE(allclose(out1, out2));
}

TEST(SsgcModel, RejectsBadConstruction) {
  Rng rng(3);
  EXPECT_THROW(Ssgc(4, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(Ssgc(4, 2, 2, rng, -0.1f), std::invalid_argument);
  EXPECT_THROW(Ssgc(4, 2, 2, rng, 1.5f), std::invalid_argument);
  Ssgc ok(4, 2, 2, rng);
  EXPECT_THROW(ok.forward(Tensor({3, 11}), false), std::invalid_argument);
}

TEST(SsgcModel, ParamCountMatchesSingleLinear) {
  Rng rng(4);
  Ssgc model(10, 3, 7, rng);
  EXPECT_EQ(model.num_params(), 10u * 7 + 7);
  EXPECT_EQ(model.name(), "SSGC");
}

TEST(SsgcModel, TrainingStepReducesLoss) {
  Rng rng(5);
  Ssgc model(6, 2, 3, rng);
  Tensor batch = expanded_batch(32, 2, 6, rng);
  std::vector<std::int32_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) {
    labels[i] = static_cast<int>(i % 3);
    // Linearly separable signal in every hop so the single linear layer has
    // something to learn (random labels are unlearnable for it).
    for (std::size_t hop = 0; hop <= 2; ++hop) {
      batch.at(i, hop * 6 + static_cast<std::size_t>(labels[i])) += 2.f;
    }
  }

  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::Adam opt(slots, 0.05f);

  Tensor grad({32, 3});
  const Tensor logits0 = model.forward(batch, true);
  const float loss0 = cross_entropy(logits0, labels, grad);
  float loss = loss0;
  for (int step = 0; step < 20; ++step) {
    for (auto& s : slots) s.grad->zero();
    const Tensor logits = model.forward(batch, true);
    loss = cross_entropy(logits, labels, grad);
    model.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss, loss0 * 0.8f);
}

// --------------------------------------------------------------- GAMLP ----

GamlpConfig small_cfg(std::size_t f = 5, std::size_t hops = 2,
                      std::size_t classes = 3) {
  GamlpConfig cfg;
  cfg.feat_dim = f;
  cfg.hops = hops;
  cfg.hidden = 8;
  cfg.mlp_layers = 2;
  cfg.classes = classes;
  cfg.dropout = 0.f;
  return cfg;
}

TEST(GamlpModel, ShapeAndValidation) {
  Rng rng(6);
  Gamlp model(small_cfg(), rng);
  Tensor batch = expanded_batch(4, 2, 5, rng);
  const Tensor out = model.forward(batch, false);
  EXPECT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.cols(), 3u);
  EXPECT_THROW(model.forward(Tensor({4, 14}), false), std::invalid_argument);
  GamlpConfig bad = small_cfg();
  bad.feat_dim = 0;
  EXPECT_THROW(Gamlp(bad, rng), std::invalid_argument);
  GamlpConfig bad2 = small_cfg();
  bad2.mlp_layers = 0;
  EXPECT_THROW(Gamlp(bad2, rng), std::invalid_argument);
}

TEST(GamlpModel, EveryHopInfluencesOutput) {
  Rng rng(7);
  Gamlp model(small_cfg(), rng);
  Tensor batch = expanded_batch(3, 2, 5, rng);
  const Tensor base = model.forward(batch, false);
  for (std::size_t hop = 0; hop <= 2; ++hop) {
    Tensor perturbed = batch;
    perturbed.at(0, hop * 5) += 1.f;
    const Tensor out = model.forward(perturbed, false);
    EXPECT_FALSE(allclose(base, out)) << "hop " << hop << " had no effect";
  }
}

TEST(GamlpModel, MeanHopAttentionIsADistribution) {
  Rng rng(9);
  Gamlp model(small_cfg(), rng);
  Tensor batch = expanded_batch(16, 2, 5, rng);
  (void)model.forward(batch, true);
  const auto mean = model.mean_hop_attention();
  ASSERT_EQ(mean.size(), 3u);
  float sum = 0.f;
  for (const float a : mean) {
    EXPECT_GE(a, 0.f);
    sum += a;
  }
  EXPECT_NEAR(sum, 1.f, 1e-4f);
  // Near-uniform at init (gates start tiny).
  for (const float a : mean) EXPECT_NEAR(a, 1.f / 3.f, 0.1f);
}

TEST(GamlpModel, GateGradientsMatchFiniteDifferences) {
  Rng rng(10);
  Gamlp model(small_cfg(4, 2, 2), rng);
  Tensor batch = expanded_batch(6, 2, 4, rng);
  std::vector<std::int32_t> labels{0, 1, 0, 1, 1, 0};

  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  ASSERT_EQ(slots.front().name, "gamlp.gates");
  Tensor* gates = slots.front().value;
  Tensor* grad_gates = slots.front().grad;

  Tensor grad({6, 2});
  grad_gates->zero();
  const Tensor logits = model.forward(batch, true);
  (void)cross_entropy(logits, labels, grad);
  model.backward(grad);

  auto loss_at = [&]() {
    Tensor g2({6, 2});
    return cross_entropy(model.forward(batch, true), labels, g2);
  };
  const float eps = 1e-3f;
  for (const std::size_t idx : {0ul, 3ul, 7ul, 11ul}) {
    const float saved = gates->data()[idx];
    gates->data()[idx] = saved + eps;
    const float lp = loss_at();
    gates->data()[idx] = saved - eps;
    const float lm = loss_at();
    gates->data()[idx] = saved;
    const float fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_gates->data()[idx], fd, 2e-2f * std::max(1.f, std::abs(fd)))
        << "gate entry " << idx;
  }
}

TEST(GamlpModel, TrainingStepReducesLoss) {
  Rng rng(11);
  Gamlp model(small_cfg(6, 3, 2), rng);
  Tensor batch = expanded_batch(32, 3, 6, rng);
  std::vector<std::int32_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = static_cast<int>(i % 2);

  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::Adam opt(slots, 0.02f);
  Tensor grad({32, 2});
  const float loss0 =
      cross_entropy(model.forward(batch, true), labels, grad);
  model.backward(grad);
  opt.step();
  float loss = loss0;
  for (int step = 0; step < 30; ++step) {
    for (auto& s : slots) s.grad->zero();
    loss = cross_entropy(model.forward(batch, true), labels, grad);
    model.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss, loss0 * 0.7f);
}

TEST(GamlpModel, BackwardWithoutForwardThrows) {
  Rng rng(12);
  Gamlp model(small_cfg(), rng);
  Tensor grad({3, 3});
  EXPECT_THROW(model.backward(grad), std::logic_error);
}

TEST(GamlpModel, InferenceKeepsNoCaches) {
  Rng rng(13);
  Gamlp model(small_cfg(), rng);
  Tensor batch = expanded_batch(3, 2, 5, rng);
  (void)model.forward(batch, false);
  Tensor grad({3, 3});
  EXPECT_THROW(model.backward(grad), std::logic_error);
}

}  // namespace
}  // namespace ppgnn::core
