// Full training-state checkpointing: save/load round trips, corruption
// detection, and the headline property — an interrupted-and-resumed run
// reproduces the uninterrupted run exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/checkpoint.h"
#include "core/precompute.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "tensor/ops.h"

namespace ppgnn::core {
namespace {

namespace fs = std::filesystem;

std::string ckpt_path(const char* tag) {
  const auto p = fs::temp_directory_path() /
                 (std::string("ppgnn_ckpt_") + tag + ".bin");
  fs::remove(p);
  return p.string();
}

Sign make_sign(const graph::Dataset& ds, std::size_t hops, Rng& rng) {
  SignConfig cfg;
  cfg.feat_dim = ds.feature_dim();
  cfg.hops = hops;
  cfg.hidden = 16;
  cfg.classes = ds.num_classes;
  cfg.dropout = 0.f;  // deterministic forward, needed for exact-resume
  return Sign(cfg, rng);
}

const graph::Dataset& dataset() {
  static const graph::Dataset ds =
      graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  return ds;
}

const Preprocessed& preprocessed() {
  static const Preprocessed pre = [] {
    PrecomputeConfig pc;
    pc.hops = 2;
    return precompute(dataset().graph, dataset().features, pc);
  }();
  return pre;
}

PpTrainConfig base_config(const std::string& ckpt) {
  PpTrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 64;
  tc.eval_every = 1;
  tc.seed = 11;
  tc.mode = LoadingMode::kPrefetch;
  tc.checkpoint_path = ckpt;
  tc.checkpoint_every = 1;
  return tc;
}

std::vector<float> param_snapshot(PpModel& model) {
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  std::vector<float> flat;
  for (const auto& s : slots) {
    flat.insert(flat.end(), s.value->data(),
                s.value->data() + s.value->size());
  }
  return flat;
}

TEST(Checkpoint, SaveLoadRoundTripsAllState) {
  const auto path = ckpt_path("roundtrip");
  Rng rng(1);
  Sign a = make_sign(dataset(), 2, rng);
  std::vector<nn::ParamSlot> slots_a;
  a.collect_params(slots_a);
  nn::Adam opt_a(slots_a, 0.01f);

  // Take a few steps so the moments are non-trivial.
  Tensor batch = preprocessed().expanded_rows({0, 1, 2, 3});
  std::vector<std::int32_t> labels{0, 1, 0, 1};
  for (int i = 0; i < 3; ++i) {
    Tensor grad({4, dataset().num_classes});
    opt_a.zero_grad();
    (void)cross_entropy(a.forward(batch, true), labels, grad);
    a.backward(grad);
    opt_a.step();
  }
  CheckpointMeta meta{.next_epoch = 4, .step_count = opt_a.step_count()};
  save_checkpoint(path, a, opt_a, meta);

  Rng rng2(99);  // different init — must be fully overwritten by load
  Sign b = make_sign(dataset(), 2, rng2);
  std::vector<nn::ParamSlot> slots_b;
  b.collect_params(slots_b);
  nn::Adam opt_b(slots_b, 0.01f);
  const auto loaded = load_checkpoint(path, b, opt_b);
  EXPECT_EQ(loaded.next_epoch, 4u);
  EXPECT_EQ(opt_b.step_count(), opt_a.step_count());
  EXPECT_EQ(param_snapshot(a), param_snapshot(b));

  // And the two now evolve identically.
  for (auto* m : {&a, &b}) {
    Tensor grad({4, dataset().num_classes});
    auto& opt = (m == &a) ? opt_a : opt_b;
    opt.zero_grad();
    (void)cross_entropy(m->forward(batch, true), labels, grad);
    m->backward(grad);
    opt.step();
  }
  EXPECT_EQ(param_snapshot(a), param_snapshot(b));
  fs::remove(path);
}

TEST(Checkpoint, InterruptedRunMatchesUninterruptedRun) {
  // Run A: 6 epochs straight (no checkpointing needed for the reference).
  Rng rng_a(5);
  Sign a = make_sign(dataset(), 2, rng_a);
  auto tc_plain = base_config("");
  const auto ra = train_pp(a, preprocessed(), dataset(), tc_plain);

  // Run B: 3 epochs, "crash", then a fresh process resumes to 6.
  const auto path = ckpt_path("resume");
  {
    Rng rng_b(5);
    Sign b1 = make_sign(dataset(), 2, rng_b);
    auto tc = base_config(path);
    tc.epochs = 3;
    (void)train_pp(b1, preprocessed(), dataset(), tc);
  }
  Rng rng_b2(5);
  Sign b2 = make_sign(dataset(), 2, rng_b2);
  auto tc2 = base_config(path);
  tc2.epochs = 6;
  const auto rb = train_pp(b2, preprocessed(), dataset(), tc2);

  // The resumed history covers epochs 4-6 and its records match run A's.
  ASSERT_EQ(rb.history.epochs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& ea = ra.history.epochs[3 + i];
    const auto& eb = rb.history.epochs[i];
    EXPECT_EQ(ea.epoch, eb.epoch);
    EXPECT_DOUBLE_EQ(ea.train_loss, eb.train_loss);
    EXPECT_DOUBLE_EQ(ea.val_acc, eb.val_acc);
  }
  EXPECT_EQ(param_snapshot(a), param_snapshot(b2));
  fs::remove(path);
}

TEST(Checkpoint, DetectsCorruptionAndMismatch) {
  const auto path = ckpt_path("corrupt");
  Rng rng(2);
  Sign model = make_sign(dataset(), 2, rng);
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::Adam opt(slots, 0.01f);
  save_checkpoint(path, model, opt, {.next_epoch = 2, .step_count = 1});

  // Truncate: must throw, not load garbage.
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(load_checkpoint(path, model, opt), std::runtime_error);

  // Bad magic.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::uint64_t junk = 0xDEADBEEF;
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
    for (int i = 0; i < 16; ++i) {
      out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
    }
  }
  EXPECT_THROW(load_checkpoint(path, model, opt), std::runtime_error);

  // Shape mismatch: checkpoint from a different architecture.
  save_checkpoint(path, model, opt, {.next_epoch = 2, .step_count = 1});
  Rng rng3(3);
  Sign other = make_sign(dataset(), 1, rng3);  // fewer hops
  std::vector<nn::ParamSlot> slots3;
  other.collect_params(slots3);
  nn::Adam opt3(slots3, 0.01f);
  EXPECT_THROW(load_checkpoint(path, other, opt3), std::runtime_error);

  EXPECT_THROW(load_checkpoint("/nonexistent/ckpt.bin", model, opt),
               std::runtime_error);
  fs::remove(path);
}

TEST(Checkpoint, SaveIsAtomic) {
  // A save leaves no .tmp behind and the destination is always complete.
  const auto path = ckpt_path("atomic");
  Rng rng(4);
  Sign model = make_sign(dataset(), 2, rng);
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::Adam opt(slots, 0.01f);
  save_checkpoint(path, model, opt, {.next_epoch = 2, .step_count = 0});
  EXPECT_TRUE(checkpoint_exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // Overwrite is also atomic.
  save_checkpoint(path, model, opt, {.next_epoch = 3, .step_count = 5});
  const auto meta = load_checkpoint(path, model, opt);
  EXPECT_EQ(meta.next_epoch, 3u);
  EXPECT_EQ(meta.step_count, 5);
  fs::remove(path);
}

}  // namespace
}  // namespace ppgnn::core
