#include "nn/serialize.h"

#include <gtest/gtest.h>

#include "core/sign.h"
#include "nn/mlp.h"
#include "tensor/ops.h"

namespace ppgnn::nn {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Serialize, RoundTripsMlp) {
  Rng rng(1);
  Mlp a({4, 8, 3}, 0.f, rng);
  const std::string path = tmp_path("mlp.ckpt");
  save_parameters(a, path);

  Mlp b({4, 8, 3}, 0.f, rng);  // different init
  Tensor x = Tensor::normal({5, 4}, rng);
  const Tensor before = b.forward(x, false);
  load_parameters(b, path);
  const Tensor after = b.forward(x, false);
  const Tensor expect = a.forward(x, false);
  EXPECT_FALSE(allclose(before, expect));
  EXPECT_TRUE(allclose(after, expect));
}

TEST(Serialize, RoundTripsPpModelSlots) {
  Rng rng(2);
  core::SignConfig cfg;
  cfg.feat_dim = 6;
  cfg.hops = 2;
  cfg.hidden = 8;
  cfg.classes = 3;
  cfg.dropout = 0.f;
  core::Sign a(cfg, rng);
  core::Sign b(cfg, rng);
  std::vector<ParamSlot> sa, sb;
  a.collect_params(sa);
  b.collect_params(sb);
  const std::string path = tmp_path("sign.ckpt");
  save_parameters(sa, path);
  load_parameters(sb, path);
  Tensor x = Tensor::normal({4, 18}, rng);
  EXPECT_TRUE(allclose(a.forward(x, false), b.forward(x, false)));
}

TEST(Serialize, RejectsShapeMismatch) {
  Rng rng(3);
  Mlp a({4, 8, 3}, 0.f, rng);
  const std::string path = tmp_path("mismatch.ckpt");
  save_parameters(a, path);
  Mlp wrong({4, 9, 3}, 0.f, rng);
  EXPECT_THROW(load_parameters(wrong, path), std::runtime_error);
  Mlp deeper({4, 8, 8, 3}, 0.f, rng);
  EXPECT_THROW(load_parameters(deeper, path), std::runtime_error);
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = tmp_path("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  Rng rng(4);
  Mlp m({2, 2}, 0.f, rng);
  EXPECT_THROW(load_parameters(m, path), std::runtime_error);
}

TEST(Serialize, MissingFileThrowsSystemError) {
  Rng rng(5);
  Mlp m({2, 2}, 0.f, rng);
  EXPECT_THROW(load_parameters(m, tmp_path("does_not_exist.ckpt")),
               std::system_error);
}

}  // namespace
}  // namespace ppgnn::nn
