// Semantic-equivalence properties of the loading-optimization ladder.
//
// The paper's Section 4 optimizations are pure mechanics: they change *how*
// batches reach the model, never *which* rows in *which* order.  Therefore:
//   (1) all SGD-RR modes (baseline / fused / prefetch) must produce
//       bit-identical training histories for the same seed;
//   (2) both SGD-CR modes (host chunks / storage chunks) must match each
//       other bit-for-bit — the on-disk store is just another byte source;
//   (3) PP-GNN logits are per-row independent: a node's prediction cannot
//       depend on which batch it shares (the property that makes batch
//       assembly order-free and chunk reshuffling safe).
// These hold for every PP-GNN model, so the suite is parameterized over
// all five.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/gamlp.h"
#include "core/hoga.h"
#include "core/precompute.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "core/ssgc.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "tensor/ops.h"

namespace ppgnn::core {
namespace {

std::unique_ptr<PpModel> build(const std::string& kind,
                               const graph::Dataset& ds, std::size_t hops,
                               Rng& rng) {
  if (kind == "SGC") {
    return std::make_unique<Sgc>(ds.feature_dim(), hops, ds.num_classes, rng);
  }
  if (kind == "SSGC") {
    return std::make_unique<Ssgc>(ds.feature_dim(), hops, ds.num_classes, rng);
  }
  if (kind == "SIGN") {
    SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = hops;
    cfg.hidden = 16;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;  // keep forward deterministic across replays
    return std::make_unique<Sign>(cfg, rng);
  }
  if (kind == "GAMLP") {
    GamlpConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = hops;
    cfg.hidden = 16;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;
    return std::make_unique<Gamlp>(cfg, rng);
  }
  HogaConfig cfg;
  cfg.feat_dim = ds.feature_dim();
  cfg.hops = hops;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.classes = ds.num_classes;
  cfg.dropout = 0.f;
  return std::make_unique<Hoga>(cfg, rng);
}

class LoadingEquivalence : public ::testing::TestWithParam<std::string> {
 protected:
  static const graph::Dataset& dataset() {
    static const graph::Dataset ds =
        graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
    return ds;
  }
  static const Preprocessed& preprocessed() {
    static const Preprocessed pre = [] {
      PrecomputeConfig pc;
      pc.hops = 2;
      return precompute(dataset().graph, dataset().features, pc);
    }();
    return pre;
  }

  TrainHistory run_mode(LoadingMode mode, std::size_t chunk = 64) {
    Rng rng(42);
    auto model = build(GetParam(), dataset(), 2, rng);
    PpTrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 64;
    tc.chunk_size = chunk;
    tc.eval_every = 1;
    tc.seed = 7;
    tc.mode = mode;
    tc.storage_dir = (std::filesystem::temp_directory_path() /
                      ("ppgnn_equiv_" + GetParam()))
                         .string();
    const auto r = train_pp(*model, preprocessed(), dataset(), tc);
    return r.history;
  }

  static void expect_identical(const TrainHistory& a, const TrainHistory& b) {
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
      EXPECT_DOUBLE_EQ(a.epochs[e].train_loss, b.epochs[e].train_loss)
          << "epoch " << e;
      EXPECT_DOUBLE_EQ(a.epochs[e].val_acc, b.epochs[e].val_acc)
          << "epoch " << e;
    }
  }
};

TEST_P(LoadingEquivalence, AllRrModesBitIdentical) {
  const auto baseline = run_mode(LoadingMode::kBaselinePerRow);
  const auto fused = run_mode(LoadingMode::kFusedAssembly);
  const auto prefetch = run_mode(LoadingMode::kPrefetch);
  expect_identical(baseline, fused);
  expect_identical(baseline, prefetch);
}

TEST_P(LoadingEquivalence, HostAndStorageChunkModesBitIdentical) {
  const auto host = run_mode(LoadingMode::kChunkPrefetch);
  const auto storage = run_mode(LoadingMode::kStorageChunk);
  expect_identical(host, storage);
}

TEST_P(LoadingEquivalence, ChunkSizeOneEqualsSgdRr) {
  // A chunk of one row is SGD-RR by construction (Table 6's chunk=1 rows).
  const auto rr = run_mode(LoadingMode::kPrefetch);
  const auto cr1 = run_mode(LoadingMode::kChunkPrefetch, /*chunk=*/1);
  expect_identical(rr, cr1);
}

TEST_P(LoadingEquivalence, LogitsArePerRowIndependent) {
  Rng rng(9);
  auto model = build(GetParam(), dataset(), 2, rng);
  const auto& pre = preprocessed();
  const std::vector<std::int64_t> rows{3, 17, 101, 200};
  const Tensor together = model->forward(pre.expanded_rows(rows), false);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Tensor alone = model->forward(pre.expanded_rows({rows[i]}), false);
    for (std::size_t c = 0; c < together.cols(); ++c) {
      EXPECT_NEAR(together.at(i, c), alone.at(0, c), 1e-4f)
          << "row " << rows[i] << " class " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPpModels, LoadingEquivalence,
                         ::testing::Values("SGC", "SSGC", "SIGN", "GAMLP",
                                           "HOGA"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace ppgnn::core
