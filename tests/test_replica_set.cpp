// Replication, routing and admission control (src/serve/replica_set.h,
// router.h, and the MicroBatcher shed path).
//
// The shedding tests stage overload deterministically instead of racing
// real load: a SlowSource pins each dispatch in service for tens of
// milliseconds while the test arranges the queue it wants, then asserts
// exact admission verdicts.  Sleeps are generous multiples of the staged
// budgets so sanitizer slowdown (ASan ~2x) doesn't flip outcomes.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "core/precompute.h"
#include "core/sign.h"
#include "graph/dataset.h"
#include "serve/feature_source.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/server_stats.h"

namespace ppgnn::serve {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// Decorator that makes every gather take `delay` of wall time, so a
// dispatched batch occupies the replica long enough for the test to build
// queue state behind it.
class SlowSource : public FeatureSource {
 public:
  SlowSource(std::unique_ptr<FeatureSource> inner,
             std::chrono::milliseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}
  std::size_t num_rows() const override { return inner_->num_rows(); }
  std::size_t row_dim() const override { return inner_->row_dim(); }
  void gather(const std::vector<std::int64_t>& rows, Tensor& out) override {
    std::this_thread::sleep_for(delay_);
    inner_->gather(rows, out);
  }
  const char* kind() const override { return "slow"; }

 private:
  std::unique_ptr<FeatureSource> inner_;
  std::chrono::milliseconds delay_;
};

struct Fixture {
  graph::Dataset ds;
  core::Preprocessed pre;

  explicit Fixture(double scale = 0.02, std::size_t hops = 2)
      : ds(graph::make_dataset(graph::DatasetName::kPokecSim, scale)) {
    core::PrecomputeConfig pc;
    pc.hops = hops;
    pre = core::precompute(ds.graph, ds.features, pc);
  }

  std::unique_ptr<core::PpModel> make_model(std::uint64_t seed = 7) const {
    Rng rng(seed);
    core::SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = pre.num_hops();
    cfg.hidden = 16;
    cfg.classes = ds.num_classes;
    cfg.dropout = 0.f;
    return std::make_unique<core::Sign>(cfg, rng);
  }

  std::unique_ptr<InferenceSession> make_slow_session(
      std::chrono::milliseconds delay) const {
    return std::make_unique<InferenceSession>(
        make_model(), std::make_unique<SlowSource>(
                          std::make_unique<MemorySource>(pre), delay));
  }

  // The deployment recipe every fleet here is stamped from.
  FleetBuilder builder(const std::string& ckpt,
                       Precision precision = Precision::kFp32) const {
    return FleetBuilder(
        ckpt, [this](std::size_t i) { return make_model(100 + i); },
        [this](std::size_t) { return std::make_unique<MemorySource>(pre); },
        precision);
  }
};

// --- Router policies ------------------------------------------------------

RouteTargets targets_of(std::size_t count, const QueueDepthFn* depth,
                        const HashRing* ring) {
  RouteTargets t;
  t.count = count;
  t.queue_depth = depth;
  t.ring = ring;
  return t;
}

TEST(Router, RoundRobinCycles) {
  auto r = make_router(RoutingPolicy::kRoundRobin);
  const QueueDepthFn poison = [](std::size_t) -> std::size_t {
    ADD_FAILURE() << "round_robin must not read load";
    return 0;
  };
  const RouteTargets t = targets_of(3, &poison, nullptr);
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(r->route(/*node=*/99, t), 0u);
    EXPECT_EQ(r->route(99, t), 1u);
    EXPECT_EQ(r->route(99, t), 2u);
  }
}

TEST(Router, RoundRobinStaysInRangeAcrossResizes) {
  auto r = make_router(RoutingPolicy::kRoundRobin);
  const QueueDepthFn none = [](std::size_t) { return std::size_t{0}; };
  // The shared counter survives snapshot changes; only the modulus moves.
  for (const std::size_t count : {3u, 5u, 2u, 4u}) {
    const RouteTargets t = targets_of(count, &none, nullptr);
    for (int i = 0; i < 10; ++i) EXPECT_LT(r->route(0, t), count);
  }
}

TEST(Router, LeastLoadedPicksShallowestLowIndexOnTies) {
  auto r = make_router(RoutingPolicy::kLeastLoaded);
  const std::vector<std::size_t> depths{5, 2, 7};
  const QueueDepthFn by_table = [&](std::size_t i) { return depths[i]; };
  EXPECT_EQ(r->route(0, targets_of(3, &by_table, nullptr)), 1u);
  const QueueDepthFn flat = [](std::size_t) { return std::size_t{3}; };
  EXPECT_EQ(r->route(0, targets_of(3, &flat, nullptr)), 0u);
}

TEST(Router, CacheAffinityIsDeterministicPerNodeId) {
  auto a = make_router(RoutingPolicy::kCacheAffinity);
  auto b = make_router(RoutingPolicy::kCacheAffinity);
  const HashRing ring({10, 11, 12, 13});  // generation ids, any values
  const RouteTargets t = targets_of(4, nullptr, &ring);
  std::vector<std::size_t> hits(4, 0);
  for (std::int64_t node = 0; node < 1000; ++node) {
    const std::size_t want = ring.lookup(node);
    // Stable across repeated calls and across independent router
    // instances — the property a cache warmer relies on.
    EXPECT_EQ(a->route(node, t), want);
    EXPECT_EQ(a->route(node, t), want);
    EXPECT_EQ(b->route(node, t), want);
    ++hits[want];
  }
  // The ring spreads the key space: no replica starves or hogs.
  for (const auto h : hits) {
    EXPECT_GT(h, 150u);
    EXPECT_LT(h, 350u);
  }
}

TEST(Router, ParsePolicyNamesRoundTrip) {
  for (const auto p : {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
                       RoutingPolicy::kCacheAffinity}) {
    RoutingPolicy got;
    ASSERT_TRUE(parse_policy(policy_name(p), &got));
    EXPECT_EQ(got, p);
  }
  RoutingPolicy got;
  EXPECT_FALSE(parse_policy("power_of_two", &got));
}

// --- Admission control ----------------------------------------------------

TEST(Shedding, QueuedLowSheddedPastDelayBudgetWithRetriableStatus) {
  const Fixture fx;
  auto session = fx.make_slow_session(std::chrono::milliseconds(60));
  MicroBatchConfig cfg;
  cfg.max_batch_size = 2;
  cfg.max_delay = std::chrono::microseconds(1000);
  cfg.shed_budget = std::chrono::microseconds(5000);  // 5ms
  ServerStats stats;
  MicroBatcher batcher(*session, cfg, &stats);

  // A dispatches alone (1ms window elapses before B/C arrive) and holds
  // the replica in service for 60ms.
  auto a = batcher.try_submit(0, Priority::kLow);
  ASSERT_TRUE(a.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto b = batcher.try_submit(1, Priority::kLow);
  auto c = batcher.try_submit(2, Priority::kLow);
  ASSERT_TRUE(b.accepted);
  ASSERT_TRUE(c.accepted);
  // Let B age far past the 5ms budget while A is still in service.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // D's arrival finds the queue head over budget: drop-head sheds B and C,
  // which empties the low queue, so D itself is admitted.
  auto d = batcher.try_submit(3, Priority::kLow);
  EXPECT_TRUE(d.accepted);

  EXPECT_NO_THROW(a.result.get());
  // Shed requests fail with the retriable rejection, not a data error.
  try {
    b.result.get();
    FAIL() << "B should have been shed";
  } catch (const RejectedError& e) {
    EXPECT_TRUE(e.retriable());
  }
  EXPECT_THROW(c.result.get(), RejectedError);
  EXPECT_NO_THROW(d.result.get());

  const auto counters = batcher.counters();
  EXPECT_EQ(counters.admission.admitted, 4u);
  EXPECT_EQ(counters.admission.shed, 2u);
  EXPECT_EQ(counters.admission.rejected, 0u);
  const auto adm = stats.admission();
  EXPECT_EQ(adm.admitted, 4u);
  EXPECT_EQ(adm.shed, 2u);
  EXPECT_DOUBLE_EQ(adm.reject_rate(), 0.0);
  EXPECT_NEAR(adm.shed_rate(), 0.5, 1e-9);
}

TEST(Shedding, ArrivalsRejectedWhenHeadOfLineExceedsBudget) {
  const Fixture fx;
  auto session = fx.make_slow_session(std::chrono::milliseconds(60));
  MicroBatchConfig cfg;
  cfg.max_batch_size = 1;
  cfg.max_delay = std::chrono::microseconds(100);
  cfg.shed_budget = std::chrono::microseconds(5000);
  MicroBatcher batcher(*session, cfg);

  auto a = batcher.try_submit(0, Priority::kHigh);  // dispatched alone
  ASSERT_TRUE(a.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto b = batcher.try_submit(1, Priority::kHigh);  // queued behind A
  ASSERT_TRUE(b.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // B has waited 20ms > budget and there is no kLow to shed: the batcher
  // refuses new work of either class rather than queueing behind a
  // deadline it cannot meet.
  auto c = batcher.try_submit(2, Priority::kHigh);
  EXPECT_FALSE(c.accepted);
  EXPECT_FALSE(c.result.valid());
  EXPECT_THROW(batcher.submit(3, Priority::kLow), RejectedError);
  // The throwing form reports retriable too.
  try {
    batcher.submit(4, Priority::kHigh);
    FAIL() << "submit should throw under overload";
  } catch (const RejectedError& e) {
    EXPECT_TRUE(e.retriable());
  }
  EXPECT_NO_THROW(a.result.get());
  EXPECT_NO_THROW(b.result.get());
  EXPECT_EQ(batcher.counters().admission.rejected, 3u);
}

TEST(Shedding, HighPrioritySurvivesWhereQueuedLowIsShed) {
  const Fixture fx;
  auto session = fx.make_slow_session(std::chrono::milliseconds(60));
  MicroBatchConfig cfg;
  cfg.max_batch_size = 1;
  cfg.max_delay = std::chrono::microseconds(100);
  cfg.shed_budget = std::chrono::microseconds(5000);
  MicroBatcher batcher(*session, cfg);

  auto a = batcher.try_submit(0, Priority::kLow);  // in service
  ASSERT_TRUE(a.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto low1 = batcher.try_submit(1, Priority::kLow);
  auto low2 = batcher.try_submit(2, Priority::kLow);
  auto high = batcher.try_submit(3, Priority::kHigh);
  ASSERT_TRUE(low1.accepted && low2.accepted && high.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Everything queued is over budget.  The shed pass drops only the kLow
  // entries; the queued kHigh request keeps its slot and is answered.
  auto trigger = batcher.try_submit(4, Priority::kLow);
  EXPECT_FALSE(trigger.accepted);  // head-of-line is now kHigh, still over
                                   // budget -> the kLow arrival is refused
  EXPECT_THROW(low1.result.get(), RejectedError);
  EXPECT_THROW(low2.result.get(), RejectedError);
  EXPECT_NO_THROW(high.result.get());
  EXPECT_NO_THROW(a.result.get());
  const auto counters = batcher.counters();
  EXPECT_EQ(counters.admission.shed, 2u);
  EXPECT_EQ(counters.admission.rejected, 1u);
}

TEST(Shedding, FullQueueEvictsLowToAdmitHighAndDispatchesHighFirst) {
  const Fixture fx;
  auto session = fx.make_slow_session(std::chrono::milliseconds(60));
  MicroBatchConfig cfg;
  cfg.max_batch_size = 1;
  cfg.max_delay = std::chrono::microseconds(100);
  cfg.queue_capacity = 2;
  cfg.shed_budget = std::chrono::seconds(10);  // shedding on, budget never
                                               // binds — isolates capacity
  MicroBatcher batcher(*session, cfg);

  auto a = batcher.try_submit(0, Priority::kLow);  // in service
  ASSERT_TRUE(a.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto low1 = batcher.try_submit(1, Priority::kLow);
  auto low2 = batcher.try_submit(2, Priority::kLow);
  ASSERT_TRUE(low1.accepted && low2.accepted);  // queue now full
  // A kLow arrival bounces off the full queue...
  auto low3 = batcher.try_submit(3, Priority::kLow);
  EXPECT_FALSE(low3.accepted);
  // ...but a kHigh arrival evicts the oldest queued kLow instead.
  auto high = batcher.try_submit(4, Priority::kHigh);
  EXPECT_TRUE(high.accepted);
  EXPECT_THROW(low1.result.get(), RejectedError);
  EXPECT_NO_THROW(high.result.get());
  EXPECT_NO_THROW(low2.result.get());
  EXPECT_NO_THROW(a.result.get());
  const auto counters = batcher.counters();
  EXPECT_EQ(counters.admission.shed, 1u);
  EXPECT_EQ(counters.admission.rejected, 1u);
  EXPECT_EQ(counters.admission.admitted, 4u);
}

// --- ReplicaSet -----------------------------------------------------------

TEST(ReplicaSet, NReplicaResultsBitIdenticalToSingleSession) {
  const Fixture fx;
  const std::string ckpt = tmp_path("replica_deploy.ckpt");
  {
    auto trained = fx.make_model(21);
    save_deployed_model(*trained, ckpt);
  }
  // Reference: one session, same checkpoint.
  auto ref_model = fx.make_model(99);  // different init, overwritten by load
  load_deployed_model(*ref_model, ckpt);
  InferenceSession reference(std::move(ref_model),
                             std::make_unique<MemorySource>(fx.pre));

  for (const auto policy : {RoutingPolicy::kRoundRobin,
                            RoutingPolicy::kLeastLoaded,
                            RoutingPolicy::kCacheAffinity}) {
    ReplicaSetConfig rc;
    rc.policy = policy;
    rc.batch.max_delay = std::chrono::microseconds(100);
    ReplicaSet set(fx.builder(ckpt).build_n(3), rc);
    for (std::int64_t node = 0; node < 40; ++node) {
      const auto got = set.infer_blocking(node);
      const auto want = reference.infer_one(node);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(got[j], want[j])
            << "policy " << policy_name(policy) << " node " << node
            << " logit " << j;
      }
    }
  }
}

// The ROADMAP's INT8 relaxation: at Precision::kInt8 exact bit-identity
// against the *fp32* reference is replaced by a quantization-error bound —
// but the fleet itself must still be deterministic: every int8 replica
// shares one immutable quantized weight block, so replica answers match
// each other bit for bit, and the whole fleet matches a single int8
// session bit for bit.  fp32 fleets keep the exact test above.
TEST(ReplicaSet, Int8FleetDeterministicAndWithinQuantizationBoundOfFp32) {
  const Fixture fx;
  const std::string ckpt = tmp_path("replica_int8.ckpt");
  {
    auto trained = fx.make_model(21);
    save_deployed_model(*trained, ckpt, Precision::kInt8);
  }
  // fp32 reference over the same deployed weights.
  auto ref_model = fx.make_model(99);
  load_deployed_model(*ref_model, ckpt);
  InferenceSession reference(std::move(ref_model),
                             std::make_unique<MemorySource>(fx.pre));
  // Single int8 session: the determinism baseline for the fleet.
  auto single_sessions = fx.builder(ckpt, Precision::kInt8).build_n(1);
  InferenceSession& single = *single_sessions[0];

  ReplicaSetConfig rc;
  rc.precision = Precision::kInt8;
  rc.batch.max_delay = std::chrono::microseconds(100);
  ReplicaSet set(fx.builder(ckpt, Precision::kInt8).build_n(3), rc);
  EXPECT_EQ(set.precision(), Precision::kInt8);

  std::size_t agree = 0;
  const std::int64_t n_nodes = 60;
  for (std::int64_t node = 0; node < n_nodes; ++node) {
    const auto got = set.infer_blocking(node);
    const auto int8_want = single.infer_one(node);
    const auto fp32_want = reference.infer_one(node);
    ASSERT_EQ(got.size(), fp32_want.size());
    std::size_t got_top = 0, want_top = 0;
    for (std::size_t j = 0; j < got.size(); ++j) {
      // Deterministic: whichever replica answered, bit-equal to the
      // single int8 session.
      EXPECT_EQ(got[j], int8_want[j]) << "node " << node << " logit " << j;
      // Relaxed vs fp32: bounded error, not equality.
      EXPECT_NEAR(got[j], fp32_want[j], 0.1) << "node " << node;
      if (got[j] > got[got_top]) got_top = j;
      if (fp32_want[j] > fp32_want[want_top]) want_top = j;
    }
    if (got_top == want_top) ++agree;
  }
  // Top-1 agreement bound (untrained random model — the serving gate runs
  // the trained-model version of this at >= 99%).
  EXPECT_GE(agree * 10, static_cast<std::size_t>(n_nodes) * 9);
}

TEST(ReplicaSet, RejectsPrecisionMismatchBetweenSessionsAndConfig) {
  const Fixture fx;
  const std::string ckpt = tmp_path("replica_mismatch.ckpt");
  {
    auto trained = fx.make_model(5);
    save_deployed_model(*trained, ckpt);
  }
  ReplicaSetConfig rc;
  rc.precision = Precision::kInt8;  // but the sessions below are fp32
  auto sessions = fx.builder(ckpt).build_n(2);
  EXPECT_THROW(ReplicaSet(std::move(sessions), rc), std::invalid_argument);
}

TEST(ReplicaSet, RoundRobinSpreadsAndAggregatesAdmission) {
  const Fixture fx;
  const std::string ckpt = tmp_path("replica_rr.ckpt");
  {
    auto trained = fx.make_model(5);
    save_deployed_model(*trained, ckpt);
  }
  ReplicaSetConfig rc;
  rc.batch.max_delay = std::chrono::microseconds(100);
  ReplicaSet set(fx.builder(ckpt).build_n(2), rc);
  for (std::int64_t node = 0; node < 10; ++node) set.infer_blocking(node);
  EXPECT_EQ(set.replica_snapshot(0).routed, 5u);
  EXPECT_EQ(set.replica_snapshot(1).routed, 5u);
  const auto adm = set.aggregate_admission();
  EXPECT_EQ(adm.admitted, 10u);
  EXPECT_EQ(adm.rejected + adm.shed, 0u);
  EXPECT_EQ(set.aggregate_latency().count, 10u);
  EXPECT_GT(set.aggregate_batches(), 0u);
}

TEST(ReplicaSet, CacheAffinityPinsANodeToOneReplica) {
  const Fixture fx;
  const std::string ckpt = tmp_path("replica_aff.ckpt");
  {
    auto trained = fx.make_model(5);
    save_deployed_model(*trained, ckpt);
  }
  ReplicaSetConfig rc;
  rc.policy = RoutingPolicy::kCacheAffinity;
  rc.batch.max_delay = std::chrono::microseconds(100);
  ReplicaSet set(fx.builder(ckpt).build_n(3), rc);
  constexpr std::int64_t kNode = 42;
  for (int i = 0; i < 5; ++i) set.infer_blocking(kNode);
  const std::size_t home = set.home_replica(kNode);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(set.replica_snapshot(i).routed, i == home ? 5u : 0u);
  }
}

// --- ServerStats extensions -----------------------------------------------

TEST(ServerStats, MergePoolsSamplesAndAdmissionCounters) {
  ServerStats a, b;
  for (int i = 1; i <= 50; ++i) a.record(static_cast<double>(i));
  for (int i = 51; i <= 100; ++i) b.record(static_cast<double>(i));
  a.record_admitted();
  a.record_rejected();
  b.record_admitted();
  b.record_shed();

  ServerStats pooled;
  pooled.merge(a);
  pooled.merge(b);
  const auto s = pooled.summary();
  // Percentiles come from the union of raw samples, not from averaging
  // per-shard percentiles.
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  const auto adm = pooled.admission();
  EXPECT_EQ(adm.admitted, 2u);
  EXPECT_EQ(adm.rejected, 1u);
  EXPECT_EQ(adm.shed, 1u);
  EXPECT_DOUBLE_EQ(adm.reject_rate(), 1.0 / 3.0);
  const auto json = adm.to_json();
  EXPECT_NE(json.find("\"shed\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace ppgnn::serve
