#include "tensor/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace ppgnn {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double mn = 1, mx = 0, sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(4);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng base(7);
  Rng s1 = base.split(1);
  Rng s1_again = Rng(7).split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  Rng s2 = base.split(2);
  EXPECT_NE(Rng(7).split(1).next_u64(), s2.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleWithoutReplacementUniqueAndInRange) {
  Rng rng(9);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::unordered_set<std::uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (const auto x : s) EXPECT_LT(x, 50u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(10);
  const auto s = rng.sample_without_replacement(10, 10);
  std::unordered_set<std::uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleCoversUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int rep = 0; rep < 20000; ++rep) {
    for (const auto x : rng.sample_without_replacement(10, 3)) ++counts[x];
  }
  for (const int c : counts) EXPECT_NEAR(c, 6000, 400);
}

}  // namespace
}  // namespace ppgnn
