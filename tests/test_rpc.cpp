// Cross-process serving (src/rpc/): the RpcClient/ReplicaServer loopback,
// reconnect and bounded-backoff behavior, replica process lifecycle
// (spawn/handshake/drain/reap), and the tentpole proof — a kill -9 on a
// replica in the middle of an 8-thread envelope storm loses ZERO
// completions: every submitted envelope gets exactly one response, the
// dead process is reaped with the SIGKILL code, and the fleet keeps
// serving on the survivor.
//
// Determinism strategy: no timing assertions anywhere — only counts
// (submitted == delivered), exact-once id accounting, bit-identity of
// logits against a reference in-process session, and process exit codes.
// Sanitizer slowdown stretches wall time but cannot flip any of those.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "rpc/client.h"
#include "rpc/process.h"
#include "rpc/remote_replica.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "serve/replica_set.h"
#include "serve/serve_api.h"
#include "serve/testbed.h"

namespace ppgnn::rpc {
namespace {

using serve::ServeStatus;

// One shared testbed for the whole binary: generating + training the
// deployment artifacts once keeps the suite fast; every test reads the
// same on-disk checkpoint + store, which is exactly the cross-process
// deployment model (N server processes over one artifact set).
serve::ServingTestbed& testbed() {
  static serve::ServingTestbed* tb = [] {
    serve::TestbedConfig cfg;
    cfg.nodes = 2000;
    cfg.feat_dim = 16;
    cfg.classes = 8;
    cfg.hops = 2;
    cfg.hidden = 16;
    cfg.train_epochs = 1;
    cfg.create_store = true;
    return new serve::ServingTestbed(cfg);
  }();
  return *tb;
}

// The replica_server_cli flags that point a child process at the testbed's
// artifacts.
std::vector<std::string> server_args() {
  const auto& c = testbed().config();
  return {"--checkpoint=" + testbed().checkpoint(),
          "--store=" + testbed().store_dir(),
          "--nodes=" + std::to_string(c.nodes),
          "--model=" + c.model,
          "--hops=" + std::to_string(c.hops),
          "--feat-dim=" + std::to_string(c.feat_dim),
          "--hidden=" + std::to_string(c.hidden),
          "--classes=" + std::to_string(c.classes),
          "--max-delay-us=100"};
}

ReplicaSpawnConfig spawn_config(const std::string& tag) {
  ReplicaSpawnConfig cfg;
  cfg.socket_dir = testbed().dir();
  cfg.log_path = testbed().dir() + "/server-" + tag + ".log";
  cfg.server_args = server_args();
  return cfg;
}

// An in-process ReplicaServer on a Unix socket — loopback tests exercise
// the full client/server protocol without fork/exec.
class LoopbackServer {
 public:
  explicit LoopbackServer(const std::string& address) : address_(address) {
    auto session = testbed().fleet_builder(
        [](std::size_t) { return testbed().memory_source(); }).build(0);
    ReplicaServerConfig cfg;
    cfg.address = address;
    cfg.batch.max_delay = std::chrono::microseconds(100);
    server_ = std::make_unique<ReplicaServer>(std::move(session), cfg);
    thread_ = std::thread([this] { rc_ = server_->run(&stop_); });
  }
  ~LoopbackServer() { stop(); }

  int stop() {
    if (thread_.joinable()) {
      stop_ = 1;
      thread_.join();
    }
    return rc_;
  }
  const std::string& address() const { return address_; }
  const ReplicaServer& server() const { return *server_; }

 private:
  std::string address_;
  volatile std::sig_atomic_t stop_ = 0;
  int rc_ = -1;
  std::unique_ptr<ReplicaServer> server_;
  std::thread thread_;
};

// Blocking call helper over the async client API.
RpcClient::Result call_sync(RpcClient& client, WireRequest req,
                            std::chrono::milliseconds timeout =
                                std::chrono::milliseconds(10000)) {
  std::promise<RpcClient::Result> done;
  client.call(req, timeout,
              [&done](RpcClient::Result& r) { done.set_value(std::move(r)); });
  return done.get_future().get();
}

TEST(RpcLoopback, EchoesEnvelopesThroughRealBatcher) {
  LoopbackServer server(std::string("unix:") + testbed().dir() +
                        "/loopback.sock");

  RpcClientConfig ccfg;
  ccfg.address = server.address();
  RpcClient client(ccfg);
  WireHelloAck ack;
  std::string err;
  ASSERT_TRUE(client.handshake(&ack, &err)) << err;
  EXPECT_EQ(ack.num_nodes, testbed().config().nodes);
  EXPECT_EQ(ack.classes, testbed().config().classes);
  EXPECT_TRUE(client.alive());

  // Logits must be bit-identical to an in-process session over the same
  // checkpoint: the wire carries exact IEEE bits, not approximations.
  auto ref = testbed().fleet_builder(
      [](std::size_t) { return testbed().memory_source(); }).build(0);

  WireRequest req;
  req.nodes = {1, 42, 977};
  auto res = call_sync(client, req);
  ASSERT_TRUE(res.transport_ok) << res.transport_error;
  EXPECT_EQ(res.response.status, ServeStatus::kOk);
  ASSERT_EQ(res.response.parts.size(), 3u);
  for (std::size_t i = 0; i < req.nodes.size(); ++i) {
    EXPECT_EQ(res.response.parts[i].status, ServeStatus::kOk);
    EXPECT_EQ(res.response.parts[i].logits, ref->infer_one(req.nodes[i]))
        << "node " << req.nodes[i];
  }

  // A node outside the store answers kError with the backend's text, and
  // does not poison the connection for the next call.
  WireRequest bad;
  bad.nodes = {static_cast<std::int64_t>(testbed().config().nodes) + 5};
  res = call_sync(client, bad);
  ASSERT_TRUE(res.transport_ok) << res.transport_error;
  EXPECT_EQ(res.response.status, ServeStatus::kError);
  EXPECT_FALSE(res.response.error.empty());

  WireRequest again;
  again.nodes = {7};
  res = call_sync(client, again);
  ASSERT_TRUE(res.transport_ok) << res.transport_error;
  EXPECT_EQ(res.response.status, ServeStatus::kOk);

  client.shutdown();
  EXPECT_EQ(server.stop(), 0);  // clean drain
}

TEST(RpcLoopback, VersionNegotiationCarriesTenantOnV2AndDropsItOnV1) {
  // The negotiation matrix of docs/wire-protocol.md, end to end over a
  // real socket: a v2 client's tenant id survives to the server's
  // per-tenant stats; a client pinned to a v1 offer negotiates down,
  // frames v1 bodies, and its requests land on the default tenant — the
  // old-peer compatibility the version bytes exist for.
  LoopbackServer server(std::string("unix:") + testbed().dir() +
                        "/negotiate.sock");

  RpcClientConfig v2cfg;
  v2cfg.address = server.address();
  RpcClient v2(v2cfg);
  WireHelloAck ack;
  std::string err;
  ASSERT_TRUE(v2.handshake(&ack, &err)) << err;
  EXPECT_EQ(ack.protocol, static_cast<std::uint32_t>(kWireVersion));
  EXPECT_EQ(v2.protocol(), kWireVersion);

  WireRequest tagged;
  tagged.nodes = {11};
  tagged.tenant = 9;
  auto res = call_sync(v2, tagged);
  ASSERT_TRUE(res.transport_ok) << res.transport_error;
  EXPECT_EQ(res.response.status, ServeStatus::kOk);

  RpcClientConfig v1cfg;
  v1cfg.address = server.address();
  v1cfg.protocol = 1;  // a v1 peer: offers 1, expects ack 1
  RpcClient v1(v1cfg);
  ASSERT_TRUE(v1.handshake(&ack, &err)) << err;
  EXPECT_EQ(ack.protocol, 1u);
  EXPECT_EQ(v1.protocol(), 1);

  WireRequest legacy;
  legacy.nodes = {12};
  legacy.tenant = 9;  // set but UNSENDABLE at v1 — must arrive as 0
  res = call_sync(v1, legacy);
  ASSERT_TRUE(res.transport_ok) << res.transport_error;
  EXPECT_EQ(res.response.status, ServeStatus::kOk);

  v2.shutdown();
  v1.shutdown();
  EXPECT_EQ(server.stop(), 0);

  // Server-side ledger: exactly one part billed to tenant 9 (the v2
  // call) and one to the default tenant (the v1 call's dropped id).
  std::size_t t0 = 0, t9 = 0, other = 0;
  for (const auto& row : server.server().stats().tenant_stats()) {
    if (row.tenant == 0) t0 = row.admitted;
    else if (row.tenant == 9) t9 = row.admitted;
    else other += row.admitted;
  }
  EXPECT_EQ(t9, 1u);
  EXPECT_EQ(t0, 1u);
  EXPECT_EQ(other, 0u);
}

TEST(RpcClientTest, FailsFastWhenServerNeverExisted) {
  RpcClientConfig ccfg;
  ccfg.address = std::string("unix:") + testbed().dir() + "/no-such.sock";
  ccfg.handshake_timeout = std::chrono::milliseconds(300);
  ccfg.connect_timeout = std::chrono::milliseconds(100);
  RpcClient client(ccfg);
  WireHelloAck ack;
  std::string err;
  EXPECT_FALSE(client.handshake(&ack, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(client.alive());

  // Calls against a dead client complete (with a transport failure) —
  // they never hang and never leak the completion.
  WireRequest req;
  req.nodes = {1};
  const auto res = call_sync(client, req, std::chrono::milliseconds(100));
  EXPECT_FALSE(res.transport_ok);
  EXPECT_FALSE(res.transport_error.empty());
}

TEST(RpcClientTest, BoundedBackoffExhaustsToDead) {
  const std::string addr =
      std::string("unix:") + testbed().dir() + "/backoff.sock";
  auto server = std::make_unique<LoopbackServer>(addr);

  RpcClientConfig ccfg;
  ccfg.address = addr;
  ccfg.backoff_initial = std::chrono::milliseconds(10);
  ccfg.backoff_max = std::chrono::milliseconds(50);
  ccfg.connect_timeout = std::chrono::milliseconds(100);
  ccfg.max_reconnect_attempts = 3;
  RpcClient client(ccfg);
  WireHelloAck ack;
  std::string err;
  ASSERT_TRUE(client.handshake(&ack, &err)) << err;

  // Kill the server for good; the socket path disappears with it.
  EXPECT_EQ(server->stop(), 0);
  server.reset();

  // Every reconnect attempt now fails; after max_reconnect_attempts the
  // client must latch dead (alive() false) rather than retry forever.
  // Calls in the interim fail with a transport error — none may hang.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (client.alive() && std::chrono::steady_clock::now() < deadline) {
    WireRequest req;
    req.nodes = {1};
    const auto res = call_sync(client, req, std::chrono::milliseconds(200));
    EXPECT_FALSE(res.transport_ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(client.alive());
}

TEST(RpcClientTest, ReconnectsAfterServerRestart) {
  const std::string addr =
      std::string("unix:") + testbed().dir() + "/restart.sock";
  auto server = std::make_unique<LoopbackServer>(addr);

  RpcClientConfig ccfg;
  ccfg.address = addr;
  ccfg.backoff_initial = std::chrono::milliseconds(10);
  ccfg.backoff_max = std::chrono::milliseconds(50);
  ccfg.connect_timeout = std::chrono::milliseconds(200);
  ccfg.max_reconnect_attempts = 1000;  // plenty to bridge the restart
  RpcClient client(ccfg);
  WireHelloAck ack;
  std::string err;
  ASSERT_TRUE(client.handshake(&ack, &err)) << err;

  EXPECT_EQ(server->stop(), 0);
  server = std::make_unique<LoopbackServer>(addr);  // rebinds the same path

  // The client notices the drop on its next I/O and reconnects with
  // backoff; within the attempt budget a call must succeed again.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool served = false;
  while (!served && std::chrono::steady_clock::now() < deadline) {
    WireRequest req;
    req.nodes = {3};
    const auto res = call_sync(client, req, std::chrono::milliseconds(500));
    served = res.transport_ok && res.response.status == ServeStatus::kOk;
    if (!served) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(served) << "client never reconnected to the restarted server";
}

TEST(RpcProcessTest, ExecFailureSurfacesChildExitCode) {
  auto cfg = spawn_config("execfail");
  cfg.server_binary = testbed().dir() + "/no-such-binary";
  cfg.client.handshake_timeout = std::chrono::milliseconds(1000);
  cfg.client.connect_timeout = std::chrono::milliseconds(100);
  std::string err;
  auto replica = spawn_replica_process(cfg, 90, &err);
  EXPECT_EQ(replica, nullptr);
  // The child _exit(127)s when exec fails; the spawn error reports it.
  EXPECT_NE(err.find("127"), std::string::npos) << err;
}

TEST(RpcProcessTest, SpawnHandshakeDrainReap) {
  std::string err;
  auto replica = spawn_replica_process(spawn_config("lifecycle"), 91, &err);
  ASSERT_NE(replica, nullptr) << err;
  EXPECT_GT(replica->pid(), 0);
  EXPECT_TRUE(replica->alive());
  // The HelloAck doubles as the health check: the server measured a real
  // inference before acking, so these fields describe a working replica.
  EXPECT_EQ(replica->info().num_nodes, testbed().config().nodes);
  EXPECT_EQ(replica->info().classes, testbed().config().classes);
  EXPECT_EQ(replica->info().precision, 0);  // fp32

  // SIGTERM drain on an idle replica: exits 0, reaped exactly once;
  // retire() is idempotent and keeps returning the same code.
  EXPECT_EQ(replica->retire(), 0);
  EXPECT_EQ(replica->retire(), 0);
}

// --- Cross-process fleet ---------------------------------------------------

struct RemoteFleet {
  std::mutex mu;
  std::vector<std::shared_ptr<RemoteReplica>> spawned;  // in spawn order

  serve::RemoteSpawnFn spawner(const std::string& tag) {
    return [this, tag](std::size_t ordinal) {
      std::string err;
      auto r = spawn_replica_process(
          spawn_config(tag + "-" + std::to_string(ordinal)), ordinal, &err);
      if (!r) {
        std::fprintf(stderr, "spawn replica %zu failed: %s\n", ordinal,
                     err.c_str());
        return std::shared_ptr<RemoteReplica>();
      }
      std::lock_guard<std::mutex> lk(mu);
      spawned.push_back(r);
      return r;
    };
  }
};

TEST(RpcFleetTest, CrossProcessFleetServesBitIdenticalLogits) {
  RemoteFleet rf;
  serve::FleetConfig fcfg;
  serve::FleetManager fleet(rf.spawner("serve"), 2, fcfg);
  EXPECT_EQ(fleet.num_replicas(), 2u);

  auto ref = testbed().fleet_builder(
      [](std::size_t) { return testbed().memory_source(); }).build(0);

  const auto stream = testbed().stream(24);
  for (auto groups = serve::ServingTestbed::group_stream(stream, 3);
       const auto& nodes : groups) {
    serve::ServeRequest req;
    req.nodes = nodes;
    auto resp = fleet.infer_request(std::move(req));
    ASSERT_EQ(resp.status, ServeStatus::kOk);
    ASSERT_EQ(resp.logits.size(), nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(resp.logits[i], ref->infer_one(nodes[i]))
          << "node " << nodes[i];
    }
  }
  fleet.stop();
  // stop() drains both children via SIGTERM; both must exit clean.
  for (const auto& r : rf.spawned) EXPECT_EQ(r->retire(), 0);
}

// The tentpole proof: kill -9 one of two replica processes in the middle
// of an 8-thread envelope storm.  Every envelope must get exactly one
// response (re-routed work may be recomputed, never lost or doubled), and
// the corpse must be reaped with the SIGKILL exit code.
TEST(RpcFleetTest, KillNineMidStormLosesZeroEnvelopes) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 32;

  RemoteFleet rf;
  serve::FleetConfig fcfg;
  serve::FleetManager fleet(rf.spawner("crash"), 2, fcfg);
  std::shared_ptr<RemoteReplica> victim;
  {
    std::lock_guard<std::mutex> lk(rf.mu);
    ASSERT_EQ(rf.spawned.size(), 2u);
    victim = rf.spawned[0];
  }

  std::atomic<std::size_t> submitted{0};
  std::atomic<bool> lost{false};
  std::mutex ids_mu;
  std::set<std::uint64_t> seen_ids;  // exactly-once accounting
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::CompletionQueue cq;
      const auto stream =
          testbed().stream(kPerThread * 2, /*seed=*/100 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        serve::ServeRequest req;
        req.id = t * 1000 + i;
        req.nodes = {stream[2 * i], stream[2 * i + 1]};
        fleet.submit(std::move(req), cq);
        submitted.fetch_add(1);
      }
      for (std::size_t i = 0; i < kPerThread; ++i) {
        serve::ServeResponse resp;
        if (!cq.wait_for(&resp, std::chrono::seconds(60))) {
          lost = true;  // an envelope never answered — the bug this PR bans
          return;
        }
        std::lock_guard<std::mutex> lk(ids_mu);
        EXPECT_TRUE(seen_ids.insert(resp.id).second)
            << "duplicate response for id " << resp.id;
      }
    });
  }

  // Let the storm build, then murder replica 0.  No SIGTERM, no drain —
  // the fleet only learns from the dead socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  victim->kill_now();

  for (auto& th : threads) th.join();
  EXPECT_FALSE(lost) << "some envelope never received a response";
  EXPECT_EQ(seen_ids.size(), kThreads * kPerThread);
  EXPECT_EQ(submitted.load(), kThreads * kPerThread);

  fleet.stop();
  // The murdered child reaps with 128+SIGKILL; the survivor drains clean.
  EXPECT_EQ(victim->retire(), 137);
  std::shared_ptr<RemoteReplica> survivor;
  {
    std::lock_guard<std::mutex> lk(rf.mu);
    survivor = rf.spawned[1];
  }
  EXPECT_EQ(survivor->retire(), 0);
}

// Rolling restart under load: scale_down() (SIGTERM drain) mid-storm must
// also lose nothing, and the drained victim exits 0.
TEST(RpcFleetTest, GracefulScaleDownMidStormLosesNothing) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 24;

  RemoteFleet rf;
  serve::FleetConfig fcfg;
  serve::FleetManager fleet(rf.spawner("drain"), 2, fcfg);

  std::atomic<bool> lost{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::CompletionQueue cq;
      const auto stream = testbed().stream(kPerThread, /*seed=*/200 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        serve::ServeRequest req;
        req.id = t * 1000 + i;
        req.nodes = {stream[i]};
        fleet.submit(std::move(req), cq);
      }
      for (std::size_t i = 0; i < kPerThread; ++i) {
        serve::ServeResponse resp;
        if (!cq.wait_for(&resp, std::chrono::seconds(60))) {
          lost = true;
          return;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  fleet.scale_down();
  EXPECT_EQ(fleet.num_replicas(), 1u);

  for (auto& th : threads) th.join();
  EXPECT_FALSE(lost) << "graceful drain dropped an envelope";

  fleet.stop();
  for (const auto& r : rf.spawned) EXPECT_EQ(r->retire(), 0);
}

}  // namespace
}  // namespace ppgnn::rpc
