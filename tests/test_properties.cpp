// Property-based sweeps (parameterized gtest): invariants that must hold
// across randomized shapes, graphs, samplers and shuffler configurations.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/precompute.h"
#include "graph/dataset.h"
#include "graph/generator.h"
#include "graph/normalize.h"
#include "graph/spmm.h"
#include "loader/shuffler.h"
#include "sampling/labor.h"
#include "sampling/ladies.h"
#include "sampling/neighbor.h"
#include "sampling/saint.h"
#include "tensor/ops.h"

namespace ppgnn {
namespace {

// ---------------------------------------------------------------------------
// GEMM shape sweep vs naive reference.

struct GemmShape {
  std::size_t m, k, n;
};

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  Tensor a = Tensor::normal({m, k}, rng);
  Tensor b = Tensor::normal({k, n}, rng);
  const Tensor c = matmul(a, b);
  Tensor ref({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0;
      for (std::size_t l = 0; l < k; ++l) acc += a.at(i, l) * b.at(l, j);
      ref.at(i, j) = acc;
    }
  }
  EXPECT_TRUE(allclose(c, ref, 1e-3f, 1e-4f))
      << "m=" << m << " k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{1, 7, 3},
                      GemmShape{5, 1, 5}, GemmShape{17, 33, 9},
                      GemmShape{64, 64, 64}, GemmShape{100, 3, 100},
                      GemmShape{3, 100, 3}, GemmShape{31, 17, 63}));

// ---------------------------------------------------------------------------
// SpMM on random graphs vs dense multiply.

class SpmmRandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpmmRandomGraphs, MatchesDense) {
  const std::uint64_t seed = GetParam();
  graph::SbmConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_classes = 3;
  cfg.avg_degree = 6;
  cfg.seed = seed;
  const auto g = graph::generate_sbm(cfg);
  const auto b = graph::sym_normalized(g.graph);
  Rng rng(seed + 1);
  const Tensor x = Tensor::normal({60, 5}, rng);
  const Tensor y = graph::spmm(b, x);

  Tensor dense({60, 60});
  for (std::size_t v = 0; v < 60; ++v) {
    const auto nbrs = b.neighbors(static_cast<graph::NodeId>(v));
    const auto vals = b.edge_values(static_cast<graph::NodeId>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      dense.at(v, nbrs[i]) = vals[i];
    }
  }
  EXPECT_TRUE(allclose(y, matmul(dense, x), 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmmRandomGraphs,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Symmetric normalization spectral property: powers remain bounded (largest
// eigenvalue <= 1), so propagation never blows up.

class SymNormBounded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymNormBounded, PropagationIsNonExpansive) {
  graph::SbmConfig cfg;
  cfg.num_nodes = 200;
  cfg.avg_degree = 8;
  cfg.seed = GetParam();
  const auto g = graph::generate_sbm(cfg);
  Rng rng(GetParam());
  core::PrecomputeConfig pc;
  pc.hops = 8;
  const Tensor x = Tensor::normal({200, 4}, rng);
  const auto pre = core::precompute(g.graph, x, pc);
  auto sq_norm = [](const Tensor& t) {
    double s = 0;
    for (std::size_t i = 0; i < t.size(); ++i) s += t[i] * t[i];
    return s;
  };
  const double n0 = sq_norm(pre.hop_features[0]);
  for (std::size_t r = 1; r <= 8; ++r) {
    EXPECT_LE(sq_norm(pre.hop_features[r]), n0 * 1.01) << "hop " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymNormBounded,
                         ::testing::Values(3, 17, 99, 1234));

// ---------------------------------------------------------------------------
// Shuffler sweep: every (n, chunk) combination yields a permutation and
// chunk runs stay intact.

struct ShuffleCase {
  std::size_t n, chunk;
};

class ShufflerSweep : public ::testing::TestWithParam<ShuffleCase> {};

TEST_P(ShufflerSweep, PermutationWithIntactChunks) {
  const auto [n, chunk] = GetParam();
  Rng rng(n * 31 + chunk);
  const auto shuffler = loader::make_shuffler(chunk);
  const auto order = shuffler->epoch_order(n, rng);
  ASSERT_EQ(order.size(), n);
  std::vector<bool> seen(n, false);
  for (const auto i : order) {
    ASSERT_GE(i, 0);
    ASSERT_LT(static_cast<std::size_t>(i), n);
    EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = true;
  }
  if (chunk > 1) {
    // Within the order, consecutive positions inside one chunk increment.
    for (std::size_t pos = 0; pos + 1 < n; ++pos) {
      const auto cur = order[pos];
      const auto nxt = order[pos + 1];
      const bool same_chunk = cur / static_cast<std::int64_t>(chunk) ==
                              nxt / static_cast<std::int64_t>(chunk);
      if (same_chunk && nxt == cur + 1) continue;
      // Otherwise we must be at a chunk boundary of `cur`.
      const bool cur_ends_chunk =
          (cur + 1) % static_cast<std::int64_t>(chunk) == 0 ||
          cur == static_cast<std::int64_t>(n) - 1;
      EXPECT_TRUE(cur_ends_chunk) << "broken run at pos " << pos;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShufflerSweep,
    ::testing::Values(ShuffleCase{1, 1}, ShuffleCase{10, 1},
                      ShuffleCase{100, 10}, ShuffleCase{101, 10},
                      ShuffleCase{99, 100}, ShuffleCase{1000, 128},
                      ShuffleCase{1000, 1}, ShuffleCase{37, 5}));

// ---------------------------------------------------------------------------
// Sampler-generic invariants across all four samplers.

class AllSamplers : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<sampling::Sampler> make(std::size_t layers) const {
    const auto& kind = GetParam();
    if (kind == "Neighbor") {
      return std::make_unique<sampling::NeighborSampler>(
          std::vector<int>(layers, 5));
    }
    if (kind == "LABOR") {
      return std::make_unique<sampling::LaborSampler>(
          std::vector<int>(layers, 5));
    }
    if (kind == "LADIES") {
      return std::make_unique<sampling::LadiesSampler>(layers, 64);
    }
    return std::make_unique<sampling::SaintNodeSampler>(layers, 64);
  }
};

TEST_P(AllSamplers, SeedsPreservedAndBlocksChain) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  std::vector<graph::NodeId> seeds;
  for (int i = 0; i < 32; ++i) {
    seeds.push_back(static_cast<graph::NodeId>(ds.split.train[i]));
  }
  for (const std::size_t layers : {1, 2, 3}) {
    Rng rng(layers);
    const auto batch = make(layers)->sample(ds.graph, seeds, rng);
    ASSERT_EQ(batch.blocks.size(), layers);
    EXPECT_EQ(batch.seeds(), seeds);
    for (std::size_t l = 0; l + 1 < layers; ++l) {
      EXPECT_EQ(batch.blocks[l].dst_nodes, batch.blocks[l + 1].src_nodes);
    }
    for (const auto& blk : batch.blocks) {
      for (std::size_t i = 0; i < blk.dst_size(); ++i) {
        EXPECT_EQ(blk.src_nodes[i], blk.dst_nodes[i]);  // prefix invariant
      }
      std::unordered_set<graph::NodeId> uniq(blk.src_nodes.begin(),
                                             blk.src_nodes.end());
      EXPECT_EQ(uniq.size(), blk.src_size());
    }
  }
}

TEST_P(AllSamplers, DeterministicGivenSeed) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.05);
  std::vector<graph::NodeId> seeds{0, 5, 9, 13};
  Rng r1(77), r2(77);
  const auto a = make(2)->sample(ds.graph, seeds, r1);
  const auto b = make(2)->sample(ds.graph, seeds, r2);
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_EQ(a.blocks[l].src_nodes, b.blocks[l].src_nodes);
    EXPECT_EQ(a.blocks[l].indices, b.blocks[l].indices);
  }
}

TEST_P(AllSamplers, EdgesExistInGraph) {
  const auto ds = graph::make_dataset(graph::DatasetName::kProductsSim, 0.05);
  std::vector<graph::NodeId> seeds;
  for (int i = 0; i < 16; ++i) {
    seeds.push_back(static_cast<graph::NodeId>(ds.split.train[i]));
  }
  Rng rng(5);
  const auto batch = make(2)->sample(ds.graph, seeds, rng);
  for (const auto& blk : batch.blocks) {
    for (std::size_t i = 0; i < blk.dst_size(); ++i) {
      for (auto e = blk.offsets[i]; e < blk.offsets[i + 1]; ++e) {
        EXPECT_TRUE(ds.graph.has_edge(
            blk.dst_nodes[i],
            blk.src_nodes[static_cast<std::size_t>(blk.indices[e])]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllSamplers,
                         ::testing::Values("Neighbor", "LABOR", "LADIES",
                                           "SAINT"));

// ---------------------------------------------------------------------------
// Gather/scatter adjointness: <gather(X, idx), Y> == <X, scatter_add(Y, idx)>
// — the property that makes the SAGE aggregation backward correct.

class GatherScatterAdjoint : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatherScatterAdjoint, InnerProductsMatch) {
  Rng rng(GetParam());
  const std::size_t n = 20, f = 6, k = 35;
  Tensor x = Tensor::normal({n, f}, rng);
  Tensor y = Tensor::normal({k, f}, rng);
  std::vector<std::int64_t> idx(k);
  for (auto& i : idx) i = static_cast<std::int64_t>(rng.uniform_int(n));

  const Tensor gx = gather_rows(x, idx);
  double lhs = 0;
  for (std::size_t i = 0; i < gx.size(); ++i) lhs += gx[i] * y[i];

  Tensor sy({n, f});
  scatter_add_rows(y, idx, sy);
  double rhs = 0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * sy[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherScatterAdjoint,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Softmax/CE consistency across widths: loss equals mean NLL computed from
// log_softmax.

class CeWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CeWidths, LossMatchesLogSoftmax) {
  const std::size_t c = GetParam();
  Rng rng(c);
  const std::size_t rows = 7;
  Tensor logits = Tensor::normal({rows, c}, rng);
  std::vector<std::int32_t> labels(rows);
  for (auto& y : labels) y = static_cast<std::int32_t>(rng.uniform_int(c));
  Tensor grad(logits.shape());
  const float loss = cross_entropy(logits, labels, grad);
  Tensor lsm(logits.shape());
  log_softmax_rows(logits, lsm);
  double expect = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    expect -= lsm.at(i, static_cast<std::size_t>(labels[i]));
  }
  EXPECT_NEAR(loss, expect / rows, 1e-4);
  // Gradient rows sum to ~0 (softmax minus one-hot).
  for (std::size_t i = 0; i < rows; ++i) {
    float s = 0;
    for (std::size_t j = 0; j < c; ++j) s += grad.at(i, j);
    EXPECT_NEAR(s, 0.f, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CeWidths,
                         ::testing::Values(2, 3, 10, 47, 172));

}  // namespace
}  // namespace ppgnn
