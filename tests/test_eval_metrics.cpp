#include <gtest/gtest.h>

#include "core/eval_metrics.h"
#include "tensor/ops.h"

namespace ppgnn::core {
namespace {

// logits encoding a fixed prediction sequence over 3 classes.
Tensor logits_for(const std::vector<std::int32_t>& preds, std::size_t classes) {
  Tensor t({preds.size(), classes});
  t.fill(-1.f);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    t.at(i, static_cast<std::size_t>(preds[i])) = 1.f;
  }
  return t;
}

TEST(ArgmaxRows, PicksFirstOfTies) {
  Tensor t = Tensor::from_vector({2, 3}, {1.f, 1.f, 0.f,
                                          0.f, 2.f, 2.f});
  const auto pred = argmax_rows(t);
  EXPECT_EQ(pred[0], 0);  // tie: keep lowest index
  EXPECT_EQ(pred[1], 1);
}

TEST(ConfusionMatrix, CountsAndAccuracy) {
  // truth:  0 0 1 1 2 2 ; pred: 0 1 1 1 2 0
  const auto logits = logits_for({0, 1, 1, 1, 2, 0}, 3);
  const std::vector<std::int32_t> truth{0, 0, 1, 1, 2, 2};
  const auto cm = confusion_matrix(logits, truth);
  EXPECT_EQ(cm.total(), 6u);
  EXPECT_EQ(cm.correct(), 4u);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_EQ(cm.at(0, 0), 1u);
  EXPECT_EQ(cm.at(0, 1), 1u);
  EXPECT_EQ(cm.at(1, 1), 2u);
  EXPECT_EQ(cm.at(2, 2), 1u);
  EXPECT_EQ(cm.at(2, 0), 1u);
}

TEST(ConfusionMatrix, MatchesOpsAccuracy) {
  const auto logits = logits_for({0, 1, 2, 2, 1, 0, 0}, 3);
  const std::vector<std::int32_t> truth{0, 1, 2, 1, 1, 2, 0};
  const auto cm = confusion_matrix(logits, truth);
  EXPECT_NEAR(cm.accuracy(), accuracy(logits, truth), 1e-12);
  EXPECT_NEAR(cm.micro_f1(), cm.accuracy(), 1e-12);
}

TEST(ConfusionMatrix, PerClassMetricsHandComputed) {
  // class 0: TP=1 FN=1 FP=1 -> P=R=0.5, F1=0.5
  const auto logits = logits_for({0, 1, 1, 1, 2, 0}, 3);
  const std::vector<std::int32_t> truth{0, 0, 1, 1, 2, 2};
  const auto cm = confusion_matrix(logits, truth);
  EXPECT_NEAR(cm.recall(0), 0.5, 1e-12);
  EXPECT_NEAR(cm.precision(0), 0.5, 1e-12);
  EXPECT_NEAR(cm.f1(0), 0.5, 1e-12);
  // class 1: TP=2 FN=0 FP=1 -> P=2/3, R=1, F1=0.8
  EXPECT_NEAR(cm.recall(1), 1.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.f1(1), 0.8, 1e-12);
  // class 2: TP=1 FN=1 FP=0 -> P=1, R=0.5, F1=2/3
  EXPECT_NEAR(cm.f1(2), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.macro_f1(), (0.5 + 0.8 + 2.0 / 3.0) / 3.0, 1e-12);
}

TEST(ConfusionMatrix, SkipsUnlabeledRows) {
  const auto logits = logits_for({0, 1, 2}, 3);
  const std::vector<std::int32_t> truth{0, -1, 2};
  const auto cm = confusion_matrix(logits, truth);
  EXPECT_EQ(cm.total(), 2u);
  EXPECT_NEAR(cm.accuracy(), 1.0, 1e-12);
}

TEST(ConfusionMatrix, AbsentClassSkippedInMacroF1) {
  // Only classes 0 and 1 appear (truth or prediction); class 2 is skipped,
  // so macro-F1 averages two perfect classes.
  const auto logits = logits_for({0, 1}, 3);
  const std::vector<std::int32_t> truth{0, 1};
  const auto cm = confusion_matrix(logits, truth);
  EXPECT_NEAR(cm.macro_f1(), 1.0, 1e-12);
}

TEST(ConfusionMatrix, ValidationErrors) {
  const auto logits = logits_for({0, 1}, 3);
  EXPECT_THROW(confusion_matrix(logits, {0}), std::invalid_argument);
  EXPECT_THROW(confusion_matrix(logits, {0, 5}), std::out_of_range);
}

TEST(ConfusionMatrix, EmptyInputIsZeroNotNan) {
  Tensor logits({0, 3});
  const auto cm = confusion_matrix(logits, {});
  EXPECT_EQ(cm.total(), 0u);
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.macro_f1(), 0.0);
}

}  // namespace
}  // namespace ppgnn::core
