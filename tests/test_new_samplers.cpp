// Tests for the two extension samplers: ClusterGCN (graph-wise, BFS
// partition) and FastGCN (layer-wise, frontier-independent importance).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "graph/dataset.h"
#include "mpgnn/mp_trainer.h"
#include "sampling/clustergcn.h"
#include "sampling/fastgcn.h"

namespace ppgnn::sampling {
namespace {

graph::Dataset small_dataset() {
  return graph::make_dataset(graph::DatasetName::kProductsSim, 0.1);
}

std::vector<NodeId> some_seeds(const graph::Dataset& ds, std::size_t k) {
  std::vector<NodeId> seeds;
  for (std::size_t i = 0; i < k && i < ds.split.train.size(); ++i) {
    seeds.push_back(static_cast<NodeId>(ds.split.train[i]));
  }
  return seeds;
}

void check_block_invariants(const Block& b, const graph::CsrGraph& g) {
  ASSERT_LE(b.dst_size(), b.src_size());
  for (std::size_t i = 0; i < b.dst_size(); ++i) {
    EXPECT_EQ(b.src_nodes[i], b.dst_nodes[i]);
  }
  std::unordered_set<NodeId> uniq(b.src_nodes.begin(), b.src_nodes.end());
  EXPECT_EQ(uniq.size(), b.src_nodes.size());
  ASSERT_EQ(b.offsets.size(), b.dst_size() + 1);
  EXPECT_EQ(b.offsets.back(), static_cast<graph::EdgeIdx>(b.indices.size()));
  for (std::size_t i = 0; i < b.dst_size(); ++i) {
    for (auto e = b.offsets[i]; e < b.offsets[i + 1]; ++e) {
      const auto local = static_cast<std::size_t>(b.indices[e]);
      ASSERT_LT(local, b.src_size());
      EXPECT_TRUE(g.has_edge(b.dst_nodes[i], b.src_nodes[local]));
    }
  }
  if (!b.values.empty()) {
    EXPECT_EQ(b.values.size(), b.indices.size());
  }
}

// ------------------------------------------------------------ partition ----

TEST(BfsPartition, CoversEveryNodeExactlyOnce) {
  const auto ds = small_dataset();
  const auto part = bfs_partition(ds.graph, 8, 1);
  ASSERT_EQ(part.size(), ds.num_nodes());
  for (const auto c : part) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 8);
  }
}

TEST(BfsPartition, CellsAreRoughlyBalanced) {
  const auto ds = small_dataset();
  const std::size_t k = 10;
  const auto part = bfs_partition(ds.graph, k, 2);
  std::vector<std::size_t> sizes(k, 0);
  for (const auto c : part) ++sizes[static_cast<std::size_t>(c)];
  const std::size_t target = ds.num_nodes() / k;
  for (const auto s : sizes) {
    EXPECT_GT(s, target / 4);
    EXPECT_LT(s, target * 4);
  }
}

TEST(BfsPartition, LocalityBeatsRandomAssignment) {
  // A BFS-grown partition keeps more edges internal than random labels do
  // — the property Cluster-GCN needs from METIS.
  const auto ds = small_dataset();
  const std::size_t k = 8;
  const auto part = bfs_partition(ds.graph, k, 3);
  const double bfs_cut = edge_cut_fraction(ds.graph, part);

  std::vector<std::int32_t> random_part(ds.num_nodes());
  Rng rng(4);
  for (auto& c : random_part) {
    c = static_cast<std::int32_t>(rng.uniform_int(k));
  }
  const double random_cut = edge_cut_fraction(ds.graph, random_part);
  EXPECT_LT(bfs_cut, random_cut * 0.8);
}

TEST(BfsPartition, DeterministicGivenSeed) {
  const auto ds = small_dataset();
  EXPECT_EQ(bfs_partition(ds.graph, 6, 7), bfs_partition(ds.graph, 6, 7));
  EXPECT_NE(bfs_partition(ds.graph, 6, 7), bfs_partition(ds.graph, 6, 8));
}

TEST(BfsPartition, HandlesDegenerateInputs) {
  const auto ds = small_dataset();
  EXPECT_THROW(bfs_partition(ds.graph, 0, 1), std::invalid_argument);
  // One cluster: everything in cell 0.
  const auto part = bfs_partition(ds.graph, 1, 1);
  for (const auto c : part) EXPECT_EQ(c, 0);
}

// -------------------------------------------------------------- sampler ----

TEST(ClusterGcnSampler, BatchSatisfiesBlockInvariants) {
  const auto ds = small_dataset();
  ClusterGcnSampler sampler(3, 8, 2);
  Rng rng(5);
  const auto seeds = some_seeds(ds, 32);
  const auto batch = sampler.sample(ds.graph, seeds, rng);
  ASSERT_EQ(batch.blocks.size(), 3u);
  for (std::size_t l = 0; l + 1 < batch.blocks.size(); ++l) {
    check_block_invariants(batch.blocks[l], ds.graph);
  }
  // Final block dst == seeds.
  EXPECT_EQ(batch.seeds(), seeds);
}

TEST(ClusterGcnSampler, SubgraphSizeIndependentOfDepth) {
  const auto ds = small_dataset();
  const auto seeds = some_seeds(ds, 16);
  std::size_t rows2 = 0, rows6 = 0;
  {
    ClusterGcnSampler s(2, 8, 1);
    Rng rng(6);
    rows2 = s.sample(ds.graph, seeds, rng).input_rows();
  }
  {
    ClusterGcnSampler s(6, 8, 1);
    Rng rng(6);
    rows6 = s.sample(ds.graph, seeds, rng).input_rows();
  }
  EXPECT_EQ(rows2, rows6);  // graph-wise samplers: no neighbor explosion
}

TEST(ClusterGcnSampler, PartitionIsReusedAcrossCalls) {
  const auto ds = small_dataset();
  ClusterGcnSampler sampler(2, 8, 1);
  Rng rng1(7), rng2(7);
  const auto seeds = some_seeds(ds, 8);
  const auto b1 = sampler.sample(ds.graph, seeds, rng1);
  const auto b2 = sampler.sample(ds.graph, seeds, rng2);
  EXPECT_EQ(b1.input_nodes(), b2.input_nodes());
}

TEST(ClusterGcnSampler, RejectsBadConstruction) {
  EXPECT_THROW(ClusterGcnSampler(0, 4), std::invalid_argument);
  EXPECT_THROW(ClusterGcnSampler(2, 0), std::invalid_argument);
}

TEST(FastGcnSampler, BatchSatisfiesBlockInvariants) {
  const auto ds = small_dataset();
  FastGcnSampler sampler(3, 128);
  Rng rng(8);
  const auto seeds = some_seeds(ds, 32);
  const auto batch = sampler.sample(ds.graph, seeds, rng);
  ASSERT_EQ(batch.blocks.size(), 3u);
  for (const auto& blk : batch.blocks) {
    check_block_invariants(blk, ds.graph);
  }
  EXPECT_EQ(batch.seeds(), seeds);
}

TEST(FastGcnSampler, LayerGrowthIsLinearNotExponential) {
  // Each layer adds at most `budget` sampled nodes on top of the frontier,
  // so input_rows <= seeds + L * budget — the "no neighbor explosion"
  // contract of layer-wise samplers (Table 1's LADIES row).
  const auto ds = small_dataset();
  const std::size_t budget = 64;
  const auto seeds = some_seeds(ds, 32);
  for (const std::size_t layers : {2ul, 4ul, 6ul}) {
    FastGcnSampler sampler(layers, budget);
    Rng rng(9);
    const auto batch = sampler.sample(ds.graph, seeds, rng);
    EXPECT_LE(batch.input_rows(), seeds.size() + layers * budget);
  }
}

TEST(FastGcnSampler, DebiasingWeightsArePositive) {
  const auto ds = small_dataset();
  FastGcnSampler sampler(2, 64);
  Rng rng(10);
  const auto batch = sampler.sample(ds.graph, some_seeds(ds, 16), rng);
  for (const auto& blk : batch.blocks) {
    for (const float w : blk.values) EXPECT_GT(w, 0.f);
  }
}

TEST(FastGcnSampler, SparserThanFrontierConditionedLadies) {
  // FastGCN draws ignore the frontier, so fewer drawn nodes connect to it;
  // the kept-edge count should not exceed what frontier-conditioned
  // sampling achieves with the same budget (usually far lower).
  const auto ds = small_dataset();
  const auto seeds = some_seeds(ds, 32);
  FastGcnSampler fast(2, 128);
  Rng rng(11);
  const auto batch = fast.sample(ds.graph, seeds, rng);
  std::size_t fast_edges = 0;
  for (const auto& blk : batch.blocks) fast_edges += blk.num_edges();
  EXPECT_GT(fast_edges, 0u);  // something survives
  // Self edges always survive via the dst prefix even in the worst case.
  EXPECT_GE(batch.blocks.back().src_size(), seeds.size());
}

// -------------------------------------------------- end-to-end training ----

TEST(NewSamplers, SageTrainsAboveChanceWithBoth) {
  const auto ds = graph::make_dataset(graph::DatasetName::kPokecSim, 0.1);
  const double chance = 1.0 / static_cast<double>(ds.num_classes);
  for (const bool use_cluster : {true, false}) {
    Rng rng(12);
    mpgnn::SageConfig cfg;
    cfg.in_dim = ds.feature_dim();
    cfg.hidden_dim = 32;
    cfg.out_dim = ds.num_classes;
    cfg.num_layers = 2;
    cfg.dropout = 0.1f;
    mpgnn::GraphSage model(cfg, rng);
    std::unique_ptr<Sampler> sampler;
    if (use_cluster) {
      sampler = std::make_unique<ClusterGcnSampler>(2, 6, 2);
    } else {
      sampler = std::make_unique<FastGcnSampler>(2, 256);
    }
    mpgnn::MpTrainConfig tc;
    tc.epochs = 8;
    tc.batch_size = 128;
    tc.lr = 1e-2f;
    tc.eval_every = 8;
    tc.seed = 13;
    const auto r = mpgnn::train_mp(model, ds, *sampler, tc);
    EXPECT_GT(r.history.peak_val_acc(), chance + 0.1)
        << (use_cluster ? "ClusterGCN" : "FastGCN");
  }
}

}  // namespace
}  // namespace ppgnn::sampling
