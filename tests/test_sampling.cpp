#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/dataset.h"
#include "sampling/labor.h"
#include "sampling/ladies.h"
#include "sampling/neighbor.h"
#include "sampling/saint.h"

namespace ppgnn::sampling {
namespace {

graph::Dataset small_dataset() {
  return graph::make_dataset(graph::DatasetName::kProductsSim, 0.1);
}

std::vector<NodeId> some_seeds(const graph::Dataset& ds, std::size_t k) {
  std::vector<NodeId> seeds;
  for (std::size_t i = 0; i < k && i < ds.split.train.size(); ++i) {
    seeds.push_back(static_cast<NodeId>(ds.split.train[i]));
  }
  return seeds;
}

void check_block_invariants(const Block& b, const graph::CsrGraph& g) {
  // dst prefix of src.
  ASSERT_LE(b.dst_size(), b.src_size());
  for (std::size_t i = 0; i < b.dst_size(); ++i) {
    EXPECT_EQ(b.src_nodes[i], b.dst_nodes[i]);
  }
  // src_nodes unique.
  std::unordered_set<NodeId> uniq(b.src_nodes.begin(), b.src_nodes.end());
  EXPECT_EQ(uniq.size(), b.src_nodes.size());
  // offsets consistent; local indices in range; edges exist in g.
  ASSERT_EQ(b.offsets.size(), b.dst_size() + 1);
  EXPECT_EQ(b.offsets.back(), static_cast<EdgeIdx>(b.indices.size()));
  for (std::size_t i = 0; i < b.dst_size(); ++i) {
    for (auto e = b.offsets[i]; e < b.offsets[i + 1]; ++e) {
      const auto local = static_cast<std::size_t>(b.indices[e]);
      ASSERT_LT(local, b.src_size());
      EXPECT_TRUE(g.has_edge(b.dst_nodes[i], b.src_nodes[local]));
    }
  }
  if (!b.values.empty()) EXPECT_EQ(b.values.size(), b.indices.size());
}

void check_batch(const SampledBatch& batch, const graph::CsrGraph& g,
                 const std::vector<NodeId>& seeds, std::size_t layers) {
  ASSERT_EQ(batch.blocks.size(), layers);
  EXPECT_EQ(batch.seeds(), seeds);
  for (const auto& blk : batch.blocks) check_block_invariants(blk, g);
  // Chaining: dst of block l == src of block l-1... in our construction
  // blocks[l].src_nodes == blocks[l-1].dst_nodes is not required, but
  // blocks[l-1].dst == blocks[l].src must hold for forward shape chaining.
  for (std::size_t l = 0; l + 1 < layers; ++l) {
    EXPECT_EQ(batch.blocks[l].dst_nodes, batch.blocks[l + 1].src_nodes);
  }
}

TEST(NeighborSampler, RespectsFanoutAndInvariants) {
  const auto ds = small_dataset();
  const NeighborSampler sampler({5, 4, 3});
  Rng rng(1);
  const auto seeds = some_seeds(ds, 64);
  const auto batch = sampler.sample(ds.graph, seeds, rng);
  check_batch(batch, ds.graph, seeds, 3);
  // Output-layer block obeys fanout 3.
  const Block& top = batch.blocks[2];
  for (std::size_t i = 0; i < top.dst_size(); ++i) {
    EXPECT_LE(top.offsets[i + 1] - top.offsets[i], 3);
  }
  // Input-layer block obeys fanout 5.
  const Block& bottom = batch.blocks[0];
  for (std::size_t i = 0; i < bottom.dst_size(); ++i) {
    EXPECT_LE(bottom.offsets[i + 1] - bottom.offsets[i], 5);
  }
}

TEST(NeighborSampler, FrontierGrowsAcrossLayers) {
  const auto ds = small_dataset();
  const NeighborSampler sampler({10, 10, 10});
  Rng rng(2);
  const auto seeds = some_seeds(ds, 32);
  const auto batch = sampler.sample(ds.graph, seeds, rng);
  EXPECT_GT(batch.blocks[1].src_size(), batch.blocks[2].src_size());
  EXPECT_GT(batch.blocks[0].src_size(), batch.blocks[1].src_size());
  EXPECT_GT(batch.input_rows(), seeds.size() * 4);
}

TEST(NeighborSampler, DeterministicGivenRng) {
  const auto ds = small_dataset();
  const NeighborSampler sampler({5, 5});
  const auto seeds = some_seeds(ds, 16);
  Rng r1(3), r2(3);
  const auto b1 = sampler.sample(ds.graph, seeds, r1);
  const auto b2 = sampler.sample(ds.graph, seeds, r2);
  EXPECT_EQ(b1.blocks[0].src_nodes, b2.blocks[0].src_nodes);
  EXPECT_EQ(b1.blocks[0].indices, b2.blocks[0].indices);
}

TEST(SampleNeighbors, TakesAllWhenDegreeBelowK) {
  const auto g = graph::build_csr(4, {{0, 1}, {0, 2}, {0, 3}});
  Rng rng(4);
  const auto all = sample_neighbors(g, 0, 10, rng);
  EXPECT_EQ(all.size(), 3u);
  const auto two = sample_neighbors(g, 0, 2, rng);
  EXPECT_EQ(two.size(), 2u);
  std::unordered_set<NodeId> uniq(two.begin(), two.end());
  EXPECT_EQ(uniq.size(), 2u);
}

TEST(LaborSampler, FewerUniqueSourcesThanNeighbor) {
  // The LABOR property: when destinations share neighborhoods, the shared
  // per-source variate collapses the union of sampled sources.  Build 50
  // destinations all adjacent to the same 200 sources (fanout 10 =>
  // pi = 0.05): node-wise sampling unions ~200*(1-0.95^50) ~ 185 sources,
  // LABOR keeps only those with r_u <= 0.05, ~10.
  std::vector<graph::Edge> edges;
  for (NodeId d = 0; d < 50; ++d) {
    for (NodeId s = 50; s < 250; ++s) edges.push_back({d, s});
  }
  const auto g = graph::build_csr(250, std::move(edges));
  std::vector<NodeId> seeds;
  for (NodeId d = 0; d < 50; ++d) seeds.push_back(d);
  const NeighborSampler ns({10});
  const LaborSampler ls({10});
  double n_rows = 0, l_rows = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    Rng r1(100 + s), r2(100 + s);
    n_rows += ns.sample(g, seeds, r1).input_rows();
    l_rows += ls.sample(g, seeds, r2).input_rows();
  }
  EXPECT_LT(l_rows, 0.5 * n_rows);
}

TEST(LaborSampler, ExpectedDegreeNearFanout) {
  const auto ds = small_dataset();
  const auto seeds = some_seeds(ds, 256);
  const LaborSampler ls({5});
  Rng rng(6);
  const auto batch = ls.sample(ds.graph, seeds, rng);
  const Block& b = batch.blocks[0];
  double total = 0;
  for (std::size_t i = 0; i < b.dst_size(); ++i) {
    total += static_cast<double>(b.offsets[i + 1] - b.offsets[i]);
  }
  // Mean sampled degree ~ fanout (draws with pi<1 average to fanout).
  EXPECT_NEAR(total / b.dst_size(), 5.0, 1.5);
}

TEST(LaborSampler, LowDegreeNodesKeepAllNeighbors) {
  // pi = min(1, fanout/deg): nodes with deg <= fanout keep everything.
  // Path graph: every node has degree <= 2.
  std::vector<graph::Edge> edges;
  for (NodeId v = 0; v + 1 < 20; ++v) edges.push_back({v, v + 1});
  const auto g = graph::build_csr(20, edges);
  const LaborSampler ls({5});
  Rng rng(61);
  std::vector<NodeId> seeds;
  for (NodeId v = 0; v < 20; ++v) seeds.push_back(v);
  const auto batch = ls.sample(g, seeds, rng);
  const Block& b = batch.blocks[0];
  for (std::size_t i = 0; i < b.dst_size(); ++i) {
    EXPECT_EQ(b.offsets[i + 1] - b.offsets[i], g.degree(b.dst_nodes[i]));
  }
}

TEST(LaborSampler, GuaranteesOneNeighbor) {
  const auto ds = small_dataset();
  const auto seeds = some_seeds(ds, 64);
  const LaborSampler ls({1, 1});
  Rng rng(7);
  const auto batch = ls.sample(ds.graph, seeds, rng);
  for (const auto& blk : batch.blocks) {
    for (std::size_t i = 0; i < blk.dst_size(); ++i) {
      if (ds.graph.degree(blk.dst_nodes[i]) > 0) {
        EXPECT_GE(blk.offsets[i + 1] - blk.offsets[i], 1);
      }
    }
  }
}

TEST(LadiesSampler, BudgetBoundsLayerGrowth) {
  const auto ds = small_dataset();
  const auto seeds = some_seeds(ds, 64);
  const LadiesSampler sampler(3, 128);
  Rng rng(8);
  const auto batch = sampler.sample(ds.graph, seeds, rng);
  check_batch(batch, ds.graph, seeds, 3);
  for (const auto& blk : batch.blocks) {
    // src = dst + at most budget new nodes.
    EXPECT_LE(blk.src_size(), blk.dst_size() + 128);
  }
}

TEST(LadiesSampler, EdgesCarryDebiasWeights) {
  const auto ds = small_dataset();
  const auto seeds = some_seeds(ds, 32);
  const LadiesSampler sampler(2, 64);
  Rng rng(9);
  const auto batch = sampler.sample(ds.graph, seeds, rng);
  bool any_edges = false;
  for (const auto& blk : batch.blocks) {
    if (blk.num_edges() > 0) {
      any_edges = true;
      EXPECT_EQ(blk.values.size(), blk.indices.size());
      for (const float w : blk.values) EXPECT_GT(w, 0.f);
    }
  }
  EXPECT_TRUE(any_edges);
}

TEST(SaintSampler, SubgraphSizeIndependentOfDepth) {
  const auto ds = small_dataset();
  const auto seeds = some_seeds(ds, 64);
  const SaintNodeSampler s2(2, 256);
  const SaintNodeSampler s5(5, 256);
  Rng r1(10), r2(10);
  const auto b2 = s2.sample(ds.graph, seeds, r1);
  const auto b5 = s5.sample(ds.graph, seeds, r2);
  EXPECT_EQ(b2.input_rows(), b5.input_rows());
  EXPECT_EQ(b5.blocks.size(), 5u);
}

TEST(SaintSampler, SeedsAreFinalDst) {
  const auto ds = small_dataset();
  const auto seeds = some_seeds(ds, 48);
  const SaintNodeSampler sampler(3, 128);
  Rng rng(11);
  const auto batch = sampler.sample(ds.graph, seeds, rng);
  EXPECT_EQ(batch.seeds(), seeds);
  // All blocks share one node set (the induced subgraph).
  EXPECT_EQ(batch.blocks[0].src_nodes, batch.blocks[1].src_nodes);
  EXPECT_EQ(batch.blocks[0].src_nodes, batch.blocks[2].src_nodes);
  for (const auto& blk : batch.blocks) check_block_invariants(blk, ds.graph);
}

TEST(MakeBlock, DedupsSharedSources) {
  const std::vector<NodeId> dst{0, 1};
  const std::vector<std::vector<NodeId>> chosen{{5, 6}, {6, 5}};
  const Block b = make_block(dst, chosen);
  EXPECT_EQ(b.src_size(), 4u);  // 0, 1, 5, 6
  EXPECT_EQ(b.num_edges(), 4u);
}

TEST(InducedBlock, KeepsOnlyInternalEdges) {
  const auto g = graph::build_csr(4, {{0, 1}, {1, 2}, {2, 3}});
  const Block b = induced_block(g, {0, 1, 3});
  // Edges inside {0,1,3}: 0-1 and 1-0 only (2 is excluded).
  EXPECT_EQ(b.num_edges(), 2u);
}

TEST(SamplerStats, AccumulatesVolumes) {
  const auto ds = small_dataset();
  const NeighborSampler sampler({5, 5});
  Rng rng(12);
  SamplerStats stats;
  const auto seeds = some_seeds(ds, 16);
  stats.observe(sampler.sample(ds.graph, seeds, rng));
  stats.observe(sampler.sample(ds.graph, seeds, rng));
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_GT(stats.input_rows, 2 * seeds.size());
  EXPECT_GT(stats.edges, 0u);
}

}  // namespace
}  // namespace ppgnn::sampling
