// Data-parallel trainer invariants: replica synchronization, equivalence
// with serial large-batch training, locality-aware loading, and accuracy.
#include <gtest/gtest.h>

#include "core/parallel_trainer.h"
#include "core/precompute.h"
#include "core/sign.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "tensor/ops.h"

namespace ppgnn::core {
namespace {

const graph::Dataset& dataset() {
  static const graph::Dataset ds =
      graph::make_dataset(graph::DatasetName::kPokecSim, 0.08);
  return ds;
}

const Preprocessed& preprocessed() {
  static const Preprocessed pre = [] {
    PrecomputeConfig pc;
    pc.hops = 2;
    return precompute(dataset().graph, dataset().features, pc);
  }();
  return pre;
}

ModelFactory sign_factory() {
  return [](Rng& rng) -> std::unique_ptr<PpModel> {
    SignConfig cfg;
    cfg.feat_dim = dataset().feature_dim();
    cfg.hops = 2;
    cfg.hidden = 16;
    cfg.classes = dataset().num_classes;
    cfg.dropout = 0.f;  // determinism for the equivalence checks
    return std::make_unique<Sign>(cfg, rng);
  };
}

DataParallelConfig base_cfg(int workers) {
  DataParallelConfig cfg;
  cfg.num_workers = workers;
  cfg.epochs = 4;
  cfg.batch_size = 128;
  cfg.eval_every = 1;
  cfg.seed = 21;
  return cfg;
}

TEST(DataParallel, MatchesSerialTrainerBitForBit) {
  // W workers averaging shard gradients == one worker seeing the whole
  // batch: the loss curves must coincide to double precision.
  const auto serial =
      train_pp_data_parallel(sign_factory(), preprocessed(), dataset(),
                             base_cfg(1));
  const auto parallel =
      train_pp_data_parallel(sign_factory(), preprocessed(), dataset(),
                             base_cfg(2));
  ASSERT_EQ(serial.history.epochs.size(), parallel.history.epochs.size());
  for (std::size_t e = 0; e < serial.history.epochs.size(); ++e) {
    EXPECT_NEAR(serial.history.epochs[e].train_loss,
                parallel.history.epochs[e].train_loss, 1e-4)
        << "epoch " << e;
    EXPECT_NEAR(serial.history.epochs[e].val_acc,
                parallel.history.epochs[e].val_acc, 1e-3)
        << "epoch " << e;
  }
}

TEST(DataParallel, MoreWorkersStillLearn) {
  const auto r = train_pp_data_parallel(sign_factory(), preprocessed(),
                                        dataset(), base_cfg(4));
  EXPECT_GT(r.history.peak_val_acc(), 0.6);  // binary task
  EXPECT_LT(r.history.epochs.back().train_loss,
            r.history.epochs.front().train_loss);
}

TEST(DataParallel, GlobalShuffleFetchesMostlyRemoteRows) {
  auto cfg = base_cfg(4);
  cfg.policy = EpochOrderPolicy::kGlobalShuffle;
  const auto r = train_pp_data_parallel(sign_factory(), preprocessed(),
                                        dataset(), cfg);
  // Under a uniform permutation a row is remote w.p. (W-1)/W = 0.75.
  EXPECT_NEAR(r.remote_row_fraction, 0.75, 0.08);
}

TEST(DataParallel, LocalityAwareFetchesZeroRemoteRows) {
  auto cfg = base_cfg(4);
  cfg.policy = EpochOrderPolicy::kLocalityAware;
  const auto r = train_pp_data_parallel(sign_factory(), preprocessed(),
                                        dataset(), cfg);
  EXPECT_DOUBLE_EQ(r.remote_row_fraction, 0.0);
}

TEST(DataParallel, LocalityAwareAccuracyComparableToGlobal) {
  // Locality-aware order is "insufficient shuffling" like chunk
  // reshuffling; the paper's claim is that such schemes cost ~nothing.
  auto global = base_cfg(4);
  global.epochs = 8;
  auto local = global;
  local.policy = EpochOrderPolicy::kLocalityAware;
  const auto rg = train_pp_data_parallel(sign_factory(), preprocessed(),
                                         dataset(), global);
  const auto rl = train_pp_data_parallel(sign_factory(), preprocessed(),
                                         dataset(), local);
  EXPECT_NEAR(rg.history.peak_val_acc(), rl.history.peak_val_acc(), 0.05);
}

TEST(DataParallel, Validation) {
  EXPECT_THROW(train_pp_data_parallel(sign_factory(), preprocessed(),
                                      dataset(), base_cfg(0)),
               std::invalid_argument);
  auto cfg = base_cfg(2);
  cfg.epochs = 0;
  EXPECT_THROW(train_pp_data_parallel(sign_factory(), preprocessed(),
                                      dataset(), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppgnn::core
