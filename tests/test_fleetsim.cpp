// The fleet simulator (src/fleetsim/): clock-injected gauges, trace
// round trips, deterministic replay, the capacity planner's choice, and
// the calibration parser.
//
// Determinism is the load-bearing property here: every test asserts
// exact equality of counters, signatures or full result JSON — never a
// timing — so the suite is bit-stable under ctest -j8, sanitizers, and
// loaded CI runners.  That is only possible because the simulator runs
// on a SimClock and models hit rates analytically; these tests are the
// regression net around that design.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "fleetsim/calibrate.h"
#include "fleetsim/fleet_sim.h"
#include "fleetsim/planner.h"
#include "fleetsim/service_model.h"
#include "serve/clock.h"
#include "serve/server_stats.h"
#include "serve/trace.h"
#include "serve/workload.h"

namespace ppgnn::fleetsim {
namespace {

using namespace std::chrono_literals;

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// --- ServerStats windowed gauges on an injected clock -------------------
// The bugfix this PR rode in on: every windowed read must go through the
// injected clock.  On a SimClock, events recorded "long ago" in sim time
// must age out of the window without any real time passing — and events
// must NOT age out while sim time stands still, however long the wall
// clock runs.

TEST(SimClockStats, WindowAgesInSimTimeOnly) {
  serve::SimClock clock;
  serve::ServerStats stats(500ms, &clock);
  stats.record_admitted();
  stats.record_rejected();
  stats.record_queue_delay(100.0);

  // Sim time frozen: the events stay in the window no matter what the
  // wall clock does.
  auto w = stats.window();
  EXPECT_EQ(w.admission.admitted, 1u);
  EXPECT_EQ(w.admission.rejected, 1u);
  EXPECT_EQ(w.queue_delay_samples, 1u);

  // Advance PAST the window in sim time alone: everything ages out.
  clock.advance(2s);
  w = stats.window();
  EXPECT_EQ(w.admission.admitted, 0u);
  EXPECT_EQ(w.admission.rejected, 0u);
  EXPECT_EQ(w.queue_delay_samples, 0u);

  // New events land in the advanced window.
  stats.record_admitted();
  w = stats.window();
  EXPECT_EQ(w.admission.admitted, 1u);
  EXPECT_EQ(stats.admission().admitted, 2u);  // cumulative unaffected
}

// --- Trace round trips --------------------------------------------------

TEST(Trace, SaveLoadRoundTrip) {
  std::vector<serve::TraceEvent> trace(3);
  trace[0].t_us = 0;
  trace[0].nodes = {17, 42, 993};
  trace[0].tenant = 3;
  trace[1].t_us = 812;
  trace[1].priority = serve::Priority::kLow;
  trace[1].deadline_us = 250000;
  trace[1].nodes = {55};
  trace[2].t_us = 812;  // ties are legal (concurrent arrivals)
  trace[2].nodes = {7};
  const auto path = tmp_path("roundtrip.trace");
  serve::save_trace(path, trace);
  const auto loaded = serve::load_trace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].t_us, trace[i].t_us);
    EXPECT_EQ(loaded[i].priority, trace[i].priority);
    EXPECT_EQ(loaded[i].deadline_us, trace[i].deadline_us);
    EXPECT_EQ(loaded[i].tenant, trace[i].tenant);
    EXPECT_EQ(loaded[i].nodes, trace[i].nodes);
  }
}

TEST(Trace, RecorderSnapshotIsSortedAndReplayable) {
  // The recorder's clients race on recording order; snapshot() must
  // deliver a time-ordered trace that save/load round-trips.
  const auto t0 = std::chrono::steady_clock::time_point{};
  serve::TraceRecorder rec(t0);
  rec.note(t0 + 900us, {5}, serve::Priority::kLow, 1000, 2);
  rec.note(t0 + 100us, {1, 2}, serve::Priority::kHigh, 0, 0);
  rec.note(t0 + 500us, {9}, serve::Priority::kHigh, 0, 1);
  EXPECT_EQ(rec.size(), 3u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].t_us, 100u);
  EXPECT_EQ(snap[1].t_us, 500u);
  EXPECT_EQ(snap[2].t_us, 900u);
  EXPECT_EQ(snap[0].nodes, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(snap[2].deadline_us, 1000u);

  const auto path = tmp_path("recorded.trace");
  rec.save(path);
  const auto loaded = serve::load_trace(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[1].tenant, 1u);

  // And the loaded trace replays.
  SimFleetConfig cfg;
  const auto r = FleetSim(cfg, ServiceModel({})).run(loaded);
  EXPECT_EQ(r.offered_parts, 4u);
  EXPECT_EQ(r.answered, 4u);
}

// --- Synthetic envelopes ------------------------------------------------

TEST(Trace, DiurnalArrivalsIntegrateTheEnvelope) {
  serve::DiurnalTraceConfig cfg;
  cfg.mix.num_nodes = 1000;
  cfg.mix.seed = 7;
  cfg.span_seconds = 120;
  cfg.base_rps = 50;
  cfg.peak_rps = 250;
  const auto trace = serve::diurnal_trace(cfg);
  // Total arrivals ~= integral of the rate; the emitter truncates the
  // trailing fractional arrival, so allow a couple of events of slack.
  double expect = 0;
  const double dt = 1e-3;
  for (double t = 0; t < cfg.span_seconds; t += dt) {
    expect += serve::diurnal_rate_at(cfg, t) * dt;
  }
  EXPECT_NEAR(static_cast<double>(trace.size()), expect, 2.0);

  // Arrival TIMES are seed-independent (the envelope is deterministic);
  // only the node draws differ.
  auto cfg2 = cfg;
  cfg2.mix.seed = 8;
  const auto trace2 = serve::diurnal_trace(cfg2);
  ASSERT_EQ(trace2.size(), trace.size());
  bool nodes_differ = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace2[i].t_us, trace[i].t_us);
    nodes_differ = nodes_differ || trace2[i].nodes != trace[i].nodes;
  }
  EXPECT_TRUE(nodes_differ);
}

// --- Simulator determinism ----------------------------------------------

SimFleetConfig autoscaling_fleet() {
  SimFleetConfig cfg;
  cfg.initial_replicas = 1;
  cfg.policy = serve::RoutingPolicy::kRoundRobin;
  cfg.batch.max_batch_size = 64;
  cfg.batch.max_delay = 500us;
  cfg.batch.shed_budget = 2000us;  // shedding on: the autoscale signal
  cfg.autoscale.enabled = true;
  cfg.autoscale.min_replicas = 1;
  cfg.autoscale.max_replicas = 4;
  cfg.cache.capacity_rows = 0;  // uncached: hit rate identically 0
  cfg.timeline_every = 0ms;
  return cfg;
}

// ~300 answered parts/s per replica on 4 modeled cores.
ServiceModel test_model() {
  return ServiceModel::calibrated(/*baseline_rps=*/300, /*mean_batch=*/16,
                                  /*mean_dispatch_us=*/50, /*hit_rate=*/0,
                                  /*cores=*/4);
}

TEST(FleetSim, SameInputsBitIdenticalResults) {
  serve::DiurnalTraceConfig tc;
  tc.mix.num_nodes = 1000;
  tc.mix.seed = 3;
  tc.span_seconds = 60;
  tc.base_rps = 100;
  tc.peak_rps = 700;
  const auto trace = serve::diurnal_trace(tc);
  const auto cfg = autoscaling_fleet();
  const auto model = test_model();
  const auto a = FleetSim(cfg, model).run(trace);
  const auto b = FleetSim(cfg, model).run(trace);
  // Full-result equality, wall time aside: counters, percentiles, events.
  // sim_wall_seconds is how long the REPLAY took — the one legitimately
  // nondeterministic field — so it is cut before comparing.
  const auto strip_wall = [](std::string j) {
    const auto at = j.find(",\"sim_wall_seconds\"");
    EXPECT_NE(at, std::string::npos);
    return j.substr(0, at);
  };
  EXPECT_GT(a.answered, 0u);
  EXPECT_EQ(strip_wall(a.to_json()), strip_wall(b.to_json()));
}

// The satellite test: AutoscalePolicy driven by the simulated event loop
// over a two-hour diurnal day.  The spawn/retire SEQUENCE and its times
// must be identical across trace seeds — the envelope (not the node
// draw) is what the policy reacts to — and across however many tests run
// in parallel around this one (nothing here reads the wall clock).
TEST(FleetSim, TwoHourDiurnalScalesDeterministicallyAcrossSeeds) {
  std::vector<std::string> signatures;
  std::vector<std::vector<double>> event_times;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    serve::DiurnalTraceConfig tc;
    tc.mix.num_nodes = 1000;
    tc.mix.seed = seed;
    tc.span_seconds = 7200;  // two hours of simulated day
    tc.base_rps = 60;
    tc.peak_rps = 600;       // 2x a replica's ~300/s: must scale up
    const auto trace = serve::diurnal_trace(tc);
    const auto r = FleetSim(autoscaling_fleet(), test_model()).run(trace);
    // The fleet actually scaled: up into the midday peak, back down after.
    EXPECT_GT(r.max_replicas_seen, 1u) << "seed " << seed;
    const auto sig = r.event_signature();
    EXPECT_NE(sig.find('u'), std::string::npos) << "seed " << seed;
    EXPECT_NE(sig.find('d'), std::string::npos) << "seed " << seed;
    signatures.push_back(sig);
    std::vector<double> times;
    for (const auto& e : r.events) times.push_back(e.t_seconds);
    event_times.push_back(std::move(times));
  }
  EXPECT_EQ(signatures[0], signatures[1]);
  EXPECT_EQ(signatures[0], signatures[2]);
  EXPECT_EQ(event_times[0], event_times[1]);
  EXPECT_EQ(event_times[0], event_times[2]);
}

// --- Capacity planner ---------------------------------------------------

TEST(Planner, PicksTheCheapestFeasibleArm) {
  serve::DiurnalTraceConfig tc;
  tc.mix.num_nodes = 1000;
  tc.mix.seed = 5;
  tc.span_seconds = 60;
  tc.base_rps = 150;
  tc.peak_rps = 700;  // one ~300/s replica cannot hold the peak
  const auto trace = serve::diurnal_trace(tc);

  SimFleetConfig base = autoscaling_fleet();
  PlanTarget target;
  target.p99_ms = 10.0;
  target.max_shed_rate = 0.01;
  target.min_replicas = 1;
  target.max_replicas = 4;
  const auto plan = plan_capacity(base, test_model(), trace, target);
  ASSERT_EQ(plan.arms.size(), 5u);  // fixed 1..4 + autoscale
  ASSERT_TRUE(plan.attainable());
  const PlanArm* best = plan.best_arm();
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(best->feasible);
  // A single replica must NOT satisfy this trace (otherwise the test
  // exercises nothing), and the winner is the cheapest feasible arm.
  EXPECT_FALSE(plan.arms[0].feasible);
  for (const auto& arm : plan.arms) {
    if (arm.feasible) {
      EXPECT_LE(best->cost_replica_seconds, arm.cost_replica_seconds);
    }
  }
  // Fixed-arm feasibility is monotone in size: once an N meets the SLO,
  // every larger fixed fleet does too.
  bool seen_feasible = false;
  for (const auto& arm : plan.arms) {
    if (arm.replicas == 0) continue;  // the autoscale arm
    if (seen_feasible) EXPECT_TRUE(arm.feasible) << arm.name;
    seen_feasible = seen_feasible || arm.feasible;
  }
}

// --- Calibration parsing and gating -------------------------------------

TEST(Calibrate, ParsesBenchRecordsAndStripsInitialSpawns) {
  const std::string json =
      "[\n"
      "  {\"section\":\"serving\",\"rps\":123}\n"
      "  {\"section\":\"kernel_ladder\",\"isa\":\"sse2\",\"gemm_gops\":24.0,"
      "\"serve_rps\":800,\"active\":false}\n"
      "  {\"section\":\"kernel_ladder\",\"isa\":\"avx512vnni\","
      "\"gemm_gops\":140.5,\"serve_rps\":1500,\"active\":true}\n"
      "  {\"section\":\"autoscale_trace\",\"fleet\":\"fixed-min(1)\","
      "\"autoscale\":false,\"min_replicas\":1,\"max_replicas\":1,"
      "\"offered_mean_rps\":1200,\"answered_rps\":900,"
      "\"admitted_p99_us\":2000,\"shed_rate\":0.05,\"max_replicas_seen\":1,"
      "\"replica_seconds\":6.0,"
      "\"admission\":{\"admitted\":10,\"rejected\":1,\"shed\":0,"
      "\"shed_rate\":0.09},"
      "\"single_replica_rps\":1000,\"ramp_seconds\":6.0,\"mean_batch\":16,"
      "\"cache_hit_rate\":0.6,\"cache_capacity_rows\":1000,\"nodes\":20000,"
      "\"skew\":0.99,\"cores\":4,\"max_batch_size\":128,\"max_delay_us\":500,"
      "\"shed_budget_ms\":2,\"stats_window_ms\":500,\"scale_up_shed\":0.10,"
      "\"scale_down_idle\":0.90,\"sustain_ms\":300,\"idle_window_ms\":800,"
      "\"cooldown_ms\":1000,\"tick_ms\":50,\"warm_keys\":512,"
      "\"stages\":{\"admission_us\":100.0,\"dispatch_us\":80.0,"
      "\"compute_us\":500.0,\"shed_wait_us\":0.0,\"shed_waits\":0},"
      "\"events\":[{\"t\":0.00,\"action\":\"spawn\",\"generation\":0,"
      "\"replicas_after\":1}],\"timeline\":[]}\n"
      "  {\"section\":\"autoscale_trace\",\"fleet\":\"autoscale\","
      "\"autoscale\":true,\"min_replicas\":1,\"max_replicas\":4,"
      "\"answered_rps\":1100,\"admitted_p99_us\":3000,\"shed_rate\":0.02,"
      "\"max_replicas_seen\":2,\"replica_seconds\":7.5,"
      "\"events\":[{\"t\":0.00,\"action\":\"spawn\",\"generation\":0,"
      "\"replicas_after\":1},{\"t\":2.1,\"action\":\"spawn\","
      "\"generation\":1,\"replicas_after\":2},{\"t\":5.0,"
      "\"action\":\"retire\",\"generation\":1,\"replicas_after\":1}],"
      "\"timeline\":[]}\n"
      "]\n";
  const auto c = parse_bench_json(json);
  EXPECT_DOUBLE_EQ(c.single_replica_rps, 1000);
  EXPECT_DOUBLE_EQ(c.ramp_seconds, 6.0);
  EXPECT_DOUBLE_EQ(c.mean_batch, 16);
  EXPECT_DOUBLE_EQ(c.mean_dispatch_us, 80.0);  // stages.dispatch_us
  EXPECT_DOUBLE_EQ(c.cache_hit_rate, 0.6);     // the fixed-min arm's
  EXPECT_EQ(c.cache_capacity_rows, 1000u);
  EXPECT_EQ(c.nodes, 20000u);
  EXPECT_DOUBLE_EQ(c.cores, 4);
  ASSERT_EQ(c.arms.size(), 2u);
  EXPECT_EQ(c.arms[0].fleet, "fixed-min(1)");
  EXPECT_FALSE(c.arms[0].autoscale);
  EXPECT_DOUBLE_EQ(c.arms[0].answered_rps, 900);
  // shed_rate must come from the TOP-LEVEL key, not the admission
  // subobject's (first occurrence wins — the emission order guarantee).
  EXPECT_DOUBLE_EQ(c.arms[0].shed_rate, 0.05);
  // Initial spawns stripped: the fixed arm's dynamic sequence is empty,
  // the autoscale arm keeps its genuine spawn + retire.
  EXPECT_EQ(c.arms[0].event_signature, "");
  EXPECT_TRUE(c.arms[1].autoscale);
  EXPECT_EQ(c.arms[1].event_signature, "ud");
  // The per-ISA GEMM table rides along; the active row is the dispatched
  // kernel the cost model calibrates its INT8 rate from.
  ASSERT_EQ(c.kernels.size(), 2u);
  EXPECT_EQ(c.kernels[0].isa, "sse2");
  EXPECT_DOUBLE_EQ(c.kernels[0].gemm_gops, 24.0);
  EXPECT_FALSE(c.kernels[0].active);
  ASSERT_NE(c.dispatched_kernel(), nullptr);
  EXPECT_EQ(c.dispatched_kernel()->isa, "avx512vnni");
  EXPECT_DOUBLE_EQ(c.dispatched_kernel()->gemm_gops, 140.5);
  EXPECT_DOUBLE_EQ(c.dispatched_kernel()->serve_rps, 1500);

  EXPECT_THROW(parse_bench_json("[{\"section\":\"serving\"}]"),
               std::runtime_error);
}

TEST(ServiceModel, FromCostModelTracksTheKernelLadderArm) {
  // A machine whose INT8 GEMM runs on a faster ladder arm must model a
  // cheaper per-row forward — first-principles capacity plans follow the
  // dispatched kernel instead of a hard-coded constant.
  sim::MachineSpec slow = sim::MachineSpec::paper_server();
  slow.cpu_gemm = sim::CpuGemmSpec::measured(Isa::kScalar, 6.0);
  sim::MachineSpec fast = slow;
  fast.cpu_gemm = sim::CpuGemmSpec::measured(Isa::kAvx512Vnni, 150.0);
  sim::PpModelShape shape;
  const auto m_slow =
      ServiceModel::from_cost_model(sim::CostModel(slow), shape, 1);
  const auto m_fast =
      ServiceModel::from_cost_model(sim::CostModel(fast), shape, 1);
  EXPECT_GT(m_slow.params().hit_us_per_row, m_fast.params().hit_us_per_row);
  EXPECT_GT(m_fast.replica_capacity_rps(64, 1.0),
            m_slow.replica_capacity_rps(64, 1.0));
}

TEST(Calibrate, EditDistance) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("ud", "ud"), 0u);
  EXPECT_EQ(edit_distance("ud", "uud"), 1u);
  EXPECT_EQ(edit_distance("", "ud"), 2u);
  EXPECT_EQ(edit_distance("uudd", "dduu"), 4u);
}

// --- Service / cache models ---------------------------------------------

TEST(ServiceModel, CalibratedReproducesTheBaseline) {
  // A model calibrated to X parts/s must simulate one replica sustaining
  // ~X parts/s at the calibration hit rate: service time per mean batch
  // == mean_batch / baseline.
  const double baseline = 5000, mean_batch = 32, hit = 0.5;
  const auto m = ServiceModel::calibrated(baseline, mean_batch, 100, hit, 1);
  const double us =
      m.batch_service_us(static_cast<std::size_t>(mean_batch), hit, 1);
  EXPECT_NEAR(us, mean_batch / baseline * 1e6, 1e-6);
  EXPECT_NEAR(m.replica_capacity_rps(static_cast<std::size_t>(mean_batch),
                                     hit),
              baseline, 1.0);
  // Timesharing: 2 active replicas on 1 core run batches twice as long.
  EXPECT_NEAR(m.batch_service_us(32, hit, 2), 2 * us, 1e-6);
}

TEST(CacheModel, AnalyticHitRateIsDeterministicAndSharded) {
  // Steady hit rate grows with capacity and with shard count (ring
  // sharding multiplies effective capacity), and never exceeds 1.
  const double h1 = steady_hit_rate(100, 10000, 0.99, 1);
  const double h2 = steady_hit_rate(200, 10000, 0.99, 1);
  const double h1s2 = steady_hit_rate(100, 10000, 0.99, 2);
  EXPECT_GT(h1, 0);
  EXPECT_LT(h1, h2);
  EXPECT_DOUBLE_EQ(h2, h1s2);  // C rows x 2 shards == 2C rows x 1 shard
  EXPECT_LE(steady_hit_rate(10000, 10000, 0.99, 4), 1.0);

  // Warm-up: a cold cache climbs toward steady as batches flow through.
  CacheModelConfig cc;
  cc.capacity_rows = 500;
  cc.num_nodes = 10000;
  CacheModel cold(cc, /*warm_rows=*/0, /*shards=*/1);
  const double before = cold.hit_rate();
  for (int i = 0; i < 50; ++i) cold.on_batch(64);
  EXPECT_GT(cold.hit_rate(), before);
  EXPECT_LE(cold.hit_rate(), steady_hit_rate(500, 10000, 0.99, 1) + 1e-9);
}

}  // namespace
}  // namespace ppgnn::fleetsim
