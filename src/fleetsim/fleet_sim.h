// Discrete-event fleet simulator: replays an arrival trace (serve/trace.h)
// against the REAL serving policy objects in simulated time.
//
// What is real and what is modeled:
//
//   real (bit-identical with production)        modeled
//   ------------------------------------       -----------------------
//   AutoscalePolicy::on_tick + its guards      batch service time
//   ServerStats windowed gauges (SimClock)       (fleetsim/service_model.h)
//   HashRing / Router / split_by_ring          cache hit rate (CacheModel)
//   effective_deadline / least_slack_index     spawn build+warm latency
//   admission logic (MicroBatcher's order      core timesharing
//     of checks, re-implemented step for
//     step on sim queues — see fleet_sim.cpp)
//
// The simulator is single-threaded: a binary heap of timer events
// (dispatch-window closes, batch completions, controller ticks, spawn
// completions) interleaved with trace arrivals, all stamped on one
// SimClock that the policy objects read.  No dispatcher threads run —
// dispatch timing is the event loop's job — which is what lets hours of
// trace replay in seconds and makes every run bit-reproducible: identical
// config + trace => identical spawn/retire sequence, admission counts and
// latency sample, independent of host load or ctest parallelism.
//
// Fidelity boundaries worth knowing when reading results against a real
// run: per-part completion latencies live in a sim-local sample (only the
// POLICY-VISIBLE gauges — admission verdicts, queue delays, deadline
// misses — go through ServerStats, which is all AutoscalePolicy reads);
// compute is modeled at batch granularity, so intra-batch effects (cache
// line reuse, allocator noise) fold into the calibrated service model;
// and a shed_budget of zero degrades to capacity-bounded FIFO admission
// because blocking backpressure has no open-loop meaning in a replay.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "fleetsim/service_model.h"
#include "serve/autoscale.h"
#include "serve/micro_batcher.h"
#include "serve/router.h"
#include "serve/server_stats.h"
#include "serve/trace.h"
#include "tenancy/tenant.h"

namespace ppgnn::fleetsim {

struct SimFleetConfig {
  std::size_t initial_replicas = 1;
  serve::RoutingPolicy policy = serve::RoutingPolicy::kRoundRobin;
  // Batching/admission knobs; the clock field is ignored (the simulator
  // always injects its own SimClock).
  serve::MicroBatchConfig batch;
  serve::AutoscaleConfig autoscale;
  // Span of each replica's windowed gauges (FleetConfig.stats_window).
  std::chrono::milliseconds stats_window{500};
  // Modeled build + pre-warm latency of one spawn (scale_up blocks the
  // controller for this long, exactly like the real FleetManager's
  // synchronous build).
  std::chrono::milliseconds spawn_latency{30};
  // Rows a dynamic spawn starts resident (FleetConfig.warm_keys).
  std::size_t warm_keys = 512;
  // Fill fraction of the INITIAL replicas' caches (0 = cold start, which
  // is what a fresh bench run measures; 1 = steady state, what a
  // long-running deployment looks like).
  double initial_fill = 0.0;
  // Per-replica cache model (capacity 0 = uncached).
  CacheModelConfig cache;
  // Timeline sampling period; 0 disables sampling.
  std::chrono::milliseconds timeline_every{1000};
  // Tenant contracts: when set, arrivals pass the SAME TenantAdmission
  // token buckets (driven by the sim clock) and DWRR batch composition the
  // live fleet front runs, so a capacity plan can answer "does tenant B's
  // p99 survive tenant A blasting 10x quota" before anyone deploys.  Must
  // outlive the sim.  Null = pre-tenancy behavior (everything tenant 0,
  // unmetered, weight 1).
  const tenancy::TenantRegistry* tenants = nullptr;
};

struct SimEvent {
  double t_seconds = 0;
  bool spawned = false;
  std::uint64_t generation = 0;
  std::size_t replicas_after = 0;
  std::size_t warmed_keys = 0;
  double first_window_hit_rate = 0;
};

struct SimTimelinePoint {
  double t_seconds = 0;
  std::size_t replicas = 0;
  std::size_t queued = 0;
  std::size_t idle = 0;
};

struct SimResult {
  // Part-level counters (an n-node envelope is n parts), matching the
  // fleet's own accounting.
  std::size_t offered_parts = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t quota_refused = 0;  // refused at the tenant quota gate
  std::size_t shed = 0;  // admitted, then dropped pre-compute
  std::size_t answered = 0;
  std::size_t deadline_missed = 0;
  serve::LatencySummary admitted_latency;  // over answered parts
  double span_seconds = 0;    // first arrival -> last completion
  double answered_rps = 0;
  double shed_rate = 0;       // (rejected + shed) / offered
  std::size_t max_replicas_seen = 0;
  double replica_seconds = 0;
  double idle_replica_seconds = 0;
  double mean_hit_rate = 0;   // dispatched-row weighted
  double mean_batch = 0;
  std::vector<SimEvent> events;          // excludes the initial replicas
  std::vector<SimTimelinePoint> timeline;
  // Per-tenant slices (tenant-id ascending), pooled across all replicas —
  // the same TenantStat shape the live fleet's aggregate_tenants() emits,
  // so sim and measured isolation numbers compare field for field.  Empty
  // when the run saw only tenant 0 with no registry.
  std::vector<serve::TenantStat> tenants;
  double sim_wall_seconds = 0;  // real time the replay took

  // Spawn/retire sequence as one character per event: 'u' / 'd'.  The
  // calibration gate compares this against the measured ramp's sequence.
  std::string event_signature() const;
  std::string to_json() const;
};

class FleetSim {
 public:
  FleetSim(const SimFleetConfig& cfg, const ServiceModel& model);

  // Replays `trace` (arrivals must be time-ordered, as load_trace
  // guarantees) from a fresh fleet.  Each call starts over.
  SimResult run(const std::vector<serve::TraceEvent>& trace);

 private:
  SimFleetConfig cfg_;
  ServiceModel model_;
};

}  // namespace ppgnn::fleetsim
