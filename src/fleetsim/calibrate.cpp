#include "fleetsim/calibrate.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "serve/testbed.h"
#include "serve/workload.h"

namespace ppgnn::fleetsim {

namespace {

// Key-based scalar extraction from one flat bench record.  `found` (when
// given) reports whether the key was present; absent keys return `fallback`
// so records from older bench builds degrade to defaults instead of
// exploding.
double find_number(const std::string& rec, const std::string& key,
                   double fallback, bool* found = nullptr) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = rec.find(needle);
  if (found) *found = pos != std::string::npos;
  if (pos == std::string::npos) return fallback;
  return std::strtod(rec.c_str() + pos + needle.size(), nullptr);
}

std::string find_string(const std::string& rec, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = rec.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = rec.find('"', start);
  return end == std::string::npos ? std::string{}
                                  : rec.substr(start, end - start);
}

// 'u'/'d' signature from the record's events array, in emission order.
std::string event_signature_of(const std::string& rec) {
  std::string sig;
  const auto events_at = rec.find("\"events\":[");
  if (events_at == std::string::npos) return sig;
  const std::string needle = "\"action\":\"";
  for (auto pos = rec.find(needle, events_at); pos != std::string::npos;
       pos = rec.find(needle, pos + needle.size())) {
    const char c = rec[pos + needle.size()];
    sig.push_back(c == 's' ? 'u' : 'd');  // "spawn" / "retire"
  }
  return sig;
}

}  // namespace

const MeasuredKernel* BenchCalibration::dispatched_kernel() const {
  for (const MeasuredKernel& k : kernels) {
    if (k.active) return &k;
  }
  return kernels.empty() ? nullptr : &kernels.back();
}

BenchCalibration parse_bench_json(const std::string& json) {
  BenchCalibration c;
  bool have_config = false;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"section\":\"kernel_ladder\"") != std::string::npos) {
      MeasuredKernel k;
      k.isa = find_string(line, "isa");
      k.gemm_gops = find_number(line, "gemm_gops", 0);
      k.serve_rps = find_number(line, "serve_rps", 0);
      k.active = line.find("\"active\":true") != std::string::npos;
      c.kernels.push_back(std::move(k));
      continue;
    }
    if (line.find("\"section\":\"cross_process\"") != std::string::npos) {
      c.has_cross_process = true;
      c.xp_overhead_ratio = find_number(line, "overhead_ratio", 0);
      c.xp_frames_per_writev = find_number(line, "frames_per_writev", 0);
      c.xp_bytes_per_syscall = find_number(line, "bytes_per_syscall", 0);
      c.xp_pool_hit_rate = find_number(line, "pool_hit_rate", 0);
      c.xp_allocs_per_frame = find_number(line, "allocs_per_frame", 0);
      continue;
    }
    if (line.find("\"section\":\"autoscale_trace\"") == std::string::npos) {
      continue;
    }
    if (!have_config) {
      have_config = true;
      c.single_replica_rps = find_number(line, "single_replica_rps", 0);
      c.offered_mean_rps = find_number(line, "offered_mean_rps", 0);
      c.ramp_seconds = find_number(line, "ramp_seconds", 6);
      c.mean_batch = find_number(line, "mean_batch", 0);
      c.mean_dispatch_us = find_number(line, "dispatch_us", 0);
      c.cache_capacity_rows = static_cast<std::size_t>(
          find_number(line, "cache_capacity_rows", 0));
      c.nodes = static_cast<std::size_t>(find_number(line, "nodes", 20000));
      c.skew = find_number(line, "skew", 0.99);
      c.cores = std::max(1.0, find_number(line, "cores", 1));
      c.max_batch_size = static_cast<std::size_t>(
          find_number(line, "max_batch_size", 128));
      c.max_delay_us = find_number(line, "max_delay_us", 500);
      c.shed_budget_ms = find_number(line, "shed_budget_ms", 2);
      c.stats_window_ms = find_number(line, "stats_window_ms", 500);
      c.scale_up_shed = find_number(line, "scale_up_shed", 0.10);
      c.scale_down_idle = find_number(line, "scale_down_idle", 0.90);
      c.sustain_ms = find_number(line, "sustain_ms", 300);
      c.idle_window_ms = find_number(line, "idle_window_ms", 800);
      c.cooldown_ms = find_number(line, "cooldown_ms", 1000);
      c.tick_ms = find_number(line, "tick_ms", 50);
      c.warm_keys =
          static_cast<std::size_t>(find_number(line, "warm_keys", 512));
    }
    MeasuredArm arm;
    arm.fleet = find_string(line, "fleet");
    arm.autoscale = line.find("\"autoscale\":true") != std::string::npos;
    arm.min_replicas =
        static_cast<std::size_t>(find_number(line, "min_replicas", 1));
    arm.max_replicas =
        static_cast<std::size_t>(find_number(line, "max_replicas", 1));
    arm.answered_rps = find_number(line, "answered_rps", 0);
    arm.admitted_p99_us = find_number(line, "admitted_p99_us", 0);
    arm.shed_rate = find_number(line, "shed_rate", 0);
    arm.max_replicas_seen =
        static_cast<std::size_t>(find_number(line, "max_replicas_seen", 0));
    arm.replica_seconds = find_number(line, "replica_seconds", 0);
    arm.event_signature = event_signature_of(line);
    // The bench's events array opens with the initial build (one spawn per
    // starting replica, at t=0); SimResult.events records dynamic
    // membership changes only.  Strip the leading initial spawns so the
    // two signatures compare like for like.
    std::size_t lead = 0;
    while (lead < arm.min_replicas && lead < arm.event_signature.size() &&
           arm.event_signature[lead] == 'u') {
      ++lead;
    }
    arm.event_signature.erase(0, lead);
    // The fixed-min arm's hit rate anchors the cache model: one replica,
    // one shard, no membership churn mixing warm-up regimes.
    if (!arm.autoscale && arm.min_replicas == 1) {
      c.cache_hit_rate = find_number(line, "cache_hit_rate", 0);
    }
    c.arms.push_back(std::move(arm));
  }
  if (!have_config) {
    throw std::runtime_error(
        "parse_bench_json: no autoscale_trace record (run "
        "bench_serving_latency with --json first)");
  }
  if (c.single_replica_rps <= 0 || c.mean_batch <= 0) {
    throw std::runtime_error(
        "parse_bench_json: autoscale_trace record lacks calibration "
        "anchors (single_replica_rps / mean_batch) — bench too old");
  }
  return c;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

CalibrationReport run_calibration(const BenchCalibration& calib,
                                  const CalibrationTolerance& tol) {
  const ServiceModel model = ServiceModel::calibrated(
      calib.single_replica_rps, calib.mean_batch, calib.mean_dispatch_us,
      calib.cache_hit_rate, calib.cores);

  CalibrationReport report;
  report.model = model.params();
  if (const MeasuredKernel* k = calib.dispatched_kernel()) {
    report.kernel_isa = k->isa;
    report.kernel_gemm_gops = k->gemm_gops;
  }
  report.has_cross_process = calib.has_cross_process;
  report.rpc_overhead_ratio = calib.xp_overhead_ratio;
  report.rpc_frames_per_writev = calib.xp_frames_per_writev;
  report.rpc_pool_hit_rate = calib.xp_pool_hit_rate;
  report.rpc_allocs_per_frame = calib.xp_allocs_per_frame;
  // Measured-over-analytic hit correction: the analytic formula assumes a
  // static top-C cache at steady state; the measured run was an LRU from
  // cold.  The ratio folds both gaps into one scale.
  const double analytic = steady_hit_rate(calib.cache_capacity_rows,
                                          calib.nodes, calib.skew, 1);
  report.cache_hit_scale =
      analytic > 0 && calib.cache_hit_rate > 0
          ? std::clamp(calib.cache_hit_rate / analytic, 0.1, 1.5)
          : 1.0;

  // The same staged ramp the bench paced, as a deterministic trace: all
  // kHigh, single-node, no deadlines (drive_ramp's legacy try_submit).
  serve::TraceMixConfig mix;
  mix.num_nodes = calib.nodes;
  mix.skew = calib.skew;
  mix.seed = 53;  // the bench ramp stream's seed; only the node draw uses it
  const double baseline = calib.single_replica_rps;
  const double span = calib.ramp_seconds;
  const auto trace = serve::trace_from_rate(mix, span, [&](double t) {
    const int phase = std::min(2, static_cast<int>(3.0 * t / span));
    return serve::StagedRampPacer::kPhaseMult[phase] * baseline;
  });

  SimFleetConfig base;
  base.policy = serve::RoutingPolicy::kCacheAffinity;
  base.batch.max_batch_size = calib.max_batch_size;
  base.batch.max_delay = std::chrono::microseconds(
      static_cast<std::int64_t>(calib.max_delay_us));
  base.batch.shed_budget = std::chrono::microseconds(
      static_cast<std::int64_t>(calib.shed_budget_ms * 1000));
  base.stats_window = std::chrono::milliseconds(
      static_cast<std::int64_t>(calib.stats_window_ms));
  base.warm_keys = calib.warm_keys;
  base.initial_fill = 0;  // the bench fleets start cold
  base.cache.capacity_rows = calib.cache_capacity_rows;
  base.cache.num_nodes = calib.nodes;
  base.cache.skew = calib.skew;
  base.cache.hit_scale = report.cache_hit_scale;
  base.timeline_every = std::chrono::milliseconds(0);
  base.autoscale.scale_up_shed = calib.scale_up_shed;
  base.autoscale.scale_down_idle = calib.scale_down_idle;
  base.autoscale.sustain = std::chrono::milliseconds(
      static_cast<std::int64_t>(calib.sustain_ms));
  base.autoscale.idle_window = std::chrono::milliseconds(
      static_cast<std::int64_t>(calib.idle_window_ms));
  base.autoscale.cooldown = std::chrono::milliseconds(
      static_cast<std::int64_t>(calib.cooldown_ms));
  base.autoscale.tick =
      std::chrono::milliseconds(static_cast<std::int64_t>(calib.tick_ms));

  report.pass = true;
  for (const MeasuredArm& arm : calib.arms) {
    SimFleetConfig cfg = base;
    cfg.initial_replicas = arm.min_replicas;
    cfg.autoscale.enabled = arm.autoscale;
    cfg.autoscale.min_replicas = arm.min_replicas;
    cfg.autoscale.max_replicas = arm.max_replicas;
    const SimResult sim = FleetSim(cfg, model).run(trace);

    ArmCheck check;
    check.fleet = arm.fleet;
    check.measured_rps = arm.answered_rps;
    check.sim_rps = sim.answered_rps;
    check.rps_ratio =
        arm.answered_rps > 0 ? sim.answered_rps / arm.answered_rps : 0;
    check.measured_p99_us = arm.admitted_p99_us;
    check.sim_p99_us = sim.admitted_latency.p99_us;
    check.p99_ratio = arm.admitted_p99_us > 0
                          ? sim.admitted_latency.p99_us / arm.admitted_p99_us
                          : 0;
    check.measured_events = arm.event_signature;
    check.sim_events = sim.event_signature();
    check.event_edits =
        edit_distance(check.measured_events, check.sim_events);
    check.pass = check.rps_ratio >= tol.rps_lo &&
                 check.rps_ratio <= tol.rps_hi &&
                 check.p99_ratio >= tol.p99_lo &&
                 check.p99_ratio <= tol.p99_hi &&
                 check.event_edits <= tol.max_event_edits;
    report.pass = report.pass && check.pass;
    report.arms.push_back(std::move(check));
  }
  return report;
}

std::string CalibrationReport::to_json(
    const CalibrationTolerance& tol) const {
  std::ostringstream os;
  os << "{\"model\":{\"batch_overhead_us\":" << model.batch_overhead_us
     << ",\"hit_us_per_row\":" << model.hit_us_per_row
     << ",\"miss_extra_us_per_row\":" << model.miss_extra_us_per_row
     << ",\"cores\":" << model.cores << "}"
     << ",\"kernel\":{\"isa\":\"" << kernel_isa
     << "\",\"gemm_gops\":" << kernel_gemm_gops << "}";
  if (has_cross_process) {
    os << ",\"cross_process\":{\"overhead_ratio\":" << rpc_overhead_ratio
       << ",\"frames_per_writev\":" << rpc_frames_per_writev
       << ",\"pool_hit_rate\":" << rpc_pool_hit_rate
       << ",\"allocs_per_frame\":" << rpc_allocs_per_frame << "}";
  }
  os << ",\"cache_hit_scale\":" << cache_hit_scale
     << ",\"tolerance\":{\"rps\":[" << tol.rps_lo << "," << tol.rps_hi
     << "],\"p99\":[" << tol.p99_lo << "," << tol.p99_hi
     << "],\"max_event_edits\":" << tol.max_event_edits << "},\"arms\":[";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmCheck& a = arms[i];
    if (i) os << ",";
    os << "{\"fleet\":\"" << a.fleet << "\",\"measured_rps\":"
       << a.measured_rps << ",\"sim_rps\":" << a.sim_rps
       << ",\"rps_ratio\":" << a.rps_ratio
       << ",\"measured_p99_us\":" << a.measured_p99_us
       << ",\"sim_p99_us\":" << a.sim_p99_us
       << ",\"p99_ratio\":" << a.p99_ratio << ",\"measured_events\":\""
       << a.measured_events << "\",\"sim_events\":\"" << a.sim_events
       << "\",\"event_edits\":" << a.event_edits
       << ",\"pass\":" << (a.pass ? "true" : "false") << "}";
  }
  os << "],\"pass\":" << (pass ? "true" : "false") << "}";
  return os.str();
}

}  // namespace ppgnn::fleetsim
