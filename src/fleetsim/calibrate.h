// Calibration gate: does the simulator reproduce what the machine
// actually measured?
//
// bench_serving_latency section 5 drives three real fleets (fixed-min,
// fixed-max, autoscale) through the staged ramp (0.5x -> 2.5x -> 0.5x of
// single-replica saturation) and emits one `autoscale_trace` record per
// arm into BENCH_serving.json — including everything needed to replay the
// run offline: the service-rate anchors (single_replica_rps, mean batch,
// dispatch gauge, hit rate), the workload shape, and the full policy
// constants.  This module parses those records, builds a calibrated
// ServiceModel + CacheModel, replays the SAME ramp through FleetSim, and
// compares arm by arm:
//
//   * answered throughput: sim/measured within [tol.rps_lo, tol.rps_hi]
//   * admitted p99:        sim/measured within [tol.p99_lo, tol.p99_hi]
//   * spawn/retire events: edit distance between the simulated and the
//     measured 'u'/'d' sequences <= tol.max_event_edits
//
// The tolerances are deliberately wide on latency (a queueing tail is the
// most model-sensitive statistic there is) and tight on the event
// sequence (the policy decisions are the thing the simulator exists to
// predict; it runs the REAL policy, so getting them wrong means the
// modeled signals fed it wrong inputs).  The report is written to
// SIM_calibration.json by fleetsim_cli --calibrate and uploaded next to
// BENCH_serving.json by CI on every leg, so model drift shows up as a red
// calibration artifact, not as silently wrong capacity plans.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fleetsim/fleet_sim.h"

namespace ppgnn::fleetsim {

// One measured autoscale_trace record (bench section 5 arm).
struct MeasuredArm {
  std::string fleet;  // "fixed-min(1)" | "fixed-max(4)" | "autoscale"
  bool autoscale = false;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 1;
  double answered_rps = 0;
  double admitted_p99_us = 0;
  double shed_rate = 0;
  std::size_t max_replicas_seen = 0;
  double replica_seconds = 0;
  std::string event_signature;  // 'u'/'d' per spawn/retire, in order
};

// One measured kernel_ladder record (bench section 8): the micro GEMM
// rate of one ladder arm on the serving Linear shape, plus whether that
// arm is the one the serving run actually dispatched to.
struct MeasuredKernel {
  std::string isa;         // "scalar" | "sse2" | "avx2" | "avx512vnni"
  double gemm_gops = 0;    // 2*m*k*n / seconds / 1e9 on the bench shape
  double serve_rps = 0;    // end-to-end int8 serving throughput, forced arm
  bool active = false;     // the arm the unforced dispatch picks here
};

// Everything the bench emitted that the replay needs.
struct BenchCalibration {
  double single_replica_rps = 0;
  double offered_mean_rps = 0;
  double ramp_seconds = 0;
  double mean_batch = 0;
  double mean_dispatch_us = 0;
  double cache_hit_rate = 0;     // fixed-min arm's measured aggregate
  std::size_t cache_capacity_rows = 0;
  std::size_t nodes = 0;
  double skew = 0.99;
  double cores = 1;
  std::size_t max_batch_size = 128;
  double max_delay_us = 500;
  double shed_budget_ms = 2;
  double stats_window_ms = 500;
  double scale_up_shed = 0.10;
  double scale_down_idle = 0.90;
  double sustain_ms = 300;
  double idle_window_ms = 800;
  double cooldown_ms = 1000;
  double tick_ms = 50;
  std::size_t warm_keys = 512;
  // Cross-process record (bench section 7), absent in older bench files:
  // the wire tax and the writev fast-path counters that price
  // sim::RpcSpec::measured() for cross-process capacity plans.
  bool has_cross_process = false;
  double xp_overhead_ratio = 0;     // in-process rps / cross-process rps
  double xp_frames_per_writev = 0;  // coalescing factor the fast path hit
  double xp_bytes_per_syscall = 0;
  double xp_pool_hit_rate = 0;
  double xp_allocs_per_frame = 0;
  std::vector<MeasuredArm> arms;
  // Per-ISA GEMM table (kernel_ladder records), possibly empty when the
  // bench predates the ladder.  dispatched_kernel() picks the active row.
  std::vector<MeasuredKernel> kernels;
  // The table row the serving run dispatched to, or nullptr.
  const MeasuredKernel* dispatched_kernel() const;
};

// Parses the autoscale_trace records out of a BENCH_serving.json payload
// (the whole file contents — a JSON array of flat records).  Throws
// std::runtime_error when no autoscale_trace record is present.  The
// scanner is key-based, matching the bench's known flat emission — not a
// general JSON parser.
BenchCalibration parse_bench_json(const std::string& json);

struct CalibrationTolerance {
  double rps_lo = 0.6, rps_hi = 1.5;    // sim/measured answered throughput
  double p99_lo = 0.25, p99_hi = 4.0;   // sim/measured admitted p99
  std::size_t max_event_edits = 2;      // spawn/retire sequence edit dist
};

struct ArmCheck {
  std::string fleet;
  double measured_rps = 0, sim_rps = 0, rps_ratio = 0;
  double measured_p99_us = 0, sim_p99_us = 0, p99_ratio = 0;
  std::string measured_events, sim_events;
  std::size_t event_edits = 0;
  bool pass = false;
};

struct CalibrationReport {
  ServiceModelParams model;
  double cache_hit_scale = 1.0;
  std::vector<ArmCheck> arms;
  bool pass = false;
  // The dispatched kernel-ladder arm and its measured GEMM rate, carried
  // from the bench's kernel_ladder table (empty isa when the bench had
  // none).  This is the sim::CpuGemmSpec::measured() input: the cost
  // model's INT8 rate comes from this record, not a hard-coded constant,
  // so first-principles capacity plans track the kernel the fleet runs.
  std::string kernel_isa;
  double kernel_gemm_gops = 0;
  // Carried from the bench's cross_process record (informational — not
  // folded into `pass`, so a loaded CI machine's wire-tax wobble cannot
  // fail the calibration gate): the measured RPC overhead ratio and the
  // coalescing factor sim::RpcSpec::measured() consumes.
  bool has_cross_process = false;
  double rpc_overhead_ratio = 0;
  double rpc_frames_per_writev = 0;
  double rpc_pool_hit_rate = 0;
  double rpc_allocs_per_frame = 0;
  std::string to_json(const CalibrationTolerance& tol) const;
};

// Levenshtein distance over the 'u'/'d' event strings.
std::size_t edit_distance(const std::string& a, const std::string& b);

// Builds the calibrated models from `calib`, replays the staged ramp per
// measured arm, and gates each against `tol`.
CalibrationReport run_calibration(const BenchCalibration& calib,
                                  const CalibrationTolerance& tol);

}  // namespace ppgnn::fleetsim
