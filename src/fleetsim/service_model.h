// Per-replica service-time and cache-occupancy models for the fleet
// simulator.
//
// The simulator replays real POLICY code (AutoscalePolicy, slack
// arithmetic, ring routing, windowed gauges) but must model the
// MECHANISM — how long a dispatched batch takes and how often a row hits
// the replica's cache.  Two constructors for the service model:
//
//  * calibrated(): from a measured BENCH_serving.json leg — the
//    machine-relative path the CI calibration gate uses.  The measured
//    single-replica saturated throughput pins total service time per
//    batch; the measured dispatch gauge splits off the per-batch
//    overhead; the measured hit rate splits the per-row remainder into a
//    hit cost and a miss surcharge (a miss re-reads and decodes the row:
//    `miss_cost_ratio` times the hit cost, a first-order stand-in the
//    calibration absorbs into the split).
//
//  * from_cost_model(): first principles via sim::CostModel — host gather
//    bandwidth for resident rows, ssd_random_read for misses, and the
//    forward share priced at the machine's INT8 kernel-ladder rate
//    (sim::CpuGemmSpec: the dispatched arm's default table entry or a
//    measured kernel_ladder record) — for capacity planning on hardware
//    nobody has benchmarked yet (the MLSYSIM use case).
//
// Replicas in this repo are threads in one process, so N active replicas
// timeshare `cores` physical cores: batch service time scales by
// max(1, active/cores).  That term is what makes the simulated autoscale
// arm agree with measurement on a 1-core CI runner (where a spawn adds
// cache capacity, not FLOPs) AND on multi-core boxes.
//
// The cache model is analytic, not a per-row LRU replay: a Zipf(s) stream
// over n nodes sharded R ways gives a shard's cache of C rows a
// steady-state hit rate of H(min(C*R, n), s) / H(n, s) (the popularity
// mass of the ranks the shard's top-C covers — ring sharding thins ranks
// uniformly, so R shards multiply effective capacity).  Warm-up scales
// that by the fill fraction, which grows with modeled misses; spawned
// replicas start at their warm_keys fill.  Analytic hit rates keep the
// simulator O(1) per batch and — deliberately — seed-independent, which
// is what makes spawn/retire sequences reproducible across seeds.
#pragma once

#include <cstddef>

#include "sim/cost_model.h"

namespace ppgnn::fleetsim {

struct ServiceModelParams {
  double batch_overhead_us = 120;  // per-dispatch fixed cost
  double hit_us_per_row = 4.0;     // gather + forward, cache-resident row
  double miss_extra_us_per_row = 8.0;  // surcharge for a missed row
  double cores = 1;                // physical cores the replicas timeshare
};

class ServiceModel {
 public:
  explicit ServiceModel(const ServiceModelParams& p);

  // Machine-relative calibration (see header comment).  `baseline_rps` is
  // the measured single-replica saturated part rate, `mean_batch` the
  // measured mean dispatched batch size, `mean_dispatch_us` the measured
  // batch-close -> compute-start gauge, `hit_rate` the measured aggregate
  // cache hit rate of that run.
  static ServiceModel calibrated(double baseline_rps, double mean_batch,
                                 double mean_dispatch_us, double hit_rate,
                                 double cores, double miss_cost_ratio = 2.0);

  // First-principles construction from the training-side cost model.
  static ServiceModel from_cost_model(const sim::CostModel& cm,
                                      const sim::PpModelShape& shape,
                                      double cores);

  // Service time (microseconds) of one dispatched batch of `batch` rows at
  // the replica's current `hit_rate`, with `active_replicas` sharing the
  // core budget.
  double batch_service_us(std::size_t batch, double hit_rate,
                          std::size_t active_replicas) const;

  // Part rate one replica sustains alone at `hit_rate` with batches of
  // `batch` — the planner's quick feasibility screen.
  double replica_capacity_rps(std::size_t batch, double hit_rate) const;

  const ServiceModelParams& params() const { return p_; }

 private:
  ServiceModelParams p_;
};

// Popularity mass of the top `top` ranks of Zipf(skew) over `num_nodes`:
// H(min(top, n), skew) / H(n, skew).
double zipf_top_mass(std::size_t top, std::size_t num_nodes, double skew);

// Steady-state hit rate of one shard's C-row cache when the key space is
// ring-sharded `shards` ways (see header comment).
double steady_hit_rate(std::size_t capacity_rows, std::size_t num_nodes,
                       double skew, std::size_t shards);

struct CacheModelConfig {
  std::size_t capacity_rows = 0;  // 0 = uncached, hit rate is always 0
  std::size_t num_nodes = 1;
  double skew = 0.99;
  // Multiplier on the analytic steady hit rate (measured / analytic from
  // calibration; LRU under Zipf sits a little below the static-top-C
  // optimum the formula assumes).  Clamped so hit rates stay in [0, 1].
  double hit_scale = 1.0;
};

// One replica's cache occupancy.  Deterministic: fill grows by the
// modeled miss count, never by sampled keys.
class CacheModel {
 public:
  // `warm_rows` pre-filled at activation (FleetConfig.warm_keys for a
  // dynamic spawn; capacity for a pre-warmed initial replica).
  CacheModel(const CacheModelConfig& cfg, std::size_t warm_rows,
             std::size_t shards);

  double hit_rate() const;
  // Folds one dispatched batch of `rows` in: misses fill the cache.
  void on_batch(std::size_t rows);
  // Membership changed: the shard count moves the steady-state target.
  void set_shards(std::size_t shards);
  double fill() const;  // resident / capacity in [0, 1]

 private:
  CacheModelConfig cfg_;
  std::size_t shards_;
  double steady_;    // cached steady_hit_rate * hit_scale
  double resident_;  // modeled resident rows
};

}  // namespace ppgnn::fleetsim
