#include "fleetsim/service_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppgnn::fleetsim {

ServiceModel::ServiceModel(const ServiceModelParams& p) : p_(p) {
  if (p_.cores < 1) p_.cores = 1;
  if (p_.batch_overhead_us < 0 || p_.hit_us_per_row <= 0 ||
      p_.miss_extra_us_per_row < 0) {
    throw std::invalid_argument("ServiceModel: nonpositive cost");
  }
}

ServiceModel ServiceModel::calibrated(double baseline_rps, double mean_batch,
                                      double mean_dispatch_us, double hit_rate,
                                      double cores, double miss_cost_ratio) {
  if (baseline_rps <= 0 || mean_batch <= 0) {
    throw std::invalid_argument(
        "ServiceModel::calibrated: baseline_rps and mean_batch must be > 0");
  }
  hit_rate = std::clamp(hit_rate, 0.0, 1.0);
  // At saturation one replica dispatches back to back, so the measured
  // part rate pins the whole batch service time; the dispatch gauge is
  // the per-batch share, the rest is per-row.
  const double service_per_batch_us = mean_batch / baseline_rps * 1e6;
  const double overhead_us =
      std::min(std::max(0.0, mean_dispatch_us), 0.5 * service_per_batch_us);
  const double per_row_us = (service_per_batch_us - overhead_us) / mean_batch;
  // per_row = hit + (1-h)*miss_extra with miss_extra = ratio * hit.
  const double hit_us =
      per_row_us / (1.0 + (1.0 - hit_rate) * std::max(0.0, miss_cost_ratio));
  ServiceModelParams p;
  p.batch_overhead_us = overhead_us;
  p.hit_us_per_row = std::max(1e-3, hit_us);
  p.miss_extra_us_per_row = std::max(0.0, miss_cost_ratio) * p.hit_us_per_row;
  p.cores = cores;
  return ServiceModel(p);
}

ServiceModel ServiceModel::from_cost_model(const sim::CostModel& cm,
                                           const sim::PpModelShape& shape,
                                           double cores) {
  const std::size_t row_bytes = shape.row_bytes();
  constexpr std::size_t kRefBatch = 64;
  // Replicas in this repo serve on the CPU: the forward pass is the INT8
  // kernel-ladder GEMM, so price it off the machine's CpuGemmSpec (which
  // arm the dispatch picked — or a measured kernel_ladder table entry —
  // see sim/hardware.h) rather than the GPU training numbers.  Forward
  // FLOPs are the forward third of the train model; evaluating one fused
  // GEMM of that op count at a reference batch amortizes the per-call
  // floor the way the real batcher does.
  const double fwd_ops = shape.train_flops(kRefBatch) / 3.0;
  const std::size_t eq_k = std::max<std::size_t>(
      1, static_cast<std::size_t>(fwd_ops / (2.0 * kRefBatch)));
  const double fwd_batch_s = cm.cpu_gemm_s8(kRefBatch, eq_k, 1);
  ServiceModelParams p;
  p.hit_us_per_row =
      1e6 * (cm.host_assembly_fused(1, row_bytes) +
             fwd_batch_s / static_cast<double>(kRefBatch));
  p.miss_extra_us_per_row = 1e6 * cm.ssd_random_read(1, row_bytes);
  // Dispatch bookkeeping is sub-dominant and not in the cost model; a
  // fixed small constant keeps tiny batches from looking free.
  p.batch_overhead_us = 100;
  p.cores = cores;
  return ServiceModel(p);
}

double ServiceModel::batch_service_us(std::size_t batch, double hit_rate,
                                      std::size_t active_replicas) const {
  hit_rate = std::clamp(hit_rate, 0.0, 1.0);
  const double rows = static_cast<double>(batch);
  const double us =
      p_.batch_overhead_us +
      rows * (p_.hit_us_per_row +
              (1.0 - hit_rate) * p_.miss_extra_us_per_row);
  const double slowdown =
      std::max(1.0, static_cast<double>(std::max<std::size_t>(
                        active_replicas, 1)) /
                        p_.cores);
  return us * slowdown;
}

double ServiceModel::replica_capacity_rps(std::size_t batch,
                                          double hit_rate) const {
  const double us = batch_service_us(batch, hit_rate, 1);
  return us > 0 ? static_cast<double>(batch) / (us * 1e-6) : 0.0;
}

double zipf_top_mass(std::size_t top, std::size_t num_nodes, double skew) {
  if (num_nodes == 0) return 0.0;
  top = std::min(top, num_nodes);
  double head = 0, total = 0;
  for (std::size_t r = 1; r <= num_nodes; ++r) {
    const double w = std::pow(static_cast<double>(r), -skew);
    total += w;
    if (r <= top) head += w;
  }
  return total > 0 ? head / total : 0.0;
}

double steady_hit_rate(std::size_t capacity_rows, std::size_t num_nodes,
                       double skew, std::size_t shards) {
  if (capacity_rows == 0 || num_nodes == 0) return 0.0;
  shards = std::max<std::size_t>(shards, 1);
  // A shard sees every shards-th rank, so its top-C covers global ranks up
  // to C * shards — sharding multiplies effective capacity.
  const std::size_t reach = capacity_rows >= num_nodes / shards
                                ? num_nodes
                                : capacity_rows * shards;
  return zipf_top_mass(reach, num_nodes, skew);
}

CacheModel::CacheModel(const CacheModelConfig& cfg, std::size_t warm_rows,
                       std::size_t shards)
    : cfg_(cfg),
      shards_(std::max<std::size_t>(shards, 1)),
      steady_(0),
      resident_(static_cast<double>(
          std::min(warm_rows, cfg.capacity_rows))) {
  set_shards(shards_);
}

void CacheModel::set_shards(std::size_t shards) {
  shards_ = std::max<std::size_t>(shards, 1);
  steady_ = std::clamp(
      cfg_.hit_scale *
          steady_hit_rate(cfg_.capacity_rows, cfg_.num_nodes, cfg_.skew,
                          shards_),
      0.0, 1.0);
}

double CacheModel::hit_rate() const {
  if (cfg_.capacity_rows == 0) return 0.0;
  return steady_ * std::min(1.0, resident_ /
                                     static_cast<double>(cfg_.capacity_rows));
}

void CacheModel::on_batch(std::size_t rows) {
  if (cfg_.capacity_rows == 0) return;
  const double misses = static_cast<double>(rows) * (1.0 - hit_rate());
  resident_ = std::min(static_cast<double>(cfg_.capacity_rows),
                       resident_ + misses);
}

double CacheModel::fill() const {
  if (cfg_.capacity_rows == 0) return 0.0;
  return std::min(1.0,
                  resident_ / static_cast<double>(cfg_.capacity_rows));
}

}  // namespace ppgnn::fleetsim
