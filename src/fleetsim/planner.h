// Capacity planner: sweep fleet configurations over one trace and pick
// the cheapest that meets the SLO.
//
// "Cheapest" is replica-seconds — the integral of fleet size over the
// replay, which is what a per-replica-hour bill charges.  A fixed fleet
// of N costs N * span; the autoscale arm's cost is whatever its spawn /
// retire sequence integrates to, which is the whole point of simulating
// it instead of max-provisioning.  Feasibility is judged on answered-work
// quality: admitted p99 within the target AND the shed rate (door rejects
// + queue sheds, the work that never got an answer) within its cap —
// p99 alone can be bought by refusing everything hard, which is why both
// gates exist (same reasoning as ServerStats' admission counters).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fleetsim/fleet_sim.h"

namespace ppgnn::fleetsim {

struct PlanTarget {
  double p99_ms = 5.0;        // admitted-latency p99 ceiling
  double max_shed_rate = 0.01;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 8;
  bool try_autoscale = true;  // also sweep the autoscale arm
};

struct PlanArm {
  std::string name;           // "fixed-2", "autoscale"
  std::size_t replicas = 0;   // fixed size; 0 for the autoscale arm
  bool feasible = false;
  SimResult result;
  double cost_replica_seconds = 0;
};

struct CapacityPlan {
  std::vector<PlanArm> arms;  // sweep order: fixed min..max, then autoscale
  // Index of the cheapest feasible arm in `arms`, or SIZE_MAX when the
  // target is unattainable within the sweep bounds.
  std::size_t best = SIZE_MAX;

  bool attainable() const { return best != SIZE_MAX; }
  const PlanArm* best_arm() const {
    return attainable() ? &arms[best] : nullptr;
  }
  // Full plan as one JSON object (per-arm results + the verdict).
  std::string to_json(const PlanTarget& target) const;
};

// Replays `trace` once per candidate configuration.  `base` supplies the
// batching/cache/spawn knobs; the sweep overrides initial_replicas and
// the autoscale block (fixed arms run with autoscaling disabled; the
// autoscale arm runs base.autoscale with enabled=true and the target's
// replica bounds).
CapacityPlan plan_capacity(const SimFleetConfig& base,
                           const ServiceModel& model,
                           const std::vector<serve::TraceEvent>& trace,
                           const PlanTarget& target);

}  // namespace ppgnn::fleetsim
