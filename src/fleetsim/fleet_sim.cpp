#include "fleetsim/fleet_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "serve/clock.h"
#include "serve/router.h"
#include "tenancy/admission.h"
#include "tenancy/fair_share.h"

namespace ppgnn::fleetsim {

namespace {

using serve::Priority;
using Tp = std::chrono::steady_clock::time_point;
using Dur = std::chrono::steady_clock::duration;

Tp us_to_tp(std::uint64_t t_us) {
  return Tp(std::chrono::duration_cast<Dur>(std::chrono::microseconds(t_us)));
}

double tp_seconds(Tp t) {
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// One queued envelope part.  Mirrors MicroBatcher::Pending minus the
// shared RequestState — the sim answers nobody, it only accounts.
struct SimPart {
  std::int64_t node = 0;
  Tp enqueued{};
  Tp deadline = Tp::max();  // explicit; max() = none
  std::uint32_t tenant = 0;
};

// One priority class's queue, mirroring MicroBatcher::ClassQueue: per-
// tenant FIFO sub-queues drained by the REAL DwrrScheduler, so the sim's
// batch composition is bit-identical with the threaded batcher's.
struct SimClassQueue {
  std::map<std::uint32_t, std::deque<SimPart>> by_tenant;
  tenancy::DwrrScheduler sched;
  std::size_t size = 0;
  bool empty() const { return size == 0; }

  void push(SimPart&& p) {
    auto& dq = by_tenant[p.tenant];
    if (dq.empty()) sched.arm(p.tenant);
    dq.push_back(std::move(p));
    ++size;
  }
  template <typename WeightFn>
  SimPart pop(WeightFn&& weight_of) {
    const std::uint32_t t = sched.next(weight_of);
    const auto it = by_tenant.find(t);
    SimPart p = std::move(it->second.front());
    it->second.pop_front();
    const bool now_empty = it->second.empty();
    if (now_empty) by_tenant.erase(it);
    sched.note_popped(t, now_empty);
    --size;
    return p;
  }
};

// One replica: the REAL ServerStats recorder (on the sim clock) plus the
// modeled queue/cache/service state that stands in for the MicroBatcher's
// dispatcher thread.
struct SimReplica {
  std::uint64_t generation = 0;
  std::unique_ptr<serve::ServerStats> stats;
  CacheModel cache;
  SimClassQueue queues[2];  // indexed by Priority (kHigh=0)
  // Earliest effective deadline among queued kLow parts (MicroBatcher's
  // low_next_expiry_): keeps the arrival sweep O(1) when nothing expired.
  Tp low_next_expiry = Tp::max();
  std::size_t in_service = 0;
  bool busy = false;
  bool draining = false;
  bool retired = false;
  bool timer_pending = false;  // a dispatch timer is in the heap
  Tp activated_at{};
  Tp retired_at{};
  std::size_t warmed_keys = 0;
  double busy_seconds = 0;

  SimReplica(std::uint64_t gen, std::chrono::milliseconds window,
             const serve::Clock* clock, const CacheModelConfig& cache_cfg,
             std::size_t warm_rows, std::size_t shards)
      : generation(gen),
        stats(std::make_unique<serve::ServerStats>(window, clock)),
        cache(cache_cfg, warm_rows, shards) {}

  std::size_t queued() const { return queues[0].size + queues[1].size; }
  std::size_t queue_depth() const { return queued() + in_service; }
  // Oldest arrival across every tenant sub-queue of both classes (each
  // sub-queue is FIFO, so its front is its oldest) — mirrors the
  // batcher's oldest_enqueued_locked.
  Tp oldest_enqueued() const {
    Tp oldest = Tp::max();
    for (const auto& cq : queues) {
      for (const auto& [t, dq] : cq.by_tenant) {
        oldest = std::min(oldest, dq.front().enqueued);
      }
    }
    return oldest;
  }
};

enum class EvKind : std::uint8_t {
  kArrival,       // a = trace index
  kDispatch,      // a = replica index: batch window closed
  kCompletion,    // a = replica index: in-service batch finished
  kTick,          // controller tick
  kSpawnDone,     // scale_up build finished
  kTimeline
};

struct Ev {
  Tp t{};
  std::uint64_t seq = 0;  // FIFO among simultaneous events => determinism
  EvKind kind = EvKind::kArrival;
  std::size_t a = 0;
};

struct EvLater {
  bool operator()(const Ev& x, const Ev& y) const {
    if (x.t != y.t) return x.t > y.t;
    return x.seq > y.seq;
  }
};

class Sim {
 public:
  Sim(const SimFleetConfig& cfg, const ServiceModel& model,
      const std::vector<serve::TraceEvent>& trace)
      : cfg_(cfg), model_(model), trace_(trace) {
    if (cfg_.initial_replicas == 0) {
      throw std::invalid_argument("FleetSim: initial_replicas must be > 0");
    }
    if (cfg_.batch.max_batch_size == 0 || cfg_.batch.queue_capacity == 0) {
      throw std::invalid_argument("FleetSim: zero batch size or capacity");
    }
    router_ = serve::make_router(cfg_.policy);
    if (cfg_.autoscale.enabled) {
      policy_ = std::make_unique<serve::AutoscalePolicy>(cfg_.autoscale);
    }
    if (cfg_.tenants) {
      // The REAL token-bucket gate, fed the sim clock's timestamps — the
      // admit/refuse sequence is bit-identical with the live front's.
      admission_ = std::make_unique<tenancy::TenantAdmission>(*cfg_.tenants,
                                                             &clock_);
    }
  }

  SimResult run() {
    const auto wall_start = std::chrono::steady_clock::now();
    // Initial fleet, like FleetManager's constructor: all replicas active
    // at t=0, caches at the configured initial fill.
    const std::size_t init_warm = static_cast<std::size_t>(
        cfg_.initial_fill *
        static_cast<double>(cfg_.cache.capacity_rows));
    for (std::size_t i = 0; i < cfg_.initial_replicas; ++i) {
      reps_.emplace_back(next_generation_++, cfg_.stats_window, &clock_,
                         cfg_.cache, init_warm, 1);
      reps_.back().activated_at = clock_.now();
      members_.push_back(i);
    }
    in_flight_.resize(reps_.size());
    service_started_.resize(reps_.size());
    publish_membership();
    if (policy_) push(clock_.now() + cfg_.autoscale.tick, EvKind::kTick);
    if (cfg_.timeline_every.count() > 0) {
      push(clock_.now(), EvKind::kTimeline);
    }
    if (!trace_.empty()) {
      push(us_to_tp(trace_[0].t_us), EvKind::kArrival, 0);
      first_arrival_ = us_to_tp(trace_[0].t_us);
      last_activity_ = first_arrival_;
    }

    while (!heap_.empty()) {
      const Ev ev = heap_.top();
      heap_.pop();
      // Periodic events stop re-arming once the trace is fully drained;
      // stale ones still in the heap are skipped so the loop terminates.
      if (done() &&
          (ev.kind == EvKind::kTick || ev.kind == EvKind::kTimeline ||
           ev.kind == EvKind::kDispatch)) {
        continue;
      }
      clock_.set(ev.t);
      const Tp now = clock_.now();
      switch (ev.kind) {
        case EvKind::kArrival:
          handle_arrival(ev.a, now);
          break;
        case EvKind::kDispatch:
          reps_[ev.a].timer_pending = false;
          maybe_dispatch(ev.a, now);
          break;
        case EvKind::kCompletion:
          handle_completion(ev.a, now);
          break;
        case EvKind::kTick:
          handle_tick(now);
          break;
        case EvKind::kSpawnDone:
          handle_spawn_done(now);
          break;
        case EvKind::kTimeline:
          handle_timeline(now);
          break;
      }
    }
    return finish(wall_start);
  }

 private:
  // --- event plumbing ------------------------------------------------------

  void push(Tp t, EvKind kind, std::size_t a = 0) {
    heap_.push(Ev{t, seq_++, kind, a});
  }

  bool done() const {
    if (arrival_idx_ < trace_.size()) return false;
    if (spawn_pending_ || drain_pending_ != kNone) return false;
    for (const auto& r : reps_) {
      if (!r.retired && (r.busy || r.queued() > 0)) return false;
    }
    return true;
  }

  // --- membership ----------------------------------------------------------

  void publish_membership() {
    std::vector<std::uint64_t> generations;
    generations.reserve(members_.size());
    for (const std::size_t i : members_) {
      generations.push_back(reps_[i].generation);
    }
    ring_ = serve::HashRing(generations);
    // Under cache_affinity the ring thins each replica's key stream to
    // 1/N of the ranks; other policies spread every key everywhere.
    const std::size_t shards =
        cfg_.policy == serve::RoutingPolicy::kCacheAffinity
            ? std::max<std::size_t>(members_.size(), 1)
            : 1;
    for (const std::size_t i : members_) reps_[i].cache.set_shards(shards);
    max_replicas_seen_ = std::max(max_replicas_seen_, members_.size());
  }

  // --- arrivals / admission ------------------------------------------------

  void handle_arrival(std::size_t idx, Tp now) {
    const serve::TraceEvent& e = trace_[idx];
    arrival_idx_ = idx + 1;
    if (arrival_idx_ < trace_.size()) {
      push(us_to_tp(trace_[arrival_idx_].t_us), EvKind::kArrival,
           arrival_idx_);
    }
    Priority pri = e.priority;
    Tp deadline = e.deadline_us > 0
                      ? now + std::chrono::microseconds(e.deadline_us)
                      : Tp::max();
    // Tenant gate, same order as FleetManager::submit: ceiling clamp,
    // default-deadline stamp, then the token bucket.  A refusal never
    // reaches routing — the envelope dies at the front as kQuotaExceeded.
    if (admission_) {
      const auto snap = cfg_.tenants->snapshot();
      const tenancy::TenantContract& c = snap->of(e.tenant);
      if (c.priority_ceiling == Priority::kLow) pri = Priority::kLow;
      if (deadline == Tp::max() && c.default_deadline_us > 0) {
        deadline = now + std::chrono::microseconds(c.default_deadline_us);
      }
      // Same seconds formula as TenantAdmission::seconds_now(), so sim and
      // live bucket refills agree to the bit.
      const double now_s =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now.time_since_epoch())
                  .count()) /
          1e6;
      if (!admission_->try_admit(e.tenant, e.nodes.size(), now_s)) {
        quota_refused_ += e.nodes.size();
        quota_refused_by_[e.tenant] += e.nodes.size();
        return;
      }
    }
    // Route exactly like FleetManager::place_parts.  The sim has no racing
    // scaler thread, so the snapshot is always current and the kDraining
    // bounce-and-retry path cannot trigger (membership never contains a
    // draining replica here).
    if (cfg_.policy == serve::RoutingPolicy::kCacheAffinity &&
        members_.size() > 1) {
      std::vector<std::uint32_t> slots(e.nodes.size());
      for (std::uint32_t s = 0; s < slots.size(); ++s) slots[s] = s;
      for (const serve::SubBatch& g :
           serve::split_by_ring(e.nodes, slots, ring_)) {
        std::vector<std::int64_t> nodes;
        nodes.reserve(g.slots.size());
        for (const std::uint32_t s : g.slots) nodes.push_back(e.nodes[s]);
        admit_parts(members_[g.member], nodes, pri, deadline, now, e.tenant);
      }
    } else {
      const serve::QueueDepthFn depth = [this](std::size_t i) {
        return reps_[members_[i]].queue_depth();
      };
      serve::RouteTargets targets;
      targets.count = members_.size();
      targets.queue_depth = &depth;
      targets.ring = &ring_;
      const std::size_t m = router_->route(e.nodes[0], targets);
      admit_parts(members_[m], e.nodes, pri, deadline, now, e.tenant);
    }
  }

  // MicroBatcher::try_submit_parts, step for step, against sim queues.
  // One deliberate divergence: with shed_budget == 0 the real batcher
  // BLOCKS the submitter for queue space; an open-loop replay cannot park
  // the arrival process, so a full queue refuses instead (bounded-queue
  // admission).  Stats calls match the real ones call for call.
  void admit_parts(std::size_t ri, const std::vector<std::int64_t>& nodes,
                   Priority pri, Tp deadline, Tp now, std::uint32_t tenant) {
    SimReplica& r = reps_[ri];
    serve::ServerStats& st = *r.stats;
    const std::size_t n = nodes.size();
    const bool shedding = cfg_.batch.shed_budget.count() > 0;
    std::vector<SimPart> victims;

    bool rejected = false, deadline_refusal = false, admitted = false;
    if (n > cfg_.batch.queue_capacity) {
      rejected = true;  // can never fit: permanent overload refusal
    } else if (cfg_.batch.deadline_aware && deadline < now) {
      rejected = deadline_refusal = true;
    } else if (!shedding) {
      if (r.queued() + n > cfg_.batch.queue_capacity) {
        rejected = true;  // the backpressure divergence documented above
      } else {
        // Backpressure mode queues both classes in the kHigh class (one
        // queue — within it DWRR still arbitrates tenants, like the real
        // batcher's ClassQueue does).
        enqueue_parts(r, r.queues[0], nodes, Priority::kHigh, deadline, now,
                      tenant);
        admitted = true;
      }
    } else {
      sweep_expired_low(r, now, &victims);
      auto& low = r.queues[static_cast<std::size_t>(Priority::kLow)];
      if (pri == Priority::kHigh && !over_budget(r, now)) {
        const std::size_t after = r.queued() + n;
        const std::size_t shortfall =
            after > cfg_.batch.queue_capacity
                ? after - cfg_.batch.queue_capacity
                : 0;
        if (shortfall > 0 && shortfall <= low.size) {
          while (r.queued() + n > cfg_.batch.queue_capacity) {
            evict_one_low(r, &victims);
          }
        }
      }
      if (over_budget(r, now) ||
          r.queued() + n > cfg_.batch.queue_capacity) {
        rejected = true;
      } else {
        enqueue_parts(r, r.queues[static_cast<std::size_t>(pri)], nodes, pri,
                      deadline, now, tenant);
        admitted = true;
      }
    }

    finish_shed(r, victims, now);
    if (admitted) {
      for (std::size_t i = 0; i < n; ++i) st.record_admitted(tenant);
      maybe_dispatch(ri, now);
    } else if (rejected) {
      for (std::size_t i = 0; i < n; ++i) {
        st.record_rejected(tenant);
        if (deadline_refusal) st.record_deadline_miss();
      }
    }
  }

  void enqueue_parts(SimReplica& r, SimClassQueue& q,
                     const std::vector<std::int64_t>& nodes, Priority pri,
                     Tp deadline, Tp now, std::uint32_t tenant) {
    for (const std::int64_t node : nodes) {
      q.push(SimPart{node, now, deadline, tenant});
    }
    if (pri == Priority::kLow) {
      const serve::SlackView v{
          now, cfg_.batch.deadline_aware ? deadline : Tp::max()};
      r.low_next_expiry = std::min(
          r.low_next_expiry,
          serve::effective_deadline(v, cfg_.batch.shed_budget));
    }
  }

  bool over_budget(const SimReplica& r, Tp now) const {
    if (r.queued() == 0) return false;
    return now - r.oldest_enqueued() > cfg_.batch.shed_budget;
  }

  void recompute_low_expiry(SimReplica& r) const {
    r.low_next_expiry = Tp::max();
    if (cfg_.batch.shed_budget.count() <= 0) return;
    for (const auto& [t, dq] :
         r.queues[static_cast<std::size_t>(Priority::kLow)].by_tenant) {
      for (const SimPart& p : dq) {
        const serve::SlackView v{
            p.enqueued, cfg_.batch.deadline_aware ? p.deadline : Tp::max()};
        r.low_next_expiry = std::min(
            r.low_next_expiry,
            serve::effective_deadline(v, cfg_.batch.shed_budget));
      }
    }
  }

  void sweep_expired_low(SimReplica& r, Tp now,
                         std::vector<SimPart>* victims) {
    if (now < r.low_next_expiry) return;
    auto& low = r.queues[static_cast<std::size_t>(Priority::kLow)];
    for (auto ti = low.by_tenant.begin(); ti != low.by_tenant.end();) {
      auto& dq = ti->second;
      if (cfg_.batch.deadline_aware) {
        for (auto it = dq.begin(); it != dq.end();) {
          const serve::SlackView v{it->enqueued, it->deadline};
          if (serve::effective_deadline(v, cfg_.batch.shed_budget) < now) {
            victims->push_back(*it);
            it = dq.erase(it);
            --low.size;
          } else {
            ++it;
          }
        }
      } else {
        while (!dq.empty() &&
               now - dq.front().enqueued > cfg_.batch.shed_budget) {
          victims->push_back(dq.front());
          dq.pop_front();
          --low.size;
        }
      }
      if (dq.empty()) {
        low.sched.disarm(ti->first);
        ti = low.by_tenant.erase(ti);
      } else {
        ++ti;
      }
    }
    recompute_low_expiry(r);
  }

  // Globally least-slack victim across every tenant sub-queue — the exact
  // discipline of MicroBatcher::evict_one_low_locked (without deadlines
  // the views all carry max() and least_slack degenerates to globally
  // oldest, the FIFO baseline).
  void evict_one_low(SimReplica& r, std::vector<SimPart>* victims) {
    auto& low = r.queues[static_cast<std::size_t>(Priority::kLow)];
    std::vector<serve::SlackView> views;
    std::vector<std::pair<std::uint32_t, std::size_t>> where;
    views.reserve(low.size);
    where.reserve(low.size);
    for (const auto& [t, dq] : low.by_tenant) {
      for (std::size_t i = 0; i < dq.size(); ++i) {
        const SimPart& p = dq[i];
        views.push_back(
            {p.enqueued,
             cfg_.batch.deadline_aware ? p.deadline : Tp::max()});
        where.emplace_back(t, i);
      }
    }
    const std::size_t victim =
        serve::least_slack_index(views, cfg_.batch.shed_budget);
    const auto [vt, vpos] = where[victim];
    auto& dq = low.by_tenant[vt];
    victims->push_back(dq[vpos]);
    dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(vpos));
    --low.size;
    if (dq.empty()) {
      low.sched.disarm(vt);
      low.by_tenant.erase(vt);
    }
    recompute_low_expiry(r);
  }

  void finish_shed(SimReplica& r, const std::vector<SimPart>& victims,
                   Tp now) {
    for (const SimPart& p : victims) {
      r.stats->record_shed(p.tenant);
      r.stats->record_shed_wait(
          std::chrono::duration<double, std::micro>(now - p.enqueued)
              .count());
      if (p.deadline < now) r.stats->record_deadline_miss();
    }
  }

  // --- dispatch / service --------------------------------------------------

  // The dispatcher thread's decision rule as a pure function of (queue,
  // now): dispatch when the batch fills, when the window (oldest arrival +
  // max_delay) closes, or immediately while draining (stop() dispatches
  // without waiting — drain latency beats batch quality).
  void maybe_dispatch(std::size_t ri, Tp now) {
    SimReplica& r = reps_[ri];
    if (r.busy || r.retired || r.queued() == 0) return;
    const Tp window_close = r.oldest_enqueued() + cfg_.batch.max_delay;
    if (r.draining || r.queued() >= cfg_.batch.max_batch_size ||
        now >= window_close) {
      start_batch(ri, now);
    } else if (!r.timer_pending) {
      // Lazy revalidation: the timer re-runs this check at the window
      // close; shedding may have emptied the queue by then, which the
      // re-check absorbs (mirrors the dispatcher's wait loop re-testing
      // its predicate).
      r.timer_pending = true;
      push(window_close, EvKind::kDispatch, ri);
    }
  }

  void start_batch(std::size_t ri, Tp now) {
    SimReplica& r = reps_[ri];
    std::vector<SimPart> batch_parts;
    std::vector<SimPart> expired;
    bool popped_low = false;
    // One registry snapshot per batch close, same as the real batcher's
    // next_batch — weights flip atomically at batch granularity.
    const auto tenant_snap =
        cfg_.tenants ? cfg_.tenants->snapshot() : nullptr;
    const auto weight_of = [&](std::uint32_t t) {
      return tenant_snap ? tenant_snap->weight_of(t) : 1u;
    };
    for (auto& queue : r.queues) {  // kHigh strictly first
      while (batch_parts.size() < cfg_.batch.max_batch_size &&
             !queue.empty()) {
        SimPart p = queue.pop(weight_of);
        popped_low = popped_low || &queue == &r.queues[1];
        if (cfg_.batch.deadline_aware && p.deadline < now) {
          expired.push_back(p);  // shed pre-compute, never burns a slot
          continue;
        }
        batch_parts.push_back(p);
      }
    }
    if (popped_low) recompute_low_expiry(r);
    finish_shed(r, expired, now);
    const std::size_t batch = batch_parts.size();
    if (batch == 0) {
      // Whole pop was deadline-shed; queues are empty now (the pop loop
      // only stops early when the batch fills).
      return;
    }
    for (const SimPart& p : batch_parts) {
      r.stats->record_queue_delay(
          std::chrono::duration<double, std::micro>(now - p.enqueued)
              .count());
    }
    const double hit = r.cache.hit_rate();
    // Timesharing: batches in flight right now contend for the cores; this
    // one joins them.  In-flight service times keep their dispatch-time
    // estimate (first-order, like any fluid model of a scheduler).
    const std::size_t sharing = busy_count_ + 1;
    const double service_us = model_.batch_service_us(batch, hit, sharing);
    r.cache.on_batch(batch);
    hit_rows_ += hit * static_cast<double>(batch);
    dispatched_rows_ += static_cast<double>(batch);
    ++batches_dispatched_;
    r.in_service = batch;
    r.busy = true;
    ++busy_count_;
    r.busy_seconds += service_us * 1e-6;
    in_flight_[ri] = batch_parts;
    service_started_[ri] = now;
    push(now + std::chrono::duration_cast<Dur>(
                   std::chrono::duration<double, std::micro>(service_us)),
         EvKind::kCompletion, ri);
  }

  void handle_completion(std::size_t ri, Tp now) {
    SimReplica& r = reps_[ri];
    const std::vector<SimPart> batch = std::move(in_flight_[ri]);
    in_flight_[ri].clear();
    const Tp t_pop = service_started_[ri];
    r.stats->record_batch(batch.size());
    for (const SimPart& p : batch) {
      const double admission_us =
          std::chrono::duration<double, std::micro>(t_pop - p.enqueued)
              .count();
      const double compute_us =
          std::chrono::duration<double, std::micro>(now - t_pop).count();
      r.stats->record(
          std::chrono::duration<double, std::micro>(now - p.enqueued)
              .count(),
          p.tenant);
      // The modeled service time folds the dispatch gap into compute.
      r.stats->record_stages(admission_us, 0.0, compute_us);
      if (p.deadline < now) r.stats->record_deadline_miss();
    }
    last_activity_ = std::max(last_activity_, now);
    r.busy = false;
    r.in_service = 0;
    --busy_count_;
    if (r.draining && r.queued() == 0) {
      finalize_retire(ri, now);
      return;
    }
    maybe_dispatch(ri, now);
  }

  // --- controller ----------------------------------------------------------

  serve::FleetSignals signals(Tp now) const {
    serve::FleetSignals s;
    s.replicas = members_.size();
    s.batch_capacity = std::max<std::size_t>(
        1, s.replicas * cfg_.batch.max_batch_size);
    serve::AdmissionCounters pooled;
    double delay_sum = 0;
    std::size_t delay_n = 0;
    for (const std::size_t i : members_) {
      const serve::WindowStats w = reps_[i].stats->window(now);
      pooled.admitted += w.admission.admitted;
      pooled.rejected += w.admission.rejected;
      pooled.shed += w.admission.shed;
      delay_sum +=
          w.mean_queue_delay_us * static_cast<double>(w.queue_delay_samples);
      delay_n += w.queue_delay_samples;
      s.queue_depth += reps_[i].queued();  // queued-only, like the fleet
    }
    s.shed_rate = pooled.shed_rate();
    if (delay_n > 0) {
      s.mean_queue_delay_us = delay_sum / static_cast<double>(delay_n);
    }
    return s;
  }

  void handle_tick(Tp now) {
    const serve::FleetSignals s = signals(now);
    const serve::ScaleAction action = policy_->on_tick(s, now);
    if (action == serve::ScaleAction::kUp &&
        s.replicas < cfg_.autoscale.max_replicas) {
      // scale_up builds synchronously ON the controller thread: membership
      // publishes when the build completes, and the next tick waits for it.
      spawn_pending_ = true;
      push(now + cfg_.spawn_latency, EvKind::kSpawnDone);
      return;
    }
    if (action == serve::ScaleAction::kDown &&
        s.replicas > cfg_.autoscale.min_replicas) {
      scale_down(now);
      return;  // next tick scheduled at drain completion
    }
    push(now + cfg_.autoscale.tick, EvKind::kTick);
  }

  void handle_spawn_done(Tp now) {
    spawn_pending_ = false;
    const std::size_t ri = reps_.size();
    const std::size_t warm =
        std::min(cfg_.warm_keys, cfg_.cache.capacity_rows);
    reps_.emplace_back(next_generation_++, cfg_.stats_window, &clock_,
                       cfg_.cache, warm, 1);
    SimReplica& r = reps_.back();
    r.activated_at = now;
    r.warmed_keys = warm;
    in_flight_.resize(reps_.size());
    service_started_.resize(reps_.size());
    members_.push_back(ri);
    publish_membership();
    SimEvent ev;
    ev.t_seconds = tp_seconds(now);
    ev.spawned = true;
    ev.generation = r.generation;
    ev.replicas_after = members_.size();
    ev.warmed_keys = warm;
    ev.first_window_hit_rate = r.cache.hit_rate();
    events_.push_back(ev);
    push(now + cfg_.autoscale.tick, EvKind::kTick);
  }

  void scale_down(Tp now) {
    if (members_.size() <= 1) return;  // FleetManager never goes below one
    // Retire the YOUNGEST (membership is in spawn order), unpublish FIRST
    // so no new work routes there, then drain: admitted work completes.
    const std::size_t ri = members_.back();
    members_.pop_back();
    publish_membership();
    SimReplica& r = reps_[ri];
    r.draining = true;
    if (!r.busy && r.queued() == 0) {
      finalize_retire(ri, now);
      return;
    }
    drain_pending_ = ri;
    maybe_dispatch(ri, now);  // draining dispatches eagerly
  }

  void finalize_retire(std::size_t ri, Tp now) {
    SimReplica& r = reps_[ri];
    r.retired = true;
    r.retired_at = now;
    SimEvent ev;
    ev.t_seconds = tp_seconds(now);
    ev.spawned = false;
    ev.generation = r.generation;
    ev.replicas_after = members_.size();
    ev.warmed_keys = r.warmed_keys;
    ev.first_window_hit_rate = r.cache.hit_rate();
    events_.push_back(ev);
    if (drain_pending_ == ri) {
      // The controller was blocked on this drain (scale_down is
      // synchronous); it resumes one tick after the drain completes.
      drain_pending_ = kNone;
      push(now + cfg_.autoscale.tick, EvKind::kTick);
    }
  }

  void handle_timeline(Tp now) {
    SimTimelinePoint p;
    p.t_seconds = tp_seconds(now);
    p.replicas = members_.size();
    for (const std::size_t i : members_) {
      p.queued += reps_[i].queued();
      if (!reps_[i].busy) ++p.idle;
    }
    timeline_.push_back(p);
    push(now + cfg_.timeline_every, EvKind::kTimeline);
  }

  // --- wrap-up -------------------------------------------------------------

  SimResult finish(std::chrono::steady_clock::time_point wall_start) {
    SimResult res;
    const Tp end = std::max(clock_.now(), last_activity_);
    serve::ServerStats pool(cfg_.stats_window, &clock_);
    for (const SimReplica& r : reps_) {
      pool.merge_once(*r.stats, r.generation);
      const Tp until = r.retired ? r.retired_at : end;
      const double alive =
          std::chrono::duration<double>(until - r.activated_at).count();
      res.replica_seconds += std::max(0.0, alive);
      res.idle_replica_seconds += std::max(0.0, alive - r.busy_seconds);
    }
    // Quota refusals happened at the sim's front, before any replica —
    // fold them into the pool so the per-tenant slices carry them, while
    // AdmissionCounters (and thus shed_rate, the autoscale signal) stay
    // quota-blind exactly like the live front's.
    for (const auto& [t, n] : quota_refused_by_) {
      pool.record_quota_refused(t, n);
    }
    const serve::AdmissionCounters adm = pool.admission();
    res.offered_parts = adm.offered();
    res.admitted = adm.admitted;
    res.rejected = adm.rejected;
    res.quota_refused = quota_refused_;
    res.shed = adm.shed;
    res.shed_rate = adm.shed_rate();
    res.deadline_missed = pool.deadline_missed();
    res.admitted_latency = pool.summary();
    res.answered = res.admitted_latency.count;
    res.span_seconds = !trace_.empty()
                           ? std::chrono::duration<double>(
                                 std::max(last_activity_, first_arrival_) -
                                 first_arrival_)
                                 .count()
                           : 0.0;
    res.answered_rps = res.span_seconds > 0
                           ? static_cast<double>(res.answered) /
                                 res.span_seconds
                           : 0.0;
    res.max_replicas_seen = max_replicas_seen_;
    res.mean_hit_rate =
        dispatched_rows_ > 0 ? hit_rows_ / dispatched_rows_ : 0.0;
    res.mean_batch = batches_dispatched_
                         ? dispatched_rows_ /
                               static_cast<double>(batches_dispatched_)
                         : 0.0;
    std::vector<serve::TenantStat> slices = pool.tenant_stats();
    // Suppress the degenerate single-slice table for pre-tenancy runs
    // (no registry, everything tenant 0) — their JSON stays as it was.
    if (cfg_.tenants ||
        !(slices.size() == 1 && slices[0].tenant == 0)) {
      res.tenants = std::move(slices);
    }
    res.events = std::move(events_);
    res.timeline = std::move(timeline_);
    res.sim_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return res;
  }

  static constexpr std::size_t kNone = SIZE_MAX;

  const SimFleetConfig& cfg_;
  const ServiceModel& model_;
  const std::vector<serve::TraceEvent>& trace_;

  serve::SimClock clock_;
  std::unique_ptr<serve::Router> router_;
  std::unique_ptr<serve::AutoscalePolicy> policy_;
  std::vector<SimReplica> reps_;
  std::vector<std::size_t> members_;  // active, in spawn order
  serve::HashRing ring_;
  std::uint64_t next_generation_ = 1;

  std::unique_ptr<tenancy::TenantAdmission> admission_;
  std::size_t quota_refused_ = 0;
  std::map<std::uint32_t, std::size_t> quota_refused_by_;

  std::priority_queue<Ev, std::vector<Ev>, EvLater> heap_;
  std::uint64_t seq_ = 0;
  std::size_t arrival_idx_ = 0;
  bool spawn_pending_ = false;
  std::size_t drain_pending_ = kNone;
  std::size_t busy_count_ = 0;
  // Parts in service per replica (index-aligned with reps_).
  std::vector<std::vector<SimPart>> in_flight_;
  std::vector<Tp> service_started_;

  Tp first_arrival_{};
  Tp last_activity_{};
  double hit_rows_ = 0;
  double dispatched_rows_ = 0;
  std::size_t batches_dispatched_ = 0;
  std::size_t max_replicas_seen_ = 0;
  std::vector<SimEvent> events_;
  std::vector<SimTimelinePoint> timeline_;
};

}  // namespace

FleetSim::FleetSim(const SimFleetConfig& cfg, const ServiceModel& model)
    : cfg_(cfg), model_(model) {}

SimResult FleetSim::run(const std::vector<serve::TraceEvent>& trace) {
  Sim sim(cfg_, model_, trace);
  return sim.run();
}

std::string SimResult::event_signature() const {
  std::string sig;
  sig.reserve(events.size());
  for (const SimEvent& e : events) sig.push_back(e.spawned ? 'u' : 'd');
  return sig;
}

std::string SimResult::to_json() const {
  std::ostringstream os;
  os << "{\"offered_parts\":" << offered_parts << ",\"admitted\":" << admitted
     << ",\"rejected\":" << rejected
     << ",\"quota_refused\":" << quota_refused << ",\"shed\":" << shed
     << ",\"answered\":" << answered
     << ",\"deadline_missed\":" << deadline_missed
     << ",\"shed_rate\":" << shed_rate << ",\"answered_rps\":" << answered_rps
     << ",\"span_seconds\":" << span_seconds
     << ",\"max_replicas\":" << max_replicas_seen
     << ",\"replica_seconds\":" << replica_seconds
     << ",\"idle_replica_seconds\":" << idle_replica_seconds
     << ",\"mean_hit_rate\":" << mean_hit_rate
     << ",\"mean_batch\":" << mean_batch
     << ",\"events\":\"" << event_signature() << "\""
     << ",\"latency\":" << admitted_latency.to_json();
  if (!tenants.empty()) {
    os << ",\"tenants\":[";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      if (i) os << ",";
      os << tenants[i].to_json();
    }
    os << "]";
  }
  os << ",\"sim_wall_seconds\":" << sim_wall_seconds << "}";
  return os.str();
}

}  // namespace ppgnn::fleetsim
