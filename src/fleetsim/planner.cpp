#include "fleetsim/planner.h"

#include <sstream>
#include <thread>

namespace ppgnn::fleetsim {

namespace {

bool feasible(const SimResult& r, const PlanTarget& t) {
  // A replay that answered nothing cannot demonstrate feasibility.
  if (r.answered == 0) return false;
  return r.admitted_latency.p99_us <= t.p99_ms * 1000.0 &&
         r.shed_rate <= t.max_shed_rate;
}

}  // namespace

CapacityPlan plan_capacity(const SimFleetConfig& base,
                           const ServiceModel& model,
                           const std::vector<serve::TraceEvent>& trace,
                           const PlanTarget& target) {
  CapacityPlan plan;
  for (std::size_t n = target.min_replicas; n <= target.max_replicas; ++n) {
    SimFleetConfig cfg = base;
    cfg.initial_replicas = n;
    cfg.autoscale.enabled = false;
    PlanArm arm;
    arm.name = "fixed-" + std::to_string(n);
    arm.replicas = n;
    plan.arms.push_back(std::move(arm));
  }
  if (target.try_autoscale) {
    PlanArm arm;
    arm.name = "autoscale";
    plan.arms.push_back(std::move(arm));
  }
  // Arms are independent simulations with no shared state, and each is
  // individually deterministic — running them on threads changes wall
  // time, never results.  An hour-long trace sweeps in the time of the
  // slowest single arm.
  std::vector<std::thread> workers;
  workers.reserve(plan.arms.size());
  for (PlanArm& arm : plan.arms) {
    workers.emplace_back([&base, &model, &trace, &target, &arm] {
      SimFleetConfig cfg = base;
      if (arm.replicas > 0) {  // fixed arm
        cfg.initial_replicas = arm.replicas;
        cfg.autoscale.enabled = false;
      } else {  // autoscale arm
        cfg.initial_replicas = target.min_replicas;
        cfg.autoscale.enabled = true;
        cfg.autoscale.min_replicas = target.min_replicas;
        cfg.autoscale.max_replicas = target.max_replicas;
      }
      arm.result = FleetSim(cfg, model).run(trace);
      arm.feasible = feasible(arm.result, target);
      arm.cost_replica_seconds = arm.result.replica_seconds;
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t i = 0; i < plan.arms.size(); ++i) {
    if (!plan.arms[i].feasible) continue;
    if (plan.best == SIZE_MAX ||
        plan.arms[i].cost_replica_seconds <
            plan.arms[plan.best].cost_replica_seconds) {
      plan.best = i;
    }
  }
  return plan;
}

std::string CapacityPlan::to_json(const PlanTarget& target) const {
  std::ostringstream os;
  os << "{\"target\":{\"p99_ms\":" << target.p99_ms
     << ",\"max_shed_rate\":" << target.max_shed_rate
     << ",\"min_replicas\":" << target.min_replicas
     << ",\"max_replicas\":" << target.max_replicas << "},\"arms\":[";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const PlanArm& a = arms[i];
    if (i) os << ",";
    os << "{\"name\":\"" << a.name << "\",\"feasible\":"
       << (a.feasible ? "true" : "false")
       << ",\"cost_replica_seconds\":" << a.cost_replica_seconds
       << ",\"result\":" << a.result.to_json() << "}";
  }
  os << "],\"attainable\":" << (attainable() ? "true" : "false");
  if (attainable()) {
    os << ",\"best\":\"" << arms[best].name << "\"";
  }
  os << "}";
  return os.str();
}

}  // namespace ppgnn::fleetsim
