#include "sampling/ladies.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace ppgnn::sampling {

SampledBatch LadiesSampler::sample(const CsrGraph& g,
                                   const std::vector<NodeId>& seeds,
                                   ppgnn::Rng& rng) const {
  SampledBatch batch;
  batch.blocks.resize(layers_);
  std::vector<NodeId> frontier = seeds;

  for (std::size_t l = layers_; l-- > 0;) {
    // Candidate importance: w_u = sum over frontier t of 1/deg(t) for each
    // edge (t,u) — the row-normalized adjacency mass reaching u.
    std::unordered_map<NodeId, double> weight;
    weight.reserve(frontier.size() * 8);
    for (const NodeId t : frontier) {
      const auto nbrs = g.neighbors(t);
      if (nbrs.empty()) continue;
      const double w = 1.0 / static_cast<double>(nbrs.size());
      for (const NodeId u : nbrs) weight[u] += w;
    }
    // Gumbel top-k: weighted sampling without replacement of `budget_`
    // candidates.  key = log(w) + Gumbel noise; take the k largest.
    std::vector<std::pair<double, NodeId>> keyed;
    keyed.reserve(weight.size());
    double total_w = 0;
    for (const auto& [u, w] : weight) total_w += w;
    for (const auto& [u, w] : weight) {
      double uni = rng.uniform();
      while (uni <= 1e-300) uni = rng.uniform();
      const double gumbel = -std::log(-std::log(uni));
      keyed.emplace_back(std::log(w) + gumbel, u);
    }
    const std::size_t k = std::min(budget_, keyed.size());
    std::partial_sort(keyed.begin(), keyed.begin() + k, keyed.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });

    std::unordered_map<NodeId, double> prob;  // inclusion prob proxy
    std::unordered_set<NodeId> picked;
    picked.reserve(k * 2);
    for (std::size_t i = 0; i < k; ++i) {
      const NodeId u = keyed[i].second;
      picked.insert(u);
      // Poisson approximation of the inclusion probability.
      prob[u] = std::min(1.0, weight[u] / total_w * static_cast<double>(k));
    }
    // Keep only frontier->picked edges, with debiasing weights, and always
    // retain the frontier node itself (self edge weight 1) if present.
    std::vector<std::vector<NodeId>> chosen(frontier.size());
    std::vector<std::vector<float>> weights(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const NodeId t = frontier[i];
      const auto nbrs = g.neighbors(t);
      const double inv_deg =
          nbrs.empty() ? 0.0 : 1.0 / static_cast<double>(nbrs.size());
      for (const NodeId u : nbrs) {
        if (!picked.contains(u)) continue;
        chosen[i].push_back(u);
        const double p = prob[u];
        weights[i].push_back(static_cast<float>(inv_deg / std::max(p, 1e-9)));
      }
    }
    batch.blocks[l] = make_block(frontier, chosen, &weights);
    frontier = batch.blocks[l].src_nodes;
  }
  return batch;
}

}  // namespace ppgnn::sampling
