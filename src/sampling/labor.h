// LABOR-0 layer-neighbor sampler (Balin & Catalyurek, 2024).
//
// Like the neighbor sampler, each destination t keeps ~fanout neighbors in
// expectation, but inclusion is decided by a *shared* per-source uniform
// variate r_u: t keeps neighbor u iff r_u <= pi_t with pi_t =
// min(1, fanout / deg(t)).  Because r_u is shared across all destinations of
// a layer, sources accepted by one destination are likely accepted by
// others, so the union of sampled sources is much smaller than with
// independent node-wise sampling — LABOR's defusing of neighbor explosion.
// Kept edges are importance-weighted by 1/min(1, pi_t / r-quantile) ~ 1/pi_t
// capped at deg(t)/fanout to keep the aggregation unbiased; we use the
// LABOR-0 estimator weight 1 / (pi_t clamped to [r_u, 1]) simplified to
// mean-rescaling, matching the mean aggregator used by GraphSAGE.
#pragma once

#include "sampling/sampler.h"

namespace ppgnn::sampling {

class LaborSampler : public Sampler {
 public:
  explicit LaborSampler(std::vector<int> fanouts)
      : fanouts_(std::move(fanouts)) {}

  SampledBatch sample(const CsrGraph& g, const std::vector<NodeId>& seeds,
                      ppgnn::Rng& rng) const override;
  std::string name() const override { return "LABOR"; }
  std::size_t num_layers() const override { return fanouts_.size(); }

 private:
  std::vector<int> fanouts_;
};

}  // namespace ppgnn::sampling
