// Sampler interface.
//
// Samplers turn a seed set (the labeled nodes of a mini-batch) into a
// SampledBatch of bipartite blocks.  All samplers are deterministic given
// the Rng they are handed.
#pragma once

#include <memory>
#include <string>

#include "sampling/subgraph.h"
#include "tensor/rng.h"

namespace ppgnn::sampling {

class Sampler {
 public:
  virtual ~Sampler() = default;
  virtual SampledBatch sample(const CsrGraph& g,
                              const std::vector<NodeId>& seeds,
                              ppgnn::Rng& rng) const = 0;
  virtual std::string name() const = 0;
  virtual std::size_t num_layers() const = 0;
};

}  // namespace ppgnn::sampling
