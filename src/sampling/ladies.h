// LADIES layer-dependent importance sampler (Zou et al., 2019).
//
// Per layer, a fixed budget of nodes is drawn for the whole layer (not per
// destination) with probability proportional to their connectivity to the
// current frontier (proxy for the squared normalized-adjacency column norm
// restricted to the frontier).  Kept edges are debiased with importance
// weights 1 / (n_l * p_u) and the frontier nodes themselves are always
// retained so self information survives.  Linear per-layer growth, but
// sparse frontier-candidate connectivity costs accuracy — the behaviour
// Figure 7 shows.
#pragma once

#include "sampling/sampler.h"

namespace ppgnn::sampling {

class LadiesSampler : public Sampler {
 public:
  LadiesSampler(std::size_t num_layers, std::size_t nodes_per_layer)
      : layers_(num_layers), budget_(nodes_per_layer) {}

  SampledBatch sample(const CsrGraph& g, const std::vector<NodeId>& seeds,
                      ppgnn::Rng& rng) const override;
  std::string name() const override { return "LADIES"; }
  std::size_t num_layers() const override { return layers_; }

 private:
  std::size_t layers_;
  std::size_t budget_;
};

}  // namespace ppgnn::sampling
