// FastGCN layer-wise importance sampler (Chen et al., ICLR 2018).
//
// The original layer-wise scheme LADIES improves on (Section 2.3): every
// layer draws an *independent* set of nodes from a fixed global importance
// distribution q(v) ∝ deg(v) + 1 (the standard proxy for the squared
// normalized-adjacency column norm), instead of restricting candidates to
// the current frontier's neighborhood.  Kept edges are debiased by
// 1 / (n_l * q(u)).  Node count grows linearly with depth — no neighbor
// explosion — but because layers are sampled independently, many drawn
// nodes have no edge into the frontier at all, and connectivity (hence
// accuracy) suffers on sparse graphs.  That failure mode is precisely why
// LADIES conditions on the frontier; keeping both samplers lets the
// accuracy benches show the gap.
#pragma once

#include "sampling/sampler.h"

namespace ppgnn::sampling {

class FastGcnSampler : public Sampler {
 public:
  FastGcnSampler(std::size_t num_layers, std::size_t nodes_per_layer)
      : layers_(num_layers), budget_(nodes_per_layer) {}

  SampledBatch sample(const CsrGraph& g, const std::vector<NodeId>& seeds,
                      ppgnn::Rng& rng) const override;
  std::string name() const override { return "FastGCN"; }
  std::size_t num_layers() const override { return layers_; }

 private:
  std::size_t layers_;
  std::size_t budget_;
};

}  // namespace ppgnn::sampling
