// Sampled mini-batch representation shared by all samplers.
//
// A SampledBatch mirrors DGL's "message-flow graph" of bipartite blocks:
// blocks[0] is applied first (consumes raw input features of input_nodes),
// blocks[L-1] produces embeddings for the seed nodes.  Every block stores a
// local CSR from destination rows to source rows, with optional edge weights
// (LADIES debiasing weights ride here).
//
// Invariant maintained by all samplers: the first dst_size() entries of
// src_nodes are exactly dst_nodes (self features are always available),
// which lets layers implement self/neighbor weight splits cheaply.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace ppgnn::sampling {

using graph::CsrGraph;
using graph::EdgeIdx;
using graph::NodeId;

struct Block {
  std::vector<NodeId> src_nodes;  // global ids; prefix == dst_nodes
  std::vector<NodeId> dst_nodes;  // global ids
  std::vector<EdgeIdx> offsets;   // |dst|+1, local CSR
  std::vector<std::int32_t> indices;  // local src indices
  std::vector<float> values;      // optional edge weights (empty = 1)

  std::size_t dst_size() const { return dst_nodes.size(); }
  std::size_t src_size() const { return src_nodes.size(); }
  std::size_t num_edges() const { return indices.size(); }
};

struct SampledBatch {
  std::vector<Block> blocks;  // blocks[0] first applied
  const std::vector<NodeId>& input_nodes() const {
    return blocks.front().src_nodes;
  }
  const std::vector<NodeId>& seeds() const { return blocks.back().dst_nodes; }

  // Total feature rows fetched to run this batch (the data-transfer metric
  // in Appendix I).
  std::size_t input_rows() const { return blocks.front().src_nodes.size(); }
};

// Helper used by the layer-building samplers: given dst nodes and, per dst,
// a list of chosen global neighbors, produce a Block with deduplicated
// src_nodes (dst prefix first) and the local CSR.
Block make_block(const std::vector<NodeId>& dst,
                 const std::vector<std::vector<NodeId>>& chosen,
                 const std::vector<std::vector<float>>* weights = nullptr);

// Induced subgraph over `nodes` of g, as a Block with src == dst == nodes.
Block induced_block(const CsrGraph& g, const std::vector<NodeId>& nodes);

struct SamplerStats {
  std::size_t batches = 0;
  std::size_t input_rows = 0;   // feature rows fetched
  std::size_t edges = 0;        // edges materialized
  void observe(const SampledBatch& b) {
    ++batches;
    input_rows += b.input_rows();
    for (const auto& blk : b.blocks) edges += blk.num_edges();
  }
};

}  // namespace ppgnn::sampling
