// GraphSAGE node-wise neighbor sampler (Hamilton et al., 2017).
//
// Per layer l (outermost first), every destination node draws up to
// fanouts[l] neighbors without replacement.  The sampled source set of one
// layer becomes the destination set of the layer below, so the number of
// materialized nodes grows ~ prod(fanouts) — the neighbor-explosion the
// paper characterizes.
#pragma once

#include "sampling/sampler.h"

namespace ppgnn::sampling {

class NeighborSampler : public Sampler {
 public:
  // fanouts[0] applies to the layer closest to the input; e.g. the paper's
  // GraphSAGE setting is {15, 10, 5} for 3 layers.
  explicit NeighborSampler(std::vector<int> fanouts)
      : fanouts_(std::move(fanouts)) {}

  SampledBatch sample(const CsrGraph& g, const std::vector<NodeId>& seeds,
                      ppgnn::Rng& rng) const override;
  std::string name() const override { return "Neighbor"; }
  std::size_t num_layers() const override { return fanouts_.size(); }

 private:
  std::vector<int> fanouts_;
};

// Shared helper: draw up to k distinct neighbors of v (all of them when
// degree <= k).
std::vector<NodeId> sample_neighbors(const CsrGraph& g, NodeId v, int k,
                                     ppgnn::Rng& rng);

}  // namespace ppgnn::sampling
