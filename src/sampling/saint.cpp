#include "sampling/saint.h"

#include <algorithm>
#include <unordered_set>

namespace ppgnn::sampling {

SampledBatch SaintNodeSampler::sample(const CsrGraph& g,
                                      const std::vector<NodeId>& seeds,
                                      ppgnn::Rng& rng) const {
  // Node set = seeds + degree-proportional draws (with replacement,
  // deduplicated — matches GraphSAINT's node sampler).
  std::unordered_set<NodeId> in_set(seeds.begin(), seeds.end());
  std::vector<NodeId> nodes = seeds;  // seeds first: keeps prefix invariant
  const std::size_t m = g.num_edges();
  if (m > 0) {
    for (std::size_t draw = 0; draw < budget_; ++draw) {
      // Degree-proportional node pick == uniform edge pick's source.
      const auto e = static_cast<EdgeIdx>(rng.uniform_int(m));
      // Binary search the offsets for the edge's source node.
      const auto& off = g.offsets();
      auto it = std::upper_bound(off.begin(), off.end(), e);
      const auto v = static_cast<NodeId>(std::distance(off.begin(), it) - 1);
      if (in_set.insert(v).second) nodes.push_back(v);
    }
  }

  Block induced = induced_block(g, nodes);

  SampledBatch batch;
  batch.blocks.assign(layers_, induced);
  // Final layer only needs the seed rows as destinations.
  Block& last = batch.blocks.back();
  last.dst_nodes.assign(nodes.begin(), nodes.begin() + seeds.size());
  last.offsets.resize(seeds.size() + 1);
  last.indices.resize(last.offsets.back());
  return batch;
}

}  // namespace ppgnn::sampling
