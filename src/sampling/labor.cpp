#include "sampling/labor.h"

#include <unordered_map>

namespace ppgnn::sampling {

SampledBatch LaborSampler::sample(const CsrGraph& g,
                                  const std::vector<NodeId>& seeds,
                                  ppgnn::Rng& rng) const {
  const std::size_t layers = fanouts_.size();
  SampledBatch batch;
  batch.blocks.resize(layers);
  std::vector<NodeId> frontier = seeds;
  for (std::size_t l = layers; l-- > 0;) {
    // One shared variate per source node for this layer.
    std::unordered_map<NodeId, double> variate;
    variate.reserve(frontier.size() * 8);
    auto r_of = [&](NodeId u) {
      auto it = variate.find(u);
      if (it == variate.end()) it = variate.emplace(u, rng.uniform()).first;
      return it->second;
    };
    const double fanout = static_cast<double>(fanouts_[l]);
    std::vector<std::vector<NodeId>> chosen(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const NodeId t = frontier[i];
      const auto nbrs = g.neighbors(t);
      if (nbrs.empty()) continue;
      const double pi =
          std::min(1.0, fanout / static_cast<double>(nbrs.size()));
      auto& keep = chosen[i];
      NodeId best = nbrs[0];
      double best_r = 2.0;
      for (const NodeId u : nbrs) {
        const double r = r_of(u);
        if (r <= pi) keep.push_back(u);
        if (r < best_r) {
          best_r = r;
          best = u;
        }
      }
      // Guarantee at least one sampled neighbor for connectivity.
      if (keep.empty()) keep.push_back(best);
    }
    batch.blocks[l] = make_block(frontier, chosen);
    frontier = batch.blocks[l].src_nodes;
  }
  return batch;
}

}  // namespace ppgnn::sampling
