#include "sampling/fastgcn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace ppgnn::sampling {

SampledBatch FastGcnSampler::sample(const CsrGraph& g,
                                    const std::vector<NodeId>& seeds,
                                    ppgnn::Rng& rng) const {
  const std::size_t n = g.num_nodes();
  SampledBatch batch;
  batch.blocks.resize(layers_);
  std::vector<NodeId> frontier = seeds;

  // Global importance q(v) ∝ deg(v) + 1, shared by every layer — this is
  // the defining FastGCN design point (and its weakness: draws ignore the
  // frontier entirely).
  double total_q = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total_q += static_cast<double>(g.neighbors(static_cast<NodeId>(v)).size()) + 1.0;
  }

  for (std::size_t l = layers_; l-- > 0;) {
    // Budget draws from q via Gumbel top-k over *all* nodes would be O(n)
    // per layer; degree-proportional draws via uniform edge picks plus
    // uniform node picks give the same q = (deg+1)/total in O(budget).
    std::unordered_set<NodeId> picked;
    picked.reserve(budget_ * 2);
    const std::size_t m = g.num_edges();
    const double edge_mass = static_cast<double>(m) / total_q;
    for (std::size_t draw = 0; draw < budget_; ++draw) {
      NodeId v;
      if (m > 0 && rng.uniform() < edge_mass) {
        // Uniform edge pick's source node == degree-proportional pick.
        const auto e = static_cast<graph::EdgeIdx>(rng.uniform_int(m));
        const auto& off = g.offsets();
        auto it = std::upper_bound(off.begin(), off.end(), e);
        v = static_cast<NodeId>(std::distance(off.begin(), it) - 1);
      } else {
        v = static_cast<NodeId>(rng.uniform_int(n));
      }
      picked.insert(v);
    }

    // Keep frontier->picked edges with importance debiasing 1/(k * q(u)).
    // The frontier's own nodes always survive through the make_block dst
    // prefix, so self features are available even when no draw lands in
    // the neighborhood (FastGCN's practical fix for empty rows).
    const double k = static_cast<double>(budget_);
    std::vector<std::vector<NodeId>> chosen(frontier.size());
    std::vector<std::vector<float>> weights(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const NodeId t = frontier[i];
      const auto nbrs = g.neighbors(t);
      if (nbrs.empty()) continue;
      const double inv_deg = 1.0 / static_cast<double>(nbrs.size());
      for (const NodeId u : nbrs) {
        if (!picked.contains(u)) continue;
        const double q_u =
            (static_cast<double>(g.neighbors(u).size()) + 1.0) / total_q;
        chosen[i].push_back(u);
        weights[i].push_back(
            static_cast<float>(inv_deg / std::max(k * q_u, 1e-12)));
      }
    }
    batch.blocks[l] = make_block(frontier, chosen, &weights);
    frontier = batch.blocks[l].src_nodes;
  }
  return batch;
}

}  // namespace ppgnn::sampling
