#include "sampling/subgraph.h"

#include <stdexcept>
#include <unordered_map>

namespace ppgnn::sampling {

Block make_block(const std::vector<NodeId>& dst,
                 const std::vector<std::vector<NodeId>>& chosen,
                 const std::vector<std::vector<float>>* weights) {
  if (chosen.size() != dst.size()) {
    throw std::invalid_argument("make_block: chosen size mismatch");
  }
  Block b;
  b.dst_nodes = dst;
  b.src_nodes = dst;  // dst prefix invariant
  std::unordered_map<NodeId, std::int32_t> local;
  local.reserve(dst.size() * 2);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    local.emplace(dst[i], static_cast<std::int32_t>(i));
  }
  b.offsets.assign(dst.size() + 1, 0);
  const bool has_w = weights != nullptr;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const auto& nbrs = chosen[i];
    for (std::size_t e = 0; e < nbrs.size(); ++e) {
      const NodeId u = nbrs[e];
      auto [it, inserted] =
          local.emplace(u, static_cast<std::int32_t>(b.src_nodes.size()));
      if (inserted) b.src_nodes.push_back(u);
      b.indices.push_back(it->second);
      if (has_w) b.values.push_back((*weights)[i][e]);
    }
    b.offsets[i + 1] = static_cast<EdgeIdx>(b.indices.size());
  }
  return b;
}

Block induced_block(const CsrGraph& g, const std::vector<NodeId>& nodes) {
  Block b;
  b.dst_nodes = nodes;
  b.src_nodes = nodes;
  std::unordered_map<NodeId, std::int32_t> local;
  local.reserve(nodes.size() * 2);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    local.emplace(nodes[i], static_cast<std::int32_t>(i));
  }
  b.offsets.assign(nodes.size() + 1, 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const NodeId u : g.neighbors(nodes[i])) {
      const auto it = local.find(u);
      if (it != local.end()) b.indices.push_back(it->second);
    }
    b.offsets[i + 1] = static_cast<EdgeIdx>(b.indices.size());
  }
  return b;
}

}  // namespace ppgnn::sampling
