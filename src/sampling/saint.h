// GraphSAINT node sampler (Zeng et al., 2020).
//
// Draws a node budget (the paper sets it equal to the batch size), induces
// the subgraph over the union of the drawn nodes and the mini-batch seeds,
// and trains all L layers on that one subgraph — subgraph size is
// independent of depth.  The blocks of the returned batch are L copies of
// the induced subgraph with the seeds as the final destinations.
#pragma once

#include "sampling/sampler.h"

namespace ppgnn::sampling {

class SaintNodeSampler : public Sampler {
 public:
  SaintNodeSampler(std::size_t num_layers, std::size_t node_budget)
      : layers_(num_layers), budget_(node_budget) {}

  SampledBatch sample(const CsrGraph& g, const std::vector<NodeId>& seeds,
                      ppgnn::Rng& rng) const override;
  std::string name() const override { return "SAINT"; }
  std::size_t num_layers() const override { return layers_; }

 private:
  std::size_t layers_;
  std::size_t budget_;
};

}  // namespace ppgnn::sampling
