#include "sampling/clustergcn.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace ppgnn::sampling {

std::vector<std::int32_t> bfs_partition(const CsrGraph& g,
                                        std::size_t num_clusters,
                                        std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  if (num_clusters == 0) {
    throw std::invalid_argument("bfs_partition: num_clusters must be > 0");
  }
  if (num_clusters > n) num_clusters = std::max<std::size_t>(n, 1);
  std::vector<std::int32_t> part(n, -1);

  // Spread-out BFS sources: a seeded permutation's first k nodes.
  ppgnn::Rng rng(seed);
  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.uniform_int(i)]);
  }

  // One frontier queue per cell; rounds grow cells a node at a time so
  // sizes stay balanced (smallest-cell-first would be ideal; round-robin
  // is close enough and O(m)).
  std::vector<std::deque<NodeId>> frontier(num_clusters);
  std::vector<std::size_t> cell_size(num_clusters, 0);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    const NodeId s = perm[c];
    part[s] = static_cast<std::int32_t>(c);
    frontier[c].push_back(s);
    ++cell_size[c];
  }

  std::size_t assigned = num_clusters;
  const std::size_t target = (n + num_clusters - 1) / num_clusters;
  while (assigned < n) {
    bool progressed = false;
    for (std::size_t c = 0; c < num_clusters && assigned < n; ++c) {
      if (cell_size[c] >= target + 1) continue;  // soft balance cap
      while (!frontier[c].empty()) {
        const NodeId u = frontier[c].front();
        // Claim one unassigned neighbor of u, keeping u queued while it
        // still has unexplored neighbors.
        bool claimed = false;
        for (const auto v : g.neighbors(u)) {
          if (part[v] < 0) {
            part[v] = static_cast<std::int32_t>(c);
            frontier[c].push_back(v);
            ++cell_size[c];
            ++assigned;
            claimed = true;
            progressed = true;
            break;
          }
        }
        if (claimed) break;
        frontier[c].pop_front();  // exhausted node
      }
    }
    if (!progressed) {
      // Disconnected remainder (or all cells at cap): sweep leftovers into
      // the currently smallest cells.
      for (std::size_t i = 0; i < n && assigned < n; ++i) {
        const NodeId v = perm[i];
        if (part[v] >= 0) continue;
        const std::size_t c = static_cast<std::size_t>(
            std::min_element(cell_size.begin(), cell_size.end()) -
            cell_size.begin());
        part[v] = static_cast<std::int32_t>(c);
        frontier[c].push_back(v);
        ++cell_size[c];
        ++assigned;
      }
    }
  }
  return part;
}

double edge_cut_fraction(const CsrGraph& g,
                         const std::vector<std::int32_t>& part) {
  if (g.num_edges() == 0) return 0.0;
  std::size_t cut = 0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    for (const auto v : g.neighbors(static_cast<NodeId>(u))) {
      if (part[u] != part[v]) ++cut;
    }
  }
  return static_cast<double>(cut) / static_cast<double>(g.num_edges());
}

ClusterGcnSampler::ClusterGcnSampler(std::size_t num_layers,
                                     std::size_t num_clusters,
                                     std::size_t clusters_per_batch,
                                     std::uint64_t partition_seed)
    : layers_(num_layers), clusters_(num_clusters),
      per_batch_(std::max<std::size_t>(clusters_per_batch, 1)),
      partition_seed_(partition_seed) {
  if (num_layers == 0) {
    throw std::invalid_argument("ClusterGcnSampler: needs >= 1 layer");
  }
  if (num_clusters == 0) {
    throw std::invalid_argument("ClusterGcnSampler: needs >= 1 cluster");
  }
}

const std::vector<std::int32_t>& ClusterGcnSampler::partition_for(
    const CsrGraph& g) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_.graph != &g) {
    cache_.part = bfs_partition(g, clusters_, partition_seed_);
    cache_.graph = &g;
  }
  return cache_.part;
}

SampledBatch ClusterGcnSampler::sample(const CsrGraph& g,
                                       const std::vector<NodeId>& seeds,
                                       ppgnn::Rng& rng) const {
  const auto& part = partition_for(g);

  // Clusters covering the seeds, in first-seen order; cap at per_batch_
  // cells drawn uniformly from that cover (Cluster-GCN picks q cells per
  // step — here the seed set drives which cells are eligible so every
  // labeled seed keeps its self features).
  std::vector<std::int32_t> cover;
  std::unordered_set<std::int32_t> seen;
  for (const auto s : seeds) {
    if (seen.insert(part[s]).second) cover.push_back(part[s]);
  }
  if (cover.size() > per_batch_) {
    // Seeded Fisher-Yates, then keep the first per_batch_ cells.
    for (std::size_t i = cover.size(); i > 1; --i) {
      std::swap(cover[i - 1], cover[rng.uniform_int(i)]);
    }
    cover.resize(per_batch_);
  }
  std::unordered_set<std::int32_t> chosen(cover.begin(), cover.end());

  // Node set: seeds first (prefix invariant), then every other member of
  // the chosen cells.
  std::unordered_set<NodeId> in_set(seeds.begin(), seeds.end());
  std::vector<NodeId> nodes = seeds;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (chosen.count(part[v]) && !in_set.count(static_cast<NodeId>(v))) {
      nodes.push_back(static_cast<NodeId>(v));
    }
  }

  Block induced = induced_block(g, nodes);
  SampledBatch batch;
  batch.blocks.assign(layers_, induced);
  Block& last = batch.blocks.back();
  last.dst_nodes.assign(nodes.begin(), nodes.begin() + seeds.size());
  last.offsets.resize(seeds.size() + 1);
  last.indices.resize(last.offsets.back());
  return batch;
}

}  // namespace ppgnn::sampling
