// Cluster-GCN sampler (Chiang et al., KDD 2019).
//
// The third graph-wise sampling family the paper surveys (Section 2.3):
// partition the graph once into clusters, then train each mini-batch on the
// induced subgraph of a few clusters.  Like GraphSAINT, the subgraph size is
// independent of model depth; unlike SAINT, the node set is a fixed
// partition cell, so intra-cluster edges are dense and inter-cluster edges
// are dropped — which is exactly the topology modification that costs
// accuracy on low-homophily graphs.
//
// The original uses METIS; this repo has no external dependencies, so the
// partition is a seeded BFS region-growing over the same CSR (multi-source
// BFS from spread-out seeds, balancing cell sizes).  That preserves the
// property the sampler depends on — cells are connected and locality-biased
// — without the METIS edge-cut optimality.
//
// The partition is computed lazily per graph and memoized (keyed on the
// graph's identity), so repeated sample() calls across epochs reuse it, the
// same way Cluster-GCN amortizes METIS across training.
#pragma once

#include <memory>
#include <mutex>

#include "sampling/sampler.h"

namespace ppgnn::sampling {

// Standalone partition routine (exposed for tests and the partition-quality
// bench): assigns every node a cluster id in [0, num_clusters).
std::vector<std::int32_t> bfs_partition(const CsrGraph& g,
                                        std::size_t num_clusters,
                                        std::uint64_t seed);

// Fraction of edges whose endpoints land in different cells (edge cut).
double edge_cut_fraction(const CsrGraph& g,
                         const std::vector<std::int32_t>& part);

class ClusterGcnSampler : public Sampler {
 public:
  ClusterGcnSampler(std::size_t num_layers, std::size_t num_clusters,
                    std::size_t clusters_per_batch = 1,
                    std::uint64_t partition_seed = 17);

  SampledBatch sample(const CsrGraph& g, const std::vector<NodeId>& seeds,
                      ppgnn::Rng& rng) const override;
  std::string name() const override { return "ClusterGCN"; }
  std::size_t num_layers() const override { return layers_; }
  std::size_t num_clusters() const { return clusters_; }

 private:
  std::size_t layers_;
  std::size_t clusters_;
  std::size_t per_batch_;
  std::uint64_t partition_seed_;

  struct Cache {
    const CsrGraph* graph = nullptr;
    std::vector<std::int32_t> part;
  };
  mutable std::mutex mu_;
  mutable Cache cache_;

  const std::vector<std::int32_t>& partition_for(const CsrGraph& g) const;
};

}  // namespace ppgnn::sampling
