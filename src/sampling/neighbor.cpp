#include "sampling/neighbor.h"

namespace ppgnn::sampling {

std::vector<NodeId> sample_neighbors(const CsrGraph& g, NodeId v, int k,
                                     ppgnn::Rng& rng) {
  const auto nbrs = g.neighbors(v);
  const auto deg = static_cast<std::size_t>(nbrs.size());
  std::vector<NodeId> out;
  if (deg == 0) return out;
  if (k < 0 || deg <= static_cast<std::size_t>(k)) {
    out.assign(nbrs.begin(), nbrs.end());
    return out;
  }
  const auto picks =
      rng.sample_without_replacement(deg, static_cast<std::uint64_t>(k));
  out.reserve(picks.size());
  for (const auto p : picks) out.push_back(nbrs[p]);
  return out;
}

SampledBatch NeighborSampler::sample(const CsrGraph& g,
                                     const std::vector<NodeId>& seeds,
                                     ppgnn::Rng& rng) const {
  const std::size_t layers = fanouts_.size();
  SampledBatch batch;
  batch.blocks.resize(layers);
  std::vector<NodeId> frontier = seeds;
  // Build from the output layer inwards: blocks[layers-1] consumes the
  // seeds; its sampled sources become the next frontier.
  for (std::size_t l = layers; l-- > 0;) {
    std::vector<std::vector<NodeId>> chosen(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      chosen[i] = sample_neighbors(g, frontier[i], fanouts_[l], rng);
    }
    batch.blocks[l] = make_block(frontier, chosen);
    frontier = batch.blocks[l].src_nodes;
  }
  return batch;
}

}  // namespace ppgnn::sampling
