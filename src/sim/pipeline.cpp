#include "sim/pipeline.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace ppgnn::sim {

const char* to_string(DataPlacement p) {
  switch (p) {
    case DataPlacement::kGpu: return "GPU";
    case DataPlacement::kHost: return "Host";
    case DataPlacement::kStorage: return "SSD";
  }
  return "?";
}

const char* to_string(LoaderKind k) {
  switch (k) {
    case LoaderKind::kBaseline: return "baseline";
    case LoaderKind::kFusedAssembly: return "fused-assembly";
    case LoaderKind::kDoubleBuffer: return "double-buffer";
    case LoaderKind::kChunkPipeline: return "chunk-pipeline";
  }
  return "?";
}

const char* to_string(MpSystem s) {
  switch (s) {
    case MpSystem::kDglCpuSampling: return "DGL-vanilla";
    case MpSystem::kDglUva: return "DGL-UVA";
    case MpSystem::kDglPreload: return "DGL-preload";
    case MpSystem::kGnnLab: return "GNNLab";
    case MpSystem::kSalientPlusPlus: return "SALIENT++";
    case MpSystem::kGinex: return "Ginex";
  }
  return "?";
}

namespace {

// Shared tags.
constexpr const char* kAssembly = "assembly";
constexpr const char* kTransfer = "transfer";
constexpr const char* kForward = "forward";
constexpr const char* kBackward = "backward";
constexpr const char* kOptimizer = "optimizer";
constexpr const char* kSampling = "sampling";

// Builds a program for `batches` iterations via `build(prog, batches)`,
// then simulates a longer epoch of `total_batches` by extrapolating the
// steady-state rate measured between a half-length and full-length run.
// Tag busy-times are scaled linearly to the full batch count.
EpochSim extrapolated_epoch(
    std::size_t total_batches,
    const std::function<void(StreamProgram&, std::size_t)>& build) {
  const std::size_t n_sim = std::min<std::size_t>(total_batches, 96);
  StreamProgram full;
  build(full, n_sim);
  const double t_full = full.run();

  double epoch = t_full;
  double scale = 1.0;
  if (total_batches > n_sim) {
    StreamProgram half;
    build(half, n_sim / 2);
    const double t_half = half.run();
    const double steady =
        (t_full - t_half) / static_cast<double>(n_sim - n_sim / 2);
    epoch = t_full + steady * static_cast<double>(total_batches - n_sim);
    scale = static_cast<double>(total_batches) / static_cast<double>(n_sim);
  }

  EpochSim out;
  out.epoch_seconds = epoch;
  out.assembly_seconds = full.busy_time_by_tag(kAssembly) * scale;
  out.transfer_seconds = full.busy_time_by_tag(kTransfer) * scale;
  out.forward_seconds = full.busy_time_by_tag(kForward) * scale;
  out.backward_seconds = full.busy_time_by_tag(kBackward) * scale;
  out.optimizer_seconds = full.busy_time_by_tag(kOptimizer) * scale;
  out.sampling_seconds = full.busy_time_by_tag(kSampling) * scale;
  return out;
}

struct ComputeSplit {
  double fwd, bwd, opt;
};

ComputeSplit pp_compute_split(const CostModel& cm, const PpModelShape& model,
                              std::size_t batch) {
  const double total = pp_compute_per_batch(cm, model, batch);
  // Backward ~ 2x forward for dense stacks; optimizer is a bandwidth-bound
  // parameter sweep.
  const double opt =
      cm.machine().gpu.kernel_launch_s +
      3.0 * static_cast<double>(model.param_bytes()) /
          cm.machine().gpu.mem_bandwidth;
  return {total / 3.0, 2.0 * total / 3.0, opt};
}

}  // namespace

EpochSim simulate_pp_epoch(const PpPipelineConfig& cfg) {
  if (cfg.train_rows == 0 || cfg.batch_size == 0) {
    throw std::invalid_argument("simulate_pp_epoch: empty workload");
  }
  const CostModel cm(cfg.machine);
  const int g = std::max(1, cfg.num_gpus);
  const std::size_t row_bytes = cfg.model.row_bytes();
  const std::size_t b = cfg.batch_size;
  const std::size_t batch_bytes = b * row_bytes;
  // Data parallel: global batch = g * batch_size.
  const std::size_t steps = std::max<std::size_t>(
      1, (cfg.train_rows + g * b - 1) / (g * b));

  // Shared-resource derating: the aggregate host-egress cap only binds
  // when multiple GPUs pull concurrently (a single GPU gets its full link).
  const double pcie_bw =
      g == 1 ? cfg.machine.pcie.bandwidth
             : std::min(cfg.machine.pcie.bandwidth,
                        cfg.machine.host.egress_bandwidth / g);
  const double pcie_derate = pcie_bw / cfg.machine.pcie.bandwidth;
  const double ssd_share = 1.0 / g;

  const ComputeSplit cs = pp_compute_split(cm, cfg.model, b);
  const double allred = cm.allreduce(cfg.model.param_bytes(), g);

  const std::size_t chunks_per_batch =
      std::max<std::size_t>(1, (b + cfg.chunk_size - 1) / cfg.chunk_size);
  const std::size_t chunk_bytes = cfg.chunk_size * row_bytes;

  EpochSim result = extrapolated_epoch(steps, [&](StreamProgram& prog,
                                                  std::size_t batches) {
    const StreamId host = prog.add_stream("host");
    const StreamId dma = prog.add_stream("prefetch");
    const StreamId gpu = prog.add_stream("compute");

    // Double-buffer bookkeeping: transfer for batch k must wait for the
    // compute of batch k-2 (two buffers) or k-1 (single buffer).
    std::vector<OpId> compute_done;
    std::vector<OpId> load_done;

    for (std::size_t k = 0; k < batches; ++k) {
      std::vector<OpId> load_deps;
      OpId ready = 0;
      switch (cfg.loader) {
        case LoaderKind::kBaseline: {
          // Fig 6(a): everything serial through the host thread.
          if (!compute_done.empty()) load_deps.push_back(compute_done.back());
          const OpId a = prog.add_op(
              host, cm.host_assembly_baseline(b, row_bytes), kAssembly,
              load_deps);
          const OpId t = prog.add_op(
              host, cm.h2d(batch_bytes, /*pinned=*/false) / pcie_derate,
              kTransfer, {a});
          ready = t;
          break;
        }
        case LoaderKind::kFusedAssembly: {
          // Fig 6(b): fused host assembly, async pinned DMA, single buffer:
          // transfer k waits on compute k-1.
          const OpId a = prog.add_op(
              host, cm.host_assembly_fused(b, row_bytes), kAssembly, {});
          std::vector<OpId> tdeps{a};
          if (!compute_done.empty()) tdeps.push_back(compute_done.back());
          ready = prog.add_op(dma, cm.h2d(batch_bytes) / pcie_derate,
                              kTransfer, tdeps);
          break;
        }
        case LoaderKind::kDoubleBuffer: {
          if (cfg.placement == DataPlacement::kGpu) {
            // Data resident on GPU: the "load" is a gather kernel on the
            // prefetch stream.
            std::vector<OpId> deps;
            if (compute_done.size() >= 2) {
              deps.push_back(compute_done[compute_done.size() - 2]);
            }
            ready = prog.add_op(dma, cm.gpu_gather(b, row_bytes), kAssembly,
                                deps);
          } else if (cfg.placement == DataPlacement::kHost) {
            // Fig 6(c): host assembly overlapped, DMA on prefetch stream,
            // two buffers.
            const OpId a = prog.add_op(
                host, cm.host_assembly_fused(b, row_bytes), kAssembly, {});
            std::vector<OpId> tdeps{a};
            if (compute_done.size() >= 2) {
              tdeps.push_back(compute_done[compute_done.size() - 2]);
            }
            ready = prog.add_op(dma, cm.h2d(batch_bytes) / pcie_derate,
                                kTransfer, tdeps);
          } else {
            // Storage + SGD-RR: row-granular random reads (the naive
            // fallback the paper warns about, Section 4.3).
            std::vector<OpId> tdeps;
            if (compute_done.size() >= 2) {
              tdeps.push_back(compute_done[compute_done.size() - 2]);
            }
            ready = prog.add_op(
                dma, cm.ssd_random_read(b, row_bytes) / ssd_share / g,
                kTransfer, tdeps);
          }
          break;
        }
        case LoaderKind::kChunkPipeline: {
          // Fig 6(d): chunks DMA'd (or GDS-read) to GPU, assembled there.
          std::vector<OpId> tdeps;
          if (compute_done.size() >= 2) {
            tdeps.push_back(compute_done[compute_done.size() - 2]);
          }
          OpId last_chunk = 0;
          const double chunk_t =
              cfg.placement == DataPlacement::kStorage
                  ? cm.ssd_chunk_read(1, chunk_bytes) / ssd_share
                  : cm.h2d_chunks(1, chunk_bytes) / pcie_derate;
          for (std::size_t c = 0; c < chunks_per_batch; ++c) {
            last_chunk = prog.add_op(dma, chunk_t, kTransfer,
                                     c == 0 ? tdeps : std::vector<OpId>{});
          }
          // GPU-side batch assembly out of the staged chunks.
          ready = prog.add_op(dma, cm.gpu_gather(b, row_bytes), kAssembly,
                              {last_chunk});
          break;
        }
      }

      std::vector<OpId> cdeps{ready};
      const OpId f = prog.add_op(gpu, cs.fwd, kForward, cdeps);
      const OpId bw = prog.add_op(gpu, cs.bwd, kBackward, {f});
      const OpId o = prog.add_op(gpu, cs.opt + allred, kOptimizer, {bw});
      compute_done.push_back(o);
      load_done.push_back(ready);
    }
  });

  result.bytes_moved = steps * g * batch_bytes;
  return result;
}

EpochSim simulate_mp_epoch(const MpPipelineConfig& cfg) {
  if (cfg.train_rows == 0 || cfg.batch_size == 0) {
    throw std::invalid_argument("simulate_mp_epoch: empty workload");
  }
  const CostModel cm(cfg.machine);
  const int g = std::max(1, cfg.num_gpus);
  const std::size_t steps = std::max<std::size_t>(
      1, (cfg.train_rows + g * cfg.batch_size - 1) / (g * cfg.batch_size));

  // Scale sampled sizes by the system's sampler footprint.
  MpBatchShape shape = cfg.batch_shape;
  shape.input_rows =
      static_cast<std::size_t>(shape.input_rows * cfg.subgraph_scale);
  shape.total_edges =
      static_cast<std::size_t>(shape.total_edges * cfg.subgraph_scale);

  const std::size_t feat_bytes =
      shape.input_rows * cfg.model.feat_dim * sizeof(float);
  const double compute = mp_compute_per_batch(cm, cfg.model, cfg.batch_shape) *
                         cfg.subgraph_scale;
  const double allred = cm.allreduce(mp_param_bytes(cfg.model), g);
  const double pcie_derate =
      g == 1 ? 1.0
             : std::min(cfg.machine.pcie.bandwidth,
                        cfg.machine.host.egress_bandwidth / g) /
                   cfg.machine.pcie.bandwidth;

  EpochSim result = extrapolated_epoch(steps, [&](StreamProgram& prog,
                                                  std::size_t batches) {
    const StreamId host = prog.add_stream("host");
    const StreamId dma = prog.add_stream("prefetch");
    const StreamId gpu = prog.add_stream("compute");
    std::vector<OpId> compute_done;

    for (std::size_t k = 0; k < batches; ++k) {
      OpId ready = 0;
      switch (cfg.system) {
        case MpSystem::kDglCpuSampling: {
          // Serial: CPU sampling -> host gather -> pageable H2D -> compute.
          std::vector<OpId> deps;
          if (!compute_done.empty()) deps.push_back(compute_done.back());
          const OpId s = prog.add_op(host, cm.cpu_sample(shape.total_edges),
                                     kSampling, deps);
          const OpId a = prog.add_op(
              host,
              cm.host_assembly_fused(shape.input_rows,
                                     cfg.model.feat_dim * sizeof(float)),
              kAssembly, {s});
          ready = prog.add_op(host, cm.h2d(feat_bytes, false) / pcie_derate,
                              kTransfer, {a});
          break;
        }
        case MpSystem::kDglUva: {
          // GPU sampling; features read zero-copy during aggregation —
          // serial on the GPU stream.
          const OpId s = prog.add_op(gpu, cm.gpu_sample(shape.total_edges),
                                     kSampling, {});
          ready = prog.add_op(gpu, cm.uva_read(feat_bytes) / pcie_derate,
                              kTransfer, {s});
          break;
        }
        case MpSystem::kDglPreload: {
          const OpId s = prog.add_op(gpu, cm.gpu_sample(shape.total_edges),
                                     kSampling, {});
          ready = prog.add_op(
              gpu,
              cm.gpu_gather(shape.input_rows,
                            cfg.model.feat_dim * sizeof(float)),
              kAssembly, {s});
          break;
        }
        case MpSystem::kGnnLab: {
          // Factored: sampling + cached feature extraction on the prefetch
          // stream, overlapped with compute (double buffered).
          std::vector<OpId> deps;
          if (compute_done.size() >= 2) {
            deps.push_back(compute_done[compute_done.size() - 2]);
          }
          const OpId s = prog.add_op(dma, cm.gpu_sample(shape.total_edges),
                                     kSampling, deps);
          const double hit_bytes = feat_bytes * cfg.cache_hit;
          const double miss_bytes = feat_bytes * (1.0 - cfg.cache_hit);
          const OpId f = prog.add_op(
              dma,
              cm.gpu_gather(
                  static_cast<std::size_t>(shape.input_rows * cfg.cache_hit),
                  cfg.model.feat_dim * sizeof(float)) +
                  cm.uva_read(static_cast<std::size_t>(miss_bytes)) /
                      pcie_derate,
              kAssembly, {s});
          (void)hit_bytes;
          ready = f;
          break;
        }
        case MpSystem::kSalientPlusPlus: {
          // Pipelined CPU sampling + pinned transfer of cache misses.
          std::vector<OpId> deps;
          if (compute_done.size() >= 2) {
            deps.push_back(compute_done[compute_done.size() - 2]);
          }
          const OpId s = prog.add_op(host, cm.cpu_sample(shape.total_edges),
                                     kSampling, {});
          const OpId a = prog.add_op(
              host,
              cm.host_assembly_fused(
                  static_cast<std::size_t>(shape.input_rows *
                                           (1.0 - cfg.cache_hit)),
                  cfg.model.feat_dim * sizeof(float)),
              kAssembly, {s});
          std::vector<OpId> tdeps{a};
          if (compute_done.size() >= 2) {
            tdeps.push_back(compute_done[compute_done.size() - 2]);
          }
          ready = prog.add_op(
              dma,
              cm.h2d(static_cast<std::size_t>(feat_bytes *
                                              (1.0 - cfg.cache_hit))) /
                  pcie_derate,
              kTransfer, tdeps);
          break;
        }
        case MpSystem::kGinex: {
          // SSD-resident features with host cache; superbatch pipelining
          // overlaps the miss reads with compute.
          std::vector<OpId> deps;
          if (compute_done.size() >= 2) {
            deps.push_back(compute_done[compute_done.size() - 2]);
          }
          const OpId s = prog.add_op(host, cm.cpu_sample(shape.total_edges),
                                     kSampling, deps);
          const auto miss_rows = static_cast<std::size_t>(
              shape.input_rows * (1.0 - cfg.cache_hit));
          const OpId r = prog.add_op(
              host,
              cm.ssd_random_read(miss_rows,
                                 cfg.model.feat_dim * sizeof(float)) /
                  (1.0 / g),
              kTransfer, {s});
          const OpId a = prog.add_op(
              host,
              cm.host_assembly_fused(shape.input_rows,
                                     cfg.model.feat_dim * sizeof(float)),
              kAssembly, {r});
          ready = prog.add_op(dma, cm.h2d(feat_bytes) / pcie_derate,
                              kTransfer, {a});
          break;
        }
      }

      const OpId f = prog.add_op(gpu, compute / 3.0, kForward, {ready});
      const OpId bw = prog.add_op(gpu, 2.0 * compute / 3.0, kBackward, {f});
      const OpId o = prog.add_op(
          gpu,
          allred + 3.0 * static_cast<double>(mp_param_bytes(cfg.model)) /
                       cfg.machine.gpu.mem_bandwidth,
          kOptimizer, {bw});
      compute_done.push_back(o);
    }
  });

  result.bytes_moved = steps * g * feat_bytes;
  return result;
}

}  // namespace ppgnn::sim
