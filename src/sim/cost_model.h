// Durations for the primitive operations of a training pipeline, plus
// analytic compute/volume models for the PP-GNN and MP-GNN families.
//
// Every function returns seconds.  These are first-order models: bandwidth
// terms plus fixed per-call overheads.  They are deliberately simple — the
// phenomena the paper reports (per-item loader overhead, host gather
// bandwidth, PCIe vs HBM, SSD sequential vs random) are all first-order
// effects, and the pipeline simulator resolves the overlap structure.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/hardware.h"

namespace ppgnn::sim {

class CostModel {
 public:
  explicit CostModel(const MachineSpec& m) : m_(m) {}
  const MachineSpec& machine() const { return m_; }

  // -- Host-side batch assembly ------------------------------------------
  // Baseline loader: one framework call per row (Figure 6a).
  double host_assembly_baseline(std::size_t rows, std::size_t row_bytes) const;
  // Fused index_select: one call per batch, gather-bandwidth bound (4.1).
  double host_assembly_fused(std::size_t rows, std::size_t row_bytes) const;

  // -- Transfers ----------------------------------------------------------
  double h2d(std::size_t bytes, bool pinned = true) const;
  // One DMA per chunk (chunk reshuffling launches more, smaller transfers).
  double h2d_chunks(std::size_t num_chunks, std::size_t chunk_bytes) const;
  // Zero-copy access of host memory from a GPU kernel (DGL UVA mode).
  double uva_read(std::size_t bytes) const;

  // -- GPU-side kernels ----------------------------------------------------
  double gpu_gather(std::size_t rows, std::size_t row_bytes) const;
  double gpu_gemm(std::size_t m, std::size_t k, std::size_t n) const;
  // Host INT8 serving GEMM at the machine's CpuGemmSpec rate (the
  // dispatched or measured kernel-ladder arm) — what the serving-tier
  // service model prices forwards with, instead of GPU numbers.
  double cpu_gemm_s8(std::size_t m, std::size_t k, std::size_t n) const;
  // Edge-parallel SpMM / attention aggregation, bytes-bound.
  double gpu_spmm(std::size_t nnz, std::size_t feat_dim) const;

  // -- Cross-process RPC ----------------------------------------------------
  // One framed message (request or response) front <-> replica process:
  // the per-syscall cost amortized over the machine's writev coalescing
  // factor, plus per-frame encode/decode and byte streaming.  A round trip
  // is two of these (request + response sizes).
  double rpc_frame(std::size_t frame_bytes) const;

  // -- Storage --------------------------------------------------------------
  // Chunked sequential reads striped over parallel_streams files (GDS path).
  double ssd_chunk_read(std::size_t num_chunks, std::size_t chunk_bytes) const;
  // Row-granular random reads (the naive storage fallback, Section 4.3).
  double ssd_random_read(std::size_t rows, std::size_t row_bytes) const;

  // -- Collectives ----------------------------------------------------------
  // Ring all-reduce of gradient bytes over the PCIe fabric.
  double allreduce(std::size_t bytes, int num_gpus) const;

  // -- Graph sampling -------------------------------------------------------
  // CPU sampler: dominated by per-edge random access + bookkeeping.
  double cpu_sample(std::size_t edges_touched) const;
  // GPU sampler (DGL 0.8+): massively parallel, ~50x cheaper per edge.
  double gpu_sample(std::size_t edges_touched) const;

 private:
  const MachineSpec m_;
};

// ---------------------------------------------------------------------------
// PP-GNN analytic model shapes (Section 2.5 / Table 1).

enum class PpModelKind { kSgc, kSign, kHoga };
const char* to_string(PpModelKind k);

struct PpModelShape {
  PpModelKind kind = PpModelKind::kSign;
  std::size_t hops = 3;        // R
  std::size_t kernels = 1;     // K
  std::size_t feat_dim = 128;  // F
  std::size_t hidden = 512;
  std::size_t classes = 47;
  std::size_t mlp_layers = 3;  // SIGN/HOGA output MLP depth

  // Bytes of preprocessed input per training row: K*(R+1)*F*4 — the input
  // expansion factor of Section 3.4.  SGC consumes only the final hop.
  std::size_t row_bytes() const;
  // Forward+backward+optimizer FLOPs for a batch of b rows.
  double train_flops(std::size_t batch) const;
  std::size_t param_bytes() const;
};

// Compute time for one training step of batch size b (GEMM-bound dense
// model; backward ~ 2x forward; optimizer negligible but kernel launches
// are counted per layer).
double pp_compute_per_batch(const CostModel& cm, const PpModelShape& shape,
                            std::size_t batch);

// ---------------------------------------------------------------------------
// MP-GNN expected batch statistics (for the throughput model; real sampled
// sizes are used when real training runs).

struct MpBatchShape {
  std::vector<std::size_t> layer_nodes;  // nodes per layer, seeds last
  std::size_t input_rows = 0;            // feature rows fetched
  std::size_t total_edges = 0;           // aggregation edges
};

// Node-wise sampler growth: layer sizes b, b*f_L, b*f_L*f_{L-1}, ... capped
// at the graph size with a birthday-style unique-node correction.
MpBatchShape expected_neighbor_batch(const std::vector<int>& fanouts,
                                     std::size_t batch, std::size_t num_nodes);
// LABOR: same per-destination expectation but shared variates collapse the
// union of sources; `overlap` (0..1) scales the frontier growth (paper
// reports ~2-4x fewer unique nodes; 0.5 reproduces that).
MpBatchShape expected_labor_batch(const std::vector<int>& fanouts,
                                  std::size_t batch, std::size_t num_nodes,
                                  double overlap = 0.5);

struct MpModelShape {
  std::size_t feat_dim = 128;
  std::size_t hidden = 256;
  std::size_t classes = 47;
  std::size_t layers = 3;
};

double mp_compute_per_batch(const CostModel& cm, const MpModelShape& model,
                            const MpBatchShape& batch);
std::size_t mp_param_bytes(const MpModelShape& model);

}  // namespace ppgnn::sim
