// Discrete-event stream simulator.
//
// Models the execution timing of a training pipeline the way Figure 6 of
// the paper draws it: named streams (host thread, DMA/prefetch stream,
// compute stream) execute ops in program order; ops may additionally wait
// on ops from other streams (CUDA-event-style dependencies).  Durations are
// supplied by the cost model; the simulator only resolves overlap.
//
// The op graph is acyclic by construction (dependencies must reference
// already-added ops), so a single in-order pass computes all start/finish
// times.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace ppgnn::sim {

using OpId = std::size_t;
using StreamId = std::size_t;

class StreamProgram {
 public:
  StreamId add_stream(std::string name);

  // Appends an op to `stream` with the given duration (seconds).  The op
  // starts when both the stream is free and all `deps` have finished.
  // `tag` groups ops for phase accounting (e.g. "assembly", "h2d",
  // "compute").
  OpId add_op(StreamId stream, double duration, std::string tag,
              std::vector<OpId> deps = {});

  // Resolves all timings; returns the makespan.  Idempotent.
  double run();

  bool resolved() const { return resolved_; }
  double makespan() const { return makespan_; }
  double op_start(OpId id) const { return ops_[id].start; }
  double op_finish(OpId id) const { return ops_[id].finish; }

  // Total duration of ops carrying `tag` (not deduplicated for overlap).
  double busy_time_by_tag(const std::string& tag) const;
  // Wall-clock span during which at least one op with `tag` was running
  // (overlap-aware union of intervals).
  double span_by_tag(const std::string& tag) const;
  // Total busy time of one stream.
  double stream_busy_time(StreamId id) const;

  std::size_t num_ops() const { return ops_.size(); }
  std::size_t num_streams() const { return stream_names_.size(); }
  const std::string& stream_name(StreamId id) const {
    return stream_names_[id];
  }

 private:
  struct Op {
    StreamId stream;
    double duration;
    std::string tag;
    std::vector<OpId> deps;
    double start = 0, finish = 0;
  };
  std::vector<Op> ops_;
  std::vector<std::string> stream_names_;
  std::vector<double> stream_clock_;
  double makespan_ = 0;
  bool resolved_ = false;
};

}  // namespace ppgnn::sim
