#include "sim/hardware.h"

namespace ppgnn::sim {

double CpuGemmSpec::default_ops(Isa isa) {
  // Single-core sustained int8 GEMM rates at the serving shapes
  // (255x96 -> 32), one rung apart on the ladder: pmaddwd retires two
  // k-steps per lane over scalar's one, AVX2 doubles the lanes, vpdpbusd
  // doubles the k-steps again on twice-wide registers.  The absolute
  // scalar anchor (~6 Gop/s at -O2) is the placeholder a measured
  // kernel_ladder record replaces.
  switch (isa) {
    case Isa::kSse2:
      return 25.0e9;
    case Isa::kAvx2:
      return 50.0e9;
    case Isa::kAvx512Vnni:
      return 150.0e9;
    case Isa::kScalar:
    default:
      return 6.0e9;
  }
}

CpuGemmSpec CpuGemmSpec::dispatched() {
  CpuGemmSpec s;
  s.isa = active_isa();
  s.int8_ops = default_ops(s.isa);
  return s;
}

CpuGemmSpec CpuGemmSpec::measured(Isa isa, double gemm_gops) {
  CpuGemmSpec s;
  s.isa = isa;
  s.int8_ops = gemm_gops > 0 ? gemm_gops * 1e9 : default_ops(isa);
  return s;
}

RpcSpec RpcSpec::measured(double frames_per_writev) {
  RpcSpec s;
  if (frames_per_writev > 1.0) s.frames_per_syscall = frames_per_writev;
  return s;
}

MachineSpec MachineSpec::paper_server() {
  MachineSpec m;
  // RTX A6000: 38.7 TFLOPS fp32 peak; dense GEMM sustains ~50%; GDDR6
  // 768 GB/s.  Kernel launch ~8 us (CUDA driver, typical).
  m.gpu.fp32_flops = 19.0e12;
  m.gpu.mem_bandwidth = 700.0 * 1e9;
  m.gpu.memory_bytes = static_cast<std::size_t>(48) * 1024 * 1024 * 1024;
  m.gpu.kernel_launch_s = 8e-6;
  m.num_gpus = 4;

  // Dual Xeon 6248R: ~140 GB/s streaming across sockets in practice;
  // random-row gather through one torch index_select sustains far less
  // (~2.5 GB/s: scattered cache lines, NUMA-interleaved pages, single
  // gather thread) — which is why host-side batch assembly can exceed GPU
  // compute time even after fusing (Section 4.2), the gap chunk
  // reshuffling closes.
  m.host.mem_bandwidth = 140.0 * 1e9;
  m.host.gather_bandwidth = 2.5 * 1e9;
  m.host.memory_bytes = static_cast<std::size_t>(380) * 1024 * 1024 * 1024;
  // One framework call (dispatch + host kernel): ~20 us — this is what a
  // fused index_select pays once per batch.
  m.host.per_call_overhead_s = 20e-6;
  // Baseline PyTorch DataLoader path costs ~9 us per *item* (Python
  // __getitem__ + per-row copy + collate bookkeeping), paid b times per
  // batch.  This constant is what makes data loading dominate the vanilla
  // PP-GNN epoch (Figure 5: 69-92%) and calibrates the overall ~15x
  // optimization headroom of Figure 9.
  m.host.per_item_overhead_s = 9e-6;
  // Per-training-step framework overhead (Python dispatch, autograd
  // bookkeeping, optimizer step launches) — the floor under "compute" even
  // for a model as small as SGC.
  m.host.framework_step_overhead_s = 1e-3;
  // Aggregate host->GPU DMA egress across all devices: one GPU can pull
  // close to its full PCIe 4.0 x16 rate, but concurrent readers contend on
  // the root complex and cross-socket UPI (~16 GB/s observed aggregate).
  // This cap is what limits chunk-reshuffling scalability to ~1.3-1.5x on
  // 4 GPUs (Section 6.4, igb-medium).
  m.host.egress_bandwidth = 16.0 * 1e9;

  // PCIe 4.0 x16: 32 GB/s peak, ~25 GB/s effective for large pinned DMA;
  // ~10 us per-transfer setup.
  m.pcie.bandwidth = 25.0 * 1e9;
  m.pcie.latency_s = 10e-6;

  // Samsung PM9A3 (PCIe 4.0 x4): ~6.5 GB/s sequential read.  The drive is
  // spec'd at ~1M 4KiB random IOPS, but a training loader issuing row-
  // granular reads runs at modest queue depth with per-request syscall
  // overhead — ~200K effective IOPS, which is what makes SGD-RR from
  // storage unusable (Section 4.3).  Two drives and per-hop file splitting
  // give 4 usable parallel streams.
  m.ssd.seq_read_bandwidth = 6.5 * 1e9;
  m.ssd.rand_read_iops = 2.0e5;
  m.ssd.request_latency_s = 80e-6;
  m.ssd.parallel_streams = 4;

  // Xeon 6248R is Cascade Lake: AVX-512 VNNI on every core.  The fixed
  // default-table entry — NOT the local CPUID probe — keeps
  // paper_server() deterministic across build hosts; CpuGemmSpec::
  // dispatched()/measured() are the host-tracking alternatives.
  m.cpu_gemm.isa = Isa::kAvx512Vnni;
  m.cpu_gemm.int8_ops = CpuGemmSpec::default_ops(Isa::kAvx512Vnni);
  return m;
}

}  // namespace ppgnn::sim
