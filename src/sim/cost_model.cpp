#include "sim/cost_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppgnn::sim {

double CostModel::host_assembly_baseline(std::size_t rows,
                                         std::size_t row_bytes) const {
  // One framework call per row + the actual copies at gather bandwidth.
  return static_cast<double>(rows) * m_.host.per_item_overhead_s +
         static_cast<double>(rows * row_bytes) / m_.host.gather_bandwidth;
}

double CostModel::host_assembly_fused(std::size_t rows,
                                      std::size_t row_bytes) const {
  return m_.host.per_call_overhead_s +
         static_cast<double>(rows * row_bytes) / m_.host.gather_bandwidth;
}

double CostModel::h2d(std::size_t bytes, bool pinned) const {
  // Pageable copies stage through a bounce buffer: ~half effective rate.
  const double bw = pinned ? m_.pcie.bandwidth : m_.pcie.bandwidth * 0.5;
  return m_.pcie.latency_s + static_cast<double>(bytes) / bw;
}

double CostModel::h2d_chunks(std::size_t num_chunks,
                             std::size_t chunk_bytes) const {
  return static_cast<double>(num_chunks) *
         (m_.pcie.latency_s +
          static_cast<double>(chunk_bytes) / m_.pcie.bandwidth);
}

double CostModel::uva_read(std::size_t bytes) const {
  // Zero-copy reads are PCIe-bound with worse efficiency than bulk DMA
  // (fine-grained cache-line requests): ~60% of link bandwidth.
  return static_cast<double>(bytes) / (m_.pcie.bandwidth * 0.6);
}

double CostModel::gpu_gather(std::size_t rows, std::size_t row_bytes) const {
  // Read + write each row through HBM.
  return m_.gpu.kernel_launch_s +
         2.0 * static_cast<double>(rows * row_bytes) / m_.gpu.mem_bandwidth;
}

double CostModel::gpu_gemm(std::size_t m, std::size_t k, std::size_t n) const {
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  // Small GEMMs are bandwidth-bound; take max of flop and byte cost.
  const double bytes = 4.0 * (static_cast<double>(m) * k +
                              static_cast<double>(k) * n +
                              static_cast<double>(m) * n);
  return m_.gpu.kernel_launch_s +
         std::max(flops / m_.gpu.fp32_flops, bytes / m_.gpu.mem_bandwidth);
}

double CostModel::cpu_gemm_s8(std::size_t m, std::size_t k,
                              std::size_t n) const {
  const double ops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                     static_cast<double>(n);
  // Ladder kernels run in-process on the shared pool: no kernel launch,
  // just the framework-call floor, plus streaming the packed weights once
  // (small batches are memory-bound on the weight panel, not the MACs).
  const double bytes = static_cast<double>(k) * n +
                       static_cast<double>(m) * k +
                       4.0 * static_cast<double>(m) * n;
  return m_.host.per_call_overhead_s +
         std::max(ops / m_.cpu_gemm.int8_ops,
                  bytes / m_.host.mem_bandwidth);
}

double CostModel::rpc_frame(std::size_t frame_bytes) const {
  const double coalesce = std::max(1.0, m_.rpc.frames_per_syscall);
  return m_.rpc.syscall_overhead_s / coalesce + m_.rpc.frame_overhead_s +
         static_cast<double>(frame_bytes) / m_.rpc.bandwidth;
}

double CostModel::gpu_spmm(std::size_t nnz, std::size_t feat_dim) const {
  // Per edge: read one source row + accumulate — bytes dominate.
  const double bytes = static_cast<double>(nnz) *
                       (static_cast<double>(feat_dim) * 4.0 + 8.0);
  // Irregular access sustains ~40% of peak HBM bandwidth.
  return m_.gpu.kernel_launch_s + bytes / (m_.gpu.mem_bandwidth * 0.4);
}

double CostModel::ssd_chunk_read(std::size_t num_chunks,
                                 std::size_t chunk_bytes) const {
  const double streams = std::max(1, m_.ssd.parallel_streams);
  // Chunked GDS reads interleave R+1 hop files and re-stripe into batch
  // layout on the GPU; effective throughput is ~45% of the drive's large-
  // block sequential rate (calibrated so SSD+CR lands within a few percent
  // of host-memory SGD-RR, as the paper measures in Appendix H).
  const double effective_bw = m_.ssd.seq_read_bandwidth * 0.45;
  const double per_chunk = m_.ssd.request_latency_s / streams +
                           static_cast<double>(chunk_bytes) / effective_bw;
  return static_cast<double>(num_chunks) * per_chunk;
}

double CostModel::ssd_random_read(std::size_t rows,
                                  std::size_t row_bytes) const {
  // Each row costs ceil(row_bytes / block) IOPS-bound block reads.
  const double blocks_per_row = std::ceil(
      static_cast<double>(row_bytes) /
      static_cast<double>(m_.ssd.rand_block_bytes));
  const double iops = m_.ssd.rand_read_iops;
  return static_cast<double>(rows) * blocks_per_row / iops;
}

double CostModel::allreduce(std::size_t bytes, int num_gpus) const {
  if (num_gpus <= 1) return 0.0;
  const double factor =
      2.0 * (static_cast<double>(num_gpus) - 1.0) / num_gpus;
  return m_.pcie.latency_s * num_gpus +
         factor * static_cast<double>(bytes) /
             (m_.pcie.bandwidth * m_.allreduce_efficiency);
}

double CostModel::cpu_sample(std::size_t edges_touched) const {
  // ~25M random edge touches/s/thread, 16 usable sampler threads.
  return static_cast<double>(edges_touched) / (25e6 * 16);
}

double CostModel::gpu_sample(std::size_t edges_touched) const {
  return m_.gpu.kernel_launch_s * 4 +
         static_cast<double>(edges_touched) / 5e9;
}

// ---------------------------------------------------------------------------

const char* to_string(PpModelKind k) {
  switch (k) {
    case PpModelKind::kSgc: return "SGC";
    case PpModelKind::kSign: return "SIGN";
    case PpModelKind::kHoga: return "HOGA";
  }
  return "?";
}

std::size_t PpModelShape::row_bytes() const {
  const std::size_t hops_used = kind == PpModelKind::kSgc ? 1 : hops + 1;
  return kernels * hops_used * feat_dim * sizeof(float);
}

double PpModelShape::train_flops(std::size_t batch) const {
  const double b = static_cast<double>(batch);
  const double f = static_cast<double>(feat_dim);
  const double h = static_cast<double>(hidden);
  const double c = static_cast<double>(classes);
  const double r1 = static_cast<double>(hops + 1) * kernels;
  double fwd = 0;
  switch (kind) {
    case PpModelKind::kSgc:
      // One linear layer on the final-hop features.
      fwd = 2.0 * b * f * c;
      break;
    case PpModelKind::kSign:
      // Per-hop linear F->H, then (mlp_layers-1) hidden layers on the
      // concatenation, then H->C.
      fwd = 2.0 * b * r1 * f * h                      // inception branches
            + 2.0 * b * (r1 * h) * h                  // first MLP layer
            + 2.0 * b * h * h * (mlp_layers > 2 ? mlp_layers - 2 : 0)
            + 2.0 * b * h * c;
      break;
    case PpModelKind::kHoga:
      // Token projection, QKVO projections, attention scores/weighted sum,
      // then the output MLP on the attention readout.
      fwd = 2.0 * b * r1 * f * h                      // hop tokens -> hidden
            + 4.0 * 2.0 * b * r1 * h * h              // Q,K,V,O
            + 2.0 * 2.0 * b * r1 * r1 * h             // scores + weighted sum
            + 2.0 * b * h * h + 2.0 * b * h * c;      // MLP head
      break;
  }
  // backward ~ 2x forward; optimizer update ~ 2 flops/param (folded into
  // the 3x since parameters are small next to activations here).
  return 3.0 * fwd;
}

std::size_t PpModelShape::param_bytes() const {
  const std::size_t r1 = (hops + 1) * kernels;
  std::size_t params = 0;
  switch (kind) {
    case PpModelKind::kSgc:
      params = feat_dim * classes;
      break;
    case PpModelKind::kSign:
      params = r1 * feat_dim * hidden + r1 * hidden * hidden +
               (mlp_layers > 2 ? (mlp_layers - 2) * hidden * hidden : 0) +
               hidden * classes;
      break;
    case PpModelKind::kHoga:
      params = feat_dim * hidden + 4 * hidden * hidden + hidden * hidden +
               hidden * classes;
      break;
  }
  return params * sizeof(float);
}

double pp_compute_per_batch(const CostModel& cm, const PpModelShape& shape,
                            std::size_t batch) {
  const double flops = shape.train_flops(batch);
  // Sustained fraction of GEMM peak per model family.  Plain dense stacks
  // (SIGN) run near library GEMM efficiency; SGC's single tiny GEMM is
  // launch/bandwidth bound; HOGA's per-head attention kernels, layer norm
  // and residual traffic sustain far less (calibrated so the Figure 5
  // loading fractions land at the paper's 68.7 / 88.8 / 91.5%).
  double efficiency = 0.75;
  switch (shape.kind) {
    case PpModelKind::kSgc: efficiency = 0.5; break;
    case PpModelKind::kSign: efficiency = 0.75; break;
    case PpModelKind::kHoga: efficiency = 0.12; break;
  }
  // Rough kernel count: one per layer-ish op, fwd+bwd.
  const double layers =
      shape.kind == PpModelKind::kSgc
          ? 1.0
          : static_cast<double>(shape.hops + 1 + shape.mlp_layers +
                                (shape.kind == PpModelKind::kHoga ? 6 : 0));
  return flops / (cm.machine().gpu.fp32_flops * efficiency) +
         2.0 * layers * cm.machine().gpu.kernel_launch_s +
         cm.machine().host.framework_step_overhead_s;
}

// ---------------------------------------------------------------------------

namespace {
// Expected unique draws when `draws` balls land uniformly in `bins`.
double expected_unique(double draws, double bins) {
  if (bins <= 0) return 0;
  return bins * (1.0 - std::exp(-draws / bins));
}
}  // namespace

MpBatchShape expected_neighbor_batch(const std::vector<int>& fanouts,
                                     std::size_t batch,
                                     std::size_t num_nodes) {
  MpBatchShape s;
  const double n = static_cast<double>(num_nodes);
  double frontier = static_cast<double>(batch);
  s.layer_nodes.push_back(batch);
  // fanouts[0] is the input-side layer; expansion walks from seeds inwards.
  for (std::size_t l = fanouts.size(); l-- > 0;) {
    const double drawn = frontier * fanouts[l];
    s.total_edges += static_cast<std::size_t>(drawn);
    frontier = frontier + expected_unique(drawn, n);
    frontier = std::min(frontier, n);
    s.layer_nodes.push_back(static_cast<std::size_t>(frontier));
  }
  s.input_rows = s.layer_nodes.back();
  return s;
}

MpBatchShape expected_labor_batch(const std::vector<int>& fanouts,
                                  std::size_t batch, std::size_t num_nodes,
                                  double overlap) {
  MpBatchShape s;
  const double n = static_cast<double>(num_nodes);
  double frontier = static_cast<double>(batch);
  s.layer_nodes.push_back(batch);
  for (std::size_t l = fanouts.size(); l-- > 0;) {
    const double drawn = frontier * fanouts[l];
    s.total_edges += static_cast<std::size_t>(drawn);
    // Shared variates collapse the union of newly-sampled sources.
    frontier = frontier + overlap * expected_unique(drawn, n);
    frontier = std::min(frontier, n);
    s.layer_nodes.push_back(static_cast<std::size_t>(frontier));
  }
  s.input_rows = s.layer_nodes.back();
  return s;
}

double mp_compute_per_batch(const CostModel& cm, const MpModelShape& model,
                            const MpBatchShape& batch) {
  if (batch.layer_nodes.size() != model.layers + 1) {
    throw std::invalid_argument("mp_compute_per_batch: layer count mismatch");
  }
  double t = 0;
  // layer_nodes is seeds-first; walk input-side first (largest layer).
  for (std::size_t l = 0; l < model.layers; ++l) {
    const std::size_t dst = batch.layer_nodes[model.layers - 1 - l];
    const std::size_t src = batch.layer_nodes[model.layers - l];
    const std::size_t in = l == 0 ? model.feat_dim : model.hidden;
    const std::size_t out =
        l + 1 == model.layers ? model.classes : model.hidden;
    // Aggregation (sparse) over the block edges at this layer + dense
    // transforms for self and neighbor terms; x3 for backward.
    const std::size_t edges =
        batch.total_edges * src / std::max<std::size_t>(1, batch.input_rows);
    t += 3.0 * (cm.gpu_spmm(edges, in) + cm.gpu_gemm(dst, in, out) +
                cm.gpu_gemm(dst, in, out));
  }
  return t + cm.machine().host.framework_step_overhead_s;
}

std::size_t mp_param_bytes(const MpModelShape& model) {
  std::size_t params = 0;
  for (std::size_t l = 0; l < model.layers; ++l) {
    const std::size_t in = l == 0 ? model.feat_dim : model.hidden;
    const std::size_t out =
        l + 1 == model.layers ? model.classes : model.hidden;
    params += 2 * in * out + out;
  }
  return params * sizeof(float);
}

}  // namespace ppgnn::sim
