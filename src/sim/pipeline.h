// Pipeline builders: turn a (placement, loader, model, dataset-size)
// configuration into a stream program and simulate one epoch.
//
// These correspond 1:1 with the paper's execution diagrams (Figure 6):
//   kBaseline      — Fig 6(a): per-row host assembly, serial with compute
//   kFusedAssembly — Fig 6(b): one index_select per batch + async DMA
//   kDoubleBuffer  — Fig 6(c): prefetch stream + GPU double buffer
//   kChunkPipeline — Fig 6(d): chunk DMA (or GDS read) + GPU-side assembly
// and with the MP-GNN training systems of Section 6 (DGL vanilla / UVA /
// preload, GNNLab, SALIENT++, Ginex).
#pragma once

#include <cstddef>
#include <string>

#include "sim/cost_model.h"
#include "sim/event_sim.h"

namespace ppgnn::sim {

enum class DataPlacement { kGpu, kHost, kStorage };
enum class LoaderKind {
  kBaseline,
  kFusedAssembly,
  kDoubleBuffer,
  kChunkPipeline,
};
const char* to_string(DataPlacement p);
const char* to_string(LoaderKind k);

struct PpPipelineConfig {
  MachineSpec machine = MachineSpec::paper_server();
  PpModelShape model;
  std::size_t train_rows = 0;
  std::size_t batch_size = 8000;
  std::size_t chunk_size = 8000;
  LoaderKind loader = LoaderKind::kDoubleBuffer;
  DataPlacement placement = DataPlacement::kHost;
  int num_gpus = 1;
};

struct EpochSim {
  double epoch_seconds = 0;
  double assembly_seconds = 0;   // host- or GPU-side batch assembly
  double transfer_seconds = 0;   // H2D / storage / UVA traffic
  double forward_seconds = 0;
  double backward_seconds = 0;
  double optimizer_seconds = 0;
  double sampling_seconds = 0;   // MP-GNN only
  std::size_t bytes_moved = 0;   // host->GPU or storage->GPU traffic

  double loading_seconds() const { return assembly_seconds + transfer_seconds; }
  double compute_seconds() const {
    return forward_seconds + backward_seconds + optimizer_seconds;
  }
  double throughput_epochs_per_sec() const {
    return epoch_seconds > 0 ? 1.0 / epoch_seconds : 0;
  }
};

// Simulates one PP-GNN training epoch.  For num_gpus > 1 the model is data
// parallel: each GPU runs train_rows / num_gpus rows per epoch plus a ring
// all-reduce per step; shared-resource bandwidths (host gather for loader
// processes is per-process, but aggregate host egress and SSD bandwidth are
// divided across GPUs).
EpochSim simulate_pp_epoch(const PpPipelineConfig& cfg);

// ---------------------------------------------------------------------------
// MP-GNN training systems.

enum class MpSystem {
  kDglCpuSampling,  // "SAGE-Vanilla": CPU sampler, host gather + pageable H2D
  kDglUva,          // GPU sampler, zero-copy feature access over PCIe
  kDglPreload,      // everything resident in GPU memory
  kGnnLab,          // GPU sampler + GPU feature cache (factored design)
  kSalientPlusPlus, // pipelined CPU sampling + caching + pinned transfer
  kGinex,           // SSD-resident features with host-side cache
};
const char* to_string(MpSystem s);

struct MpPipelineConfig {
  MachineSpec machine = MachineSpec::paper_server();
  MpModelShape model;
  MpBatchShape batch_shape;      // expected sampled sizes per batch
  std::size_t train_rows = 0;
  std::size_t batch_size = 8000;
  MpSystem system = MpSystem::kDglUva;
  int num_gpus = 1;
  // Fraction of feature reads served by the system's cache (GNNLab GPU
  // cache / SALIENT++ replicated cache / Ginex host cache).
  double cache_hit = 0.8;
  // GNNLab's hardcoded neighbor sampler materializes larger subgraphs than
  // LABOR (Section 6.4); this factor scales the batch shape.
  double subgraph_scale = 1.0;
};

EpochSim simulate_mp_epoch(const MpPipelineConfig& cfg);

}  // namespace ppgnn::sim
