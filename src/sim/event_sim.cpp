#include "sim/event_sim.h"

#include <algorithm>
#include <stdexcept>

namespace ppgnn::sim {

StreamId StreamProgram::add_stream(std::string name) {
  stream_names_.push_back(std::move(name));
  stream_clock_.push_back(0.0);
  return stream_names_.size() - 1;
}

OpId StreamProgram::add_op(StreamId stream, double duration, std::string tag,
                           std::vector<OpId> deps) {
  if (stream >= stream_names_.size()) {
    throw std::invalid_argument("add_op: unknown stream");
  }
  if (duration < 0) throw std::invalid_argument("add_op: negative duration");
  for (const OpId d : deps) {
    if (d >= ops_.size()) {
      throw std::invalid_argument("add_op: dependency on future op");
    }
  }
  ops_.push_back({stream, duration, std::move(tag), std::move(deps), 0, 0});
  resolved_ = false;
  return ops_.size() - 1;
}

double StreamProgram::run() {
  if (resolved_) return makespan_;
  std::fill(stream_clock_.begin(), stream_clock_.end(), 0.0);
  makespan_ = 0;
  for (auto& op : ops_) {
    double ready = stream_clock_[op.stream];
    for (const OpId d : op.deps) ready = std::max(ready, ops_[d].finish);
    op.start = ready;
    op.finish = ready + op.duration;
    stream_clock_[op.stream] = op.finish;
    makespan_ = std::max(makespan_, op.finish);
  }
  resolved_ = true;
  return makespan_;
}

double StreamProgram::busy_time_by_tag(const std::string& tag) const {
  double total = 0;
  for (const auto& op : ops_) {
    if (op.tag == tag) total += op.duration;
  }
  return total;
}

double StreamProgram::span_by_tag(const std::string& tag) const {
  std::vector<std::pair<double, double>> intervals;
  for (const auto& op : ops_) {
    if (op.tag == tag && op.duration > 0) {
      intervals.emplace_back(op.start, op.finish);
    }
  }
  std::sort(intervals.begin(), intervals.end());
  double span = 0, cur_lo = 0, cur_hi = -1;
  for (const auto& [lo, hi] : intervals) {
    if (hi <= cur_hi) continue;
    if (lo > cur_hi) {
      if (cur_hi > cur_lo) span += cur_hi - cur_lo;
      cur_lo = lo;
    }
    cur_hi = hi;
  }
  if (cur_hi > cur_lo) span += cur_hi - cur_lo;
  return span;
}

double StreamProgram::stream_busy_time(StreamId id) const {
  double total = 0;
  for (const auto& op : ops_) {
    if (op.stream == id) total += op.duration;
  }
  return total;
}

}  // namespace ppgnn::sim
