// Hardware specifications for the cost model.
//
// MachineSpec::paper_server() encodes the server of Appendix C: two Xeon
// Gold 6248R CPUs with 380 GB DRAM, four RTX A6000 GPUs (48 GB each) on
// PCIe 4.0 x16, and Samsung PM9A3 NVMe SSDs.  Effective (not peak)
// bandwidths are used throughout; each constant notes its provenance.
#pragma once

#include <cstddef>

#include "tensor/cpu_features.h"

namespace ppgnn::sim {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

struct GpuSpec {
  double fp32_flops = 0;          // sustained FLOP/s for dense GEMM
  double mem_bandwidth = 0;       // bytes/s (HBM/GDDR)
  std::size_t memory_bytes = 0;
  double kernel_launch_s = 0;     // per-kernel launch latency
};

struct HostSpec {
  double mem_bandwidth = 0;       // bytes/s, streaming
  double gather_bandwidth = 0;    // bytes/s, random-row gather (one call)
  std::size_t memory_bytes = 0;
  // Per-call overhead of a host-side framework operation (the PyTorch
  // dispatch + kernel-launch cost the "efficient batch assembly"
  // optimization amortizes, Section 4.1).
  double per_call_overhead_s = 0;
  // Per-item overhead of the *baseline* loader, which extracts node
  // features one row at a time (Figure 6a).
  double per_item_overhead_s = 0;
  // Per-training-step framework overhead (Python/driver bookkeeping).
  double framework_step_overhead_s = 0;
  // Aggregate DMA egress the host can feed to all GPUs at once (root
  // complex + UPI contention).  This is what caps chunk-reshuffling
  // scalability on multiple GPUs (Section 6.4: "bottlenecked by
  // host-to-GPU bandwidth, and using more GPUs does not mitigate it").
  double egress_bandwidth = 0;
};

struct LinkSpec {
  double bandwidth = 0;  // bytes/s
  double latency_s = 0;  // per-transfer setup (DMA descriptor etc.)
};

// The host-side INT8 serving GEMM (tensor/quant.h kernel ladder).  The
// serving tier in this repo runs inference on CPU, so fleetsim's
// first-principles service model prices the forward pass off THIS spec —
// which arm the runtime dispatch picked and how fast it multiplies —
// instead of the GPU training numbers above.  `int8_ops` follows the GEMM
// convention 2*m*k*n ops per multiply: gemm seconds = 2*m*k*n / int8_ops.
struct CpuGemmSpec {
  Isa isa = Isa::kScalar;
  double int8_ops = 6.0e9;  // sustained ops/s at the serving shapes

  // Provenance-documented defaults per ladder arm: single-core sustained
  // rates on the 255x96x32 serving Linear (bench_kernels; a Cascade
  // Lake-class core).  Placeholders until a measured table overrides them
  // — the deliberately conservative scalar floor is what a non-x86 host
  // models.
  static double default_ops(Isa isa);
  // The arm the runtime dispatch would pick on THIS host (active_isa():
  // CPUID probe or PPGNN_ISA), with the default table's rate — what
  // fleetsim_cli uses when no measured BENCH_serving.json is at hand.
  static CpuGemmSpec dispatched();
  // A measured table entry: `gemm_gops` as benched (bench_serving_latency
  // kernel_ladder records, 2*m*k*n/seconds/1e9) — the calibrated path.
  static CpuGemmSpec measured(Isa isa, double gemm_gops);
};

// Cross-process RPC transport (src/rpc/): the cost of shipping one framed
// request or response between a serving front and a replica process over a
// local socket.  The writev fast path amortizes the per-syscall cost over
// `frames_per_syscall` coalesced frames; per-frame encode/decode work and
// byte streaming remain per frame.  Defaults model a Linux Unix-domain
// socket; measured() takes the BENCH_serving.json cross_process record's
// observed coalescing factor so fleetsim prices the fleet it actually ran.
struct RpcSpec {
  double syscall_overhead_s = 2.0e-6;   // sendmsg/recv pair, local socket
  double frame_overhead_s = 0.5e-6;     // encode + decode + queue handling
  double bandwidth = 4.0e9;             // bytes/s through the socket copy
  double frames_per_syscall = 1.0;      // writev coalescing factor (>= 1)

  // Calibrated from a cross_process bench record: the measured
  // frames-per-writev ratio, with non-positive values degrading to the
  // uncoalesced default — the same guard CpuGemmSpec::measured applies.
  static RpcSpec measured(double frames_per_writev);
};

struct StorageSpec {
  double seq_read_bandwidth = 0;   // bytes/s, large sequential reads
  double rand_read_iops = 0;       // 4 KiB random read operations/s
  std::size_t rand_block_bytes = 4096;
  double request_latency_s = 0;
  // Number of independent files/queues that can be read in parallel; the
  // implementation splits hop features into separate files (Section 4.3).
  int parallel_streams = 4;
};

struct MachineSpec {
  GpuSpec gpu;
  int num_gpus = 1;
  HostSpec host;
  LinkSpec pcie;       // host <-> one GPU
  StorageSpec ssd;
  CpuGemmSpec cpu_gemm;  // host INT8 serving GEMM (see CpuGemmSpec)
  RpcSpec rpc;           // front <-> replica-process wire cost (see RpcSpec)
  // All-reduce efficiency factor for data-parallel gradient sync over the
  // PCIe fabric (ring all-reduce without NVLink).
  double allreduce_efficiency = 0.7;

  static MachineSpec paper_server();
};

}  // namespace ppgnn::sim
