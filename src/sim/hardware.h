// Hardware specifications for the cost model.
//
// MachineSpec::paper_server() encodes the server of Appendix C: two Xeon
// Gold 6248R CPUs with 380 GB DRAM, four RTX A6000 GPUs (48 GB each) on
// PCIe 4.0 x16, and Samsung PM9A3 NVMe SSDs.  Effective (not peak)
// bandwidths are used throughout; each constant notes its provenance.
#pragma once

#include <cstddef>

namespace ppgnn::sim {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

struct GpuSpec {
  double fp32_flops = 0;          // sustained FLOP/s for dense GEMM
  double mem_bandwidth = 0;       // bytes/s (HBM/GDDR)
  std::size_t memory_bytes = 0;
  double kernel_launch_s = 0;     // per-kernel launch latency
};

struct HostSpec {
  double mem_bandwidth = 0;       // bytes/s, streaming
  double gather_bandwidth = 0;    // bytes/s, random-row gather (one call)
  std::size_t memory_bytes = 0;
  // Per-call overhead of a host-side framework operation (the PyTorch
  // dispatch + kernel-launch cost the "efficient batch assembly"
  // optimization amortizes, Section 4.1).
  double per_call_overhead_s = 0;
  // Per-item overhead of the *baseline* loader, which extracts node
  // features one row at a time (Figure 6a).
  double per_item_overhead_s = 0;
  // Per-training-step framework overhead (Python/driver bookkeeping).
  double framework_step_overhead_s = 0;
  // Aggregate DMA egress the host can feed to all GPUs at once (root
  // complex + UPI contention).  This is what caps chunk-reshuffling
  // scalability on multiple GPUs (Section 6.4: "bottlenecked by
  // host-to-GPU bandwidth, and using more GPUs does not mitigate it").
  double egress_bandwidth = 0;
};

struct LinkSpec {
  double bandwidth = 0;  // bytes/s
  double latency_s = 0;  // per-transfer setup (DMA descriptor etc.)
};

struct StorageSpec {
  double seq_read_bandwidth = 0;   // bytes/s, large sequential reads
  double rand_read_iops = 0;       // 4 KiB random read operations/s
  std::size_t rand_block_bytes = 4096;
  double request_latency_s = 0;
  // Number of independent files/queues that can be read in parallel; the
  // implementation splits hop features into separate files (Section 4.3).
  int parallel_streams = 4;
};

struct MachineSpec {
  GpuSpec gpu;
  int num_gpus = 1;
  HostSpec host;
  LinkSpec pcie;       // host <-> one GPU
  StorageSpec ssd;
  // All-reduce efficiency factor for data-parallel gradient sync over the
  // PCIe fabric (ring all-reduce without NVLink).
  double allreduce_efficiency = 0.7;

  static MachineSpec paper_server();
};

}  // namespace ppgnn::sim
