#include "nn/layernorm.h"

#include <cmath>
#include <stdexcept>

namespace ppgnn::nn {

LayerNorm::LayerNorm(std::size_t dim, float eps)
    : dim_(dim),
      eps_(eps),
      gamma_(Tensor::full({dim}, 1.f)),
      beta_({dim}),
      grad_gamma_({dim}),
      grad_beta_({dim}) {}

Tensor LayerNorm::forward(const Tensor& x, bool train) {
  if (x.size() % dim_ != 0) {
    throw std::invalid_argument("LayerNorm: trailing dim mismatch");
  }
  const std::size_t rows = x.size() / dim_;
  Tensor out(x.shape());
  cached_xhat_ = Tensor(x.shape());
  inv_std_.resize(rows);
  const float* px = x.data();
  float* po = out.data();
  float* ph = cached_xhat_.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = px + r * dim_;
    float mean = 0.f;
    for (std::size_t j = 0; j < dim_; ++j) mean += xr[j];
    mean /= static_cast<float>(dim_);
    float var = 0.f;
    for (std::size_t j = 0; j < dim_; ++j) {
      const float d = xr[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(dim_);
    const float inv = 1.f / std::sqrt(var + eps_);
    inv_std_[r] = inv;
    float* hr = ph + r * dim_;
    float* orow = po + r * dim_;
    for (std::size_t j = 0; j < dim_; ++j) {
      hr[j] = (xr[j] - mean) * inv;
      orow[j] = gamma_[j] * hr[j] + beta_[j];
    }
  }
  (void)train;
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const std::size_t rows = grad_out.size() / dim_;
  Tensor grad_in(grad_out.shape());
  const float* pg = grad_out.data();
  const float* ph = cached_xhat_.data();
  float* pi = grad_in.data();
  const float inv_dim = 1.f / static_cast<float>(dim_);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* gr = pg + r * dim_;
    const float* hr = ph + r * dim_;
    float* ir = pi + r * dim_;
    // dgamma / dbeta accumulate; dxhat = g * gamma.
    float sum_dxhat = 0.f, sum_dxhat_xhat = 0.f;
    for (std::size_t j = 0; j < dim_; ++j) {
      grad_gamma_[j] += gr[j] * hr[j];
      grad_beta_[j] += gr[j];
      const float dxhat = gr[j] * gamma_[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * hr[j];
    }
    const float inv = inv_std_[r];
    for (std::size_t j = 0; j < dim_; ++j) {
      const float dxhat = gr[j] * gamma_[j];
      ir[j] = inv * (dxhat - inv_dim * sum_dxhat - hr[j] * inv_dim * sum_dxhat_xhat);
    }
  }
  return grad_in;
}

void LayerNorm::collect_params(std::vector<ParamSlot>& out) {
  out.push_back({&gamma_, &grad_gamma_, "layernorm.gamma"});
  out.push_back({&beta_, &grad_beta_, "layernorm.beta"});
}

}  // namespace ppgnn::nn
