// First-order optimizers over ParamSlot collections.
#pragma once

#include <vector>

#include "nn/module.h"

namespace ppgnn::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamSlot> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (auto& p : params_) p.grad->zero();
  }

  // Mutable views of the optimizer's internal state (momenta etc.), plus a
  // scalar step counter — what full training-state checkpointing needs on
  // top of the parameters themselves.  Base default: stateless.
  virtual std::vector<Tensor*> state_tensors() { return {}; }
  virtual long step_count() const { return 0; }
  virtual void set_step_count(long) {}

 protected:
  std::vector<ParamSlot> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamSlot> params, float lr, float momentum = 0.f,
      float weight_decay = 0.f);
  void step() override;
  std::vector<Tensor*> state_tensors() override;

 private:
  float lr_, momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamSlot> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.f);
  void step() override;
  std::vector<Tensor*> state_tensors() override;
  long step_count() const override { return t_; }
  void set_step_count(long t) override { t_ = t; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

}  // namespace ppgnn::nn
