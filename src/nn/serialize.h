// Parameter checkpointing.
//
// Saves/loads every ParamSlot of a module to a simple binary format
// (magic, count, then per-tensor rank/shape/data).  The paper's workflow —
// hundreds of hyperparameter-tuning runs amortizing one preprocessing pass —
// needs exactly this: preprocessed features live in the FeatureFileStore,
// model weights in checkpoints.
//
// Two on-disk sections share one loader:
//   - fp32 ("PPNNCKP1"): raw float payloads, exact round trip;
//   - quantized ("PPNNCKQ1"): 2-D weight matrices stored symmetric int8
//     per OUTPUT channel — one fp32 scale per column of the [in, out]
//     layout, the same axis Linear::quantize_int8 uses at runtime, so
//     load-then-requantize adds essentially nothing on top of the
//     checkpoint's own error.  ~4x less weight data over the wire, which
//     is what a serving fleet pulls at deploy time.  1-D parameters
//     (biases, norm gains) stay fp32; they are a rounding error of the
//     total and their precision is cheap.
// load_parameters sniffs the magic and decodes either, so call sites are
// agnostic to how a checkpoint was written.
#pragma once

#include <string>

#include "nn/module.h"

namespace ppgnn::nn {

// Writes all parameters (in collect_params order) to `path`.
// Throws std::system_error on I/O failure.
void save_parameters(Module& module, const std::string& path);

// Writes the quantized section: 2-D params as per-output-channel int8 +
// scales, the rest fp32.  Lossy (each weight within half its channel's
// scale); intended for deployment, not for resuming training.
void save_parameters_quantized(Module& module, const std::string& path);

// Loads parameters saved by either save function (format auto-detected).
// Shapes must match the module's current parameters exactly
// (std::runtime_error otherwise).  Quantized payloads are dequantized into
// the fp32 slots.
void load_parameters(Module& module, const std::string& path);

// Non-member versions over raw slot lists (used by the MP-GNN models,
// which are not nn::Modules).
void save_parameters(const std::vector<ParamSlot>& slots,
                     const std::string& path);
void save_parameters_quantized(const std::vector<ParamSlot>& slots,
                               const std::string& path);
void load_parameters(const std::vector<ParamSlot>& slots,
                     const std::string& path);

}  // namespace ppgnn::nn
