// Parameter checkpointing.
//
// Saves/loads every ParamSlot of a module to a simple binary format
// (magic, count, then per-tensor rank/shape/data).  The paper's workflow —
// hundreds of hyperparameter-tuning runs amortizing one preprocessing pass —
// needs exactly this: preprocessed features live in the FeatureFileStore,
// model weights in checkpoints.
#pragma once

#include <string>

#include "nn/module.h"

namespace ppgnn::nn {

// Writes all parameters (in collect_params order) to `path`.
// Throws std::system_error on I/O failure.
void save_parameters(Module& module, const std::string& path);

// Loads parameters saved by save_parameters.  Shapes must match the
// module's current parameters exactly (std::runtime_error otherwise).
void load_parameters(Module& module, const std::string& path);

// Non-member versions over raw slot lists (used by the MP-GNN models,
// which are not nn::Modules).
void save_parameters(const std::vector<ParamSlot>& slots,
                     const std::string& path);
void load_parameters(const std::vector<ParamSlot>& slots,
                     const std::string& path);

}  // namespace ppgnn::nn
