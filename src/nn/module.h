// Module interface: explicit forward/backward, no autograd tape.
//
// Each module caches whatever its backward pass needs during forward.
// Gradients accumulate into per-parameter grad tensors; the optimizer
// consumes (param, grad) pairs collected through collect_params().
// This explicitness keeps per-phase timing (forward / backward / step)
// trivially measurable, which the Figure 5 breakdown experiment needs.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ppgnn::nn {

class Linear;

struct ParamSlot {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

class Module {
 public:
  virtual ~Module() = default;

  // Computes the output for x.  `train` enables dropout and gradient
  // caching; inference passes train=false and may skip caching.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // Propagates grad_out (gradient w.r.t. the last forward output) back,
  // accumulating parameter gradients, and returns the gradient w.r.t. the
  // last forward input.  Must be called at most once per forward.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual void collect_params(std::vector<ParamSlot>& out) = 0;

  // Appends every Linear layer reachable from this module, in a fixed
  // order (the same order across two instances of the same architecture).
  // This is the hook post-training quantization walks: Linear registers
  // itself, containers forward to their children, everything else inherits
  // the no-op.  See tensor/quant.h and core/pp_model.h.
  virtual void collect_linears(std::vector<Linear*>& out) { (void)out; }

  void zero_grad() {
    std::vector<ParamSlot> slots;
    collect_params(slots);
    for (auto& s : slots) s.grad->zero();
  }

  std::size_t num_params() {
    std::vector<ParamSlot> slots;
    collect_params(slots);
    std::size_t n = 0;
    for (const auto& s : slots) n += s.value->size();
    return n;
  }
};

}  // namespace ppgnn::nn
