// Layer normalization over the last dimension (used by HOGA's attention
// blocks).  Works on 2-D [rows, dim] and 3-D [batch, tokens, dim] tensors —
// normalization is always over the trailing `dim` elements.
#pragma once

#include "nn/module.h"

namespace ppgnn::nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::size_t dim, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamSlot>& out) override;

 private:
  std::size_t dim_;
  float eps_;
  Tensor gamma_, beta_;
  Tensor grad_gamma_, grad_beta_;
  Tensor cached_xhat_;      // normalized input
  std::vector<float> inv_std_;  // per normalized row
};

}  // namespace ppgnn::nn
