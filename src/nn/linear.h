// Fully connected layer: Y = X @ W + b.
//
// Supports an optional post-training INT8 inference path: quantize_int8()
// snapshots the fp32 weights as a per-output-channel symmetric int8 matrix
// (stored transposed, [out, in], so each output's scale is constant along
// the k-sum), and eval-mode forward then runs the INT8 x INT8 -> INT32
// GEMM from tensor/quant.h, dequantizing at the epilogue.  Training always
// uses the fp32 weights — quantization is a deployment transform, not a
// training scheme.  The quantized block is immutable and held by
// shared_ptr so N serving replicas of the same checkpoint share one copy
// (see share_quantized / serve::FleetBuilder).
#pragma once

#include <memory>

#include "nn/module.h"
#include "tensor/quant.h"
#include "tensor/rng.h"

namespace ppgnn::nn {

class Linear : public Module {
 public:
  // Xavier-uniform weight init; zero bias.  Pass use_bias=false for layers
  // folded into a following normalization.
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         bool use_bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamSlot>& out) override;
  void collect_linears(std::vector<Linear*>& out) override {
    out.push_back(this);
  }

  std::size_t in_features() const { return weight_.rows(); }
  std::size_t out_features() const { return weight_.cols(); }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

  // Quantizes the current fp32 weights into the int8 inference block.
  // Deterministic, so two layers holding bit-identical fp32 weights
  // produce bit-identical quantized blocks.  Idempotent per weight state;
  // call again after mutating weights to refresh.
  void quantize_int8();
  // Adopts `src`'s (immutable) quantized block instead of re-quantizing —
  // replicas of one checkpoint share a single copy.  Shapes must match.
  void share_quantized(const Linear& src);
  bool is_quantized() const { return qweight_ != nullptr; }
  // Null until quantize_int8/share_quantized; [out, in] with per-out scales.
  std::shared_ptr<const QuantizedMatrix> quantized_weight() const {
    return qweight_;
  }

 private:
  Tensor weight_;       // [in, out]
  Tensor bias_;         // [out] (empty when bias disabled)
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;  // saved when train=true
  std::shared_ptr<const QuantizedMatrix> qweight_;  // [out, in] or null
};

}  // namespace ppgnn::nn
