// Fully connected layer: Y = X @ W + b.
#pragma once

#include "nn/module.h"
#include "tensor/rng.h"

namespace ppgnn::nn {

class Linear : public Module {
 public:
  // Xavier-uniform weight init; zero bias.  Pass use_bias=false for layers
  // folded into a following normalization.
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         bool use_bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamSlot>& out) override;

  std::size_t in_features() const { return weight_.rows(); }
  std::size_t out_features() const { return weight_.cols(); }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  Tensor weight_;       // [in, out]
  Tensor bias_;         // [out] (empty when bias disabled)
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;  // saved when train=true
};

}  // namespace ppgnn::nn
