// Multi-layer perceptron: [Linear -> ReLU -> Dropout] * (L-1) -> Linear.
// The output/transformation blocks of all three PP-GNN models and of the
// MP-GNN heads are MLPs.
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace ppgnn::nn {

class Mlp : public Module {
 public:
  // dims = {in, hidden..., out}; needs at least {in, out}.
  Mlp(const std::vector<std::size_t>& dims, float dropout, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamSlot>& out) override;
  void collect_linears(std::vector<Linear*>& out) override;

  std::size_t num_layers() const { return linears_.size(); }

 private:
  std::vector<std::unique_ptr<Linear>> linears_;
  std::vector<std::unique_ptr<ReLU>> relus_;
  std::vector<std::unique_ptr<Dropout>> dropouts_;
};

}  // namespace ppgnn::nn
