// Multi-head self-attention over short token sequences.
//
// HOGA treats the (R+1) hop features of a node as (R+1) tokens and applies a
// single multi-head attention layer across them (Section 2.5).  Token counts
// are tiny (3..7), so the per-node score/softmax/weighted-sum work is done
// with small dense loops parallelized over the batch, while the Q/K/V/O
// projections are batched into single GEMMs over [batch*tokens, dim].
#pragma once

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace ppgnn::nn {

class MultiHeadSelfAttention : public Module {
 public:
  // dim must be divisible by num_heads.
  MultiHeadSelfAttention(std::size_t dim, std::size_t num_heads, Rng& rng);

  // x: [batch, tokens, dim] -> [batch, tokens, dim].
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamSlot>& out) override;
  void collect_linears(std::vector<Linear*>& out) override {
    wq_.collect_linears(out);
    wk_.collect_linears(out);
    wv_.collect_linears(out);
    wo_.collect_linears(out);
  }

  std::size_t num_heads() const { return heads_; }

 private:
  std::size_t dim_;
  std::size_t heads_;
  std::size_t head_dim_;
  Linear wq_, wk_, wv_, wo_;

  // Forward caches (train mode).
  Tensor q_, k_, v_;            // [batch*tokens, dim]
  std::vector<float> probs_;    // [batch, heads, tokens, tokens]
  std::size_t batch_ = 0, tokens_ = 0;
};

}  // namespace ppgnn::nn
