#include "nn/attention.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace ppgnn::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t dim,
                                               std::size_t num_heads, Rng& rng)
    : dim_(dim),
      heads_(num_heads),
      head_dim_(dim / num_heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  if (dim % num_heads != 0) {
    throw std::invalid_argument("attention: dim must be divisible by heads");
  }
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, bool train) {
  if (x.ndim() != 3 || x.dim(2) != dim_) {
    throw std::invalid_argument("attention: expected [b, t, dim], got " +
                                x.shape_str());
  }
  batch_ = x.dim(0);
  tokens_ = x.dim(1);
  const Tensor x2 = x.reshaped({batch_ * tokens_, dim_});

  q_ = wq_.forward(x2, train);
  k_ = wk_.forward(x2, train);
  v_ = wv_.forward(x2, train);

  const float scale = 1.f / std::sqrt(static_cast<float>(head_dim_));
  probs_.assign(batch_ * heads_ * tokens_ * tokens_, 0.f);
  Tensor attn_out({batch_ * tokens_, dim_});

  parallel_for(batch_, [&](std::size_t b0, std::size_t b1) {
    std::vector<float> scores(tokens_);
    for (std::size_t b = b0; b < b1; ++b) {
      for (std::size_t h = 0; h < heads_; ++h) {
        const std::size_t hoff = h * head_dim_;
        float* pmat =
            probs_.data() + ((b * heads_ + h) * tokens_) * tokens_;
        for (std::size_t ti = 0; ti < tokens_; ++ti) {
          const float* qi = q_.row(b * tokens_ + ti) + hoff;
          // scores over all tokens tj
          float mx = -1e30f;
          for (std::size_t tj = 0; tj < tokens_; ++tj) {
            const float* kj = k_.row(b * tokens_ + tj) + hoff;
            float s = 0.f;
            for (std::size_t d = 0; d < head_dim_; ++d) s += qi[d] * kj[d];
            s *= scale;
            scores[tj] = s;
            mx = std::max(mx, s);
          }
          float z = 0.f;
          float* prow = pmat + ti * tokens_;
          for (std::size_t tj = 0; tj < tokens_; ++tj) {
            prow[tj] = std::exp(scores[tj] - mx);
            z += prow[tj];
          }
          const float inv_z = 1.f / z;
          float* orow = attn_out.row(b * tokens_ + ti) + hoff;
          std::fill(orow, orow + head_dim_, 0.f);
          for (std::size_t tj = 0; tj < tokens_; ++tj) {
            prow[tj] *= inv_z;
            const float p = prow[tj];
            const float* vj = v_.row(b * tokens_ + tj) + hoff;
            for (std::size_t d = 0; d < head_dim_; ++d) orow[d] += p * vj[d];
          }
        }
      }
    }
  }, /*grain=*/64);

  Tensor y2 = wo_.forward(attn_out, train);
  return y2.reshaped({batch_, tokens_, dim_});
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  const Tensor g2 = grad_out.reshaped({batch_ * tokens_, dim_});
  const Tensor d_attn_out = wo_.backward(g2);

  Tensor dq({batch_ * tokens_, dim_});
  Tensor dk({batch_ * tokens_, dim_});
  Tensor dv({batch_ * tokens_, dim_});
  const float scale = 1.f / std::sqrt(static_cast<float>(head_dim_));

  parallel_for(batch_, [&](std::size_t b0, std::size_t b1) {
    std::vector<float> dprow(tokens_);
    for (std::size_t b = b0; b < b1; ++b) {
      for (std::size_t h = 0; h < heads_; ++h) {
        const std::size_t hoff = h * head_dim_;
        const float* pmat =
            probs_.data() + ((b * heads_ + h) * tokens_) * tokens_;
        for (std::size_t ti = 0; ti < tokens_; ++ti) {
          const float* go = d_attn_out.row(b * tokens_ + ti) + hoff;
          const float* prow = pmat + ti * tokens_;
          // dP_ij = go . V_j ; dV_j += P_ij * go
          float dot_dp_p = 0.f;
          for (std::size_t tj = 0; tj < tokens_; ++tj) {
            const float* vj = v_.row(b * tokens_ + tj) + hoff;
            float dp = 0.f;
            for (std::size_t d = 0; d < head_dim_; ++d) dp += go[d] * vj[d];
            dprow[tj] = dp;
            dot_dp_p += dp * prow[tj];
            float* dvj = dv.row(b * tokens_ + tj) + hoff;
            const float p = prow[tj];
            for (std::size_t d = 0; d < head_dim_; ++d) dvj[d] += p * go[d];
          }
          // softmax backward + scale; dQ_i += dS_ij K_j, dK_j += dS_ij Q_i.
          const float* qi = q_.row(b * tokens_ + ti) + hoff;
          float* dqi = dq.row(b * tokens_ + ti) + hoff;
          for (std::size_t tj = 0; tj < tokens_; ++tj) {
            const float ds = prow[tj] * (dprow[tj] - dot_dp_p) * scale;
            const float* kj = k_.row(b * tokens_ + tj) + hoff;
            float* dkj = dk.row(b * tokens_ + tj) + hoff;
            for (std::size_t d = 0; d < head_dim_; ++d) {
              dqi[d] += ds * kj[d];
              dkj[d] += ds * qi[d];
            }
          }
        }
      }
    }
  }, 64);

  // dV writes above touch rows of other tokens within the same b — still
  // within the same batch element, so the parallel partition over b is safe.
  Tensor dx2 = wq_.backward(dq);
  add_inplace(dx2, wk_.backward(dk));
  add_inplace(dx2, wv_.backward(dv));
  return dx2.reshaped({batch_, tokens_, dim_});
}

void MultiHeadSelfAttention::collect_params(std::vector<ParamSlot>& out) {
  wq_.collect_params(out);
  wk_.collect_params(out);
  wv_.collect_params(out);
  wo_.collect_params(out);
}

}  // namespace ppgnn::nn
