// Stateless activations and dropout as modules.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/rng.h"

namespace ppgnn::nn {

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamSlot>&) override {}

 private:
  Tensor cached_output_;
};

class GELU : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamSlot>&) override {}

 private:
  Tensor cached_input_;
};

// Inverted dropout; identity when !train or p == 0.
class Dropout : public Module {
 public:
  Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamSlot>&) override {}

  float p() const { return p_; }

 private:
  float p_;
  Rng* rng_;
  std::vector<std::uint8_t> mask_;
  bool active_ = false;
};

}  // namespace ppgnn::nn
