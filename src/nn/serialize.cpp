#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <system_error>

namespace ppgnn::nn {

namespace {

constexpr std::uint64_t kMagic = 0x50504e4e434b5031ULL;  // "PPNNCKP1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_exact(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) {
    throw std::system_error(errno, std::generic_category(),
                            "checkpoint write");
  }
}

void read_exact(std::FILE* f, void* p, std::size_t n) {
  if (std::fread(p, 1, n, f) != n) {
    throw std::runtime_error("checkpoint read: truncated file");
  }
}

}  // namespace

void save_parameters(const std::vector<ParamSlot>& slots,
                     const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    throw std::system_error(errno, std::generic_category(),
                            "open for write: " + path);
  }
  write_exact(f.get(), &kMagic, sizeof(kMagic));
  const std::uint64_t count = slots.size();
  write_exact(f.get(), &count, sizeof(count));
  for (const auto& s : slots) {
    const std::uint64_t rank = s.value->ndim();
    write_exact(f.get(), &rank, sizeof(rank));
    for (std::size_t d = 0; d < rank; ++d) {
      const std::uint64_t dim = s.value->dim(d);
      write_exact(f.get(), &dim, sizeof(dim));
    }
    write_exact(f.get(), s.value->data(), s.value->bytes());
  }
}

void load_parameters(const std::vector<ParamSlot>& slots,
                     const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw std::system_error(errno, std::generic_category(),
                            "open for read: " + path);
  }
  std::uint64_t magic = 0;
  read_exact(f.get(), &magic, sizeof(magic));
  if (magic != kMagic) {
    throw std::runtime_error("checkpoint read: bad magic in " + path);
  }
  std::uint64_t count = 0;
  read_exact(f.get(), &count, sizeof(count));
  if (count != slots.size()) {
    throw std::runtime_error("checkpoint read: parameter count mismatch (" +
                             std::to_string(count) + " in file, " +
                             std::to_string(slots.size()) + " in model)");
  }
  for (const auto& s : slots) {
    std::uint64_t rank = 0;
    read_exact(f.get(), &rank, sizeof(rank));
    if (rank != s.value->ndim()) {
      throw std::runtime_error("checkpoint read: rank mismatch for " + s.name);
    }
    for (std::size_t d = 0; d < rank; ++d) {
      std::uint64_t dim = 0;
      read_exact(f.get(), &dim, sizeof(dim));
      if (dim != s.value->dim(d)) {
        throw std::runtime_error("checkpoint read: shape mismatch for " +
                                 s.name);
      }
    }
    read_exact(f.get(), s.value->data(), s.value->bytes());
  }
}

void save_parameters(Module& module, const std::string& path) {
  std::vector<ParamSlot> slots;
  module.collect_params(slots);
  save_parameters(slots, path);
}

void load_parameters(Module& module, const std::string& path) {
  std::vector<ParamSlot> slots;
  module.collect_params(slots);
  load_parameters(slots, path);
}

}  // namespace ppgnn::nn
