#include "nn/serialize.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "tensor/quant.h"

namespace ppgnn::nn {

namespace {

constexpr std::uint64_t kMagic = 0x50504e4e434b5031ULL;       // "PPNNCKP1"
constexpr std::uint64_t kMagicQuant = 0x50504e4e434b5131ULL;  // "PPNNCKQ1"

// Per-slot payload encodings inside the quantized section.  2-D weights
// quantize per OUTPUT channel (column of the [in, out] layout) — the same
// axis Linear::quantize_int8 uses at runtime, so load-then-quantize adds
// essentially no error beyond the checkpoint's own.
constexpr std::uint8_t kEncFp32 = 0;
constexpr std::uint8_t kEncInt8PerChannel = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_exact(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) {
    throw std::system_error(errno, std::generic_category(),
                            "checkpoint write");
  }
}

void read_exact(std::FILE* f, void* p, std::size_t n) {
  if (std::fread(p, 1, n, f) != n) {
    throw std::runtime_error("checkpoint read: truncated file");
  }
}

void write_shape(std::FILE* f, const Tensor& t) {
  const std::uint64_t rank = t.ndim();
  write_exact(f, &rank, sizeof(rank));
  for (std::size_t d = 0; d < rank; ++d) {
    const std::uint64_t dim = t.dim(d);
    write_exact(f, &dim, sizeof(dim));
  }
}

void read_and_check_shape(std::FILE* f, const ParamSlot& s) {
  std::uint64_t rank = 0;
  read_exact(f, &rank, sizeof(rank));
  if (rank != s.value->ndim()) {
    throw std::runtime_error("checkpoint read: rank mismatch for " + s.name);
  }
  for (std::size_t d = 0; d < rank; ++d) {
    std::uint64_t dim = 0;
    read_exact(f, &dim, sizeof(dim));
    if (dim != s.value->dim(d)) {
      throw std::runtime_error("checkpoint read: shape mismatch for " +
                               s.name);
    }
  }
}

FilePtr open_checked(const std::string& path, const char* mode,
                     const char* what) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) {
    throw std::system_error(errno, std::generic_category(),
                            std::string(what) + ": " + path);
  }
  return f;
}

std::uint64_t read_count(std::FILE* f, std::size_t want) {
  std::uint64_t count = 0;
  read_exact(f, &count, sizeof(count));
  if (count != want) {
    throw std::runtime_error("checkpoint read: parameter count mismatch (" +
                             std::to_string(count) + " in file, " +
                             std::to_string(want) + " in model)");
  }
  return count;
}

void load_fp32_body(std::FILE* f, const std::vector<ParamSlot>& slots) {
  read_count(f, slots.size());
  for (const auto& s : slots) {
    read_and_check_shape(f, s);
    read_exact(f, s.value->data(), s.value->bytes());
  }
}

void load_quantized_body(std::FILE* f, const std::vector<ParamSlot>& slots) {
  read_count(f, slots.size());
  for (const auto& s : slots) {
    read_and_check_shape(f, s);
    std::uint8_t enc = 0;
    read_exact(f, &enc, sizeof(enc));
    if (enc == kEncFp32) {
      read_exact(f, s.value->data(), s.value->bytes());
    } else if (enc == kEncInt8PerChannel) {
      const std::size_t rows = s.value->rows();
      const std::size_t cols = s.value->cols();
      std::vector<float> scales(cols);
      std::vector<std::int8_t> payload(rows * cols);
      read_exact(f, scales.data(), cols * sizeof(float));
      read_exact(f, payload.data(), payload.size());
      for (std::size_t i = 0; i < rows; ++i) {
        float* dst = s.value->row(i);
        const std::int8_t* src = payload.data() + i * cols;
        for (std::size_t j = 0; j < cols; ++j) {
          dst[j] = static_cast<float>(src[j]) * scales[j];
        }
      }
    } else {
      throw std::runtime_error("checkpoint read: unknown encoding for " +
                               s.name);
    }
  }
}

}  // namespace

void save_parameters(const std::vector<ParamSlot>& slots,
                     const std::string& path) {
  FilePtr f = open_checked(path, "wb", "open for write");
  write_exact(f.get(), &kMagic, sizeof(kMagic));
  const std::uint64_t count = slots.size();
  write_exact(f.get(), &count, sizeof(count));
  for (const auto& s : slots) {
    write_shape(f.get(), *s.value);
    write_exact(f.get(), s.value->data(), s.value->bytes());
  }
}

void save_parameters_quantized(const std::vector<ParamSlot>& slots,
                               const std::string& path) {
  FilePtr f = open_checked(path, "wb", "open for write");
  write_exact(f.get(), &kMagicQuant, sizeof(kMagicQuant));
  const std::uint64_t count = slots.size();
  write_exact(f.get(), &count, sizeof(count));
  for (const auto& s : slots) {
    write_shape(f.get(), *s.value);
    // Weight matrices carry the bulk of the bytes and quantize per
    // output channel (one scale per column of the [in, out] layout);
    // everything else (biases, norm parameters) stays exact.
    const std::uint8_t enc =
        s.value->ndim() == 2 ? kEncInt8PerChannel : kEncFp32;
    write_exact(f.get(), &enc, sizeof(enc));
    if (enc == kEncFp32) {
      write_exact(f.get(), s.value->data(), s.value->bytes());
      continue;
    }
    const std::size_t rows = s.value->rows();
    const std::size_t cols = s.value->cols();
    std::vector<float> scales(cols, 0.f);
    for (std::size_t i = 0; i < rows; ++i) {
      const float* src = s.value->row(i);
      for (std::size_t j = 0; j < cols; ++j) {
        const float a = std::fabs(src[j]);
        if (a > scales[j]) scales[j] = a;
      }
    }
    for (auto& s_j : scales) s_j /= 127.f;
    std::vector<std::int8_t> payload(rows * cols);
    for (std::size_t i = 0; i < rows; ++i) {
      const float* src = s.value->row(i);
      std::int8_t* dst = payload.data() + i * cols;
      for (std::size_t j = 0; j < cols; ++j) {
        if (scales[j] == 0.f) {
          dst[j] = 0;
          continue;
        }
        int q = static_cast<int>(std::lrintf(src[j] / scales[j]));
        if (q > 127) q = 127;
        if (q < -127) q = -127;
        dst[j] = static_cast<std::int8_t>(q);
      }
    }
    write_exact(f.get(), scales.data(), cols * sizeof(float));
    write_exact(f.get(), payload.data(), payload.size());
  }
}

void load_parameters(const std::vector<ParamSlot>& slots,
                     const std::string& path) {
  FilePtr f = open_checked(path, "rb", "open for read");
  std::uint64_t magic = 0;
  read_exact(f.get(), &magic, sizeof(magic));
  if (magic == kMagic) {
    load_fp32_body(f.get(), slots);
  } else if (magic == kMagicQuant) {
    load_quantized_body(f.get(), slots);
  } else {
    throw std::runtime_error("checkpoint read: bad magic in " + path);
  }
}

void save_parameters(Module& module, const std::string& path) {
  std::vector<ParamSlot> slots;
  module.collect_params(slots);
  save_parameters(slots, path);
}

void save_parameters_quantized(Module& module, const std::string& path) {
  std::vector<ParamSlot> slots;
  module.collect_params(slots);
  save_parameters_quantized(slots, path);
}

void load_parameters(Module& module, const std::string& path) {
  std::vector<ParamSlot> slots;
  module.collect_params(slots);
  load_parameters(slots, path);
}

}  // namespace ppgnn::nn
