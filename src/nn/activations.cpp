#include "nn/activations.h"

#include "tensor/ops.h"

namespace ppgnn::nn {

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor out(x.shape());
  relu(x, out);
  if (train) cached_output_ = out;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in(grad_out.shape());
  relu_backward(cached_output_, grad_out, grad_in);
  return grad_in;
}

Tensor GELU::forward(const Tensor& x, bool train) {
  if (train) cached_input_ = x;
  Tensor out(x.shape());
  gelu(x, out);
  return out;
}

Tensor GELU::backward(const Tensor& grad_out) {
  Tensor grad_in(grad_out.shape());
  gelu_backward(cached_input_, grad_out, grad_in);
  return grad_in;
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  active_ = train && p_ > 0.f;
  if (!active_) return x;
  Tensor out(x.shape());
  dropout(x, out, mask_, p_, *rng_);
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!active_) return grad_out;
  Tensor grad_in(grad_out.shape());
  dropout_backward(grad_out, mask_, grad_in, p_);
  return grad_in;
}

}  // namespace ppgnn::nn
