#include "nn/linear.h"

#include <cmath>

#include "tensor/ops.h"

namespace ppgnn::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool use_bias)
    : weight_({in_features, out_features}),
      grad_weight_({in_features, out_features}) {
  const float bound =
      std::sqrt(6.f / static_cast<float>(in_features + out_features));
  weight_ = Tensor::uniform({in_features, out_features}, rng, -bound, bound);
  if (use_bias) {
    bias_ = Tensor({out_features});
    grad_bias_ = Tensor({out_features});
  }
}

Tensor Linear::forward(const Tensor& x, bool train) {
  if (train) cached_input_ = x;
  Tensor y = matmul(x, weight_);
  if (!bias_.empty()) add_row_vector(y, bias_);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  // dW += X^T dY, db += sum_rows(dY), dX = dY W^T.
  gemm(cached_input_, true, grad_out, false, grad_weight_, 1.f, 1.f);
  if (!bias_.empty()) {
    Tensor db({bias_.size()});
    sum_rows(grad_out, db);
    add_inplace(grad_bias_, db);
  }
  return matmul_nt(grad_out, weight_);
}

void Linear::collect_params(std::vector<ParamSlot>& out) {
  out.push_back({&weight_, &grad_weight_, "linear.weight"});
  if (!bias_.empty()) out.push_back({&bias_, &grad_bias_, "linear.bias"});
}

}  // namespace ppgnn::nn
