#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace ppgnn::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool use_bias)
    : weight_({in_features, out_features}),
      grad_weight_({in_features, out_features}) {
  const float bound =
      std::sqrt(6.f / static_cast<float>(in_features + out_features));
  weight_ = Tensor::uniform({in_features, out_features}, rng, -bound, bound);
  if (use_bias) {
    bias_ = Tensor({out_features});
    grad_bias_ = Tensor({out_features});
  }
}

Tensor Linear::forward(const Tensor& x, bool train) {
  if (!train && qweight_) {
    // INT8 inference path: asymmetric per-row quantized activations
    // against the per-output-channel symmetric quantized weights, offset
    // and bias folded into the epilogue.
    Tensor y;
    gemm_s8_nt(quantize_acts_per_row(x), *qweight_, y,
               bias_.empty() ? nullptr : &bias_);
    return y;
  }
  if (train) cached_input_ = x;
  Tensor y = matmul(x, weight_);
  if (!bias_.empty()) add_row_vector(y, bias_);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  // dW += X^T dY, db += sum_rows(dY), dX = dY W^T.
  gemm(cached_input_, true, grad_out, false, grad_weight_, 1.f, 1.f);
  if (!bias_.empty()) {
    Tensor db({bias_.size()});
    sum_rows(grad_out, db);
    add_inplace(grad_bias_, db);
  }
  return matmul_nt(grad_out, weight_);
}

void Linear::collect_params(std::vector<ParamSlot>& out) {
  out.push_back({&weight_, &grad_weight_, "linear.weight"});
  if (!bias_.empty()) out.push_back({&bias_, &grad_bias_, "linear.bias"});
}

void Linear::quantize_int8() {
  // Quantize W^T so rows are output channels: scale constant over the
  // k-sum, which is what lets gemm_s8_nt dequantize at the epilogue.
  Tensor wt({weight_.cols(), weight_.rows()});
  for (std::size_t i = 0; i < weight_.rows(); ++i) {
    for (std::size_t j = 0; j < weight_.cols(); ++j) {
      wt.at(j, i) = weight_.at(i, j);
    }
  }
  qweight_ = std::make_shared<const QuantizedMatrix>(quantize_per_row(wt));
}

void Linear::share_quantized(const Linear& src) {
  if (!src.qweight_) {
    throw std::invalid_argument("share_quantized: source is not quantized");
  }
  if (src.qweight_->rows != weight_.cols() ||
      src.qweight_->cols != weight_.rows()) {
    throw std::invalid_argument("share_quantized: shape mismatch");
  }
  qweight_ = src.qweight_;
}

}  // namespace ppgnn::nn
