#include "nn/optimizer.h"

#include <cmath>

namespace ppgnn::nn {

Sgd::Sgd(std::vector<ParamSlot> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    const std::size_t n = params_[i].value->size();
    if (momentum_ > 0.f) {
      float* vel = velocity_[i].data();
      for (std::size_t j = 0; j < n; ++j) {
        const float grad = g[j] + weight_decay_ * w[j];
        vel[j] = momentum_ * vel[j] + grad;
        w[j] -= lr_ * vel[j];
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        w[j] -= lr_ * (g[j] + weight_decay_ * w[j]);
      }
    }
  }
}

Adam::Adam(std::vector<ParamSlot> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  const float alpha = lr_ * std::sqrt(bc2) / bc1;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::size_t n = params_[i].value->size();
    for (std::size_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.f - beta2_) * grad * grad;
      w[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
}


std::vector<Tensor*> Sgd::state_tensors() {
  std::vector<Tensor*> out;
  out.reserve(velocity_.size());
  for (auto& v : velocity_) out.push_back(&v);
  return out;
}

std::vector<Tensor*> Adam::state_tensors() {
  std::vector<Tensor*> out;
  out.reserve(m_.size() + v_.size());
  for (auto& m : m_) out.push_back(&m);
  for (auto& v : v_) out.push_back(&v);
  return out;
}
}  // namespace ppgnn::nn
