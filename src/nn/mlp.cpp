#include "nn/mlp.h"

#include <stdexcept>

namespace ppgnn::nn {

Mlp::Mlp(const std::vector<std::size_t>& dims, float dropout, Rng& rng) {
  if (dims.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output dims");
  }
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    linears_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    if (i + 2 < dims.size()) {
      relus_.push_back(std::make_unique<ReLU>());
      dropouts_.push_back(std::make_unique<Dropout>(dropout, rng));
    }
  }
}

Tensor Mlp::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (std::size_t i = 0; i < linears_.size(); ++i) {
    h = linears_[i]->forward(h, train);
    if (i < relus_.size()) {
      h = relus_[i]->forward(h, train);
      h = dropouts_[i]->forward(h, train);
    }
  }
  return h;
}

Tensor Mlp::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = linears_.size(); i-- > 0;) {
    if (i < relus_.size()) {
      g = dropouts_[i]->backward(g);
      g = relus_[i]->backward(g);
    }
    g = linears_[i]->backward(g);
  }
  return g;
}

void Mlp::collect_params(std::vector<ParamSlot>& out) {
  for (auto& l : linears_) l->collect_params(out);
}

void Mlp::collect_linears(std::vector<Linear*>& out) {
  for (auto& l : linears_) l->collect_linears(out);
}

}  // namespace ppgnn::nn
