// Epoch-order generation: SGD with random reshuffling vs chunk reshuffling.
//
// Both the real trainer and the pipeline simulator consume these orders, so
// accuracy experiments (Figure 8 / Table 6) and throughput experiments
// (Figure 9 / Table 4) share identical shuffling semantics.
//
// Chunk reshuffling (Section 4.2) permutes fixed-size chunks of contiguous
// sample indices and keeps intra-chunk order.  With chunk_size == 1 it
// degenerates to SGD-RR exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace ppgnn::loader {

class Shuffler {
 public:
  virtual ~Shuffler() = default;
  // Order in which sample indices [0, n) are visited this epoch.
  virtual std::vector<std::int64_t> epoch_order(std::size_t n,
                                                Rng& rng) const = 0;
  virtual std::string name() const = 0;
  // Granularity of contiguous runs in the order (1 for RR).
  virtual std::size_t chunk_size() const = 0;
};

class RandomReshuffler : public Shuffler {
 public:
  std::vector<std::int64_t> epoch_order(std::size_t n, Rng& rng) const override;
  std::string name() const override { return "SGD-RR"; }
  std::size_t chunk_size() const override { return 1; }
};

class ChunkReshuffler : public Shuffler {
 public:
  explicit ChunkReshuffler(std::size_t chunk_size);
  std::vector<std::int64_t> epoch_order(std::size_t n, Rng& rng) const override;
  std::string name() const override;
  std::size_t chunk_size() const override { return chunk_; }

 private:
  std::size_t chunk_;
};

std::unique_ptr<Shuffler> make_shuffler(std::size_t chunk_size);

}  // namespace ppgnn::loader
