// File-backed preprocessed-feature store (the GDS analogue, Section 4.3).
//
// Preprocessed hop features are written to one binary file per hop — the
// paper splits hops into separate files to expose parallel storage streams.
// Reading supports two access patterns whose performance gap is the whole
// point of chunk reshuffling on storage:
//   - read_chunk: contiguous row ranges, one pread per hop file;
//   - read_rows: row-granular random access, one pread per row per hop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ppgnn::loader {

class FeatureFileStore {
 public:
  // Writes hop_features[h] ([n, dim] each, identical shapes) to
  // dir/hop_<h>.bin and returns an open store.  Overwrites existing files.
  static FeatureFileStore create(const std::string& dir,
                                 const std::vector<Tensor>& hop_features);
  // Opens existing files written by create().
  static FeatureFileStore open(const std::string& dir, std::size_t num_rows,
                               std::size_t num_hops, std::size_t dim);

  FeatureFileStore(FeatureFileStore&&) noexcept;
  FeatureFileStore& operator=(FeatureFileStore&&) noexcept;
  ~FeatureFileStore();

  std::size_t num_rows() const { return rows_; }
  std::size_t num_hops() const { return hops_; }
  std::size_t hop_dim() const { return dim_; }
  std::size_t row_bytes() const { return hops_ * dim_ * sizeof(float); }
  std::size_t total_bytes() const { return rows_ * row_bytes(); }

  // out: [count, hops*dim]; reads rows [row0, row0+count) of every hop file
  // and lays them out hop-major within each output row (hop 0 first) —
  // matching the in-memory expanded layout of core::Preprocessed.
  void read_chunk(std::size_t row0, std::size_t count, Tensor& out) const;

  // Random row-granular access: out[i] = concatenated hops of rows[i].
  void read_rows(const std::vector<std::int64_t>& rows, Tensor& out) const;

 private:
  FeatureFileStore() = default;
  std::string dir_;
  std::size_t rows_ = 0, hops_ = 0, dim_ = 0;
  std::vector<int> fds_;  // one per hop file
};

}  // namespace ppgnn::loader
