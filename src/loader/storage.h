// File-backed preprocessed-feature store (the GDS analogue, Section 4.3).
//
// Preprocessed hop features are written to one binary file per hop — the
// paper splits hops into separate files to expose parallel storage streams.
// Reading supports two access patterns whose performance gap is the whole
// point of chunk reshuffling on storage:
//   - read_chunk: contiguous row ranges, one pread per hop file;
//   - read_rows: row-granular random access.  Row ids are sorted per call
//     and adjacent/duplicate runs coalesce into one pread per run, so a
//     hub-heavy serving micro-batch costs far fewer syscalls than one
//     pread per row per hop (preads() counts the actual calls issued).
//
// Two row codecs share the layout:
//   - kFp32: dim floats per row per hop (exact);
//   - kInt8: one fp32 scale header then dim int8s per row per hop
//     (per-row symmetric quantization, tensor/quant.h) — ~4x smaller rows,
//     which is 4x effective RowCache capacity per serving replica.
// Reads always decode to fp32; the codec is a storage property, not an API
// one.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ppgnn::loader {

// On-disk row encoding of a FeatureFileStore.
enum class RowCodec { kFp32, kInt8 };

const char* codec_name(RowCodec codec);

class FeatureFileStore {
 public:
  // Writes hop_features[h] ([n, dim] each, identical shapes) to
  // dir/hop_<h>.bin and returns an open store.  Overwrites existing files.
  // kInt8 quantizes each row symmetrically (scale header + int8 payload).
  static FeatureFileStore create(const std::string& dir,
                                 const std::vector<Tensor>& hop_features,
                                 RowCodec codec = RowCodec::kFp32);
  // Opens existing files written by create() with the same codec.
  static FeatureFileStore open(const std::string& dir, std::size_t num_rows,
                               std::size_t num_hops, std::size_t dim,
                               RowCodec codec = RowCodec::kFp32);

  FeatureFileStore(FeatureFileStore&&) noexcept;
  FeatureFileStore& operator=(FeatureFileStore&&) noexcept;
  ~FeatureFileStore();

  std::size_t num_rows() const { return rows_; }
  std::size_t num_hops() const { return hops_; }
  std::size_t hop_dim() const { return dim_; }
  RowCodec codec() const { return codec_; }
  // Stored bytes of one row within one hop file (codec-dependent).
  std::size_t hop_row_bytes() const {
    return codec_ == RowCodec::kInt8 ? sizeof(float) + dim_
                                     : dim_ * sizeof(float);
  }
  // Stored bytes of one full expanded row across all hops.
  std::size_t row_bytes() const { return hops_ * hop_row_bytes(); }
  std::size_t total_bytes() const { return rows_ * row_bytes(); }

  // out: [count, hops*dim]; reads rows [row0, row0+count) of every hop file
  // and lays them out hop-major within each output row (hop 0 first) —
  // matching the in-memory expanded layout of core::Preprocessed.
  void read_chunk(std::size_t row0, std::size_t count, Tensor& out) const;

  // Random row-granular access: out[i] = concatenated hops of rows[i].
  // Sorts the ids and issues one pread per run of adjacent/duplicate rows
  // per hop; results are independent of the coalescing (bit-identical to
  // per-row reads).  Thread-safe (pread, no shared cursor).
  void read_rows(const std::vector<std::int64_t>& rows, Tensor& out) const;

  // As read_rows, but returns the STORED bytes: out[i] is the hop-major
  // concatenation of row rows[i]'s per-hop records, row_bytes() each.
  // This is what a payload cache should keep resident — for kInt8 the
  // encoded row is ~4x smaller than its fp32 expansion, and decode_row of
  // the same bytes yields the same floats whether they came from disk or
  // from cache (caching can never change answers).
  void read_rows_encoded(const std::vector<std::int64_t>& rows,
                         std::uint8_t* out) const;
  // Decodes one encoded row (row_bytes() bytes) into hops*dim floats,
  // exactly as read_rows would.
  void decode_row(const std::uint8_t* enc, float* out) const;

  // Cumulative pread syscalls issued by this store (all threads).  The
  // serving bench reports the delta per micro-batch to show what run
  // coalescing saves over the historical one-pread-per-row-per-hop.
  std::uint64_t preads() const {
    return preads_.load(std::memory_order_relaxed);
  }

 private:
  FeatureFileStore() = default;
  // Decodes `count` stored rows starting at `row0` from hop `h` into
  // consecutive fp32 rows of `dst` (stride dim_ floats), one pread.
  void read_hop_run(std::size_t h, std::size_t row0, std::size_t count,
                    float* dst) const;

  std::string dir_;
  std::size_t rows_ = 0, hops_ = 0, dim_ = 0;
  RowCodec codec_ = RowCodec::kFp32;
  std::vector<int> fds_;  // one per hop file
  mutable std::atomic<std::uint64_t> preads_{0};
};

}  // namespace ppgnn::loader
