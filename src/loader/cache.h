// Feature caches and access-stream hit-rate analysis.
//
// MP-GNN systems lean on GPU-side feature caching (PaGraph, GNNLab —
// Section 2.4) because sampled subgraphs re-visit hub nodes constantly:
// the access stream is heavy-tailed and a small degree-ordered cache
// absorbs most fetches.  Section 4.1 argues the same trick is *unsuitable
// for PP-GNNs*: every training row is accessed exactly once per epoch in
// a random order, so any cache's hit rate collapses to its capacity
// fraction.  This module provides the two standard policies and a replay
// harness so that claim is measured, not asserted (see
// bench_ablation_caching and test_cache).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace ppgnn::loader {

// Cache policy interface over row ids (payload-free: we only study hit
// rates; the bytes saved are hit_rate * row_bytes by construction).
//
// Capacity is denominated in BYTES, not rows: a policy is constructed
// with a byte budget and the byte size of one cached row, and holds
// floor(budget / row_bytes) rows.  The distinction is the point of the
// INT8 serving path — the same byte budget holds ~4x as many quantized
// FeatureFileStore rows as fp32 ones, so effective cache capacity (and
// hit rate under a fixed workload) rises without buying RAM.  Hit-rate
// studies that genuinely think in rows pass row_bytes = 1.
class RowCache {
 public:
  virtual ~RowCache() = default;
  // Records an access; returns true on hit.
  virtual bool access(std::int64_t row) = 0;
  // Eviction-aware access for payload-carrying callers (the serving path in
  // src/serve/ keeps row bytes keyed by id and must drop them when the
  // policy displaces a row).  Behaves like access(); additionally writes the
  // displaced row id to *evicted, or -1 when nothing left the cache.  A
  // return of false with *evicted == -1 and resident() == false means the
  // policy declined to admit the row at all (StaticCache misses).
  virtual bool access(std::int64_t row, std::int64_t* evicted) {
    if (evicted) *evicted = -1;
    return access(row);
  }
  // Whether `row` is currently held (post-access membership, no state
  // change).  Payload callers use this to decide whether to retain bytes.
  virtual bool resident(std::int64_t row) const = 0;
  // Up to `k` resident rows the policy considers hottest, hottest first
  // (LRU: recency order; static: the pin set, unordered).  Used to seed a
  // newly spawned replica's cache from its peers — the sample is advisory,
  // so a policy with no notion of heat may return fewer rows or none.
  virtual std::vector<std::int64_t> hot_rows(std::size_t k) const {
    (void)k;
    return {};
  }
  // Maximum resident rows under the byte budget.
  virtual std::size_t capacity() const = 0;
  // The byte budget and the per-row cost it is divided by.
  virtual std::size_t capacity_bytes() const = 0;
  virtual std::size_t row_bytes() const = 0;
  virtual const char* policy() const = 0;
};

// Static cache preloaded with a fixed row set (GNNLab-style: hottest rows
// by degree or by profiled frequency, pinned for the whole run).  The pin
// set defines the capacity; row_bytes records what each pin costs so
// capacity_bytes() reports the true resident-set size.
class StaticCache : public RowCache {
 public:
  explicit StaticCache(const std::vector<std::int64_t>& pinned_rows,
                       std::size_t row_bytes = 1);
  bool access(std::int64_t row) override;
  bool resident(std::int64_t row) const override {
    return pinned_.count(row) > 0;
  }
  std::vector<std::int64_t> hot_rows(std::size_t k) const override;
  std::size_t capacity() const override { return pinned_.size(); }
  std::size_t capacity_bytes() const override {
    return pinned_.size() * row_bytes_;
  }
  std::size_t row_bytes() const override { return row_bytes_; }
  const char* policy() const override { return "static"; }

 private:
  std::unordered_map<std::int64_t, bool> pinned_;
  std::size_t row_bytes_;
};

// LRU cache (PaGraph-style dynamic caching) over a byte budget: holds at
// most floor(capacity_bytes / row_bytes) rows.
class LruCache : public RowCache {
 public:
  LruCache(std::size_t capacity_bytes, std::size_t row_bytes);
  bool access(std::int64_t row) override { return access(row, nullptr); }
  bool access(std::int64_t row, std::int64_t* evicted) override;
  bool resident(std::int64_t row) const override {
    return map_.count(row) > 0;
  }
  std::vector<std::int64_t> hot_rows(std::size_t k) const override;
  std::size_t capacity() const override { return max_rows_; }
  std::size_t capacity_bytes() const override { return capacity_bytes_; }
  std::size_t row_bytes() const override { return row_bytes_; }
  const char* policy() const override { return "lru"; }
  std::size_t size() const { return map_.size(); }

 private:
  std::size_t capacity_bytes_;
  std::size_t row_bytes_;
  std::size_t max_rows_;
  std::list<std::int64_t> order_;  // front = most recent
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> map_;
};

struct HitRateReport {
  std::size_t accesses = 0;
  std::size_t hits = 0;
  double hit_rate() const {
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

// Replays an access stream through a cache.
HitRateReport replay(RowCache& cache,
                     const std::vector<std::int64_t>& stream);

// The hottest `k` rows of a stream by frequency — the oracle pin set for
// a StaticCache.
std::vector<std::int64_t> hottest_rows(const std::vector<std::int64_t>& stream,
                                       std::size_t k);

}  // namespace ppgnn::loader
