// Feature caches and access-stream hit-rate analysis.
//
// MP-GNN systems lean on GPU-side feature caching (PaGraph, GNNLab —
// Section 2.4) because sampled subgraphs re-visit hub nodes constantly:
// the access stream is heavy-tailed and a small degree-ordered cache
// absorbs most fetches.  Section 4.1 argues the same trick is *unsuitable
// for PP-GNNs*: every training row is accessed exactly once per epoch in
// a random order, so any cache's hit rate collapses to its capacity
// fraction.  This module provides the two standard policies and a replay
// harness so that claim is measured, not asserted (see
// bench_ablation_caching and test_cache).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace ppgnn::loader {

// Cache policy interface over row ids (payload-free: we only study hit
// rates; the bytes saved are hit_rate * row_bytes by construction).
class RowCache {
 public:
  virtual ~RowCache() = default;
  // Records an access; returns true on hit.
  virtual bool access(std::int64_t row) = 0;
  // Eviction-aware access for payload-carrying callers (the serving path in
  // src/serve/ keeps row bytes keyed by id and must drop them when the
  // policy displaces a row).  Behaves like access(); additionally writes the
  // displaced row id to *evicted, or -1 when nothing left the cache.  A
  // return of false with *evicted == -1 and resident() == false means the
  // policy declined to admit the row at all (StaticCache misses).
  virtual bool access(std::int64_t row, std::int64_t* evicted) {
    if (evicted) *evicted = -1;
    return access(row);
  }
  // Whether `row` is currently held (post-access membership, no state
  // change).  Payload callers use this to decide whether to retain bytes.
  virtual bool resident(std::int64_t row) const = 0;
  virtual std::size_t capacity() const = 0;
  virtual const char* policy() const = 0;
};

// Static cache preloaded with a fixed row set (GNNLab-style: hottest rows
// by degree or by profiled frequency, pinned for the whole run).
class StaticCache : public RowCache {
 public:
  explicit StaticCache(const std::vector<std::int64_t>& pinned_rows);
  bool access(std::int64_t row) override;
  bool resident(std::int64_t row) const override {
    return pinned_.count(row) > 0;
  }
  std::size_t capacity() const override { return pinned_.size(); }
  const char* policy() const override { return "static"; }

 private:
  std::unordered_map<std::int64_t, bool> pinned_;
};

// LRU cache (PaGraph-style dynamic caching).
class LruCache : public RowCache {
 public:
  explicit LruCache(std::size_t capacity);
  bool access(std::int64_t row) override { return access(row, nullptr); }
  bool access(std::int64_t row, std::int64_t* evicted) override;
  bool resident(std::int64_t row) const override {
    return map_.count(row) > 0;
  }
  std::size_t capacity() const override { return capacity_; }
  const char* policy() const override { return "lru"; }
  std::size_t size() const { return map_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::int64_t> order_;  // front = most recent
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> map_;
};

struct HitRateReport {
  std::size_t accesses = 0;
  std::size_t hits = 0;
  double hit_rate() const {
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

// Replays an access stream through a cache.
HitRateReport replay(RowCache& cache,
                     const std::vector<std::int64_t>& stream);

// The hottest `k` rows of a stream by frequency — the oracle pin set for
// a StaticCache.
std::vector<std::int64_t> hottest_rows(const std::vector<std::int64_t>& stream,
                                       std::size_t k);

}  // namespace ppgnn::loader
