// Double-buffered prefetching (Section 4.1, Figure 6c).
//
// A dedicated loader thread assembles upcoming mini-batches into a bounded
// two-slot queue while the consumer (the trainer) processes the current
// one — the software analogue of the paper's prefetch-stream + GPU double
// buffer.  Capacity 2 gives exactly the double-buffer semantics: the
// producer may run at most two batches ahead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "loader/host_loader.h"

namespace ppgnn::loader {

class PrefetchingLoader {
 public:
  using AssembleFn = std::function<MiniBatch(std::size_t)>;

  // assemble(batch_idx) produces batch `batch_idx` in [0, num_batches);
  // it runs on the loader thread and must be thread-safe w.r.t. the
  // consumer (BatchSource::assemble_* is: it only reads shared state).
  PrefetchingLoader(AssembleFn assemble, std::size_t num_batches,
                    std::size_t num_buffers = 2);
  ~PrefetchingLoader();

  PrefetchingLoader(const PrefetchingLoader&) = delete;
  PrefetchingLoader& operator=(const PrefetchingLoader&) = delete;

  // Blocks for the next batch; returns false when the epoch is exhausted.
  // If the assemble function threw on the loader thread, rethrows that
  // exception here (on the consumer thread) instead of terminating the
  // process — a storage read error surfaces as a normal exception from
  // the training loop.
  bool next(MiniBatch& out);

  std::size_t num_batches() const { return num_batches_; }

 private:
  void producer_loop();

  AssembleFn assemble_;
  std::size_t num_batches_;
  std::size_t capacity_;

  std::mutex mu_;
  std::condition_variable cv_not_full_;
  std::condition_variable cv_not_empty_;
  std::deque<MiniBatch> queue_;
  std::size_t produced_ = 0;
  std::size_t consumed_ = 0;
  bool stop_ = false;
  std::exception_ptr producer_error_;
  std::thread producer_;
};

}  // namespace ppgnn::loader
