#include "loader/prefetch.h"

#include <stdexcept>

namespace ppgnn::loader {

PrefetchingLoader::PrefetchingLoader(AssembleFn assemble,
                                     std::size_t num_batches,
                                     std::size_t num_buffers)
    : assemble_(std::move(assemble)),
      num_batches_(num_batches),
      capacity_(num_buffers) {
  if (!assemble_ || capacity_ == 0) {
    throw std::invalid_argument("PrefetchingLoader: bad arguments");
  }
  producer_ = std::thread([this] { producer_loop(); });
}

PrefetchingLoader::~PrefetchingLoader() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_not_full_.notify_all();
  cv_not_empty_.notify_all();
  if (producer_.joinable()) producer_.join();
}

void PrefetchingLoader::producer_loop() {
  for (std::size_t i = 0; i < num_batches_; ++i) {
    MiniBatch mb;
    try {
      mb = assemble_(i);
    } catch (...) {
      // Park the exception for the consumer and shut down; letting it
      // escape a std::thread would terminate the process.
      std::lock_guard<std::mutex> lk(mu_);
      producer_error_ = std::current_exception();
      stop_ = true;
      cv_not_empty_.notify_all();
      return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    cv_not_full_.wait(lk, [&] { return stop_ || queue_.size() < capacity_; });
    if (stop_) return;
    queue_.push_back(std::move(mb));
    ++produced_;
    lk.unlock();
    cv_not_empty_.notify_one();
  }
}

bool PrefetchingLoader::next(MiniBatch& out) {
  std::unique_lock<std::mutex> lk(mu_);
  if (consumed_ == num_batches_) return false;
  cv_not_empty_.wait(lk, [&] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) {
    if (producer_error_) std::rethrow_exception(producer_error_);
    return false;  // stopped
  }
  out = std::move(queue_.front());
  queue_.pop_front();
  ++consumed_;
  lk.unlock();
  cv_not_full_.notify_one();
  return true;
}

}  // namespace ppgnn::loader
