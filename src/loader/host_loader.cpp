#include "loader/host_loader.h"

#include <cstring>
#include <stdexcept>

#include "tensor/ops.h"

namespace ppgnn::loader {

BatchSource::BatchSource(const Tensor* features, const std::int32_t* labels,
                         std::size_t batch_size)
    : features_(features), labels_(labels), batch_size_(batch_size) {
  if (features_ == nullptr || batch_size_ == 0) {
    throw std::invalid_argument("BatchSource: bad arguments");
  }
  // Default order: identity (callers normally install a shuffled order).
  order_.resize(features_->rows());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<std::int64_t>(i);
  }
}

void BatchSource::set_epoch_order(std::vector<std::int64_t> order) {
  if (order.size() != features_->rows()) {
    throw std::invalid_argument("set_epoch_order: order size mismatch");
  }
  order_ = std::move(order);
}

std::vector<std::int64_t> BatchSource::batch_indices(
    std::size_t batch_idx) const {
  const std::size_t lo = batch_idx * batch_size_;
  if (lo >= order_.size()) {
    throw std::out_of_range("batch_indices: batch index out of range");
  }
  const std::size_t hi = std::min(lo + batch_size_, order_.size());
  return {order_.begin() + static_cast<std::ptrdiff_t>(lo),
          order_.begin() + static_cast<std::ptrdiff_t>(hi)};
}

MiniBatch BatchSource::assemble_baseline(std::size_t batch_idx) const {
  MiniBatch mb;
  mb.indices = batch_indices(batch_idx);
  const std::size_t row = features_->row_size();
  mb.features = Tensor({mb.indices.size(), row});
  mb.labels.resize(mb.indices.size());
  // Deliberately row-at-a-time, one "call" per item — the per-item
  // bookkeeping (bounds check, row pointer computation, separate copy) is
  // the behaviour being modelled, so do not batch these copies.
  for (std::size_t i = 0; i < mb.indices.size(); ++i) {
    const auto src = static_cast<std::size_t>(mb.indices[i]);
    if (src >= features_->rows()) {
      throw std::out_of_range("assemble_baseline: row out of range");
    }
    std::memcpy(mb.features.row(i), features_->row(src), row * sizeof(float));
    mb.labels[i] = labels_ != nullptr ? labels_[src] : -1;
  }
  return mb;
}

MiniBatch BatchSource::assemble_fused(std::size_t batch_idx) const {
  MiniBatch mb;
  mb.indices = batch_indices(batch_idx);
  mb.features = Tensor({mb.indices.size(), features_->row_size()});
  gather_rows(*features_, mb.indices, mb.features);
  mb.labels.resize(mb.indices.size());
  for (std::size_t i = 0; i < mb.indices.size(); ++i) {
    mb.labels[i] =
        labels_ != nullptr ? labels_[static_cast<std::size_t>(mb.indices[i])]
                           : -1;
  }
  return mb;
}

}  // namespace ppgnn::loader
