// Host-side batch assembly over in-memory training data.
//
// Two assembly kernels mirror the paper's Section 4.1:
//   - assemble_baseline: extracts node vectors one at a time (the PyTorch
//     DataLoader default path, Figure 6a);
//   - assemble_fused: a single indexed gather per batch (the customized
//     data loader).
// Both are *real* implementations; unit tests assert they produce identical
// batches and the kernel benchmark measures their actual gap on this CPU.
#pragma once

#include <cstdint>
#include <vector>

#include "loader/shuffler.h"
#include "tensor/tensor.h"

namespace ppgnn::loader {

struct MiniBatch {
  Tensor features;                    // [b, row_dim]
  std::vector<std::int32_t> labels;   // [b]
  std::vector<std::int64_t> indices;  // source rows (into the train set)
};

// A training set view: row-major features (one row per training sample,
// already preprocessed/expanded) plus labels.
class BatchSource {
 public:
  BatchSource(const Tensor* features, const std::int32_t* labels,
              std::size_t batch_size);

  std::size_t num_samples() const { return features_->rows(); }
  std::size_t batch_size() const { return batch_size_; }
  std::size_t num_batches() const {
    return (num_samples() + batch_size_ - 1) / batch_size_;
  }

  // Installs this epoch's visit order (from a Shuffler).
  void set_epoch_order(std::vector<std::int64_t> order);
  const std::vector<std::int64_t>& epoch_order() const { return order_; }

  // Row-at-a-time extraction (baseline loader).
  MiniBatch assemble_baseline(std::size_t batch_idx) const;
  // One fused gather (customized loader).
  MiniBatch assemble_fused(std::size_t batch_idx) const;

 private:
  std::vector<std::int64_t> batch_indices(std::size_t batch_idx) const;

  const Tensor* features_;
  const std::int32_t* labels_;
  std::size_t batch_size_;
  std::vector<std::int64_t> order_;
};

}  // namespace ppgnn::loader
