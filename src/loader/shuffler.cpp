#include "loader/shuffler.h"

#include <numeric>
#include <stdexcept>

namespace ppgnn::loader {

std::vector<std::int64_t> RandomReshuffler::epoch_order(std::size_t n,
                                                        Rng& rng) const {
  std::vector<std::int64_t> order(n);
  std::iota(order.begin(), order.end(), std::int64_t{0});
  rng.shuffle(order);
  return order;
}

ChunkReshuffler::ChunkReshuffler(std::size_t chunk_size) : chunk_(chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument("ChunkReshuffler: chunk size must be > 0");
  }
}

std::string ChunkReshuffler::name() const {
  return "SGD-CR(" + std::to_string(chunk_) + ")";
}

std::vector<std::int64_t> ChunkReshuffler::epoch_order(std::size_t n,
                                                       Rng& rng) const {
  const std::size_t num_chunks = (n + chunk_ - 1) / chunk_;
  std::vector<std::int64_t> chunk_order(num_chunks);
  std::iota(chunk_order.begin(), chunk_order.end(), std::int64_t{0});
  rng.shuffle(chunk_order);
  std::vector<std::int64_t> order;
  order.reserve(n);
  for (const auto c : chunk_order) {
    const auto lo = static_cast<std::size_t>(c) * chunk_;
    const auto hi = std::min(lo + chunk_, n);
    for (std::size_t i = lo; i < hi; ++i) {
      order.push_back(static_cast<std::int64_t>(i));
    }
  }
  return order;
}

std::unique_ptr<Shuffler> make_shuffler(std::size_t chunk_size) {
  if (chunk_size <= 1) return std::make_unique<RandomReshuffler>();
  return std::make_unique<ChunkReshuffler>(chunk_size);
}

}  // namespace ppgnn::loader
