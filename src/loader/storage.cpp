#include "loader/storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace ppgnn::loader {

namespace {

std::string hop_path(const std::string& dir, std::size_t hop) {
  return dir + "/hop_" + std::to_string(hop) + ".bin";
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void pread_exact(int fd, void* buf, std::size_t count, off_t offset) {
  auto* p = static_cast<char*>(buf);
  while (count > 0) {
    const ssize_t r = ::pread(fd, p, count, offset);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (r == 0) throw std::runtime_error("pread: unexpected EOF");
    p += r;
    count -= static_cast<std::size_t>(r);
    offset += r;
  }
}

}  // namespace

FeatureFileStore FeatureFileStore::create(
    const std::string& dir, const std::vector<Tensor>& hop_features) {
  if (hop_features.empty()) {
    throw std::invalid_argument("FeatureFileStore: no hop features");
  }
  ::mkdir(dir.c_str(), 0755);  // ok if it already exists
  const std::size_t rows = hop_features[0].rows();
  const std::size_t dim = hop_features[0].cols();
  for (const auto& t : hop_features) {
    if (t.rows() != rows || t.cols() != dim) {
      throw std::invalid_argument("FeatureFileStore: hop shape mismatch");
    }
  }
  for (std::size_t h = 0; h < hop_features.size(); ++h) {
    const int fd = ::open(hop_path(dir, h).c_str(),
                          O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) throw_errno("open for write: " + hop_path(dir, h));
    const char* p = reinterpret_cast<const char*>(hop_features[h].data());
    std::size_t left = hop_features[h].bytes();
    while (left > 0) {
      const ssize_t w = ::write(fd, p, left);
      if (w < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw_errno("write");
      }
      p += w;
      left -= static_cast<std::size_t>(w);
    }
    ::close(fd);
  }
  return open(dir, rows, hop_features.size(), dim);
}

FeatureFileStore FeatureFileStore::open(const std::string& dir,
                                        std::size_t num_rows,
                                        std::size_t num_hops,
                                        std::size_t dim) {
  FeatureFileStore s;
  s.dir_ = dir;
  s.rows_ = num_rows;
  s.hops_ = num_hops;
  s.dim_ = dim;
  s.fds_.reserve(num_hops);
  for (std::size_t h = 0; h < num_hops; ++h) {
    const int fd = ::open(hop_path(dir, h).c_str(), O_RDONLY);
    if (fd < 0) throw_errno("open for read: " + hop_path(dir, h));
    s.fds_.push_back(fd);
  }
  return s;
}

FeatureFileStore::FeatureFileStore(FeatureFileStore&& other) noexcept {
  *this = std::move(other);
}

FeatureFileStore& FeatureFileStore::operator=(
    FeatureFileStore&& other) noexcept {
  if (this != &other) {
    for (const int fd : fds_) ::close(fd);
    dir_ = std::move(other.dir_);
    rows_ = other.rows_;
    hops_ = other.hops_;
    dim_ = other.dim_;
    fds_ = std::move(other.fds_);
    other.fds_.clear();
  }
  return *this;
}

FeatureFileStore::~FeatureFileStore() {
  for (const int fd : fds_) ::close(fd);
}

void FeatureFileStore::read_chunk(std::size_t row0, std::size_t count,
                                  Tensor& out) const {
  if (row0 + count > rows_) {
    throw std::out_of_range("read_chunk: range out of bounds");
  }
  if (out.rows() != count || out.cols() != hops_ * dim_) {
    throw std::invalid_argument("read_chunk: bad output shape");
  }
  // One contiguous pread per hop file, then interleave into the per-row
  // hop-major layout.
  std::vector<float> buf(count * dim_);
  for (std::size_t h = 0; h < hops_; ++h) {
    pread_exact(fds_[h], buf.data(), count * dim_ * sizeof(float),
                static_cast<off_t>(row0 * dim_ * sizeof(float)));
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(out.row(i) + h * dim_, buf.data() + i * dim_,
                  dim_ * sizeof(float));
    }
  }
}

void FeatureFileStore::read_rows(const std::vector<std::int64_t>& rows,
                                 Tensor& out) const {
  if (out.rows() != rows.size() || out.cols() != hops_ * dim_) {
    throw std::invalid_argument("read_rows: bad output shape");
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    if (rows[i] < 0 || r >= rows_) {
      throw std::out_of_range("read_rows: row out of bounds");
    }
    for (std::size_t h = 0; h < hops_; ++h) {
      pread_exact(fds_[h], out.row(i) + h * dim_, dim_ * sizeof(float),
                  static_cast<off_t>(r * dim_ * sizeof(float)));
    }
  }
}

}  // namespace ppgnn::loader
