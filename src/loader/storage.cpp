#include "loader/storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <system_error>

#include "tensor/quant.h"

namespace ppgnn::loader {

namespace {

std::string hop_path(const std::string& dir, std::size_t hop) {
  return dir + "/hop_" + std::to_string(hop) + ".bin";
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void pread_exact(int fd, void* buf, std::size_t count, off_t offset) {
  auto* p = static_cast<char*>(buf);
  while (count > 0) {
    const ssize_t r = ::pread(fd, p, count, offset);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (r == 0) throw std::runtime_error("pread: unexpected EOF");
    p += r;
    count -= static_cast<std::size_t>(r);
    offset += r;
  }
}

void write_all(int fd, const char* p, std::size_t left) {
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
}

}  // namespace

const char* codec_name(RowCodec codec) {
  return codec == RowCodec::kInt8 ? "int8" : "fp32";
}

FeatureFileStore FeatureFileStore::create(
    const std::string& dir, const std::vector<Tensor>& hop_features,
    RowCodec codec) {
  if (hop_features.empty()) {
    throw std::invalid_argument("FeatureFileStore: no hop features");
  }
  ::mkdir(dir.c_str(), 0755);  // ok if it already exists
  const std::size_t rows = hop_features[0].rows();
  const std::size_t dim = hop_features[0].cols();
  for (const auto& t : hop_features) {
    if (t.rows() != rows || t.cols() != dim) {
      throw std::invalid_argument("FeatureFileStore: hop shape mismatch");
    }
  }
  for (std::size_t h = 0; h < hop_features.size(); ++h) {
    const int fd = ::open(hop_path(dir, h).c_str(),
                          O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) throw_errno("open for write: " + hop_path(dir, h));
    if (codec == RowCodec::kFp32) {
      write_all(fd, reinterpret_cast<const char*>(hop_features[h].data()),
                hop_features[h].bytes());
    } else {
      // Row record: [fp32 scale][dim int8 codes].
      const std::size_t rec = sizeof(float) + dim;
      std::vector<char> buf(rows * rec);
      for (std::size_t i = 0; i < rows; ++i) {
        char* out = buf.data() + i * rec;
        float scale = 0.f;
        quantize_row_s8(hop_features[h].row(i), dim,
                        reinterpret_cast<std::int8_t*>(out + sizeof(float)),
                        &scale);
        std::memcpy(out, &scale, sizeof(float));
      }
      write_all(fd, buf.data(), buf.size());
    }
    ::close(fd);
  }
  return open(dir, rows, hop_features.size(), dim, codec);
}

FeatureFileStore FeatureFileStore::open(const std::string& dir,
                                        std::size_t num_rows,
                                        std::size_t num_hops,
                                        std::size_t dim, RowCodec codec) {
  FeatureFileStore s;
  s.dir_ = dir;
  s.rows_ = num_rows;
  s.hops_ = num_hops;
  s.dim_ = dim;
  s.codec_ = codec;
  s.fds_.reserve(num_hops);
  // Record sizes differ per codec (4*dim vs 4+dim bytes), so the file
  // length pins down which codec wrote the file — a mismatched open
  // (e.g. an int8 store opened as fp32) fails loudly here instead of
  // silently decoding garbage features.
  const off_t want_bytes =
      static_cast<off_t>(num_rows * s.hop_row_bytes());
  for (std::size_t h = 0; h < num_hops; ++h) {
    const int fd = ::open(hop_path(dir, h).c_str(), O_RDONLY);
    if (fd < 0) throw_errno("open for read: " + hop_path(dir, h));
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("fstat: " + hop_path(dir, h));
    }
    if (st.st_size != want_bytes) {
      ::close(fd);
      throw std::invalid_argument(
          "FeatureFileStore::open: " + hop_path(dir, h) + " holds " +
          std::to_string(st.st_size) + " bytes but rows*dim with the " +
          std::string(codec_name(codec)) + " codec needs " +
          std::to_string(want_bytes) +
          " (codec/shape mismatch with how the store was created?)");
    }
    s.fds_.push_back(fd);
  }
  return s;
}

FeatureFileStore::FeatureFileStore(FeatureFileStore&& other) noexcept {
  *this = std::move(other);
}

FeatureFileStore& FeatureFileStore::operator=(
    FeatureFileStore&& other) noexcept {
  if (this != &other) {
    for (const int fd : fds_) ::close(fd);
    dir_ = std::move(other.dir_);
    rows_ = other.rows_;
    hops_ = other.hops_;
    dim_ = other.dim_;
    codec_ = other.codec_;
    fds_ = std::move(other.fds_);
    other.fds_.clear();
    preads_.store(other.preads_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }
  return *this;
}

FeatureFileStore::~FeatureFileStore() {
  for (const int fd : fds_) ::close(fd);
}

void FeatureFileStore::read_hop_run(std::size_t h, std::size_t row0,
                                    std::size_t count, float* dst) const {
  const std::size_t rec = hop_row_bytes();
  preads_.fetch_add(1, std::memory_order_relaxed);
  if (codec_ == RowCodec::kFp32) {
    pread_exact(fds_[h], dst, count * rec, static_cast<off_t>(row0 * rec));
    return;
  }
  std::vector<char> buf(count * rec);
  pread_exact(fds_[h], buf.data(), buf.size(),
              static_cast<off_t>(row0 * rec));
  for (std::size_t i = 0; i < count; ++i) {
    const char* in = buf.data() + i * rec;
    float scale = 0.f;
    std::memcpy(&scale, in, sizeof(float));
    dequantize_row_s8(reinterpret_cast<const std::int8_t*>(in + sizeof(float)),
                      dim_, scale, dst + i * dim_);
  }
}

void FeatureFileStore::read_chunk(std::size_t row0, std::size_t count,
                                  Tensor& out) const {
  if (row0 + count > rows_) {
    throw std::out_of_range("read_chunk: range out of bounds");
  }
  if (out.rows() != count || out.cols() != hops_ * dim_) {
    throw std::invalid_argument("read_chunk: bad output shape");
  }
  // One contiguous pread per hop file, then interleave into the per-row
  // hop-major layout.
  std::vector<float> buf(count * dim_);
  for (std::size_t h = 0; h < hops_; ++h) {
    read_hop_run(h, row0, count, buf.data());
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(out.row(i) + h * dim_, buf.data() + i * dim_,
                  dim_ * sizeof(float));
    }
  }
}

void FeatureFileStore::read_rows_encoded(
    const std::vector<std::int64_t>& rows, std::uint8_t* out) const {
  for (const auto r : rows) {
    if (r < 0 || static_cast<std::size_t>(r) >= rows_) {
      throw std::out_of_range("read_rows: row out of bounds");
    }
  }
  const std::size_t rec = hop_row_bytes();
  // Sort output positions by row id so duplicates and adjacent ids form
  // runs; each run costs one pread per hop instead of one per occurrence.
  // Serving batches are heavy-tailed (hot rows repeat within a batch), so
  // the saving is structural, not incidental.
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return rows[a] < rows[b]; });
  std::vector<std::uint8_t> buf;
  std::size_t i = 0;
  while (i < order.size()) {
    const std::size_t run_first = static_cast<std::size_t>(rows[order[i]]);
    std::size_t j = i;
    std::size_t run_last = run_first;
    // Extend the run while the next sorted id is the same row (duplicate)
    // or the immediately following one (adjacent on disk).
    while (j + 1 < order.size()) {
      const auto next = static_cast<std::size_t>(rows[order[j + 1]]);
      if (next > run_last + 1) break;
      run_last = next;
      ++j;
    }
    const std::size_t count = run_last - run_first + 1;
    buf.resize(count * rec);
    for (std::size_t h = 0; h < hops_; ++h) {
      preads_.fetch_add(1, std::memory_order_relaxed);
      pread_exact(fds_[h], buf.data(), count * rec,
                  static_cast<off_t>(run_first * rec));
      for (std::size_t t = i; t <= j; ++t) {
        const auto r = static_cast<std::size_t>(rows[order[t]]);
        std::memcpy(out + order[t] * row_bytes() + h * rec,
                    buf.data() + (r - run_first) * rec, rec);
      }
    }
    i = j + 1;
  }
}

void FeatureFileStore::decode_row(const std::uint8_t* enc, float* out) const {
  const std::size_t rec = hop_row_bytes();
  for (std::size_t h = 0; h < hops_; ++h) {
    const std::uint8_t* in = enc + h * rec;
    if (codec_ == RowCodec::kFp32) {
      std::memcpy(out + h * dim_, in, rec);
    } else {
      float scale = 0.f;
      std::memcpy(&scale, in, sizeof(float));
      dequantize_row_s8(
          reinterpret_cast<const std::int8_t*>(in + sizeof(float)), dim_,
          scale, out + h * dim_);
    }
  }
}

void FeatureFileStore::read_rows(const std::vector<std::int64_t>& rows,
                                 Tensor& out) const {
  if (out.rows() != rows.size() || out.cols() != hops_ * dim_) {
    throw std::invalid_argument("read_rows: bad output shape");
  }
  std::vector<std::uint8_t> enc(rows.size() * row_bytes());
  read_rows_encoded(rows, enc.data());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    decode_row(enc.data() + i * row_bytes(), out.row(i));
  }
}

}  // namespace ppgnn::loader
