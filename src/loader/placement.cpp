#include "loader/placement.h"

namespace ppgnn::loader {

PlacementDecision decide_placement(const PlacementRequest& req,
                                   const sim::MachineSpec& machine) {
  PlacementDecision d;
  const int g = std::max(1, req.num_gpus);
  // Leave ~10% GPU headroom for allocator fragmentation and activations
  // beyond the measured peak; data may be sharded across GPUs.
  const auto gpu_budget = static_cast<std::size_t>(
      0.9 * static_cast<double>(machine.gpu.memory_bytes) * g);
  const std::size_t gpu_needed = req.input_bytes + req.model_peak_bytes * g;

  if (gpu_needed <= gpu_budget) {
    d.placement = sim::DataPlacement::kGpu;
    d.chunk_reshuffle = false;  // HBM makes assembly free; RR preferred
    d.loader = sim::LoaderKind::kDoubleBuffer;
    d.rationale = "input + model peak fits GPU memory; preload and use "
                  "SGD-RR with double-buffered gathers";
    return d;
  }

  if (req.input_bytes <= machine.host.memory_bytes) {
    d.placement = sim::DataPlacement::kHost;
    const auto pin_budget = static_cast<std::size_t>(
        req.max_pinned_fraction *
        static_cast<double>(machine.host.memory_bytes));
    if (!req.force_sgd_rr && req.input_bytes <= pin_budget) {
      d.chunk_reshuffle = true;
      d.loader = sim::LoaderKind::kChunkPipeline;
      d.rationale = "input fits host memory and within the pinning budget; "
                    "chunk reshuffling with GPU-side assembly";
    } else {
      d.chunk_reshuffle = false;
      d.loader = sim::LoaderKind::kDoubleBuffer;
      d.rationale = req.force_sgd_rr
                        ? "user forced SGD-RR; host-side fused assembly with "
                          "double-buffered prefetching"
                        : "input exceeds the pinning budget; default to "
                          "SGD-RR to avoid pinning the whole input";
    }
    return d;
  }

  d.placement = sim::DataPlacement::kStorage;
  d.chunk_reshuffle = true;  // SGD-RR on storage is IOPS-bound
  d.loader = sim::LoaderKind::kChunkPipeline;
  d.rationale = "input exceeds host memory; direct storage access with "
                "chunk reshuffling (row-granular SGD-RR would be "
                "random-read bound)";
  return d;
}

}  // namespace ppgnn::loader
