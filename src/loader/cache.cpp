#include "loader/cache.h"

#include <algorithm>
#include <stdexcept>

namespace ppgnn::loader {

StaticCache::StaticCache(const std::vector<std::int64_t>& pinned_rows,
                         std::size_t row_bytes)
    : row_bytes_(row_bytes) {
  if (row_bytes == 0) {
    throw std::invalid_argument("StaticCache: row_bytes must be > 0");
  }
  pinned_.reserve(pinned_rows.size() * 2);
  for (const auto r : pinned_rows) pinned_.emplace(r, true);
}

bool StaticCache::access(std::int64_t row) {
  return pinned_.count(row) > 0;
}

std::vector<std::int64_t> StaticCache::hot_rows(std::size_t k) const {
  std::vector<std::int64_t> out;
  out.reserve(std::min(k, pinned_.size()));
  for (const auto& [row, _] : pinned_) {
    if (out.size() == k) break;
    out.push_back(row);
  }
  return out;
}

LruCache::LruCache(std::size_t capacity_bytes, std::size_t row_bytes)
    : capacity_bytes_(capacity_bytes),
      row_bytes_(row_bytes),
      max_rows_(row_bytes ? capacity_bytes / row_bytes : 0) {
  if (row_bytes == 0) {
    throw std::invalid_argument("LruCache: row_bytes must be > 0");
  }
  if (max_rows_ == 0) {
    throw std::invalid_argument(
        "LruCache: capacity_bytes must hold at least one row");
  }
  map_.reserve(max_rows_ * 2);
}

bool LruCache::access(std::int64_t row, std::int64_t* evicted) {
  if (evicted) *evicted = -1;
  const auto it = map_.find(row);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);  // refresh
    return true;
  }
  if (map_.size() == max_rows_) {
    if (evicted) *evicted = order_.back();
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(row);
  map_.emplace(row, order_.begin());
  return false;
}

std::vector<std::int64_t> LruCache::hot_rows(std::size_t k) const {
  std::vector<std::int64_t> out;
  out.reserve(std::min(k, map_.size()));
  for (const auto row : order_) {  // front = most recent = hottest
    if (out.size() == k) break;
    out.push_back(row);
  }
  return out;
}

HitRateReport replay(RowCache& cache,
                     const std::vector<std::int64_t>& stream) {
  HitRateReport r;
  r.accesses = stream.size();
  for (const auto row : stream) {
    if (cache.access(row)) ++r.hits;
  }
  return r;
}

std::vector<std::int64_t> hottest_rows(const std::vector<std::int64_t>& stream,
                                       std::size_t k) {
  std::unordered_map<std::int64_t, std::size_t> freq;
  freq.reserve(stream.size());
  for (const auto r : stream) ++freq[r];
  std::vector<std::pair<std::size_t, std::int64_t>> by_freq;
  by_freq.reserve(freq.size());
  for (const auto& [row, count] : freq) by_freq.emplace_back(count, row);
  const std::size_t take = std::min(k, by_freq.size());
  std::partial_sort(by_freq.begin(), by_freq.begin() + take, by_freq.end(),
                    [](const auto& a, const auto& b) { return a > b; });
  std::vector<std::int64_t> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(by_freq[i].second);
  return out;
}

}  // namespace ppgnn::loader
