// Data-placement policy (Section 5).
//
// Given the expanded input size and the model's peak GPU working set, pick
// where the training data lives and which training method to use:
//   fits in GPU memory   -> GPU + SGD-RR (chunking buys nothing at HBM bw)
//   fits in host memory  -> host; chunk reshuffling unless pinning the whole
//                           input would consume too much host memory
//   otherwise            -> storage + chunk reshuffling (SGD-RR would be
//                           IOPS-bound on row-granular reads)
#pragma once

#include <cstddef>
#include <string>

#include "sim/hardware.h"
#include "sim/pipeline.h"

namespace ppgnn::loader {

struct PlacementRequest {
  std::size_t input_bytes = 0;       // expanded training input (all hops)
  std::size_t model_peak_bytes = 0;  // measured peak GPU working set
  int num_gpus = 1;
  // User override: force SGD-RR even where chunk reshuffling is preferred
  // (the paper exposes this because CR pins the entire input).
  bool force_sgd_rr = false;
  // Fraction of host memory the system is willing to pin (Section 5
  // "avoid excessive host memory pinning").
  double max_pinned_fraction = 0.5;
};

struct PlacementDecision {
  sim::DataPlacement placement = sim::DataPlacement::kHost;
  bool chunk_reshuffle = false;
  sim::LoaderKind loader = sim::LoaderKind::kDoubleBuffer;
  std::string rationale;
};

PlacementDecision decide_placement(const PlacementRequest& req,
                                   const sim::MachineSpec& machine);

}  // namespace ppgnn::loader
