#include "tensor/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace ppgnn {

namespace {
// True while the current thread is inside a parallel_for (as driver or as
// worker) — nested calls must not touch the pool again.
thread_local bool t_in_parallel_region = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t n_workers = n_threads - 1;  // caller participates
  tasks_.resize(n_workers);
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::size_t seen_epoch = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      task = tasks_[worker_id];
    }
    if (task.fn != nullptr && task.begin < task.end) {
      t_in_parallel_region = true;
      (*task.fn)(task.begin, task.end);
      t_in_parallel_region = false;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // Only one parallel_for may drive the workers; nested calls from inside a
  // task and concurrent callers from other threads run serially instead.
  if (t_in_parallel_region) {
    fn(0, n);
    return;
  }
  std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
  if (!submit.owns_lock()) {
    fn(0, n);
    return;
  }
  t_in_parallel_region = true;
  const std::size_t n_parts = std::min(n, workers_.size() + 1);
  const std::size_t chunk = (n + n_parts - 1) / n_parts;
  // Caller runs part 0; workers run parts 1..n_parts-1.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::size_t part = w + 1;
      Task t;
      if (part < n_parts) {
        t.fn = &fn;
        t.begin = std::min(n, part * chunk);
        t.end = std::min(n, (part + 1) * chunk);
      }
      tasks_[w] = t;
    }
    pending_ = workers_.size();
    ++epoch_;
  }
  cv_work_.notify_all();
  fn(0, std::min(n, chunk));
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
  }
  t_in_parallel_region = false;
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("PPGNN_NUM_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  if (n < grain || global_pool().size() == 1) {
    if (n > 0) fn(0, n);
    return;
  }
  global_pool().parallel_for(n, fn);
}

}  // namespace ppgnn
