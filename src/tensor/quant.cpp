#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "tensor/parallel.h"
#include "tensor/quant_kernels.h"

namespace ppgnn {

namespace detail {

// Scalar oracle (and every SIMD arm's tail handler): exact int32 dot over
// the int8 codes in ascending t, then the canonical epilogue sequence.
// Lives in this base-flags TU so a wider arm's TU (-mavx2/-mavx512*)
// cannot recontract the float math into FMAs — bit-identity depends on
// every arm running the same IEEE operation sequence.
void gemm_rows_scalar(const GemmRowArgs& a, std::size_t j0, std::size_t j1) {
  const QuantizedMatrix& w = *a.w;
  const std::size_t k = w.cols;
  for (std::size_t j = j0; j < j1; ++j) {
    std::int32_t acc = 0;
    const std::int8_t* wr = w.row(j);
    for (std::size_t t = 0; t < k; ++t) {
      acc += static_cast<std::int32_t>(a.xr[t]) *
             static_cast<std::int32_t>(wr[t]);
    }
    float y = w.scales[j] * (a.xs * static_cast<float>(acc) +
                             a.xoff * static_cast<float>(w.row_sums[j]));
    if (a.bias) y += a.bias[j];
    a.crow[j] = y;
  }
}

// pmaddwd over the pair-packed layout: one instruction retires two
// k-steps for four outputs, accumulating in int32 lanes.  The per-lane
// accumulation order (ascending kk) gives the same exact int32 sum as the
// scalar ascending-t loop — integer addition is associative — and the
// SIMD epilogue performs the identical per-lane IEEE sequence, so this
// arm is the bit-exact SSE2 oracle the wider arms are tested against.
void gemm_rows_sse2(const GemmRowArgs& a, std::size_t j0, std::size_t j1) {
#if defined(__SSE2__)
  const QuantizedMatrix& w = *a.w;
  const std::size_t k2 = (w.cols + 1) / 2;
  const __m128 xs4 = _mm_set1_ps(a.xs);
  const __m128 xo4 = _mm_set1_ps(a.xoff);
  std::size_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    __m128i acc = _mm_setzero_si128();
    const std::int16_t* wp = w.packed.data() + j * 2;
    for (std::size_t kk = 0; kk < k2; ++kk) {
      const __m128i xb = _mm_set1_epi32(a.xw[kk]);
      const __m128i wv = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(wp + kk * w.rows * 2));
      acc = _mm_add_epi32(acc, _mm_madd_epi16(xb, wv));
    }
    const __m128 accf = _mm_cvtepi32_ps(acc);
    const __m128 rs4 = _mm_cvtepi32_ps(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(w.row_sums.data() + j)));
    const __m128 ws4 = _mm_loadu_ps(w.scales.data() + j);
    __m128 out = _mm_mul_ps(
        ws4, _mm_add_ps(_mm_mul_ps(xs4, accf), _mm_mul_ps(xo4, rs4)));
    if (a.bias) out = _mm_add_ps(out, _mm_loadu_ps(a.bias + j));
    _mm_storeu_ps(a.crow + j, out);
  }
  if (j < j1) gemm_rows_scalar(a, j, j1);
#else
  gemm_rows_scalar(a, j0, j1);
#endif
}

bool have_sse2_kernel() {
#if defined(__SSE2__)
  return true;
#else
  return false;
#endif
}

std::size_t packed_x_words(Isa arm, std::size_t k) {
  switch (arm) {
    case Isa::kSse2:
    case Isa::kAvx2:
      return (k + 1) / 2;
    case Isa::kAvx512Vnni:
      return (k + 3) / 4;
    case Isa::kScalar:
      break;
  }
  return 0;
}

void pack_x_row(Isa arm, const std::int8_t* xr, std::size_t k,
                std::int32_t* xw) {
  if (arm == Isa::kSse2 || arm == Isa::kAvx2) {
    // Two sign-extended int16 codes per word; the padding half of an odd
    // k is 0, which zeroes its pmaddwd product against any weight code.
    const std::size_t k2 = (k + 1) / 2;
    for (std::size_t kk = 0; kk < k2; ++kk) {
      const auto a = static_cast<std::int16_t>(xr[2 * kk]);
      const std::int16_t b = (2 * kk + 1 < k)
                                 ? static_cast<std::int16_t>(xr[2 * kk + 1])
                                 : std::int16_t{0};
      xw[kk] = static_cast<std::int32_t>(static_cast<std::uint16_t>(a)) |
               (static_cast<std::int32_t>(static_cast<std::uint16_t>(b))
                << 16);
    }
  } else if (arm == Isa::kAvx512Vnni) {
    // Four unsigned (code + 128) bytes per word for the u8 x s8
    // vpdpbusd; padding bytes pair against zero-padded weight quads, so
    // their value cannot matter — 128 (= code 0 biased) keeps them in the
    // same documented form as real codes.
    const std::size_t k4 = (k + 3) / 4;
    for (std::size_t kq = 0; kq < k4; ++kq) {
      std::uint32_t word = 0;
      for (std::size_t p = 0; p < 4; ++p) {
        const std::size_t t = 4 * kq + p;
        const std::uint32_t byte =
            t < k ? static_cast<std::uint8_t>(
                        static_cast<std::int32_t>(xr[t]) + 128)
                  : 128u;
        word |= byte << (8 * p);
      }
      xw[kq] = static_cast<std::int32_t>(word);
    }
  }
}

}  // namespace detail

namespace {

// Round-half-away-from-zero as trunc(v + sign(v)*0.5): branch-free and
// auto-vectorizable, unlike lrintf.  Symmetric codes, so the tie-breaking
// direction only matters for exact .5 boundaries; what matters here is
// that it is deterministic and the same everywhere.
inline int round_code(float v) {
  return static_cast<int>(v + std::copysign(0.5f, v));
}

using RowKernel = void (*)(const detail::GemmRowArgs&, std::size_t,
                           std::size_t);

// The kernel that reads w's packed layout, degraded to scalar when this
// host cannot execute the layout's arm (a matrix packed on or for a wider
// machine still answers bit-identically — the scalar arm reads the raw
// codes, which every matrix carries).
RowKernel kernel_for(const QuantizedMatrix& w, Isa* arm_out) {
  Isa arm = w.packed_for;
  if (!isa_supported(arm)) arm = Isa::kScalar;
  switch (arm) {
    case Isa::kSse2:
      if (!w.packed.empty()) {
        *arm_out = arm;
        return &detail::gemm_rows_sse2;
      }
      break;
    case Isa::kAvx2:
      if (!w.packed.empty()) {
        *arm_out = arm;
        return &detail::gemm_rows_avx2;
      }
      break;
    case Isa::kAvx512Vnni:
      if (!w.packed_quad.empty()) {
        *arm_out = arm;
        return &detail::gemm_rows_avx512vnni;
      }
      break;
    case Isa::kScalar:
      break;
  }
  *arm_out = Isa::kScalar;
  return &detail::gemm_rows_scalar;
}

// Shared GEMM driver for both activation encodings.  Accumulate in int32
// and dequantize once at the epilogue (both scales are constant over the
// k-sum by construction: per-sample x per-output-channel).
//
// Iteration space: a 2-D grid of (output-row block) x (batch-row block)
// tasks on the shared pool, j-major, so one worker sweeps consecutive
// batch blocks against the same weight block — the replica's shared
// weight slab streams through L2 once per batch instead of once per
// sample, and a SMALL batch against a WIDE layer still fans out over
// output blocks instead of serializing on one thread (m=1 used to pin the
// whole dispatch to one worker).  Any partition is bit-identical: each
// output's accumulation order is fixed inside the row kernels.
template <typename ScaleFn, typename OffFn>
void gemm_s8_impl(std::size_t m, std::size_t k, std::size_t n,
                  const std::int8_t* xdata, ScaleFn xscale, OffFn xoff,
                  const QuantizedMatrix& w, Tensor& c, const Tensor* bias) {
  if (c.ndim() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  }
  if (m == 0 || n == 0) return;
  const float* bias_p = bias ? bias->data() : nullptr;

  Isa arm = Isa::kScalar;
  const RowKernel kernel = kernel_for(w, &arm);
  const std::size_t words = detail::packed_x_words(arm, k);

  // Pack the whole batch's activation words once; every (jb, mb) task
  // re-reads them, so packing per task would redo the work njb times.
  std::vector<std::int32_t> xw(words * m);
  if (words > 0) {
    parallel_for(
        m,
        [&](std::size_t i0, std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i) {
            detail::pack_x_row(arm, xdata + i * k, k, xw.data() + i * words);
          }
        },
        64);
  }

  // 64 outputs x k codes of pair-pack is ~12 KB at the serving shape —
  // comfortably L2-resident next to the activation words.  The batch
  // block starts big (stream weights once) and halves until the grid can
  // feed every pool thread.
  const std::size_t kJBlock = 64;
  const std::size_t njb = (n + kJBlock - 1) / kJBlock;
  std::size_t mblock = 128;
  const std::size_t threads = global_pool().size();
  while (mblock > 16 && njb * ((m + mblock - 1) / mblock) < threads) {
    mblock /= 2;
  }
  const std::size_t nmb = (m + mblock - 1) / mblock;

  parallel_for(
      njb * nmb,
      [&](std::size_t t0, std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t jb = t / nmb, mb = t % nmb;
          const std::size_t j0 = jb * kJBlock;
          const std::size_t j1 = std::min(n, j0 + kJBlock);
          const std::size_t i0 = mb * mblock;
          const std::size_t i1 = std::min(m, i0 + mblock);
          detail::GemmRowArgs a;
          a.w = &w;
          a.bias = bias_p;
          for (std::size_t i = i0; i < i1; ++i) {
            a.xr = xdata + i * k;
            a.xw = words ? xw.data() + i * words : nullptr;
            a.xs = xscale(i);
            a.xoff = xoff(i);
            a.crow = c.row(i);
            kernel(a, j0, j1);
          }
        }
      },
      1);
}

}  // namespace

void quantize_row_s8(const float* src, std::size_t n, std::int8_t* dst,
                     float* scale) {
  float amax = 0.f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(src[i]);
    if (a > amax) amax = a;
  }
  if (amax == 0.f) {
    std::memset(dst, 0, n);
    *scale = 0.f;
    return;
  }
  const float s = amax / 127.f;
  const float inv = 127.f / amax;
  for (std::size_t i = 0; i < n; ++i) {
    // The clamp guards the amax element itself, which can land on
    // ±127.0000001 after the multiply.
    int q = round_code(src[i] * inv);
    if (q > 127) q = 127;
    if (q < -127) q = -127;  // symmetric: -128 never used, so -q is exact
    dst[i] = static_cast<std::int8_t>(q);
  }
  *scale = s;
}

void dequantize_row_s8(const std::int8_t* src, std::size_t n, float scale,
                       float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

QuantizedMatrix quantize_per_row(const Tensor& m) {
  return quantize_per_row(m, active_isa());
}

QuantizedMatrix quantize_per_row(const Tensor& m, Isa arm) {
  if (m.ndim() != 2) {
    throw std::invalid_argument("quantize_per_row: expected 2-D, got " +
                                m.shape_str());
  }
  QuantizedMatrix q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.data.resize(q.rows * q.cols);
  q.scales.resize(q.rows);
  q.row_sums.resize(q.rows);
  parallel_for(q.rows, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      quantize_row_s8(m.row(i), q.cols, q.row(i), &q.scales[i]);
      std::int32_t sum = 0;
      const std::int8_t* codes = q.row(i);
      for (std::size_t t = 0; t < q.cols; ++t) sum += codes[t];
      q.row_sums[i] = sum;
    }
  });
  // Build ONLY the layout the dispatched arm reads (quant.h): the scalar
  // arm reads the raw codes and needs none.  Zero-padding the k remainder
  // keeps every packed dot exact.
  q.packed_for = arm;
  if (arm == Isa::kSse2 || arm == Isa::kAvx2) {
    const std::size_t k2 = (q.cols + 1) / 2;
    q.packed.assign(k2 * q.rows * 2, 0);
    for (std::size_t j = 0; j < q.rows; ++j) {
      const std::int8_t* codes = q.row(j);
      for (std::size_t t = 0; t < q.cols; ++t) {
        q.packed[((t / 2) * q.rows + j) * 2 + (t & 1)] = codes[t];
      }
    }
  } else if (arm == Isa::kAvx512Vnni) {
    const std::size_t k4 = (q.cols + 3) / 4;
    q.packed_quad.assign(k4 * q.rows * 4, 0);
    for (std::size_t j = 0; j < q.rows; ++j) {
      const std::int8_t* codes = q.row(j);
      for (std::size_t t = 0; t < q.cols; ++t) {
        q.packed_quad[((t / 4) * q.rows + j) * 4 + (t & 3)] = codes[t];
      }
    }
  }
  return q;
}

Tensor dequantize(const QuantizedMatrix& q) {
  Tensor out({q.rows, q.cols});
  parallel_for(q.rows, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      dequantize_row_s8(q.row(i), q.cols, q.scales[i], out.row(i));
    }
  });
  return out;
}

QuantizedActs quantize_acts_per_row(const Tensor& m) {
  if (m.ndim() != 2) {
    throw std::invalid_argument("quantize_acts_per_row: expected 2-D, got " +
                                m.shape_str());
  }
  QuantizedActs q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.data.resize(q.rows * q.cols);
  q.scales.resize(q.rows);
  q.offsets.resize(q.rows);
  parallel_for(q.rows, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* src = m.row(i);
      float lo = src[0], hi = src[0];
      for (std::size_t t = 1; t < q.cols; ++t) {
        lo = std::min(lo, src[t]);
        hi = std::max(hi, src[t]);
      }
      const float mid = 0.5f * (lo + hi);
      const float half = 0.5f * (hi - lo);
      std::int8_t* dst = q.row(i);
      if (half == 0.f) {
        // Constant row: the offset carries it exactly.
        std::memset(dst, 0, q.cols);
        q.scales[i] = 0.f;
        q.offsets[i] = mid;
        continue;
      }
      const float s = half / 127.f;
      const float inv = 127.f / half;
      for (std::size_t t = 0; t < q.cols; ++t) {
        int code = round_code((src[t] - mid) * inv);
        if (code > 127) code = 127;
        if (code < -127) code = -127;
        dst[t] = static_cast<std::int8_t>(code);
      }
      q.scales[i] = s;
      q.offsets[i] = mid;
    }
  });
  return q;
}

void gemm_s8_nt(const QuantizedMatrix& x, const QuantizedMatrix& w, Tensor& c,
                const Tensor* bias) {
  if (x.cols != w.cols) {
    throw std::invalid_argument("gemm_s8_nt: inner dimension mismatch");
  }
  if (bias && bias->size() != w.rows) {
    throw std::invalid_argument("gemm_s8_nt: bias length mismatch");
  }
  // Symmetric codes mean a zero offset.
  gemm_s8_impl(
      x.rows, x.cols, w.rows, x.data.data(),
      [&](std::size_t i) { return x.scales[i]; },
      [](std::size_t) { return 0.f; }, w, c, bias);
}

void gemm_s8_nt(const QuantizedActs& x, const QuantizedMatrix& w, Tensor& c,
                const Tensor* bias) {
  if (x.cols != w.cols) {
    throw std::invalid_argument("gemm_s8_nt: inner dimension mismatch");
  }
  if (bias && bias->size() != w.rows) {
    throw std::invalid_argument("gemm_s8_nt: bias length mismatch");
  }
  if (w.row_sums.size() != w.rows) {
    throw std::invalid_argument(
        "gemm_s8_nt: weight matrix lacks row sums (quantize_per_row it)");
  }
  // sum_k (xoff + q*xs) * (wq*ws) = ws*(xs*acc + xoff*sum_k(wq)): the
  // offset correction rides the precomputed weight-code row sums, so
  // asymmetric activations cost one extra FMA per output.
  gemm_s8_impl(
      x.rows, x.cols, w.rows, x.data.data(),
      [&](std::size_t i) { return x.scales[i]; },
      [&](std::size_t i) { return x.offsets[i]; }, w, c, bias);
}

Isa gemm_dispatch_arm(const QuantizedMatrix& w) {
  Isa arm = Isa::kScalar;
  kernel_for(w, &arm);
  return arm;
}

}  // namespace ppgnn
