#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "tensor/parallel.h"

namespace ppgnn {

namespace {

// Round-half-away-from-zero as trunc(v + sign(v)*0.5): branch-free and
// auto-vectorizable, unlike lrintf.  Symmetric codes, so the tie-breaking
// direction only matters for exact .5 boundaries; what matters here is
// that it is deterministic and the same everywhere.
inline int round_code(float v) {
  return static_cast<int>(v + std::copysign(0.5f, v));
}

// Shared inner kernel of both GEMM variants: one output row of
// C[j] = ws[j] * (xs * dot(x, w_j) + xoff * row_sum(w_j)) (+ bias[j]).
// The symmetric variant passes xoff = 0 and the offset term vanishes.
//
// SIMD path (x86-64 baseline — SSE2 is architectural there): x codes are
// pre-combined into int32 k-pairs, broadcast, and multiplied against the
// pair-packed weights with pmaddwd, which retires two k-steps for four
// outputs per instruction and accumulates in int32 lanes — the fixed
// accumulation order is per-lane and identical for every row, so batched
// inference stays bit-deterministic.  Elsewhere: plain int16 dot per
// output.
inline void gemm_s8_row(const std::int8_t* xr, float xs, float xoff,
                        const QuantizedMatrix& w, const float* bias_p,
                        std::int32_t* xp_scratch, float* crow) {
  const std::size_t k = w.cols, n = w.rows;
  const std::size_t k2 = (k + 1) / 2;
  std::size_t j = 0;
#if defined(__SSE2__)
  for (std::size_t kk = 0; kk + 1 < k2; ++kk) {
    const auto a = static_cast<std::int16_t>(xr[2 * kk]);
    const auto b = static_cast<std::int16_t>(xr[2 * kk + 1]);
    xp_scratch[kk] =
        static_cast<std::int32_t>(static_cast<std::uint16_t>(a)) |
        (static_cast<std::int32_t>(static_cast<std::uint16_t>(b)) << 16);
  }
  if (k2 > 0) {  // last pair: second element may be padding
    const auto a = static_cast<std::int16_t>(xr[2 * (k2 - 1)]);
    const std::int16_t b =
        (2 * (k2 - 1) + 1 < k)
            ? static_cast<std::int16_t>(xr[2 * (k2 - 1) + 1])
            : std::int16_t{0};
    xp_scratch[k2 - 1] =
        static_cast<std::int32_t>(static_cast<std::uint16_t>(a)) |
        (static_cast<std::int32_t>(static_cast<std::uint16_t>(b)) << 16);
  }
  const __m128 xs4 = _mm_set1_ps(xs);
  const __m128 xo4 = _mm_set1_ps(xoff);
  for (; j + 4 <= n; j += 4) {
    __m128i acc = _mm_setzero_si128();
    const std::int16_t* wp = w.packed.data() + j * 2;
    for (std::size_t kk = 0; kk < k2; ++kk) {
      const __m128i xb = _mm_set1_epi32(xp_scratch[kk]);
      const __m128i wv = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(wp + kk * n * 2));
      acc = _mm_add_epi32(acc, _mm_madd_epi16(xb, wv));
    }
    const __m128 accf = _mm_cvtepi32_ps(acc);
    const __m128 rs4 = _mm_cvtepi32_ps(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(w.row_sums.data() + j)));
    const __m128 ws4 = _mm_loadu_ps(w.scales.data() + j);
    __m128 out = _mm_mul_ps(
        ws4, _mm_add_ps(_mm_mul_ps(xs4, accf), _mm_mul_ps(xo4, rs4)));
    if (bias_p) out = _mm_add_ps(out, _mm_loadu_ps(bias_p + j));
    _mm_storeu_ps(crow + j, out);
  }
#else
  (void)xp_scratch;
#endif
  for (; j < n; ++j) {  // tail outputs (and the non-SSE2 whole row)
    std::int32_t acc = 0;
    const std::int16_t* wr = w.row16(j);
    for (std::size_t t = 0; t < k; ++t) {
      acc += static_cast<std::int32_t>(xr[t]) *
             static_cast<std::int32_t>(wr[t]);
    }
    float y = w.scales[j] * (xs * static_cast<float>(acc) +
                             xoff * static_cast<float>(w.row_sums[j]));
    if (bias_p) y += bias_p[j];
    crow[j] = y;
  }
}

}  // namespace

void quantize_row_s8(const float* src, std::size_t n, std::int8_t* dst,
                     float* scale) {
  float amax = 0.f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(src[i]);
    if (a > amax) amax = a;
  }
  if (amax == 0.f) {
    std::memset(dst, 0, n);
    *scale = 0.f;
    return;
  }
  const float s = amax / 127.f;
  const float inv = 127.f / amax;
  for (std::size_t i = 0; i < n; ++i) {
    // The clamp guards the amax element itself, which can land on
    // ±127.0000001 after the multiply.
    int q = round_code(src[i] * inv);
    if (q > 127) q = 127;
    if (q < -127) q = -127;  // symmetric: -128 never used, so -q is exact
    dst[i] = static_cast<std::int8_t>(q);
  }
  *scale = s;
}

void dequantize_row_s8(const std::int8_t* src, std::size_t n, float scale,
                       float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

QuantizedMatrix quantize_per_row(const Tensor& m) {
  if (m.ndim() != 2) {
    throw std::invalid_argument("quantize_per_row: expected 2-D, got " +
                                m.shape_str());
  }
  QuantizedMatrix q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.data.resize(q.rows * q.cols);
  q.scales.resize(q.rows);
  q.row_sums.resize(q.rows);
  q.data16.resize(q.rows * q.cols);
  parallel_for(q.rows, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      quantize_row_s8(m.row(i), q.cols, q.row(i), &q.scales[i]);
      std::int32_t sum = 0;
      const std::int8_t* codes = q.row(i);
      std::int16_t* wide = q.data16.data() + i * q.cols;
      for (std::size_t t = 0; t < q.cols; ++t) {
        sum += codes[t];
        wide[t] = codes[t];
      }
      q.row_sums[i] = sum;
    }
  });
  // Pair-packed layout for the pmaddwd kernel (see quant.h); zero-padding
  // the odd k element keeps the dot exact.
  const std::size_t k2 = (q.cols + 1) / 2;
  q.packed.assign(k2 * q.rows * 2, 0);
  for (std::size_t j = 0; j < q.rows; ++j) {
    for (std::size_t t = 0; t < q.cols; ++t) {
      q.packed[((t / 2) * q.rows + j) * 2 + (t & 1)] = q.row16(j)[t];
    }
  }
  return q;
}

Tensor dequantize(const QuantizedMatrix& q) {
  Tensor out({q.rows, q.cols});
  parallel_for(q.rows, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      dequantize_row_s8(q.row(i), q.cols, q.scales[i], out.row(i));
    }
  });
  return out;
}

QuantizedActs quantize_acts_per_row(const Tensor& m) {
  if (m.ndim() != 2) {
    throw std::invalid_argument("quantize_acts_per_row: expected 2-D, got " +
                                m.shape_str());
  }
  QuantizedActs q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.data.resize(q.rows * q.cols);
  q.scales.resize(q.rows);
  q.offsets.resize(q.rows);
  parallel_for(q.rows, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* src = m.row(i);
      float lo = src[0], hi = src[0];
      for (std::size_t t = 1; t < q.cols; ++t) {
        lo = std::min(lo, src[t]);
        hi = std::max(hi, src[t]);
      }
      const float mid = 0.5f * (lo + hi);
      const float half = 0.5f * (hi - lo);
      std::int8_t* dst = q.row(i);
      if (half == 0.f) {
        // Constant row: the offset carries it exactly.
        std::memset(dst, 0, q.cols);
        q.scales[i] = 0.f;
        q.offsets[i] = mid;
        continue;
      }
      const float s = half / 127.f;
      const float inv = 127.f / half;
      for (std::size_t t = 0; t < q.cols; ++t) {
        int code = round_code((src[t] - mid) * inv);
        if (code > 127) code = 127;
        if (code < -127) code = -127;
        dst[t] = static_cast<std::int8_t>(code);
      }
      q.scales[i] = s;
      q.offsets[i] = mid;
    }
  });
  return q;
}

void gemm_s8_nt(const QuantizedMatrix& x, const QuantizedMatrix& w, Tensor& c,
                const Tensor* bias) {
  if (x.cols != w.cols) {
    throw std::invalid_argument("gemm_s8_nt: inner dimension mismatch");
  }
  if (bias && bias->size() != w.rows) {
    throw std::invalid_argument("gemm_s8_nt: bias length mismatch");
  }
  const std::size_t m = x.rows, k = x.cols, n = w.rows;
  if (c.ndim() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  }
  const float* bias_p = bias ? bias->data() : nullptr;
  // Accumulate in int32 and dequantize once at the epilogue (both scales
  // are constant over the k-sum by construction: per-sample x
  // per-output-channel).  Symmetric codes mean a zero offset.
  parallel_for(m, [&](std::size_t i0, std::size_t i1) {
    std::vector<std::int32_t> xp((k + 1) / 2);
    for (std::size_t i = i0; i < i1; ++i) {
      gemm_s8_row(x.row(i), x.scales[i], 0.f, w, bias_p, xp.data(),
                  c.row(i));
    }
  });
  (void)n;
}

void gemm_s8_nt(const QuantizedActs& x, const QuantizedMatrix& w, Tensor& c,
                const Tensor* bias) {
  if (x.cols != w.cols) {
    throw std::invalid_argument("gemm_s8_nt: inner dimension mismatch");
  }
  if (bias && bias->size() != w.rows) {
    throw std::invalid_argument("gemm_s8_nt: bias length mismatch");
  }
  if (w.row_sums.size() != w.rows) {
    throw std::invalid_argument(
        "gemm_s8_nt: weight matrix lacks row sums (quantize_per_row it)");
  }
  const std::size_t m = x.rows, k = x.cols, n = w.rows;
  if (c.ndim() != 2 || c.rows() != m || c.cols() != n) {
    c = Tensor({m, n});
  }
  const float* bias_p = bias ? bias->data() : nullptr;
  // sum_k (xoff + q*xs) * (wq*ws) = ws*(xs*acc + xoff*sum_k(wq)): the
  // offset correction rides the precomputed weight-code row sums, so
  // asymmetric activations cost one extra FMA per output.
  parallel_for(m, [&](std::size_t i0, std::size_t i1) {
    std::vector<std::int32_t> xp((k + 1) / 2);
    for (std::size_t i = i0; i < i1; ++i) {
      gemm_s8_row(x.row(i), x.scales[i], x.offsets[i], w, bias_p, xp.data(),
                  c.row(i));
    }
  });
  (void)n;
}

}  // namespace ppgnn
