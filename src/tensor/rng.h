// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (graph generation, weight init,
// dropout, samplers, shufflers) draws from an Rng seeded explicitly, so all
// experiments are reproducible bit-for-bit across runs.  Rng::split(tag)
// derives an independent stream, which lets parallel samplers draw without
// sharing state.
#pragma once

#include <cstdint>
#include <vector>

namespace ppgnn {

// xoshiro256** with splitmix64 seeding — fast, high-quality, and tiny.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  // Standard normal via Box-Muller (cached spare).
  double normal();
  double normal(double mean, double stddev);
  // Bernoulli with probability p of true.
  bool bernoulli(double p);

  // Derives an independent generator; same (seed, tag) -> same stream.
  Rng split(std::uint64_t tag) const;

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // k distinct values from [0, n) (k <= n), order unspecified but stable
  // for a given generator state.  Uses Floyd's algorithm: O(k) expected.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
  std::uint64_t seed_;  // retained for split()
};

}  // namespace ppgnn
