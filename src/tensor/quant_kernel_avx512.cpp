// AVX-512 VNNI arm of the INT8 GEMM kernel ladder (quant_kernels.h).
//
// vpdpbusd fuses the whole pair-pack-and-madd dance into one instruction:
// four k-steps for sixteen outputs, u8 x s8 -> int32.  The instruction
// wants UNSIGNED bytes on the activation side, so the packed words carry
// (code + 128) and the exact bias 128 * row_sum(w) is subtracted from the
// int32 accumulator before the epilogue — row_sums is already there for
// the activation zero-point, so the correction is one shift-subtract per
// 16 outputs and the accumulator equals the scalar oracle's bit for bit
// (exact while k * 32385 fits int32; see quant_kernels.h).
//
// This TU alone is compiled with -mavx512f -mavx512vnni plus
// -ffp-contract=off (CMakeLists.txt) and only runs after the
// CPUID+XGETBV probe passes.  The contract flag is not optional: gcc
// lowers mul/add _ps intrinsics to plain vector * and +, which
// contract=fast would fuse into FMA here (where FMA exists) and the
// epilogue would stop matching the baseline TUs bit for bit.  Sub-16
// tails go to the out-of-line scalar oracle.
#include "tensor/quant_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "tensor/quant.h"

namespace ppgnn::detail {

#if defined(__AVX512F__) && defined(__AVX512VNNI__)

void gemm_rows_avx512vnni(const GemmRowArgs& a, std::size_t j0,
                          std::size_t j1) {
  const QuantizedMatrix& w = *a.w;
  const std::size_t k4 = (w.cols + 3) / 4;
  const __m512 xs16 = _mm512_set1_ps(a.xs);
  const __m512 xo16 = _mm512_set1_ps(a.xoff);
  std::size_t j = j0;
  for (; j + 16 <= j1; j += 16) {
    __m512i acc = _mm512_setzero_si512();
    // Quad-packed layout: outputs j..j+15 of quad kq sit at
    // packed_quad[(kq*rows + j)*4] — one zmm load per four k-steps.
    const std::int8_t* wp = w.packed_quad.data() + j * 4;
    for (std::size_t kq = 0; kq < k4; ++kq) {
      const __m512i xb = _mm512_set1_epi32(a.xw[kq]);
      const __m512i wv = _mm512_loadu_si512(wp + kq * w.rows * 4);
      acc = _mm512_dpbusd_epi32(acc, xb, wv);
    }
    // Remove the unsigned-activation bias: acc -= 128 * row_sum.
    const __m512i rs = _mm512_loadu_si512(w.row_sums.data() + j);
    acc = _mm512_sub_epi32(acc, _mm512_slli_epi32(rs, 7));
    const __m512 accf = _mm512_cvtepi32_ps(acc);
    const __m512 rsf = _mm512_cvtepi32_ps(rs);
    const __m512 ws16 = _mm512_loadu_ps(w.scales.data() + j);
    __m512 out = _mm512_mul_ps(
        ws16,
        _mm512_add_ps(_mm512_mul_ps(xs16, accf), _mm512_mul_ps(xo16, rsf)));
    if (a.bias) out = _mm512_add_ps(out, _mm512_loadu_ps(a.bias + j));
    _mm512_storeu_ps(a.crow + j, out);
  }
  if (j < j1) gemm_rows_scalar(a, j, j1);
}

bool have_avx512vnni_kernel() { return true; }

#else

void gemm_rows_avx512vnni(const GemmRowArgs& a, std::size_t j0,
                          std::size_t j1) {
  gemm_rows_scalar(a, j0, j1);  // unreachable: dispatch checks have_*
}

bool have_avx512vnni_kernel() { return false; }

#endif

}  // namespace ppgnn::detail
