// Dense kernels shared by the NN layers, samplers and models.
//
// All kernels are CPU implementations parallelized over the leading
// dimension with the global thread pool.  GEMM is a register-blocked
// microkernel — not BLAS-fast, but fast enough that the real-training
// experiments (accuracy / convergence figures) complete in seconds on the
// scaled-down synthetic datasets.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ppgnn {

class Rng;

// ---------------------------------------------------------------------------
// GEMM: C = alpha * op(A) @ op(B) + beta * C.
// op(A) is [m, k], op(B) is [k, n], C is [m, n]; dimensions are validated.
void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha = 1.f, float beta = 0.f);

// Convenience allocating wrappers.
Tensor matmul(const Tensor& a, const Tensor& b);                 // A @ B
Tensor matmul_tn(const Tensor& a, const Tensor& b);              // A^T @ B
Tensor matmul_nt(const Tensor& a, const Tensor& b);              // A @ B^T

// ---------------------------------------------------------------------------
// Elementwise / vector ops (shapes must match exactly).
void add_inplace(Tensor& a, const Tensor& b);           // a += b
void sub_inplace(Tensor& a, const Tensor& b);           // a -= b
void mul_inplace(Tensor& a, const Tensor& b);           // a *= b (Hadamard)
void axpy(float alpha, const Tensor& x, Tensor& y);     // y += alpha * x
void scale_inplace(Tensor& a, float alpha);             // a *= alpha

// Adds a length-cols vector to every row of a 2-D tensor (bias add).
void add_row_vector(Tensor& a, const Tensor& bias);
// Sums a 2-D tensor over rows into a length-cols vector (bias gradient).
void sum_rows(const Tensor& a, Tensor& out);
// Sums all elements.
float sum_all(const Tensor& a);

// ---------------------------------------------------------------------------
// Activations (forward writes out; backward consumes forward output).
void relu(const Tensor& x, Tensor& out);
void relu_backward(const Tensor& out, const Tensor& grad_out, Tensor& grad_in);
void leaky_relu(const Tensor& x, Tensor& out, float slope);
void leaky_relu_backward(const Tensor& x, const Tensor& grad_out,
                         Tensor& grad_in, float slope);
void gelu(const Tensor& x, Tensor& out);
void gelu_backward(const Tensor& x, const Tensor& grad_out, Tensor& grad_in);

// Row-wise softmax / log-softmax over the last dimension of a 2-D tensor.
void softmax_rows(const Tensor& x, Tensor& out);
void log_softmax_rows(const Tensor& x, Tensor& out);

// Mean cross-entropy over rows given logits and integer labels.
// Returns the loss; grad_logits (same shape as logits, may alias nothing)
// receives d(loss)/d(logits).  Rows with label < 0 are ignored (masked).
float cross_entropy(const Tensor& logits, const std::vector<std::int32_t>& labels,
                    Tensor& grad_logits);

// Fraction of rows whose argmax equals the label (labels < 0 are skipped).
double accuracy(const Tensor& logits, const std::vector<std::int32_t>& labels);
std::size_t argmax_row(const Tensor& x, std::size_t row);

// ---------------------------------------------------------------------------
// Dropout: out = x * mask / (1 - p); mask recorded for backward.
void dropout(const Tensor& x, Tensor& out, std::vector<std::uint8_t>& mask,
             float p, Rng& rng);
void dropout_backward(const Tensor& grad_out,
                      const std::vector<std::uint8_t>& mask, Tensor& grad_in,
                      float p);

// ---------------------------------------------------------------------------
// Row gather / scatter (batch assembly primitives; also used by samplers).
// out.row(i) = src.row(idx[i]).
void gather_rows(const Tensor& src, const std::vector<std::int64_t>& idx,
                 Tensor& out);
Tensor gather_rows(const Tensor& src, const std::vector<std::int64_t>& idx);
// dst.row(idx[i]) += src.row(i).  Rows in idx may repeat; not parallel-safe
// over duplicate targets, so this kernel is serial over rows.
void scatter_add_rows(const Tensor& src, const std::vector<std::int64_t>& idx,
                      Tensor& dst);

// Concatenates 2-D tensors with equal row counts along columns.
Tensor concat_cols(const std::vector<const Tensor*>& parts);
// Splits grad of a concat back into per-part gradients (inverse of above).
void split_cols(const Tensor& whole, std::vector<Tensor*>& parts);

// ---------------------------------------------------------------------------
// Comparisons for tests.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace ppgnn
