#include "tensor/tensor.h"

#include <numeric>

#include "tensor/rng.h"

namespace ppgnn {

namespace {
std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.f) {
  if (shape_.empty() || shape_.size() > 3) {
    throw std::invalid_argument("Tensor supports 1..3 dimensions, got " +
                                std::to_string(shape_.size()));
  }
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(std::vector<std::size_t> shape, Rng& rng, float lo,
                       float hi) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::normal(std::vector<std::size_t> shape, Rng& rng, float mean,
                      float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::from_vector(std::vector<std::size_t> shape,
                           std::vector<float> values) {
  Tensor t(std::move(shape));
  if (values.size() != t.size()) {
    throw std::invalid_argument("from_vector: " + std::to_string(values.size()) +
                                " values for shape " + t.shape_str());
  }
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  Tensor t(std::move(new_shape));
  if (t.size() != size()) {
    throw std::invalid_argument("reshaped: element count mismatch " +
                                shape_str() + " -> " + t.shape_str());
  }
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::check_same_shape(const Tensor& other, const char* what) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                shape_str() + " vs " + other.shape_str());
  }
}

std::string Tensor::shape_str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

}  // namespace ppgnn
