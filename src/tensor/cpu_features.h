// Runtime ISA selection for the INT8 serving GEMM kernel ladder.
//
// The ladder (tensor/quant.h, docs/kernels.md) has four arms —
//
//   scalar      plain int32 dot over the int8 codes (every platform)
//   sse2        pmaddwd over a pair-packed int16 layout (x86-64 baseline)
//   avx2        the same pair-packed layout, 8 outputs per step
//   avx512vnni  vpdpbusd over a quad-packed int8 layout, 16 outputs/step
//
// — and every arm accumulates in exact int32 and runs the identical fp32
// epilogue, so all arms are bit-identical (test_kernel_ladder enforces
// this; there is no error-bound escape hatch).  Which arm runs is decided
// ONCE, at quantize_per_row() time: the weight matrix is packed into the
// selected arm's layout and gemm_s8_nt dispatches on that layout.
//
// Selection = min(requested, what this CPU+OS can run), in ladder order:
// requesting an arm the host lacks degrades to the widest arm below it,
// never errors.  The default request is best_supported_isa(); the
// PPGNN_ISA environment variable (scalar|sse2|avx2|avx512vnni) or
// set_isa_override() forces any arm for testing and benchmarking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ppgnn {

// Ladder order: each arm strictly wider than the previous.  Keep the
// values dense and ascending — resolve_isa() and the per-arm tables in
// sim/hardware.h index on them.
enum class Isa : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512Vnni = 3,
};
inline constexpr std::size_t kNumIsa = 4;

// "scalar" | "sse2" | "avx2" | "avx512vnni".
const char* isa_name(Isa isa);
// Inverse of isa_name; returns false (out untouched) for unknown names.
bool parse_isa(const std::string& name, Isa* out);

// Whether this binary contains the arm's kernel at all (an AVX2 kernel is
// compiled on any x86-64 build; never on other architectures).
bool isa_compiled(Isa isa);
// isa_compiled AND this CPU + OS can execute it: CPUID feature bits plus
// the XGETBV check that the OS actually saves the wider register state
// (a kernel booted with AVX-512 disabled reports the CPUID bit but would
// fault on the first zmm instruction — the probe catches that).
bool isa_supported(Isa isa);
// The widest supported arm on this host.
Isa best_supported_isa();

// min(requested, best supported): forcing down is always honored, forcing
// up degrades to the widest arm the host can run.  Never throws.
Isa resolve_isa(Isa requested);

// The arm quantize_per_row() packs for when no explicit arm is given:
// resolve_isa(PPGNN_ISA) if the variable is set and parses (an
// unrecognized value warns once on stderr and is ignored), otherwise
// best_supported_isa().  Cached after the first read; set_isa_override()
// replaces it (resolved), clear_isa_override() re-derives from the
// environment — both are for tests and benches that walk the ladder
// inside one process.
Isa active_isa();
void set_isa_override(Isa isa);
void clear_isa_override();

}  // namespace ppgnn
