// Internal interface between the INT8 GEMM dispatcher (quant.cpp) and the
// per-arm kernels of the ladder (docs/kernels.md).  Not installed API —
// tests and benches that need a specific arm go through the public
// quantize_per_row(m, isa) / gemm_s8_nt dispatch instead.
//
// Contract every arm must meet (the bit-identity contract):
//
//  * the int32 accumulator for output j is EXACTLY sum_t x[t] * w[j][t]
//    over the real k (padding in a packed layout must contribute zero);
//  * the fp32 epilogue performs, per output, exactly this IEEE sequence:
//        t1 = xs * float(acc); t2 = xoff * float(row_sum);
//        y  = ws * (t1 + t2);  y += bias            (when bias present)
//    with no fused multiply-add and no reassociation.  The wide arms use
//    explicit mul/add intrinsics; scalar tails are OUT-OF-LINE in the
//    base-flags translation unit (quant.cpp) so a -mavx512f TU cannot
//    recontract them into FMAs.
//
// Given both, every arm is bit-identical to the scalar oracle for any
// partition of the output range — which is what lets the dispatcher block
// the iteration space freely for cache locality and parallelism.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ppgnn {

enum class Isa : std::uint8_t;
struct QuantizedMatrix;

namespace detail {

// One sample row of the batch against outputs [j0, j1) of w.
struct GemmRowArgs {
  const std::int8_t* xr = nullptr;   // k int8 activation codes
  const std::int32_t* xw = nullptr;  // packed words (arm layout); null for
                                     // the scalar arm
  float xs = 0.f;                    // activation row scale
  float xoff = 0.f;                  // activation row offset (0 = symmetric)
  const QuantizedMatrix* w = nullptr;
  const float* bias = nullptr;       // null = no bias
  float* crow = nullptr;             // output row [n]
};

// Scalar oracle: exact int32 dot over the int8 codes, ascending t.  Also
// the tail handler for every SIMD arm (leftover outputs after the widest
// whole step) and the fallback when a matrix's packed layout has no
// runnable kernel on this host.
void gemm_rows_scalar(const GemmRowArgs& a, std::size_t j0, std::size_t j1);
// pmaddwd over the pair-packed layout, 4 outputs per step.
void gemm_rows_sse2(const GemmRowArgs& a, std::size_t j0, std::size_t j1);
// Same pair-packed layout, vpmaddwd ymm: 8 outputs per step.  Falls back
// to the sse2 kernel for the 4-wide remainder (identical layout, identical
// per-output arithmetic).
void gemm_rows_avx2(const GemmRowArgs& a, std::size_t j0, std::size_t j1);
// vpdpbusd over the quad-packed layout, 16 outputs per step.  Activations
// are biased to unsigned (x + 128) for the u8 x s8 instruction and the
// exact bias term 128 * row_sum is subtracted in int32 before the
// epilogue, so the accumulator still equals the scalar oracle's bit for
// bit (valid while k * 32385 fits int32 — k < 2^16, far beyond any layer
// here; the scalar oracle overflows around the same magnitude anyway).
void gemm_rows_avx512vnni(const GemmRowArgs& a, std::size_t j0,
                          std::size_t j1);

// Which arms this binary contains (compile-time: architecture + the
// per-TU -m flags CMake sets for the wide arms).
bool have_sse2_kernel();
bool have_avx2_kernel();
bool have_avx512vnni_kernel();

// Packed-activation words per sample row for `arm` at inner dim k:
// (k+1)/2 int32 pair words for sse2/avx2, (k+3)/4 quad words for
// avx512vnni, 0 for scalar.
std::size_t packed_x_words(Isa arm, std::size_t k);
// Packs one row of activation codes into the arm's word layout.  Pair
// words hold two sign-extended int16 codes; quad words hold four unsigned
// (code + 128) bytes.  Padding contributes zero against the zero-padded
// weight layouts.
void pack_x_row(Isa arm, const std::int8_t* xr, std::size_t k,
                std::int32_t* xw);

}  // namespace detail
}  // namespace ppgnn
