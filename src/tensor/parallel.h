// Minimal thread pool with a blocking parallel_for.
//
// The pool is created once per process (see global_pool()) and shared by all
// kernels (GEMM, SpMM, gather).  Work is partitioned into contiguous index
// ranges, one per worker, which is the right granularity for the regular,
// bandwidth-bound loops in this library.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppgnn {

class ThreadPool {
 public:
  // n_threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // workers + caller

  // Runs fn(begin, end) over disjoint subranges of [0, n) on all threads and
  // returns when every subrange is done.  fn must be safe to call
  // concurrently on disjoint ranges.
  //
  // Reentrancy: the pool handles one parallel_for at a time.  A call made
  // while another is in flight (e.g. from the prefetcher thread while the
  // trainer runs a GEMM) executes fn(0, n) serially on the calling thread
  // instead of deadlocking on the shared workers.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t worker_id);

  std::vector<std::thread> workers_;
  std::mutex submit_mu_;  // held for the duration of one parallel_for
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;        // one slot per worker
  std::size_t epoch_ = 0;          // incremented per parallel_for call
  std::size_t pending_ = 0;        // tasks not yet finished this epoch
  bool stop_ = false;
};

// Process-wide pool; lazily constructed, sized from hardware concurrency or
// the PPGNN_NUM_THREADS environment variable.
ThreadPool& global_pool();

// Convenience wrapper over global_pool().parallel_for.  Falls back to a
// serial loop for small n to avoid synchronization overhead.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 1024);

}  // namespace ppgnn
