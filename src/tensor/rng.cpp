#include "tensor/rng.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace ppgnn {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split(std::uint64_t tag) const {
  // Mix seed and tag through splitmix64 so nearby tags give unrelated streams.
  std::uint64_t x = seed_ ^ (0x9e3779b97f4a7c15ULL + tag * 0xbf58476d1ce4e5b9ULL);
  return Rng(splitmix64(x));
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  assert(k <= n);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(k * 2);
  // Floyd's algorithm.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = uniform_int(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace ppgnn
