#include "tensor/cpu_features.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "tensor/quant_kernels.h"

namespace ppgnn {

namespace {

#if defined(__x86_64__) || defined(__i386__)

// XCR0 via xgetbv — only legal after CPUID reports OSXSAVE, which is why
// probe() checks that bit first.  Inline asm instead of _xgetbv so the
// base translation unit needs no -mxsave.
std::uint64_t xcr0() {
  std::uint32_t lo = 0, hi = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

struct CpuProbe {
  bool sse2 = false, avx2 = false, avx512vnni = false;
};

CpuProbe probe_cpu() {
  CpuProbe p;
  std::uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return p;
  p.sse2 = (edx >> 26) & 1;
  const bool osxsave = (ecx >> 27) & 1;
  if (!osxsave) return p;  // OS saves no extended state: xmm-era only
  const std::uint64_t x = xcr0();
  const bool ymm_state = (x & 0x6) == 0x6;          // XMM + YMM
  const bool zmm_state = (x & 0xe6) == 0xe6;        // + opmask, zmm0-31
  std::uint32_t b7 = 0, c7 = 0, d7 = 0;
  eax = 0;
  if (!__get_cpuid_count(7, 0, &eax, &b7, &c7, &d7)) return p;
  p.avx2 = ymm_state && ((b7 >> 5) & 1);
  // The VNNI arm uses only AVX-512F ops plus vpdpbusd itself.
  const bool avx512f = (b7 >> 16) & 1;
  const bool vnni = (c7 >> 11) & 1;
  p.avx512vnni = zmm_state && avx512f && vnni;
  return p;
}

#else

struct CpuProbe {
  bool sse2 = false, avx2 = false, avx512vnni = false;
};
CpuProbe probe_cpu() { return {}; }

#endif

const CpuProbe& cached_probe() {
  static const CpuProbe p = probe_cpu();
  return p;
}

// kNumIsa = "no override"; an Isa value = forced (already resolved).
std::atomic<std::uint8_t> g_override{static_cast<std::uint8_t>(kNumIsa)};

Isa env_default() {
  const char* env = std::getenv("PPGNN_ISA");
  if (env && *env) {
    Isa requested;
    if (parse_isa(env, &requested)) return resolve_isa(requested);
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "[ppgnn] ignoring unrecognized PPGNN_ISA=%s "
                   "(scalar|sse2|avx2|avx512vnni)\n",
                   env);
    }
  }
  return best_supported_isa();
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512Vnni:
      return "avx512vnni";
  }
  return "scalar";
}

bool parse_isa(const std::string& name, Isa* out) {
  for (std::size_t i = 0; i < kNumIsa; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (name == isa_name(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return detail::have_sse2_kernel();
    case Isa::kAvx2:
      return detail::have_avx2_kernel();
    case Isa::kAvx512Vnni:
      return detail::have_avx512vnni_kernel();
  }
  return false;
}

bool isa_supported(Isa isa) {
  if (!isa_compiled(isa)) return false;
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return cached_probe().sse2;
    case Isa::kAvx2:
      return cached_probe().avx2;
    case Isa::kAvx512Vnni:
      return cached_probe().avx512vnni;
  }
  return false;
}

Isa best_supported_isa() {
  for (std::size_t i = kNumIsa; i-- > 0;) {
    const Isa isa = static_cast<Isa>(i);
    if (isa_supported(isa)) return isa;
  }
  return Isa::kScalar;
}

Isa resolve_isa(Isa requested) {
  for (std::size_t i = static_cast<std::size_t>(requested) + 1; i-- > 0;) {
    const Isa isa = static_cast<Isa>(i);
    if (isa_supported(isa)) return isa;
  }
  return Isa::kScalar;
}

Isa active_isa() {
  const std::uint8_t forced = g_override.load(std::memory_order_relaxed);
  if (forced < kNumIsa) return static_cast<Isa>(forced);
  // Benign race: env_default() is pure given a fixed environment, so two
  // first readers compute the same value.
  return env_default();
}

void set_isa_override(Isa isa) {
  g_override.store(static_cast<std::uint8_t>(resolve_isa(isa)),
                   std::memory_order_relaxed);
}

void clear_isa_override() {
  g_override.store(static_cast<std::uint8_t>(kNumIsa),
                   std::memory_order_relaxed);
}

}  // namespace ppgnn
