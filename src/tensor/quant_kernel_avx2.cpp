// AVX2 arm of the INT8 GEMM kernel ladder (quant_kernels.h).
//
// This translation unit alone is compiled with -mavx2 -ffp-contract=off
// (CMakeLists.txt); the function only runs after the CPUID probe
// (cpu_features.cpp) said the host executes AVX2, so no illegal
// instruction can escape.  The contract flag plus the OUT-OF-LINE scalar
// tail in quant.cpp are what keep this arm bit-identical to scalar: gcc
// lowers mul/add _ps intrinsics to vector * and +, which contract=fast
// would fuse into FMA on any -m level where FMA exists (see
// quant_kernels.h for the full contract).
#include "tensor/quant_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "tensor/quant.h"

namespace ppgnn::detail {

#if defined(__AVX2__)

void gemm_rows_avx2(const GemmRowArgs& a, std::size_t j0, std::size_t j1) {
  const QuantizedMatrix& w = *a.w;
  const std::size_t k2 = (w.cols + 1) / 2;
  const __m256 xs8 = _mm256_set1_ps(a.xs);
  const __m256 xo8 = _mm256_set1_ps(a.xoff);
  std::size_t j = j0;
  for (; j + 8 <= j1; j += 8) {
    __m256i acc = _mm256_setzero_si256();
    // Same pair-packed layout as the SSE2 arm: outputs j..j+7 of pair kk
    // sit at packed[(kk*rows + j)*2] — one ymm load per step.
    const std::int16_t* wp = w.packed.data() + j * 2;
    for (std::size_t kk = 0; kk < k2; ++kk) {
      const __m256i xb = _mm256_set1_epi32(a.xw[kk]);
      const __m256i wv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(wp + kk * w.rows * 2));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xb, wv));
    }
    const __m256 accf = _mm256_cvtepi32_ps(acc);
    const __m256 rs8 = _mm256_cvtepi32_ps(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(w.row_sums.data() + j)));
    const __m256 ws8 = _mm256_loadu_ps(w.scales.data() + j);
    __m256 out = _mm256_mul_ps(
        ws8, _mm256_add_ps(_mm256_mul_ps(xs8, accf), _mm256_mul_ps(xo8, rs8)));
    if (a.bias) out = _mm256_add_ps(out, _mm256_loadu_ps(a.bias + j));
    _mm256_storeu_ps(a.crow + j, out);
  }
  // The 4-wide remainder reads the identical pair layout with identical
  // per-output arithmetic; it hands its own sub-4 tail to the scalar
  // oracle.
  if (j < j1) gemm_rows_sse2(a, j, j1);
}

bool have_avx2_kernel() { return true; }

#else

void gemm_rows_avx2(const GemmRowArgs& a, std::size_t j0, std::size_t j1) {
  gemm_rows_scalar(a, j0, j1);  // unreachable: dispatch checks have_*
}

bool have_avx2_kernel() { return false; }

#endif

}  // namespace ppgnn::detail
