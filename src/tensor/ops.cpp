#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace ppgnn {

namespace {

void check_2d(const Tensor& t, const char* what) {
  if (t.ndim() != 2) {
    throw std::invalid_argument(std::string(what) + ": expected 2-D, got " +
                                t.shape_str());
  }
}

// Serial inner GEMM over a row range of C, with A and B in "logical"
// (already transposition-resolved) index order via strides.
struct MatView {
  const float* p;
  std::size_t r, c;      // logical rows/cols
  std::size_t rs, cs;    // strides for logical (row, col) step
  float at(std::size_t i, std::size_t j) const { return p[i * rs + j * cs]; }
};

MatView view(const Tensor& t, bool trans) {
  check_2d(t, "gemm");
  if (!trans) return {t.data(), t.rows(), t.cols(), t.cols(), 1};
  return {t.data(), t.cols(), t.rows(), 1, t.cols()};
}

}  // namespace

void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha, float beta) {
  const MatView A = view(a, trans_a);
  const MatView B = view(b, trans_b);
  check_2d(c, "gemm (C)");
  const std::size_t m = A.r, k = A.c, n = B.c;
  if (B.r != k || c.rows() != m || c.cols() != n) {
    throw std::invalid_argument("gemm: incompatible shapes " + a.shape_str() +
                                (trans_a ? "^T" : "") + " @ " + b.shape_str() +
                                (trans_b ? "^T" : "") + " -> " + c.shape_str());
  }
  float* C = c.data();

  // Fast path: no transposes — row-major friendly i-k-j loop with 4-wide j
  // unrolling; the compiler vectorizes the inner loop.
  parallel_for(m, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = C + i * n;
      if (beta == 0.f) {
        std::fill(crow, crow + n, 0.f);
      } else if (beta != 1.f) {
        for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
      }
      if (!trans_a && !trans_b) {
        const float* arow = A.p + i * k;
        for (std::size_t l = 0; l < k; ++l) {
          const float av = alpha * arow[l];
          if (av == 0.f) continue;
          const float* brow = B.p + l * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      } else if (trans_a && !trans_b) {
        for (std::size_t l = 0; l < k; ++l) {
          const float av = alpha * A.p[l * m + i];  // A logical (i,l) = phys (l,i)
          if (av == 0.f) continue;
          const float* brow = B.p + l * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      } else {
        // B transposed: dot products over contiguous B rows.
        for (std::size_t j = 0; j < n; ++j) {
          float acc = 0.f;
          if (!trans_a) {
            const float* arow = A.p + i * k;
            const float* brow = B.p + j * k;  // B logical (l,j) = phys (j,l)
            for (std::size_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
          } else {
            for (std::size_t l = 0; l < k; ++l) acc += A.at(i, l) * B.at(l, j);
          }
          crow[j] += alpha * acc;
        }
      }
    }
  }, /*grain=*/8);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.rows(), b.cols()});
  gemm(a, false, b, false, c);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c({a.cols(), b.cols()});
  gemm(a, true, b, false, c);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c({a.rows(), b.rows()});
  gemm(a, false, b, true, c);
  return c;
}

// ---------------------------------------------------------------------------

void add_inplace(Tensor& a, const Tensor& b) {
  a.check_same_shape(b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  parallel_for(a.size(), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) pa[i] += pb[i];
  }, 1u << 16);
}

void sub_inplace(Tensor& a, const Tensor& b) {
  a.check_same_shape(b, "sub_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.size(); i < n; ++i) pa[i] -= pb[i];
}

void mul_inplace(Tensor& a, const Tensor& b) {
  a.check_same_shape(b, "mul_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.size(); i < n; ++i) pa[i] *= pb[i];
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  y.check_same_shape(x, "axpy");
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0, n = x.size(); i < n; ++i) py[i] += alpha * px[i];
}

void scale_inplace(Tensor& a, float alpha) {
  float* pa = a.data();
  for (std::size_t i = 0, n = a.size(); i < n; ++i) pa[i] *= alpha;
}

void add_row_vector(Tensor& a, const Tensor& bias) {
  check_2d(a, "add_row_vector");
  if (bias.size() != a.cols()) {
    throw std::invalid_argument("add_row_vector: bias size mismatch");
  }
  const float* pb = bias.data();
  parallel_for(a.rows(), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* row = a.row(i);
      for (std::size_t j = 0, c = a.cols(); j < c; ++j) row[j] += pb[j];
    }
  }, 64);
}

void sum_rows(const Tensor& a, Tensor& out) {
  check_2d(a, "sum_rows");
  if (out.size() != a.cols()) {
    throw std::invalid_argument("sum_rows: output size mismatch");
  }
  out.zero();
  float* po = out.data();
  for (std::size_t i = 0, r = a.rows(); i < r; ++i) {
    const float* row = a.row(i);
    for (std::size_t j = 0, c = a.cols(); j < c; ++j) po[j] += row[j];
  }
}

float sum_all(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (std::size_t i = 0, n = a.size(); i < n; ++i) acc += p[i];
  return static_cast<float>(acc);
}

// ---------------------------------------------------------------------------

void relu(const Tensor& x, Tensor& out) {
  out.check_same_shape(x, "relu");
  const float* px = x.data();
  float* po = out.data();
  parallel_for(x.size(), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) po[i] = px[i] > 0.f ? px[i] : 0.f;
  }, 1u << 16);
}

void relu_backward(const Tensor& out, const Tensor& grad_out, Tensor& grad_in) {
  grad_in.check_same_shape(out, "relu_backward");
  const float* po = out.data();
  const float* pg = grad_out.data();
  float* pi = grad_in.data();
  for (std::size_t i = 0, n = out.size(); i < n; ++i) {
    pi[i] = po[i] > 0.f ? pg[i] : 0.f;
  }
}

void leaky_relu(const Tensor& x, Tensor& out, float slope) {
  out.check_same_shape(x, "leaky_relu");
  const float* px = x.data();
  float* po = out.data();
  for (std::size_t i = 0, n = x.size(); i < n; ++i) {
    po[i] = px[i] > 0.f ? px[i] : slope * px[i];
  }
}

void leaky_relu_backward(const Tensor& x, const Tensor& grad_out,
                         Tensor& grad_in, float slope) {
  grad_in.check_same_shape(x, "leaky_relu_backward");
  const float* px = x.data();
  const float* pg = grad_out.data();
  float* pi = grad_in.data();
  for (std::size_t i = 0, n = x.size(); i < n; ++i) {
    pi[i] = px[i] > 0.f ? pg[i] : slope * pg[i];
  }
}

namespace {
// tanh-approximation GELU and its derivative.
inline float gelu_scalar(float x) {
  const float c = 0.7978845608f;  // sqrt(2/pi)
  const float inner = c * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.f + std::tanh(inner));
}
inline float gelu_grad_scalar(float x) {
  const float c = 0.7978845608f;
  const float x3 = x * x * x;
  const float inner = c * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.f - t * t;
  return 0.5f * (1.f + t) + 0.5f * x * sech2 * c * (1.f + 3.f * 0.044715f * x * x);
}
}  // namespace

void gelu(const Tensor& x, Tensor& out) {
  out.check_same_shape(x, "gelu");
  const float* px = x.data();
  float* po = out.data();
  for (std::size_t i = 0, n = x.size(); i < n; ++i) po[i] = gelu_scalar(px[i]);
}

void gelu_backward(const Tensor& x, const Tensor& grad_out, Tensor& grad_in) {
  grad_in.check_same_shape(x, "gelu_backward");
  const float* px = x.data();
  const float* pg = grad_out.data();
  float* pi = grad_in.data();
  for (std::size_t i = 0, n = x.size(); i < n; ++i) {
    pi[i] = pg[i] * gelu_grad_scalar(px[i]);
  }
}

void softmax_rows(const Tensor& x, Tensor& out) {
  check_2d(x, "softmax_rows");
  out.check_same_shape(x, "softmax_rows");
  const std::size_t c = x.cols();
  parallel_for(x.rows(), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* xi = x.row(i);
      float* oi = out.row(i);
      float mx = xi[0];
      for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, xi[j]);
      float z = 0.f;
      for (std::size_t j = 0; j < c; ++j) {
        oi[j] = std::exp(xi[j] - mx);
        z += oi[j];
      }
      const float inv = 1.f / z;
      for (std::size_t j = 0; j < c; ++j) oi[j] *= inv;
    }
  }, 256);
}

void log_softmax_rows(const Tensor& x, Tensor& out) {
  check_2d(x, "log_softmax_rows");
  out.check_same_shape(x, "log_softmax_rows");
  const std::size_t c = x.cols();
  for (std::size_t i = 0, r = x.rows(); i < r; ++i) {
    const float* xi = x.row(i);
    float* oi = out.row(i);
    float mx = xi[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, xi[j]);
    float z = 0.f;
    for (std::size_t j = 0; j < c; ++j) z += std::exp(xi[j] - mx);
    const float lz = std::log(z) + mx;
    for (std::size_t j = 0; j < c; ++j) oi[j] = xi[j] - lz;
  }
}

float cross_entropy(const Tensor& logits,
                    const std::vector<std::int32_t>& labels,
                    Tensor& grad_logits) {
  check_2d(logits, "cross_entropy");
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("cross_entropy: label count mismatch");
  }
  grad_logits.check_same_shape(logits, "cross_entropy (grad)");
  const std::size_t c = logits.cols();
  std::size_t valid = 0;
  for (const auto y : labels) {
    if (y >= 0) ++valid;
  }
  if (valid == 0) {
    grad_logits.zero();
    return 0.f;
  }
  const float inv_valid = 1.f / static_cast<float>(valid);
  double loss = 0.0;
  // softmax(logits) - onehot, scaled by 1/valid.
  for (std::size_t i = 0, r = logits.rows(); i < r; ++i) {
    const float* xi = logits.row(i);
    float* gi = grad_logits.row(i);
    if (labels[i] < 0) {
      std::fill(gi, gi + c, 0.f);
      continue;
    }
    float mx = xi[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, xi[j]);
    float z = 0.f;
    for (std::size_t j = 0; j < c; ++j) {
      gi[j] = std::exp(xi[j] - mx);
      z += gi[j];
    }
    const float inv_z = 1.f / z;
    const auto y = static_cast<std::size_t>(labels[i]);
    loss -= (xi[y] - mx - std::log(z)) * inv_valid;
    for (std::size_t j = 0; j < c; ++j) gi[j] *= inv_z * inv_valid;
    gi[y] -= inv_valid;
  }
  return static_cast<float>(loss);
}

double accuracy(const Tensor& logits, const std::vector<std::int32_t>& labels) {
  check_2d(logits, "accuracy");
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0, r = logits.rows(); i < r; ++i) {
    if (labels[i] < 0) continue;
    ++total;
    if (argmax_row(logits, i) == static_cast<std::size_t>(labels[i])) ++correct;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

std::size_t argmax_row(const Tensor& x, std::size_t row) {
  const float* xi = x.row(row);
  std::size_t best = 0;
  for (std::size_t j = 1, c = x.cols(); j < c; ++j) {
    if (xi[j] > xi[best]) best = j;
  }
  return best;
}

// ---------------------------------------------------------------------------

void dropout(const Tensor& x, Tensor& out, std::vector<std::uint8_t>& mask,
             float p, Rng& rng) {
  out.check_same_shape(x, "dropout");
  mask.resize(x.size());
  if (p <= 0.f) {
    std::memcpy(out.data(), x.data(), x.bytes());
    std::fill(mask.begin(), mask.end(), 1);
    return;
  }
  const float keep = 1.f - p;
  const float scale = 1.f / keep;
  const float* px = x.data();
  float* po = out.data();
  for (std::size_t i = 0, n = x.size(); i < n; ++i) {
    const bool k = rng.uniform() < keep;
    mask[i] = k;
    po[i] = k ? px[i] * scale : 0.f;
  }
}

void dropout_backward(const Tensor& grad_out,
                      const std::vector<std::uint8_t>& mask, Tensor& grad_in,
                      float p) {
  grad_in.check_same_shape(grad_out, "dropout_backward");
  const float scale = p > 0.f ? 1.f / (1.f - p) : 1.f;
  const float* pg = grad_out.data();
  float* pi = grad_in.data();
  for (std::size_t i = 0, n = grad_out.size(); i < n; ++i) {
    pi[i] = mask[i] ? pg[i] * scale : 0.f;
  }
}

// ---------------------------------------------------------------------------

void gather_rows(const Tensor& src, const std::vector<std::int64_t>& idx,
                 Tensor& out) {
  const std::size_t rs = src.row_size();
  if (out.rows() != idx.size() || out.row_size() != rs) {
    throw std::invalid_argument("gather_rows: output shape mismatch");
  }
  const std::size_t n_src = src.rows();
  parallel_for(idx.size(), [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const auto r = idx[i];
      if (r < 0 || static_cast<std::size_t>(r) >= n_src) {
        throw std::out_of_range("gather_rows: index out of range");
      }
      std::memcpy(out.row(i), src.row(static_cast<std::size_t>(r)),
                  rs * sizeof(float));
    }
  }, 512);
}

Tensor gather_rows(const Tensor& src, const std::vector<std::int64_t>& idx) {
  std::vector<std::size_t> shape = src.shape();
  shape[0] = idx.size();
  Tensor out(std::move(shape));
  gather_rows(src, idx, out);
  return out;
}

void scatter_add_rows(const Tensor& src, const std::vector<std::int64_t>& idx,
                      Tensor& dst) {
  const std::size_t rs = src.row_size();
  if (src.rows() != idx.size() || dst.row_size() != rs) {
    throw std::invalid_argument("scatter_add_rows: shape mismatch");
  }
  for (std::size_t i = 0, n = idx.size(); i < n; ++i) {
    const auto r = idx[i];
    if (r < 0 || static_cast<std::size_t>(r) >= dst.rows()) {
      throw std::out_of_range("scatter_add_rows: index out of range");
    }
    float* d = dst.row(static_cast<std::size_t>(r));
    const float* s = src.row(i);
    for (std::size_t j = 0; j < rs; ++j) d[j] += s[j];
  }
}

Tensor concat_cols(const std::vector<const Tensor*>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: no parts");
  const std::size_t rows = parts[0]->rows();
  std::size_t cols = 0;
  for (const Tensor* p : parts) {
    if (p->ndim() != 2 || p->rows() != rows) {
      throw std::invalid_argument("concat_cols: row count mismatch");
    }
    cols += p->cols();
  }
  Tensor out({rows, cols});
  parallel_for(rows, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* orow = out.row(i);
      std::size_t off = 0;
      for (const Tensor* p : parts) {
        std::memcpy(orow + off, p->row(i), p->cols() * sizeof(float));
        off += p->cols();
      }
    }
  }, 256);
  return out;
}

void split_cols(const Tensor& whole, std::vector<Tensor*>& parts) {
  const std::size_t rows = whole.rows();
  std::size_t cols = 0;
  for (Tensor* p : parts) cols += p->cols();
  if (cols != whole.cols()) {
    throw std::invalid_argument("split_cols: column count mismatch");
  }
  for (std::size_t i = 0; i < rows; ++i) {
    const float* wrow = whole.row(i);
    std::size_t off = 0;
    for (Tensor* p : parts) {
      std::memcpy(p->row(i), wrow + off, p->cols() * sizeof(float));
      off += p->cols();
    }
  }
}

// ---------------------------------------------------------------------------

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.size(); i < n; ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    if (diff > atol + rtol * std::fabs(pb[i])) return false;
  }
  return true;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  a.check_same_shape(b, "max_abs_diff");
  float m = 0.f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.size(); i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

}  // namespace ppgnn
