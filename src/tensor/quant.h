// Post-training INT8 quantization primitives.
//
// Per-row symmetric quantization: each row of a 2-D tensor gets one scale
// s = max|row| / 127 and is stored as int8 q = round(x / s), so
// dequantization is x' = q * s with |x - x'| <= s / 2 per element.  Rows
// are the quantization granularity everywhere in this library:
//   - Linear weights are quantized per *output* channel (the weight matrix
//     is stored transposed, [out, in], so "per row" = per output), which
//     keeps the scale constant along the k-summation and lets the int8
//     GEMM accumulate in int32 and dequantize once at the epilogue;
//   - activation batches and FeatureFileStore rows are quantized per
//     sample row, which bounds the error by each row's own dynamic range.
//
// The GEMM below is the serving hot path for Precision::kInt8 (src/serve).
// It is a runtime-dispatched kernel LADDER (tensor/cpu_features.h,
// docs/kernels.md): quantize_per_row() probes the CPU once and packs the
// weight codes into the layout of the widest arm the host can run —
// scalar, SSE2/AVX2 pair-pack for pmaddwd, or AVX-512 VNNI quad-pack for
// vpdpbusd — and gemm_s8_nt() dispatches on that layout.  Every arm
// accumulates in exact int32 with the same fp32 epilogue order, so all
// arms are BIT-IDENTICAL to the scalar oracle (test_kernel_ladder); the
// PPGNN_ISA environment variable forces any arm for testing.  Work is
// blocked over output rows and batch rows on the shared thread pool, with
// a fixed per-output accumulation order, so batched inference stays
// bit-deterministic under any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/cpu_features.h"
#include "tensor/tensor.h"

namespace ppgnn {

// A row-major int8 matrix with one fp32 scale per row (symmetric).
struct QuantizedMatrix {
  std::size_t rows = 0, cols = 0;
  std::vector<std::int8_t> data;  // [rows * cols]
  std::vector<float> scales;      // [rows]; row i dequantizes as q * scales[i]
  std::vector<std::int32_t> row_sums;  // [rows]; sum of row codes — lets the
                                       // GEMM fold an activation zero-point
                                       // into the epilogue exactly
  // Which kernel arm the packed layout below was built for; gemm_s8_nt
  // dispatches on this (degrading to the scalar kernel over `data` if this
  // host cannot run the arm — a matrix packed elsewhere still answers
  // correctly, just slowly).  Exactly ONE layout is materialized per
  // matrix — the one the dispatched arm reads (scalar reads `data`
  // directly and needs none), which is what keeps the resident
  // weight-scratch at one extra byte-pair (or byte) per element instead
  // of every layout at once.
  Isa packed_for = Isa::kScalar;
  // Pair-packed int16 layout for the pmaddwd arms (sse2/avx2): element
  // (kk, j, p) at packed[(kk*rows + j)*2 + p] holds code (2*kk + p) of
  // output row j (zero-padded when cols is odd).  One multiply-add-pairs
  // instruction then consumes two k-steps for 4 (xmm) or 8 (ymm) outputs
  // at once.  Built once at quantize time; weights are immutable and
  // shared across replicas, so the packing amortizes to zero.
  std::vector<std::int16_t> packed;
  // Quad-packed int8 layout for the AVX-512 VNNI arm: element (kq, j, p)
  // at packed_quad[(kq*rows + j)*4 + p] holds code (4*kq + p) of output
  // row j (zero-padded to a multiple of 4).  vpdpbusd consumes four
  // k-steps for 16 outputs per instruction — and at one byte per element
  // this layout is half the pair-pack's footprint on top of being the
  // fastest arm.
  std::vector<std::int8_t> packed_quad;

  const std::int8_t* row(std::size_t i) const { return data.data() + i * cols; }
  std::int8_t* row(std::size_t i) { return data.data() + i * cols; }
  // Storage footprint (payload + scale headers) — the "4x smaller" number.
  // Kernel layouts are runtime scratch, deliberately excluded: they never
  // hit a checkpoint, a wire, or a cache budget.
  std::size_t bytes() const {
    return data.size() * sizeof(std::int8_t) + scales.size() * sizeof(float);
  }
  // Resident kernel-layout scratch on top of bytes(): the pair-pack costs
  // 2 bytes/element, the quad-pack 1, the scalar arm nothing.
  std::size_t scratch_bytes() const {
    return packed.size() * sizeof(std::int16_t) +
           packed_quad.size() * sizeof(std::int8_t);
  }
};

// Activation batch quantized per row with an asymmetric (offset + scale)
// code: x ~= offset + q * scale, q in [-127, 127].  The offset recenters
// each row's [min, max] — ReLU'd rows (min = 0) get double the resolution
// symmetric coding would give them, which is where most of the W8A8 logit
// error comes from in a multi-layer stack.
struct QuantizedActs {
  std::size_t rows = 0, cols = 0;
  std::vector<std::int8_t> data;  // [rows * cols]
  std::vector<float> scales;      // [rows]
  std::vector<float> offsets;     // [rows]

  const std::int8_t* row(std::size_t i) const { return data.data() + i * cols; }
  std::int8_t* row(std::size_t i) { return data.data() + i * cols; }
};

// Quantizes one row of n floats; writes n int8s and the row scale.
// An all-zero row gets scale 0 and all-zero codes (dequantizes to zero).
void quantize_row_s8(const float* src, std::size_t n, std::int8_t* dst,
                     float* scale);
// Inverse of quantize_row_s8: dst[i] = src[i] * scale.
void dequantize_row_s8(const std::int8_t* src, std::size_t n, float scale,
                       float* dst);

// Per-row symmetric quantization of a 2-D tensor, packed for the arm the
// runtime dispatch selected (active_isa(): CPUID probe or the PPGNN_ISA
// override).
QuantizedMatrix quantize_per_row(const Tensor& m);
// Same, packed for an explicit arm — tests and benches that walk the
// ladder inside one process.  The arm is taken as given (not resolved):
// gemm_s8_nt falls back to the scalar kernel if this host cannot run it.
QuantizedMatrix quantize_per_row(const Tensor& m, Isa arm);
// Dequantizes back to fp32, shape [rows, cols].
Tensor dequantize(const QuantizedMatrix& q);

// Asymmetric per-row quantization of an activation batch.
QuantizedActs quantize_acts_per_row(const Tensor& m);

// C = dequant(Xq @ Wq^T) (+ bias): C[i,j] = xs[i] * ws[j] *
// sum_k Xq[i,k] * Wq[j,k], accumulated in int32.  Xq is [m, k] (per-sample
// scales), Wq is [n, k] (per-output-channel scales), C is resized to
// [m, n]; bias (length n) may be null.  Dispatches on w.packed_for; work
// is blocked over output rows (a small batch against a wide layer no
// longer serializes on one pool thread) and batch rows, sized so the
// weight block a task touches streams through L2 once for its batch rows.
void gemm_s8_nt(const QuantizedMatrix& x, const QuantizedMatrix& w, Tensor& c,
                const Tensor* bias = nullptr);

// Activation variant: C[i,j] = xs[i] * ws[j] * sum_k Xq[i,k] * Wq[j,k]
//                              + xoff[i] * ws[j] * row_sum(Wq[j]) (+ bias)
// — the x offset factors out of the k-sum because the weight row's code
// sum is precomputed, so the zero-point costs one fused multiply-add per
// output, not a wider accumulator.  This is the Linear inference path.
void gemm_s8_nt(const QuantizedActs& x, const QuantizedMatrix& w, Tensor& c,
                const Tensor* bias = nullptr);

// The arm gemm_s8_nt will actually run for this matrix on this host:
// w.packed_for when the host supports it and the layout is materialized,
// otherwise the scalar degrade.  Serving surfaces log this so a deployment
// records which rung of the ladder its fleet is on.
Isa gemm_dispatch_arm(const QuantizedMatrix& w);

}  // namespace ppgnn
