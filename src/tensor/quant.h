// Post-training INT8 quantization primitives.
//
// Per-row symmetric quantization: each row of a 2-D tensor gets one scale
// s = max|row| / 127 and is stored as int8 q = round(x / s), so
// dequantization is x' = q * s with |x - x'| <= s / 2 per element.  Rows
// are the quantization granularity everywhere in this library:
//   - Linear weights are quantized per *output* channel (the weight matrix
//     is stored transposed, [out, in], so "per row" = per output), which
//     keeps the scale constant along the k-summation and lets the int8
//     GEMM accumulate in int32 and dequantize once at the epilogue;
//   - activation batches and FeatureFileStore rows are quantized per
//     sample row, which bounds the error by each row's own dynamic range.
//
// The GEMM kernel below is the serving hot path for Precision::kInt8
// (src/serve): INT8 x INT8 -> INT32 accumulation, parallelized over output
// rows on the same global thread pool as the fp32 kernels, with a fixed
// accumulation order so batched inference stays bit-deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ppgnn {

// A row-major int8 matrix with one fp32 scale per row (symmetric).
struct QuantizedMatrix {
  std::size_t rows = 0, cols = 0;
  std::vector<std::int8_t> data;  // [rows * cols]
  std::vector<float> scales;      // [rows]; row i dequantizes as q * scales[i]
  std::vector<std::int32_t> row_sums;  // [rows]; sum of row codes — lets the
                                       // GEMM fold an activation zero-point
                                       // into the epilogue exactly
  // Pre-widened int16 shadow of `data`, built at quantize time — the
  // scalar fallback reads it so the inner dot is a pair of int16 rows.
  std::vector<std::int16_t> data16;
  // Pair-packed int16 layout for the SIMD kernel: element (kk, j, p) at
  // packed[(kk*rows + j)*2 + p] holds code (2*kk + p) of output row j
  // (zero-padded when cols is odd).  One multiply-add-pairs instruction
  // (pmaddwd) then consumes two k-steps for four outputs at once, which
  // is where INT8's arithmetic-density win over fp32 actually lands on
  // CPUs without VNNI.  Built once at quantize time; weights are
  // immutable and shared across replicas, so the packing amortizes to
  // zero.
  std::vector<std::int16_t> packed;

  const std::int8_t* row(std::size_t i) const { return data.data() + i * cols; }
  std::int8_t* row(std::size_t i) { return data.data() + i * cols; }
  const std::int16_t* row16(std::size_t i) const {
    return data16.data() + i * cols;
  }
  // Storage footprint (payload + scale headers) — the "4x smaller" number.
  // The widened shadow is runtime scratch, deliberately excluded: it never
  // hits a checkpoint, a wire, or a cache budget.
  std::size_t bytes() const {
    return data.size() * sizeof(std::int8_t) + scales.size() * sizeof(float);
  }
};

// Activation batch quantized per row with an asymmetric (offset + scale)
// code: x ~= offset + q * scale, q in [-127, 127].  The offset recenters
// each row's [min, max] — ReLU'd rows (min = 0) get double the resolution
// symmetric coding would give them, which is where most of the W8A8 logit
// error comes from in a multi-layer stack.
struct QuantizedActs {
  std::size_t rows = 0, cols = 0;
  std::vector<std::int8_t> data;  // [rows * cols]
  std::vector<float> scales;      // [rows]
  std::vector<float> offsets;     // [rows]

  const std::int8_t* row(std::size_t i) const { return data.data() + i * cols; }
  std::int8_t* row(std::size_t i) { return data.data() + i * cols; }
};

// Quantizes one row of n floats; writes n int8s and the row scale.
// An all-zero row gets scale 0 and all-zero codes (dequantizes to zero).
void quantize_row_s8(const float* src, std::size_t n, std::int8_t* dst,
                     float* scale);
// Inverse of quantize_row_s8: dst[i] = src[i] * scale.
void dequantize_row_s8(const std::int8_t* src, std::size_t n, float scale,
                       float* dst);

// Per-row symmetric quantization of a 2-D tensor.
QuantizedMatrix quantize_per_row(const Tensor& m);
// Dequantizes back to fp32, shape [rows, cols].
Tensor dequantize(const QuantizedMatrix& q);

// Asymmetric per-row quantization of an activation batch.
QuantizedActs quantize_acts_per_row(const Tensor& m);

// C = dequant(Xq @ Wq^T) (+ bias): C[i,j] = xs[i] * ws[j] *
// sum_k Xq[i,k] * Wq[j,k], accumulated in int32.  Xq is [m, k] (per-sample
// scales), Wq is [n, k] (per-output-channel scales), C is resized to
// [m, n]; bias (length n) may be null.  Parallel over rows of Xq.
void gemm_s8_nt(const QuantizedMatrix& x, const QuantizedMatrix& w, Tensor& c,
                const Tensor* bias = nullptr);

// Activation variant: C[i,j] = xs[i] * ws[j] * sum_k Xq[i,k] * Wq[j,k]
//                              + xoff[i] * ws[j] * row_sum(Wq[j]) (+ bias)
// — the x offset factors out of the k-sum because the weight row's code
// sum is precomputed, so the zero-point costs one fused multiply-add per
// output, not a wider accumulator.  This is the Linear inference path.
void gemm_s8_nt(const QuantizedActs& x, const QuantizedMatrix& w, Tensor& c,
                const Tensor* bias = nullptr);

}  // namespace ppgnn
