// Dense row-major float32 tensor.
//
// This is the only numeric container in the library.  It is deliberately
// simple: contiguous storage, up to 3 dimensions (the HOGA attention path
// uses [batch, tokens, dim]), no views or broadcasting machinery beyond what
// the NN layers need.  All shape errors are hard failures (assert/throw) —
// shapes are static properties of the models, not data-dependent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace ppgnn {

class Rng;

class Tensor {
 public:
  Tensor() = default;
  // Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor full(std::vector<std::size_t> shape, float value);
  // iid uniform in [lo, hi).
  static Tensor uniform(std::vector<std::size_t> shape, Rng& rng,
                        float lo = 0.f, float hi = 1.f);
  // iid normal(mean, stddev).
  static Tensor normal(std::vector<std::size_t> shape, Rng& rng,
                       float mean = 0.f, float stddev = 1.f);
  static Tensor from_vector(std::vector<std::size_t> shape,
                            std::vector<float> values);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t bytes() const { return data_.size() * sizeof(float); }

  // Dimension helpers; valid only when ndim() is large enough.
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t rows() const { return shape_.at(0); }
  std::size_t cols() const { return shape_.at(1); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // 2-D accessors.
  float& at(std::size_t i, std::size_t j) { return data_[i * shape_[1] + j]; }
  float at(std::size_t i, std::size_t j) const {
    return data_[i * shape_[1] + j];
  }
  // 3-D accessors.
  float& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  float* row(std::size_t i) { return data_.data() + i * row_size(); }
  const float* row(std::size_t i) const { return data_.data() + i * row_size(); }
  // Number of elements per leading-dimension slice.
  std::size_t row_size() const {
    std::size_t s = 1;
    for (std::size_t d = 1; d < shape_.size(); ++d) s *= shape_[d];
    return s;
  }

  // Reinterprets the storage with a new shape of identical element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float value);
  void zero() { fill(0.f); }

  // Throws std::invalid_argument unless shapes match exactly.
  void check_same_shape(const Tensor& other, const char* what) const;

  std::string shape_str() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace ppgnn
