// GAMLP — Graph Attention Multi-Layer Perceptron (Zhang et al., KDD 2022),
// in its JK-attention form.
//
// A PP-GNN the paper lists alongside SIGN/HOGA (Section 1).  Each node
// attends over its own R+1 hop features with a learned per-hop reference
// vector, then feeds the attention-combined feature to an MLP:
//
//   s_{i,r} = x_{i,r} . w_r              (per-hop gate score)
//   a_i     = softmax_r(s_i)             (hop attention, per node)
//   h_i     = sum_r a_{i,r} * x_{i,r}
//   y_i     = MLP(h_i)
//
// Expressivity sits between SIGN (fixed per-hop branches) and HOGA (full
// token attention): GAMLP learns *which hops matter per node* at the cost
// of R+1 extra gate vectors, while its training step remains dense and
// neighbor-free — the defining PP-GNN property the paper's loaders exploit.
#pragma once

#include <memory>
#include <vector>

#include "core/pp_model.h"
#include "nn/mlp.h"

namespace ppgnn::core {

struct GamlpConfig {
  std::size_t feat_dim = 0;
  std::size_t hops = 3;       // R; the model consumes R+1 hop matrices
  std::size_t hidden = 256;
  std::size_t mlp_layers = 2;  // layers of the output MLP (>= 1)
  std::size_t classes = 0;
  float dropout = 0.3f;
};

class Gamlp : public PpModel {
 public:
  Gamlp(const GamlpConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& batch, bool train) override;
  void backward(const Tensor& grad_logits) override;
  void collect_params(std::vector<nn::ParamSlot>& out) override;
  void collect_linears(std::vector<nn::Linear*>& out) override {
    mlp_->collect_linears(out);
  }
  std::string name() const override { return "GAMLP"; }
  std::size_t hops() const override { return cfg_.hops; }

  // Mean attention weight per hop over the last forward batch — used by
  // tests and the operator-ablation bench to inspect which hops the model
  // relies on.
  std::vector<float> mean_hop_attention() const;

 private:
  GamlpConfig cfg_;
  Tensor gates_;       // [R+1, F] reference vectors, one per hop
  Tensor grad_gates_;  // same shape
  std::unique_ptr<nn::Mlp> mlp_;

  // forward caches (training mode only)
  std::vector<Tensor> cached_hops_;  // R+1 tensors of [b, F]
  Tensor cached_attn_;               // [b, R+1]
};

}  // namespace ppgnn::core
