#include "core/run_config.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/gamlp.h"
#include "core/hoga.h"
#include "core/sgc.h"
#include "core/sign.h"
#include "core/ssgc.h"

namespace ppgnn::core {

// ----------------------------------------------------------- JsonValue ----

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}
double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}
const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}
const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return array_;
}
const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

bool JsonValue::has(const std::string& key) const {
  return as_object().count(key) > 0;
}
const JsonValue& JsonValue::get(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}
double JsonValue::get_or(const std::string& key, double fallback) const {
  return has(key) ? get(key).as_number() : fallback;
}
std::string JsonValue::get_or(const std::string& key,
                              const std::string& fallback) const {
  return has(key) ? get(key).as_string() : fallback;
}
bool JsonValue::get_or(const std::string& key, bool fallback) const {
  return has(key) ? get(key).as_bool() : fallback;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}
JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::make_array(std::vector<JsonValue> a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(a);
  return v;
}
JsonValue JsonValue::make_object(std::map<std::string, JsonValue> o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(o);
  return v;
}

// -------------------------------------------------------------- parser ----

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("json parse error: unexpected end of input");
    }
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't': parse_literal("true"); return JsonValue::make_bool(true);
      case 'f': parse_literal("false"); return JsonValue::make_bool(false);
      case 'n': parse_literal("null"); return JsonValue::make_null();
      default: return JsonValue::make_number(parse_number());
    }
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // \uXXXX: decode BMP codepoints to UTF-8 (no surrogate pairs —
            // config files have no business containing them).
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    std::size_t used = 0;
    double d = 0;
    try {
      d = std::stod(tok, &used);
    } catch (const std::exception&) {
      fail("bad number '" + tok + "'");
    }
    if (used != tok.size()) fail("bad number '" + tok + "'");
    return d;
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return JsonValue::make_array(std::move(items));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(fields));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (!fields.emplace(std::move(key), parse_value()).second) {
        fail("duplicate key");
      }
      skip_ws();
      const char c = take();
      if (c == '}') return JsonValue::make_object(std::move(fields));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }
};

std::size_t to_size(double d, const char* what) {
  if (d < 0 || d != std::floor(d)) {
    throw std::runtime_error(std::string("RunConfig: ") + what +
                             " must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

// ------------------------------------------------------------ RunConfig ----

graph::DatasetName RunConfig::dataset_name() const {
  if (dataset == "products") return graph::DatasetName::kProductsSim;
  if (dataset == "pokec") return graph::DatasetName::kPokecSim;
  if (dataset == "wiki") return graph::DatasetName::kWikiSim;
  if (dataset == "papers100m") return graph::DatasetName::kPapers100MSim;
  if (dataset == "igb-medium") return graph::DatasetName::kIgbMediumSim;
  if (dataset == "igb-large") return graph::DatasetName::kIgbLargeSim;
  throw std::runtime_error("RunConfig: unknown dataset '" + dataset + "'");
}

OperatorKind RunConfig::operator_kind() const {
  if (op == "sym") return OperatorKind::kSymNorm;
  if (op == "rw") return OperatorKind::kRowNorm;
  if (op == "ppr") return OperatorKind::kPpr;
  if (op == "heat") return OperatorKind::kHeat;
  throw std::runtime_error("RunConfig: unknown operator '" + op + "'");
}

LoadingMode RunConfig::loading_mode() const {
  if (loading == "baseline") return LoadingMode::kBaselinePerRow;
  if (loading == "fused") return LoadingMode::kFusedAssembly;
  if (loading == "prefetch") return LoadingMode::kPrefetch;
  if (loading == "chunk") return LoadingMode::kChunkPrefetch;
  if (loading == "storage") return LoadingMode::kStorageChunk;
  throw std::runtime_error("RunConfig: unknown loading mode '" + loading + "'");
}

PpTrainConfig RunConfig::train_config() const {
  PpTrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = batch_size;
  tc.lr = lr;
  tc.chunk_size = chunk_size;
  tc.seed = seed;
  tc.mode = loading_mode();
  tc.eval_every = 2;
  tc.checkpoint_path = checkpoint;
  tc.checkpoint_every = checkpoint_every;
  return tc;
}

PrecomputeConfig RunConfig::precompute_config() const {
  PrecomputeConfig pc;
  pc.op = operator_kind();
  pc.hops = hops;
  return pc;
}

std::unique_ptr<PpModel> RunConfig::make_model(const graph::Dataset& ds,
                                               Rng& rng) const {
  if (method == "SGC") {
    return std::make_unique<Sgc>(ds.feature_dim(), hops, ds.num_classes, rng);
  }
  if (method == "SSGC") {
    return std::make_unique<Ssgc>(ds.feature_dim(), hops, ds.num_classes, rng);
  }
  if (method == "SIGN") {
    SignConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = hops;
    cfg.hidden = hidden;
    cfg.classes = ds.num_classes;
    cfg.dropout = dropout;
    return std::make_unique<Sign>(cfg, rng);
  }
  if (method == "HOGA") {
    HogaConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = hops;
    cfg.hidden = hidden;
    cfg.heads = 2;
    cfg.classes = ds.num_classes;
    cfg.dropout = dropout;
    return std::make_unique<Hoga>(cfg, rng);
  }
  if (method == "GAMLP") {
    GamlpConfig cfg;
    cfg.feat_dim = ds.feature_dim();
    cfg.hops = hops;
    cfg.hidden = hidden;
    cfg.classes = ds.num_classes;
    cfg.dropout = dropout;
    return std::make_unique<Gamlp>(cfg, rng);
  }
  throw std::runtime_error("RunConfig: unknown method '" + method + "'");
}

std::string RunConfig::summary() const {
  std::ostringstream os;
  os << method << " on " << dataset << " (scale " << scale << "): hops="
     << hops << " hidden=" << hidden << " op=" << op << " epochs=" << epochs
     << " batch=" << batch_size << " lr=" << lr << " loading=" << loading;
  if (loading == "chunk" || loading == "storage") {
    os << " chunk_size=" << chunk_size;
  }
  return os.str();
}

RunConfig run_config_from_json(const JsonValue& root) {
  static const std::map<std::string, int> known{
      {"dataset", 0},  {"scale", 0},   {"method", 0},     {"hops", 0},
      {"hidden", 0},   {"op", 0},      {"epochs", 0},     {"batch_size", 0},
      {"lr", 0},       {"dropout", 0}, {"loading", 0},    {"chunk_size", 0},
      {"seed", 0},     {"checkpoint", 0}, {"checkpoint_every", 0}};
  for (const auto& [key, value] : root.as_object()) {
    if (!known.count(key)) {
      throw std::runtime_error("RunConfig: unknown key '" + key + "'");
    }
  }
  RunConfig cfg;
  cfg.dataset = root.get_or("dataset", cfg.dataset);
  cfg.scale = root.get_or("scale", cfg.scale);
  cfg.method = root.get_or("method", cfg.method);
  cfg.hops = to_size(root.get_or("hops", static_cast<double>(cfg.hops)), "hops");
  cfg.hidden =
      to_size(root.get_or("hidden", static_cast<double>(cfg.hidden)), "hidden");
  cfg.op = root.get_or("op", cfg.op);
  cfg.epochs =
      to_size(root.get_or("epochs", static_cast<double>(cfg.epochs)), "epochs");
  cfg.batch_size = to_size(
      root.get_or("batch_size", static_cast<double>(cfg.batch_size)),
      "batch_size");
  cfg.lr = static_cast<float>(root.get_or("lr", static_cast<double>(cfg.lr)));
  cfg.dropout = static_cast<float>(
      root.get_or("dropout", static_cast<double>(cfg.dropout)));
  cfg.loading = root.get_or("loading", cfg.loading);
  cfg.chunk_size = to_size(
      root.get_or("chunk_size", static_cast<double>(cfg.chunk_size)),
      "chunk_size");
  cfg.seed = static_cast<std::uint64_t>(
      to_size(root.get_or("seed", static_cast<double>(cfg.seed)), "seed"));
  cfg.checkpoint = root.get_or("checkpoint", cfg.checkpoint);
  cfg.checkpoint_every = to_size(
      root.get_or("checkpoint_every",
                  static_cast<double>(cfg.checkpoint_every)),
      "checkpoint_every");

  if (cfg.scale <= 0 || cfg.scale > 1.0) {
    throw std::runtime_error("RunConfig: scale must be in (0, 1]");
  }
  if (cfg.hops == 0) throw std::runtime_error("RunConfig: hops must be >= 1");
  if (cfg.epochs == 0 || cfg.batch_size == 0) {
    throw std::runtime_error("RunConfig: epochs and batch_size must be >= 1");
  }
  if (cfg.lr <= 0.f) throw std::runtime_error("RunConfig: lr must be > 0");
  if (cfg.dropout < 0.f || cfg.dropout >= 1.f) {
    throw std::runtime_error("RunConfig: dropout must be in [0, 1)");
  }
  // Validate the enum-like strings eagerly so errors surface at load time.
  (void)cfg.dataset_name();
  (void)cfg.operator_kind();
  (void)cfg.loading_mode();
  if (cfg.method != "SGC" && cfg.method != "SSGC" && cfg.method != "SIGN" &&
      cfg.method != "HOGA" && cfg.method != "GAMLP") {
    throw std::runtime_error("RunConfig: unknown method '" + cfg.method + "'");
  }
  return cfg;
}

RunConfig run_config_from_string(const std::string& json_text) {
  return run_config_from_json(parse_json(json_text));
}

RunConfig run_config_from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("RunConfig: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return run_config_from_string(buf.str());
}

}  // namespace ppgnn::core
