// HOGA (Deng et al., 2024): hop-wise graph attention.
//
// The R+1 hop features of a node are treated as R+1 tokens: a shared
// projection F -> H, layer norm, one multi-head self-attention layer with a
// residual connection, mean pooling over tokens, and an MLP head
// (Section 2.5).  This is the most expressive (and most compute-heavy) of
// the three PP-GNN models the paper evaluates.
#pragma once

#include <memory>

#include "core/pp_model.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace ppgnn::core {

struct HogaConfig {
  std::size_t feat_dim = 0;
  std::size_t hops = 3;
  std::size_t hidden = 256;
  std::size_t heads = 1;   // paper: 256/1 or 64/4 on medium graphs
  std::size_t classes = 0;
  float dropout = 0.5f;
};

class Hoga : public PpModel {
 public:
  Hoga(const HogaConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& batch, bool train) override;
  void backward(const Tensor& grad_logits) override;
  void collect_params(std::vector<nn::ParamSlot>& out) override;
  void collect_linears(std::vector<nn::Linear*>& out) override {
    proj_.collect_linears(out);
    attn_.collect_linears(out);
    head_.collect_linears(out);
  }
  std::string name() const override { return "HOGA"; }
  std::size_t hops() const override { return cfg_.hops; }

 private:
  HogaConfig cfg_;
  nn::Linear proj_;                     // shared across tokens
  nn::LayerNorm norm_;
  nn::MultiHeadSelfAttention attn_;
  nn::Dropout attn_drop_;
  nn::Mlp head_;                        // hidden -> hidden -> classes
  std::size_t batch_rows_ = 0;
};

}  // namespace ppgnn::core
