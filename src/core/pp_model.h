// PP-GNN model interface.
//
// All three models consume the same expanded mini-batch layout produced by
// Preprocessed::expanded_rows / the data loaders: each row is the hop-major
// concatenation [hop0 | hop1 | ... | hopR] of one node's propagated
// features.  Models slice the hops they need — which is why one loader
// implementation serves SGC, SIGN and HOGA alike (and why the paper's
// loading optimizations are model-agnostic).
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace ppgnn::core {

class PpModel {
 public:
  virtual ~PpModel() = default;

  // batch: [b, (R+1)*F] -> logits [b, classes].
  virtual Tensor forward(const Tensor& batch, bool train) = 0;
  // Gradients flow only into parameters; the input is data.
  virtual void backward(const Tensor& grad_logits) = 0;
  virtual void collect_params(std::vector<nn::ParamSlot>& out) = 0;
  // Appends every nn::Linear in a fixed architecture order — the walk
  // post-training INT8 quantization uses (quantize_int8 /
  // share_quantized_weights below).  Models whose dense layers are all
  // nn::Linear/nn::Mlp get this for free by forwarding; the default
  // appends nothing, which quantize_int8 reports as "unsupported".
  virtual void collect_linears(std::vector<nn::Linear*>& out) { (void)out; }
  virtual std::string name() const = 0;
  virtual std::size_t hops() const = 0;

  std::size_t num_params() {
    std::vector<nn::ParamSlot> slots;
    collect_params(slots);
    std::size_t n = 0;
    for (const auto& s : slots) n += s.value->size();
    return n;
  }

  // Batched-inference entry point (the serving path, src/serve/).  Eval-mode
  // forward: dropout off, no gradient caching required.  Row-independent by
  // construction — every kernel on the inference path processes output rows
  // independently with a fixed accumulation order, so infer() over a batch
  // is bit-identical to concatenating per-row infer() calls (test_serve
  // relies on this to prove micro-batching never changes answers).  Not
  // required to be concurrency-safe: callers serialize calls per model
  // instance (the MicroBatcher's dispatcher does) and intra-batch
  // parallelism comes from the kernels' global thread pool.
  virtual Tensor infer(const Tensor& batch) { return forward(batch, false); }
};

// Post-training INT8 quantization of a deployed model (core/quantize.cpp).
// Quantizes every collected Linear per output channel; eval-mode infer()
// then runs the int8 GEMM path while training forwards keep using fp32.
// Returns the number of layers quantized; throws std::invalid_argument if
// the model exposes no quantizable layers.
std::size_t quantize_int8(PpModel& model);

// Points every Linear in `dst` at `src`'s immutable quantized blocks (both
// models must be the same architecture) — a serving fleet quantizes one
// model copy and shares the weights across replicas instead of holding N
// identical int8 copies.  `src` must already be quantized.
void share_quantized_weights(PpModel& dst, PpModel& src);

// Copies hop `h` (feature width f) out of an expanded batch.
inline Tensor slice_hop(const Tensor& batch, std::size_t h, std::size_t f) {
  Tensor out({batch.rows(), f});
  for (std::size_t i = 0; i < batch.rows(); ++i) {
    std::memcpy(out.row(i), batch.row(i) + h * f, f * sizeof(float));
  }
  return out;
}

}  // namespace ppgnn::core
