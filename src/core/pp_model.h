// PP-GNN model interface.
//
// All three models consume the same expanded mini-batch layout produced by
// Preprocessed::expanded_rows / the data loaders: each row is the hop-major
// concatenation [hop0 | hop1 | ... | hopR] of one node's propagated
// features.  Models slice the hops they need — which is why one loader
// implementation serves SGC, SIGN and HOGA alike (and why the paper's
// loading optimizations are model-agnostic).
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace ppgnn::core {

class PpModel {
 public:
  virtual ~PpModel() = default;

  // batch: [b, (R+1)*F] -> logits [b, classes].
  virtual Tensor forward(const Tensor& batch, bool train) = 0;
  // Gradients flow only into parameters; the input is data.
  virtual void backward(const Tensor& grad_logits) = 0;
  virtual void collect_params(std::vector<nn::ParamSlot>& out) = 0;
  virtual std::string name() const = 0;
  virtual std::size_t hops() const = 0;

  std::size_t num_params() {
    std::vector<nn::ParamSlot> slots;
    collect_params(slots);
    std::size_t n = 0;
    for (const auto& s : slots) n += s.value->size();
    return n;
  }

  // Batched-inference entry point (the serving path, src/serve/).  Eval-mode
  // forward: dropout off, no gradient caching required.  Row-independent by
  // construction — every kernel on the inference path processes output rows
  // independently with a fixed accumulation order, so infer() over a batch
  // is bit-identical to concatenating per-row infer() calls (test_serve
  // relies on this to prove micro-batching never changes answers).  Not
  // required to be concurrency-safe: callers serialize calls per model
  // instance (the MicroBatcher's dispatcher does) and intra-batch
  // parallelism comes from the kernels' global thread pool.
  virtual Tensor infer(const Tensor& batch) { return forward(batch, false); }
};

// Copies hop `h` (feature width f) out of an expanded batch.
inline Tensor slice_hop(const Tensor& batch, std::size_t h, std::size_t f) {
  Tensor out({batch.rows(), f});
  for (std::size_t i = 0; i < batch.rows(); ++i) {
    std::memcpy(out.row(i), batch.row(i) + h * f, f * sizeof(float));
  }
  return out;
}

}  // namespace ppgnn::core
