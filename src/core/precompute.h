// PP-GNN preprocessing: multi-hop feature propagation (Eq. 2 of the paper).
//
//   S = {X, BX, B^2 X, ..., B^R X}
//
// with B one of the graph filters: the symmetrically normalized adjacency
// (SGC/SIGN/HOGA default), random-walk normalization, or the PPR / heat
// diffusion recurrences of Gasteiger et al.  This is the one-time cost the
// paper amortizes over training runs (Table 2 / Appendix G).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "tensor/tensor.h"

namespace ppgnn::core {

enum class OperatorKind {
  kSymNorm,   // D~^-1/2 (A+I) D~^-1/2
  kRowNorm,   // D~^-1 (A+I)
  kPpr,       // X_r = (1-a) B X_{r-1} + a X_0   (personalized PageRank)
  kHeat,      // X_r = (t/r) B X_{r-1}           (heat-kernel Taylor terms)
};
const char* to_string(OperatorKind k);

struct PrecomputeConfig {
  OperatorKind op = OperatorKind::kSymNorm;
  std::size_t hops = 3;        // R
  double ppr_alpha = 0.15;     // teleport probability for kPpr
  double heat_t = 3.0;         // diffusion time for kHeat
  bool add_self_loops = true;
};

struct Preprocessed {
  // hop_features[r] = B^r-propagated features, [n, F]; hop_features[0] = X.
  std::vector<Tensor> hop_features;
  double preprocess_seconds = 0;

  std::size_t num_hops() const { return hop_features.size() - 1; }
  std::size_t num_nodes() const { return hop_features.front().rows(); }
  std::size_t feat_dim() const { return hop_features.front().cols(); }
  // Bytes per expanded training row: (R+1) * F * 4 — the input expansion
  // factor of Section 3.4 (K = 1 operator here).
  std::size_t row_bytes() const {
    return hop_features.size() * feat_dim() * sizeof(float);
  }
  std::size_t total_bytes() const { return num_nodes() * row_bytes(); }

  // Gathers rows into the expanded layout [rows.size(), (R+1)*F], hop-major
  // within each row (hop 0 first).  This is the training-set materialization
  // step; for partially labeled graphs it shrinks the input to the labeled
  // subset (Section 6.4).
  Tensor expanded_rows(const std::vector<std::int64_t>& rows) const;
};

// Runs the propagation.  Wall time is recorded in the result.
Preprocessed precompute(const graph::CsrGraph& g, const Tensor& x,
                        const PrecomputeConfig& cfg);

// Multi-operator preprocessing — Eq. (2) with K > 1 kernels (e.g. SIGN with
// normalized adjacency + PPR + heat simultaneously).  The hop features of
// all operators are concatenated into one matrix list:
//   [X, B1 X, ..., B1^R X, B2 X, ..., BK^R X]
// (the shared raw X appears once, first).  Downstream models are agnostic:
// SIGN grows one branch and HOGA one token per matrix.  Input expansion
// becomes K(R+1) — exactly the Section 3.4 blow-up.
Preprocessed precompute_multi(const graph::CsrGraph& g, const Tensor& x,
                              const std::vector<PrecomputeConfig>& configs);

}  // namespace ppgnn::core
