// SGC (Wu et al., 2019): the simplest PP-GNN.
//
// Training is a single linear layer on the final-hop features — l(.) is the
// hop selector delta_{i,R} and o(.) a linear transform (Section 2.5).
#pragma once

#include <memory>

#include "core/pp_model.h"
#include "nn/linear.h"

namespace ppgnn::core {

class Sgc : public PpModel {
 public:
  Sgc(std::size_t feat_dim, std::size_t hops, std::size_t classes, Rng& rng);

  Tensor forward(const Tensor& batch, bool train) override;
  void backward(const Tensor& grad_logits) override;
  void collect_params(std::vector<nn::ParamSlot>& out) override;
  void collect_linears(std::vector<nn::Linear*>& out) override {
    linear_.collect_linears(out);
  }
  std::string name() const override { return "SGC"; }
  std::size_t hops() const override { return hops_; }

 private:
  std::size_t feat_dim_, hops_;
  nn::Linear linear_;
};

}  // namespace ppgnn::core
