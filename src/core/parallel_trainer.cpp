#include "core/parallel_trainer.h"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "loader/shuffler.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ppgnn::core {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

const char* to_string(EpochOrderPolicy p) {
  switch (p) {
    case EpochOrderPolicy::kGlobalShuffle: return "global-shuffle (SGD-RR)";
    case EpochOrderPolicy::kLocalityAware: return "locality-aware";
  }
  return "?";
}

DataParallelResult train_pp_data_parallel(const ModelFactory& factory,
                                          const Preprocessed& pre,
                                          const graph::Dataset& ds,
                                          const DataParallelConfig& cfg) {
  if (cfg.num_workers < 1) {
    throw std::invalid_argument("train_pp_data_parallel: num_workers < 1");
  }
  if (cfg.epochs == 0 || cfg.batch_size == 0) {
    throw std::invalid_argument("train_pp_data_parallel: zero epochs/batch");
  }
  const auto& train_idx = ds.split.train;
  if (train_idx.empty()) {
    throw std::invalid_argument("train_pp_data_parallel: empty train split");
  }
  const auto W = static_cast<std::size_t>(cfg.num_workers);
  const std::size_t n = train_idx.size();

  // Materialized expanded training rows (position i <-> train_idx[i]) and
  // the ownership partition: row i lives on worker i / ceil(n/W) — the
  // contiguous layout a per-GPU preload would use.
  const Tensor train_x = pre.expanded_rows(train_idx);
  std::vector<std::int32_t> train_y(n);
  for (std::size_t i = 0; i < n; ++i) {
    train_y[i] = ds.labels[static_cast<std::size_t>(train_idx[i])];
  }
  const std::size_t part = (n + W - 1) / W;
  const auto owner_of = [&](std::size_t row) { return row / part; };

  // Identically-initialized replicas with their own Adam state.
  std::vector<std::unique_ptr<PpModel>> replicas;
  std::vector<std::vector<nn::ParamSlot>> slots(W);
  std::vector<std::unique_ptr<nn::Adam>> opts;
  for (std::size_t w = 0; w < W; ++w) {
    Rng replica_rng(cfg.seed);  // same seed -> identical weights
    replicas.push_back(factory(replica_rng));
    replicas[w]->collect_params(slots[w]);
    opts.push_back(std::make_unique<nn::Adam>(slots[w], cfg.lr, 0.9f, 0.999f,
                                              1e-8f, cfg.weight_decay));
  }

  Rng order_rng(cfg.seed + 1);
  const auto rr = loader::make_shuffler(1);

  DataParallelResult result;
  result.rows_per_epoch = n;
  std::size_t remote_rows = 0, total_rows = 0;

  for (std::size_t epoch = 1; epoch <= cfg.epochs; ++epoch) {
    const auto t_epoch = Clock::now();

    // Epoch order: one global permutation, or per-partition permutations
    // interleaved so each global batch takes an equal slice per worker.
    std::vector<std::int64_t> order;
    if (cfg.policy == EpochOrderPolicy::kGlobalShuffle) {
      order = rr->epoch_order(n, order_rng);
    } else {
      order.resize(n);
      std::size_t cursor = 0;
      std::vector<std::vector<std::int64_t>> local(W);
      for (std::size_t w = 0; w < W; ++w) {
        const std::size_t lo = w * part;
        const std::size_t hi = std::min(lo + part, n);
        if (lo >= hi) continue;
        local[w].resize(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          local[w][i - lo] = static_cast<std::int64_t>(i);
        }
        for (std::size_t i = hi - lo; i > 1; --i) {
          std::swap(local[w][i - 1], local[w][order_rng.uniform_int(i)]);
        }
      }
      // Lay rows out so each batch's per-worker slice (the consumption
      // pattern below: worker w takes [lo + w*shard, lo + (w+1)*shard))
      // draws from that worker's own partition.  Workers that run dry are
      // backfilled from the fullest remaining queue (only possible with
      // very skewed partitions).
      std::vector<std::size_t> pos(W, 0);
      while (cursor < n) {
        const std::size_t b = std::min(cfg.batch_size, n - cursor);
        const std::size_t shard = (b + W - 1) / W;
        for (std::size_t w = 0; w < W && cursor < n; ++w) {
          const std::size_t want =
              std::min(shard, b > w * shard ? b - w * shard : 0);
          for (std::size_t k = 0; k < want && cursor < n; ++k) {
            std::size_t src = w;
            if (pos[src] >= local[src].size()) {
              std::size_t best = 0, best_left = 0;
              for (std::size_t u = 0; u < W; ++u) {
                const std::size_t left = local[u].size() - pos[u];
                if (left > best_left) {
                  best_left = left;
                  best = u;
                }
              }
              src = best;
            }
            order[cursor++] = local[src][pos[src]++];
          }
        }
      }
    }

    EpochRecord rec;
    rec.epoch = epoch;
    double loss_sum = 0;
    std::size_t batches = 0;

    for (std::size_t lo = 0; lo < n; lo += cfg.batch_size) {
      const std::size_t hi = std::min(lo + cfg.batch_size, n);
      const std::size_t b = hi - lo;
      // Shard the global batch: worker w takes an equal contiguous slice.
      const std::size_t shard = (b + W - 1) / W;

      std::vector<double> shard_loss(W, 0);
      std::vector<std::size_t> shard_rows(W, 0);
      const auto t_fwd = Clock::now();
      const auto worker_fn = [&](std::size_t w) {
        const std::size_t s_lo = lo + w * shard;
        const std::size_t s_hi = std::min(s_lo + shard, hi);
        if (s_lo >= s_hi) return;
        std::vector<std::int64_t> rows(order.begin() + s_lo,
                                       order.begin() + s_hi);
        Tensor x = gather_rows(train_x, rows);
        std::vector<std::int32_t> y(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i) {
          y[i] = train_y[static_cast<std::size_t>(rows[i])];
        }
        opts[w]->zero_grad();
        Tensor logits = replicas[w]->forward(x, /*train=*/true);
        Tensor grad(logits.shape());
        shard_loss[w] = cross_entropy(logits, y, grad);
        shard_rows[w] = rows.size();
        replicas[w]->backward(grad);
      };
      std::vector<std::thread> threads;
      threads.reserve(W > 0 ? W - 1 : 0);
      for (std::size_t w = 1; w < W; ++w) threads.emplace_back(worker_fn, w);
      worker_fn(0);
      for (auto& t : threads) t.join();
      rec.forward_seconds += seconds_since(t_fwd);

      // Remote-fetch accounting: a row is remote for the worker that
      // consumed it if another worker's partition owns it.
      for (std::size_t w = 0; w < W; ++w) {
        const std::size_t s_lo = lo + w * shard;
        const std::size_t s_hi = std::min(s_lo + shard, hi);
        for (std::size_t i = s_lo; i < s_hi; ++i) {
          ++total_rows;
          if (owner_of(static_cast<std::size_t>(order[i])) != w) {
            ++remote_rows;
          }
        }
      }

      // All-reduce: weighted-average the gradients so the result equals
      // the gradient of the whole batch, then step every replica.
      const auto t_opt = Clock::now();
      for (std::size_t p = 0; p < slots[0].size(); ++p) {
        Tensor& acc = *slots[0][p].grad;
        scale_inplace(acc, static_cast<float>(shard_rows[0]) /
                               static_cast<float>(b));
        for (std::size_t w = 1; w < W; ++w) {
          axpy(static_cast<float>(shard_rows[w]) / static_cast<float>(b),
               *slots[w][p].grad, acc);
        }
        for (std::size_t w = 1; w < W; ++w) {
          *slots[w][p].grad = acc;  // broadcast the reduced gradient
        }
      }
      for (std::size_t w = 0; w < W; ++w) opts[w]->step();
      rec.optimizer_seconds += seconds_since(t_opt);

      double batch_loss = 0;
      for (std::size_t w = 0; w < W; ++w) {
        batch_loss += shard_loss[w] * static_cast<double>(shard_rows[w]) /
                      static_cast<double>(b);
      }
      loss_sum += batch_loss;
      ++batches;
    }

    rec.epoch_seconds = seconds_since(t_epoch);
    rec.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0;
    if (epoch % cfg.eval_every == 0 || epoch == cfg.epochs) {
      rec.val_acc = evaluate_pp(*replicas[0], pre, ds, ds.split.valid);
      rec.test_acc = evaluate_pp(*replicas[0], pre, ds, ds.split.test);
    } else if (!result.history.epochs.empty()) {
      rec.val_acc = result.history.epochs.back().val_acc;
      rec.test_acc = result.history.epochs.back().test_acc;
    }
    result.history.epochs.push_back(rec);
  }

  result.remote_row_fraction =
      total_rows ? static_cast<double>(remote_rows) /
                       static_cast<double>(total_rows)
                 : 0.0;
  return result;
}

}  // namespace ppgnn::core
