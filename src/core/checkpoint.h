// Full training-state checkpointing: parameters + optimizer state + the
// epoch cursor, in one file.
//
// The paper's cost story leans on amortization — one preprocessing pass
// feeding "tens or even hundreds" of training runs (Section 3.5).  Long
// runs in that regime need restartability; nn::save_parameters alone loses
// the Adam moments and the position in the epoch schedule, which changes
// the optimization trajectory on resume.  This module captures all three,
// and core::train_pp consumes it through PpTrainConfig::checkpoint_path.
//
// Binary layout (little-endian): magic 'PPCK', version, next_epoch,
// adam step count, parameter-tensor block, optimizer-state block (both in
// collect_params / state_tensors order, each tensor as rank, dims, data).
#pragma once

#include <cstdint>
#include <string>

#include "core/pp_model.h"
#include "nn/optimizer.h"

namespace ppgnn::core {

struct CheckpointMeta {
  std::size_t next_epoch = 1;  // first epoch that has NOT run yet
  long step_count = 0;         // optimizer steps taken
};

// Writes model + optimizer state; overwrites atomically (write to
// path.tmp, then rename) so a crash mid-save never corrupts the previous
// checkpoint.  Throws std::system_error / std::runtime_error on failure.
void save_checkpoint(const std::string& path, PpModel& model,
                     nn::Optimizer& opt, const CheckpointMeta& meta);

// Restores model + optimizer state; shapes must match exactly.
CheckpointMeta load_checkpoint(const std::string& path, PpModel& model,
                               nn::Optimizer& opt);

bool checkpoint_exists(const std::string& path);

}  // namespace ppgnn::core
