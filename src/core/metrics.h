// Training history and convergence bookkeeping (header-only, no deps).
//
// The paper measures convergence as the first epoch reaching 99% of the
// peak validation accuracy (Figure 3); TrainHistory implements exactly that
// so every trainer (PP and MP) reports comparable numbers.
#pragma once

#include <cstddef>
#include <vector>

namespace ppgnn {

struct EpochRecord {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double val_acc = 0.0;
  double test_acc = 0.0;
  double epoch_seconds = 0.0;      // wall-clock training time (excl. eval)
  double data_loading_seconds = 0.0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  double optimizer_seconds = 0.0;
};

struct TrainHistory {
  std::vector<EpochRecord> epochs;

  double peak_val_acc() const {
    double best = 0.0;
    for (const auto& e : epochs) best = std::max(best, e.val_acc);
    return best;
  }

  // Test accuracy at the epoch with the best validation accuracy (the
  // model-selection rule used throughout the paper).
  double test_at_best_val() const {
    double best_val = -1.0, test = 0.0;
    for (const auto& e : epochs) {
      if (e.val_acc > best_val) {
        best_val = e.val_acc;
        test = e.test_acc;
      }
    }
    return test;
  }

  // First epoch (1-based) reaching `frac` of the peak validation accuracy.
  std::size_t convergence_epoch(double frac = 0.99) const {
    const double target = frac * peak_val_acc();
    for (const auto& e : epochs) {
      if (e.val_acc >= target) return e.epoch;
    }
    return epochs.empty() ? 0 : epochs.back().epoch;
  }

  double mean_epoch_seconds() const {
    if (epochs.empty()) return 0.0;
    double s = 0.0;
    for (const auto& e : epochs) s += e.epoch_seconds;
    return s / static_cast<double>(epochs.size());
  }

  double total_train_seconds() const {
    double s = 0.0;
    for (const auto& e : epochs) s += e.epoch_seconds;
    return s;
  }
};

}  // namespace ppgnn
