// Automated training configuration (Section 5).
//
// Given the hardware, the PP-GNN model shape and the dataset's paper-scale
// statistics, the configurator (1) estimates the model's peak GPU working
// set via a probe (the paper runs one storage-backed training step and
// measures; we evaluate the same quantity analytically from the shapes),
// (2) decides data placement and training method through the placement
// policy, and (3) predicts the resulting epoch time with the pipeline
// simulator so callers can see what the decision buys.
#pragma once

#include <string>

#include "graph/dataset.h"
#include "loader/placement.h"
#include "sim/cost_model.h"
#include "sim/pipeline.h"

namespace ppgnn::core {

struct TrainingPlan {
  loader::PlacementDecision placement;
  sim::PpPipelineConfig pipeline;   // fully configured pipeline
  sim::EpochSim predicted;          // simulated epoch under the plan
  std::size_t input_bytes = 0;      // expanded training input
  std::size_t model_peak_bytes = 0; // probe estimate
  std::string summary() const;
};

class AutoConfigurator {
 public:
  AutoConfigurator(const sim::MachineSpec& machine, int num_gpus,
                   std::size_t batch_size = 8000,
                   std::size_t chunk_size = 8000)
      : machine_(machine),
        num_gpus_(num_gpus),
        batch_size_(batch_size),
        chunk_size_(chunk_size) {}

  // Peak GPU bytes for one training step: parameters + optimizer state +
  // activations of one double-buffered batch.  Mirrors the PaGraph-style
  // probe the paper describes.
  std::size_t probe_model_peak_bytes(const sim::PpModelShape& model) const;

  TrainingPlan plan(const sim::PpModelShape& model,
                    const graph::PaperScale& dataset,
                    bool force_sgd_rr = false) const;

 private:
  sim::MachineSpec machine_;
  int num_gpus_;
  std::size_t batch_size_;
  std::size_t chunk_size_;
};

}  // namespace ppgnn::core
