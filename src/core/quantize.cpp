#include <stdexcept>

#include "core/pp_model.h"
#include "nn/linear.h"

namespace ppgnn::core {

std::size_t quantize_int8(PpModel& model) {
  std::vector<nn::Linear*> linears;
  model.collect_linears(linears);
  if (linears.empty()) {
    throw std::invalid_argument("quantize_int8: " + model.name() +
                                " exposes no quantizable Linear layers");
  }
  for (auto* l : linears) l->quantize_int8();
  return linears.size();
}

void share_quantized_weights(PpModel& dst, PpModel& src) {
  std::vector<nn::Linear*> from, to;
  src.collect_linears(from);
  dst.collect_linears(to);
  if (from.empty() || from.size() != to.size()) {
    throw std::invalid_argument(
        "share_quantized_weights: architecture mismatch (" +
        std::to_string(from.size()) + " vs " + std::to_string(to.size()) +
        " Linear layers)");
  }
  for (std::size_t i = 0; i < from.size(); ++i) {
    to[i]->share_quantized(*from[i]);
  }
}

}  // namespace ppgnn::core
