#include "core/eval_metrics.h"

#include <stdexcept>

namespace ppgnn::core {

std::size_t ConfusionMatrix::total() const {
  std::size_t t = 0;
  for (const auto c : counts) t += c;
  return t;
}

std::size_t ConfusionMatrix::correct() const {
  std::size_t t = 0;
  for (std::size_t c = 0; c < num_classes; ++c) t += at(c, c);
  return t;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(correct()) / static_cast<double>(n);
}

double ConfusionMatrix::recall(std::size_t c) const {
  std::size_t support = 0;
  for (std::size_t p = 0; p < num_classes; ++p) support += at(c, p);
  return support == 0 ? 0.0
                      : static_cast<double>(at(c, c)) /
                            static_cast<double>(support);
}

double ConfusionMatrix::precision(std::size_t c) const {
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < num_classes; ++t) predicted += at(t, c);
  return predicted == 0 ? 0.0
                        : static_cast<double>(at(c, c)) /
                              static_cast<double>(predicted);
}

double ConfusionMatrix::f1(std::size_t c) const {
  const double p = precision(c);
  const double r = recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0;
  std::size_t used = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::size_t support = 0, predicted = 0;
    for (std::size_t k = 0; k < num_classes; ++k) {
      support += at(c, k);
      predicted += at(k, c);
    }
    if (support == 0 && predicted == 0) continue;  // class absent entirely
    sum += f1(c);
    ++used;
  }
  return used == 0 ? 0.0 : sum / static_cast<double>(used);
}

double ConfusionMatrix::micro_f1() const {
  // Single-label multi-class: pooled TP == trace, pooled FP == pooled FN,
  // so micro-F1 reduces to accuracy.
  return accuracy();
}

std::vector<std::int32_t> argmax_rows(const Tensor& logits) {
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  std::vector<std::int32_t> pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    pred[i] = static_cast<std::int32_t>(best);
  }
  return pred;
}

ConfusionMatrix confusion_matrix(const Tensor& logits,
                                 const std::vector<std::int32_t>& labels) {
  if (logits.rows() != labels.size()) {
    throw std::invalid_argument("confusion_matrix: rows != labels");
  }
  ConfusionMatrix cm;
  cm.num_classes = logits.cols();
  cm.counts.assign(cm.num_classes * cm.num_classes, 0);
  const auto pred = argmax_rows(logits);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto y = labels[i];
    if (y < 0) continue;
    if (static_cast<std::size_t>(y) >= cm.num_classes) {
      throw std::out_of_range("confusion_matrix: label out of range");
    }
    cm.counts[static_cast<std::size_t>(y) * cm.num_classes +
              static_cast<std::size_t>(pred[i])]++;
  }
  return cm;
}

}  // namespace ppgnn::core
