#include "core/precompute.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "graph/normalize.h"
#include "graph/spmm.h"
#include "tensor/ops.h"

namespace ppgnn::core {

const char* to_string(OperatorKind k) {
  switch (k) {
    case OperatorKind::kSymNorm: return "sym-norm";
    case OperatorKind::kRowNorm: return "row-norm";
    case OperatorKind::kPpr: return "ppr";
    case OperatorKind::kHeat: return "heat";
  }
  return "?";
}

Preprocessed precompute(const graph::CsrGraph& g, const Tensor& x,
                        const PrecomputeConfig& cfg) {
  if (x.rows() != g.num_nodes()) {
    throw std::invalid_argument("precompute: feature rows != graph nodes");
  }
  const auto t0 = std::chrono::steady_clock::now();

  const graph::CsrGraph b =
      (cfg.op == OperatorKind::kRowNorm)
          ? graph::row_normalized(g, cfg.add_self_loops)
          : graph::sym_normalized(g, cfg.add_self_loops);

  Preprocessed out;
  out.hop_features.reserve(cfg.hops + 1);
  out.hop_features.push_back(x);
  for (std::size_t r = 1; r <= cfg.hops; ++r) {
    Tensor next = graph::spmm(b, out.hop_features.back());
    switch (cfg.op) {
      case OperatorKind::kSymNorm:
      case OperatorKind::kRowNorm:
        break;
      case OperatorKind::kPpr: {
        // X_r = (1-a) B X_{r-1} + a X_0 — the APPNP/PPR power recurrence.
        scale_inplace(next, static_cast<float>(1.0 - cfg.ppr_alpha));
        axpy(static_cast<float>(cfg.ppr_alpha), out.hop_features.front(),
             next);
        break;
      }
      case OperatorKind::kHeat: {
        // r-th Taylor term of exp(t(B - I)): X_r = (t/r) B X_{r-1}.
        scale_inplace(next,
                      static_cast<float>(cfg.heat_t / static_cast<double>(r)));
        break;
      }
    }
    out.hop_features.push_back(std::move(next));
  }
  out.preprocess_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

Preprocessed precompute_multi(const graph::CsrGraph& g, const Tensor& x,
                              const std::vector<PrecomputeConfig>& configs) {
  if (configs.empty()) {
    throw std::invalid_argument("precompute_multi: no operator configs");
  }
  Preprocessed out;
  out.hop_features.push_back(x);  // shared hop-0 features, stored once
  for (const auto& cfg : configs) {
    Preprocessed one = precompute(g, x, cfg);
    out.preprocess_seconds += one.preprocess_seconds;
    for (std::size_t r = 1; r < one.hop_features.size(); ++r) {
      out.hop_features.push_back(std::move(one.hop_features[r]));
    }
  }
  return out;
}

Tensor Preprocessed::expanded_rows(
    const std::vector<std::int64_t>& rows) const {
  const std::size_t f = feat_dim();
  const std::size_t hops1 = hop_features.size();
  Tensor out({rows.size(), hops1 * f});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = rows[i];
    if (r < 0 || static_cast<std::size_t>(r) >= num_nodes()) {
      throw std::out_of_range("expanded_rows: row out of range");
    }
    float* dst = out.row(i);
    for (std::size_t h = 0; h < hops1; ++h) {
      std::memcpy(dst + h * f,
                  hop_features[h].row(static_cast<std::size_t>(r)),
                  f * sizeof(float));
    }
  }
  return out;
}

}  // namespace ppgnn::core
