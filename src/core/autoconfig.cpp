#include "core/autoconfig.h"

#include <sstream>

namespace ppgnn::core {

std::size_t AutoConfigurator::probe_model_peak_bytes(
    const sim::PpModelShape& model) const {
  // Parameters + gradients + Adam moments (4x params), plus the live
  // activations of one batch: input rows, per-layer hidden activations
  // (forward caches retained for backward), double-buffered input staging.
  const std::size_t params = model.param_bytes();
  const std::size_t input = batch_size_ * model.row_bytes();
  const std::size_t r1 = model.hops + 1;
  std::size_t act = 0;
  switch (model.kind) {
    case sim::PpModelKind::kSgc:
      act = batch_size_ * model.classes * sizeof(float);
      break;
    case sim::PpModelKind::kSign:
      act = batch_size_ * (r1 * model.hidden + model.hidden + model.classes) *
            sizeof(float) * 2;  // fwd cache + grads
      break;
    case sim::PpModelKind::kHoga:
      act = batch_size_ * r1 *
            (4 * model.hidden + r1) * sizeof(float) * 2;
      break;
  }
  return 4 * params + 2 * input /*double buffer*/ + act;
}

TrainingPlan AutoConfigurator::plan(const sim::PpModelShape& model,
                                    const graph::PaperScale& dataset,
                                    bool force_sgd_rr) const {
  TrainingPlan plan;
  plan.model_peak_bytes = probe_model_peak_bytes(model);
  plan.input_bytes = dataset.preprocessed_bytes(model.hops, model.kernels);

  loader::PlacementRequest req;
  req.input_bytes = plan.input_bytes;
  req.model_peak_bytes = plan.model_peak_bytes;
  req.num_gpus = num_gpus_;
  req.force_sgd_rr = force_sgd_rr;
  plan.placement = loader::decide_placement(req, machine_);

  plan.pipeline.machine = machine_;
  plan.pipeline.model = model;
  plan.pipeline.train_rows = dataset.train_nodes();
  plan.pipeline.batch_size = batch_size_;
  plan.pipeline.chunk_size = chunk_size_;
  plan.pipeline.loader = plan.placement.loader;
  plan.pipeline.placement = plan.placement.placement;
  plan.pipeline.num_gpus = num_gpus_;
  plan.predicted = sim::simulate_pp_epoch(plan.pipeline);
  return plan;
}

std::string TrainingPlan::summary() const {
  std::ostringstream os;
  os << "placement=" << sim::to_string(placement.placement)
     << " method=" << (placement.chunk_reshuffle ? "SGD-CR" : "SGD-RR")
     << " loader=" << sim::to_string(placement.loader)
     << " input=" << static_cast<double>(input_bytes) / sim::kGiB << " GiB"
     << " peak=" << static_cast<double>(model_peak_bytes) / sim::kGiB
     << " GiB -> " << predicted.epoch_seconds << " s/epoch ("
     << placement.rationale << ")";
  return os.str();
}

}  // namespace ppgnn::core
