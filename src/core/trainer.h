// PP-GNN training loop with pluggable data-loading strategies.
//
// The strategies mirror the paper's optimization ladder (Section 4):
//   kBaselinePerRow — PyTorch-DataLoader-style row-at-a-time assembly
//   kFusedAssembly  — one indexed gather per batch, still synchronous
//   kPrefetch       — fused assembly on a loader thread, double-buffered
//   kChunkPrefetch  — chunk-reshuffled order + prefetching (bulk-friendly)
//   kStorageChunk   — chunk-reshuffled reads from the on-disk feature store
// Accuracy-affecting choices (the epoch order) are identical between
// kPrefetch (SGD-RR) and kChunkPrefetch/kStorageChunk (SGD-CR), so Figure 8
// and Table 6 compare exactly what the paper compares.
#pragma once

#include <string>

#include "core/metrics.h"
#include "core/pp_model.h"
#include "core/precompute.h"
#include "graph/dataset.h"

namespace ppgnn::core {

enum class LoadingMode {
  kBaselinePerRow,
  kFusedAssembly,
  kPrefetch,
  kChunkPrefetch,
  kStorageChunk,
};
const char* to_string(LoadingMode m);

struct PpTrainConfig {
  std::size_t epochs = 100;
  std::size_t batch_size = 512;
  float lr = 1e-2f;
  float weight_decay = 0.f;
  // Chunk size for the chunk-reshuffling modes (ignored for RR modes).
  std::size_t chunk_size = 512;
  std::size_t eval_every = 1;
  std::uint64_t seed = 7;
  LoadingMode mode = LoadingMode::kPrefetch;
  // Directory for kStorageChunk's feature files (created if needed).
  std::string storage_dir = "/tmp/ppgnn_store";
  // Full training-state checkpointing (parameters + Adam moments + epoch
  // cursor; see core/checkpoint.h).  Empty path disables it.  When the
  // file already exists, train_pp resumes from it: the epoch schedule is
  // replayed deterministically up to the saved cursor, so an interrupted
  // run and an uninterrupted one follow the same trajectory.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;  // epochs between saves
};

struct PpTrainResult {
  TrainHistory history;
  std::size_t train_rows = 0;
  std::size_t row_bytes = 0;
  std::size_t bytes_loaded_per_epoch = 0;
};

PpTrainResult train_pp(PpModel& model, const Preprocessed& pre,
                       const graph::Dataset& ds, const PpTrainConfig& cfg);

// Batched inference accuracy on an index set (no dropout).
double evaluate_pp(PpModel& model, const Preprocessed& pre,
                   const graph::Dataset& ds,
                   const std::vector<std::int64_t>& idx,
                   std::size_t batch_size = 2048);

// Minimal deployment-prep training: a few Adam epochs over all rows with
// per-node labels, no splits/metrics/checkpointing.  serve_cli and the
// serving bench use it before deploying a model — an untrained model's
// near-tie logits would make precision-agreement measurements (the int8
// gate) meaningless.  For real experiments use train_pp above.
void quick_train(PpModel& model, const Preprocessed& pre,
                 const std::vector<std::int32_t>& labels, std::size_t epochs,
                 float lr = 1e-2f, std::size_t batch_size = 512,
                 std::uint64_t seed = 123);

}  // namespace ppgnn::core
