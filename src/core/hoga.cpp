#include "core/hoga.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace ppgnn::core {

Hoga::Hoga(const HogaConfig& cfg, Rng& rng)
    : cfg_(cfg),
      proj_(cfg.feat_dim, cfg.hidden, rng),
      norm_(cfg.hidden),
      attn_(cfg.hidden, cfg.heads, rng),
      attn_drop_(cfg.dropout, rng),
      head_({cfg.hidden, cfg.hidden, cfg.classes}, cfg.dropout, rng) {
  if (cfg_.feat_dim == 0 || cfg_.classes == 0) {
    throw std::invalid_argument("Hoga: feat_dim and classes required");
  }
}

Tensor Hoga::forward(const Tensor& batch, bool train) {
  const std::size_t tokens = cfg_.hops + 1;
  if (batch.cols() != tokens * cfg_.feat_dim) {
    throw std::invalid_argument("Hoga: batch width mismatch");
  }
  batch_rows_ = batch.rows();
  // The hop-major expanded row layout [hop0 | ... | hopR] is exactly a
  // [b*tokens, F] matrix — one shared projection GEMM covers all tokens.
  const Tensor x2 = batch.reshaped({batch_rows_ * tokens, cfg_.feat_dim});
  Tensor t = proj_.forward(x2, train);
  Tensor n = norm_.forward(t, train);
  Tensor a = attn_.forward(n.reshaped({batch_rows_, tokens, cfg_.hidden}),
                           train)
                 .reshaped({batch_rows_ * tokens, cfg_.hidden});
  a = attn_drop_.forward(a, train);
  add_inplace(a, t);  // residual

  // Mean-pool tokens.
  Tensor pooled({batch_rows_, cfg_.hidden});
  const float inv = 1.f / static_cast<float>(tokens);
  for (std::size_t i = 0; i < batch_rows_; ++i) {
    float* p = pooled.row(i);
    for (std::size_t tk = 0; tk < tokens; ++tk) {
      const float* r = a.row(i * tokens + tk);
      for (std::size_t j = 0; j < cfg_.hidden; ++j) p[j] += inv * r[j];
    }
  }
  return head_.forward(pooled, train);
}

void Hoga::backward(const Tensor& grad_logits) {
  const std::size_t tokens = cfg_.hops + 1;
  const Tensor d_pooled = head_.backward(grad_logits);

  // Broadcast the pooling gradient to every token.
  Tensor d_res({batch_rows_ * tokens, cfg_.hidden});
  const float inv = 1.f / static_cast<float>(tokens);
  for (std::size_t i = 0; i < batch_rows_; ++i) {
    const float* g = d_pooled.row(i);
    for (std::size_t tk = 0; tk < tokens; ++tk) {
      float* r = d_res.row(i * tokens + tk);
      for (std::size_t j = 0; j < cfg_.hidden; ++j) r[j] = inv * g[j];
    }
  }

  // Residual: gradient flows through both the attention branch and skip.
  Tensor d_attn = attn_drop_.backward(d_res);
  Tensor d_norm =
      attn_.backward(d_attn.reshaped({batch_rows_, tokens, cfg_.hidden}))
          .reshaped({batch_rows_ * tokens, cfg_.hidden});
  Tensor d_t = norm_.backward(d_norm);
  add_inplace(d_t, d_res);  // skip-path gradient
  (void)proj_.backward(d_t);
}

void Hoga::collect_params(std::vector<nn::ParamSlot>& out) {
  proj_.collect_params(out);
  norm_.collect_params(out);
  attn_.collect_params(out);
  head_.collect_params(out);
}

}  // namespace ppgnn::core
