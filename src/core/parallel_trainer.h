// Data-parallel PP-GNN training with real worker threads — the executable
// counterpart of the paper's multi-GPU experiments (Tables 3/4).
//
// Each worker owns a full model replica (identically initialized); every
// global batch is split into per-worker shards; workers run forward/
// backward concurrently on their shards; gradients are averaged (weighted
// by shard size, i.e. an all-reduce) and every replica applies the same
// averaged gradient through its own Adam instance — so replicas stay
// bit-identical across the run, exactly like synchronous data-parallel
// SGD across GPUs.
//
// Two epoch-order policies mirror Section 5's GPU-memory placement:
//   - kGlobalShuffle: one global SGD-RR permutation; a worker's shard rows
//     mostly live on *other* workers' partitions (remote fetches — what
//     makes naive multi-GPU loading egress-bound);
//   - kLocalityAware: rows are partitioned per worker up front and each
//     worker shuffles only its own partition (Yang & Cong-style
//     locality-aware loading) — zero remote fetches by construction.
// The result reports the measured remote-row fraction so the trade-off is
// visible, and tests assert the sync + equivalence invariants.
#pragma once

#include <functional>
#include <memory>

#include "core/metrics.h"
#include "core/pp_model.h"
#include "core/precompute.h"
#include "graph/dataset.h"

namespace ppgnn::core {

enum class EpochOrderPolicy { kGlobalShuffle, kLocalityAware };
const char* to_string(EpochOrderPolicy p);

struct DataParallelConfig {
  int num_workers = 2;
  std::size_t epochs = 10;
  std::size_t batch_size = 512;  // global batch, split across workers
  float lr = 1e-2f;
  float weight_decay = 0.f;
  std::size_t eval_every = 2;
  std::uint64_t seed = 7;
  EpochOrderPolicy policy = EpochOrderPolicy::kGlobalShuffle;
};

struct DataParallelResult {
  TrainHistory history;
  // Fraction of consumed rows that came from a different worker's
  // partition (0 under kLocalityAware; ~ (W-1)/W under global shuffle).
  double remote_row_fraction = 0;
  std::size_t rows_per_epoch = 0;
};

// factory(worker_rng) must build identically-initialized replicas — it is
// called once per worker with an identically-seeded Rng.
using ModelFactory = std::function<std::unique_ptr<PpModel>(Rng&)>;

// Trains with num_workers concurrent replicas; evaluation runs on replica
// 0 (all replicas hold the same weights throughout).
DataParallelResult train_pp_data_parallel(const ModelFactory& factory,
                                          const Preprocessed& pre,
                                          const graph::Dataset& ds,
                                          const DataParallelConfig& cfg);

}  // namespace ppgnn::core
