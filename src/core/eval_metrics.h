// Classification metrics beyond plain accuracy.
//
// The paper reports test accuracy everywhere, but its datasets are heavily
// class-imbalanced (ogbn-products: 47 classes with a long tail; pokec:
// binary) — per-class recall and macro-F1 make the accuracy numbers
// interpretable, and the confusion matrix is what the example applications
// print.  Implemented on logits + int labels, matching the trainers'
// evaluation path; labels < 0 (unlabeled) are skipped like everywhere else.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ppgnn::core {

struct ConfusionMatrix {
  std::size_t num_classes = 0;
  std::vector<std::size_t> counts;  // [true * num_classes + predicted]

  std::size_t at(std::size_t truth, std::size_t pred) const {
    return counts[truth * num_classes + pred];
  }
  std::size_t total() const;
  std::size_t correct() const;  // trace
  double accuracy() const;
  // Recall / precision / F1 for one class; 0 when undefined (no support).
  double recall(std::size_t c) const;
  double precision(std::size_t c) const;
  double f1(std::size_t c) const;
  // Unweighted mean of per-class F1 (classes with no support and no
  // predictions are skipped, matching scikit-learn's zero_division=0
  // macro-F1 up to the skip rule).
  double macro_f1() const;
  // Global F1 over pooled counts == accuracy for single-label tasks.
  double micro_f1() const;
};

// Builds the matrix from row-argmax predictions.  logits: [n, C];
// labels: n entries, negatives skipped.
ConfusionMatrix confusion_matrix(const Tensor& logits,
                                 const std::vector<std::int32_t>& labels);

// Argmax per row (exposed for tests and examples).
std::vector<std::int32_t> argmax_rows(const Tensor& logits);

}  // namespace ppgnn::core
