#include "core/ssgc.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace ppgnn::core {

Ssgc::Ssgc(std::size_t feat_dim, std::size_t hops, std::size_t classes,
           Rng& rng, float alpha)
    : feat_dim_(feat_dim), hops_(hops), alpha_(alpha),
      linear_(feat_dim, classes, rng) {
  if (hops == 0) throw std::invalid_argument("Ssgc: needs at least one hop");
  if (alpha < 0.f || alpha > 1.f) {
    throw std::invalid_argument("Ssgc: alpha must be in [0, 1]");
  }
}

Tensor Ssgc::forward(const Tensor& batch, bool train) {
  if (batch.cols() != (hops_ + 1) * feat_dim_) {
    throw std::invalid_argument("Ssgc: batch width mismatch");
  }
  // H = (1/R) sum_{r=1..R} [(1-a) hop_r + a hop_0]
  //   = (1-a)/R * sum_{r>=1} hop_r + a * hop_0.
  Tensor h = slice_hop(batch, 0, feat_dim_);
  scale_inplace(h, alpha_);
  const float w = (1.f - alpha_) / static_cast<float>(hops_);
  for (std::size_t r = 1; r <= hops_; ++r) {
    const Tensor hop = slice_hop(batch, r, feat_dim_);
    axpy(w, hop, h);
  }
  return linear_.forward(h, train);
}

void Ssgc::backward(const Tensor& grad_logits) {
  // The hop average is a fixed linear map of the (constant) input batch, so
  // only the linear layer accumulates gradients.
  (void)linear_.backward(grad_logits);
}

void Ssgc::collect_params(std::vector<nn::ParamSlot>& out) {
  linear_.collect_params(out);
}

}  // namespace ppgnn::core
