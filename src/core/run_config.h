// Config-file-driven training runs.
//
// The paper's artifact (Appendix J) drives experiments through a
// model_cfg.json — "change method to SIGN or SGC ... change training hops".
// This module gives the C++ port the same workflow: a dependency-free JSON
// subset parser (objects / arrays / strings / numbers / bools / null) and a
// RunConfig that validates and materializes every knob the trainers expose.
// examples/train_cli.cpp is the consumer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/precompute.h"
#include "core/trainer.h"
#include "graph/dataset.h"

namespace ppgnn::core {

// ------------------------------------------------------------- JSON ----

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // Typed accessors throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  // Object helpers: has/`get` (throws if missing) / `get_or` defaults.
  bool has(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  double get_or(const std::string& key, double fallback) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  bool get_or(const std::string& key, bool fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> a);
  static JsonValue make_object(std::map<std::string, JsonValue> o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses a complete JSON document; throws std::runtime_error with a
// character-offset diagnostic on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

// -------------------------------------------------------- RunConfig ----

struct RunConfig {
  std::string dataset = "products";  // products|pokec|wiki|papers100m|igb-medium|igb-large
  double scale = 0.25;               // analogue scale factor
  std::string method = "HOGA";       // SGC|SSGC|SIGN|HOGA|GAMLP
  std::size_t hops = 3;
  std::size_t hidden = 64;
  std::string op = "sym";            // sym|rw|ppr|heat
  std::size_t epochs = 30;
  std::size_t batch_size = 512;
  float lr = 1e-2f;
  float dropout = 0.3f;
  std::string loading = "prefetch";  // baseline|fused|prefetch|chunk|storage
  std::size_t chunk_size = 512;
  std::uint64_t seed = 1;
  // Optional training-state checkpoint file; resumes if it exists.
  std::string checkpoint;
  std::size_t checkpoint_every = 1;

  graph::DatasetName dataset_name() const;     // throws on unknown name
  OperatorKind operator_kind() const;          // throws on unknown op
  LoadingMode loading_mode() const;            // throws on unknown mode
  PpTrainConfig train_config() const;
  PrecomputeConfig precompute_config() const;

  // Builds the model this config names (throws on unknown method).
  std::unique_ptr<PpModel> make_model(const graph::Dataset& ds,
                                      Rng& rng) const;

  std::string summary() const;
};

// Parses a RunConfig from a JSON object; unknown keys are rejected so typos
// fail loudly instead of silently training the default model.
RunConfig run_config_from_json(const JsonValue& root);
RunConfig run_config_from_string(const std::string& json_text);
RunConfig run_config_from_file(const std::string& path);

}  // namespace ppgnn::core
