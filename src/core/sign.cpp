#include "core/sign.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace ppgnn::core {

namespace {
std::vector<std::size_t> head_dims(const SignConfig& cfg) {
  std::vector<std::size_t> dims;
  dims.push_back((cfg.hops + 1) * cfg.hidden);
  for (std::size_t i = 0; i + 2 < cfg.mlp_layers; ++i) {
    dims.push_back(cfg.hidden);
  }
  dims.push_back(cfg.hidden);
  dims.push_back(cfg.classes);
  return dims;
}
}  // namespace

Sign::Sign(const SignConfig& cfg, Rng& rng)
    : cfg_(cfg), head_(head_dims(cfg), cfg.dropout, rng) {
  if (cfg_.feat_dim == 0 || cfg_.classes == 0) {
    throw std::invalid_argument("Sign: feat_dim and classes required");
  }
  for (std::size_t h = 0; h <= cfg_.hops; ++h) {
    branches_.push_back(
        std::make_unique<nn::Linear>(cfg_.feat_dim, cfg_.hidden, rng));
    branch_relus_.push_back(std::make_unique<nn::ReLU>());
    branch_drops_.push_back(std::make_unique<nn::Dropout>(cfg_.dropout, rng));
  }
}

Tensor Sign::forward(const Tensor& batch, bool train) {
  if (batch.cols() != (cfg_.hops + 1) * cfg_.feat_dim) {
    throw std::invalid_argument("Sign: batch width mismatch");
  }
  branch_outputs_.clear();
  branch_outputs_.reserve(cfg_.hops + 1);
  for (std::size_t h = 0; h <= cfg_.hops; ++h) {
    Tensor z = branches_[h]->forward(slice_hop(batch, h, cfg_.feat_dim), train);
    z = branch_relus_[h]->forward(z, train);
    z = branch_drops_[h]->forward(z, train);
    branch_outputs_.push_back(std::move(z));
  }
  std::vector<const Tensor*> parts;
  parts.reserve(branch_outputs_.size());
  for (const auto& t : branch_outputs_) parts.push_back(&t);
  return head_.forward(concat_cols(parts), train);
}

void Sign::backward(const Tensor& grad_logits) {
  const Tensor d_concat = head_.backward(grad_logits);
  // Split the concat gradient back into per-hop branch gradients.
  std::vector<Tensor> grads;
  grads.reserve(cfg_.hops + 1);
  std::vector<Tensor*> parts;
  for (std::size_t h = 0; h <= cfg_.hops; ++h) {
    grads.emplace_back(
        std::vector<std::size_t>{d_concat.rows(), cfg_.hidden});
    parts.push_back(&grads.back());
  }
  split_cols(d_concat, parts);
  for (std::size_t h = 0; h <= cfg_.hops; ++h) {
    Tensor g = branch_drops_[h]->backward(grads[h]);
    g = branch_relus_[h]->backward(g);
    (void)branches_[h]->backward(g);
  }
}

void Sign::collect_params(std::vector<nn::ParamSlot>& out) {
  for (auto& b : branches_) b->collect_params(out);
  head_.collect_params(out);
}

void Sign::collect_linears(std::vector<nn::Linear*>& out) {
  for (auto& b : branches_) b->collect_linears(out);
  head_.collect_linears(out);
}

}  // namespace ppgnn::core
