// SSGC — Simple Spectral Graph Convolution (Zhu & Koniusz, ICLR 2021).
//
// One of the PP-GNN family members the paper cites (Section 1).  Where SGC
// keeps only the final hop B^R X, SSGC averages all propagation depths and
// mixes the raw features back in at every term:
//
//   H = (1/R) * sum_{r=1..R} [ (1-alpha) * B^r X + alpha * X ],
//   Y = H W + b.
//
// The average acts as a band-stop spectral filter: it keeps multi-scale
// neighborhood information without the over-smoothing SGC suffers at large
// R, while staying a single linear model — so its training cost matches
// SGC's row in Table 1 (bF + F^2 memory, nF^2 compute) and it consumes the
// same expanded mini-batch layout as every other PP-GNN here.
#pragma once

#include "core/pp_model.h"
#include "nn/linear.h"

namespace ppgnn::core {

class Ssgc : public PpModel {
 public:
  // alpha is the residual (teleport) weight on the raw features; the SSGC
  // paper uses 0.05.
  Ssgc(std::size_t feat_dim, std::size_t hops, std::size_t classes, Rng& rng,
       float alpha = 0.05f);

  Tensor forward(const Tensor& batch, bool train) override;
  void backward(const Tensor& grad_logits) override;
  void collect_params(std::vector<nn::ParamSlot>& out) override;
  void collect_linears(std::vector<nn::Linear*>& out) override {
    linear_.collect_linears(out);
  }
  std::string name() const override { return "SSGC"; }
  std::size_t hops() const override { return hops_; }
  float alpha() const { return alpha_; }

 private:
  std::size_t feat_dim_, hops_;
  float alpha_;
  nn::Linear linear_;
};

}  // namespace ppgnn::core
