#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace ppgnn::core {

namespace {

constexpr std::uint32_t kMagic = 0x5050434Bu;  // 'PPCK'
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return v;
}

void write_tensor(std::ofstream& out, const Tensor& t) {
  write_u64(out, t.shape().size());
  for (const auto d : t.shape()) write_u64(out, d);
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.bytes()));
}

void read_tensor_into(std::ifstream& in, Tensor& t) {
  const auto rank = read_u64(in);
  if (rank != t.shape().size()) {
    throw std::runtime_error("checkpoint: tensor rank mismatch");
  }
  for (const auto expect : t.shape()) {
    if (read_u64(in) != expect) {
      throw std::runtime_error("checkpoint: tensor shape mismatch");
    }
  }
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.bytes()));
  if (!in) throw std::runtime_error("checkpoint: truncated tensor data");
}

}  // namespace

void save_checkpoint(const std::string& path, PpModel& model,
                     nn::Optimizer& opt, const CheckpointMeta& meta) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open " + tmp);
    write_u64(out, kMagic);
    write_u64(out, kVersion);
    write_u64(out, meta.next_epoch);
    write_u64(out, static_cast<std::uint64_t>(meta.step_count));

    std::vector<nn::ParamSlot> params;
    model.collect_params(params);
    write_u64(out, params.size());
    for (const auto& p : params) write_tensor(out, *p.value);

    const auto state = opt.state_tensors();
    write_u64(out, state.size());
    for (const auto* t : state) write_tensor(out, *t);
    if (!out) throw std::runtime_error("checkpoint: write failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: rename failed: " + ec.message());
  }
}

CheckpointMeta load_checkpoint(const std::string& path, PpModel& model,
                               nn::Optimizer& opt) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  if (read_u64(in) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  if (read_u64(in) != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  CheckpointMeta meta;
  meta.next_epoch = static_cast<std::size_t>(read_u64(in));
  meta.step_count = static_cast<long>(read_u64(in));

  std::vector<nn::ParamSlot> params;
  model.collect_params(params);
  if (read_u64(in) != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch");
  }
  for (auto& p : params) read_tensor_into(in, *p.value);

  const auto state = opt.state_tensors();
  if (read_u64(in) != state.size()) {
    throw std::runtime_error("checkpoint: optimizer state count mismatch");
  }
  for (auto* t : state) read_tensor_into(in, *t);
  opt.set_step_count(meta.step_count);
  return meta;
}

bool checkpoint_exists(const std::string& path) {
  return std::filesystem::exists(path);
}

}  // namespace ppgnn::core
