// Table 1: asymptotic training memory and computational cost of the seven
// GNN configurations, both as the paper's symbolic expressions and as
// numeric evaluators (used by the Table-1 bench to check the empirical
// scaling of the real implementations against the formulas).
#pragma once

#include <string>
#include <vector>

namespace ppgnn::core {

struct ComplexityParams {
  double b = 8000;   // mini-batch size
  double C = 10;     // sampled neighborhood size per node (SAGE/LABOR)
  double L = 3;      // layers / hops
  double F = 128;    // feature & hidden dimension (paper's simplification)
  double n = 1e6;    // total nodes
  double r = 3;      // hops (HOGA attention tokens = r + 1)
};

struct ComplexityEntry {
  std::string model;
  std::string memory_expr;   // as printed in Table 1
  std::string compute_expr;
  double memory = 0;         // numeric evaluation
  double compute = 0;
  double propagation = 0;    // red term (sparse feature propagation)
  double transformation = 0; // blue term (dense transformation)
};

std::vector<ComplexityEntry> complexity_table(const ComplexityParams& p);

}  // namespace ppgnn::core
