#include "core/complexity.h"

#include <cmath>

namespace ppgnn::core {

std::vector<ComplexityEntry> complexity_table(const ComplexityParams& p) {
  const double b = p.b, C = p.C, L = p.L, F = p.F, n = p.n, r = p.r;
  const double CL = std::pow(C, L);
  std::vector<ComplexityEntry> t;

  {
    ComplexityEntry e;
    e.model = "GraphSAGE";
    e.memory_expr = "L*b*C^L*F + L*F^2";
    e.compute_expr = "L*F*n*C^(L+1) + L*n*C^L*F^2";
    e.memory = L * b * CL * F + L * F * F;
    e.propagation = L * F * n * CL * C;
    e.transformation = L * n * CL * F * F;
    e.compute = e.propagation + e.transformation;
    t.push_back(e);
  }
  {
    ComplexityEntry e;
    e.model = "LADIES";
    e.memory_expr = "L^2*b*F + L*F^2";
    e.compute_expr = "L^2*n*F*b + L^2*n*F^2";
    e.memory = L * L * b * F + L * F * F;
    e.propagation = L * L * n * F * b;
    e.transformation = L * L * n * F * F;
    e.compute = e.propagation + e.transformation;
    t.push_back(e);
  }
  {
    ComplexityEntry e;
    e.model = "GraphSAINT";
    e.memory_expr = "L*b*F + L*F^2";
    e.compute_expr = "L*n*F*b + L*n*F^2";
    e.memory = L * b * F + L * F * F;
    e.propagation = L * n * F * b;
    e.transformation = L * n * F * F;
    e.compute = e.propagation + e.transformation;
    t.push_back(e);
  }
  {
    ComplexityEntry e;
    e.model = "LABOR";
    e.memory_expr = "L*b*C^L*F + L*F^2";
    e.compute_expr = "L*F*n*C^(L+1) + L*n*C^L*F^2";
    e.memory = L * b * CL * F + L * F * F;
    e.propagation = L * F * n * CL * C;
    e.transformation = L * n * CL * F * F;
    e.compute = e.propagation + e.transformation;
    t.push_back(e);
  }
  {
    ComplexityEntry e;
    e.model = "SGC";
    e.memory_expr = "b*F + F^2";
    e.compute_expr = "n*F^2";
    e.memory = b * F + F * F;
    e.propagation = 0;  // eliminated by preprocessing
    e.transformation = n * F * F;
    e.compute = e.transformation;
    t.push_back(e);
  }
  {
    ComplexityEntry e;
    e.model = "SIGN";
    e.memory_expr = "L*b*F + L*F^2";
    e.compute_expr = "L*n*F^2";
    e.memory = L * b * F + L * F * F;
    e.propagation = 0;
    e.transformation = L * n * F * F;
    e.compute = e.transformation;
    t.push_back(e);
  }
  {
    // Extension row (not in the paper's Table 1): SSGC averages all hops
    // before its single linear layer, so training cost is exactly SGC's —
    // the hop average is a fixed linear map folded into batch assembly.
    ComplexityEntry e;
    e.model = "SSGC";
    e.memory_expr = "b*F + F^2";
    e.compute_expr = "n*F^2";
    e.memory = b * F + F * F;
    e.propagation = 0;
    e.transformation = n * F * F;
    e.compute = e.transformation;
    t.push_back(e);
  }
  {
    // Extension row: GAMLP's per-hop gate scores cost L*n*F on top of a
    // SIGN-like transform — asymptotically SIGN with a lower-order term.
    ComplexityEntry e;
    e.model = "GAMLP";
    e.memory_expr = "L*b*F + F^2 + L*F";
    e.compute_expr = "L*n*F + L*n*F^2";
    e.memory = L * b * F + F * F + L * F;
    e.propagation = 0;
    e.transformation = L * n * F + L * n * F * F;
    e.compute = e.transformation;
    t.push_back(e);
  }
  {
    // Extension row: full-batch GCN — the no-sampling reference whose
    // activation memory O(L*n*F) is what rules it out at paper scale.
    ComplexityEntry e;
    e.model = "GCN-full";
    e.memory_expr = "L*n*F + L*F^2";
    e.compute_expr = "L*m*F + L*n*F^2   (m = edges)";
    const double m = n * 10;  // avg degree stand-in for the table
    e.memory = L * n * F + L * F * F;
    e.propagation = L * m * F;
    e.transformation = L * n * F * F;
    e.compute = e.propagation + e.transformation;
    t.push_back(e);
  }
  {
    ComplexityEntry e;
    e.model = "HOGA";
    e.memory_expr = "L*b*F + L*F^2 + L*b*(r+1)^2";
    e.compute_expr = "L*n*(r+1)*F^2 + L*n*F*(r+1)^2";
    const double r1 = r + 1;
    e.memory = L * b * F + L * F * F + L * b * r1 * r1;
    e.propagation = 0;
    e.transformation = L * n * r1 * F * F + L * n * F * r1 * r1;
    e.compute = e.transformation;
    t.push_back(e);
  }
  return t;
}

}  // namespace ppgnn::core
