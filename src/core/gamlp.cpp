#include "core/gamlp.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace ppgnn::core {

Gamlp::Gamlp(const GamlpConfig& cfg, Rng& rng) : cfg_(cfg) {
  if (cfg.feat_dim == 0 || cfg.classes == 0) {
    throw std::invalid_argument("Gamlp: feat_dim and classes required");
  }
  if (cfg.mlp_layers == 0) {
    throw std::invalid_argument("Gamlp: mlp_layers must be >= 1");
  }
  const std::size_t tokens = cfg.hops + 1;
  gates_ = Tensor({tokens, cfg.feat_dim});
  grad_gates_ = Tensor({tokens, cfg.feat_dim});
  // Small-scale init: gates start near uniform attention so early training
  // matches SIGN-style equal hop weighting.
  const float s = 0.1f / std::sqrt(static_cast<float>(cfg.feat_dim));
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    gates_.data()[i] = static_cast<float>(rng.normal(0.0, s));
  }
  std::vector<std::size_t> dims{cfg.feat_dim};
  for (std::size_t l = 0; l + 1 < cfg.mlp_layers; ++l) dims.push_back(cfg.hidden);
  dims.push_back(cfg.classes);
  mlp_ = std::make_unique<nn::Mlp>(dims, cfg.dropout, rng);
}

Tensor Gamlp::forward(const Tensor& batch, bool train) {
  const std::size_t f = cfg_.feat_dim;
  const std::size_t tokens = cfg_.hops + 1;
  if (batch.cols() != tokens * f) {
    throw std::invalid_argument("Gamlp: batch width mismatch");
  }
  const std::size_t b = batch.rows();

  cached_hops_.clear();
  cached_hops_.reserve(tokens);
  for (std::size_t r = 0; r < tokens; ++r) {
    cached_hops_.push_back(slice_hop(batch, r, f));
  }

  // Scores s[i][r] = x_{i,r} . w_r, then per-row softmax over hops.
  Tensor scores({b, tokens});
  for (std::size_t r = 0; r < tokens; ++r) {
    const Tensor& xr = cached_hops_[r];
    const float* w = gates_.row(r);
    for (std::size_t i = 0; i < b; ++i) {
      const float* x = xr.row(i);
      float s = 0.f;
      for (std::size_t d = 0; d < f; ++d) s += x[d] * w[d];
      scores.row(i)[r] = s;
    }
  }
  cached_attn_ = Tensor({b, tokens});
  softmax_rows(scores, cached_attn_);

  Tensor h({b, f});
  h.zero();
  for (std::size_t r = 0; r < tokens; ++r) {
    const Tensor& xr = cached_hops_[r];
    for (std::size_t i = 0; i < b; ++i) {
      const float a = cached_attn_.row(i)[r];
      const float* x = xr.row(i);
      float* out = h.row(i);
      for (std::size_t d = 0; d < f; ++d) out[d] += a * x[d];
    }
  }
  if (!train) {
    cached_hops_.clear();  // inference keeps no caches
  }
  return mlp_->forward(h, train);
}

void Gamlp::backward(const Tensor& grad_logits) {
  if (cached_hops_.empty()) {
    throw std::logic_error("Gamlp::backward without cached forward");
  }
  const std::size_t f = cfg_.feat_dim;
  const std::size_t tokens = cfg_.hops + 1;
  const Tensor grad_h = mlp_->backward(grad_logits);  // [b, F]
  const std::size_t b = grad_h.rows();

  // d a_{i,r} = grad_h_i . x_{i,r}; softmax backward to scores; gate grads
  // accumulate sum_i ds_{i,r} * x_{i,r}.
  Tensor grad_attn({b, tokens});
  for (std::size_t r = 0; r < tokens; ++r) {
    const Tensor& xr = cached_hops_[r];
    for (std::size_t i = 0; i < b; ++i) {
      const float* g = grad_h.row(i);
      const float* x = xr.row(i);
      float s = 0.f;
      for (std::size_t d = 0; d < f; ++d) s += g[d] * x[d];
      grad_attn.row(i)[r] = s;
    }
  }
  for (std::size_t i = 0; i < b; ++i) {
    const float* a = cached_attn_.row(i);
    const float* da = grad_attn.row(i);
    float dot = 0.f;
    for (std::size_t r = 0; r < tokens; ++r) dot += a[r] * da[r];
    for (std::size_t r = 0; r < tokens; ++r) {
      const float ds = a[r] * (da[r] - dot);
      const float* x = cached_hops_[r].row(i);
      float* gw = grad_gates_.row(r);
      for (std::size_t d = 0; d < f; ++d) gw[d] += ds * x[d];
    }
  }
  cached_hops_.clear();
}

void Gamlp::collect_params(std::vector<nn::ParamSlot>& out) {
  out.push_back({&gates_, &grad_gates_, "gamlp.gates"});
  mlp_->collect_params(out);
}

std::vector<float> Gamlp::mean_hop_attention() const {
  const std::size_t tokens = cfg_.hops + 1;
  std::vector<float> mean(tokens, 0.f);
  if (cached_attn_.size() == 0) return mean;
  const std::size_t b = cached_attn_.rows();
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t r = 0; r < tokens; ++r) mean[r] += cached_attn_.row(i)[r];
  }
  for (auto& m : mean) m /= static_cast<float>(b);
  return mean;
}

}  // namespace ppgnn::core
