#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include "core/checkpoint.h"
#include "loader/host_loader.h"
#include "loader/prefetch.h"
#include "loader/shuffler.h"
#include "loader/storage.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace ppgnn::core {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

const char* to_string(LoadingMode m) {
  switch (m) {
    case LoadingMode::kBaselinePerRow: return "baseline-per-row";
    case LoadingMode::kFusedAssembly: return "fused-assembly";
    case LoadingMode::kPrefetch: return "prefetch (SGD-RR)";
    case LoadingMode::kChunkPrefetch: return "chunk-prefetch (SGD-CR)";
    case LoadingMode::kStorageChunk: return "storage-chunk (SGD-CR)";
  }
  return "?";
}

double evaluate_pp(PpModel& model, const Preprocessed& pre,
                   const graph::Dataset& ds,
                   const std::vector<std::int64_t>& idx,
                   std::size_t batch_size) {
  std::size_t correct = 0, total = 0;
  for (std::size_t lo = 0; lo < idx.size(); lo += batch_size) {
    const std::size_t hi = std::min(lo + batch_size, idx.size());
    const std::vector<std::int64_t> rows(idx.begin() + lo, idx.begin() + hi);
    const Tensor logits =
        model.forward(pre.expanded_rows(rows), /*train=*/false);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto y = ds.labels[static_cast<std::size_t>(rows[i])];
      if (y < 0) continue;
      ++total;
      if (argmax_row(logits, i) == static_cast<std::size_t>(y)) ++correct;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

PpTrainResult train_pp(PpModel& model, const Preprocessed& pre,
                       const graph::Dataset& ds, const PpTrainConfig& cfg) {
  const auto& train_idx = ds.split.train;
  if (train_idx.empty()) throw std::invalid_argument("train_pp: empty split");
  if (cfg.epochs == 0) throw std::invalid_argument("train_pp: epochs == 0");
  if (cfg.batch_size == 0) {
    throw std::invalid_argument("train_pp: batch_size == 0");
  }
  if ((cfg.mode == LoadingMode::kChunkPrefetch ||
       cfg.mode == LoadingMode::kStorageChunk) &&
      cfg.chunk_size == 0) {
    throw std::invalid_argument("train_pp: chunk_size == 0 in chunked mode");
  }

  // Materialize the expanded training set once (hop-major rows); this is
  // the array the loaders index into — position i corresponds to node
  // train_idx[i].
  const Tensor train_x = pre.expanded_rows(train_idx);
  std::vector<std::int32_t> train_y(train_idx.size());
  for (std::size_t i = 0; i < train_idx.size(); ++i) {
    train_y[i] = ds.labels[static_cast<std::size_t>(train_idx[i])];
  }

  const bool chunked = cfg.mode == LoadingMode::kChunkPrefetch ||
                       cfg.mode == LoadingMode::kStorageChunk;
  const auto shuffler =
      loader::make_shuffler(chunked ? cfg.chunk_size : std::size_t{1});

  // Storage mode: write per-hop training features to the file store.
  std::unique_ptr<loader::FeatureFileStore> store;
  if (cfg.mode == LoadingMode::kStorageChunk) {
    std::vector<Tensor> hop_train;
    hop_train.reserve(pre.hop_features.size());
    for (const auto& hop : pre.hop_features) {
      hop_train.push_back(gather_rows(hop, train_idx));
    }
    store = std::make_unique<loader::FeatureFileStore>(
        loader::FeatureFileStore::create(cfg.storage_dir, hop_train));
  }

  loader::BatchSource source(&train_x, train_y.data(), cfg.batch_size);
  Rng rng(cfg.seed);
  std::vector<nn::ParamSlot> params;
  model.collect_params(params);
  nn::Adam opt(params, cfg.lr, 0.9f, 0.999f, 1e-8f, cfg.weight_decay);

  // Checkpoint resume: restore state and burn the already-consumed epoch
  // shuffles so the schedule continues exactly where the saved run left
  // off (epoch orders are a pure function of (seed, epoch index)).
  std::size_t start_epoch = 1;
  if (!cfg.checkpoint_path.empty() &&
      checkpoint_exists(cfg.checkpoint_path)) {
    const auto meta = load_checkpoint(cfg.checkpoint_path, model, opt);
    start_epoch = meta.next_epoch;
    for (std::size_t e = 1; e < start_epoch; ++e) {
      (void)shuffler->epoch_order(train_idx.size(), rng);
    }
  }

  PpTrainResult result;
  result.train_rows = train_idx.size();
  result.row_bytes = pre.row_bytes();
  result.bytes_loaded_per_epoch = result.train_rows * result.row_bytes;

  // Assembles batch `k` according to the active mode; used directly for
  // synchronous modes and through the prefetcher for pipelined ones.
  const auto assemble = [&](std::size_t k) -> loader::MiniBatch {
    switch (cfg.mode) {
      case LoadingMode::kBaselinePerRow:
        return source.assemble_baseline(k);
      case LoadingMode::kStorageChunk: {
        // Read the batch as contiguous runs from the file store (chunk
        // reshuffling makes batches mostly contiguous on disk).
        loader::MiniBatch mb;
        const auto& order = source.epoch_order();
        const std::size_t lo = k * cfg.batch_size;
        const std::size_t hi =
            std::min(lo + cfg.batch_size, order.size());
        mb.indices.assign(order.begin() + lo, order.begin() + hi);
        mb.features = Tensor({mb.indices.size(), store->row_bytes() / 4});
        std::size_t i = 0;
        while (i < mb.indices.size()) {
          std::size_t run = 1;
          while (i + run < mb.indices.size() &&
                 mb.indices[i + run] == mb.indices[i + run - 1] + 1) {
            ++run;
          }
          Tensor piece({run, store->row_bytes() / 4});
          store->read_chunk(static_cast<std::size_t>(mb.indices[i]), run,
                            piece);
          std::memcpy(mb.features.row(i), piece.data(), piece.bytes());
          i += run;
        }
        mb.labels.resize(mb.indices.size());
        for (std::size_t j = 0; j < mb.indices.size(); ++j) {
          mb.labels[j] = train_y[static_cast<std::size_t>(mb.indices[j])];
        }
        return mb;
      }
      default:
        return source.assemble_fused(k);
    }
  };

  const bool pipelined = cfg.mode == LoadingMode::kPrefetch ||
                         cfg.mode == LoadingMode::kChunkPrefetch ||
                         cfg.mode == LoadingMode::kStorageChunk;

  for (std::size_t epoch = start_epoch; epoch <= cfg.epochs; ++epoch) {
    const auto t_epoch = Clock::now();
    source.set_epoch_order(
        shuffler->epoch_order(train_idx.size(), rng));
    EpochRecord rec;
    rec.epoch = epoch;
    double loss_sum = 0;
    std::size_t batches = 0;

    const auto process = [&](loader::MiniBatch& mb) {
      const auto t_fwd = Clock::now();
      Tensor logits = model.forward(mb.features, /*train=*/true);
      Tensor grad(logits.shape());
      loss_sum += cross_entropy(logits, mb.labels, grad);
      rec.forward_seconds += seconds_since(t_fwd);
      const auto t_bwd = Clock::now();
      opt.zero_grad();
      model.backward(grad);
      rec.backward_seconds += seconds_since(t_bwd);
      const auto t_opt = Clock::now();
      opt.step();
      rec.optimizer_seconds += seconds_since(t_opt);
      ++batches;
    };

    if (pipelined) {
      loader::PrefetchingLoader prefetcher(assemble, source.num_batches());
      loader::MiniBatch mb;
      while (true) {
        const auto t_load = Clock::now();
        if (!prefetcher.next(mb)) break;
        rec.data_loading_seconds += seconds_since(t_load);  // stall time only
        process(mb);
      }
    } else {
      for (std::size_t k = 0; k < source.num_batches(); ++k) {
        const auto t_load = Clock::now();
        loader::MiniBatch mb = assemble(k);
        rec.data_loading_seconds += seconds_since(t_load);
        process(mb);
      }
    }

    rec.epoch_seconds = seconds_since(t_epoch);
    rec.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0;

    if (epoch % cfg.eval_every == 0 || epoch == cfg.epochs) {
      rec.val_acc = evaluate_pp(model, pre, ds, ds.split.valid);
      rec.test_acc = evaluate_pp(model, pre, ds, ds.split.test);
    } else if (!result.history.epochs.empty()) {
      rec.val_acc = result.history.epochs.back().val_acc;
      rec.test_acc = result.history.epochs.back().test_acc;
    }
    result.history.epochs.push_back(rec);

    if (!cfg.checkpoint_path.empty() && cfg.checkpoint_every > 0 &&
        (epoch % cfg.checkpoint_every == 0 || epoch == cfg.epochs)) {
      CheckpointMeta meta;
      meta.next_epoch = epoch + 1;
      meta.step_count = opt.step_count();
      save_checkpoint(cfg.checkpoint_path, model, opt, meta);
    }
  }
  return result;
}

void quick_train(PpModel& model, const Preprocessed& pre,
                 const std::vector<std::int32_t>& labels, std::size_t epochs,
                 float lr, std::size_t batch_size, std::uint64_t seed) {
  if (labels.size() < pre.num_nodes()) {
    throw std::invalid_argument("quick_train: labels shorter than node set");
  }
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::Adam opt(slots, lr);
  Rng rng(seed);
  const std::size_t n = pre.num_nodes();
  std::vector<std::int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (std::size_t lo = 0; lo < n; lo += batch_size) {
      const std::size_t hi = std::min(n, lo + batch_size);
      const std::vector<std::int64_t> idx(order.begin() + lo,
                                          order.begin() + hi);
      const Tensor batch = pre.expanded_rows(idx);
      std::vector<std::int32_t> lbl(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) {
        lbl[i] = labels[static_cast<std::size_t>(idx[i])];
      }
      Tensor logits = model.forward(batch, true);
      Tensor grad({logits.rows(), logits.cols()});
      cross_entropy(logits, lbl, grad);
      for (auto& s : slots) s.grad->zero();
      model.backward(grad);
      opt.step();
    }
  }
}

}  // namespace ppgnn::core
