#include "core/sgc.h"

#include <stdexcept>

namespace ppgnn::core {

Sgc::Sgc(std::size_t feat_dim, std::size_t hops, std::size_t classes, Rng& rng)
    : feat_dim_(feat_dim), hops_(hops), linear_(feat_dim, classes, rng) {}

Tensor Sgc::forward(const Tensor& batch, bool train) {
  if (batch.cols() != (hops_ + 1) * feat_dim_) {
    throw std::invalid_argument("Sgc: batch width mismatch");
  }
  return linear_.forward(slice_hop(batch, hops_, feat_dim_), train);
}

void Sgc::backward(const Tensor& grad_logits) {
  (void)linear_.backward(grad_logits);
}

void Sgc::collect_params(std::vector<nn::ParamSlot>& out) {
  linear_.collect_params(out);
}

}  // namespace ppgnn::core
