// SIGN (Frasca et al., 2020): inception-style PP-GNN.
//
// Each hop gets its own linear branch F -> H (with ReLU + dropout); the
// branch outputs are concatenated and fed to an MLP head — l(.) learns one
// weight matrix per hop, o(.) is an MLP (Section 2.5).
#pragma once

#include <memory>
#include <vector>

#include "core/pp_model.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace ppgnn::core {

struct SignConfig {
  std::size_t feat_dim = 0;
  std::size_t hops = 3;
  std::size_t hidden = 512;
  std::size_t classes = 0;
  std::size_t mlp_layers = 3;  // paper: 3 layers, hidden 512
  float dropout = 0.5f;
};

class Sign : public PpModel {
 public:
  Sign(const SignConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& batch, bool train) override;
  void backward(const Tensor& grad_logits) override;
  void collect_params(std::vector<nn::ParamSlot>& out) override;
  void collect_linears(std::vector<nn::Linear*>& out) override;
  std::string name() const override { return "SIGN"; }
  std::size_t hops() const override { return cfg_.hops; }

 private:
  SignConfig cfg_;
  std::vector<std::unique_ptr<nn::Linear>> branches_;   // one per hop
  std::vector<std::unique_ptr<nn::ReLU>> branch_relus_;
  std::vector<std::unique_ptr<nn::Dropout>> branch_drops_;
  nn::Mlp head_;
  std::vector<Tensor> branch_outputs_;  // cached for backward split
};

}  // namespace ppgnn::core
