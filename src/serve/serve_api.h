// Serving API v2: the ServeRequest / ServeResponse envelope and the
// completion-queue delivery model.
//
// PR 1's public surface was submit(node) -> future<logits>: one node per
// call, a heap-allocated promise/future pair per request, full logits as
// the only answer shape, and no way for a caller to say how long the
// answer is worth waiting for — so the shed policy could only infer
// urgency from queue delay.  Four PRs of fleet machinery later the
// envelope fixes all four at once, and doubles as the wire format the
// ROADMAP's cross-process serving item needs:
//
//  * ServeRequest carries a caller-chosen id, MULTIPLE node ids (the
//    FleetManager splits them into ring-consistent sub-batches per
//    replica and merges the parts back), a priority class, an absolute
//    DEADLINE (steady_clock; the admission layer sheds work that can no
//    longer make it instead of computing answers nobody will read), and
//    a result mode — full logits or top-k (class, score) pairs, which is
//    what most callers actually want and is ~classes/k less data to move.
//
//  * ServeResponse carries a per-request status (Ok / Shed /
//    DeadlineExceeded / Draining / Error), the results, and per-stage
//    timings (admission wait, dispatch delay, compute) so a slow answer
//    is attributable to a stage, not just "the server".
//
//  * Delivery goes through a caller-owned CompletionQueue — poll/wait or
//    a callback — instead of one promise/future pair per node.  The
//    batcher's hot path holds one shared RequestState per ENVELOPE (an
//    n-node request costs one allocation, not n promise shared-states),
//    and the legacy submit(node) survives as a thin shim over a
//    single-node envelope.
//
// CompletionQueue lifetime rule: the queue must outlive every request
// submitted against it — responses are delivered from replica dispatcher
// threads, so destroy the queue only after the fleet/batcher is stopped
// or every submitted request has been reaped.  (The fleet's drain-on-stop
// makes "stop, then destroy" always safe.)
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

namespace ppgnn::serve {

// Two classes are enough for the canonical split: interactive traffic that
// must be answered (kHigh) vs. sheddable background traffic — prefetch,
// retries, speculative requests (kLow).  Classes take effect only with a
// shed budget: in backpressure mode there is no drop policy to back a
// strict-priority drain (queued kLow could starve forever under sustained
// kHigh load), so admission collapses to one FIFO.
enum class Priority : std::uint8_t { kHigh = 0, kLow = 1 };

// Per-request outcome.  kOk answered in time; kShed refused or dropped by
// admission control (retriable — back off and resubmit); kDeadlineExceeded
// missed the caller's deadline (shed before compute, or answered late — a
// late answer still carries results, a pre-compute shed does not); kDraining
// submitted to a fleet that is stopped or empty (re-route at a higher
// level); kError a backend failure (bad node id etc.), `error` holds it;
// kQuotaExceeded refused by the tenant's own token-bucket contract
// (src/tenancy/) — DISTINCT from kShed: shed means the fleet is out of
// capacity (scale up / back off briefly), quota-refused means the caller is
// out of contract (immediate resubmit will be refused again until the
// bucket refills).  New values append at the end: the numeric value is the
// wire encoding (rpc/wire.h) and existing values must never renumber.
enum class ServeStatus : std::uint8_t {
  kOk,
  kDraining,
  kShed,
  kDeadlineExceeded,
  kError,
  kQuotaExceeded
};
const char* serve_status_name(ServeStatus s);
// Envelope status merge: when parts disagree, the worst part wins by
// SEVERITY (kOk < kDraining < kShed < kQuotaExceeded < kDeadlineExceeded
// < kError) — an explicit rank, no longer the enum's numeric order, since
// kQuotaExceeded appended after kError for wire stability.
ServeStatus worse_status(ServeStatus a, ServeStatus b);

enum class ResultMode : std::uint8_t { kFullLogits, kTopK };

struct TopKEntry {
  std::int32_t cls = 0;
  float score = 0.f;
};

// Top-k (class, score) pairs of one logits row, scores descending, ties
// broken toward the lower class id.  Deterministic, so top-k answers are
// as reproducible as the logits they summarize.
std::vector<TopKEntry> topk_of_row(const float* row, std::size_t n,
                                   std::size_t k);

struct ServeRequest {
  // Caller-chosen correlation id, echoed in the response.
  std::uint64_t id = 0;
  // One or more node ids; the fleet splits them into per-replica
  // sub-batches (ring-consistent under cache_affinity) and merges.
  std::vector<std::int64_t> nodes;
  Priority priority = Priority::kHigh;
  // Which tenant this request is billed to (src/tenancy/).  0 — the
  // default tenant — keeps untenanted callers on the pre-tenancy behavior.
  // Travels on the wire from protocol v2 and through traces/fleetsim.
  std::uint32_t tenant = 0;
  // Absolute deadline; max() (the default) means none.  Use deadline_in()
  // for the common "now + budget" form.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  ResultMode mode = ResultMode::kFullLogits;
  std::size_t topk = 3;  // kTopK only

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

inline std::chrono::steady_clock::time_point deadline_in(
    std::chrono::steady_clock::duration budget) {
  return std::chrono::steady_clock::now() + budget;
}

// Where one answer's time went.  For a multi-node envelope each field is
// the max over parts — the critical path, since parts complete in
// parallel across replicas.  A part shed before dispatch reports its
// admission wait and zeros elsewhere (time spent queued is real latency
// even when the answer never happened — see ServerStats).
struct StageTimings {
  double admission_wait_us = 0;  // enqueue -> picked into a batch
  double dispatch_delay_us = 0;  // batch close -> compute starts
  double compute_us = 0;         // feature gather + forward
  double total_us() const {
    return admission_wait_us + dispatch_delay_us + compute_us;
  }
};

struct ServeResponse {
  std::uint64_t id = 0;
  ServeStatus status = ServeStatus::kOk;
  // kFullLogits: logits[i] is nodes[i]'s row; empty for parts that were
  // shed.  kTopK: topk[i] likewise.
  std::vector<std::vector<float>> logits;
  std::vector<std::vector<TopKEntry>> topk;
  StageTimings timings;
  // kError only: the backend exception, preserved so legacy shims (and
  // callers that want the real type) can rethrow it.
  std::exception_ptr error;
};

// Caller-owned delivery endpoint.  Two modes, fixed at construction:
//
//  * poll/wait (default): responses queue internally; drain them with
//    poll() (non-blocking) or wait_for().
//  * callback: each response is handed to the callback on the replica
//    dispatcher thread that finished its last part.  Keep callbacks tiny
//    (counters, handoff) — they run inside the serving hot path — and
//    never call back into the fleet from one (self-deadlock).
//
// Thread-safe on both sides.  See the header comment for the lifetime
// rule (outlive every submitted request).
class CompletionQueue {
 public:
  using Callback = std::function<void(ServeResponse&&)>;

  CompletionQueue() = default;
  explicit CompletionQueue(Callback cb) : cb_(std::move(cb)) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  // Producer side (RequestState).
  void deliver(ServeResponse&& r);

  // Non-blocking pop; false when nothing is ready.
  bool poll(ServeResponse* out);
  // Blocking pop with timeout; false on timeout.
  bool wait_for(ServeResponse* out, std::chrono::milliseconds timeout);

  std::size_t ready() const;      // responses queued, not yet popped
  std::size_t delivered() const;  // responses ever delivered

 private:
  Callback cb_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ServeResponse> queue_;
  std::size_t delivered_ = 0;
};

// Shared merge/delivery state of one in-flight envelope: the single
// allocation the v2 hot path makes per request.  Each queued part holds a
// shared_ptr to it; finish_part() folds the part's result/status/timings
// in, and the LAST part to finish delivers the merged response — so parts
// may complete on different replica dispatchers in any order.
class RequestState {
 public:
  // Delivery to a caller-owned queue (the queue must outlive delivery)...
  RequestState(ServeRequest req, CompletionQueue* cq);
  // ...or straight to a sink (the legacy future shim's path).
  RequestState(ServeRequest req, CompletionQueue::Callback sink);

  const ServeRequest& request() const { return req_; }
  Priority priority() const { return req_.priority; }
  std::chrono::steady_clock::time_point deadline() const {
    return req_.deadline;
  }
  std::size_t parts() const { return req_.nodes.size(); }

  // Resolves part `slot` (index into request().nodes).  `row` may be null
  // for failed parts; a kDeadlineExceeded part WITH a row is a late
  // answer (results kept, miss flagged).  Thread-safe; each slot must be
  // finished exactly once.
  void finish_part(std::size_t slot, ServeStatus status, const float* row,
                   std::size_t cols, const StageTimings& t,
                   std::exception_ptr error = nullptr);

 private:
  ServeRequest req_;
  CompletionQueue* cq_ = nullptr;
  CompletionQueue::Callback sink_;
  std::mutex mu_;
  ServeResponse resp_;
  std::size_t remaining_;
};

}  // namespace ppgnn::serve
