#include "serve/router.h"

#include <atomic>
#include <stdexcept>

namespace ppgnn::serve {

const char* policy_name(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kRoundRobin:
      return "round_robin";
    case RoutingPolicy::kLeastLoaded:
      return "least_loaded";
    case RoutingPolicy::kCacheAffinity:
      return "cache_affinity";
  }
  return "?";
}

bool parse_policy(const std::string& name, RoutingPolicy* out) {
  if (name == "round_robin") {
    *out = RoutingPolicy::kRoundRobin;
  } else if (name == "least_loaded") {
    *out = RoutingPolicy::kLeastLoaded;
  } else if (name == "cache_affinity") {
    *out = RoutingPolicy::kCacheAffinity;
  } else {
    return false;
  }
  return true;
}

std::size_t affinity_replica(std::int64_t node, std::size_t replicas) {
  // splitmix64 finalizer: node ids are often dense/sequential, and a plain
  // mod would stripe adjacent ids across replicas — the opposite of a
  // stable shard.  The mix decorrelates placement from id locality (node
  // popularity is already uncorrelated with id order, see workload.h).
  std::uint64_t z = static_cast<std::uint64_t>(node) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % replicas);
}

namespace {

class RoundRobinRouter : public Router {
 public:
  explicit RoundRobinRouter(std::size_t replicas) : replicas_(replicas) {}
  std::size_t route(std::int64_t, const QueueDepthFn&) override {
    return next_.fetch_add(1, std::memory_order_relaxed) % replicas_;
  }
  RoutingPolicy policy() const override {
    return RoutingPolicy::kRoundRobin;
  }

 private:
  std::size_t replicas_;
  std::atomic<std::size_t> next_{0};
};

class LeastLoadedRouter : public Router {
 public:
  explicit LeastLoadedRouter(std::size_t replicas) : replicas_(replicas) {}
  std::size_t route(std::int64_t, const QueueDepthFn& queue_depth) override {
    // Ties break to the lowest index; the scan is a snapshot, not a
    // transaction — two concurrent routes may pick the same replica, which
    // join-the-shortest-queue tolerates by construction.
    std::size_t best = 0;
    std::size_t best_depth = queue_depth(0);
    for (std::size_t i = 1; i < replicas_; ++i) {
      const std::size_t d = queue_depth(i);
      if (d < best_depth) {
        best = i;
        best_depth = d;
      }
    }
    return best;
  }
  RoutingPolicy policy() const override {
    return RoutingPolicy::kLeastLoaded;
  }

 private:
  std::size_t replicas_;
};

class CacheAffinityRouter : public Router {
 public:
  explicit CacheAffinityRouter(std::size_t replicas) : replicas_(replicas) {}
  std::size_t route(std::int64_t node, const QueueDepthFn&) override {
    return affinity_replica(node, replicas_);
  }
  RoutingPolicy policy() const override {
    return RoutingPolicy::kCacheAffinity;
  }

 private:
  std::size_t replicas_;
};

}  // namespace

std::unique_ptr<Router> make_router(RoutingPolicy p, std::size_t replicas) {
  if (replicas == 0) {
    throw std::invalid_argument("make_router: zero replicas");
  }
  switch (p) {
    case RoutingPolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>(replicas);
    case RoutingPolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedRouter>(replicas);
    case RoutingPolicy::kCacheAffinity:
      return std::make_unique<CacheAffinityRouter>(replicas);
  }
  throw std::invalid_argument("make_router: unknown policy");
}

}  // namespace ppgnn::serve
