#include "serve/router.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace ppgnn::serve {

const char* policy_name(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kRoundRobin:
      return "round_robin";
    case RoutingPolicy::kLeastLoaded:
      return "least_loaded";
    case RoutingPolicy::kCacheAffinity:
      return "cache_affinity";
  }
  return "?";
}

bool parse_policy(const std::string& name, RoutingPolicy* out) {
  if (name == "round_robin") {
    *out = RoutingPolicy::kRoundRobin;
  } else if (name == "least_loaded") {
    *out = RoutingPolicy::kLeastLoaded;
  } else if (name == "cache_affinity") {
    *out = RoutingPolicy::kCacheAffinity;
  } else {
    return false;
  }
  return true;
}

std::uint64_t splitmix64(std::uint64_t x) {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

HashRing::HashRing(const std::vector<std::uint64_t>& member_generations)
    : num_members_(member_generations.size()) {
  points_.reserve(num_members_ * kVirtualNodes);
  for (std::size_t m = 0; m < num_members_; ++m) {
    // A member's points are a function of its generation id alone (vnode
    // index folded in via a second mix round), so they are identical in
    // every membership that contains the member — the resize-stability
    // invariant.
    const std::uint64_t g = member_generations[m];
    for (std::size_t v = 0; v < kVirtualNodes; ++v) {
      const std::uint64_t point =
          splitmix64(splitmix64(g) ^ (0x517cc1b727220a95ULL * (v + 1)));
      points_.emplace_back(point, static_cast<std::uint32_t>(m));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::lookup(std::int64_t node) const {
  if (points_.empty()) {
    throw std::logic_error("HashRing::lookup on an empty ring");
  }
  const std::uint64_t h = splitmix64(static_cast<std::uint64_t>(node));
  // First point clockwise (>= h), wrapping to the ring's start.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& p, std::uint64_t v) {
        return p.first < v;
      });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

namespace {

class RoundRobinRouter : public Router {
 public:
  std::size_t route(std::int64_t, const RouteTargets& t) override {
    return next_.fetch_add(1, std::memory_order_relaxed) % t.count;
  }
  RoutingPolicy policy() const override {
    return RoutingPolicy::kRoundRobin;
  }

 private:
  std::atomic<std::size_t> next_{0};
};

class LeastLoadedRouter : public Router {
 public:
  std::size_t route(std::int64_t, const RouteTargets& t) override {
    // Ties break to the lowest index; the scan is a snapshot, not a
    // transaction — two concurrent routes may pick the same replica, which
    // join-the-shortest-queue tolerates by construction.
    std::size_t best = 0;
    std::size_t best_depth = (*t.queue_depth)(0);
    for (std::size_t i = 1; i < t.count; ++i) {
      const std::size_t d = (*t.queue_depth)(i);
      if (d < best_depth) {
        best = i;
        best_depth = d;
      }
    }
    return best;
  }
  RoutingPolicy policy() const override {
    return RoutingPolicy::kLeastLoaded;
  }
};

class CacheAffinityRouter : public Router {
 public:
  std::size_t route(std::int64_t node, const RouteTargets& t) override {
    return t.ring->lookup(node);
  }
  RoutingPolicy policy() const override {
    return RoutingPolicy::kCacheAffinity;
  }
};

}  // namespace

std::unique_ptr<Router> make_router(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RoutingPolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedRouter>();
    case RoutingPolicy::kCacheAffinity:
      return std::make_unique<CacheAffinityRouter>();
  }
  throw std::invalid_argument("make_router: unknown policy");
}

std::vector<SubBatch> split_by_ring(const std::vector<std::int64_t>& nodes,
                                    const std::vector<std::uint32_t>& slots,
                                    const HashRing& ring) {
  std::vector<SubBatch> out;
  // Envelopes are small (a handful of nodes) and member counts are single
  // digits: a linear member scan beats a hash map here.
  for (const std::uint32_t slot : slots) {
    const std::size_t member = ring.lookup(nodes[slot]);
    SubBatch* group = nullptr;
    for (auto& g : out) {
      if (g.member == member) {
        group = &g;
        break;
      }
    }
    if (!group) {
      out.push_back(SubBatch{member, {}});
      group = &out.back();
    }
    group->slots.push_back(slot);
  }
  return out;
}

}  // namespace ppgnn::serve
