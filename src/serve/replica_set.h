// ReplicaSet: N independent serving pipelines behind one submit() API.
//
// PR 1's serving tier was one InferenceSession behind one dispatcher
// thread — throughput capped by a single forward pipeline, overload
// expressed as unbounded queue delay.  A ReplicaSet scales past both:
// each replica owns a full pipeline (its own model copy, its own
// FeatureSource — typically a CachedSource whose RowCache is private, so
// cache_affinity routing can shard the key space — its own MicroBatcher
// and dispatcher thread, its own ServerStats), and a Router picks the
// replica per request.  Replicas share nothing mutable, so there is no
// cross-replica lock on the request path; the only shared state is the
// router's round-robin counter.
//
// Determinism survives replication: every replica loads bit-identical
// weights (make_replica_sessions) and every kernel on the inference path
// is order-fixed, so which replica answers never changes the answer —
// test_replica_set proves N-replica output equals single-session output
// bit for bit, per policy.
//
// Admission control composes per replica: each MicroBatcher applies the
// shed budget to its own queue.  That is deliberate — with cache_affinity
// routing a single hot shard can be overloaded while its siblings idle,
// and shedding the hot shard (rather than a global verdict) is what keeps
// the other shards' latency flat.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/router.h"
#include "serve/server_stats.h"

namespace ppgnn::serve {

struct ReplicaSetConfig {
  RoutingPolicy policy = RoutingPolicy::kRoundRobin;
  // Applied to every replica's MicroBatcher (including shed_budget).
  MicroBatchConfig batch;
  // Serving precision the fleet was built for.  Sessions are prepared by
  // make_replica_sessions (which quantizes and shares weights for kInt8);
  // the constructor rejects a fleet whose sessions disagree with this
  // knob, so a config/deployment mismatch fails loudly at build time
  // rather than as a silent accuracy or throughput surprise.
  Precision precision = Precision::kFp32;
};

// Point-in-time view of one replica, for reporting.
struct ReplicaSnapshot {
  std::size_t routed = 0;       // requests the router sent here
  std::size_t queue_depth = 0;  // admitted, not yet dispatched
  BatchCounters batch;
  AdmissionCounters admission;
  LatencySummary latency;
};

class ReplicaSet {
 public:
  // One session per replica; sessions must be non-null and should hold
  // identical weights (see make_replica_sessions) unless the caller
  // wants a heterogeneous fleet on purpose.
  ReplicaSet(std::vector<std::unique_ptr<InferenceSession>> sessions,
             const ReplicaSetConfig& cfg);
  ~ReplicaSet();  // stop()

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  // Routes and submits.  Semantics follow MicroBatcher: with shedding
  // disabled try_submit blocks for space and always accepts; with shedding
  // enabled it returns {accepted = false} on overload of the routed
  // replica.
  Admission try_submit(std::int64_t node, Priority pri = Priority::kHigh);
  // Throwing form: RejectedError on refusal (shedding enabled only).
  std::future<std::vector<float>> submit(std::int64_t node,
                                         Priority pri = Priority::kHigh);
  std::vector<float> infer_blocking(std::int64_t node);

  // Stops every replica's dispatcher after draining admitted work.
  // Idempotent; submit() after stop() throws.
  void stop();

  std::size_t num_replicas() const { return replicas_.size(); }
  RoutingPolicy policy() const { return router_->policy(); }
  Precision precision() const {
    return replicas_.front()->session->precision();
  }

  ReplicaSnapshot replica_snapshot(std::size_t i) const;
  const InferenceSession& replica_session(std::size_t i) const {
    return *replicas_[i]->session;
  }

  // Fleet-level stats: latency percentiles over the union of every
  // replica's raw samples (merging summaries would be wrong), admission
  // counters summed.
  LatencySummary aggregate_latency() const;
  AdmissionCounters aggregate_admission() const;
  // Dispatched batches and their mean size, summed across replicas.
  std::size_t aggregate_batches() const;
  double aggregate_mean_batch_size() const;

 private:
  struct Replica {
    std::unique_ptr<InferenceSession> session;
    std::unique_ptr<ServerStats> stats;
    std::unique_ptr<MicroBatcher> batcher;
    std::atomic<std::size_t> routed{0};
  };

  // Pools every replica's ServerStats into `into`.
  void merge_stats(ServerStats& into) const;

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<Router> router_;
};

}  // namespace ppgnn::serve
