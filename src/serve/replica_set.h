// FleetManager: a lifecycle-managed, autoscaling serving tier.
//
// PR 2's ReplicaSet ran N full pipelines behind one submit() — but N was
// fixed at construction, so the fleet could not absorb the load swings the
// admission layer measures: at 2x saturation it shed most of the excess
// instead of adding capacity, and at idle it burned N dispatcher threads.
// This refactor makes membership dynamic while keeping the hot path as
// lock-free as the fixed fleet was.
//
// Structure:
//
//  * ReplicaHandle — one replica: its InferenceSession, MicroBatcher,
//    ServerStats and routing counter, plus a fleet-unique *generation id*
//    (never reused; the identity stats aggregation and the consistent-hash
//    ring key on) and a lifecycle state:
//
//        Warming ----> Active ----> Draining ----> Retired
//        (built +      (published,  (unpublished;  (drained, joined;
//         cache-warmed  routable)    admitted work  stats folded into
//         off-thread)                 completes,     the fleet history)
//                                     new submits
//                                     re-route)
//
//  * Membership — an immutable snapshot (epoch, active handles, hash
//    ring).  submit() loads the current snapshot via one atomic
//    shared_ptr load, routes against it, and never takes the admin lock:
//    scaling reconfigures the fleet by *publishing a new snapshot*, not by
//    mutating the one in flight.  A submitter racing a retirement may
//    still hit the draining replica's batcher; the batcher bounces it
//    with RejectReason::kDraining and try_submit transparently re-routes
//    against the fresh snapshot (so no request is ever lost to a resize —
//    test_autoscale hammers this with 8 threads).
//
//  * Scale-up — the controller (or a manual scale_up() call) builds a new
//    handle from the FleetBuilder off the submit path: model weights come
//    from the shared checkpoint (int8: the builder's shared quantized
//    block — a spawn costs no weight copies), and before the replica goes
//    Active its private cache is pre-warmed with the hottest rows the new
//    ring assigns to it, exported as encoded bytes from its peers' caches
//    (CachedSource::export_hot_payloads / admit_payloads) — a cache-cold
//    replica under cache_affinity would otherwise answer its whole shard
//    from the store for its first window.
//
//  * Scale-down — the youngest Active replica is marked Draining and
//    unpublished (new epoch), then its batcher drains: everything already
//    admitted completes (kHigh work is never dropped by a resize —
//    test_autoscale proves bit-identical logits), racing submits re-route,
//    and the dispatcher joins before the handle retires.
//
//  * Autoscaling — with FleetConfig::autoscale.enabled, a controller
//    thread samples the fleet's windowed signals (shed rate, queue delay,
//    queue depth — see ServerStats::window) every tick and applies
//    AutoscalePolicy's hysteresis (autoscale.h) between min/max bounds.
//
// Stats survive membership churn: every handle ever created stays in the
// fleet's history, and aggregation folds each *generation* exactly once
// (ServerStats::merge_once), so a retired replica's latencies keep
// counting and a same-slot successor can never double-count them.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/autoscale.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/router.h"
#include "serve/serve_api.h"
#include "serve/server_stats.h"
#include "tenancy/admission.h"
#include "tenancy/tenant.h"

// The cross-process bridge (src/rpc/remote_replica.h).  Forward-declared:
// the serve layer's compile-time surface stays transport-free, and only
// replica_set.cpp links the rpc types in.  (RpcStats is declared-only too:
// aggregate_rpc_stats() callers include rpc/buffer.h themselves.)
namespace ppgnn::rpc {
class RemoteReplica;
struct RpcStats;
}

namespace ppgnn::serve {

enum class ReplicaState : std::uint8_t {
  kWarming,
  kActive,
  kDraining,
  kRetired
};
const char* replica_state_name(ReplicaState s);

struct FleetConfig {
  RoutingPolicy policy = RoutingPolicy::kRoundRobin;
  // Applied to every replica's MicroBatcher (including shed_budget).
  MicroBatchConfig batch;
  // Serving precision the fleet was built for.  Sessions are prepared by
  // FleetBuilder (which quantizes and shares weights for kInt8); the
  // constructor rejects a fleet whose sessions disagree with this knob, so
  // a config/deployment mismatch fails loudly at build time rather than as
  // a silent accuracy or throughput surprise.
  Precision precision = Precision::kFp32;
  // Signal-driven scale-up/down (requires the FleetBuilder constructor —
  // a fleet built from pre-made sessions has no recipe to spawn more).
  AutoscaleConfig autoscale;
  // Rows to pre-warm into a spawned replica's cache from its peers
  // (0 disables).  Only applies when replicas serve through CachedSource.
  std::size_t warm_keys = 512;
  // Span of the per-replica sliding-window gauges (autoscale signals).
  std::chrono::milliseconds stats_window{500};
  // Time source for event timestamps, windowed gauges and autoscale ticks;
  // null = the real steady clock.  Propagated into every replica's
  // ServerStats and (unless batch.clock is set explicitly) MicroBatcher,
  // so one knob moves the whole fleet's policy-visible time.
  const Clock* clock = nullptr;
  // Tenant contract table (src/tenancy/).  When set, the v2 envelope
  // submit() enforces contracts at the fleet front — priority ceiling
  // clamp, default deadline stamp, token-bucket quota (refusals answer
  // kQuotaExceeded without ever reaching a replica) — and every replica's
  // MicroBatcher composes batches by DWRR weight (propagated via
  // batch.tenants unless the caller set that explicitly).  Null keeps the
  // untenanted behavior.  The registry must outlive the fleet.
  const tenancy::TenantRegistry* tenants = nullptr;
};

// Point-in-time view of one replica, for reporting.
struct ReplicaSnapshot {
  std::uint64_t generation = 0;
  ReplicaState state = ReplicaState::kActive;
  std::size_t routed = 0;       // requests the router sent here
  std::size_t queue_depth = 0;  // admitted, not yet dispatched
  BatchCounters batch;
  AdmissionCounters admission;
  LatencySummary latency;
};

// One membership change, for the replica-count timeline the serving bench
// records and the warm-vs-cold measurement.
struct FleetEvent {
  double t_seconds = 0;  // since fleet construction
  std::uint64_t epoch = 0;
  bool spawned = false;  // false = retired
  std::uint64_t generation = 0;
  std::size_t replicas_after = 0;
  std::size_t warmed_keys = 0;  // spawn events: rows pre-admitted
  // Spawn events: the replica's cache hit rate over its first
  // stats-window of live traffic (cold spawns benchmark the warmup).
  // Negative until measured by the controller.
  double first_window_hit_rate = -1.0;
  // Retire events: hot rows the Draining replica handed to its ring
  // successors before retiring (the inverse of spawn warm-up), and the
  // successors' pooled cache hit rate over the first stats-window after
  // the handoff (negative until measured by the controller).
  std::size_t handoff_keys = 0;
  double successor_first_window_hit_rate = -1.0;
};

// Recipe for one replica living in another process: spawn (or connect to)
// a replica server and return its handle, or null on failure.  `ordinal`
// is the fleet's never-reused generation id — use it for unique socket
// paths / log names.  See rpc::spawn_replica_process.
using RemoteSpawnFn =
    std::function<std::shared_ptr<rpc::RemoteReplica>(std::size_t ordinal)>;

class FleetManager {
 public:
  // Dynamic fleet: `builder` is the recipe for the initial
  // `initial_replicas` sessions and for every later scale-up.
  FleetManager(FleetBuilder builder, std::size_t initial_replicas,
               const FleetConfig& cfg);
  // Fixed fleet over pre-built sessions (no spawn recipe): scale_up() and
  // autoscaling are unavailable, scale_down() still works.  Sessions must
  // be non-null and should hold identical weights unless the caller wants
  // a heterogeneous fleet on purpose.
  FleetManager(std::vector<std::unique_ptr<InferenceSession>> sessions,
               const FleetConfig& cfg);
  // Cross-process fleet: every replica is a separate server process (or a
  // remote endpoint) reached through ppgnn-wire; `spawn` is the recipe for
  // the initial replicas and every later scale-up, so autoscaling works.
  // Same submit()/scale/stats surface, with three remote-specific edges:
  //
  //  * a replica whose transport fails (crash, kill -9, network) is
  //    removed from the membership and its in-flight parts re-route
  //    against the fresh snapshot — possibly recomputed, never lost and
  //    never double-answered;
  //  * scale_down/stop retire a process replica by SIGTERM (the server
  //    drains: admitted work answers, new work bounces kDraining);
  //  * per-replica batch counters live in the server process, so
  //    aggregate_batches()/mean_batch_size() cover local replicas only.
  FleetManager(RemoteSpawnFn spawn, std::size_t initial_replicas,
               const FleetConfig& cfg);
  ~FleetManager();  // stop()

  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  // --- Serving API v2 (serve_api.h) --------------------------------------
  // Routes the envelope against the current membership snapshot — under
  // cache_affinity each node is split to its ring home (split_by_ring:
  // ring-consistent sub-batches, so a request spanning shards still hits
  // every shard's warm cache); other policies take one routing decision
  // for the whole envelope — submits the per-replica sub-batches, and
  // delivers ONE merged ServeResponse to `cq` when the envelope's last
  // part resolves.  Admission outcomes never throw: draining bounces
  // re-route transparently against a fresh snapshot, overload sheds the
  // affected parts (status kShed), a blown deadline answers
  // kDeadlineExceeded, and a stopped fleet answers kDraining — every
  // submitted envelope produces exactly one response (test_serve_api
  // hammers this across resize storms and loses zero completions).
  // Throws std::invalid_argument only for an empty envelope.
  void submit(ServeRequest req, CompletionQueue& cq);
  // Blocking convenience over a private queue (tests, simple clients).
  ServeResponse infer_request(ServeRequest req);

  // --- PR-1 future API (thin shims over single-node envelopes) -----------
  // Semantics follow MicroBatcher: with shedding disabled try_submit
  // blocks for space and always accepts; with shedding enabled it returns
  // {accepted = false, reason = kOverload} on overload of the routed
  // replica.  Draining refusals are retried internally against a fresh
  // snapshot and never surface.
  Admission try_submit(std::int64_t node, Priority pri = Priority::kHigh);
  // Throwing form: RejectedError on refusal (shedding enabled only).
  std::future<std::vector<float>> submit(std::int64_t node,
                                         Priority pri = Priority::kHigh);
  std::vector<float> infer_blocking(std::int64_t node);

  // Spawns one replica (Warming -> Active; cache-warmed from peers) and
  // publishes the grown membership.  Returns the new generation id.
  // Throws without a FleetBuilder.  Ignores autoscale bounds — bounds
  // belong to the policy, not the mechanism.
  std::uint64_t scale_up();
  // Retires the youngest Active replica: unpublishes it, drains admitted
  // work to completion, joins its dispatcher.  Returns its generation id.
  // Throws when only one replica remains.
  std::uint64_t scale_down();

  // Stops the controller and every replica's dispatcher after draining
  // admitted work.  Idempotent; submit() after stop() throws.
  void stop();

  std::size_t num_replicas() const;  // Active replicas
  std::uint64_t epoch() const;
  RoutingPolicy policy() const { return router_->policy(); }
  Precision precision() const { return precision_; }
  const FleetConfig& config() const { return cfg_; }

  // The replica the current ring assigns `node` to — the cache_affinity
  // home.  Index into the current membership (matches replica_snapshot).
  std::size_t home_replica(std::int64_t node) const;

  // Snapshot of active replica `i` (membership order).
  ReplicaSnapshot replica_snapshot(std::size_t i) const;
  const InferenceSession& replica_session(std::size_t i) const;
  // Every replica ever, retired included — the full fleet history.
  std::vector<ReplicaSnapshot> fleet_snapshot() const;
  std::vector<FleetEvent> events() const;

  // Fleet-level stats over every generation ever admitted to the fleet
  // (retired replicas keep counting — a resize must not launder history):
  // latency percentiles over the union of raw samples (merging summaries
  // would be wrong), admission counters summed.
  LatencySummary aggregate_latency() const;
  AdmissionCounters aggregate_admission() const;
  // Per-stage means (admission wait / dispatch delay / compute, plus the
  // shed-wait column) and deadline misses, pooled over every generation.
  StageGauges aggregate_stages() const;
  std::size_t aggregate_deadline_missed() const;
  // Per-tenant rows pooled over every generation PLUS the fleet front's
  // quota ledger (quota refusals happen before any replica is chosen, so
  // only the front recorder has them).  Rows sorted by tenant id.  Empty
  // for untenanted fleets that never recorded per-tenant activity.
  std::vector<TenantStat> aggregate_tenants() const;
  // Envelopes refused by tenant token buckets (kQuotaExceeded), fleet-wide.
  std::size_t quota_refused_total() const;
  // Dispatched batches and their mean size, summed across replicas.
  std::size_t aggregate_batches() const;
  double aggregate_mean_batch_size() const;
  // Cross-process transport counters summed over every remote replica ever
  // spawned (rpc/buffer.h; serve_cli --remote-replicas and bench section 7
  // report the derived frames-per-writev / pool-hit-rate / allocs-per-frame
  // ratios).  All-zero for fleets with no remote replicas.
  rpc::RpcStats aggregate_rpc_stats() const;

  // Windowed autoscale signals, pooled across active replicas (what the
  // controller feeds the policy; exposed for status lines and tests).
  FleetSignals signals() const;
  // Pooled window counters + admitted-latency percentiles across active
  // replicas — serve_cli's per-window status line.
  WindowStats window_stats() const;
  // Admitted-but-unanswered across the fleet (in-service included).
  std::size_t total_queue_depth() const;
  // Active replicas with nothing queued AND nothing in service — burning
  // a dispatcher for no work.  The over-provisioning metric the staged
  // ramp integrates into idle replica-seconds.
  std::size_t idle_replicas() const;

 private:
  struct ReplicaHandle {
    std::uint64_t generation = 0;
    std::atomic<ReplicaState> state{ReplicaState::kWarming};
    // Exactly one of {session+batcher, remote} is set: a local replica
    // owns its pipeline, a remote one owns the bridge to its process.
    // (shared_ptr so the incomplete rpc type needs no header here.)
    std::unique_ptr<InferenceSession> session;
    std::unique_ptr<ServerStats> stats;
    std::unique_ptr<MicroBatcher> batcher;
    std::shared_ptr<rpc::RemoteReplica> remote;
    std::atomic<std::size_t> routed{0};
    // Warm-up measurement bookkeeping (dynamically spawned replicas only).
    bool spawned_dynamic = false;
    std::size_t warmed_keys = 0;
    FeatureCacheStats cache_at_activation;
    std::chrono::steady_clock::time_point activated_at{};
    bool first_window_measured = false;
    // Rows handed to ring successors at retirement (scale_down).
    std::size_t handoff_keys = 0;
  };

  struct Membership {
    std::uint64_t epoch = 0;
    std::vector<std::shared_ptr<ReplicaHandle>> replicas;  // Active only
    HashRing ring;  // over the replicas' generations, in vector order
  };

  void init_config(const FleetConfig& cfg);
  void init(std::vector<std::unique_ptr<InferenceSession>> sessions,
            const FleetConfig& cfg);
  // Places envelope parts `slots` on replicas (ring split under
  // cache_affinity), re-routing draining bounces until every part is
  // admitted or terminally resolved.
  void place_parts(const std::shared_ptr<RequestState>& state,
                   std::vector<std::uint32_t> slots);
  // Ships one sub-batch to a remote replica; its fail path (transport
  // loss, draining server) removes the replica and re-routes through
  // place_parts.
  void submit_remote(const std::shared_ptr<ReplicaHandle>& h,
                     const std::shared_ptr<RequestState>& state,
                     std::vector<std::uint32_t> slots);
  // Crash detector's acting half: unpublish `h` (fresh epoch, fresh ring)
  // so re-routes cannot pick it again.  No-op for replicas that are not
  // Active — a draining/retiring replica is already unpublished by the
  // scaler, and taking admin_mu_ for it from a client I/O thread could
  // deadlock against the retirement that is joining that very thread.
  void remove_dead_replica(const std::shared_ptr<ReplicaHandle>& h);
  std::shared_ptr<ReplicaHandle> make_handle(
      std::unique_ptr<InferenceSession> session);
  std::shared_ptr<ReplicaHandle> make_remote_handle(
      std::shared_ptr<rpc::RemoteReplica> remote);
  // Routing load signal: local queue depth, or in-flight wire calls for a
  // remote replica.
  static std::size_t depth_of(const ReplicaHandle& h);
  static HashRing ring_over(
      const std::vector<std::shared_ptr<ReplicaHandle>>& replicas);
  // Loads the current snapshot; throws after stop().
  std::shared_ptr<const Membership> current() const;
  ReplicaSnapshot snapshot_of(const ReplicaHandle& h) const;
  // Pre-warms `fresh`'s cache from its peers under `next_ring` ownership;
  // returns rows admitted.  Caller holds admin_mu_.
  std::size_t warm_from_peers(ReplicaHandle& fresh,
                              const Membership& current_members,
                              const HashRing& next_ring);
  // The inverse at retirement: exports `victim`'s hot rows and admits each
  // into the cache of the ring successor `next` assigns it to; returns
  // rows admitted and queues the successor first-window measurement.
  // Caller holds admin_mu_.
  std::size_t handoff_to_successors(ReplicaHandle& victim,
                                    const Membership& next);
  void record_event(bool spawned, const ReplicaHandle& h,
                    std::uint64_t epoch, std::size_t replicas_after);
  // Fills first_window_hit_rate for spawned replicas one stats-window
  // after activation.  Controller-thread only.
  void measure_first_windows();
  // Fills successor_first_window_hit_rate for retire events one
  // stats-window after the handoff.  Controller-thread only.
  void measure_handoff_windows();
  void controller_loop();

  FleetConfig cfg_;
  Precision precision_ = Precision::kFp32;
  std::unique_ptr<FleetBuilder> builder_;  // null for fixed fleets
  RemoteSpawnFn remote_spawn_;             // set only for remote fleets
  std::unique_ptr<Router> router_;
  // Tenancy front gate (null unless cfg_.tenants): token buckets charged
  // per v2 envelope, and the front-side recorder for quota refusals —
  // refused envelopes never touch a replica, so their counters can only
  // live here.  Folded into the aggregates under a reserved generation.
  std::unique_ptr<tenancy::TenantAdmission> admission_;
  std::unique_ptr<ServerStats> front_stats_;

  // Swapped atomically via the std::atomic_load/atomic_store(shared_ptr*)
  // free functions rather than std::atomic<std::shared_ptr>: identical
  // semantics for this pattern (whole-pointer load/store, no CAS loops),
  // but libstdc++'s _Sp_atomic implements its internal lock as an
  // unannotated bit-spinlock that ThreadSanitizer cannot see, so the
  // tsan-autoscale CI leg would drown in false positives; the free
  // functions synchronize through a real mutex pool TSan understands.
  std::shared_ptr<const Membership> membership_;
  // Serializes scaling, stop, and the bookkeeping lists; never taken on
  // the submit path.
  mutable std::mutex admin_mu_;
  std::vector<std::shared_ptr<ReplicaHandle>> all_handles_;  // fleet history
  std::uint64_t next_generation_ = 0;
  bool stopped_ = false;

  std::chrono::steady_clock::time_point started_at_;
  mutable std::mutex events_mu_;
  std::vector<FleetEvent> events_;

  // One retirement handoff awaiting its successor first-window
  // measurement: the successors' cache counters at handoff time, so the
  // controller can compute the hit rate over ONLY the post-handoff window
  // (the mirror of measure_first_windows' cache_at_activation delta).
  struct PendingHandoffMeasure {
    std::uint64_t victim_generation = 0;
    std::chrono::steady_clock::time_point handed_at{};
    std::vector<std::pair<std::shared_ptr<ReplicaHandle>, FeatureCacheStats>>
        successors;
  };
  std::vector<PendingHandoffMeasure> pending_handoffs_;  // under admin_mu_

  std::unique_ptr<AutoscalePolicy> autoscaler_;  // null unless enabled
  std::thread controller_;
  std::mutex controller_mu_;
  std::condition_variable controller_cv_;
  bool controller_stop_ = false;
};

// The elastic fleet kept the old name's file; callers that predate the
// refactor read better unchanged.
using ReplicaSet = FleetManager;
using ReplicaSetConfig = FleetConfig;

}  // namespace ppgnn::serve
