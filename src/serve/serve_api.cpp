#include "serve/serve_api.h"

#include <algorithm>
#include <utility>

namespace ppgnn::serve {

const char* serve_status_name(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kDraining:
      return "draining";
    case ServeStatus::kShed:
      return "shed";
    case ServeStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServeStatus::kError:
      return "error";
    case ServeStatus::kQuotaExceeded:
      return "quota_exceeded";
  }
  return "?";
}

ServeStatus worse_status(ServeStatus a, ServeStatus b) {
  // Severity rank, decoupled from the enum's numeric (wire) order:
  // kQuotaExceeded appended after kError for wire stability but ranks
  // between kShed and kDeadlineExceeded in badness.
  static constexpr std::uint8_t rank[] = {
      /*kOk*/ 0, /*kDraining*/ 1, /*kShed*/ 2,
      /*kDeadlineExceeded*/ 4, /*kError*/ 5, /*kQuotaExceeded*/ 3};
  return rank[static_cast<std::uint8_t>(a)] >=
                 rank[static_cast<std::uint8_t>(b)]
             ? a
             : b;
}

std::vector<TopKEntry> topk_of_row(const float* row, std::size_t n,
                                   std::size_t k) {
  std::vector<TopKEntry> all(n);
  for (std::size_t i = 0; i < n; ++i) {
    all[i].cls = static_cast<std::int32_t>(i);
    all[i].score = row[i];
  }
  const std::size_t take = std::min(k, n);
  // Scores descending; the lower class id wins ties so the ordering is a
  // pure function of the logits.
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const TopKEntry& a, const TopKEntry& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.cls < b.cls;
                    });
  all.resize(take);
  return all;
}

void CompletionQueue::deliver(ServeResponse&& r) {
  if (cb_) {
    // Callback mode: hand off on the finishing dispatcher's thread.  The
    // count ticks AFTER the callback returns, so a caller that observes
    // delivered() == submitted knows every callback has fully run — the
    // completeness signal drive loops spin on.
    cb_(std::move(r));
    std::lock_guard<std::mutex> lk(mu_);
    ++delivered_;
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(r));
    ++delivered_;
    // Notify UNDER the lock: a consumer that pops this (final) response
    // may destroy the queue the moment its pop returns, and its pop
    // cannot re-acquire mu_ until we are fully done with cv_ — the
    // post-unlock notify would race the destructor instead.
    cv_.notify_one();
  }
}

bool CompletionQueue::poll(ServeResponse* out) {
  std::lock_guard<std::mutex> lk(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool CompletionQueue::wait_for(ServeResponse* out,
                               std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!cv_.wait_for(lk, timeout, [this] { return !queue_.empty(); })) {
    return false;
  }
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::size_t CompletionQueue::ready() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::size_t CompletionQueue::delivered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return delivered_;
}

RequestState::RequestState(ServeRequest req, CompletionQueue* cq)
    : req_(std::move(req)), cq_(cq), remaining_(req_.nodes.size()) {
  resp_.id = req_.id;
  resp_.logits.resize(req_.nodes.size());
  if (req_.mode == ResultMode::kTopK) resp_.topk.resize(req_.nodes.size());
}

RequestState::RequestState(ServeRequest req, CompletionQueue::Callback sink)
    : req_(std::move(req)),
      sink_(std::move(sink)),
      remaining_(req_.nodes.size()) {
  resp_.id = req_.id;
  resp_.logits.resize(req_.nodes.size());
  if (req_.mode == ResultMode::kTopK) resp_.topk.resize(req_.nodes.size());
}

void RequestState::finish_part(std::size_t slot, ServeStatus status,
                               const float* row, std::size_t cols,
                               const StageTimings& t,
                               std::exception_ptr error) {
  bool last = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (row != nullptr) {
      if (req_.mode == ResultMode::kTopK) {
        resp_.topk[slot] = topk_of_row(row, cols, req_.topk);
      } else {
        resp_.logits[slot].assign(row, row + cols);
      }
    }
    resp_.status = worse_status(resp_.status, status);
    if (error && !resp_.error) resp_.error = error;
    // Parts complete in parallel across replicas: the envelope's stage
    // profile is the slowest part's (critical path), per stage.
    resp_.timings.admission_wait_us =
        std::max(resp_.timings.admission_wait_us, t.admission_wait_us);
    resp_.timings.dispatch_delay_us =
        std::max(resp_.timings.dispatch_delay_us, t.dispatch_delay_us);
    resp_.timings.compute_us = std::max(resp_.timings.compute_us, t.compute_us);
    last = --remaining_ == 0;
  }
  if (!last) return;
  // Last part delivers.  No lock held: the queue/sink has its own
  // synchronization, and nothing can race us — every part is finished.
  if (req_.mode == ResultMode::kTopK) resp_.logits.clear();
  if (cq_) {
    cq_->deliver(std::move(resp_));
  } else if (sink_) {
    sink_(std::move(resp_));
  }
}

}  // namespace ppgnn::serve
