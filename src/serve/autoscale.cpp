#include "serve/autoscale.h"

#include <stdexcept>

namespace ppgnn::serve {

const char* scale_action_name(ScaleAction a) {
  switch (a) {
    case ScaleAction::kNone:
      return "none";
    case ScaleAction::kUp:
      return "up";
    case ScaleAction::kDown:
      return "down";
  }
  return "?";
}

AutoscalePolicy::AutoscalePolicy(const AutoscaleConfig& cfg) : cfg_(cfg) {
  if (cfg_.min_replicas == 0 || cfg_.max_replicas < cfg_.min_replicas) {
    throw std::invalid_argument(
        "AutoscalePolicy: need 1 <= min_replicas <= max_replicas");
  }
  if (cfg_.scale_up_shed <= 0 || cfg_.scale_down_idle <= 0 ||
      cfg_.scale_down_idle > 1) {
    throw std::invalid_argument(
        "AutoscalePolicy: scale_up_shed must be > 0 and scale_down_idle in "
        "(0, 1]");
  }
}

ScaleAction AutoscalePolicy::on_tick(
    const FleetSignals& s, std::chrono::steady_clock::time_point now) {
  // Track the signals unconditionally — hysteresis state must advance even
  // while the cooldown suppresses actions, otherwise the first tick after
  // the cooldown would need a full fresh sustain/idle run-up.
  if (s.shed_rate > cfg_.scale_up_shed) {
    if (!over_) {
      over_ = true;
      over_since_ = now;
    }
  } else {
    over_ = false;
  }
  // Idle = no backlog beyond one dispatch round AND shedding well inside
  // the hysteresis band (half the scale-up threshold, not strictly zero:
  // a loaded machine sheds a ~1% trickle from scheduling jitter even at
  // half load, and demanding exact zero would pin the fleet at max
  // forever).
  const bool idle_now = s.queue_depth <= s.batch_capacity &&
                        s.shed_rate <= 0.5 * cfg_.scale_up_shed;
  if (!covering_) {
    covering_ = true;
    coverage_start_ = now;
  }
  idle_.emplace_back(now, idle_now);
  const auto idle_horizon = now - cfg_.idle_window;
  while (!idle_.empty() && idle_.front().first < idle_horizon) {
    idle_.pop_front();
  }

  if (acted_ && now - last_action_ < cfg_.cooldown) return ScaleAction::kNone;

  if (over_ && now - over_since_ >= cfg_.sustain &&
      s.replicas < cfg_.max_replicas) {
    acted_ = true;
    last_action_ = now;
    // The new replica changes what the signals mean; demand a fresh
    // sustained crossing (and fresh idle evidence) before the next action.
    over_ = false;
    idle_.clear();
    covering_ = false;
    return ScaleAction::kUp;
  }

  // Retiring needs positive evidence spanning the whole idle window:
  // tracking must have covered idle_window of real time since the last
  // reset, so a burst of idle ticks right after startup (or after an
  // action cleared the history) can't retire.
  if (s.replicas > cfg_.min_replicas && !idle_.empty() &&
      now - coverage_start_ >= cfg_.idle_window) {
    std::size_t idle_ticks = 0;
    for (const auto& [_, was_idle] : idle_) idle_ticks += was_idle ? 1 : 0;
    const double idle_frac =
        static_cast<double>(idle_ticks) / static_cast<double>(idle_.size());
    if (idle_frac >= cfg_.scale_down_idle) {
      acted_ = true;
      last_action_ = now;
      over_ = false;
      idle_.clear();
      covering_ = false;
      return ScaleAction::kDown;
    }
  }
  return ScaleAction::kNone;
}

}  // namespace ppgnn::serve
