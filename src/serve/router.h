// Request routing across InferenceSession replicas — resize-stable.
//
// A FleetManager holds a *dynamic* set of serving pipelines; the router
// decides, per request, which one answers.  Because membership now changes
// at runtime (autoscaling spawns and retires replicas), every policy routes
// over a RouteTargets view of one membership snapshot rather than a count
// fixed at construction.  Three policies, in increasing awareness of the
// system they route over:
//
//  * round_robin — cycles replicas.  Load-oblivious, perfectly fair over
//    any window of N requests; the right default when replicas are
//    symmetric and requests are i.i.d. cheap.  The shared counter is modded
//    by the *snapshot's* size, so a resize just changes the cycle length.
//
//  * least_loaded — shortest queue first (join-the-shortest-queue).  Reads
//    each replica's live queue depth at routing time, so a replica stuck
//    on a slow batch (cold cache, page-cache miss) stops receiving new
//    work until it drains.  A freshly spawned (cache-cold) replica simply
//    joins the scan.
//
//  * cache_affinity — consistent hashing over a HashRing.  PR 2 used
//    splitmix64(node) mod N, which is perfectly sharded but resize-hostile:
//    going N -> N+1 remaps ~N/(N+1) of the key space, flushing every
//    replica's carefully specialized cache exactly when the fleet is under
//    enough load to need a new replica.  The ring fixes the failure mode:
//    each replica owns kVirtualNodes pseudo-random points on a 64-bit
//    circle (a pure function of its *generation id*, so surviving replicas'
//    points never move), a key routes to the owner of the first point
//    clockwise of its hash, and adding one replica steals only the arcs
//    its own points land on — E[remapped keys] = 1/(N+1), asserted
//    <= 1.5/(N+1) in test_autoscale.
//
// Policies are deliberately stateless about the replicas themselves (the
// snapshot view is passed in per call), so a Router is cheap, lock-free
// where possible, and trivially testable without standing up sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ppgnn::serve {

enum class RoutingPolicy { kRoundRobin, kLeastLoaded, kCacheAffinity };

const char* policy_name(RoutingPolicy p);
// Parses "round_robin" | "least_loaded" | "cache_affinity"; returns false
// (leaving *out untouched) on anything else.
bool parse_policy(const std::string& name, RoutingPolicy* out);

// splitmix64 finalizer: node ids are often dense/sequential, and a plain
// mod would stripe adjacent ids across replicas — the opposite of a stable
// shard.  The mix decorrelates placement from id locality (node popularity
// is already uncorrelated with id order, see workload.h).  Deterministic
// across processes and runs; both the ring's virtual-node points and the
// key -> point mapping are built on it.
std::uint64_t splitmix64(std::uint64_t x);

// Consistent-hash ring over replica *generation ids*.  Members are placed
// at kVirtualNodes pseudo-random points each; lookup(node) returns the
// index (into the member order given at construction) of the member owning
// the first point clockwise of splitmix64(node).  Because a member's
// points depend only on its generation id, growing or shrinking the fleet
// leaves every surviving member's points fixed — the resize-stability the
// cache_affinity policy needs.
class HashRing {
 public:
  // Virtual nodes per member: enough that each member's total arc length
  // concentrates near 1/N (relative spread ~ 1/sqrt(kVirtualNodes)), few
  // enough that rebuilding a ring at a membership swap stays trivial.
  static constexpr std::size_t kVirtualNodes = 128;

  HashRing() = default;
  explicit HashRing(const std::vector<std::uint64_t>& member_generations);

  bool empty() const { return points_.empty(); }
  std::size_t num_members() const { return num_members_; }
  // Index into the construction-time member order; ring must be non-empty.
  std::size_t lookup(std::int64_t node) const;

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;  // sorted
  std::size_t num_members_ = 0;
};

// Live per-replica load signal: queue_depth(i) is replica i's count of
// admitted-but-undispatched requests.
using QueueDepthFn = std::function<std::size_t(std::size_t)>;

// One membership snapshot, as the router sees it: how many replicas, their
// live queue depths, and the snapshot's ring (non-null whenever the fleet
// maintains one; required by cache_affinity).
struct RouteTargets {
  std::size_t count = 0;
  const QueueDepthFn* queue_depth = nullptr;  // required by least_loaded
  const HashRing* ring = nullptr;             // required by cache_affinity
};

class Router {
 public:
  virtual ~Router() = default;
  // Picks the replica in [0, targets.count) for `node`.  Must be safe to
  // call from multiple client threads, against different snapshots.
  virtual std::size_t route(std::int64_t node, const RouteTargets& t) = 0;
  virtual RoutingPolicy policy() const = 0;
  const char* name() const { return policy_name(policy()); }
};

std::unique_ptr<Router> make_router(RoutingPolicy p);

// One replica's share of a multi-node envelope: the member index and the
// slots (indices into ServeRequest::nodes) it answers.
struct SubBatch {
  std::size_t member = 0;
  std::vector<std::uint32_t> slots;
};

// Splits an envelope's nodes into ring-consistent sub-batches: slot s in
// `slots` goes to ring.lookup(nodes[s]), so every node of a v2 request
// still lands on its cache_affinity home even when the request spans
// shards — the split half of the serving API's multi-node split/merge.
// `slots` is the subset still to place (the full envelope on first
// placement; the bounced remainder after a draining re-route).  Sub-batches
// come back in first-touched member order with slots in input order, a
// pure function of (nodes, slots, ring) — deterministic, so envelope
// answers are too.
std::vector<SubBatch> split_by_ring(const std::vector<std::int64_t>& nodes,
                                    const std::vector<std::uint32_t>& slots,
                                    const HashRing& ring);

}  // namespace ppgnn::serve
