// Request routing across InferenceSession replicas.
//
// A ReplicaSet holds N independent serving pipelines; the router decides,
// per request, which one answers.  Three policies, in increasing awareness
// of the system they route over:
//
//  * round_robin — cycles replicas.  Load-oblivious, perfectly fair over
//    any window of N requests; the right default when replicas are
//    symmetric and requests are i.i.d. cheap.
//
//  * least_loaded — shortest queue first (join-the-shortest-queue).  Reads
//    each replica's live queue depth at routing time, so a replica stuck
//    on a slow batch (cold cache, page-cache miss) stops receiving new
//    work until it drains.
//
//  * cache_affinity — hash(node) mod N, a pure function of the node id.
//    Every request for a node lands on the same replica forever, so each
//    replica's CachedSource only ever sees 1/N of the key space and its
//    RowCache specializes on that shard: N replicas of capacity C behave
//    like one cache of capacity N*C instead of N copies of the same hot
//    set.  The trade is load skew — a Zipf-hot node pins its whole request
//    volume to one replica — which is the classic caching-vs-balance
//    tension; bench_serving_latency measures both sides.
//
// Policies are deliberately stateless about the replicas themselves (the
// load signal is passed in per call), so a Router is cheap, lock-free
// where possible, and trivially testable without standing up sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace ppgnn::serve {

enum class RoutingPolicy { kRoundRobin, kLeastLoaded, kCacheAffinity };

const char* policy_name(RoutingPolicy p);
// Parses "round_robin" | "least_loaded" | "cache_affinity"; returns false
// (leaving *out untouched) on anything else.
bool parse_policy(const std::string& name, RoutingPolicy* out);

// Live per-replica load signal: queue_depth(i) is replica i's count of
// admitted-but-undispatched requests.
using QueueDepthFn = std::function<std::size_t(std::size_t)>;

class Router {
 public:
  virtual ~Router() = default;
  // Picks the replica in [0, replicas) for `node`.  Must be safe to call
  // from multiple client threads.
  virtual std::size_t route(std::int64_t node,
                            const QueueDepthFn& queue_depth) = 0;
  virtual RoutingPolicy policy() const = 0;
  const char* name() const { return policy_name(policy()); }
};

std::unique_ptr<Router> make_router(RoutingPolicy p, std::size_t replicas);

// The hash behind cache_affinity, exposed so tests (and an external cache
// warmer sharding a hot set) can predict placements: splitmix64(node) mod
// replicas.  Deterministic per node id across processes and runs.
std::size_t affinity_replica(std::int64_t node, std::size_t replicas);

}  // namespace ppgnn::serve
