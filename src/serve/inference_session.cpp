#include "serve/inference_session.h"

#include <stdexcept>

#include "nn/serialize.h"

namespace ppgnn::serve {

InferenceSession::InferenceSession(std::unique_ptr<core::PpModel> model,
                                   std::unique_ptr<FeatureSource> features)
    : model_(std::move(model)), features_(std::move(features)) {
  if (!model_ || !features_) {
    throw std::invalid_argument("InferenceSession: null model or features");
  }
}

Tensor InferenceSession::infer_nodes(const std::vector<std::int64_t>& nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("infer_nodes: empty request batch");
  }
  Tensor batch;
  features_->gather(nodes, batch);
  std::lock_guard<std::mutex> lk(mu_);
  return model_->infer(batch);
}

std::vector<float> InferenceSession::infer_one(std::int64_t node) {
  const Tensor logits = infer_nodes({node});
  return std::vector<float>(logits.row(0), logits.row(0) + logits.cols());
}

void save_deployed_model(core::PpModel& model, const std::string& path) {
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::save_parameters(slots, path);
}

void load_deployed_model(core::PpModel& model, const std::string& path) {
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::load_parameters(slots, path);
}

std::vector<std::unique_ptr<InferenceSession>> make_replica_sessions(
    std::size_t n, const std::string& checkpoint_path,
    const std::function<std::unique_ptr<core::PpModel>(std::size_t)>&
        make_model,
    const std::function<std::unique_ptr<FeatureSource>(std::size_t)>&
        make_source) {
  if (n == 0) {
    throw std::invalid_argument("make_replica_sessions: zero replicas");
  }
  std::vector<std::unique_ptr<InferenceSession>> sessions;
  sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto model = make_model(i);
    if (!model) {
      throw std::invalid_argument("make_replica_sessions: null model");
    }
    auto source = make_source(i);
    if (!source) {
      throw std::invalid_argument("make_replica_sessions: null source");
    }
    load_deployed_model(*model, checkpoint_path);
    sessions.push_back(std::make_unique<InferenceSession>(
        std::move(model), std::move(source)));
  }
  return sessions;
}

}  // namespace ppgnn::serve
