#include "serve/inference_session.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "nn/linear.h"
#include "nn/serialize.h"
#include "tensor/quant.h"

namespace ppgnn::serve {

const char* precision_name(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

bool parse_precision(const std::string& s, Precision* out) {
  if (s == "fp32") {
    *out = Precision::kFp32;
    return true;
  }
  if (s == "int8") {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

InferenceSession::InferenceSession(std::unique_ptr<core::PpModel> model,
                                   std::unique_ptr<FeatureSource> features,
                                   Precision precision)
    : model_(std::move(model)),
      features_(std::move(features)),
      precision_(precision) {
  if (!model_ || !features_) {
    throw std::invalid_argument("InferenceSession: null model or features");
  }
  // The label must match the model's real state (Linear keys its int8
  // path on the quantized block alone), otherwise a fleet could serve
  // fp32 while reporting int8 — or the reverse — and downstream checks
  // like ReplicaSet's would be validating a fiction.
  std::vector<nn::Linear*> linears;
  model_->collect_linears(linears);
  bool any_quantized = false, all_quantized = !linears.empty();
  for (const auto* l : linears) {
    any_quantized = any_quantized || l->is_quantized();
    all_quantized = all_quantized && l->is_quantized();
  }
  if (precision_ == Precision::kInt8 && !all_quantized) {
    throw std::invalid_argument(
        "InferenceSession: precision=int8 but the model is not (fully) "
        "quantized — run core::quantize_int8 first");
  }
  if (precision_ == Precision::kFp32 && any_quantized) {
    throw std::invalid_argument(
        "InferenceSession: precision=fp32 but the model holds quantized "
        "weights and would serve the int8 path");
  }
}

Isa InferenceSession::kernel_isa() {
  if (precision_ == Precision::kInt8) {
    std::vector<nn::Linear*> linears;
    model_->collect_linears(linears);
    for (const auto* l : linears) {
      if (l->is_quantized()) return gemm_dispatch_arm(*l->quantized_weight());
    }
  }
  return active_isa();
}

Tensor InferenceSession::infer_nodes(const std::vector<std::int64_t>& nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("infer_nodes: empty request batch");
  }
  Tensor batch;
  features_->gather(nodes, batch);
  std::lock_guard<std::mutex> lk(mu_);
  return model_->infer(batch);
}

std::vector<float> InferenceSession::infer_one(std::int64_t node) {
  const Tensor logits = infer_nodes({node});
  return std::vector<float>(logits.row(0), logits.row(0) + logits.cols());
}

PrecisionDrift compare_precision(InferenceSession& reference,
                                 InferenceSession& quantized,
                                 const std::vector<std::int64_t>& sample) {
  PrecisionDrift drift;
  drift.sampled = sample.size();
  if (sample.empty()) return drift;
  const Tensor lf = reference.infer_nodes(sample);
  const Tensor lq = quantized.infer_nodes(sample);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    std::size_t top_f = 0, top_q = 0;
    for (std::size_t j = 0; j < lf.cols(); ++j) {
      if (lf.at(i, j) > lf.at(i, top_f)) top_f = j;
      if (lq.at(i, j) > lq.at(i, top_q)) top_q = j;
      drift.max_logit_err = std::max(
          drift.max_logit_err,
          static_cast<double>(std::fabs(lf.at(i, j) - lq.at(i, j))));
    }
    if (top_f == top_q) ++agree;
  }
  drift.top1_agreement =
      static_cast<double>(agree) / static_cast<double>(sample.size());
  return drift;
}

void save_deployed_model(core::PpModel& model, const std::string& path,
                         Precision precision) {
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  if (precision == Precision::kInt8) {
    nn::save_parameters_quantized(slots, path);
  } else {
    nn::save_parameters(slots, path);
  }
}

void load_deployed_model(core::PpModel& model, const std::string& path) {
  std::vector<nn::ParamSlot> slots;
  model.collect_params(slots);
  nn::load_parameters(slots, path);
}

FleetBuilder::FleetBuilder(std::string checkpoint_path, MakeModel make_model,
                           MakeSource make_source, Precision precision)
    : checkpoint_path_(std::move(checkpoint_path)),
      make_model_(std::move(make_model)),
      make_source_(std::move(make_source)),
      precision_(precision) {
  if (!make_model_ || !make_source_) {
    throw std::invalid_argument("FleetBuilder: null model or source factory");
  }
}

std::unique_ptr<InferenceSession> FleetBuilder::build(std::size_t ordinal) {
  auto model = make_model_(ordinal);
  if (!model) {
    throw std::invalid_argument("FleetBuilder: make_model returned null");
  }
  load_deployed_model(*model, checkpoint_path_);
  if (precision_ == Precision::kInt8) {
    if (!donor_) {
      // First build pays the quantization once; the donor stays alive so
      // every later spawn — possibly seconds into the serving run — shares
      // the same immutable blocks instead of re-quantizing (which would be
      // bit-identical anyway, but why redo it per spawn).
      donor_ = make_model_(ordinal);
      if (!donor_) {
        throw std::invalid_argument("FleetBuilder: make_model returned null");
      }
      load_deployed_model(*donor_, checkpoint_path_);
      core::quantize_int8(*donor_);
      // One line per fleet, not per replica: which rung of the SIMD
      // ladder every session built from this donor will run on (the
      // packed layout is chosen here, at quantize time, and shared).
      std::vector<nn::Linear*> linears;
      donor_->collect_linears(linears);
      Isa arm = active_isa();
      for (const auto* l : linears) {
        if (l->is_quantized()) {
          arm = gemm_dispatch_arm(*l->quantized_weight());
          break;
        }
      }
      std::fprintf(stderr, "[fleet] int8 kernel ladder: %s\n", isa_name(arm));
    }
    core::share_quantized_weights(*model, *donor_);
  }
  auto source = make_source_(ordinal);
  if (!source) {
    throw std::invalid_argument("FleetBuilder: make_source returned null");
  }
  return std::make_unique<InferenceSession>(std::move(model),
                                            std::move(source), precision_);
}

std::vector<std::unique_ptr<InferenceSession>> FleetBuilder::build_n(
    std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("FleetBuilder: zero replicas");
  }
  std::vector<std::unique_ptr<InferenceSession>> sessions;
  sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sessions.push_back(build(i));
  return sessions;
}

}  // namespace ppgnn::serve
