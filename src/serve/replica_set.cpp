#include "serve/replica_set.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "rpc/remote_replica.h"
#include "serve/feature_source.h"

namespace ppgnn::serve {

const char* replica_state_name(ReplicaState s) {
  switch (s) {
    case ReplicaState::kWarming:
      return "warming";
    case ReplicaState::kActive:
      return "active";
    case ReplicaState::kDraining:
      return "draining";
    case ReplicaState::kRetired:
      return "retired";
  }
  return "?";
}

FleetManager::FleetManager(FleetBuilder builder, std::size_t initial_replicas,
                           const FleetConfig& cfg)
    : builder_(std::make_unique<FleetBuilder>(std::move(builder))) {
  if (initial_replicas == 0) {
    throw std::invalid_argument("FleetManager: zero initial replicas");
  }
  auto sessions = builder_->build_n(initial_replicas);
  init(std::move(sessions), cfg);
}

FleetManager::FleetManager(
    std::vector<std::unique_ptr<InferenceSession>> sessions,
    const FleetConfig& cfg) {
  if (cfg.autoscale.enabled) {
    throw std::invalid_argument(
        "FleetManager: autoscaling needs a FleetBuilder (a fleet built from "
        "pre-made sessions has no recipe to spawn more)");
  }
  init(std::move(sessions), cfg);
}

FleetManager::FleetManager(RemoteSpawnFn spawn, std::size_t initial_replicas,
                           const FleetConfig& cfg)
    : remote_spawn_(std::move(spawn)) {
  if (!remote_spawn_) {
    throw std::invalid_argument("FleetManager: null remote spawn recipe");
  }
  if (initial_replicas == 0) {
    throw std::invalid_argument("FleetManager: zero initial replicas");
  }
  init_config(cfg);

  auto m = std::make_shared<Membership>();
  m->epoch = 0;
  for (std::size_t i = 0; i < initial_replicas; ++i) {
    auto remote = remote_spawn_(next_generation_);
    if (!remote) {
      // Retire the replicas already spawned before failing the build; the
      // handles' remotes SIGTERM + reap in their destructors.
      throw std::runtime_error(
          "FleetManager: remote replica spawn failed (see server log)");
    }
    auto h = make_remote_handle(std::move(remote));
    // Same loud config/deployment-mismatch failure as the local ctor; the
    // server advertises its serving precision in the HelloAck.
    if (static_cast<Precision>(h->remote->info().precision) !=
        cfg_.precision) {
      throw std::invalid_argument(
          "FleetManager: remote replica precision disagrees with config");
    }
    h->state.store(ReplicaState::kActive, std::memory_order_release);
    h->activated_at = started_at_;
    h->first_window_measured = true;  // cache lives server-side
    m->replicas.push_back(h);
    all_handles_.push_back(h);
    record_event(/*spawned=*/true, *h, m->epoch, m->replicas.size());
  }
  m->ring = ring_over(m->replicas);
  std::atomic_store(&membership_,
                    std::shared_ptr<const Membership>(std::move(m)));

  if (cfg_.autoscale.enabled) {
    autoscaler_ = std::make_unique<AutoscalePolicy>(cfg_.autoscale);
    controller_ = std::thread([this] { controller_loop(); });
  }
}

void FleetManager::init_config(const FleetConfig& cfg) {
  cfg_ = cfg;
  cfg_.clock = clock_or_real(cfg_.clock);
  // One fleet-level knob moves all policy-visible time: the batchers
  // inherit the fleet clock unless a caller pinned their own.
  if (!cfg_.batch.clock) cfg_.batch.clock = cfg_.clock;
  precision_ = cfg.precision;
  started_at_ = cfg_.clock->now();
  router_ = make_router(cfg_.policy);
  if (cfg_.tenants) {
    // Tenancy: one registry knob wires the whole tier — the front gate
    // charges quotas here, and every replica's batcher (local replicas
    // inherit cfg_.batch) composes batches by the same registry's weights.
    if (!cfg_.batch.tenants) cfg_.batch.tenants = cfg_.tenants;
    admission_ =
        std::make_unique<tenancy::TenantAdmission>(*cfg_.tenants, cfg_.clock);
    front_stats_ =
        std::make_unique<ServerStats>(cfg_.stats_window, cfg_.clock);
  }
}

void FleetManager::init(std::vector<std::unique_ptr<InferenceSession>> sessions,
                        const FleetConfig& cfg) {
  if (sessions.empty()) {
    throw std::invalid_argument("FleetManager: no sessions");
  }
  init_config(cfg);

  auto m = std::make_shared<Membership>();
  m->epoch = 0;
  for (auto& session : sessions) {
    if (!session) {
      throw std::invalid_argument("FleetManager: null session");
    }
    if (session->precision() != cfg_.precision) {
      throw std::invalid_argument(
          "FleetManager: session precision disagrees with config (build the "
          "fleet with a FleetBuilder at the configured precision)");
    }
    auto h = make_handle(std::move(session));
    h->state.store(ReplicaState::kActive, std::memory_order_release);
    h->activated_at = started_at_;
    h->first_window_measured = true;  // initial fleet: nothing to compare
    m->replicas.push_back(h);
    all_handles_.push_back(h);
    record_event(/*spawned=*/true, *h, m->epoch, m->replicas.size());
  }
  m->ring = ring_over(m->replicas);
  std::atomic_store(&membership_, std::shared_ptr<const Membership>(std::move(m)));

  if (cfg_.autoscale.enabled) {
    autoscaler_ = std::make_unique<AutoscalePolicy>(cfg_.autoscale);
    controller_ = std::thread([this] { controller_loop(); });
  }
}

FleetManager::~FleetManager() { stop(); }

std::shared_ptr<FleetManager::ReplicaHandle> FleetManager::make_handle(
    std::unique_ptr<InferenceSession> session) {
  auto h = std::make_shared<ReplicaHandle>();
  h->generation = next_generation_++;
  h->session = std::move(session);
  h->stats = std::make_unique<ServerStats>(cfg_.stats_window, cfg_.clock);
  h->batcher = std::make_unique<MicroBatcher>(*h->session, cfg_.batch,
                                              h->stats.get());
  return h;
}

std::shared_ptr<FleetManager::ReplicaHandle> FleetManager::make_remote_handle(
    std::shared_ptr<rpc::RemoteReplica> remote) {
  auto h = std::make_shared<ReplicaHandle>();
  h->generation = next_generation_++;
  h->remote = std::move(remote);
  // Stats are the CLIENT-side view (round-trip latency, wire-part
  // verdicts), recorded by the bridge on completion — the same windowed
  // signal surface the autoscaler reads for local replicas.
  h->stats = std::make_unique<ServerStats>(cfg_.stats_window, cfg_.clock);
  return h;
}

std::size_t FleetManager::depth_of(const ReplicaHandle& h) {
  return h.batcher ? h.batcher->queue_depth() : h.remote->inflight();
}

HashRing FleetManager::ring_over(
    const std::vector<std::shared_ptr<ReplicaHandle>>& replicas) {
  std::vector<std::uint64_t> generations;
  generations.reserve(replicas.size());
  for (const auto& h : replicas) generations.push_back(h->generation);
  return HashRing(generations);
}

std::shared_ptr<const FleetManager::Membership> FleetManager::current() const {
  auto m = std::atomic_load(&membership_);
  if (!m || m->replicas.empty()) {
    throw std::runtime_error("FleetManager: stopped");
  }
  return m;
}

Admission FleetManager::try_submit(std::int64_t node, Priority pri) {
  // The hot path: one atomic snapshot load, route, submit.  No lock is
  // shared with the scaling path — a resize publishes a fresh snapshot
  // instead of mutating this one.  A submit that races a retirement may
  // reach the draining replica's batcher; it answers kDraining (nothing
  // recorded, nothing lost) and the retry's fresh snapshot no longer
  // contains the drained replica, so the loop terminates.
  for (;;) {
    const auto m = current();
    const QueueDepthFn depth = [&m](std::size_t i) {
      return depth_of(*m->replicas[i]);
    };
    RouteTargets targets;
    targets.count = m->replicas.size();
    targets.queue_depth = &depth;
    targets.ring = &m->ring;
    const std::size_t i = router_->route(node, targets);
    const auto& h = m->replicas[i];
    h->routed.fetch_add(1, std::memory_order_relaxed);
    if (h->remote) {
      // Remote shim: a single-node envelope with a promise sink.  The wire
      // has no synchronous admission verdict (the reject travels back as a
      // kShed response), so the call is always "accepted" and a shed
      // surfaces as RejectedError through the future — same terminal
      // behavior as the throwing submit(), one hop later.
      auto prom = std::make_shared<std::promise<std::vector<float>>>();
      Admission a;
      a.accepted = true;
      a.result = prom->get_future();
      ServeRequest req;
      req.nodes = {node};
      req.priority = pri;
      auto state = std::make_shared<RequestState>(
          std::move(req), [prom](ServeResponse&& r) {
            if (r.status == ServeStatus::kOk) {
              prom->set_value(std::move(r.logits[0]));
            } else if (r.status == ServeStatus::kError && r.error) {
              prom->set_exception(r.error);
            } else {
              prom->set_exception(std::make_exception_ptr(RejectedError(
                  "rejected by remote replica admission control")));
            }
          });
      submit_remote(h, state, {0});
      return a;
    }
    Admission a = h->batcher->try_submit(node, pri);
    if (!a.accepted && a.reason == RejectReason::kDraining) continue;
    return a;
  }
}

std::future<std::vector<float>> FleetManager::submit(std::int64_t node,
                                                     Priority pri) {
  Admission a = try_submit(node, pri);
  if (!a.accepted) {
    throw RejectedError("rejected at admission: queue-delay budget exceeded");
  }
  return std::move(a.result);
}

std::vector<float> FleetManager::infer_blocking(std::int64_t node) {
  return submit(node).get();
}

void FleetManager::submit(ServeRequest req, CompletionQueue& cq) {
  if (req.nodes.empty()) {
    throw std::invalid_argument("FleetManager::submit: empty envelope");
  }
  if (admission_) {
    // Tenancy front gate, in contract order: clamp the claimed priority to
    // the tenant's ceiling, stamp the contract's default deadline onto
    // deadline-free requests, then charge the token bucket.  A refusal is
    // terminal HERE — the envelope answers kQuotaExceeded without ever
    // being routed, so it can never surface as kDraining (nothing to
    // re-route) nor pollute a replica's shed counters.
    const auto snap = cfg_.tenants->snapshot();
    const tenancy::TenantContract& c = snap->of(req.tenant);
    if (c.priority_ceiling == Priority::kLow) req.priority = Priority::kLow;
    if (!req.has_deadline() && c.default_deadline_us > 0) {
      req.deadline =
          cfg_.clock->now() + std::chrono::microseconds(c.default_deadline_us);
    }
    if (!admission_->try_admit(req.tenant, req.nodes.size())) {
      front_stats_->record_quota_refused(req.tenant, 1);
      auto state = std::make_shared<RequestState>(std::move(req), &cq);
      const std::size_t parts = state->parts();
      for (std::uint32_t slot = 0; slot < parts; ++slot) {
        state->finish_part(slot, ServeStatus::kQuotaExceeded, nullptr, 0,
                           StageTimings{});
      }
      return;
    }
  }
  auto state = std::make_shared<RequestState>(std::move(req), &cq);
  std::vector<std::uint32_t> slots(state->parts());
  for (std::uint32_t i = 0; i < slots.size(); ++i) slots[i] = i;
  place_parts(state, std::move(slots));
}

void FleetManager::place_parts(const std::shared_ptr<RequestState>& state,
                               std::vector<std::uint32_t> slots) {
  const auto& nodes = state->request().nodes;
  // Same loop shape as the legacy try_submit: route against one snapshot,
  // submit, re-route only the sub-batches a draining replica bounced —
  // the retry's fresh snapshot no longer contains the drained replica, so
  // the loop terminates.
  for (;;) {
    const auto m = std::atomic_load(&membership_);
    if (!m || m->replicas.empty()) {
      // Stopped fleet: v2 never throws on admission outcomes — the
      // envelope answers kDraining so the caller can re-route at a higher
      // level (or give up), and the completion contract holds.
      for (const std::uint32_t slot : slots) {
        state->finish_part(slot, ServeStatus::kDraining, nullptr, 0,
                           StageTimings{});
      }
      return;
    }
    std::vector<SubBatch> groups;
    if (router_->policy() == RoutingPolicy::kCacheAffinity &&
        m->replicas.size() > 1) {
      // Ring-consistent split: every node keeps its cache_affinity home,
      // so a multi-node envelope hits each shard's warm cache instead of
      // dragging the whole request to one replica's cold one.
      groups = split_by_ring(nodes, slots, m->ring);
    } else {
      // Load-oblivious policies make one decision per envelope: splitting
      // round_robin traffic would just multiply dispatch overhead without
      // a cache to aim at.
      const QueueDepthFn depth = [&m](std::size_t i) {
        return depth_of(*m->replicas[i]);
      };
      RouteTargets targets;
      targets.count = m->replicas.size();
      targets.queue_depth = &depth;
      targets.ring = &m->ring;
      groups.push_back(
          SubBatch{router_->route(nodes[slots[0]], targets), slots});
    }
    std::vector<std::uint32_t> bounced;
    for (SubBatch& g : groups) {
      const auto& hp = m->replicas[g.member];
      hp->routed.fetch_add(g.slots.size(), std::memory_order_relaxed);
      if (hp->remote) {
        // Fire-and-forget over the wire; the bridge either finishes every
        // slot or fails them back into place_parts (see submit_remote).
        submit_remote(hp, state, std::move(g.slots));
        continue;
      }
      ReplicaHandle& h = *hp;
      RejectReason reason;
      try {
        reason = h.batcher->try_submit_parts(state, g.slots.data(),
                                             g.slots.size());
      } catch (const std::runtime_error&) {
        // stop() raced the snapshot load and this batcher is already
        // stopped (without the draining flag a retirement would set):
        // terminal for the whole fleet, so answer kDraining directly.
        for (const std::uint32_t slot : g.slots) {
          state->finish_part(slot, ServeStatus::kDraining, nullptr, 0,
                             StageTimings{});
        }
        continue;
      }
      if (reason == RejectReason::kDraining) {
        bounced.insert(bounced.end(), g.slots.begin(), g.slots.end());
      }
      // kNone: admitted.  kOverload / kDeadline: the batcher resolved the
      // parts itself (kShed / kDeadlineExceeded) — nothing left to do.
    }
    if (bounced.empty()) return;
    slots = std::move(bounced);
  }
}

void FleetManager::submit_remote(const std::shared_ptr<ReplicaHandle>& h,
                                 const std::shared_ptr<RequestState>& state,
                                 std::vector<std::uint32_t> slots) {
  // The bridge guarantees exactly one of: every slot finished, or the fail
  // handler invoked once with all of them.  The fail handler runs the
  // crash detector (transport loss and draining servers look identical
  // from here: this replica cannot take the work) and re-routes against a
  // snapshot that no longer contains it — the same terminating loop shape
  // as a local draining bounce.  May run inline or on the client's I/O
  // thread; place_parts is safe on both (one atomic load, no admin lock).
  h->remote->submit_parts(
      state, slots.data(), slots.size(), h->stats.get(),
      [this, h](const std::shared_ptr<RequestState>& st,
                std::vector<std::uint32_t> failed) {
        remove_dead_replica(h);
        place_parts(st, std::move(failed));
      });
}

void FleetManager::remove_dead_replica(const std::shared_ptr<ReplicaHandle>& h) {
  // Pre-check OUTSIDE admin_mu_: when the scaler is retiring this replica
  // it already unpublished it, and it may be blocking admin_mu_ held while
  // waiting on the very I/O thread this runs on — skipping the lock here
  // is what breaks that cycle (see the header).
  if (h->state.load(std::memory_order_acquire) != ReplicaState::kActive) {
    return;
  }
  std::lock_guard<std::mutex> lk(admin_mu_);
  if (stopped_) return;
  if (h->state.load(std::memory_order_acquire) != ReplicaState::kActive) {
    return;  // lost the race to a scaler or another failed call
  }
  const auto m = std::atomic_load(&membership_);
  auto next = std::make_shared<Membership>();
  next->epoch = m->epoch + 1;
  for (const auto& r : m->replicas) {
    if (r != h) next->replicas.push_back(r);
  }
  if (next->replicas.size() == m->replicas.size()) return;  // already gone
  next->ring = ring_over(next->replicas);
  h->state.store(ReplicaState::kRetired, std::memory_order_release);
  std::atomic_store(&membership_,
                    std::shared_ptr<const Membership>(std::move(next)));
  record_event(/*spawned=*/false, *h, m->epoch + 1, m->replicas.size() - 1);
  // An empty membership (last replica died) is survivable: envelopes
  // answer kDraining until a scale_up repopulates it.
}

ServeResponse FleetManager::infer_request(ServeRequest req) {
  CompletionQueue cq;
  submit(std::move(req), cq);
  ServeResponse r;
  // Every envelope produces exactly one response, so this terminates; the
  // loop just bounds each wait for signal-safety.
  while (!cq.wait_for(&r, std::chrono::milliseconds(100))) {
  }
  return r;
}

std::size_t FleetManager::warm_from_peers(ReplicaHandle& fresh,
                                          const Membership& current_members,
                                          const HashRing& next_ring) {
  if (cfg_.warm_keys == 0) return 0;
  if (!fresh.session) return 0;  // remote: warms server-side
  auto* dst = dynamic_cast<CachedSource*>(&fresh.session->features());
  if (!dst) return 0;
  // The fresh replica occupies the last slot of the next membership; under
  // cache_affinity only the rows the new ring assigns THERE are worth
  // copying (the rest stay home on their peers).  Other policies spread
  // every node everywhere, so any peer-hot row is a useful seed.
  const std::size_t new_index = current_members.replicas.size();
  const bool ring_filter = cfg_.policy == RoutingPolicy::kCacheAffinity;
  std::vector<std::pair<std::int64_t, std::vector<std::uint8_t>>> batch;
  std::unordered_set<std::int64_t> seen;
  for (const auto& peer : current_members.replicas) {
    if (!peer->session) continue;
    auto* src = dynamic_cast<CachedSource*>(&peer->session->features());
    if (!src) continue;
    for (auto& [row, bytes] : src->export_hot_payloads(cfg_.warm_keys)) {
      if (batch.size() >= cfg_.warm_keys) break;
      if (ring_filter && next_ring.lookup(row) != new_index) continue;
      if (!seen.insert(row).second) continue;
      batch.emplace_back(row, std::move(bytes));
    }
    if (batch.size() >= cfg_.warm_keys) break;
  }
  return dst->admit_payloads(batch);
}

std::size_t FleetManager::handoff_to_successors(ReplicaHandle& victim,
                                                const Membership& next) {
  if (cfg_.warm_keys == 0) return 0;
  if (!victim.session) return 0;  // remote: cache lives server-side
  auto* src = dynamic_cast<CachedSource*>(&victim.session->features());
  if (!src) return 0;
  // The victim is already unpublished: `next`'s ring is live, so every hot
  // row has exactly one new home.  Ship each row there (recency order —
  // export_hot_payloads yields hottest first) so the successor's first
  // window after the retirement starts warm instead of faulting the
  // victim's working set back in through misses.
  std::vector<std::vector<std::pair<std::int64_t, std::vector<std::uint8_t>>>>
      batches(next.replicas.size());
  for (auto& [row, bytes] : src->export_hot_payloads(cfg_.warm_keys)) {
    const std::size_t dst_index = next.ring.lookup(row);
    if (dst_index >= batches.size()) continue;
    // Remote successors warm server-side; no client-side cache to seed.
    if (!next.replicas[dst_index]->session) continue;
    batches[dst_index].emplace_back(row, std::move(bytes));
  }
  PendingHandoffMeasure pending;
  pending.victim_generation = victim.generation;
  pending.handed_at = cfg_.clock->now();
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].empty()) continue;
    auto* dst = dynamic_cast<CachedSource*>(
        &next.replicas[i]->session->features());
    if (!dst) continue;
    admitted += dst->admit_payloads(batches[i]);
    pending.successors.emplace_back(next.replicas[i], dst->stats());
  }
  if (!pending.successors.empty()) {
    pending_handoffs_.push_back(std::move(pending));
  }
  return admitted;
}

std::uint64_t FleetManager::scale_up() {
  std::lock_guard<std::mutex> lk(admin_mu_);
  if (stopped_) throw std::runtime_error("FleetManager: stopped");
  if (!builder_ && !remote_spawn_) {
    throw std::logic_error(
        "FleetManager: fixed fleet has no FleetBuilder to spawn from");
  }
  const auto m = std::atomic_load(&membership_);
  // Build off the submit path: traffic keeps flowing against the current
  // snapshot while the new session loads shared weights and warms up (for
  // a remote replica: while the new server process loads its checkpoint —
  // the spawn returns only after the Hello handshake proves it serves).
  std::shared_ptr<ReplicaHandle> h;
  if (builder_) {
    h = make_handle(builder_->build(next_generation_));
  } else {
    auto remote = remote_spawn_(next_generation_);
    if (!remote) {
      throw std::runtime_error(
          "FleetManager: remote replica spawn failed (see server log)");
    }
    h = make_remote_handle(std::move(remote));
  }
  h->spawned_dynamic = true;

  auto next = std::make_shared<Membership>();
  next->epoch = m->epoch + 1;
  next->replicas = m->replicas;
  next->replicas.push_back(h);
  next->ring = ring_over(next->replicas);

  // Warming -> Active: pre-fill the private cache from peers before the
  // first request can arrive, and snapshot the cache counters so the
  // first-window hit rate (warm-up's report card) has a baseline.
  // (Remote replicas warm their caches server-side; nothing to seed here.)
  if (h->session) {
    h->warmed_keys = warm_from_peers(*h, *m, next->ring);
    if (auto* c = dynamic_cast<CachedSource*>(&h->session->features())) {
      h->cache_at_activation = c->stats();
    } else {
      h->first_window_measured = true;  // no cache, nothing to measure
    }
  } else {
    h->first_window_measured = true;
  }
  h->activated_at = cfg_.clock->now();
  h->state.store(ReplicaState::kActive, std::memory_order_release);

  all_handles_.push_back(h);
  std::atomic_store(&membership_, std::shared_ptr<const Membership>(next));
  record_event(/*spawned=*/true, *h, next->epoch, next->replicas.size());
  return h->generation;
}

std::uint64_t FleetManager::scale_down() {
  std::lock_guard<std::mutex> lk(admin_mu_);
  if (stopped_) throw std::runtime_error("FleetManager: stopped");
  const auto m = std::atomic_load(&membership_);
  if (m->replicas.size() <= 1) {
    throw std::logic_error("FleetManager: cannot scale below one replica");
  }
  // Retire the youngest replica (membership is in spawn order): the
  // longest-lived caches are the most specialized and the most worth
  // keeping, and under the ring the youngest's arcs flow back to exactly
  // the peers that donated them at its spawn.
  auto victim = m->replicas.back();
  victim->state.store(ReplicaState::kDraining, std::memory_order_release);

  auto next = std::make_shared<Membership>();
  next->epoch = m->epoch + 1;
  next->replicas.assign(m->replicas.begin(), m->replicas.end() - 1);
  next->ring = ring_over(next->replicas);
  // Unpublish first, then drain: after this store no fresh snapshot routes
  // here, so the drain only has to bounce the stragglers already holding
  // the old snapshot.
  std::atomic_store(&membership_, std::shared_ptr<const Membership>(next));
  // Hand the victim's hot rows to their new ring homes while the cache is
  // still intact — the inverse of spawn warm-up — so the survivors absorb
  // the victim's traffic without a cold-miss spike.
  victim->handoff_keys = handoff_to_successors(*victim, *next);
  if (victim->batcher) {
    victim->batcher->begin_drain();
    victim->batcher->stop();  // admitted work completes; dispatcher joins
  } else {
    // Remote drain: SIGTERM, the server answers admitted work and bounces
    // new arrivals kDraining, then exits and is reaped.  Stragglers that
    // outlive the grace fail into submit_remote's handler and re-route
    // (the Draining state set above makes remove_dead_replica skip the
    // admin lock we are holding — that's the deadlock-avoidance contract).
    victim->remote->retire();
  }
  victim->state.store(ReplicaState::kRetired, std::memory_order_release);
  record_event(/*spawned=*/false, *victim, next->epoch,
               next->replicas.size());
  return victim->generation;
}

void FleetManager::stop() {
  // Controller first (it may be mid-scale, holding admin_mu_ — which is
  // why this join happens before we take it).
  {
    std::lock_guard<std::mutex> lk(controller_mu_);
    controller_stop_ = true;
  }
  controller_cv_.notify_all();
  // Claim the thread under the lock so concurrent stop() calls (e.g. an
  // explicit stop racing the destructor) can't both join it.
  std::thread controller;
  {
    std::lock_guard<std::mutex> lk(controller_mu_);
    controller = std::move(controller_);
  }
  if (controller.joinable()) controller.join();

  std::vector<std::shared_ptr<ReplicaHandle>> handles;
  {
    std::lock_guard<std::mutex> lk(admin_mu_);
    stopped_ = true;
    handles = all_handles_;
    auto empty = std::make_shared<Membership>();
    const auto m = std::atomic_load(&membership_);
    empty->epoch = m ? m->epoch + 1 : 0;
    std::atomic_store(&membership_, std::shared_ptr<const Membership>(std::move(empty)));
  }
  for (auto& h : handles) {
    if (h->batcher) {
      h->batcher->stop();
    } else if (h->remote) {
      // Draining first: in-flight failures during retire() re-route via
      // remove_dead_replica, which must see a non-Active state and skip
      // the admin lock (the membership is already empty — re-routed work
      // answers kDraining, honoring the completion contract).
      h->state.store(ReplicaState::kDraining, std::memory_order_release);
      h->remote->retire();
    }
    h->state.store(ReplicaState::kRetired, std::memory_order_release);
  }
}

std::size_t FleetManager::num_replicas() const {
  const auto m = std::atomic_load(&membership_);
  return m ? m->replicas.size() : 0;
}

std::uint64_t FleetManager::epoch() const {
  const auto m = std::atomic_load(&membership_);
  return m ? m->epoch : 0;
}

std::size_t FleetManager::home_replica(std::int64_t node) const {
  return current()->ring.lookup(node);
}

ReplicaSnapshot FleetManager::snapshot_of(const ReplicaHandle& h) const {
  ReplicaSnapshot s;
  s.generation = h.generation;
  s.state = h.state.load(std::memory_order_acquire);
  s.routed = h.routed.load(std::memory_order_relaxed);
  s.queue_depth = depth_of(h);
  // Batch counters live with the batcher, which for a remote replica is in
  // the server process — zeros here, by design.
  s.batch = h.batcher ? h.batcher->counters() : BatchCounters{};
  s.admission = h.stats->admission();
  s.latency = h.stats->summary();
  return s;
}

ReplicaSnapshot FleetManager::replica_snapshot(std::size_t i) const {
  const auto m = std::atomic_load(&membership_);
  if (!m || i >= m->replicas.size()) {
    throw std::out_of_range("FleetManager::replica_snapshot");
  }
  return snapshot_of(*m->replicas[i]);
}

const InferenceSession& FleetManager::replica_session(std::size_t i) const {
  const auto m = std::atomic_load(&membership_);
  if (!m || i >= m->replicas.size()) {
    throw std::out_of_range("FleetManager::replica_session");
  }
  if (!m->replicas[i]->session) {
    throw std::logic_error(
        "FleetManager::replica_session: remote replica has no in-process "
        "session");
  }
  return *m->replicas[i]->session;
}

std::vector<ReplicaSnapshot> FleetManager::fleet_snapshot() const {
  std::lock_guard<std::mutex> lk(admin_mu_);
  std::vector<ReplicaSnapshot> out;
  out.reserve(all_handles_.size());
  for (const auto& h : all_handles_) out.push_back(snapshot_of(*h));
  return out;
}

void FleetManager::record_event(bool spawned, const ReplicaHandle& h,
                                std::uint64_t epoch,
                                std::size_t replicas_after) {
  FleetEvent e;
  e.t_seconds = std::chrono::duration<double>(
                    cfg_.clock->now() - started_at_)
                    .count();
  e.epoch = epoch;
  e.spawned = spawned;
  e.generation = h.generation;
  e.replicas_after = replicas_after;
  e.warmed_keys = h.warmed_keys;
  e.handoff_keys = h.handoff_keys;
  std::lock_guard<std::mutex> lk(events_mu_);
  events_.push_back(e);
}

std::vector<FleetEvent> FleetManager::events() const {
  std::lock_guard<std::mutex> lk(events_mu_);
  return events_;
}

LatencySummary FleetManager::aggregate_latency() const {
  ServerStats pooled;
  std::lock_guard<std::mutex> lk(admin_mu_);
  // Generation-keyed: each replica's history folds in exactly once no
  // matter how membership churned (see ServerStats::merge_once).
  for (const auto& h : all_handles_) {
    pooled.merge_once(*h->stats, h->generation);
  }
  return pooled.summary();
}

AdmissionCounters FleetManager::aggregate_admission() const {
  AdmissionCounters total;
  std::unordered_set<std::uint64_t> seen;
  std::lock_guard<std::mutex> lk(admin_mu_);
  for (const auto& h : all_handles_) {
    if (!seen.insert(h->generation).second) continue;
    const AdmissionCounters a = h->stats->admission();
    total.admitted += a.admitted;
    total.rejected += a.rejected;
    total.shed += a.shed;
  }
  return total;
}

StageGauges FleetManager::aggregate_stages() const {
  ServerStats pooled;
  std::lock_guard<std::mutex> lk(admin_mu_);
  for (const auto& h : all_handles_) {
    pooled.merge_once(*h->stats, h->generation);
  }
  return pooled.stages();
}

std::size_t FleetManager::aggregate_deadline_missed() const {
  std::lock_guard<std::mutex> lk(admin_mu_);
  std::unordered_set<std::uint64_t> seen;
  std::size_t total = 0;
  for (const auto& h : all_handles_) {
    if (!seen.insert(h->generation).second) continue;
    total += h->stats->deadline_missed();
  }
  return total;
}

std::vector<TenantStat> FleetManager::aggregate_tenants() const {
  ServerStats pooled;
  std::lock_guard<std::mutex> lk(admin_mu_);
  for (const auto& h : all_handles_) {
    pooled.merge_once(*h->stats, h->generation);
  }
  if (front_stats_) {
    // The front recorder holds what no replica can: quota refusals happen
    // before routing.  UINT64_MAX can never collide with a replica
    // generation (next_generation_ counts up from zero).
    pooled.merge_once(*front_stats_, UINT64_MAX);
  }
  return pooled.tenant_stats();
}

std::size_t FleetManager::quota_refused_total() const {
  return front_stats_ ? front_stats_->quota_refused_total() : 0;
}

std::size_t FleetManager::aggregate_batches() const {
  std::lock_guard<std::mutex> lk(admin_mu_);
  std::size_t n = 0;
  for (const auto& h : all_handles_) n += h->stats->batches();
  return n;
}

double FleetManager::aggregate_mean_batch_size() const {
  std::lock_guard<std::mutex> lk(admin_mu_);
  std::size_t requests = 0, batches = 0;
  for (const auto& h : all_handles_) {
    if (!h->batcher) continue;  // remote: batches happen server-side
    const BatchCounters c = h->batcher->counters();
    requests += c.requests;
    batches += c.batches;
  }
  return batches ? static_cast<double>(requests) /
                       static_cast<double>(batches)
                 : 0.0;
}

FleetSignals FleetManager::signals() const {
  FleetSignals s;
  const auto m = std::atomic_load(&membership_);
  if (!m) return s;
  s.replicas = m->replicas.size();
  s.batch_capacity =
      std::max<std::size_t>(1, s.replicas * cfg_.batch.max_batch_size);
  const auto now = cfg_.clock->now();
  AdmissionCounters pooled;
  double delay_sum = 0;
  std::size_t delay_n = 0;
  for (const auto& h : m->replicas) {
    const WindowStats w = h->stats->window(now);
    pooled.admitted += w.admission.admitted;
    pooled.rejected += w.admission.rejected;
    pooled.shed += w.admission.shed;
    delay_sum += w.mean_queue_delay_us *
                 static_cast<double>(w.queue_delay_samples);
    delay_n += w.queue_delay_samples;
    // Queued-only (in-service excluded): the idle decision must see work
    // *waiting*, not the batch every healthy replica keeps in service.
    // A remote replica's queue is server-side; wire calls in flight are
    // the closest client-visible proxy.
    s.queue_depth += h->batcher ? h->batcher->queued() : h->remote->inflight();
  }
  s.shed_rate = pooled.shed_rate();
  if (delay_n > 0) {
    s.mean_queue_delay_us = delay_sum / static_cast<double>(delay_n);
  }
  return s;
}

WindowStats FleetManager::window_stats() const {
  WindowStats w;
  const auto m = std::atomic_load(&membership_);
  if (!m) return w;
  const auto now = cfg_.clock->now();
  std::vector<double> samples;
  double delay_sum = 0;
  double span_seconds = 1.0;
  for (const auto& h : m->replicas) {
    const WindowStats r = h->stats->window(now);
    w.admission.admitted += r.admission.admitted;
    w.admission.rejected += r.admission.rejected;
    w.admission.shed += r.admission.shed;
    w.deadline_missed += r.deadline_missed;
    delay_sum += r.mean_queue_delay_us *
                 static_cast<double>(r.queue_delay_samples);
    w.queue_delay_samples += r.queue_delay_samples;
    const auto replica_samples = h->stats->windowed_latency_samples(now);
    samples.insert(samples.end(), replica_samples.begin(),
                   replica_samples.end());
    span_seconds =
        std::chrono::duration<double>(h->stats->window_span()).count();
  }
  if (w.queue_delay_samples > 0) {
    w.mean_queue_delay_us =
        delay_sum / static_cast<double>(w.queue_delay_samples);
  }
  w.latency.count = samples.size();
  if (!samples.empty()) {
    double sum = 0, mx = 0;
    for (const double v : samples) {
      sum += v;
      if (v > mx) mx = v;
    }
    w.latency.mean_us = sum / static_cast<double>(samples.size());
    w.latency.max_us = mx;
    w.latency.p50_us = percentile(samples, 50);
    w.latency.p95_us = percentile(samples, 95);
    w.latency.p99_us = percentile(samples, 99);
    w.latency.wall_seconds = span_seconds;
    w.latency.throughput_rps =
        static_cast<double>(samples.size()) / std::max(span_seconds, 1e-6);
  }
  return w;
}

std::size_t FleetManager::total_queue_depth() const {
  const auto m = std::atomic_load(&membership_);
  if (!m) return 0;
  std::size_t depth = 0;
  for (const auto& h : m->replicas) depth += depth_of(*h);
  return depth;
}

std::size_t FleetManager::idle_replicas() const {
  const auto m = std::atomic_load(&membership_);
  if (!m) return 0;
  std::size_t idle = 0;
  for (const auto& h : m->replicas) {
    if (depth_of(*h) == 0) ++idle;
  }
  return idle;
}

void FleetManager::measure_first_windows() {
  std::vector<std::pair<std::uint64_t, double>> measured;
  {
    std::lock_guard<std::mutex> lk(admin_mu_);
    const auto now = cfg_.clock->now();
    for (const auto& h : all_handles_) {
      if (!h->spawned_dynamic || h->first_window_measured) continue;
      if (h->state.load(std::memory_order_acquire) != ReplicaState::kActive) {
        continue;
      }
      if (now - h->activated_at < cfg_.stats_window) continue;
      auto* c = h->session
                    ? dynamic_cast<CachedSource*>(&h->session->features())
                    : nullptr;
      h->first_window_measured = true;
      if (!c) continue;
      const FeatureCacheStats st = c->stats();
      const auto accesses = st.accesses - h->cache_at_activation.accesses;
      const auto hits = st.hits - h->cache_at_activation.hits;
      const double rate =
          accesses > 0
              ? static_cast<double>(hits) / static_cast<double>(accesses)
              : 0.0;
      measured.emplace_back(h->generation, rate);
    }
  }
  if (measured.empty()) return;
  std::lock_guard<std::mutex> lk(events_mu_);
  for (const auto& [generation, rate] : measured) {
    for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
      if (it->spawned && it->generation == generation) {
        it->first_window_hit_rate = rate;
        break;
      }
    }
  }
}

void FleetManager::measure_handoff_windows() {
  std::vector<std::pair<std::uint64_t, double>> measured;
  {
    std::lock_guard<std::mutex> lk(admin_mu_);
    const auto now = cfg_.clock->now();
    for (auto it = pending_handoffs_.begin();
         it != pending_handoffs_.end();) {
      if (now - it->handed_at < cfg_.stats_window) {
        ++it;
        continue;
      }
      // Pool the post-handoff access/hit deltas across every successor
      // that received rows: the question is "did the victim's working set
      // land warm?", and the answer lives in the successors' combined
      // first window, not any single cache.
      std::uint64_t accesses = 0, hits = 0;
      for (const auto& [succ, at_handoff] : it->successors) {
        auto* c = succ->session ? dynamic_cast<CachedSource*>(
                                      &succ->session->features())
                                : nullptr;
        if (!c) continue;
        const FeatureCacheStats st = c->stats();
        accesses += st.accesses - at_handoff.accesses;
        hits += st.hits - at_handoff.hits;
      }
      const double rate =
          accesses > 0
              ? static_cast<double>(hits) / static_cast<double>(accesses)
              : 0.0;
      measured.emplace_back(it->victim_generation, rate);
      it = pending_handoffs_.erase(it);
    }
  }
  if (measured.empty()) return;
  std::lock_guard<std::mutex> lk(events_mu_);
  for (const auto& [generation, rate] : measured) {
    for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
      if (!it->spawned && it->generation == generation) {
        it->successor_first_window_hit_rate = rate;
        break;
      }
    }
  }
}

rpc::RpcStats FleetManager::aggregate_rpc_stats() const {
  rpc::RpcStats total;
  std::lock_guard<std::mutex> lk(admin_mu_);
  std::unordered_set<std::uint64_t> seen;
  for (const auto& h : all_handles_) {
    if (!h->remote) continue;
    if (!seen.insert(h->generation).second) continue;
    total.merge(h->remote->rpc_stats());
  }
  return total;
}

void FleetManager::controller_loop() {
  std::unique_lock<std::mutex> lk(controller_mu_);
  while (!controller_stop_) {
    controller_cv_.wait_for(lk, cfg_.autoscale.tick,
                            [this] { return controller_stop_; });
    if (controller_stop_) break;
    lk.unlock();
    measure_first_windows();
    measure_handoff_windows();
    const FleetSignals s = signals();
    const ScaleAction action =
        autoscaler_->on_tick(s, cfg_.clock->now());
    // Policy owns the bounds; mechanism re-checks them only to stay safe
    // against a manual scale racing the controller between tick and act.
    try {
      if (action == ScaleAction::kUp &&
          s.replicas < cfg_.autoscale.max_replicas) {
        scale_up();
      } else if (action == ScaleAction::kDown &&
                 s.replicas > cfg_.autoscale.min_replicas) {
        scale_down();
      }
    } catch (const std::exception&) {
      // stop() raced the decision, or a spawn failed (checkpoint vanished,
      // codec mismatch at warm-up) — a controller mishap must degrade to
      // "fleet stays its current size", never take down the process.
    }
    lk.lock();
  }
}

}  // namespace ppgnn::serve
