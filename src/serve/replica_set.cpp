#include "serve/replica_set.h"

#include <stdexcept>
#include <utility>

namespace ppgnn::serve {

ReplicaSet::ReplicaSet(
    std::vector<std::unique_ptr<InferenceSession>> sessions,
    const ReplicaSetConfig& cfg) {
  if (sessions.empty()) {
    throw std::invalid_argument("ReplicaSet: no sessions");
  }
  replicas_.reserve(sessions.size());
  for (auto& session : sessions) {
    if (!session) {
      throw std::invalid_argument("ReplicaSet: null session");
    }
    if (session->precision() != cfg.precision) {
      throw std::invalid_argument(
          "ReplicaSet: session precision disagrees with config (build the "
          "fleet with make_replica_sessions at the configured precision)");
    }
    auto r = std::make_unique<Replica>();
    r->session = std::move(session);
    r->stats = std::make_unique<ServerStats>();
    r->batcher = std::make_unique<MicroBatcher>(*r->session, cfg.batch,
                                                r->stats.get());
    replicas_.push_back(std::move(r));
  }
  router_ = make_router(cfg.policy, replicas_.size());
}

ReplicaSet::~ReplicaSet() { stop(); }

Admission ReplicaSet::try_submit(std::int64_t node, Priority pri) {
  const std::size_t i = router_->route(node, [this](std::size_t j) {
    return replicas_[j]->batcher->queue_depth();
  });
  replicas_[i]->routed.fetch_add(1, std::memory_order_relaxed);
  return replicas_[i]->batcher->try_submit(node, pri);
}

std::future<std::vector<float>> ReplicaSet::submit(std::int64_t node,
                                                   Priority pri) {
  Admission a = try_submit(node, pri);
  if (!a.accepted) {
    throw RejectedError("rejected at admission: queue-delay budget exceeded");
  }
  return std::move(a.result);
}

std::vector<float> ReplicaSet::infer_blocking(std::int64_t node) {
  return submit(node).get();
}

void ReplicaSet::stop() {
  for (auto& r : replicas_) r->batcher->stop();
}

ReplicaSnapshot ReplicaSet::replica_snapshot(std::size_t i) const {
  const Replica& r = *replicas_.at(i);
  ReplicaSnapshot s;
  s.routed = r.routed.load(std::memory_order_relaxed);
  s.queue_depth = r.batcher->queue_depth();
  s.batch = r.batcher->counters();
  s.admission = r.stats->admission();
  s.latency = r.stats->summary();
  return s;
}

void ReplicaSet::merge_stats(ServerStats& into) const {
  for (const auto& r : replicas_) into.merge(*r->stats);
}

LatencySummary ReplicaSet::aggregate_latency() const {
  ServerStats pooled;
  merge_stats(pooled);
  return pooled.summary();
}

AdmissionCounters ReplicaSet::aggregate_admission() const {
  // Plain counter sums — no need to pool latency samples for this.
  AdmissionCounters total;
  for (const auto& r : replicas_) {
    const AdmissionCounters a = r->stats->admission();
    total.admitted += a.admitted;
    total.rejected += a.rejected;
    total.shed += a.shed;
  }
  return total;
}

std::size_t ReplicaSet::aggregate_batches() const {
  std::size_t n = 0;
  for (const auto& r : replicas_) n += r->stats->batches();
  return n;
}

double ReplicaSet::aggregate_mean_batch_size() const {
  std::size_t requests = 0, batches = 0;
  for (const auto& r : replicas_) {
    const BatchCounters c = r->batcher->counters();
    requests += c.requests;
    batches += c.batches;
  }
  return batches ? static_cast<double>(requests) /
                       static_cast<double>(batches)
                 : 0.0;
}

}  // namespace ppgnn::serve
