// Injectable time source for the serving tier.
//
// Every *policy-visible* time read in the fleet — admission stamps, batch
// window closes, windowed gauge bucketing, autoscale ticks, spawn/drain
// event timestamps — goes through a Clock so the same code runs against
// real time in production and against a manually-advanced SimClock in the
// fleet simulator (src/fleetsim/).  That is the property the simulator's
// fidelity rests on: AutoscalePolicy, ServerStats windows and the slack
// arithmetic see bit-identical inputs whether time comes from the OS or
// from the event loop.
//
// Deliberately NOT virtualized: blocking *mechanisms* — condition-variable
// waits in MicroBatcher's dispatcher, thread sleeps in pacers, join
// timeouts.  Those are how real threads yield the CPU, and a simulator has
// no threads to park; fleetsim models dispatch timing itself instead of
// running dispatcher threads under a fake clock.  Consequence: a real
// MicroBatcher constructed over a SimClock still *runs*, but its batching
// window degenerates (the wait deadline is in sim time, which the OS clock
// has usually already passed), so only do that in tests that never sleep
// on the window.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ppgnn::serve {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::chrono::steady_clock::time_point now() const = 0;
};

// The process-wide passthrough to std::chrono::steady_clock.  Components
// take `const Clock* clock = nullptr` and treat null as this, so existing
// call sites keep their behavior without naming a clock.
const Clock& real_clock();

inline const Clock* clock_or_real(const Clock* clock) {
  return clock ? clock : &real_clock();
}

// Manually-advanced clock for discrete-event simulation and tests.
// Monotone by construction: advance() with a negative duration and set()
// into the past are clamped to no-ops.  Reads/writes are a single relaxed
// atomic so recorder threads in mixed real/sim tests never race; the
// simulator itself is single-threaded and just calls advance().
//
// The epoch starts at steady_clock::time_point{} + `start`, NOT at the
// real clock's current value — sim timestamps are offsets into the trace,
// comparable across runs and machines.
class SimClock final : public Clock {
 public:
  explicit SimClock(std::chrono::steady_clock::duration start =
                        std::chrono::steady_clock::duration::zero())
      : ticks_(start.count()) {}

  std::chrono::steady_clock::time_point now() const override {
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            ticks_.load(std::memory_order_relaxed)));
  }

  void advance(std::chrono::steady_clock::duration d) {
    if (d.count() > 0) ticks_.fetch_add(d.count(), std::memory_order_relaxed);
  }

  // Jump to an absolute point; never moves backwards.
  void set(std::chrono::steady_clock::time_point t) {
    const std::int64_t target = t.time_since_epoch().count();
    std::int64_t cur = ticks_.load(std::memory_order_relaxed);
    while (cur < target &&
           !ticks_.compare_exchange_weak(cur, target,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::int64_t> ticks_;
};

}  // namespace ppgnn::serve
